// Sharded-chain simulation scenario: run the operational discrete-block
// simulator under two allocation policies (hash-based vs TxAllo) on the
// same traffic and watch queues, latency, and committed throughput — the
// paper's analytic claims enacted by a "running" chain with cross-shard
// two-phase commits.
//
//   ./build/examples/sharded_simulator [--blocks=N] [--k=K] [--eta=E]
#include <cstdio>

#include "txallo/baselines/hash_allocator.h"
#include "txallo/common/flags.h"
#include "txallo/core/global.h"
#include "txallo/graph/builder.h"
#include "txallo/sim/shard_sim.h"
#include "txallo/workload/dataset.h"
#include "txallo/workload/ethereum_like.h"

int main(int argc, char** argv) {
  using namespace txallo;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 8));
  const double eta = flags.GetDouble("eta", 2.0);
  const int blocks = static_cast<int>(flags.GetInt("blocks", 400));

  workload::EthereumLikeConfig config;
  config.txs_per_block = 100;
  config.num_blocks = static_cast<uint64_t>(blocks) * 2;
  config.num_accounts = 16'000;
  config.num_communities = 100;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  workload::EthereumLikeGenerator generator(config);

  // Warmup history for the allocator, then live traffic for the sim.
  chain::Ledger history = generator.GenerateLedger(blocks);
  chain::Ledger live = generator.GenerateLedger(blocks);

  graph::TransactionGraph graph = graph::BuildTransactionGraph(history);
  graph.EnsureNodeCount(generator.registry().size());
  graph.Consolidate();
  alloc::AllocationParams params = alloc::AllocationParams::ForExperiment(
      history.num_transactions(), k, eta);

  auto txallo_alloc = core::RunGlobalTxAllo(
      graph, generator.registry().IdsInHashOrder(), params);
  if (!txallo_alloc.ok()) {
    std::fprintf(stderr, "TxAllo failed: %s\n",
                 txallo_alloc.status().ToString().c_str());
    return 1;
  }
  auto hash_alloc = baselines::AllocateByHash(generator.registry(), k);

  // Capacity: enough for the average per-block intra-only workload with a
  // little headroom — cross-shard traffic then visibly congests.
  sim::SimConfig sim_config;
  sim_config.num_shards = k;
  sim_config.eta = eta;
  sim_config.capacity_per_block =
      1.3 * static_cast<double>(config.txs_per_block) / k;

  struct Policy {
    const char* name;
    const alloc::Allocation* allocation;
  };
  const Policy policies[] = {{"hash-based", &hash_alloc},
                             {"TxAllo", &*txallo_alloc}};

  std::printf("live traffic: %d blocks x %llu txs, k=%u, eta=%.0f, "
              "capacity=%.0f work-units/block/shard\n\n",
              blocks,
              static_cast<unsigned long long>(config.txs_per_block), k, eta,
              sim_config.capacity_per_block);
  std::printf("%-12s %10s %10s %10s %10s %12s %10s\n", "policy", "commit",
              "tput/blk", "zeta(avg)", "zeta(max)", "utilization",
              "backlog");

  for (const Policy& policy : policies) {
    sim::ShardSimulator sim(sim_config);
    for (const chain::Block& block : live.blocks()) {
      if (!sim.SubmitBlock(block.transactions(), *policy.allocation).ok()) {
        std::fprintf(stderr, "submit failed under %s\n", policy.name);
        return 1;
      }
      sim.Tick();
    }
    sim::SimReport mid = sim.Snapshot();
    const double backlog = mid.residual_work;
    sim::SimReport report = sim.DrainAndReport();
    std::printf("%-12s %9llu %10.1f %10.2f %10.0f %11.0f%% %10.0f\n",
                policy.name,
                static_cast<unsigned long long>(report.committed),
                report.throughput_per_block, report.avg_latency_blocks,
                report.max_latency_blocks, 100.0 * report.mean_utilization,
                backlog);
  }
  std::printf("\nExpected: the same traffic under TxAllo carries a several-"
              "times smaller live backlog,\nlower commit latency, and lower "
              "utilization (less duplicated cross-shard work) —\nhash-based "
              "routing makes ~all transactions pay the eta workload on "
              "every involved shard.\n");
  return 0;
}

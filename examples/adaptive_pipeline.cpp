// Adaptive-pipeline scenario: a miner-side allocation daemon. Blocks
// stream in; the chosen online allocator refreshes the mapping every tau1
// blocks. The default strategy is TxAllo's hybrid schedule (A-TxAllo with a
// G-TxAllo refresh every tau2 steps, paper §V-A), but any online method
// from the registry drops in:
//
//   ./build/examples/adaptive_pipeline [--steps=N] [--tau1=B] [--tau2-steps=M]
//   ./build/examples/adaptive_pipeline --allocator=metis
//   TXALLO_ALLOCATOR=shard-scheduler ./build/examples/adaptive_pipeline
#include <cstdio>

#include "txallo/alloc/metrics.h"
#include "txallo/allocator/registry.h"
#include "txallo/common/flags.h"
#include "txallo/common/stopwatch.h"
#include "txallo/sim/reconfig.h"
#include "txallo/workload/ethereum_like.h"

int main(int argc, char** argv) {
  using namespace txallo;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 12));
  const double eta = flags.GetDouble("eta", 4.0);
  const int steps = static_cast<int>(flags.GetInt("steps", 24));
  const int tau1 = static_cast<int>(flags.GetInt("tau1", 25));  // Blocks.
  const int tau2_steps = static_cast<int>(flags.GetInt("tau2-steps", 8));
  const std::string spec = ResolveAllocatorSpec(
      flags, "txallo-hybrid:global-every=" + std::to_string(tau2_steps));

  workload::EthereumLikeConfig config;
  config.txs_per_block = 120;
  config.num_blocks = static_cast<uint64_t>((steps + 8) * tau1) + 400;
  config.num_accounts = 24'000;
  config.num_communities = 150;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  workload::EthereumLikeGenerator generator(config);

  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(1, k, eta);
  options.registry = &generator.registry();
  auto made = allocator::MakeAllocatorFromSpec(spec, options);
  if (!made.ok()) {
    std::fprintf(stderr, "allocator: %s\n", made.status().ToString().c_str());
    return 1;
  }
  allocator::OnlineAllocator* daemon = (*made)->AsOnline();
  if (daemon == nullptr) {
    std::fprintf(stderr, "allocator '%s' is one-shot only\n", spec.c_str());
    return 1;
  }

  // Bootstrap: absorb some history and run the first rebalance (for the
  // txallo strategies that is the initial G-TxAllo).
  std::printf("allocator: %s\nbootstrapping: 400 blocks of history + "
              "initial rebalance\n\n",
              spec.c_str());
  for (int b = 0; b < 400; ++b) daemon->ApplyBlock(generator.NextBlock());
  auto bootstrap = daemon->Rebalance();
  if (!bootstrap.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 bootstrap.status().ToString().c_str());
    return 1;
  }

  std::printf("%-5s %10s %12s %12s %10s\n", "step", "secs", "Lambda/lam",
              "gamma(win)", "moved");
  alloc::Allocation previous = std::move(bootstrap.value());
  for (int step = 0; step < steps; ++step) {
    std::vector<chain::Block> window;
    for (int b = 0; b < tau1; ++b) {
      window.push_back(generator.NextBlock());
      daemon->ApplyBlock(window.back());
    }
    Stopwatch watch;
    auto rebalanced = daemon->Rebalance();
    if (!rebalanced.ok()) {
      std::fprintf(stderr, "rebalance failed: %s\n",
                   rebalanced.status().ToString().c_str());
      return 1;
    }
    const double seconds = watch.ElapsedSeconds();

    // Window-level metrics under the fresh mapping.
    std::vector<chain::Transaction> txs;
    for (const chain::Block& blk : window) {
      txs.insert(txs.end(), blk.transactions().begin(),
                 blk.transactions().end());
    }
    alloc::AllocationParams window_params =
        alloc::AllocationParams::ForExperiment(txs.size(), k, eta);
    auto report = (*made)->Evaluate(txs, *rebalanced, window_params);
    if (!report.ok()) return 1;

    // How many accounts had to move (state-migration cost, paper §VII).
    sim::ReconfigStats moved =
        sim::CompareAllocations(previous, *rebalanced);
    previous = std::move(rebalanced.value());

    std::printf("%-5d %9.4fs %12.2f %12.3f %10llu\n", step, seconds,
                report->normalized_throughput, report->cross_shard_ratio,
                static_cast<unsigned long long>(moved.accounts_moved));
  }
  std::printf("\ndone: %d windows of %d blocks under '%s'\n", steps, tau1,
              spec.c_str());
  return 0;
}

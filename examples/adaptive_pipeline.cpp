// Adaptive-pipeline scenario: a miner-side allocation daemon. Blocks
// stream in; A-TxAllo updates the mapping every tau1 blocks and G-TxAllo
// refreshes it every tau2 blocks (paper §V-A's hybrid schedule). Prints a
// step-by-step log like a node operator would see.
//
//   ./build/examples/adaptive_pipeline [--steps=N] [--tau1=B] [--tau2-steps=M]
#include <cstdio>

#include "txallo/alloc/metrics.h"
#include "txallo/common/flags.h"
#include "txallo/core/controller.h"
#include "txallo/sim/reconfig.h"
#include "txallo/workload/ethereum_like.h"

int main(int argc, char** argv) {
  using namespace txallo;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 12));
  const double eta = flags.GetDouble("eta", 4.0);
  const int steps = static_cast<int>(flags.GetInt("steps", 24));
  const int tau1 = static_cast<int>(flags.GetInt("tau1", 25));  // Blocks.
  const int tau2_steps = static_cast<int>(flags.GetInt("tau2-steps", 8));

  workload::EthereumLikeConfig config;
  config.txs_per_block = 120;
  config.num_blocks = static_cast<uint64_t>((steps + 8) * tau1) + 400;
  config.num_accounts = 24'000;
  config.num_communities = 150;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  workload::EthereumLikeGenerator generator(config);

  alloc::AllocationParams params =
      alloc::AllocationParams::ForExperiment(1, k, eta);
  core::TxAlloController controller(&generator.registry(), params);

  // Bootstrap: absorb some history and run the first global allocation.
  std::printf("bootstrapping: 400 blocks of history + initial G-TxAllo\n");
  for (int b = 0; b < 400; ++b) controller.ApplyBlock(generator.NextBlock());
  auto bootstrap = controller.StepGlobal();
  if (!bootstrap.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 bootstrap.status().ToString().c_str());
    return 1;
  }
  std::printf("  louvain communities=%u  sweeps=%d  %.3fs\n\n",
              bootstrap->louvain_communities, bootstrap->sweeps,
              bootstrap->total_seconds);

  std::printf("%-5s %-8s %10s %12s %12s %10s\n", "step", "update",
              "secs", "Lambda", "gamma(win)", "moved");
  alloc::Allocation previous = controller.allocation();
  for (int step = 0; step < steps; ++step) {
    std::vector<chain::Block> window;
    for (int b = 0; b < tau1; ++b) {
      window.push_back(generator.NextBlock());
      controller.ApplyBlock(window.back());
    }
    double seconds = 0.0;
    const bool global_now = (step + 1) % tau2_steps == 0;
    if (global_now) {
      auto info = controller.StepGlobal();
      if (!info.ok()) return 1;
      seconds = info->total_seconds;
    } else {
      auto info = controller.StepAdaptive();
      if (!info.ok()) return 1;
      seconds = info->total_seconds;
    }

    // Window-level cross-shard ratio under the fresh mapping.
    std::vector<chain::Transaction> txs;
    for (const chain::Block& blk : window) {
      txs.insert(txs.end(), blk.transactions().begin(),
                 blk.transactions().end());
    }
    alloc::AllocationParams window_params =
        alloc::AllocationParams::ForExperiment(txs.size(), k, eta);
    auto report = alloc::EvaluateAllocation(txs, controller.allocation(),
                                            window_params);
    if (!report.ok()) return 1;

    // How many accounts had to move (state-migration cost, paper §VII).
    sim::ReconfigStats moved =
        sim::CompareAllocations(previous, controller.allocation());
    previous = controller.allocation();

    std::printf("%-5d %-8s %9.4fs %12.2f %12.3f %10llu\n", step,
                global_now ? "GLOBAL" : "adaptive", seconds,
                controller.CurrentThroughput(), report->cross_shard_ratio,
                static_cast<unsigned long long>(moved.accounts_moved));
  }

  std::printf("\n%llu transactions absorbed; final model throughput %.2f\n",
              static_cast<unsigned long long>(
                  controller.transactions_applied()),
              controller.CurrentThroughput());
  return 0;
}

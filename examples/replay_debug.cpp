// Deterministic record/replay walkthrough: the debugging workflow the
// engine's determinism contract buys.
//
//   1. Record: a background-mode reallocation pipeline (parallel ingest,
//      worker pool, online TxAllo rebalances) streams a drifting workload
//      while every deterministic event — per-tick per-shard prepare order,
//      2PC outcomes, install boundaries, the per-step metrics series — is
//      captured into an engine::ReplayLog.
//   2. Persist: the trace round-trips through the compact binary format
//      (plus a CSV dump for eyeballing).
//   3. Replay: the loaded trace re-executes bit-identically under several
//      *different* execution shapes (1 thread / no router, 4 threads / 3
//      producers) — a failing run can be re-run under a debugger
//      single-threaded without changing what happens.
//   4. Guard: replaying against the wrong workload is refused up front via
//      the trace's ledger fingerprint instead of diverging quietly.
//
//   ./build/examples/replay_debug [--blocks=N] [--k=K]
//       [--trace=replay_debug.trace] [--trace-csv=replay_debug_trace.csv]
#include <cstdio>

#include "txallo/allocator/registry.h"
#include "txallo/common/flags.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/engine/replay.h"
#include "txallo/workload/ethereum_like.h"

int main(int argc, char** argv) {
  using namespace txallo;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 4));
  const uint64_t blocks =
      static_cast<uint64_t>(flags.GetInt("blocks", 48));
  const std::string trace_path =
      flags.GetString("trace", "replay_debug.trace");
  const std::string csv_path =
      flags.GetString("trace-csv", "replay_debug_trace.csv");

  workload::EthereumLikeConfig config;
  config.num_blocks = blocks;
  config.txs_per_block = 60;
  config.num_accounts = 2'000;
  config.num_communities = 24;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  config.drift_interval_blocks = blocks / 3;
  workload::EthereumLikeGenerator generator(config);
  const chain::Ledger ledger = generator.GenerateLedger(blocks);

  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), k, 2.0);
  options.registry = &generator.registry();
  auto made =
      allocator::MakeAllocatorFromSpec("txallo-hybrid:global-every=3",
                                       options);
  if (!made.ok()) {
    std::fprintf(stderr, "allocator: %s\n", made.status().ToString().c_str());
    return 1;
  }

  engine::EngineConfig engine_config;
  engine_config.num_shards = k;
  // Tight λ: the backlog spills across ticks, so execution order — not
  // just totals — is what replay has to reproduce.
  engine_config.work.capacity_per_block =
      0.5 * static_cast<double>(config.txs_per_block) / k;
  engine_config.hash_route_unassigned = true;

  // 1. Record under the full pipeline: 2 workers, 2 ingest producers,
  //    background rebalances.
  engine::ReplayLog log;
  {
    engine::EngineConfig recording_config = engine_config;
    recording_config.num_threads = 2;
    engine::ParallelEngine engine(recording_config, nullptr);
    engine::PipelineConfig pipeline;
    pipeline.blocks_per_epoch = static_cast<uint32_t>(blocks / 4);
    pipeline.allocator_mode = engine::AllocatorMode::kBackground;
    pipeline.ingest_producers = 2;
    pipeline.record = &log;
    auto recorded = engine::RunReallocatedStream(ledger, (*made)->AsOnline(),
                                                 &engine, pipeline);
    if (!recorded.ok()) {
      std::fprintf(stderr, "record run: %s\n",
                   recorded.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "recorded %llu committed txs over %zu steps: %zu prepares, %zu "
        "commits, %zu installs\n",
        static_cast<unsigned long long>(recorded->report.sim.committed),
        recorded->steps.size(), log.prepares.size(), log.commits.size(),
        log.installs.size());
  }

  // 2. Persist and reload.
  if (Status saved = engine::SaveReplayLog(log, trace_path); !saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  if (Status dumped = engine::DumpReplayLogCsv(log, csv_path);
      !dumped.ok()) {
    std::fprintf(stderr, "csv dump: %s\n", dumped.ToString().c_str());
    return 1;
  }
  auto loaded = engine::LoadReplayLog(trace_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("trace saved to %s (binary) and %s (CSV dump)\n",
              trace_path.c_str(), csv_path.c_str());

  // 3. Replay under different execution shapes; every one must be
  //    bit-identical (prepare order, 2PC outcomes, step series).
  struct Shape {
    const char* name;
    uint32_t threads;
    uint32_t producers;
  };
  const Shape shapes[] = {{"1 thread, driver ingest", 1, 0},
                          {"4 threads, 3 producers", 4, 3}};
  for (const Shape& shape : shapes) {
    engine::EngineConfig replay_config = engine_config;
    replay_config.num_threads = shape.threads;
    engine::ParallelEngine engine(replay_config, nullptr);
    engine::PipelineConfig pipeline;
    pipeline.ingest_producers = shape.producers;
    auto replayed =
        engine::ReplayRecordedStream(ledger, *loaded, &engine, pipeline);
    if (!replayed.ok()) {
      std::fprintf(stderr, "replay (%s): %s\n", shape.name,
                   replayed.status().ToString().c_str());
      return 1;
    }
    std::printf("replay under %-24s -> bit-identical (%llu committed)\n",
                shape.name,
                static_cast<unsigned long long>(
                    replayed->report.sim.committed));
  }

  // 4. The wrong workload is refused, not quietly diverged from.
  workload::EthereumLikeConfig other = config;
  other.seed += 1;
  workload::EthereumLikeGenerator other_generator(other);
  const chain::Ledger other_ledger = other_generator.GenerateLedger(blocks);
  engine::ParallelEngine engine(engine_config, nullptr);
  auto mismatch = engine::ReplayRecordedStream(other_ledger, *loaded, &engine,
                                               engine::PipelineConfig{});
  if (mismatch.ok()) {
    std::fprintf(stderr,
                 "replay against a different ledger unexpectedly passed\n");
    return 1;
  }
  std::printf("replay against a different workload correctly refused:\n  %s\n",
              mismatch.status().ToString().c_str());
  return 0;
}

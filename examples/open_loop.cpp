// Open-loop latency scenario: the same transaction stream offered at a
// fixed rate (transactions per engine tick) to two allocation strategies —
// naive hash sharding vs TxAllo's hybrid schedule — through the concurrent
// mempool front-end. Arrivals the engine cannot keep up with queue in the
// pool, so the tail latency difference between the mappings becomes
// directly visible as p99 end-to-end ticks, something closed-loop driving
// (one block per tick, arrivals tracking service) can never show.
//
// Every number printed is a pure function of (workload seed, flags): the
// offered-load schedule, fees, admission decisions and latency histograms
// live on the engine's logical clock, so reruns — with any engine thread
// count or --producers fan-out — print byte-identical output.
//
//   ./build/examples/open_loop [--load=9] [--service=12] [--k=6] [--eta=2]
//       [--blocks=48] [--dispatch-per-tick=N] [--producers=N]
//       [--hybrid=SPEC]
#include <cstdio>
#include <string>
#include <vector>

#include "txallo/allocator/registry.h"
#include "txallo/common/flags.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/workload/ethereum_like.h"

int main(int argc, char** argv) {
  using namespace txallo;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 6));
  const double eta = flags.GetDouble("eta", 2.0);
  const double load = flags.GetDouble("load", 9.0);
  const uint64_t blocks = static_cast<uint64_t>(flags.GetInt("blocks", 48));
  const uint32_t producers =
      static_cast<uint32_t>(flags.GetInt("producers", 2));

  workload::EthereumLikeConfig config;
  config.txs_per_block = 40;
  config.num_blocks = blocks;
  config.num_accounts = 2'000;
  config.num_communities = 40;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  workload::EthereumLikeGenerator generator(config);
  const chain::Ledger ledger = generator.GenerateLedger(blocks);

  // Raw service of `service` tx/tick against an offer of `load`: the
  // *effective* service is lower (cross-shard transactions consume capacity
  // on every involved shard), so loads near `service` queue, and how much
  // is the mapping's doing.
  const double service = flags.GetDouble("service", 12.0);
  engine::EngineConfig engine_config;
  engine_config.num_shards = k;
  engine_config.work.eta = eta;
  engine_config.work.capacity_per_block = service / k;
  engine_config.hash_route_unassigned = true;

  std::printf("open-loop ingest: %llu txs offered at %.1f tx/tick, k=%u, "
              "raw engine service %.1f tx/tick, %u submit producers\n\n",
              static_cast<unsigned long long>(ledger.num_transactions()),
              load, k, service, producers);
  std::printf("%-30s %8s %8s %8s %8s %8s\n", "allocator", "ticks", "p50",
              "p99", "p99.9", "dropped");

  int failures = 0;
  for (const std::string& spec :
       {std::string("hash"),
        flags.GetString("hybrid", "txallo-hybrid:global-every=4")}) {
    allocator::AllocatorOptions options;
    options.params = alloc::AllocationParams::ForExperiment(
        ledger.num_transactions(), k, eta);
    options.registry = &generator.registry();
    auto made = allocator::MakeAllocatorFromSpec(spec, options);
    if (!made.ok()) {
      std::fprintf(stderr, "allocator '%s': %s\n", spec.c_str(),
                   made.status().ToString().c_str());
      return 1;
    }
    engine::ParallelEngine engine(engine_config, nullptr);
    engine::PipelineConfig pipeline;
    pipeline.blocks_per_epoch = 12;
    pipeline.ingest_mode = engine::IngestMode::kOpenLoop;
    pipeline.ingest_producers = producers;
    pipeline.open_loop.offered_load = load;
    pipeline.open_loop.dispatch_per_tick =
        static_cast<uint32_t>(flags.GetInt("dispatch-per-tick", 0));
    auto result = engine::RunReallocatedStream(ledger, (*made)->AsOnline(),
                                               &engine, pipeline);
    if (!result.ok()) {
      std::fprintf(stderr, "'%s' failed: %s\n", spec.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    const common::Histogram& latency = result->e2e_latency_ticks;
    const mempool::AdmissionStats& admission = result->admission;
    std::printf("%-30s %8llu %8llu %8llu %8llu %8llu\n", spec.c_str(),
                static_cast<unsigned long long>(result->report.sim.blocks_elapsed),
                static_cast<unsigned long long>(latency.Percentile(50.0)),
                static_cast<unsigned long long>(latency.Percentile(99.0)),
                static_cast<unsigned long long>(latency.Percentile(99.9)),
                static_cast<unsigned long long>(
                    admission.dropped_capacity +
                    admission.dropped_account_pending +
                    admission.dropped_account_rate +
                    admission.dropped_backpressure));
    // Smoke contract: every committed transaction carries a latency sample
    // and nothing vanished (no drops configured at these defaults).
    if (latency.count() != result->report.sim.committed ||
        result->report.sim.committed == 0) {
      std::fprintf(stderr, "'%s': latency accounting broken\n", spec.c_str());
      ++failures;
    }
  }

  std::printf("\nLatency is commit tick minus submit tick. The two rows "
              "differ only in the\naccount-to-shard mapping: the gap is the "
              "allocator's effect on queueing delay\nunder identical "
              "offered load.\n");
  return failures == 0 ? 0 : 1;
}

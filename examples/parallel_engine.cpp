// Parallel engine scenario: the same live traffic executed three ways —
//
//   1. static hash routing,
//   2. a static G-TxAllo mapping learned from warmup history,
//   3. TxAllo online: the hybrid controller re-learns the workload every
//      epoch and hot-swaps the engine's allocation snapshot between block
//      boundaries (copy-on-write, workers never pause).
//
// Shards execute on real worker threads with cross-shard two-phase commits;
// reports carry both the simulator-compatible metrics and the engine-only
// ones (queue depth, worker stall, reallocation pause).
//
//   ./build/examples/parallel_engine [--blocks=N] [--k=K] [--threads=T]
#include <cstdio>
#include <memory>

#include "txallo/baselines/hash_allocator.h"
#include "txallo/common/flags.h"
#include "txallo/core/controller.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/workload/ethereum_like.h"

int main(int argc, char** argv) {
  using namespace txallo;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 8));
  const double eta = flags.GetDouble("eta", 2.0);
  const int blocks = static_cast<int>(flags.GetInt("blocks", 300));
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 0));

  workload::EthereumLikeConfig config;
  config.txs_per_block = 100;
  config.num_blocks = static_cast<uint64_t>(blocks) * 2;
  config.num_accounts = 16'000;
  config.num_communities = 100;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  // Drift makes the static mappings stale — what online reallocation fixes.
  config.drift_interval_blocks = static_cast<uint64_t>(blocks) / 3;
  workload::EthereumLikeGenerator generator(config);

  chain::Ledger history = generator.GenerateLedger(blocks);
  chain::Ledger live = generator.GenerateLedger(blocks);

  engine::EngineConfig engine_config;
  engine_config.num_shards = k;
  engine_config.num_threads = threads;
  engine_config.work.eta = eta;
  engine_config.work.capacity_per_block =
      1.3 * static_cast<double>(config.txs_per_block) / k;
  engine_config.hash_route_unassigned = true;

  alloc::AllocationParams params = alloc::AllocationParams::ForExperiment(
      history.num_transactions(), k, eta);

  // Controller learns the warmup history; its mapping is policy 2's static
  // snapshot and policy 3's starting point.
  core::TxAlloController controller(&generator.registry(), params);
  for (const chain::Block& block : history.blocks()) {
    controller.ApplyBlock(block);
  }
  if (!controller.StepGlobal().ok()) {
    std::fprintf(stderr, "G-TxAllo on warmup history failed\n");
    return 1;
  }
  auto static_txallo = controller.ShareAllocation();
  auto hash_alloc = std::make_shared<alloc::Allocation>(
      baselines::AllocateByHash(generator.registry(), k));

  std::printf(
      "live traffic: %d blocks x %llu txs, k=%u shards, eta=%.0f, "
      "capacity=%.0f work-units/block/shard\n\n",
      blocks, static_cast<unsigned long long>(config.txs_per_block), k, eta,
      engine_config.work.capacity_per_block);
  std::printf("%-14s %8s %9s %10s %10s %8s %9s %8s\n", "policy", "workers",
              "commit", "tput/blk", "zeta(avg)", "cross%", "realloc",
              "moved");

  auto print_row = [&](const char* name, const engine::EngineReport& report,
                       uint64_t moved) {
    std::printf(
        "%-14s %8u %9llu %10.1f %10.2f %7.1f%% %9llu %8llu\n", name,
        report.num_workers,
        static_cast<unsigned long long>(report.sim.committed),
        report.sim.throughput_per_block, report.sim.avg_latency_blocks,
        100.0 * static_cast<double>(report.sim.cross_shard_submitted) /
            static_cast<double>(report.sim.submitted),
        static_cast<unsigned long long>(report.reallocations),
        static_cast<unsigned long long>(moved));
  };

  // Policies 1 + 2: static snapshots.
  struct StaticPolicy {
    const char* name;
    std::shared_ptr<const alloc::Allocation> allocation;
  };
  const StaticPolicy static_policies[] = {{"hash-static", hash_alloc},
                                          {"txallo-static", static_txallo}};
  for (const StaticPolicy& policy : static_policies) {
    engine::ParallelEngine engine(engine_config, policy.allocation);
    for (const chain::Block& block : live.blocks()) {
      if (!engine.SubmitBlock(block.transactions()).ok()) {
        std::fprintf(stderr, "submit failed under %s\n", policy.name);
        return 1;
      }
      engine.Tick();
    }
    print_row(policy.name, engine.DrainAndReport(), 0);
  }

  // Policy 3: online — controller keeps learning, engine swaps snapshots.
  engine::ParallelEngine online_engine(engine_config, static_txallo);
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch =
      static_cast<uint32_t>(std::max(10, blocks / 10));
  auto online = engine::RunReallocatedStream(live, &controller,
                                             &online_engine, pipeline);
  if (!online.ok()) {
    std::fprintf(stderr, "online pipeline failed: %s\n",
                 online.status().ToString().c_str());
    return 1;
  }
  print_row("txallo-online", online->report, online->accounts_moved);
  std::printf(
      "\nonline reallocation: %llu epochs, %.3fs allocator time between "
      "ticks (shards idle meanwhile),\n%.6fs total ingest pause across "
      "snapshot swaps (copy-on-write), %.2fs worker stall\n",
      static_cast<unsigned long long>(online->epochs), online->alloc_seconds,
      online->report.realloc_pause_seconds,
      online->report.worker_stall_seconds);
  std::printf(
      "\nExpected: hash routing makes ~every transaction cross-shard; the "
      "static TxAllo mapping\ncuts cross%% and latency until drift erodes "
      "it; the online schedule holds the advantage\nby republishing the "
      "mapping each epoch without stopping shard workers.\n");
  return 0;
}

// Parallel engine scenario: the same live traffic executed three ways —
//
//   1. static hash routing,
//   2. a static mapping learned from warmup history by the chosen
//      allocator (--allocator, default TxAllo's hybrid controller),
//   3. online: the allocator keeps learning and hot-swaps the engine's
//      allocation snapshot between block boundaries (copy-on-write,
//      workers never pause) via engine::RunReallocatedStream.
//
// Any online strategy from the registry drops into slots 2 and 3 — METIS,
// Louvain, Shard Scheduler and hash itself run live on the engine exactly
// like TxAllo.
//
// Shards execute on real worker threads with cross-shard two-phase commits;
// reports carry both the simulator-compatible metrics and the engine-only
// ones (queue depth, worker stall, reallocation pause).
//
//   ./build/examples/parallel_engine [--blocks=N] [--k=K] [--threads=T]
//       [--allocator=SPEC] [--alloc-mode=background|deferred|sync]
//       [--producers=N]
//
// --alloc-mode=background (the default) computes each epoch's rebalance on
// a background worker while the next epoch executes — the engine reports
// how much allocation latency the overlap hid; --producers=N fans ingest
// out over N router threads.
#include <cstdio>
#include <memory>

#include "txallo/allocator/registry.h"
#include "txallo/baselines/hash_allocator.h"
#include "txallo/common/flags.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/workload/ethereum_like.h"

int main(int argc, char** argv) {
  using namespace txallo;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 8));
  const double eta = flags.GetDouble("eta", 2.0);
  const int blocks = static_cast<int>(flags.GetInt("blocks", 300));
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 0));
  const std::string spec =
      ResolveAllocatorSpec(flags, "txallo-hybrid:global-every=4");
  auto alloc_mode =
      engine::ParseAllocatorMode(flags.GetString("alloc-mode", "background"));
  if (!alloc_mode.ok()) {
    std::fprintf(stderr, "%s\n", alloc_mode.status().ToString().c_str());
    return 1;
  }
  const uint32_t producers =
      static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt("producers", 0)));

  workload::EthereumLikeConfig config;
  config.txs_per_block = 100;
  config.num_blocks = static_cast<uint64_t>(blocks) * 2;
  config.num_accounts = 16'000;
  config.num_communities = 100;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  // Drift makes the static mappings stale — what online reallocation fixes.
  config.drift_interval_blocks = static_cast<uint64_t>(blocks) / 3;
  workload::EthereumLikeGenerator generator(config);

  chain::Ledger history = generator.GenerateLedger(blocks);
  chain::Ledger live = generator.GenerateLedger(blocks);

  engine::EngineConfig engine_config;
  engine_config.num_shards = k;
  engine_config.num_threads = threads;
  engine_config.work.eta = eta;
  engine_config.work.capacity_per_block =
      1.3 * static_cast<double>(config.txs_per_block) / k;
  engine_config.hash_route_unassigned = true;

  // The chosen allocator learns the warmup history; its mapping is policy
  // 2's static snapshot and policy 3's starting point.
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      history.num_transactions(), k, eta);
  options.registry = &generator.registry();
  auto made = allocator::MakeAllocatorFromSpec(spec, options);
  if (!made.ok()) {
    std::fprintf(stderr, "allocator: %s\n", made.status().ToString().c_str());
    return 1;
  }
  allocator::OnlineAllocator* learner = (*made)->AsOnline();
  if (learner == nullptr) {
    std::fprintf(stderr, "allocator '%s' is one-shot only; pick an online "
                 "strategy\n",
                 spec.c_str());
    return 1;
  }
  for (const chain::Block& block : history.blocks()) {
    learner->ApplyBlock(block);
  }
  auto warm = learner->Rebalance();
  if (!warm.ok()) {
    std::fprintf(stderr, "warmup rebalance failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  auto static_learned =
      std::make_shared<const alloc::Allocation>(std::move(warm.value()));
  auto hash_alloc = std::make_shared<alloc::Allocation>(
      baselines::AllocateByHash(generator.registry(), k));

  std::printf(
      "allocator: %s\nlive traffic: %d blocks x %llu txs, k=%u shards, "
      "eta=%.0f, capacity=%.0f work-units/block/shard\n\n",
      spec.c_str(), blocks,
      static_cast<unsigned long long>(config.txs_per_block), k, eta,
      engine_config.work.capacity_per_block);
  std::printf("%-14s %8s %9s %10s %10s %8s %9s %8s\n", "policy", "workers",
              "commit", "tput/blk", "zeta(avg)", "cross%", "realloc",
              "moved");

  auto print_row = [&](const char* name, const engine::EngineReport& report,
                       uint64_t moved) {
    std::printf(
        "%-14s %8u %9llu %10.1f %10.2f %7.1f%% %9llu %8llu\n", name,
        report.num_workers,
        static_cast<unsigned long long>(report.sim.committed),
        report.sim.throughput_per_block, report.sim.avg_latency_blocks,
        100.0 * static_cast<double>(report.sim.cross_shard_submitted) /
            static_cast<double>(report.sim.submitted),
        static_cast<unsigned long long>(report.reallocations),
        static_cast<unsigned long long>(moved));
  };

  // Policies 1 + 2: static snapshots.
  struct StaticPolicy {
    const char* name;
    std::shared_ptr<const alloc::Allocation> allocation;
  };
  const StaticPolicy static_policies[] = {{"hash-static", hash_alloc},
                                          {"learned-static", static_learned}};
  for (const StaticPolicy& policy : static_policies) {
    engine::ParallelEngine engine(engine_config, policy.allocation);
    for (const chain::Block& block : live.blocks()) {
      if (!engine.SubmitBlock(block.transactions()).ok()) {
        std::fprintf(stderr, "submit failed under %s\n", policy.name);
        return 1;
      }
      engine.Tick();
    }
    print_row(policy.name, engine.DrainAndReport(), 0);
  }

  // Policy 3: online — the allocator keeps learning, the engine swaps
  // snapshots.
  engine::ParallelEngine online_engine(engine_config, static_learned);
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch =
      static_cast<uint32_t>(std::max(10, blocks / 10));
  pipeline.allocator_mode = *alloc_mode;
  pipeline.ingest_producers = producers;
  auto online =
      engine::RunReallocatedStream(live, learner, &online_engine, pipeline);
  if (!online.ok()) {
    std::fprintf(stderr, "online pipeline failed: %s\n",
                 online.status().ToString().c_str());
    return 1;
  }
  print_row("online", online->report, online->accounts_moved);
  std::printf(
      "\nonline reallocation (alloc-mode=%s, ingest producers=%u): %llu "
      "epochs,\n%.3fs allocator compute (%.3fs stalled the driver — "
      "%.0f%% overlapped with execution),\n%.6fs total ingest pause across "
      "snapshot swaps (copy-on-write), %.2fs worker stall\n",
      engine::AllocatorModeName(*alloc_mode), producers,
      static_cast<unsigned long long>(online->epochs), online->alloc_seconds,
      online->alloc_wait_seconds, 100.0 * online->alloc_overlap_ratio,
      online->report.realloc_pause_seconds,
      online->report.worker_stall_seconds);
  std::printf(
      "\nExpected: hash routing makes ~every transaction cross-shard; a "
      "static learned mapping\ncuts cross%% and latency until drift erodes "
      "it; the online schedule holds the advantage\nby republishing the "
      "mapping each epoch without stopping shard workers.\n");
  return 0;
}

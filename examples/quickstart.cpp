// Quickstart: build a tiny ledger by hand, pick an allocation strategy by
// name from the registry, run it, inspect the mapping and the model
// metrics. Start here.
//
//   ./build/examples/quickstart [--allocator=txallo-global]
//   TXALLO_ALLOCATOR=metis ./build/examples/quickstart
#include <cstdio>

#include "txallo/allocator/registry.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/flags.h"
#include "txallo/graph/builder.h"

int main(int argc, char** argv) {
  using namespace txallo;
  Flags flags = Flags::Parse(argc, argv);
  const std::string spec = ResolveAllocatorSpec(flags, "txallo-global");

  // 1. A ledger: two groups of accounts that mostly transact internally
  //    ({alice, bob, carol} and {dave, erin}), plus one bridging payment.
  chain::AccountRegistry registry;
  const chain::AccountId alice = registry.Intern("0xalice");
  const chain::AccountId bob = registry.Intern("0xbob");
  const chain::AccountId carol = registry.Intern("0xcarol");
  const chain::AccountId dave = registry.Intern("0xdave");
  const chain::AccountId erin = registry.Intern("0xerin");

  chain::Ledger ledger;
  std::vector<chain::Transaction> block0 = {
      chain::Transaction::Simple(alice, bob),
      chain::Transaction::Simple(bob, carol),
      chain::Transaction::Simple(carol, alice),
      chain::Transaction::Simple(dave, erin),
      chain::Transaction::Simple(erin, dave),
      chain::Transaction::Simple(alice, dave),  // The one bridge.
  };
  if (!ledger.Append(chain::Block(0, std::move(block0))).ok()) return 1;

  // 2. The transaction graph (Definition 2 of the paper).
  graph::TransactionGraph graph = graph::BuildTransactionGraph(ledger);
  std::printf("transaction graph: %zu accounts, %zu edges, weight %.1f\n",
              graph.num_nodes(), graph.num_edges(), graph.TotalWeight());

  // 3. Pick the strategy by name. Every method — TxAllo, the baselines,
  //    the broker decorator — hangs off the same registry.
  std::printf("allocator: %s (registered:", spec.c_str());
  for (const std::string& name : allocator::RegisteredNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(")\n");
  alloc::AllocationParams params =
      alloc::AllocationParams::ForExperiment(ledger.num_transactions(),
                                             /*num_shards=*/2, /*eta=*/2.0);
  allocator::AllocatorOptions options;
  options.params = params;
  options.registry = &registry;
  auto method = allocator::MakeAllocatorFromSpec(spec, options);
  if (!method.ok()) {
    std::fprintf(stderr, "allocator: %s\n",
                 method.status().ToString().c_str());
    return 1;
  }

  // 4. Allocate into k=2 shards with the paper's experimental setting
  //    (lambda = |T|/k, epsilon = 1e-5 |T|) and eta = 2.
  allocator::AllocationContext context;
  context.graph = &graph;
  context.ledger = &ledger;
  context.registry = &registry;
  context.params = params;
  auto allocation = (*method)->Allocate(context);
  if (!allocation.ok()) {
    std::fprintf(stderr, "allocation failed: %s\n",
                 allocation.status().ToString().c_str());
    return 1;
  }
  for (chain::AccountId a = 0; a < registry.size(); ++a) {
    std::printf("  %-8s -> shard %u\n", registry.AddressOf(a).c_str(),
                allocation->shard_of(a));
  }

  // 5. Evaluate under the strategy's own execution semantics. With the two
  //    groups separated (TxAllo's answer), only the bridge payment is
  //    cross-shard.
  auto report = (*method)->Evaluate(ledger, *allocation, params);
  if (!report.ok()) return 1;
  std::printf("cross-shard ratio : %.0f%% (%llu of 6 transactions)\n",
              100.0 * report->cross_shard_ratio,
              static_cast<unsigned long long>(
                  report->cross_shard_transactions));
  std::printf("throughput        : %.2f of %llu transactions\n",
              report->throughput,
              static_cast<unsigned long long>(report->total_transactions));
  std::printf("avg latency       : %.2f blocks\n",
              report->avg_latency_blocks);
  return 0;
}

// Quickstart: build a tiny ledger by hand, run G-TxAllo, inspect the
// mapping and the model metrics. Start here.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "txallo/alloc/metrics.h"
#include "txallo/chain/ledger.h"
#include "txallo/core/global.h"
#include "txallo/graph/builder.h"

int main() {
  using namespace txallo;

  // 1. A ledger: two groups of accounts that mostly transact internally
  //    ({alice, bob, carol} and {dave, erin}), plus one bridging payment.
  chain::AccountRegistry registry;
  const chain::AccountId alice = registry.Intern("0xalice");
  const chain::AccountId bob = registry.Intern("0xbob");
  const chain::AccountId carol = registry.Intern("0xcarol");
  const chain::AccountId dave = registry.Intern("0xdave");
  const chain::AccountId erin = registry.Intern("0xerin");

  chain::Ledger ledger;
  std::vector<chain::Transaction> block0 = {
      chain::Transaction::Simple(alice, bob),
      chain::Transaction::Simple(bob, carol),
      chain::Transaction::Simple(carol, alice),
      chain::Transaction::Simple(dave, erin),
      chain::Transaction::Simple(erin, dave),
      chain::Transaction::Simple(alice, dave),  // The one bridge.
  };
  if (!ledger.Append(chain::Block(0, std::move(block0))).ok()) return 1;

  // 2. The transaction graph (Definition 2 of the paper).
  graph::TransactionGraph graph = graph::BuildTransactionGraph(ledger);
  std::printf("transaction graph: %zu accounts, %zu edges, weight %.1f\n",
              graph.num_nodes(), graph.num_edges(), graph.TotalWeight());

  // 3. Allocate into k=2 shards with the paper's experimental setting
  //    (lambda = |T|/k, epsilon = 1e-5 |T|) and eta = 2.
  alloc::AllocationParams params =
      alloc::AllocationParams::ForExperiment(ledger.num_transactions(),
                                             /*num_shards=*/2, /*eta=*/2.0);
  auto allocation = core::RunGlobalTxAllo(graph, registry.IdsInHashOrder(),
                                          params);
  if (!allocation.ok()) {
    std::fprintf(stderr, "allocation failed: %s\n",
                 allocation.status().ToString().c_str());
    return 1;
  }
  for (chain::AccountId a = 0; a < registry.size(); ++a) {
    std::printf("  %-8s -> shard %u\n", registry.AddressOf(a).c_str(),
                allocation->shard_of(a));
  }

  // 4. Evaluate: with the two groups separated, only the bridge payment is
  //    cross-shard.
  auto report = alloc::EvaluateAllocation(ledger, *allocation, params);
  if (!report.ok()) return 1;
  std::printf("cross-shard ratio : %.0f%% (1 of 6 transactions)\n",
              100.0 * report->cross_shard_ratio);
  std::printf("throughput        : %.2f of %llu transactions\n",
              report->throughput,
              static_cast<unsigned long long>(report->total_transactions));
  std::printf("avg latency       : %.2f blocks\n",
              report->avg_latency_blocks);
  return 0;
}

// Ethereum-replay scenario: generate a realistic (long-tail, hub-heavy,
// community-structured) transaction trace — or load a real Ethereum-ETL
// CSV extract — and compare all four allocation methods on it.
//
//   ./build/examples/ethereum_replay [--txs=N] [--k=K] [--eta=E]
//   ./build/examples/ethereum_replay --csv=path/to/transactions.csv
#include <cstdio>

#include "txallo/alloc/metrics.h"
#include "txallo/baselines/hash_allocator.h"
#include "txallo/baselines/metis/partitioner.h"
#include "txallo/baselines/shard_scheduler.h"
#include "txallo/common/flags.h"
#include "txallo/common/stopwatch.h"
#include "txallo/core/global.h"
#include "txallo/graph/builder.h"
#include "txallo/workload/dataset.h"
#include "txallo/workload/ethereum_like.h"

int main(int argc, char** argv) {
  using namespace txallo;
  Flags flags = Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 16));
  const double eta = flags.GetDouble("eta", 4.0);

  // --- Obtain a trace: real CSV if given, synthetic otherwise. ---
  chain::Ledger ledger;
  chain::AccountRegistry registry;
  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    auto dataset = workload::LoadDatasetCsv(csv);
    if (!dataset.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", csv.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    ledger = std::move(dataset->ledger);
    registry = std::move(dataset->registry);
    std::printf("loaded %llu transactions / %zu accounts from %s\n",
                static_cast<unsigned long long>(ledger.num_transactions()),
                registry.size(), csv.c_str());
  } else {
    workload::EthereumLikeConfig config;
    config.txs_per_block = 200;
    config.num_blocks =
        static_cast<uint64_t>(flags.GetInt("txs", 200'000)) /
        config.txs_per_block;
    config.num_accounts = static_cast<uint64_t>(
        flags.GetInt("accounts", 32'000));
    config.num_communities = static_cast<uint32_t>(config.num_accounts / 160);
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    workload::EthereumLikeGenerator generator(config);
    ledger = generator.GenerateLedger(config.num_blocks);
    for (size_t a = 0; a < generator.registry().size(); ++a) {
      registry.Intern(
          generator.registry().AddressOf(static_cast<chain::AccountId>(a)));
    }
    std::printf("generated %llu synthetic transactions / %zu accounts\n",
                static_cast<unsigned long long>(ledger.num_transactions()),
                registry.size());
  }

  graph::TransactionGraph graph = graph::BuildTransactionGraph(ledger);
  graph.EnsureNodeCount(registry.size());
  graph.Consolidate();
  alloc::AllocationParams params =
      alloc::AllocationParams::ForExperiment(ledger.num_transactions(), k,
                                             eta);

  std::printf("\n%-16s %8s %10s %12s %10s %10s\n", "method", "gamma",
              "rho/lam", "Lambda/lam", "zeta(avg)", "alloc(s)");

  auto evaluate_and_print = [&](const char* name,
                                const alloc::Allocation& allocation,
                                double seconds) {
    auto report = alloc::EvaluateAllocation(ledger, allocation, params);
    if (!report.ok()) {
      std::fprintf(stderr, "%s evaluation failed: %s\n", name,
                   report.status().ToString().c_str());
      return;
    }
    std::printf("%-16s %8.3f %10.3f %12.2f %10.2f %10.3f\n", name,
                report->cross_shard_ratio,
                report->normalized_workload_stddev,
                report->normalized_throughput, report->avg_latency_blocks,
                seconds);
  };

  {
    Stopwatch watch;
    auto result =
        core::RunGlobalTxAllo(graph, registry.IdsInHashOrder(), params);
    if (!result.ok()) return 1;
    evaluate_and_print("TxAllo", *result, watch.ElapsedSeconds());
  }
  {
    Stopwatch watch;
    auto allocation = baselines::AllocateByHash(registry, k);
    evaluate_and_print("Random (hash)", allocation, watch.ElapsedSeconds());
  }
  {
    Stopwatch watch;
    auto result = baselines::metis::PartitionGraph(graph, k);
    if (!result.ok()) return 1;
    evaluate_and_print("METIS-style", *result, watch.ElapsedSeconds());
  }
  {
    Stopwatch watch;
    baselines::ShardScheduler scheduler(k, eta);
    scheduler.ProcessLedger(ledger);
    evaluate_and_print("Shard Scheduler",
                       scheduler.SnapshotAllocation(registry.size()),
                       watch.ElapsedSeconds());
  }
  return 0;
}

#include "txallo/workload/ethereum_like.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace txallo::workload {

using chain::AccountId;

namespace {

Status CheckFraction(const char* field, double value) {
  if (!(value >= 0.0 && value <= 1.0)) {
    return Status::InvalidArgument(
        std::string("EthereumLikeConfig.") + field +
        " must be in [0, 1], got " + std::to_string(value));
  }
  return Status::OK();
}

Status CheckNonNegative(const char* field, double value) {
  if (!(value >= 0.0)) {
    return Status::InvalidArgument(std::string("EthereumLikeConfig.") +
                                   field + " must be >= 0, got " +
                                   std::to_string(value));
  }
  return Status::OK();
}

}  // namespace

Status EthereumLikeConfig::Validate() const {
  if (num_blocks == 0) {
    return Status::InvalidArgument("EthereumLikeConfig.num_blocks must be > 0");
  }
  if (txs_per_block == 0) {
    return Status::InvalidArgument(
        "EthereumLikeConfig.txs_per_block must be > 0");
  }
  if (num_accounts < 2) {
    return Status::InvalidArgument(
        "EthereumLikeConfig.num_accounts must be >= 2, got " +
        std::to_string(num_accounts));
  }
  if (num_communities == 0) {
    return Status::InvalidArgument(
        "EthereumLikeConfig.num_communities must be > 0");
  }
  if (num_accounts < num_communities) {
    return Status::InvalidArgument(
        "EthereumLikeConfig.num_accounts (" + std::to_string(num_accounts) +
        ") must be >= num_communities (" + std::to_string(num_communities) +
        ")");
  }
  if (max_parties < 2) {
    return Status::InvalidArgument(
        "EthereumLikeConfig.max_parties must be >= 2, got " +
        std::to_string(max_parties));
  }
  if (initial_balance < 0) {
    return Status::InvalidArgument(
        "EthereumLikeConfig.initial_balance must be >= 0, got " +
        std::to_string(initial_balance));
  }
  TXALLO_RETURN_NOT_OK(CheckNonNegative("community_size_skew",
                                        community_size_skew));
  TXALLO_RETURN_NOT_OK(CheckNonNegative("member_activity_skew",
                                        member_activity_skew));
  TXALLO_RETURN_NOT_OK(CheckNonNegative("hub_sender_skew", hub_sender_skew));
  TXALLO_RETURN_NOT_OK(CheckFraction("p_intra_community", p_intra_community));
  TXALLO_RETURN_NOT_OK(CheckFraction("hub_share", hub_share));
  TXALLO_RETURN_NOT_OK(CheckFraction("hub_sender_local_bias",
                                     hub_sender_local_bias));
  TXALLO_RETURN_NOT_OK(CheckFraction("self_loop_rate", self_loop_rate));
  TXALLO_RETURN_NOT_OK(CheckFraction("multi_party_rate", multi_party_rate));
  TXALLO_RETURN_NOT_OK(CheckFraction("late_born_fraction",
                                     late_born_fraction));
  TXALLO_RETURN_NOT_OK(CheckFraction("drift_fraction", drift_fraction));
  TXALLO_RETURN_NOT_OK(CheckFraction("drift_partner_share",
                                     drift_partner_share));
  return Status::OK();
}

EthereumLikeGenerator::EthereumLikeGenerator(EthereumLikeConfig config)
    : config_(config), rng_(config.seed) {
  // --- Community sizes: Zipf over community rank, padded/trimmed on the
  // largest community so the total is exactly num_accounts. ---
  const uint32_t nc = std::max<uint32_t>(1, config_.num_communities);
  std::vector<double> raw(nc);
  double raw_total = 0.0;
  for (uint32_t c = 0; c < nc; ++c) {
    raw[c] = 1.0 / std::pow(static_cast<double>(c + 1),
                            config_.community_size_skew);
    raw_total += raw[c];
  }
  sizes_.resize(nc);
  uint64_t assigned = 0;
  for (uint32_t c = 0; c < nc; ++c) {
    uint64_t size = static_cast<uint64_t>(
        std::llround(raw[c] / raw_total *
                     static_cast<double>(config_.num_accounts)));
    if (size == 0) size = 1;
    sizes_[c] = size;
    assigned += size;
  }
  // Rebalance community 0 to hit the exact account budget.
  if (assigned > config_.num_accounts) {
    const uint64_t excess = assigned - config_.num_accounts;
    sizes_[0] = sizes_[0] > excess ? sizes_[0] - excess : 1;
  } else {
    sizes_[0] += config_.num_accounts - assigned;
  }

  starts_.resize(nc);
  uint64_t cursor = 0;
  for (uint32_t c = 0; c < nc; ++c) {
    starts_[c] = cursor;
    cursor += sizes_[c];
  }
  const uint64_t total_accounts = cursor;
  total_accounts_ = total_accounts;

  // --- Register all accounts (ids dense, birth handled at sampling time).
  // The first two members of every community are contract accounts: the
  // hot smart contracts the community clusters around. ---
  for (uint64_t id = 0; id < total_accounts; ++id) {
    const uint32_t c = CommunityOf(static_cast<AccountId>(id));
    const bool is_contract = id - starts_[c] < 2;
    registry_.CreateSynthetic(is_contract ? chain::AccountType::kContract
                                          : chain::AccountType::kExternallyOwned);
  }
  hub_ = static_cast<AccountId>(starts_[0]);

  // --- Community selection CDF: P(c) ∝ size_c. ---
  community_cdf_.resize(nc);
  double acc = 0.0;
  for (uint32_t c = 0; c < nc; ++c) {
    acc += static_cast<double>(sizes_[c]);
    community_cdf_[c] = acc;
  }
  for (uint32_t c = 0; c < nc; ++c) {
    community_cdf_[c] /= acc;
  }
  community_cdf_[nc - 1] = 1.0;

  hub_sender_communities_ =
      std::make_unique<ZipfSampler>(nc, config_.hub_sender_skew);

  // --- Per-community member activity samplers. ---
  member_samplers_.resize(nc);
  for (uint32_t c = 0; c < nc; ++c) {
    member_samplers_[c] = std::make_unique<ZipfSampler>(
        sizes_[c], config_.member_activity_skew);
  }

  partner_.resize(nc);
  for (uint32_t c = 0; c < nc; ++c) partner_[c] = c;
}

void EthereumLikeGenerator::MaybeApplyDrift() {
  if (config_.drift_interval_blocks == 0 || next_block_ == 0 ||
      next_block_ % config_.drift_interval_blocks != 0) {
    return;
  }
  const uint32_t nc = static_cast<uint32_t>(partner_.size());
  const uint64_t rewires = std::max<uint64_t>(
      1, static_cast<uint64_t>(config_.drift_fraction * nc));
  for (uint64_t i = 0; i < rewires; ++i) {
    const uint32_t c = static_cast<uint32_t>(rng_.NextBounded(nc));
    partner_[c] = static_cast<uint32_t>(rng_.NextBounded(nc));
  }
}

uint32_t EthereumLikeGenerator::CommunityOf(AccountId account) const {
  // Largest start <= account.
  auto it = std::upper_bound(starts_.begin(), starts_.end(),
                             static_cast<uint64_t>(account));
  return static_cast<uint32_t>(it - starts_.begin()) - 1;
}

chain::AccountId EthereumLikeGenerator::SampleFromCommunity(
    uint32_t community) {
  uint64_t rank = member_samplers_[community]->Sample(&rng_);
  // Birth gating: the late-born tail of each community only becomes
  // sampleable as the ledger progresses (fully born at 90% of num_blocks).
  const double progress =
      config_.num_blocks > 0
          ? std::min(1.0, static_cast<double>(next_block_) /
                              (0.9 * static_cast<double>(config_.num_blocks)))
          : 1.0;
  const double born_fraction =
      1.0 - config_.late_born_fraction * (1.0 - progress);
  uint64_t born = static_cast<uint64_t>(
      std::ceil(born_fraction * static_cast<double>(sizes_[community])));
  if (born == 0) born = 1;
  if (rank >= born) rank %= born;
  return static_cast<AccountId>(starts_[community] + rank);
}

chain::AccountId EthereumLikeGenerator::SampleAccount() {
  const double u = rng_.NextDouble();
  auto it = std::lower_bound(community_cdf_.begin(), community_cdf_.end(), u);
  uint32_t c = it == community_cdf_.end()
                   ? static_cast<uint32_t>(community_cdf_.size() - 1)
                   : static_cast<uint32_t>(it - community_cdf_.begin());
  return SampleFromCommunity(c);
}

chain::Transaction EthereumLikeGenerator::MakeTransaction() {
  if (rng_.NextBernoulli(config_.self_loop_rate)) {
    const AccountId a = SampleAccount();
    return chain::Transaction({a}, {a});
  }
  AccountId sender;
  AccountId receiver;
  if (rng_.NextBernoulli(config_.hub_share)) {
    receiver = hub_;
    if (rng_.NextBernoulli(config_.hub_sender_local_bias)) {
      sender = SampleFromCommunity(CommunityOf(hub_));
    } else {
      const uint32_t c = static_cast<uint32_t>(
          hub_sender_communities_->Sample(&rng_));
      sender = SampleFromCommunity(c);
    }
  } else {
    sender = SampleAccount();
    if (rng_.NextBernoulli(config_.p_intra_community)) {
      // Under drift, part of the community's traffic follows its partner.
      uint32_t c = CommunityOf(sender);
      if (partner_[c] != c &&
          rng_.NextBernoulli(config_.drift_partner_share)) {
        c = partner_[c];
      }
      receiver = SampleFromCommunity(c);
    } else {
      receiver = SampleAccount();
    }
  }
  if (receiver == sender) {
    receiver = SampleFromCommunity(CommunityOf(sender));
    if (receiver == sender) {
      // Still colliding (tiny/Zipf-heavy community): take the sender's
      // neighbor account so self-transfers stay at self_loop_rate.
      const uint32_t c = CommunityOf(sender);
      const uint64_t offset =
          (static_cast<uint64_t>(sender) - starts_[c] + 1) % sizes_[c];
      receiver = static_cast<AccountId>(starts_[c] + offset);
    }
  }

  std::vector<AccountId> outputs{receiver};
  if (config_.max_parties > 2 &&
      rng_.NextBernoulli(config_.multi_party_rate)) {
    const uint64_t extras = 1 + rng_.NextBounded(config_.max_parties - 2);
    for (uint64_t i = 0; i < extras; ++i) {
      if (rng_.NextBernoulli(config_.p_intra_community)) {
        outputs.push_back(SampleFromCommunity(CommunityOf(sender)));
      } else {
        outputs.push_back(SampleAccount());
      }
    }
  }
  return chain::Transaction({sender}, std::move(outputs));
}

chain::Block EthereumLikeGenerator::NextBlock() {
  MaybeApplyDrift();
  std::vector<chain::Transaction> txs;
  txs.reserve(config_.txs_per_block);
  for (uint64_t i = 0; i < config_.txs_per_block; ++i) {
    txs.push_back(MakeTransaction());
  }
  return chain::Block(next_block_++, std::move(txs));
}

chain::Ledger EthereumLikeGenerator::GenerateLedger(uint64_t n) {
  chain::Ledger ledger;
  for (uint64_t b = 0; b < n; ++b) {
    Status st = ledger.Append(NextBlock());
    if (!st.ok()) {
      // Block numbers are strictly increasing by construction; a failure
      // here means the generator contract itself broke — fail loudly
      // instead of silently dropping blocks from the experiment.
      std::fprintf(stderr, "EthereumLikeGenerator::GenerateLedger: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }
  return ledger;
}

}  // namespace txallo::workload

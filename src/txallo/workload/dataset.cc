#include "txallo/workload/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "txallo/common/csv.h"

namespace txallo::workload {

namespace {

// Splits a ';'-joined address list. Empty segments (leading/trailing ';',
// ";;", or an empty field) are malformed — an empty address would intern as
// a real account and silently absorb traffic — so they fail Corruption
// instead of being dropped.
Result<std::vector<std::string>> SplitAddresses(const std::string& joined) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= joined.size()) {
    size_t end = joined.find(';', start);
    if (end == std::string::npos) end = joined.size();
    if (end == start) {
      return Status::Corruption("empty address segment in '" + joined + "'");
    }
    out.push_back(joined.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string JoinAddresses(const Dataset& dataset,
                          const std::vector<chain::AccountId>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(';');
    out += dataset.registry.AddressOf(ids[i]);
  }
  return out;
}

}  // namespace

Result<Dataset> LoadDatasetCsv(const std::string& path) {
  auto rows_result = ReadCsvFile(path);
  if (!rows_result.ok()) return rows_result.status();
  const auto& rows = rows_result.value();

  Dataset dataset;
  uint64_t current_block = UINT64_MAX;
  std::vector<chain::Transaction> block_txs;

  auto flush_block = [&]() -> Status {
    if (current_block == UINT64_MAX) return Status::OK();
    return dataset.ledger.Append(
        chain::Block(current_block, std::move(block_txs)));
  };

  for (size_t r = 0; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.size() < 3) {
      return Status::Corruption("row " + std::to_string(r) +
                                ": expected 3 columns, got " +
                                std::to_string(row.size()));
    }
    if (r == 0 && row[0] == "block_number") continue;  // Header.
    char* end = nullptr;
    const uint64_t block = std::strtoull(row[0].c_str(), &end, 10);
    if (end == row[0].c_str()) {
      return Status::Corruption("row " + std::to_string(r) +
                                ": bad block number '" + row[0] + "'");
    }
    if (block != current_block) {
      if (current_block != UINT64_MAX && block < current_block) {
        return Status::Corruption("row " + std::to_string(r) +
                                  ": block numbers must be non-decreasing");
      }
      TXALLO_RETURN_NOT_OK(flush_block());
      current_block = block;
      block_txs.clear();
    }
    // Duplicate addresses within one side are normalized away (first-seen
    // order kept): they carry no information the graph layer uses, and
    // deduping here makes the load -> save round trip stable.
    auto intern_side = [&](const std::string& joined, size_t row_index)
        -> Result<std::vector<chain::AccountId>> {
      Result<std::vector<std::string>> addrs = SplitAddresses(joined);
      if (!addrs.ok()) {
        return Status::Corruption("row " + std::to_string(row_index) + ": " +
                                  addrs.status().message());
      }
      std::vector<chain::AccountId> ids;
      ids.reserve(addrs->size());
      for (const std::string& addr : *addrs) {
        const chain::AccountId id = dataset.registry.Intern(addr);
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
      return ids;
    };
    Result<std::vector<chain::AccountId>> inputs = intern_side(row[1], r);
    if (!inputs.ok()) return inputs.status();
    Result<std::vector<chain::AccountId>> outputs = intern_side(row[2], r);
    if (!outputs.ok()) return outputs.status();
    if (inputs->empty() || outputs->empty()) {
      return Status::Corruption("row " + std::to_string(r) +
                                ": transactions need >=1 input and output");
    }
    block_txs.emplace_back(std::move(inputs.value()),
                           std::move(outputs.value()));
  }
  TXALLO_RETURN_NOT_OK(flush_block());
  return dataset;
}

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  CsvWriter writer(path);
  if (!writer.ok()) return Status::IOError("cannot open for write: " + path);
  TXALLO_RETURN_NOT_OK(
      writer.WriteRow({"block_number", "inputs", "outputs"}));
  for (const chain::Block& block : dataset.ledger.blocks()) {
    for (const chain::Transaction& tx : block.transactions()) {
      TXALLO_RETURN_NOT_OK(writer.WriteRow(
          {std::to_string(block.number()), JoinAddresses(dataset, tx.inputs()),
           JoinAddresses(dataset, tx.outputs())}));
    }
  }
  return writer.Close();
}

std::pair<chain::Ledger, chain::Ledger> SplitLedger(
    const chain::Ledger& ledger, double prefix_fraction) {
  prefix_fraction = std::clamp(prefix_fraction, 0.0, 1.0);
  // Round half-up: truncation would turn e.g. 0.9 * 95 = 85.499...9 (the
  // product is not exactly representable) into an 85-block prefix and
  // silently move a block across the paper's 9:1 train/eval split.
  // llround is round-half-away-from-zero, which on a non-negative product
  // is exactly round-half-up, portably.
  size_t cut = static_cast<size_t>(std::llround(
      prefix_fraction * static_cast<double>(ledger.num_blocks())));
  cut = std::min<size_t>(cut, ledger.num_blocks());
  chain::Ledger prefix, suffix;
  const auto& blocks = ledger.blocks();
  for (size_t i = 0; i < blocks.size(); ++i) {
    Status st = (i < cut ? prefix : suffix).Append(blocks[i]);
    if (!st.ok()) {
      // Appending in ledger order cannot produce a decreasing block
      // number; if it does, the input ledger violated its own invariant.
      std::fprintf(stderr, "SplitLedger: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  return {std::move(prefix), std::move(suffix)};
}

}  // namespace txallo::workload

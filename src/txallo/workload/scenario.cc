#include "txallo/workload/scenario.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "txallo/workload/scenario_overlays.h"

namespace txallo::workload {

using chain::AccountId;

chain::Ledger Scenario::GenerateLedger(uint64_t n) {
  chain::Ledger ledger;
  for (uint64_t b = 0; b < n; ++b) {
    Status st = ledger.Append(NextBlock());
    if (!st.ok()) {
      std::fprintf(stderr, "Scenario::GenerateLedger (%s): %s\n",
                   spec_.c_str(), st.ToString().c_str());
      std::abort();
    }
  }
  return ledger;
}

OverlayScenario::OverlayScenario(
    std::string spec, const EthereumLikeConfig& background,
    std::vector<std::unique_ptr<Overlay>> overlays)
    : Scenario(std::move(spec)),
      background_(background),
      overlays_(std::move(overlays)),
      // Distinct stream from the background's RNG: overlay draws must not
      // perturb the background pattern of a scenario with share 0.
      overlay_rng_(background.seed ^ 0x9e3779b97f4a7c15ULL) {
  for (std::unique_ptr<Overlay>& overlay : overlays_) {
    overlay->Prepare(&background_);
  }
}

chain::Block OverlayScenario::NextBlock() {
  chain::Block block = background_.NextBlock();
  if (overlays_.empty()) return block;
  const uint64_t number = block.number();
  for (std::unique_ptr<Overlay>& overlay : overlays_) {
    overlay->BeginBlock(number, &overlay_rng_);
  }
  for (chain::Transaction& tx : block.mutable_transactions()) {
    const double u = overlay_rng_.NextDouble();
    double cumulative = 0.0;
    for (std::unique_ptr<Overlay>& overlay : overlays_) {
      cumulative += overlay->Share(number);
      if (u < cumulative) {
        tx = overlay->Generate(number, &overlay_rng_, &background_);
        break;
      }
    }
  }
  return block;
}

// --- Hot-contract spike -------------------------------------------------

void HotSpikeOverlay::Prepare(EthereumLikeGenerator* background) {
  mint_ = background->mutable_registry()->CreateSynthetic(
      chain::AccountType::kContract);
}

double HotSpikeOverlay::Share(uint64_t block) const {
  if (block < params_.start) return 0.0;
  uint64_t t = block - params_.start;
  if (t < params_.ramp) {
    return params_.peak_share * static_cast<double>(t + 1) /
           static_cast<double>(params_.ramp);
  }
  t -= params_.ramp;
  if (t < params_.hold) return params_.peak_share;
  t -= params_.hold;
  if (t < params_.decay) {
    return params_.peak_share * static_cast<double>(params_.decay - t) /
           static_cast<double>(params_.decay);
  }
  return 0.0;
}

chain::Transaction HotSpikeOverlay::Generate(
    uint64_t block, Rng* rng, EthereumLikeGenerator* background) {
  (void)block;
  (void)rng;
  // The flash crowd comes from everywhere: senders follow the background's
  // full activity distribution, not one community.
  const AccountId sender = background->SampleAccount();
  return chain::Transaction({sender}, {mint_});
}

// --- Diurnal drift ------------------------------------------------------

chain::Transaction DiurnalOverlay::Generate(
    uint64_t block, Rng* rng, EthereumLikeGenerator* background) {
  const uint32_t nc = background->num_communities();
  const uint32_t width = std::max<uint32_t>(1, std::min(params_.width, nc));
  // The awake window rotates through all communities once per period.
  const uint64_t base =
      (block % params_.period) * nc / std::max<uint64_t>(1, params_.period);
  const uint32_t c = static_cast<uint32_t>(
      (base + rng->NextBounded(width)) % nc);
  const AccountId sender = background->SampleFromCommunity(c);
  AccountId receiver = background->SampleFromCommunity(c);
  if (receiver == sender) receiver = background->SampleFromCommunity(c);
  return chain::Transaction({sender}, {receiver});
}

// --- Account churn ------------------------------------------------------

void ChurnOverlay::Prepare(EthereumLikeGenerator* background) {
  pool_.reserve(params_.pool);
  for (uint64_t i = 0; i < params_.pool; ++i) {
    pool_.push_back(background->mutable_registry()->CreateSynthetic(
        chain::AccountType::kExternallyOwned));
  }
  spacing_ = std::max<uint64_t>(
      1, params_.horizon_blocks / std::max<uint64_t>(1, params_.pool));
}

chain::Transaction ChurnOverlay::Generate(
    uint64_t block, Rng* rng, EthereumLikeGenerator* background) {
  // Pool account j is born at j * spacing_ and dies lifetime blocks later.
  const uint64_t lo =
      block >= params_.lifetime ? (block - params_.lifetime) / spacing_ + 1
                                : 0;
  const uint64_t hi = std::min<uint64_t>(pool_.size() - 1, block / spacing_);
  if (pool_.empty() || lo > hi) {
    // Between generations (long spacing, short lifetime): plain background
    // traffic.
    const AccountId sender = background->SampleAccount();
    const AccountId receiver = background->SampleAccount();
    return chain::Transaction({sender}, {receiver});
  }
  const uint64_t j = lo + rng->NextBounded(hi - lo + 1);
  const AccountId sender = pool_[j];
  AccountId receiver;
  if (hi > lo && rng->NextBernoulli(params_.intra)) {
    uint64_t j2 = lo + rng->NextBounded(hi - lo + 1);
    if (j2 == j) j2 = lo + (j2 - lo + 1) % (hi - lo + 1);
    receiver = pool_[j2];
  } else {
    receiver = background->SampleAccount();
  }
  return chain::Transaction({sender}, {receiver});
}

// --- Multi-asset transfers ----------------------------------------------

void MultiAssetOverlay::Prepare(EthereumLikeGenerator* background) {
  assets_.reserve(params_.assets);
  for (uint32_t i = 0; i < params_.assets; ++i) {
    assets_.push_back(background->mutable_registry()->CreateSynthetic(
        chain::AccountType::kContract));
  }
  asset_zipf_ =
      std::make_unique<ZipfSampler>(params_.assets, params_.asset_skew);
}

chain::Transaction MultiAssetOverlay::Generate(
    uint64_t block, Rng* rng, EthereumLikeGenerator* background) {
  (void)block;
  const AccountId sender = background->SampleAccount();
  const uint32_t c = background->CommunityOf(sender);
  const AccountId receiver = background->SampleFromCommunity(c);
  // Community c leans on "its" asset; the Zipf offset makes popular assets
  // shared across neighboring communities.
  const size_t asset_index =
      (c + asset_zipf_->Sample(rng)) % assets_.size();
  return chain::Transaction({sender}, {receiver, assets_[asset_index]});
}

// --- Single-shard overload attack ---------------------------------------

void ShardAttackOverlay::Prepare(EthereumLikeGenerator* background) {
  attackers_.reserve(params_.attackers);
  for (uint32_t i = 0; i < params_.attackers; ++i) {
    attackers_.push_back(background->mutable_registry()->CreateSynthetic(
        chain::AccountType::kExternallyOwned));
  }
  // The victims are exactly the accounts hash routing pins to the target
  // shard: OrderKey(id) % shards == target (see baselines/hash_allocator).
  const chain::AccountRegistry& registry = background->registry();
  const uint64_t n = background->num_background_accounts();
  for (uint64_t id = 0; id < n; ++id) {
    if (registry.OrderKey(static_cast<AccountId>(id)) % params_.shards ==
        params_.target) {
      victims_.push_back(static_cast<AccountId>(id));
    }
  }
  if (victims_.empty()) victims_.push_back(background->hub_account());
  victim_zipf_ =
      std::make_unique<ZipfSampler>(victims_.size(), params_.victim_skew);
}

chain::Transaction ShardAttackOverlay::Generate(
    uint64_t block, Rng* rng, EthereumLikeGenerator* background) {
  (void)block;
  (void)background;
  const AccountId attacker = attackers_[rng->NextBounded(attackers_.size())];
  const AccountId victim = victims_[victim_zipf_->Sample(rng)];
  return chain::Transaction({attacker}, {victim});
}

// --- Sybil fan-out ------------------------------------------------------

void SybilOverlay::Prepare(EthereumLikeGenerator* background) {
  sybils_.reserve(params_.sybils);
  for (uint64_t i = 0; i < params_.sybils; ++i) {
    sybils_.push_back(background->mutable_registry()->CreateSynthetic(
        chain::AccountType::kExternallyOwned));
  }
}

chain::Transaction SybilOverlay::Generate(
    uint64_t block, Rng* rng, EthereumLikeGenerator* background) {
  // Sybils are born at a constant rate across the horizon; the newest born
  // are as likely to act as the oldest (no activity skew — that is the
  // point of a sybil swarm).
  const uint64_t born = std::min<uint64_t>(
      sybils_.size(),
      1 + block * sybils_.size() /
              std::max<uint64_t>(1, params_.horizon_blocks));
  const AccountId sybil = sybils_[rng->NextBounded(born)];
  std::vector<AccountId> outputs;
  outputs.reserve(params_.fanout);
  for (uint32_t i = 0; i < params_.fanout; ++i) {
    outputs.push_back(background->SampleAccount());
  }
  return chain::Transaction({sybil}, std::move(outputs));
}

}  // namespace txallo::workload

// Synthetic Ethereum-like transaction workload.
//
// Substitute for the paper's dataset (Ethereum blocks 10,000,000-10,600,000;
// 91.8M transactions, 12.6M accounts), reproducing the statistics the paper
// documents and that drive every evaluated behaviour (§VI-A, Fig. 1):
//   * long-tail account activity (Zipf within and across latent
//     communities) — "most accounts ... only have very few records";
//   * one hub account involved in ~11% of all transactions — "about 11%
//     transactions are associated with the most active account";
//   * community structure (transactions prefer counterparties inside the
//     sender's latent community) — what graph-based allocation exploits;
//   * multi-input/multi-output transactions and self-loop transactions
//     (§V-B's pending-withdrawal example);
//   * account churn: a configurable fraction of each community is
//     "late-born" and first transacts partway through the ledger, feeding
//     A-TxAllo's new-node path.
// Deterministic for a given seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "txallo/chain/account.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/rng.h"
#include "txallo/common/status.h"
#include "txallo/common/zipf.h"

namespace txallo::workload {

struct EthereumLikeConfig {
  uint64_t num_blocks = 2'000;
  uint64_t txs_per_block = 200;
  /// Total accounts created (some may never transact).
  uint64_t num_accounts = 64'000;
  /// Latent communities; sizes follow Zipf(community_size_skew).
  uint32_t num_communities = 400;
  double community_size_skew = 0.6;
  /// Within-community activity skew.
  double member_activity_skew = 1.1;
  /// Probability that a transaction's counterparty is drawn from the
  /// sender's own community (the community structure strength).
  double p_intra_community = 0.92;
  /// Probability a transaction involves the global hub account (the
  /// paper's most-active account, ~11%).
  double hub_share = 0.11;
  /// Fraction of hub transactions whose sender comes from the hub's own
  /// community (exchange/contract users cluster around it); the rest come
  /// from anywhere and are irreducibly cross-shard.
  double hub_sender_local_bias = 0.5;
  /// Community skew of the remaining hub senders: they are drawn from
  /// communities by Zipf(rank, hub_sender_skew) rather than uniformly by
  /// size. Real hub counterparties are the chain's active head — without
  /// this, every tail community acquires hub edges and the absorption
  /// phase snowballs them all into the hub's shard.
  double hub_sender_skew = 1.3;
  /// Probability of a self-transfer (single-account transaction).
  double self_loop_rate = 0.002;
  /// Probability a transaction touches more than two accounts.
  double multi_party_rate = 0.05;
  /// Max distinct accounts of a multi-party transaction.
  uint32_t max_parties = 5;
  /// Fraction of each community born only as the ledger progresses.
  double late_born_fraction = 0.3;
  /// Funding level for the engine's account-state backend: every account
  /// starts (lazily, at first touch) with this balance. Part of the
  /// workload description — benches and fixtures copy it into
  /// EngineConfig::state.initial_balance so the funded workload and the
  /// executing backend can never drift apart. Tight funding makes
  /// insufficient-balance aborts part of the workload.
  int64_t initial_balance = 1'000'000;
  /// Transaction-pattern drift: every `drift_interval_blocks` blocks,
  /// `drift_fraction` of communities are re-pointed at a new partner
  /// community and route `drift_partner_share` of their intra traffic to
  /// it. 0 disables drift. Drift is what makes stale allocations decay —
  /// the stress test for A-TxAllo and for recency-weighted history.
  uint64_t drift_interval_blocks = 0;
  double drift_fraction = 0.1;
  double drift_partner_share = 0.5;
  uint64_t seed = 42;

  /// InvalidArgument on a config that would otherwise proceed into UB or
  /// silent nonsense: zero blocks/txs/accounts, fewer accounts than
  /// communities, out-of-range probabilities, negative skews,
  /// max_parties < 2. Construction does not call this (the defaults are
  /// valid and hot paths trust their caller); the scenario registry and
  /// every spec-string entry point do.
  Status Validate() const;
};

/// Stateful block-by-block generator. Accounts are pre-interned into the
/// registry (ids are dense); "birth" only controls when an account may
/// first appear in a transaction.
class EthereumLikeGenerator {
 public:
  explicit EthereumLikeGenerator(EthereumLikeConfig config);

  /// Generates the next block (block numbers increase from 0).
  chain::Block NextBlock();

  /// Generates `n` consecutive blocks into a fresh ledger.
  chain::Ledger GenerateLedger(uint64_t n);

  const chain::AccountRegistry& registry() const { return registry_; }
  const EthereumLikeConfig& config() const { return config_; }

  /// Mutable registry access for scenario overlays that intern extra
  /// synthetic accounts (mint contracts, sybil pools, asset contracts) on
  /// top of the background population. Overlay accounts get ids after the
  /// background accounts; CommunityOf()/SampleAccount() never return them.
  chain::AccountRegistry* mutable_registry() { return &registry_; }

  /// The designated hub account.
  chain::AccountId hub_account() const { return hub_; }

  uint64_t blocks_generated() const { return next_block_; }

  /// Number of background accounts (excludes any overlay-interned extras).
  uint64_t num_background_accounts() const { return total_accounts_; }

  uint32_t num_communities() const {
    return static_cast<uint32_t>(sizes_.size());
  }

  // Sampling hooks for scenario overlays (scenario.cc): draw background
  // accounts with the generator's own activity/birth model and RNG, so
  // overlay traffic targets the same long-tail population the background
  // produces. All draws advance rng_; call order is part of the seed
  // contract.
  chain::AccountId SampleAccount();
  chain::AccountId SampleFromCommunity(uint32_t community);
  uint32_t CommunityOf(chain::AccountId account) const;

 private:
  chain::Transaction MakeTransaction();
  void MaybeApplyDrift();

  EthereumLikeConfig config_;
  chain::AccountRegistry registry_;
  Rng rng_;
  uint64_t next_block_ = 0;
  uint64_t total_accounts_ = 0;

  // Community c owns account ids [starts_[c], starts_[c] + sizes_[c]).
  std::vector<uint64_t> starts_;
  std::vector<uint64_t> sizes_;
  std::vector<double> community_cdf_;  // P(community) ∝ its size.
  std::unique_ptr<ZipfSampler> hub_sender_communities_;
  std::vector<std::unique_ptr<ZipfSampler>> member_samplers_;
  std::vector<uint32_t> partner_;  // Drift partner per community.
  chain::AccountId hub_ = 0;
};

}  // namespace txallo::workload

// Timeline streaming over a ledger: fixed-size windows of blocks (the
// paper's "time steps" of τ1 = 300 blocks in Fig. 9/10), for driving the
// hybrid controller and the adaptive benchmarks.
#pragma once

#include <cstddef>

#include "txallo/chain/ledger.h"

namespace txallo::workload {

/// Iterates a ledger in windows of `blocks_per_step` consecutive blocks.
class BlockWindowStream {
 public:
  BlockWindowStream(const chain::Ledger* ledger, size_t blocks_per_step)
      : ledger_(ledger), blocks_per_step_(blocks_per_step) {}

  /// A zero-width window can never advance the cursor, so blocks_per_step
  /// == 0 yields no windows at all (consistent with NumWindows() == 0)
  /// instead of looping `while (!Done()) Next()` callers forever.
  bool Done() const {
    return blocks_per_step_ == 0 || cursor_ >= ledger_->num_blocks();
  }

  /// Index range [first, last) of the next window; advances the cursor.
  struct Window {
    size_t first_block_index;
    size_t last_block_index;
  };
  Window Next();

  /// Total number of windows.
  size_t NumWindows() const;

 private:
  const chain::Ledger* ledger_;
  size_t blocks_per_step_;
  size_t cursor_ = 0;
};

}  // namespace txallo::workload

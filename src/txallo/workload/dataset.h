// Dataset container: an account registry plus a ledger, with CSV
// import/export (Ethereum-ETL style extracts) and the 9:1 prefix/suffix
// split the paper uses for the A-TxAllo evaluation (§VI-C).
//
// CSV format (one row per transaction, header optional):
//   block_number,inputs,outputs
// where inputs/outputs are ';'-separated account addresses, e.g.
//   12345,0xabc,0xdef;0x123
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "txallo/chain/account.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"

namespace txallo::workload {

/// Owns the accounts and blocks of one experiment.
struct Dataset {
  chain::AccountRegistry registry;
  chain::Ledger ledger;

  uint64_t num_transactions() const { return ledger.num_transactions(); }
  size_t num_accounts() const { return registry.size(); }
};

/// Loads a CSV transaction dump, interning addresses in row order.
Result<Dataset> LoadDatasetCsv(const std::string& path);

/// Writes `dataset` in the same CSV format (with header).
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Splits a ledger at `prefix_fraction` of its blocks (e.g. 0.9 for the
/// paper's 9:1 split). Returns {prefix, suffix}; blocks are copied.
std::pair<chain::Ledger, chain::Ledger> SplitLedger(
    const chain::Ledger& ledger, double prefix_fraction);

}  // namespace txallo::workload

// The primitive overlay generators the scenario registry composes (see
// scenario.h for the composition model). Each overlay is directly
// constructible for tests; spec-string defaults and validation live in
// scenario_registry.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "txallo/common/zipf.h"
#include "txallo/workload/scenario.h"

namespace txallo::workload {

/// NFT-mint flash crowd: one contract account ramps to a dominant share of
/// all traffic, with senders drawn from the whole background population.
/// Share is 0 before `start`, ramps linearly to `peak_share` over `ramp`
/// blocks, holds for `hold`, decays linearly over `decay`, then 0 again.
struct HotSpikeParams {
  uint64_t start = 0;
  uint64_t ramp = 1;
  uint64_t hold = 1;
  uint64_t decay = 1;
  double peak_share = 0.6;
};

class HotSpikeOverlay : public Overlay {
 public:
  explicit HotSpikeOverlay(HotSpikeParams params) : params_(params) {}
  void Prepare(EthereumLikeGenerator* background) override;
  double Share(uint64_t block) const override;
  chain::Transaction Generate(uint64_t block, Rng* rng,
                              EthereumLikeGenerator* background) override;
  chain::AccountId mint_account() const { return mint_; }

 private:
  HotSpikeParams params_;
  chain::AccountId mint_ = chain::kInvalidAccount;
};

/// Diurnal drift: a `share` of traffic is "time-of-day" dependent, rotating
/// through the communities once per `period` blocks — at any block only a
/// window of `width` communities is awake for that traffic. Stresses
/// allocations built on stale activity.
struct DiurnalParams {
  uint64_t period = 24;
  double share = 0.5;
  uint32_t width = 4;
};

class DiurnalOverlay : public Overlay {
 public:
  explicit DiurnalOverlay(DiurnalParams params) : params_(params) {}
  double Share(uint64_t /*block*/) const override { return params_.share; }
  chain::Transaction Generate(uint64_t block, Rng* rng,
                              EthereumLikeGenerator* background) override;

 private:
  DiurnalParams params_;
};

/// Account churn beyond the background's late-born knob: a pool of
/// short-lived accounts with staggered births (one every
/// `horizon_blocks / pool` blocks) that stop transacting `lifetime` blocks
/// after birth. Feeds A-TxAllo's new-node path continuously and leaves dead
/// weight in stale allocations.
struct ChurnParams {
  uint64_t pool = 256;
  uint64_t lifetime = 16;
  double share = 0.3;
  /// Probability a churn transaction's counterparty is another live churn
  /// account (vs. a background account).
  double intra = 0.5;
  uint64_t horizon_blocks = 64;
};

class ChurnOverlay : public Overlay {
 public:
  explicit ChurnOverlay(ChurnParams params) : params_(params) {}
  void Prepare(EthereumLikeGenerator* background) override;
  double Share(uint64_t /*block*/) const override { return params_.share; }
  chain::Transaction Generate(uint64_t block, Rng* rng,
                              EthereumLikeGenerator* background) override;

 private:
  ChurnParams params_;
  std::vector<chain::AccountId> pool_;
  uint64_t spacing_ = 1;
};

/// Multi-asset transfers (syscoin-style asset allocations): transfers carry
/// an extra asset-contract output. Communities prefer "their" asset
/// (community c leans on asset (c + Zipf) mod assets), so asset contracts
/// become shared hot accounts between communities.
struct MultiAssetParams {
  uint32_t assets = 8;
  double share = 0.4;
  double asset_skew = 1.0;
};

class MultiAssetOverlay : public Overlay {
 public:
  explicit MultiAssetOverlay(MultiAssetParams params) : params_(params) {}
  void Prepare(EthereumLikeGenerator* background) override;
  double Share(uint64_t /*block*/) const override { return params_.share; }
  chain::Transaction Generate(uint64_t block, Rng* rng,
                              EthereumLikeGenerator* background) override;

 private:
  MultiAssetParams params_;
  std::vector<chain::AccountId> assets_;
  std::unique_ptr<ZipfSampler> asset_zipf_;
};

/// Single-shard overload attack: `attackers` fresh accounts concentrate
/// `share` of all traffic on the background accounts that hash routing
/// (`OrderKey(id) % shards`) would place on shard `target`. Under the hash
/// baseline every one of these transactions lands on (or crosses into) the
/// victim shard; history-driven allocators can spread the victims.
struct ShardAttackParams {
  uint32_t shards = 8;
  uint32_t target = 0;
  uint32_t attackers = 64;
  double share = 0.4;
  double victim_skew = 1.0;
};

class ShardAttackOverlay : public Overlay {
 public:
  explicit ShardAttackOverlay(ShardAttackParams params) : params_(params) {}
  void Prepare(EthereumLikeGenerator* background) override;
  double Share(uint64_t /*block*/) const override { return params_.share; }
  chain::Transaction Generate(uint64_t block, Rng* rng,
                              EthereumLikeGenerator* background) override;
  size_t num_victims() const { return victims_.size(); }

 private:
  ShardAttackParams params_;
  std::vector<chain::AccountId> attackers_;
  std::vector<chain::AccountId> victims_;
  std::unique_ptr<ZipfSampler> victim_zipf_;
};

/// Sybil fan-out: a pool of fresh addresses born over the run, each
/// spraying `fanout`-output transactions at the (activity-skewed)
/// background population. Pure new-account pressure with no history to
/// exploit.
struct SybilParams {
  uint64_t sybils = 512;
  uint32_t fanout = 4;
  double share = 0.3;
  uint64_t horizon_blocks = 64;
};

class SybilOverlay : public Overlay {
 public:
  explicit SybilOverlay(SybilParams params) : params_(params) {}
  void Prepare(EthereumLikeGenerator* background) override;
  double Share(uint64_t /*block*/) const override { return params_.share; }
  chain::Transaction Generate(uint64_t block, Rng* rng,
                              EthereumLikeGenerator* background) override;

 private:
  SybilParams params_;
  std::vector<chain::AccountId> sybils_;
};

}  // namespace txallo::workload

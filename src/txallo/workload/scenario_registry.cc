#include "txallo/workload/scenario_registry.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "txallo/common/spec.h"
#include "txallo/workload/scenario_overlays.h"

namespace txallo::workload {

namespace {

using OptionMap = std::map<std::string, std::string>;

// Strict typed readers (same contract as the allocator registry's): the
// whole value must parse, otherwise InvalidArgument naming key and value.
Status ReadUint64(const OptionMap& options, const std::string& key,
                  uint64_t* out) {
  auto it = options.find(key);
  if (it == options.end()) return Status::OK();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("option '" + key + "' expects a "
                                   "non-negative integer, got '" +
                                   it->second + "'");
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

Status ReadUint32(const OptionMap& options, const std::string& key,
                  uint32_t* out) {
  uint64_t v = *out;
  TXALLO_RETURN_NOT_OK(ReadUint64(options, key, &v));
  if (v > UINT32_MAX) {
    return Status::InvalidArgument("option '" + key + "' out of range: " +
                                   std::to_string(v));
  }
  *out = static_cast<uint32_t>(v);
  return Status::OK();
}

Status ReadInt64(const OptionMap& options, const std::string& key,
                 int64_t* out) {
  auto it = options.find(key);
  if (it == options.end()) return Status::OK();
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("option '" + key +
                                   "' expects an integer, got '" +
                                   it->second + "'");
  }
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ReadDouble(const OptionMap& options, const std::string& key,
                  double* out) {
  auto it = options.find(key);
  if (it == options.end()) return Status::OK();
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("option '" + key +
                                   "' expects a number, got '" + it->second +
                                   "'");
  }
  *out = v;
  return Status::OK();
}

Status ReadFraction(const OptionMap& options, const std::string& key,
                    double* out) {
  TXALLO_RETURN_NOT_OK(ReadDouble(options, key, out));
  if (!(*out >= 0.0 && *out <= 1.0)) {
    return Status::InvalidArgument("option '" + key +
                                   "' must be in [0, 1], got " +
                                   std::to_string(*out));
  }
  return Status::OK();
}

// Shape keys every scenario accepts (applied before the specific keys).
constexpr const char* kCommonKeys[] = {
    "blocks", "txs-per-block", "accounts", "communities", "balance", "seed",
};

Status ApplyCommonKeys(const OptionMap& options, ScenarioShape* shape) {
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "blocks", &shape->num_blocks));
  TXALLO_RETURN_NOT_OK(
      ReadUint64(options, "txs-per-block", &shape->txs_per_block));
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "accounts", &shape->num_accounts));
  TXALLO_RETURN_NOT_OK(
      ReadUint32(options, "communities", &shape->num_communities));
  TXALLO_RETURN_NOT_OK(
      ReadInt64(options, "balance", &shape->initial_balance));
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "seed", &shape->seed));
  return Status::OK();
}

// Rejects any key outside the common + scenario-specific set.
Status ExpectOnly(const std::string& name, const OptionMap& options,
                  std::initializer_list<const char*> specific) {
  for (const auto& [key, value] : options) {
    bool found = false;
    for (const char* k : kCommonKeys) {
      if (key == k) {
        found = true;
        break;
      }
    }
    for (const char* k : specific) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string list;
      for (const char* k : kCommonKeys) {
        if (!list.empty()) list += ", ";
        list += k;
      }
      for (const char* k : specific) {
        list += ", ";
        list += k;
      }
      return Status::InvalidArgument("unknown option '" + key +
                                     "' for scenario '" + name +
                                     "' (known: " + list + ")");
    }
  }
  return Status::OK();
}

using Factory = Result<std::unique_ptr<Scenario>> (*)(
    const std::string& spec, const std::string& name,
    const ScenarioShape& shape, const OptionMap& options);

Result<std::unique_ptr<Scenario>> FinishScenario(
    const std::string& spec, EthereumLikeConfig config,
    std::vector<std::unique_ptr<Overlay>> overlays) {
  TXALLO_RETURN_NOT_OK(config.Validate());
  return std::unique_ptr<Scenario>(
      new OverlayScenario(spec, config, std::move(overlays)));
}

Result<std::unique_ptr<Scenario>> MakeEthereum(const std::string& spec,
                                               const std::string& name,
                                               const ScenarioShape& shape,
                                               const OptionMap& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(
      name, options,
      {"intra", "hub-share", "self-loop", "multi-party", "late-born",
       "drift-interval", "drift-fraction", "drift-share"}));
  EthereumLikeConfig config = shape.ToEthereumConfig();
  TXALLO_RETURN_NOT_OK(
      ReadFraction(options, "intra", &config.p_intra_community));
  TXALLO_RETURN_NOT_OK(ReadFraction(options, "hub-share", &config.hub_share));
  TXALLO_RETURN_NOT_OK(
      ReadFraction(options, "self-loop", &config.self_loop_rate));
  TXALLO_RETURN_NOT_OK(
      ReadFraction(options, "multi-party", &config.multi_party_rate));
  TXALLO_RETURN_NOT_OK(
      ReadFraction(options, "late-born", &config.late_born_fraction));
  TXALLO_RETURN_NOT_OK(
      ReadUint64(options, "drift-interval", &config.drift_interval_blocks));
  TXALLO_RETURN_NOT_OK(
      ReadFraction(options, "drift-fraction", &config.drift_fraction));
  TXALLO_RETURN_NOT_OK(
      ReadFraction(options, "drift-share", &config.drift_partner_share));
  return FinishScenario(spec, config, {});
}

Result<std::unique_ptr<Scenario>> MakeSpike(const std::string& spec,
                                            const std::string& name,
                                            const ScenarioShape& shape,
                                            const OptionMap& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(
      name, options, {"start", "ramp", "hold", "decay", "peak-share"}));
  const uint64_t nb = shape.num_blocks;
  HotSpikeParams params;
  params.start = nb / 4;
  params.ramp = std::max<uint64_t>(1, nb / 8);
  params.hold = std::max<uint64_t>(1, nb / 4);
  params.decay = std::max<uint64_t>(1, nb / 8);
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "start", &params.start));
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "ramp", &params.ramp));
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "hold", &params.hold));
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "decay", &params.decay));
  TXALLO_RETURN_NOT_OK(
      ReadFraction(options, "peak-share", &params.peak_share));
  if (params.ramp == 0 || params.decay == 0) {
    return Status::InvalidArgument(
        "scenario 'spike': ramp and decay must be >= 1 block");
  }
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<HotSpikeOverlay>(params));
  return FinishScenario(spec, shape.ToEthereumConfig(), std::move(overlays));
}

Result<std::unique_ptr<Scenario>> MakeDiurnal(const std::string& spec,
                                              const std::string& name,
                                              const ScenarioShape& shape,
                                              const OptionMap& options) {
  TXALLO_RETURN_NOT_OK(
      ExpectOnly(name, options, {"period", "share", "width"}));
  (void)shape;
  DiurnalParams params;
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "period", &params.period));
  TXALLO_RETURN_NOT_OK(ReadFraction(options, "share", &params.share));
  TXALLO_RETURN_NOT_OK(ReadUint32(options, "width", &params.width));
  if (params.period == 0) {
    return Status::InvalidArgument("scenario 'diurnal': period must be > 0");
  }
  if (params.width == 0) {
    return Status::InvalidArgument("scenario 'diurnal': width must be > 0");
  }
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<DiurnalOverlay>(params));
  return FinishScenario(spec, shape.ToEthereumConfig(), std::move(overlays));
}

Result<std::unique_ptr<Scenario>> MakeChurn(const std::string& spec,
                                            const std::string& name,
                                            const ScenarioShape& shape,
                                            const OptionMap& options) {
  TXALLO_RETURN_NOT_OK(
      ExpectOnly(name, options, {"pool", "lifetime", "share", "intra"}));
  ChurnParams params;
  params.horizon_blocks = shape.num_blocks;
  params.pool = std::max<uint64_t>(1, shape.num_accounts / 16);
  params.lifetime = std::max<uint64_t>(1, shape.num_blocks / 4);
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "pool", &params.pool));
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "lifetime", &params.lifetime));
  TXALLO_RETURN_NOT_OK(ReadFraction(options, "share", &params.share));
  TXALLO_RETURN_NOT_OK(ReadFraction(options, "intra", &params.intra));
  if (params.pool == 0 || params.lifetime == 0) {
    return Status::InvalidArgument(
        "scenario 'churn': pool and lifetime must be > 0");
  }
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<ChurnOverlay>(params));
  return FinishScenario(spec, shape.ToEthereumConfig(), std::move(overlays));
}

Result<std::unique_ptr<Scenario>> MakeMultiAsset(const std::string& spec,
                                                 const std::string& name,
                                                 const ScenarioShape& shape,
                                                 const OptionMap& options) {
  TXALLO_RETURN_NOT_OK(
      ExpectOnly(name, options, {"assets", "share", "asset-skew"}));
  MultiAssetParams params;
  TXALLO_RETURN_NOT_OK(ReadUint32(options, "assets", &params.assets));
  TXALLO_RETURN_NOT_OK(ReadFraction(options, "share", &params.share));
  TXALLO_RETURN_NOT_OK(
      ReadDouble(options, "asset-skew", &params.asset_skew));
  if (params.assets == 0) {
    return Status::InvalidArgument(
        "scenario 'multi-asset': assets must be > 0");
  }
  if (params.asset_skew < 0.0) {
    return Status::InvalidArgument(
        "scenario 'multi-asset': asset-skew must be >= 0");
  }
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<MultiAssetOverlay>(params));
  return FinishScenario(spec, shape.ToEthereumConfig(), std::move(overlays));
}

Status ReadShardAttackParams(const OptionMap& options,
                             ShardAttackParams* params) {
  TXALLO_RETURN_NOT_OK(ReadUint32(options, "shards", &params->shards));
  TXALLO_RETURN_NOT_OK(ReadUint32(options, "target", &params->target));
  TXALLO_RETURN_NOT_OK(ReadUint32(options, "attackers", &params->attackers));
  TXALLO_RETURN_NOT_OK(ReadFraction(options, "share", &params->share));
  TXALLO_RETURN_NOT_OK(
      ReadDouble(options, "victim-skew", &params->victim_skew));
  if (params->shards == 0) {
    return Status::InvalidArgument(
        "scenario 'shard-attack': shards must be > 0");
  }
  if (params->target >= params->shards) {
    return Status::InvalidArgument(
        "scenario 'shard-attack': target must be < shards");
  }
  if (params->attackers == 0) {
    return Status::InvalidArgument(
        "scenario 'shard-attack': attackers must be > 0");
  }
  if (params->victim_skew < 0.0) {
    return Status::InvalidArgument(
        "scenario 'shard-attack': victim-skew must be >= 0");
  }
  return Status::OK();
}

Result<std::unique_ptr<Scenario>> MakeShardAttack(const std::string& spec,
                                                  const std::string& name,
                                                  const ScenarioShape& shape,
                                                  const OptionMap& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(
      name, options, {"shards", "target", "attackers", "share",
                      "victim-skew"}));
  ShardAttackParams params;
  TXALLO_RETURN_NOT_OK(ReadShardAttackParams(options, &params));
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<ShardAttackOverlay>(params));
  return FinishScenario(spec, shape.ToEthereumConfig(), std::move(overlays));
}

Status ReadSybilParams(const OptionMap& options, const ScenarioShape& shape,
                       SybilParams* params) {
  params->horizon_blocks = shape.num_blocks;
  TXALLO_RETURN_NOT_OK(ReadUint64(options, "sybils", &params->sybils));
  TXALLO_RETURN_NOT_OK(ReadUint32(options, "fanout", &params->fanout));
  TXALLO_RETURN_NOT_OK(ReadFraction(options, "share", &params->share));
  if (params->sybils == 0) {
    return Status::InvalidArgument("scenario 'sybil': sybils must be > 0");
  }
  if (params->fanout == 0) {
    return Status::InvalidArgument("scenario 'sybil': fanout must be > 0");
  }
  return Status::OK();
}

Result<std::unique_ptr<Scenario>> MakeSybil(const std::string& spec,
                                            const std::string& name,
                                            const ScenarioShape& shape,
                                            const OptionMap& options) {
  TXALLO_RETURN_NOT_OK(
      ExpectOnly(name, options, {"sybils", "fanout", "share"}));
  SybilParams params;
  TXALLO_RETURN_NOT_OK(ReadSybilParams(options, shape, &params));
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<SybilOverlay>(params));
  return FinishScenario(spec, shape.ToEthereumConfig(), std::move(overlays));
}

// The combinator showcase: spike + shard-attack + sybil stacked on one
// background, each with a reduced share. Demonstrates that overlays
// compose; the per-overlay scenarios stay the primitives.
Result<std::unique_ptr<Scenario>> MakeStress(const std::string& spec,
                                             const std::string& name,
                                             const ScenarioShape& shape,
                                             const OptionMap& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(
      name, options,
      {"spike-share", "attack-share", "sybil-share", "shards", "target"}));
  const uint64_t nb = shape.num_blocks;

  HotSpikeParams spike;
  spike.start = nb / 4;
  spike.ramp = std::max<uint64_t>(1, nb / 8);
  spike.hold = std::max<uint64_t>(1, nb / 4);
  spike.decay = std::max<uint64_t>(1, nb / 8);
  spike.peak_share = 0.25;
  TXALLO_RETURN_NOT_OK(
      ReadFraction(options, "spike-share", &spike.peak_share));

  ShardAttackParams attack;
  attack.share = 0.2;
  TXALLO_RETURN_NOT_OK(ReadUint32(options, "shards", &attack.shards));
  TXALLO_RETURN_NOT_OK(ReadUint32(options, "target", &attack.target));
  TXALLO_RETURN_NOT_OK(
      ReadFraction(options, "attack-share", &attack.share));
  if (attack.shards == 0 || attack.target >= attack.shards) {
    return Status::InvalidArgument(
        "scenario 'stress': need shards > 0 and target < shards");
  }

  SybilParams sybil;
  sybil.horizon_blocks = nb;
  sybil.share = 0.1;
  TXALLO_RETURN_NOT_OK(ReadFraction(options, "sybil-share", &sybil.share));

  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<ShardAttackOverlay>(attack));
  overlays.push_back(std::make_unique<SybilOverlay>(sybil));
  overlays.push_back(std::make_unique<HotSpikeOverlay>(spike));
  return FinishScenario(spec, shape.ToEthereumConfig(), std::move(overlays));
}

// Per-option self-description literal (same shape as the allocator
// registry's).
struct OptionDocLit {
  const char* key;
  const char* type;
  const char* default_value;
  const char* range;
  const char* help;
};

constexpr OptionDocLit kEthereumOptionDocs[] = {
    {"intra", "double", "0.92", "[0, 1]",
     "probability a counterparty comes from the sender's community"},
    {"hub-share", "double", "0.11", "[0, 1]",
     "fraction of transactions involving the hub account"},
    {"self-loop", "double", "0.002", "[0, 1]", "self-transfer probability"},
    {"multi-party", "double", "0.05", "[0, 1]",
     "probability a transaction touches more than two accounts"},
    {"late-born", "double", "0.3", "[0, 1]",
     "fraction of each community born only as the ledger progresses"},
    {"drift-interval", "uint", "0", ">= 0",
     "re-point communities at new partners every N blocks (0 = off)"},
    {"drift-fraction", "double", "0.1", "[0, 1]",
     "fraction of communities rewired per drift event"},
    {"drift-share", "double", "0.5", "[0, 1]",
     "share of a drifted community's intra traffic routed to its partner"},
};
constexpr OptionDocLit kSpikeOptionDocs[] = {
    {"start", "uint", "blocks/4", ">= 0", "first block of the ramp"},
    {"ramp", "uint", "blocks/8", ">= 1", "blocks to reach peak share"},
    {"hold", "uint", "blocks/4", ">= 0", "blocks at peak share"},
    {"decay", "uint", "blocks/8", ">= 1", "blocks back down to zero"},
    {"peak-share", "double", "0.6", "[0, 1]",
     "traffic share of the mint contract at the peak"},
};
constexpr OptionDocLit kDiurnalOptionDocs[] = {
    {"period", "uint", "24", ">= 1", "blocks per full community rotation"},
    {"share", "double", "0.5", "[0, 1]",
     "fraction of traffic that follows the rotating awake window"},
    {"width", "uint", "4", ">= 1", "communities awake at once"},
};
constexpr OptionDocLit kChurnOptionDocs[] = {
    {"pool", "uint", "accounts/16", ">= 1", "short-lived account pool size"},
    {"lifetime", "uint", "blocks/4", ">= 1",
     "blocks from an account's birth to its death"},
    {"share", "double", "0.3", "[0, 1]", "fraction of traffic that churns"},
    {"intra", "double", "0.5", "[0, 1]",
     "probability a churn counterparty is another live churn account"},
};
constexpr OptionDocLit kMultiAssetOptionDocs[] = {
    {"assets", "uint", "8", ">= 1", "distinct asset contract accounts"},
    {"share", "double", "0.4", "[0, 1]",
     "fraction of transfers carrying an asset output"},
    {"asset-skew", "double", "1.0", ">= 0",
     "Zipf skew of asset popularity around each community's own asset"},
};
constexpr OptionDocLit kShardAttackOptionDocs[] = {
    {"shards", "uint", "8", ">= 1",
     "shard count the attack is tuned against (match the engine's k)"},
    {"target", "uint", "0", "< shards", "victim shard under hash routing"},
    {"attackers", "uint", "64", ">= 1", "fresh attacker accounts"},
    {"share", "double", "0.4", "[0, 1]", "attack traffic fraction"},
    {"victim-skew", "double", "1.0", ">= 0",
     "Zipf skew over the victim shard's resident accounts"},
};
constexpr OptionDocLit kSybilOptionDocs[] = {
    {"sybils", "uint", "512", ">= 1", "fresh sybil addresses born over the run"},
    {"fanout", "uint", "4", ">= 1", "outputs per sybil transaction"},
    {"share", "double", "0.3", "[0, 1]", "sybil traffic fraction"},
};
constexpr OptionDocLit kStressOptionDocs[] = {
    {"spike-share", "double", "0.25", "[0, 1]", "mint flash-crowd peak share"},
    {"attack-share", "double", "0.2", "[0, 1]", "shard-attack share"},
    {"sybil-share", "double", "0.1", "[0, 1]", "sybil fan-out share"},
    {"shards", "uint", "8", ">= 1", "shard count the attack targets"},
    {"target", "uint", "0", "< shards", "victim shard under hash routing"},
};

struct Entry {
  const char* name;
  const char* summary;
  Factory factory;
  const OptionDocLit* options = nullptr;
  size_t num_options = 0;
};

// Sorted by name (RegisteredScenarioNames() relies on it).
constexpr Entry kEntries[] = {
    {"churn",
     "account churn: a pool of short-lived accounts with staggered births "
     "and deaths, feeding A-TxAllo's new-node path continuously",
     MakeChurn, kChurnOptionDocs, std::size(kChurnOptionDocs)},
    {"diurnal",
     "diurnal drift: community activity rotates through an awake window "
     "once per period, decaying any allocation built on stale history",
     MakeDiurnal, kDiurnalOptionDocs, std::size(kDiurnalOptionDocs)},
    {"ethereum",
     "the paper's stationary Ethereum-like stream (hub, Zipf communities, "
     "late-born accounts, optional partner drift) — the background of "
     "every other scenario",
     MakeEthereum, kEthereumOptionDocs, std::size(kEthereumOptionDocs)},
    {"multi-asset",
     "syscoin-style asset allocations: transfers carry an asset-contract "
     "output, communities leaning on their own asset",
     MakeMultiAsset, kMultiAssetOptionDocs, std::size(kMultiAssetOptionDocs)},
    {"shard-attack",
     "adversarial single-shard overload: fresh attacker accounts "
     "concentrate traffic on the accounts hash routing pins to one shard",
     MakeShardAttack, kShardAttackOptionDocs,
     std::size(kShardAttackOptionDocs)},
    {"spike",
     "NFT-mint flash crowd: one contract ramps to a dominant traffic share "
     "(ramp/hold/decay envelope), senders drawn from everywhere",
     MakeSpike, kSpikeOptionDocs, std::size(kSpikeOptionDocs)},
    {"stress",
     "combinator showcase: shard-attack + sybil + spike overlays stacked "
     "on one background",
     MakeStress, kStressOptionDocs, std::size(kStressOptionDocs)},
    {"sybil",
     "sybil fan-out: fresh addresses born over the run spray multi-output "
     "transactions at the background population",
     MakeSybil, kSybilOptionDocs, std::size(kSybilOptionDocs)},
};

Status NotFoundScenario(const std::string& name) {
  std::string known;
  for (const Entry& entry : kEntries) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  return Status::NotFound("no scenario registered under '" + name +
                          "' (registered: " + known + ")");
}

std::string RenderSpec(const std::string& name, const OptionMap& options) {
  std::string spec = name;
  bool first = true;
  for (const auto& [key, value] : options) {
    spec += first ? ":" : ",";
    spec += key + "=" + value;
    first = false;
  }
  return spec;
}

}  // namespace

EthereumLikeConfig ScenarioShape::ToEthereumConfig() const {
  EthereumLikeConfig config;
  config.num_blocks = num_blocks;
  config.txs_per_block = txs_per_block;
  config.num_accounts = num_accounts;
  config.num_communities = num_communities;
  config.initial_balance = initial_balance;
  config.seed = seed;
  return config;
}

std::vector<std::string> RegisteredScenarioNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kEntries));
  for (const Entry& entry : kEntries) names.emplace_back(entry.name);
  return names;
}

std::string DescribeScenario(const std::string& name) {
  for (const Entry& entry : kEntries) {
    if (name == entry.name) return entry.summary;
  }
  return "";
}

std::vector<ScenarioDoc> DescribeScenarios() {
  std::vector<ScenarioDoc> docs;
  docs.reserve(std::size(kEntries));
  for (const Entry& entry : kEntries) {
    ScenarioDoc doc;
    doc.name = entry.name;
    doc.summary = entry.summary;
    doc.options.reserve(entry.num_options);
    for (size_t i = 0; i < entry.num_options; ++i) {
      const OptionDocLit& option = entry.options[i];
      doc.options.push_back(ScenarioOptionDoc{option.key, option.type,
                                              option.default_value,
                                              option.range, option.help});
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::string ScenarioUsageText() {
  std::string out =
      "Scenario specs: NAME or NAME:key=value[,key=value...]\n\n"
      "Common shape keys (every scenario): blocks=<uint>, "
      "txs-per-block=<uint>, accounts=<uint>, communities=<uint>, "
      "balance=<int>, seed=<uint>\n\n";
  for (const ScenarioDoc& doc : DescribeScenarios()) {
    out += doc.name + "\n    " + doc.summary + "\n";
    if (doc.options.empty()) {
      out += "    (no specific options)\n";
    }
    for (const ScenarioOptionDoc& option : doc.options) {
      out += "    " + option.key + "=<" + option.type + ">  default " +
             option.default_value + ", " + option.range + " — " +
             option.help + "\n";
    }
  }
  out +=
      "\nExamples: --scenario=spike:peak-share=0.7\n"
      "          --scenario=\"shard-attack:shards=8,target=3,share=0.5\"\n";
  return out;
}

Result<std::unique_ptr<Scenario>> MakeScenario(
    const std::string& name, const ScenarioShape& shape,
    const std::map<std::string, std::string>& options) {
  for (const Entry& entry : kEntries) {
    if (name == entry.name) {
      ScenarioShape sized = shape;
      TXALLO_RETURN_NOT_OK(ApplyCommonKeys(options, &sized));
      return entry.factory(RenderSpec(name, options), name, sized, options);
    }
  }
  return NotFoundScenario(name);
}

Result<std::unique_ptr<Scenario>> MakeScenarioFromSpec(
    const std::string& spec, const ScenarioShape& shape) {
  Result<common::ParsedSpec> parsed = common::ParseSpec(spec);
  if (!parsed.ok()) return parsed.status();
  for (const Entry& entry : kEntries) {
    if (parsed->name == entry.name) {
      ScenarioShape sized = shape;
      TXALLO_RETURN_NOT_OK(ApplyCommonKeys(parsed->options, &sized));
      return entry.factory(spec, parsed->name, sized, parsed->options);
    }
  }
  return NotFoundScenario(parsed->name);
}

}  // namespace txallo::workload

// String-keyed factory for workload scenarios, mirroring the allocator
// registry (allocator/registry.h): consumers pick scenarios by
// "name[:key=value,...]" spec, unknown names/keys/values fail with
// InvalidArgument naming the offender, and the registry self-describes for
// `--scenario=help` and the README catalog.
//
//   workload::ScenarioShape shape;
//   shape.num_blocks = 96;
//   auto scenario = workload::MakeScenarioFromSpec(
//       "spike:peak-share=0.7", shape);
//
// Every scenario accepts the common shape keys (blocks, txs-per-block,
// accounts, communities, balance, seed) on top of its specific ones; spec
// keys override the programmatic ScenarioShape.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "txallo/common/status.h"
#include "txallo/workload/ethereum_like.h"
#include "txallo/workload/scenario.h"

namespace txallo::workload {

/// Shape knobs shared by every registered scenario: the size of the
/// experiment, not its pattern. Benches fill these from their flags; spec
/// keys (blocks=, txs-per-block=, accounts=, communities=, balance=, seed=)
/// override them.
struct ScenarioShape {
  uint64_t num_blocks = 64;
  uint64_t txs_per_block = 100;
  uint64_t num_accounts = 4'000;
  uint32_t num_communities = 40;
  int64_t initial_balance = 1'000'000;
  uint64_t seed = 42;

  /// The Ethereum-like background config this shape describes (all pattern
  /// knobs at their defaults).
  EthereumLikeConfig ToEthereumConfig() const;
};

/// Every registered scenario name, sorted.
std::vector<std::string> RegisteredScenarioNames();

/// One-line description of a registered scenario; empty for unknown names.
std::string DescribeScenario(const std::string& name);

/// Self-description of one scenario-specific option (same shape as
/// allocator::AllocatorOptionDoc).
struct ScenarioOptionDoc {
  std::string key;
  std::string type;           // "uint", "double", "int".
  std::string default_value;  // Rendered default ("derived" when computed).
  std::string range;
  std::string help;
};

/// Full self-description of one registered scenario.
struct ScenarioDoc {
  std::string name;
  std::string summary;
  std::vector<ScenarioOptionDoc> options;
};

/// Self-description of every registered scenario, sorted by name. Source of
/// truth for `--scenario=help` and the README catalog.
std::vector<ScenarioDoc> DescribeScenarios();

/// Generated usage table over DescribeScenarios() — what `--scenario=help`
/// prints (includes the common shape keys).
std::string ScenarioUsageText();

/// Instantiates the scenario registered under `name`. `options` carries
/// both common shape keys and scenario-specific keys; every config is
/// validated (InvalidArgument on out-of-range values, unknown keys,
/// malformed numbers).
Result<std::unique_ptr<Scenario>> MakeScenario(
    const std::string& name, const ScenarioShape& shape,
    const std::map<std::string, std::string>& options);

/// Convenience: parses "name[:key=value,...]" and instantiates it. The
/// returned scenario's spec() is `spec` verbatim.
Result<std::unique_ptr<Scenario>> MakeScenarioFromSpec(
    const std::string& spec, const ScenarioShape& shape);

}  // namespace txallo::workload

#include "txallo/workload/stream.h"

#include <algorithm>

namespace txallo::workload {

BlockWindowStream::Window BlockWindowStream::Next() {
  Window window;
  window.first_block_index = cursor_;
  window.last_block_index =
      std::min(cursor_ + blocks_per_step_, ledger_->num_blocks());
  cursor_ = window.last_block_index;
  return window;
}

size_t BlockWindowStream::NumWindows() const {
  if (blocks_per_step_ == 0) return 0;
  return (ledger_->num_blocks() + blocks_per_step_ - 1) / blocks_per_step_;
}

}  // namespace txallo::workload

// Composable scenario engine: deterministic per-seed block streams beyond
// the stationary Ethereum-like workload (ROADMAP item 1).
//
// A Scenario produces blocks under the same contract as
// EthereumLikeGenerator (block numbers increase from 0, all accounts
// pre-interned into its registry, bit-identical stream for a given spec),
// so anything that consumes a generated ledger — timeline_series, the
// open-loop pipeline, the gauntlet — runs any scenario unchanged.
//
// Composition model: every scenario is an Ethereum-like *background*
// (long-tail communities, hub, churn of the late-born kind) plus an
// ordered list of Overlay transformers. Each overlay claims a
// block-dependent share of the block's transactions and replaces them with
// its own pattern — a mint flash crowd, diurnal community rotation,
// attacker traffic concentrated on one shard's residents, sybil fan-out.
// Overlays share the background's registry and sampling model, so overlay
// traffic targets the same population the background produces, and the
// per-block transaction count never changes (scenarios stay comparable at
// equal offered load).
//
// Scenarios are selected by spec string ("name:key=val,...") through the
// registry in scenario_registry.h, mirroring the allocator registry.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "txallo/chain/account.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/rng.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo::workload {

/// Deterministic block stream: the workload-side contract of every bench
/// and pipeline entry point.
class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Generates the next block (block numbers increase from 0).
  virtual chain::Block NextBlock() = 0;

  /// The registry holding every account the stream can touch (complete
  /// before the first block; "birth" only gates when an account first
  /// transacts).
  virtual const chain::AccountRegistry& registry() const = 0;

  /// Configured horizon in blocks (the stream keeps producing past it, but
  /// time-shaped overlays are designed against this length).
  virtual uint64_t num_blocks() const = 0;

  virtual uint64_t blocks_generated() const = 0;

  /// Funding level for the engine's account-state backend (copied into
  /// EngineConfig::state.initial_balance by benches, like
  /// EthereumLikeConfig::initial_balance).
  virtual int64_t initial_balance() const = 0;

  /// The spec string this scenario was built from — recorded into replay
  /// trace meta so a trace names its workload.
  const std::string& spec() const { return spec_; }

  /// Generates `n` consecutive blocks into a fresh ledger. Aborts loudly if
  /// Append fails (block numbers ascend by construction; a failure is a
  /// broken generator, not a recoverable input error).
  chain::Ledger GenerateLedger(uint64_t n);

 protected:
  explicit Scenario(std::string spec) : spec_(std::move(spec)) {}

 private:
  std::string spec_;
};

/// A stream transformer over the shared Ethereum-like background. Overlays
/// may intern extra synthetic accounts (a mint contract, a sybil pool) in
/// Prepare() and may draw background accounts through the generator's
/// public sampling hooks; both are part of the deterministic seed contract.
class Overlay {
 public:
  virtual ~Overlay() = default;

  /// Called once, before any block, after the background registered its
  /// accounts.
  virtual void Prepare(EthereumLikeGenerator* background) { (void)background; }

  /// Fraction of block `block`'s transactions this overlay replaces, in
  /// [0, 1]. Shares of stacked overlays are consumed in order; their sum is
  /// effectively capped at 1.
  virtual double Share(uint64_t block) const = 0;

  /// Per-block state advance (called in overlay order, before any
  /// Generate() for that block).
  virtual void BeginBlock(uint64_t block, Rng* rng) {
    (void)block;
    (void)rng;
  }

  /// Produces one overlay transaction. `rng` is the scenario's overlay RNG
  /// (separate stream from the background's).
  virtual chain::Transaction Generate(uint64_t block, Rng* rng,
                                      EthereumLikeGenerator* background) = 0;
};

/// The composition engine: an Ethereum-like background plus ordered
/// overlays. With no overlays the stream is bit-identical to
/// EthereumLikeGenerator on the same config — the pure `ethereum` scenario
/// and the legacy bench path produce the same ledger.
class OverlayScenario : public Scenario {
 public:
  OverlayScenario(std::string spec, const EthereumLikeConfig& background,
                  std::vector<std::unique_ptr<Overlay>> overlays);

  chain::Block NextBlock() override;
  const chain::AccountRegistry& registry() const override {
    return background_.registry();
  }
  uint64_t num_blocks() const override {
    return background_.config().num_blocks;
  }
  uint64_t blocks_generated() const override {
    return background_.blocks_generated();
  }
  int64_t initial_balance() const override {
    return background_.config().initial_balance;
  }

  const EthereumLikeGenerator& background() const { return background_; }

 private:
  EthereumLikeGenerator background_;
  std::vector<std::unique_ptr<Overlay>> overlays_;
  Rng overlay_rng_;
};

}  // namespace txallo::workload

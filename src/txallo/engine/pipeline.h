// Epoch-based online reallocation: any allocator::OnlineAllocator driving
// the parallel engine, as a three-stage pipeline (ingest ∥ execution ∥
// allocation).
//
// The allocator absorbs committed blocks (ApplyBlock); every
// `blocks_per_epoch` blocks its mapping refreshes and the result is
// published to the engine as a fresh copy-on-write snapshot via
// InstallAllocation() (a pause-free shared_ptr swap; the engine reports the
// cost as `realloc_pause_seconds`). Three allocator schedules:
//
//   * kDriverSync      — the classic loop: Rebalance() on the driver at the
//                        boundary, install immediately. Shards idle for
//                        `alloc_seconds` each epoch.
//   * kDriverDeferred  — Rebalance() on the driver at the boundary, install
//                        at the NEXT boundary. Same stall, but the exact
//                        logical schedule of kBackground — its determinism
//                        baseline.
//   * kBackground      — BeginRebalance() snapshots at the boundary
//                        (double-buffering: the allocator keeps absorbing
//                        blocks), Run() executes on a BackgroundAllocator
//                        worker while the next epoch streams, and the
//                        result commits + installs at the next boundary.
//                        Allocation latency is overlapped with execution;
//                        `alloc_overlap_ratio` reports how much. Install
//                        points are pinned to logical block boundaries, so
//                        per-step metrics are deterministic and identical
//                        to kDriverDeferred at equal inputs (the parity
//                        tests assert bit-equality).
//
// Ingest can fan out too: `ingest_producers >= 2` routes every block
// through an IngestRouter (N producer threads into the per-shard MPSC
// queues) instead of the driver thread.
//
// Ingest modes: the classic driver is *closed-loop* — it feeds one ledger
// block per tick, so the arrival rate automatically tracks the service rate
// and queueing delay is invisible. `ingest_mode = kOpenLoop` decouples
// them: an OfferedLoadGenerator releases the ledger's transactions at a
// fixed rate per tick into a mempool::Mempool (fee ordering, admission
// control, backpressure), the driver seals and dispatches the fee-priority
// prefix each tick, and every committed transaction's end-to-end latency
// (commit tick − submit tick) lands in exact histograms: per-window
// p50/p99/p99.9 in StepMetrics, the full distribution in PipelineResult.
// The clock stays logical, so latency ticks, admission drops and queue
// depths are bit-identical across thread and producer counts, and
// record/replay covers open-loop runs exactly like closed-loop ones (the
// trace meta carries the offered-load and mempool parameters).
//
// Record/replay: PipelineConfig::record captures the run's deterministic
// trace (per-tick, per-shard prepare order, 2PC outcome stream, install
// boundaries, step series) into a ReplayLog; PipelineConfig::replay
// re-executes a recorded trace — installs land on the recorded block
// boundaries instead of consulting the allocator, and the run is verified
// bit-identical to the log. See engine/replay.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "txallo/allocator/allocator.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/histogram.h"
#include "txallo/common/status.h"
#include "txallo/engine/engine.h"
#include "txallo/mempool/mempool.h"

namespace txallo::engine {

class ReplayLog;  // engine/replay.h

/// When and where epoch rebalances run (see file header).
enum class AllocatorMode {
  kDriverSync,
  kDriverDeferred,
  kBackground,
};

/// "sync" | "deferred" | "background" -> AllocatorMode (bench flags).
Result<AllocatorMode> ParseAllocatorMode(const std::string& name);
const char* AllocatorModeName(AllocatorMode mode);

/// How the driver feeds the engine (see file header).
enum class IngestMode {
  /// One ledger block per tick; arrivals track service.
  kClosedLoop,
  /// Offered-load generator → mempool → fee-priority dispatch per tick.
  kOpenLoop,
};

/// "closed" | "open" -> IngestMode (bench flags).
Result<IngestMode> ParseIngestMode(const std::string& name);
const char* IngestModeName(IngestMode mode);

/// Open-loop driving parameters (ignored in kClosedLoop).
struct OpenLoopConfig {
  /// Target arrival rate in transactions per tick (may be fractional).
  /// Must be > 0.
  double offered_load = 8.0;
  /// Max transactions dispatched from the mempool per tick; 0 = no cap
  /// (the engine's λ is then the only service bound).
  uint32_t dispatch_per_tick = 0;
  /// Fee distribution of the generated arrivals (offered_load.h).
  uint32_t fee_levels = 16;
  uint64_t fee_seed = 0x9e3779b97f4a7c15ULL;
  /// Admission-control parameters. staging_capacity is raised to hold a
  /// whole tick's offer so every drop decision happens at the
  /// deterministic seal, never in producer timing.
  mempool::MempoolConfig mempool;
  /// Run a background MempoolCleaner (physical compaction only — outputs
  /// are identical with it on, off, or racing).
  bool cleaner = true;
};

struct PipelineConfig {
  /// Reallocation cadence in blocks (the paper's τ1 update window). The
  /// global-refresh cadence (τ2) is the allocator's own business — e.g.
  /// "txallo-hybrid:global-every=4".
  uint32_t blocks_per_epoch = 50;
  /// Allocation schedule (see file header). kDriverSync reproduces the
  /// historical single-driver loop.
  AllocatorMode allocator_mode = AllocatorMode::kDriverSync;
  /// Ingest fan-out: >= 2 routes blocks through an IngestRouter with this
  /// many producer threads; 0/1 submits from the driver. In kOpenLoop the
  /// same count also sizes the mempool's SubmitRouter producer pool.
  uint32_t ingest_producers = 0;
  /// Closed-loop (feed one ledger block per tick) or open-loop (offered
  /// load through the mempool; see file header). On replay the recorded
  /// mode wins.
  IngestMode ingest_mode = IngestMode::kClosedLoop;
  /// Open-loop driving parameters; ignored unless ingest_mode == kOpenLoop.
  OpenLoopConfig open_loop;
  /// Multi-epoch allocation lookahead (kBackground only): when a
  /// RebalanceTask overruns its epoch, skip this boundary — keep ticking —
  /// and install the mapping at the next boundary it is ready for, instead
  /// of blocking the tick loop (`alloc_wait_seconds`). Off by default: the
  /// blocking schedule is the determinism baseline (bit-identical to
  /// kDriverDeferred); with overrun skipping, install points depend on
  /// allocator wall time. Recorded runs still replay bit-identically —
  /// the trace pins the install blocks that actually happened.
  bool allow_epoch_overrun = false;
  /// Workload spec the ledger was generated from ("name:key=val,..." from
  /// the scenario registry; empty for programmatic ledgers). Purely
  /// descriptive for the run itself, but recorded into the trace meta, and
  /// on replay a non-empty value must match the recorded one — so a trace
  /// replayed against a regenerated scenario fails loudly on a workload
  /// mix-up instead of only via the ledger fingerprint.
  std::string workload_spec;
  /// When set, the run records its deterministic trace here (the engine
  /// must be fresh — no prior submissions or ticks).
  ReplayLog* record = nullptr;
  /// When set, re-executes the recorded trace instead of running the
  /// allocator: `alloc` may be null, blocks_per_epoch and allocator_mode
  /// come from the log, and threads/ingest_producers are free to differ —
  /// the run is verified bit-identical to the log (prepare order, 2PC
  /// outcomes, step series) and diverging returns an Internal error.
  const ReplayLog* replay = nullptr;
};

/// Block-level metrics of one pipeline step (= one epoch window): the
/// timeline *series* Fig. 9/10-style benches plot, rather than end-of-run
/// aggregates. Counter fields are deltas within the window. The series ends
/// with a final partial step covering the post-stream drain whenever
/// draining ticks extra blocks (commit rounds or residual backlog), so
/// per-step `committed` always sums to the run total.
struct StepMetrics {
  uint64_t step = 0;
  /// Logical block range [first_block, last_block) of the window. One Tick
  /// per ledger block, so these are ledger block indices for stream steps;
  /// the trailing drain step extends past the ledger.
  uint64_t first_block = 0;
  uint64_t last_block = 0;
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t cross_shard_submitted = 0;
  /// committed / blocks-in-window.
  double throughput_per_block = 0.0;
  /// cross_shard_submitted / submitted (0 when nothing was submitted).
  double cross_shard_ratio = 0.0;
  /// Allocation wall time charged to this step's boundary update (the
  /// task's Run time in kBackground; the driver's Rebalance time
  /// otherwise). 0 for the trailing window.
  double alloc_seconds = 0.0;
  /// How long the driver actually stalled for that update (== alloc_seconds
  /// in the driver modes; the non-overlapped share in kBackground).
  double alloc_wait_seconds = 0.0;
  /// A refreshed mapping was published at the end of this window.
  bool installed = false;
  /// Transactions aborted by a failed state check in the window (state
  /// backend only; insufficient balance / bad nonce).
  uint64_t aborted = 0;
  /// Account records migrated between shard DBs in the window (state
  /// backend only; the migration-cost column — each record also charged
  /// migration work against its shards' λ).
  uint64_t accounts_migrated = 0;
  /// Open-loop ingest (kOpenLoop only; all zero in closed-loop runs).
  /// Transactions released by the offered-load generator in the window.
  uint64_t offered = 0;
  /// Transactions the mempool admitted in the window.
  uint64_t admitted = 0;
  /// Admission drops in the window (capacity + per-account pending +
  /// per-account rate + producer backpressure; TTL expiries are separate,
  /// see PipelineResult::admission).
  uint64_t admission_dropped = 0;
  /// Mempool live depth at window close.
  uint64_t mempool_depth = 0;
  /// Running peak live depth up to window close.
  uint64_t mempool_peak_depth = 0;
  /// End-to-end latency percentiles (commit tick − submit tick) over the
  /// window's commits, nearest-rank on the exact histogram.
  uint64_t latency_p50_ticks = 0;
  uint64_t latency_p99_ticks = 0;
  uint64_t latency_p999_ticks = 0;

  bool operator==(const StepMetrics&) const = default;
};

struct PipelineResult {
  EngineReport report;
  uint64_t epochs = 0;
  /// Wall-clock seconds spent computing allocation updates (the sum of
  /// every rebalance's run time, wherever it ran).
  double alloc_seconds = 0.0;
  /// Seconds of alloc_seconds the driver actually stalled for. In the
  /// driver modes this equals alloc_seconds; in kBackground it is the
  /// residue the next epoch's execution could not cover.
  double alloc_wait_seconds = 0.0;
  /// 1 - alloc_wait_seconds / alloc_seconds: the fraction of allocation
  /// latency hidden behind execution. 0 in the driver modes.
  double alloc_overlap_ratio = 0.0;
  /// Accounts whose shard changed across all *installed* reallocations
  /// (the mapping-level migration cost; sim::CompareAllocations). With the
  /// state backend on, report.accounts_migrated counts the records
  /// actually moved between shard DBs.
  uint64_t accounts_moved = 0;
  /// Epoch boundaries skipped because the rebalance task was still running
  /// (PipelineConfig::allow_epoch_overrun).
  uint64_t overrun_boundaries = 0;
  /// Open-loop only: end-of-run admission counters (submitted / admitted /
  /// drop reasons / TTL expiries / peak depth). Default-valued in
  /// closed-loop runs.
  mempool::AdmissionStats admission;
  /// Open-loop only: exact end-to-end latency distribution (commit tick −
  /// submit tick) over every committed transaction. Empty in closed-loop
  /// runs. Bit-identical across thread and producer counts.
  common::Histogram e2e_latency_ticks;
  /// Per-step timeline series, one entry per epoch window.
  std::vector<StepMetrics> steps;
};

/// Streams `ledger` through `engine` (one Tick per block) while `alloc`
/// learns the workload and republishes the mapping each epoch under the
/// configured schedule. The engine MUST be configured with
/// hash_route_unassigned = true — accounts born since the last epoch still
/// have to route, and the allocator's mapping only takes them over at the
/// next epoch boundary; a config without it is rejected with
/// InvalidArgument. If the engine has no snapshot yet, the allocator's
/// CurrentAllocation() is installed first.
///
/// Epoch accounting: with W windows there are W-1 boundary rebalances
/// (`epochs` == W-1) in every mode; the trailing window never gets an
/// update (nothing left to route). The deferred/background schedules
/// install each mapping one boundary later, so their last computed mapping
/// is committed to the allocator but not published (`report.reallocations`
/// is one lower than kDriverSync's).
///
/// In kOpenLoop the ledger is a transaction *pool* rather than a block
/// schedule: arrivals are paced by OpenLoopConfig::offered_load, windows
/// are blocks_per_epoch *ticks*, and the run ends when the generator is
/// exhausted and the mempool has fully drained (so low offered loads run
/// more ticks than the ledger has blocks). Requires a fresh engine (commit
/// observation must precede the first submission).
Result<PipelineResult> RunReallocatedStream(const chain::Ledger& ledger,
                                            allocator::OnlineAllocator* alloc,
                                            ParallelEngine* engine,
                                            const PipelineConfig& config);

}  // namespace txallo::engine

// Epoch-based online reallocation: any allocator::OnlineAllocator driving
// the parallel engine.
//
// The allocator absorbs committed blocks (ApplyBlock); every
// `blocks_per_epoch` blocks its Rebalance() refreshes the mapping and the
// result is published to the engine as a fresh copy-on-write snapshot via
// InstallAllocation(). For TxAllo the allocator is the hybrid §V-A schedule
// (allocator "txallo-hybrid"); the same loop runs hash, METIS, Louvain and
// Shard Scheduler live — the engine-backed version of the paper's Fig. 9/10
// method comparison. The *swap* is pause-free — a shared_ptr exchange whose
// cost the engine reports as `realloc_pause_seconds`, never a worker stop —
// but this single-driver loop computes the allocation between ticks, so
// shards sit idle for `alloc_seconds` at each epoch boundary. Moving the
// allocator onto a background thread (publishing via the same thread-safe
// InstallAllocation) is the ROADMAP follow-on that would overlap it with
// execution.
#pragma once

#include <cstdint>

#include "txallo/allocator/allocator.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"
#include "txallo/engine/engine.h"

namespace txallo::engine {

struct PipelineConfig {
  /// Reallocation cadence in blocks (the paper's τ1 update window). The
  /// global-refresh cadence (τ2) is the allocator's own business — e.g.
  /// "txallo-hybrid:global-every=4".
  uint32_t blocks_per_epoch = 50;
};

struct PipelineResult {
  EngineReport report;
  uint64_t epochs = 0;
  /// Wall-clock seconds spent computing allocation updates. In this
  /// single-driver loop the shards are idle during these — engine dead time
  /// at epoch boundaries, distinct from the (near-zero) snapshot-swap
  /// pause.
  double alloc_seconds = 0.0;
  /// Accounts whose shard changed across all reallocations (the practical
  /// state-migration cost; sim::CompareAllocations per epoch).
  uint64_t accounts_moved = 0;
};

/// Streams `ledger` through `engine` (one Tick per block) while `alloc`
/// learns the workload and republishes the mapping each epoch. The engine
/// MUST be configured with hash_route_unassigned = true — accounts born
/// since the last epoch still have to route, and the allocator's mapping
/// only takes them over at the next epoch boundary; a config without it is
/// rejected with InvalidArgument (this used to be a silent header-comment
/// contract). If the engine has no snapshot yet, the allocator's
/// CurrentAllocation() is installed first. The final window gets no
/// trailing update (nothing left to route); the allocator still absorbs its
/// blocks, so `epochs` is one less than the window count when the ledger
/// divides evenly.
Result<PipelineResult> RunReallocatedStream(const chain::Ledger& ledger,
                                            allocator::OnlineAllocator* alloc,
                                            ParallelEngine* engine,
                                            const PipelineConfig& config);

}  // namespace txallo::engine

// Epoch-based online reallocation: core::TxAlloController driving the
// parallel engine.
//
// The controller absorbs committed blocks into its transaction graph; every
// `blocks_per_epoch` blocks it runs A-TxAllo (with optional periodic
// G-TxAllo refreshes — the paper's hybrid §V-A schedule) and the resulting
// mapping is published to the engine as a fresh copy-on-write snapshot via
// InstallAllocation(). The *swap* is pause-free — a shared_ptr exchange
// whose cost the engine reports as `realloc_pause_seconds`, never a worker
// stop — but this single-driver loop computes the allocation between ticks,
// so shards sit idle for `alloc_seconds` at each epoch boundary. Moving the
// allocator onto a background thread (publishing via the same thread-safe
// InstallAllocation) is the ROADMAP follow-on that would overlap it with
// execution.
#pragma once

#include <cstdint>

#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"
#include "txallo/core/controller.h"
#include "txallo/engine/engine.h"

namespace txallo::engine {

struct PipelineConfig {
  /// Reallocation cadence in blocks (the paper's τ1 update window).
  uint32_t blocks_per_epoch = 50;
  /// Every n-th epoch runs G-TxAllo instead of A-TxAllo (the hybrid
  /// schedule's τ2); 0 = adaptive only.
  uint32_t global_every_epochs = 0;
};

struct PipelineResult {
  EngineReport report;
  uint64_t epochs = 0;
  /// Wall-clock seconds spent computing allocation updates. In this
  /// single-driver loop the shards are idle during these — engine dead time
  /// at epoch boundaries, distinct from the (near-zero) snapshot-swap
  /// pause.
  double alloc_seconds = 0.0;
  /// Accounts whose shard changed across all reallocations (the practical
  /// state-migration cost; sim::CompareAllocations per epoch).
  uint64_t accounts_moved = 0;
};

/// Streams `ledger` through `engine` (one Tick per block) while `controller`
/// learns the workload and republishes the allocation each epoch. The
/// engine should be configured with hash_route_unassigned = true so accounts
/// born since the last epoch still route; the controller's mapping takes
/// over for them at the next epoch boundary. If the engine has no snapshot
/// yet, the controller's current mapping is installed first. The final
/// window gets no trailing update (nothing left to route); the controller
/// still absorbs its blocks, so `epochs` is one less than the window count
/// when the ledger divides evenly.
Result<PipelineResult> RunReallocatedStream(const chain::Ledger& ledger,
                                            core::TxAlloController* controller,
                                            ParallelEngine* engine,
                                            const PipelineConfig& config);

}  // namespace txallo::engine

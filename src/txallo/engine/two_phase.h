// Cross-shard two-phase commit coordinator.
//
// Each shard worker executes its part of a transaction and then votes
// part-by-part; once every participant shard has voted, the coordinator
// issues the decision. A unanimously-PREPARED intra-shard transaction
// commits in place; a cross-shard one pays the extra consensus round(s) of
// §I — the decision lands `cross_shard_commit_rounds` blocks after the
// last prepare — matching sim::ShardSimulator's semantics exactly, which
// is what the engine/simulator parity tests pin down. A transaction with
// any failed vote (insufficient balance / bad nonce against the state
// backend) ABORTS at the last-vote block: an abort needs no extra
// consensus round — participants simply drop their staged thunks.
//
// Thread-safety: PartExecuted() is called concurrently by shard workers
// mid-tick; Register()/FlushDelayed()/stats() are driver-side. Everything is
// guarded by one annotated mutex (common/sync.h; Clang -Wthread-safety
// checks the discipline) — the coordinator is touched once per transaction
// part, not per work unit, so contention is bounded by routing fan-out.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "txallo/common/histogram.h"
#include "txallo/common/sync.h"
#include "txallo/sim/work_model.h"

namespace txallo::engine {

/// One 2PC decision, keyed by the transaction's ingest sequence tag (the
/// stable identity that survives producer-count changes; the runtime
/// tx_index handle does not). Recorded by the coordinator when event
/// recording is on — the "2PC outcome stream" of a replay trace
/// (engine/replay.h). `aborted` decisions exist only with the state
/// backend on; the pure cost model never fails a vote.
struct CommitEvent {
  /// Block at which the decision landed.
  uint64_t block = 0;
  /// Ingest sequence tag of the transaction.
  uint64_t seq = 0;
  bool cross_shard = false;
  bool aborted = false;
  bool operator==(const CommitEvent&) const = default;
};

/// Aggregate commit-protocol counters (a superset of what SimReport needs).
struct CommitStats {
  uint64_t submitted = 0;
  uint64_t cross_shard_submitted = 0;
  uint64_t committed = 0;
  uint64_t cross_shard_committed = 0;
  /// Transactions aborted by a failed vote (state backend only).
  uint64_t aborted = 0;
  uint64_t cross_shard_aborted = 0;
  /// Total votes received (== executed transaction parts).
  uint64_t prepares_received = 0;
  /// Cross-shard transactions prepared but awaiting their commit round.
  uint64_t awaiting_commit_round = 0;
  /// Transactions registered but not yet fully voted.
  uint64_t in_flight = 0;
  double latency_sum_blocks = 0.0;
  double latency_max_blocks = 0.0;
};

class TwoPhaseCoordinator {
 public:
  explicit TwoPhaseCoordinator(sim::WorkModel model) : model_(model) {}

  /// Registers a transaction entering execution at `arrival_block` with
  /// `participants` distinct shards. `seq` is the transaction's ingest
  /// sequence tag, carried into recorded CommitEvents. Returns its
  /// transaction index (the handle shard workers vote with).
  uint64_t Register(uint64_t arrival_block, uint32_t participants,
                    bool cross_shard, uint64_t seq);

  /// Starts recording one CommitEvent per decision. Driver-side, before
  /// any registration.
  void EnableEventRecording();

  /// Starts collecting one Decision per decision for TakeDecisions() (the
  /// engine's state backend applies them). Driver-side, before any
  /// registration.
  void EnableDecisionCollection();

  /// The recorded outcome stream in canonical order: (block, seq)
  /// ascending — registration and voting interleavings across
  /// producer/worker threads do not change it. Driver-side, workers
  /// quiesced.
  std::vector<CommitEvent> CanonicalCommitEvents() const;

  /// One participant's vote, cast at block `block`: ok = PREPARED, !ok =
  /// the part failed its state checks. When it is the last vote: any
  /// failed vote aborts the transaction at `block`; a unanimous
  /// intra-shard transaction commits at `block`; a unanimous cross-shard
  /// one is scheduled for `model.CommitBlock(block, true)`.
  void PartExecuted(uint64_t tx_index, uint64_t block, bool ok);

  /// Legacy PREPARED vote (always ok) — the pure cost model's path.
  void PartPrepared(uint64_t tx_index, uint64_t block) {
    PartExecuted(tx_index, block, /*ok=*/true);
  }

  /// Driver-side, once per block after workers quiesce: commits every
  /// scheduled cross-shard transaction whose decision round has arrived.
  void FlushDelayed(uint64_t now);

  /// Decisions issued since the last call, in issue order (deterministic:
  /// votes are driver-applied in canonical lane order, flushes in schedule
  /// order). Empty unless EnableDecisionCollection() ran.
  struct Decision {
    uint64_t block = 0;
    uint64_t seq = 0;
    bool aborted = false;
  };
  std::vector<Decision> TakeDecisions();

  /// True when nothing is in flight or awaiting a commit round.
  bool Idle() const;

  CommitStats stats() const;

  /// Exact histogram of commit latency (decision block − arrival block) in
  /// blocks, commits only — an abort never served anyone. Built from
  /// per-decision integers, so it is bit-identical across thread counts.
  common::Histogram LatencyHistogram() const;

 private:
  struct TxEntry {
    uint64_t arrival_block;
    uint64_t seq;
    uint32_t parts_remaining;
    bool cross_shard;
    /// A participant's vote failed; the decision will be an abort.
    bool abort_pending;
  };

  void DecideLocked(uint64_t tx_index, uint64_t decision_block, bool aborted)
      TXALLO_REQUIRES(mu_);

  const sim::WorkModel model_;
  mutable common::Mutex mu_;
  std::vector<TxEntry> txs_ TXALLO_GUARDED_BY(mu_);
  // (commit_block, tx) pairs. All prepares of one tick land at the same
  // block and ticks advance monotonically, so commit blocks are
  // non-decreasing front to back and flushing pops from the front.
  std::deque<std::pair<uint64_t, uint64_t>> delayed_ TXALLO_GUARDED_BY(mu_);
  CommitStats stats_ TXALLO_GUARDED_BY(mu_);
  bool record_events_ TXALLO_GUARDED_BY(mu_) = false;
  std::vector<CommitEvent> events_ TXALLO_GUARDED_BY(mu_);
  bool collect_decisions_ TXALLO_GUARDED_BY(mu_) = false;
  std::vector<Decision> decisions_ TXALLO_GUARDED_BY(mu_);
  common::Histogram latency_hist_ TXALLO_GUARDED_BY(mu_);
};

}  // namespace txallo::engine

#include "txallo/engine/ingest_router.h"

#include <algorithm>

namespace txallo::engine {

IngestRouter::IngestRouter(ParallelEngine* engine, uint32_t num_producers)
    : engine_(engine) {
  const uint32_t n = std::max(1u, num_producers);
  done_generation_.assign(n, 0);
  statuses_.assign(n, Status::OK());
  threads_.reserve(n);
  for (uint32_t p = 0; p < n; ++p) {
    threads_.emplace_back(&IngestRouter::ProducerMain, this, p);
  }
}

IngestRouter::~IngestRouter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_producers_.notify_all();
  }
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void IngestRouter::ProducerMain(uint32_t producer_index) {
  const size_t n = done_generation_.size();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_producers_.wait(lock, [&] {
      return stopping_ || generation_ > done_generation_[producer_index];
    });
    if (stopping_) return;
    const uint64_t target = generation_;
    // Contiguous slice [begin, end) of the current block; the slice's
    // sequence tags are its global positions offset by the block's base.
    const size_t begin = block_size_ * producer_index / n;
    const size_t end = block_size_ * (producer_index + 1) / n;
    const chain::Transaction* base = block_;
    const uint64_t seq_base = block_seq_base_;
    lock.unlock();
    Status status = Status::OK();
    if (end > begin) {
      status = engine_->SubmitTransactions(base + begin, end - begin,
                                           seq_base + begin);
    }
    lock.lock();
    statuses_[producer_index] = std::move(status);
    done_generation_[producer_index] = target;
    cv_driver_.notify_all();
  }
}

Status IngestRouter::SubmitBlock(
    const std::vector<chain::Transaction>& transactions) {
  std::unique_lock<std::mutex> lock(mu_);
  block_ = transactions.data();
  block_size_ = transactions.size();
  block_seq_base_ = engine_->ReserveSequenceRange(transactions.size());
  const uint64_t target = ++generation_;
  cv_producers_.notify_all();
  cv_driver_.wait(lock, [&] {
    for (uint64_t done : done_generation_) {
      if (done != target) return false;
    }
    return true;
  });
  block_ = nullptr;
  block_size_ = 0;
  for (const Status& status : statuses_) {
    TXALLO_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

}  // namespace txallo::engine

#include "txallo/engine/ingest_router.h"

#include <algorithm>

namespace txallo::engine {

IngestRouter::IngestRouter(ParallelEngine* engine, uint32_t num_producers)
    : engine_(engine), num_producers_(std::max(1u, num_producers)) {
  {
    // Size every per-producer slot before the first thread spawns: producer
    // threads index these vectors from the moment they start.
    common::MutexLock lock(mu_);
    done_generation_.assign(num_producers_, 0);
    statuses_.assign(num_producers_, Status::OK());
  }
  threads_.reserve(num_producers_);
  for (uint32_t p = 0; p < num_producers_; ++p) {
    threads_.emplace_back(&IngestRouter::ProducerMain, this, p);
  }
}

IngestRouter::~IngestRouter() {
  {
    common::MutexLock lock(mu_);
    stopping_ = true;
    cv_producers_.NotifyAll();
  }
  for (std::thread& thread : threads_) {  // txallo-lint: allow(raw-thread)
    if (thread.joinable()) thread.join();
  }
}

void IngestRouter::ProducerMain(uint32_t producer_index) {
  const size_t n = num_producers_;
  mu_.Lock();
  for (;;) {
    while (!(stopping_ || generation_ > done_generation_[producer_index])) {
      cv_producers_.Wait(mu_);
    }
    if (stopping_) {
      mu_.Unlock();
      return;
    }
    const uint64_t target = generation_;
    // Contiguous slice [begin, end) of the current block; the slice's
    // sequence tags are its global positions offset by the block's base.
    const size_t begin = block_size_ * producer_index / n;
    const size_t end = block_size_ * (producer_index + 1) / n;
    const chain::Transaction* base = block_;
    const uint64_t seq_base = block_seq_base_;
    mu_.Unlock();
    Status status = Status::OK();
    if (end > begin) {
      status = engine_->SubmitTransactions(base + begin, end - begin,
                                           seq_base + begin);
    }
    mu_.Lock();
    statuses_[producer_index] = std::move(status);
    done_generation_[producer_index] = target;
    cv_driver_.NotifyAll();
  }
}

Status IngestRouter::SubmitBlock(
    const std::vector<chain::Transaction>& transactions) {
  common::MutexLock lock(mu_);
  block_ = transactions.data();
  block_size_ = transactions.size();
  block_seq_base_ = engine_->ReserveSequenceRange(transactions.size());
  const uint64_t target = ++generation_;
  cv_producers_.NotifyAll();
  for (;;) {
    bool all_done = true;
    for (uint64_t done : done_generation_) {
      if (done != target) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    cv_driver_.Wait(mu_);
  }
  block_ = nullptr;
  block_size_ = 0;
  for (const Status& status : statuses_) {
    TXALLO_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

}  // namespace txallo::engine

// Parallel sharded execution engine.
//
// Where sim::ShardSimulator executes every shard serially on the caller's
// thread, ParallelEngine models the paper's actual system shape: shards are
// independent processors. The pieces:
//
//   * Ingest/mempool: SubmitBlock() routes each transaction by the current
//     alloc::Allocation snapshot into one bounded MPSC queue per shard.
//   * Shard workers: a fixed pool of threads, shards striped across them
//     (worker w owns shards s with s % num_workers == w — one worker per
//     shard when threads >= shards). Each worker drains its shards' ingest
//     queues into local FIFOs and, once per tick, executes one block of work
//     per owned shard under the shared sim::WorkModel cost semantics
//     (η per cross part, λ capacity per block).
//   * Cross-shard commits: workers vote PREPARED part-by-part into a
//     TwoPhaseCoordinator; cross-shard transactions pay the extra commit
//     round(s) of §I.
//   * Online reallocation: InstallAllocation() swaps in a new copy-on-write
//     std::shared_ptr<const Allocation> snapshot between block boundaries.
//     Workers never read the allocation (routing happens at ingest), so the
//     swap never stops them — the epoch hook in engine/pipeline.h drives it
//     from core::TxAlloController.
//
// Time is logical, in blocks: Tick() advances every shard by one block in
// parallel and barriers before commit decisions are flushed, so for a given
// submission sequence the engine's SimReport-compatible numbers match the
// serial simulator's (the parity tests assert this within tolerance; only
// floating-point summation order differs).
//
// Determinism: every submitted transaction carries an ingest *sequence tag*
// (a position in a per-engine reservation counter; see
// ReserveSequenceRange). Producers may push into a shard's inbox in any
// interleaving — the lane stages arrivals and merges them into its FIFO in
// sequence order at the next tick, after all in-flight submissions have
// returned (the driver contract). Per-lane execution order is therefore a
// pure function of the submitted blocks and installed snapshots,
// independent of worker threads, producer count and λ; with trace recording
// on (EnableTraceRecording), ExtractTrace() returns the canonical per-tick,
// per-shard prepare order and 2PC outcome stream that engine/replay.h
// serializes and replays bit-identically.
//
// Threading contract (relaxed since the ingest router): ingest is
// multi-producer — SubmitBlock/SubmitTransactions may be called from any
// number of threads concurrently (the per-shard MPSC queues and the 2PC
// registry are shared-state safe; engine/ingest_router.h is the fan-out
// driver). Tick/Snapshot/DrainAndReport remain driver API — one thread at a
// time, and they must not overlap in-flight submissions (the logical clock
// advances between ingest phases, exactly like a block boundary).
// InstallAllocation is safe from any thread at any time.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>  // txallo-lint: allow(raw-thread) worker pool
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/chain/transaction.h"
#include "txallo/common/histogram.h"
#include "txallo/common/sha256.h"
#include "txallo/common/status.h"
#include "txallo/common/sync.h"
#include "txallo/engine/mpsc_queue.h"
#include "txallo/engine/two_phase.h"
#include "txallo/sim/shard_sim.h"
#include "txallo/sim/work_model.h"
#include "txallo/state/state_db.h"

namespace txallo::engine {

struct EngineConfig {
  uint32_t num_shards = 8;
  /// Shared η/λ/commit-round cost semantics.
  sim::WorkModel work;
  /// Account-state backend (state/). Disabled by default: the engine then
  /// executes the pure cost model — every vote is PREPARED and installs
  /// are free mapping edits. Enabled, parts stage real debits/credits
  /// (insufficient balance -> deterministic abort), installs migrate
  /// account records between shard DBs (charged against λ), and each tick
  /// fingerprints the committed state with a Merkle root.
  state::StateConfig state;
  /// Worker threads; 0 = min(hardware_concurrency, num_shards). Clamped to
  /// [1, num_shards].
  uint32_t num_threads = 0;
  /// Bound of each shard's ingest queue (transaction parts). Producers
  /// block — after waking the consumer — when a queue is full.
  size_t queue_capacity = 4096;
  /// Route accounts the snapshot has not placed by hash (account id mod k)
  /// instead of rejecting the block. What a live chain does for accounts
  /// created since the last allocation epoch; the reallocation pipeline
  /// turns this on.
  bool hash_route_unassigned = false;
  /// Synthetic CPU cost per work unit (iterations of an LCG spin),
  /// emulating real transaction execution so thread scaling is measurable.
  /// 0 (default) keeps execution pure bookkeeping — required for exact
  /// parity timing against the serial simulator in tests.
  uint64_t spin_iterations_per_unit = 0;
};

/// One executed transaction part: the PREPARED vote a shard cast at a tick,
/// keyed by the transaction's ingest sequence tag. The per-lane event order
/// is the lane's execution order; ExtractTrace() returns the global stream
/// in canonical (block, shard, lane-position) order.
struct PrepareEvent {
  /// Tick at which the part finished executing (the vote's block).
  uint64_t block = 0;
  uint32_t shard = 0;
  /// Ingest sequence tag of the transaction.
  uint64_t seq = 0;
  bool operator==(const PrepareEvent&) const = default;
};

/// Merkle root of the committed account state at the end of a tick
/// (recorded only with the state backend on; replay verifies these
/// bit-identically — structural state verification, not just
/// trace-identity).
struct TickStateRoot {
  uint64_t block = 0;
  Sha256Digest root{};
  bool operator==(const TickStateRoot&) const = default;
};

/// SimReport plus engine-only observability.
struct EngineReport {
  /// Same fields/semantics as the serial simulator's report.
  sim::SimReport sim;
  uint32_t num_workers = 0;
  /// Per-shard ingest-queue high-water mark (backpressure indicator).
  std::vector<uint64_t> max_queue_depth;
  /// Total seconds workers spent parked waiting for work or ticks.
  double worker_stall_seconds = 0.0;
  /// Allocation snapshots installed while running.
  uint64_t reallocations = 0;
  /// Total seconds ingest was blocked installing snapshots (the
  /// "reallocation pause"; copy-on-write keeps this near zero).
  double realloc_pause_seconds = 0.0;
  /// 2PC observability: PREPARED votes received and cross-shard commits.
  uint64_t prepares_received = 0;
  uint64_t cross_shard_committed = 0;
  /// Transactions aborted by a failed state check (state backend only).
  uint64_t aborted = 0;
  uint64_t cross_shard_aborted = 0;
  /// Account records moved between shard DBs by allocation installs
  /// (state backend only; the migration cost charged against λ).
  uint64_t accounts_migrated = 0;
  /// Exact commit-latency histogram in blocks (decision − arrival), commits
  /// only. Deterministic across thread/producer counts; p50/p99/p99.9 come
  /// straight out of it.
  common::Histogram commit_latency_blocks;
};

class ParallelEngine {
 public:
  /// Starts the worker pool. `initial` may be null — SubmitBlock then
  /// fails until InstallAllocation() provides a snapshot. An `initial`
  /// whose shard count differs from the engine's is rejected the same way
  /// InstallAllocation would reject it; SubmitBlock reports the mismatch.
  ParallelEngine(EngineConfig config,
                 std::shared_ptr<const alloc::Allocation> initial);

  /// Stops and joins the workers. Pending (unticked) work is discarded.
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Routes one block of transactions by the current allocation snapshot
  /// into the shard queues. Blocks for backpressure when a queue is full.
  /// Safe from multiple producer threads concurrently (see the threading
  /// contract above); equivalent to SubmitTransactions over the whole span.
  Status SubmitBlock(const std::vector<chain::Transaction>& transactions);

  /// Multi-producer ingest primitive: routes `count` transactions starting
  /// at `transactions` by the current allocation snapshot. Any number of
  /// producers may call this concurrently — per-transaction routing reads
  /// one copy-on-write snapshot, the 2PC registry is mutex-guarded, and the
  /// per-shard inboxes are MPSC. Must not overlap Tick()/Snapshot()/
  /// DrainAndReport() (driver API). Reserves this call's sequence range
  /// internally, so tags across *concurrent* callers follow reservation
  /// interleaving; coordinate with ReserveSequenceRange + the three-arg
  /// overload when deterministic order matters.
  Status SubmitTransactions(const chain::Transaction* transactions,
                            size_t count);

  /// Deterministic multi-producer ingest: transaction i carries sequence
  /// tag `first_seq + i`. Callers reserve tags up front (one
  /// ReserveSequenceRange per logical block, driver-side) and may then
  /// submit disjoint slices from any number of threads in any interleaving
  /// — per-lane execution order depends only on the tags, not the
  /// schedule. This is what IngestRouter does.
  Status SubmitTransactions(const chain::Transaction* transactions,
                            size_t count, uint64_t first_seq);

  /// Reserves `count` consecutive ingest sequence tags and returns the
  /// first. Safe from any thread; call once per logical block from the
  /// driver so sliced submissions stay deterministic.
  uint64_t ReserveSequenceRange(size_t count) {
    return ingest_seq_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Starts recording the deterministic execution trace (per-lane prepare
  /// events and 2PC commit events). Driver-side, before the first
  /// submission or tick; recording cannot be turned off again.
  void EnableTraceRecording();

  /// Starts collecting per-transaction 2PC decisions for the driver
  /// (TakeObservedCommits) — how the open-loop pipeline learns each
  /// transaction's commit tick to close its end-to-end latency sample.
  /// Driver-side, before the first submission or tick; cannot be turned
  /// off again.
  void EnableCommitObservation();

  /// Decisions issued since the last call, in deterministic issue order.
  /// Driver-side, between ticks. Empty unless EnableCommitObservation ran.
  std::vector<TwoPhaseCoordinator::Decision> TakeObservedCommits();

  /// The canonical recorded trace so far: prepares in (block, shard,
  /// lane-position) order, commits in (block, seq) order. Driver-side;
  /// quiesces workers first. Empty unless EnableTraceRecording() ran.
  struct Trace {
    std::vector<PrepareEvent> prepares;
    std::vector<CommitEvent> commits;
    /// Per-tick committed-state Merkle roots (state backend on only).
    std::vector<TickStateRoot> state_roots;
  };
  Trace ExtractTrace();

  /// Publishes a new allocation snapshot; takes effect from the next
  /// SubmitBlock(). Safe from any thread, never stops the workers. Fails if
  /// the snapshot is null or its shard count differs from the engine's.
  Status InstallAllocation(std::shared_ptr<const alloc::Allocation> next);

  /// Advances one block: every shard executes up to λ work in parallel;
  /// after the barrier, due cross-shard commit decisions are flushed.
  void Tick();

  /// Ticks until all queues drain and all commits land (bounded by
  /// `max_extra_blocks`), then reports.
  EngineReport DrainAndReport(uint64_t max_extra_blocks = 1'000'000);

  /// Report without draining. Quiesces in-flight ingest drains first.
  EngineReport Snapshot();

  uint64_t current_block() const {
    return now_.load(std::memory_order_relaxed);
  }
  const EngineConfig& config() const { return config_; }
  uint32_t num_workers() const { return num_workers_; }
  /// The snapshot ingest currently routes by (null before the first
  /// install when constructed without one).
  std::shared_ptr<const alloc::Allocation> allocation_snapshot() const;

  /// The account-state backend, or nullptr when EngineConfig::state is
  /// disabled. Driver-side only, and only between ticks (the driver owns
  /// it exactly when it owns Tick()).
  state::StateDb* state() { return state_.get(); }
  const state::StateDb* state() const { return state_.get(); }

 private:
  struct WorkItem {
    uint64_t tx_index;
    uint64_t seq;
    double work_remaining;
    /// This part's staged effects (state backend on; empty otherwise).
    std::vector<state::Op> ops;
  };
  /// A part that finished executing this tick, parked by the owning worker
  /// for the driver to stage + vote after the barrier (in canonical lane
  /// order — which is what keeps state mutation deterministic and the
  /// state DB single-threaded).
  struct FinishedPart {
    uint64_t tx_index;
    uint64_t seq;
    std::vector<state::Op> ops;
  };
  // Per-shard execution state. The inbox is shared (producers push, owner
  // worker drains); everything below it is owned by the shard's worker
  // between barriers and read by the driver only after quiescing.
  struct ShardLane {
    explicit ShardLane(size_t queue_capacity) : inbox(queue_capacity) {}
    MpscQueue<WorkItem> inbox;
    // Arrivals drained from the inbox in push (interleaving-dependent)
    // order; merged into the FIFO in sequence order at the next tick, once
    // every in-flight submission has returned. This staging step is what
    // makes per-lane order producer-schedule independent.
    std::vector<WorkItem> staging;
    std::deque<WorkItem> fifo;
    double processed_work = 0.0;
    // Prepare votes in execution order (only when recording; owner-written).
    std::vector<PrepareEvent> prepare_log;
    // Parts finished this tick; owner-written during the tick, drained by
    // the driver after the barrier (stage + vote), before the next tick.
    std::vector<FinishedPart> finished;
    // λ units still owed for account-record migration (state backend).
    // Driver-written before workers are notified of a tick; owner-consumed
    // off the top of that tick's budget.
    double migration_debt = 0.0;
  };
  void WorkerMain(uint32_t worker_index);
  void ExecuteBlock(uint32_t shard, ShardLane& lane, uint64_t block,
                    bool record);
  // Driver-side, before notifying workers of a tick: applies any pending
  // allocation install to state residency (migrating records) and charges
  // the moved records as migration debt against the involved lanes' λ.
  void SyncStateResidency();
  // Wakes workers to drain their inboxes (called by full queues' handler).
  void RequestService();
  // Driver-side: waits until every worker has observed the latest tick and
  // service generations, so lane state is safe to read.
  void QuiesceLocked() TXALLO_REQUIRES(mu_);
  // True when every worker has caught up with tick_generation_ (and, when
  // `and_services`, with service_generation_ too).
  bool WorkersCaughtUpLocked(bool and_services) const TXALLO_REQUIRES(mu_);

  const EngineConfig config_;
  TwoPhaseCoordinator coordinator_;
  std::vector<std::unique_ptr<ShardLane>> lanes_;

  // Routing snapshot (copy-on-write; swapped under its own mutex so
  // InstallAllocation is safe from any thread). snapshot_error_ remembers
  // why a constructor-supplied snapshot was rejected, so the first
  // SubmitBlock fails with the cause rather than "no snapshot".
  mutable common::Mutex routing_mu_;
  std::shared_ptr<const alloc::Allocation> routing_
      TXALLO_GUARDED_BY(routing_mu_);
  std::string snapshot_error_ TXALLO_GUARDED_BY(routing_mu_);
  uint64_t reallocations_ TXALLO_GUARDED_BY(routing_mu_) = 0;
  double realloc_pause_seconds_ TXALLO_GUARDED_BY(routing_mu_) = 0.0;
  // An install has been published whose residency migration has not run
  // yet (picked up by SyncStateResidency at the next tick).
  bool state_pending_sync_ TXALLO_GUARDED_BY(routing_mu_) = false;

  // Account-state backend. Allocated once in the constructor (null when
  // disabled); mutated by the driver only, between tick barriers — workers
  // never touch it, which is why it needs no lock.
  const std::unique_ptr<state::StateDb> state_;
  // Driver-only state observability (same ownership as state_).
  uint64_t accounts_migrated_ = 0;
  std::vector<TickStateRoot> tick_roots_;
  // Driver-only commit observation (EnableCommitObservation): decisions the
  // driver has not collected yet. Touched only between tick barriers.
  bool observe_commits_ = false;
  std::vector<TwoPhaseCoordinator::Decision> observed_commits_;

  // Tick/service protocol. Per-worker progress lives in parallel vectors
  // (index = worker) rather than a per-worker struct so the counters can be
  // annotated against mu_ and the analysis sees every access.
  mutable common::Mutex mu_;
  common::CondVar cv_workers_;
  common::CondVar cv_driver_;
  uint64_t tick_generation_ TXALLO_GUARDED_BY(mu_) = 0;
  uint64_t service_generation_ TXALLO_GUARDED_BY(mu_) = 0;
  bool stopping_ TXALLO_GUARDED_BY(mu_) = false;
  // Workers sample it under mu_ at the top of each loop iteration and pass
  // the value into ExecuteBlock.
  bool record_trace_ TXALLO_GUARDED_BY(mu_) = false;
  std::vector<uint64_t> worker_ticks_done_ TXALLO_GUARDED_BY(mu_);
  std::vector<uint64_t> worker_services_done_ TXALLO_GUARDED_BY(mu_);
  std::vector<double> worker_stall_seconds_ TXALLO_GUARDED_BY(mu_);
  // Sized before any thread spawns, then joined in the destructor; only the
  // constructor/destructor touch the vector itself.
  std::vector<std::thread> worker_threads_;  // txallo-lint: allow(raw-thread)
  const uint32_t num_workers_;

  // Logical clock. Written by the driver in Tick(); read (relaxed) by
  // concurrent producers in SubmitTransactions — stable there because
  // submissions never overlap ticks (threading contract).
  std::atomic<uint64_t> now_{0};
  // Ingest sequence-tag reservation counter (ReserveSequenceRange).
  std::atomic<uint64_t> ingest_seq_{0};
};

}  // namespace txallo::engine

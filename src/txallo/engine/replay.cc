#include "txallo/engine/replay.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "txallo/common/sha256.h"

namespace txallo::engine {

namespace {

constexpr char kMagic[8] = {'T', 'X', 'T', 'R', 'A', 'C', 'E', '4'};

// Fixed-width little-endian primitives. Explicit byte shuffling (not
// memcpy of host representation) so traces recorded on any platform load
// on any other.
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

// Cursor over a loaded byte buffer; every read is bounds-checked and a
// short buffer latches the failure flag instead of reading past the end.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (!Need(4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (!Need(8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool ReadBytes(uint8_t* dst, size_t n) {
    if (!Need(n)) return false;
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  // u64 length + raw bytes; the length is bounds-checked against the
  // remaining buffer before any allocation.
  bool ReadString(std::string* v) {
    uint64_t len = 0;
    if (!ReadU64(&len)) return false;
    if (len > remaining()) {
      failed_ = true;
      return false;
    }
    v->assign(data_.data() + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

  bool failed() const { return failed_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const std::string& data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

void HashU64(Sha256* hasher, uint64_t v) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = (v >> (8 * i)) & 0xff;
  hasher->Update(bytes, sizeof(bytes));
}

std::string U64(uint64_t v) { return std::to_string(v); }

}  // namespace

uint64_t FingerprintLedger(const chain::Ledger& ledger) {
  Sha256 hasher;
  HashU64(&hasher, ledger.num_blocks());
  for (const chain::Block& block : ledger.blocks()) {
    HashU64(&hasher, block.size());
    for (const chain::Transaction& tx : block.transactions()) {
      HashU64(&hasher, tx.inputs().size());
      for (chain::AccountId a : tx.inputs()) HashU64(&hasher, a);
      HashU64(&hasher, tx.outputs().size());
      for (chain::AccountId a : tx.outputs()) HashU64(&hasher, a);
    }
  }
  const Sha256Digest digest = hasher.Finish();
  uint64_t fingerprint = 0;
  for (int i = 0; i < 8; ++i) {
    fingerprint = (fingerprint << 8) | digest[static_cast<size_t>(i)];
  }
  return fingerprint;
}

std::string DescribeTraceDivergence(const ReplayLog& recorded,
                                    const ReplayLog& replayed) {
  if (!(recorded.meta == replayed.meta)) {
    return "trace meta differs (shards/work model/epoch cadence/ledger "
           "fingerprint)";
  }
  if (recorded.prepares.size() != replayed.prepares.size()) {
    return "prepare stream length: recorded " + U64(recorded.prepares.size()) +
           " vs replayed " + U64(replayed.prepares.size());
  }
  for (size_t i = 0; i < recorded.prepares.size(); ++i) {
    const PrepareEvent& a = recorded.prepares[i];
    const PrepareEvent& b = replayed.prepares[i];
    if (!(a == b)) {
      return "prepare[" + U64(i) + "]: recorded (block=" + U64(a.block) +
             ", shard=" + U64(a.shard) + ", seq=" + U64(a.seq) +
             ") vs replayed (block=" + U64(b.block) + ", shard=" +
             U64(b.shard) + ", seq=" + U64(b.seq) + ")";
    }
  }
  if (recorded.commits.size() != replayed.commits.size()) {
    return "commit stream length: recorded " + U64(recorded.commits.size()) +
           " vs replayed " + U64(replayed.commits.size());
  }
  for (size_t i = 0; i < recorded.commits.size(); ++i) {
    const CommitEvent& a = recorded.commits[i];
    const CommitEvent& b = replayed.commits[i];
    if (!(a == b)) {
      return "commit[" + U64(i) + "]: recorded (block=" + U64(a.block) +
             ", seq=" + U64(a.seq) + ", cross=" + U64(a.cross_shard) +
             ", aborted=" + U64(a.aborted) + ") vs replayed (block=" +
             U64(b.block) + ", seq=" + U64(b.seq) + ", cross=" +
             U64(b.cross_shard) + ", aborted=" + U64(b.aborted) + ")";
    }
  }
  if (recorded.state_roots.size() != replayed.state_roots.size()) {
    return "state-root stream length: recorded " +
           U64(recorded.state_roots.size()) + " vs replayed " +
           U64(replayed.state_roots.size());
  }
  for (size_t i = 0; i < recorded.state_roots.size(); ++i) {
    const TickStateRoot& a = recorded.state_roots[i];
    const TickStateRoot& b = replayed.state_roots[i];
    if (!(a == b)) {
      return "state root[" + U64(i) + "]: recorded (block=" + U64(a.block) +
             ", root=" + DigestToHex(a.root).substr(0, 16) +
             "…) vs replayed (block=" + U64(b.block) + ", root=" +
             DigestToHex(b.root).substr(0, 16) + "…)";
    }
  }
  if (recorded.installs.size() != replayed.installs.size()) {
    return "install count: recorded " + U64(recorded.installs.size()) +
           " vs replayed " + U64(replayed.installs.size());
  }
  for (size_t i = 0; i < recorded.installs.size(); ++i) {
    if (!(recorded.installs[i] == replayed.installs[i])) {
      return "install[" + U64(i) + "] at block " +
             U64(recorded.installs[i].block) +
             ": mapping or block differs";
    }
  }
  if (recorded.steps.size() != replayed.steps.size()) {
    return "step count: recorded " + U64(recorded.steps.size()) +
           " vs replayed " + U64(replayed.steps.size());
  }
  for (size_t i = 0; i < recorded.steps.size(); ++i) {
    // Wall-clock fields are not reproducible; compare logical content only.
    StepMetrics a = recorded.steps[i];
    StepMetrics b = replayed.steps[i];
    a.alloc_seconds = b.alloc_seconds = 0.0;
    a.alloc_wait_seconds = b.alloc_wait_seconds = 0.0;
    if (!(a == b)) {
      return "step[" + U64(i) + "]: recorded (submitted=" + U64(a.submitted) +
             ", committed=" + U64(a.committed) + ", cross=" +
             U64(a.cross_shard_submitted) + ", aborted=" + U64(a.aborted) +
             ", migrated=" + U64(a.accounts_migrated) + ", installed=" +
             U64(a.installed) + ") vs replayed (submitted=" +
             U64(b.submitted) + ", committed=" + U64(b.committed) +
             ", cross=" + U64(b.cross_shard_submitted) + ", aborted=" +
             U64(b.aborted) + ", migrated=" + U64(b.accounts_migrated) +
             ", installed=" + U64(b.installed) + ")";
    }
  }
  if (recorded.accounts_moved != replayed.accounts_moved) {
    return "accounts_moved: recorded " + U64(recorded.accounts_moved) +
           " vs replayed " + U64(replayed.accounts_moved);
  }
  return "";
}

namespace {

// One shard's prepare subsequence, in stream order. The global stream is
// canonically (block, shard, lane-position) sorted, so the per-shard
// subsequence IS that shard's execution order.
std::vector<std::vector<PrepareEvent>> SplitLanes(const ReplayLog& log) {
  uint32_t num_shards = log.meta.num_shards;
  for (const PrepareEvent& event : log.prepares) {
    // Tolerate hand-built logs whose meta was never filled in.
    if (event.shard >= num_shards) num_shards = event.shard + 1;
  }
  std::vector<std::vector<PrepareEvent>> lanes(num_shards);
  for (const PrepareEvent& event : log.prepares) {
    lanes[event.shard].push_back(event);
  }
  return lanes;
}

std::string LaneEntry(const std::vector<PrepareEvent>& lane, size_t i) {
  if (i >= lane.size()) return "(--, --)";
  return "(" + U64(lane[i].block) + ", " + U64(lane[i].seq) + ")";
}

void PadTo(std::string* line, size_t width) {
  while (line->size() < width) line->push_back(' ');
}

}  // namespace

std::string DescribeLaneDivergence(const ReplayLog& recorded,
                                   const ReplayLog& replayed,
                                   size_t context) {
  std::vector<std::vector<PrepareEvent>> rec = SplitLanes(recorded);
  std::vector<std::vector<PrepareEvent>> rep = SplitLanes(replayed);
  const size_t num_lanes = std::max(rec.size(), rep.size());
  rec.resize(num_lanes);
  rep.resize(num_lanes);

  std::string out;
  for (size_t shard = 0; shard < num_lanes; ++shard) {
    const std::vector<PrepareEvent>& a = rec[shard];
    const std::vector<PrepareEvent>& b = rep[shard];
    const size_t longest = std::max(a.size(), b.size());
    size_t first = longest;
    for (size_t i = 0; i < longest; ++i) {
      if (i >= a.size() || i >= b.size() || !(a[i] == b[i])) {
        first = i;
        break;
      }
    }
    if (first == longest) continue;  // Lane matches entry for entry.

    if (!out.empty()) out += "\n";
    out += "lane shard=" + U64(shard) + ": first divergence at pos " +
           U64(first) + " (recorded tick " +
           (first < a.size() ? U64(a[first].block) : std::string("--")) +
           ", replayed tick " +
           (first < b.size() ? U64(b[first].block) : std::string("--")) +
           ")\n";
    out += "      pos   recorded(block, seq)    replayed(block, seq)\n";
    const size_t lo = first > context ? first - context : 0;
    const size_t hi = std::min(longest, first + context + 1);
    for (size_t i = lo; i < hi; ++i) {
      const bool divergent =
          i >= a.size() || i >= b.size() || !(a[i] == b[i]);
      std::string line = divergent ? "    > " : "      ";
      line += U64(i);
      PadTo(&line, 12);
      line += LaneEntry(a, i);
      PadTo(&line, 36);
      line += LaneEntry(b, i);
      out += line + "\n";
    }
  }
  return out;
}

Result<PipelineResult> ReplayRecordedStream(const chain::Ledger& ledger,
                                            const ReplayLog& log,
                                            ParallelEngine* engine,
                                            const PipelineConfig& config) {
  PipelineConfig replay_config = config;
  replay_config.replay = &log;
  return RunReallocatedStream(ledger, nullptr, engine, replay_config);
}

Status SaveReplayLog(const ReplayLog& log, const std::string& path) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, log.meta.num_shards);
  PutF64(&out, log.meta.eta);
  PutF64(&out, log.meta.capacity_per_block);
  PutU32(&out, log.meta.cross_shard_commit_rounds);
  PutU8(&out, log.meta.state_enabled ? 1 : 0);
  PutU64(&out, static_cast<uint64_t>(log.meta.state_initial_balance));
  PutF64(&out, log.meta.state_migration_work);
  PutU32(&out, log.meta.blocks_per_epoch);
  PutU64(&out, log.meta.ledger_blocks);
  PutU64(&out, log.meta.ledger_transactions);
  PutU64(&out, log.meta.ledger_fingerprint);
  PutU8(&out, log.meta.ingest_mode);
  PutF64(&out, log.meta.offered_load);
  PutU32(&out, log.meta.dispatch_per_tick);
  PutU32(&out, log.meta.fee_levels);
  PutU64(&out, log.meta.fee_seed);
  PutU64(&out, log.meta.mempool_capacity);
  PutU64(&out, log.meta.mempool_staging_capacity);
  PutU32(&out, log.meta.account_pending_limit);
  PutU32(&out, log.meta.account_rate_limit);
  PutU64(&out, log.meta.ttl_ticks);
  PutU8(&out, log.meta.admission_policy);
  PutU64(&out, log.meta.workload_spec.size());
  out.append(log.meta.workload_spec);
  PutF64(&out, log.alloc_seconds);
  PutF64(&out, log.alloc_wait_seconds);
  PutF64(&out, log.alloc_overlap_ratio);
  PutU64(&out, log.epochs);
  PutU64(&out, log.accounts_moved);
  PutU64(&out, log.prepares.size());
  for (const PrepareEvent& event : log.prepares) {
    PutU64(&out, event.block);
    PutU32(&out, event.shard);
    PutU64(&out, event.seq);
  }
  PutU64(&out, log.commits.size());
  for (const CommitEvent& event : log.commits) {
    PutU64(&out, event.block);
    PutU64(&out, event.seq);
    PutU8(&out, event.cross_shard ? 1 : 0);
    PutU8(&out, event.aborted ? 1 : 0);
  }
  PutU64(&out, log.state_roots.size());
  for (const TickStateRoot& root : log.state_roots) {
    PutU64(&out, root.block);
    out.append(reinterpret_cast<const char*>(root.root.data()),
               root.root.size());
  }
  PutU64(&out, log.installs.size());
  for (const InstallEvent& event : log.installs) {
    PutU64(&out, event.block);
    PutU64(&out, event.allocation.num_accounts());
    PutU32(&out, event.allocation.num_shards());
    for (alloc::ShardId shard : event.allocation.raw()) PutU32(&out, shard);
  }
  PutU64(&out, log.steps.size());
  for (const StepMetrics& step : log.steps) {
    PutU64(&out, step.step);
    PutU64(&out, step.first_block);
    PutU64(&out, step.last_block);
    PutU64(&out, step.submitted);
    PutU64(&out, step.committed);
    PutU64(&out, step.cross_shard_submitted);
    PutF64(&out, step.throughput_per_block);
    PutF64(&out, step.cross_shard_ratio);
    PutF64(&out, step.alloc_seconds);
    PutF64(&out, step.alloc_wait_seconds);
    PutU8(&out, step.installed ? 1 : 0);
    PutU64(&out, step.aborted);
    PutU64(&out, step.accounts_migrated);
    PutU64(&out, step.offered);
    PutU64(&out, step.admitted);
    PutU64(&out, step.admission_dropped);
    PutU64(&out, step.mempool_depth);
    PutU64(&out, step.mempool_peak_depth);
    PutU64(&out, step.latency_p50_ticks);
    PutU64(&out, step.latency_p99_ticks);
    PutU64(&out, step.latency_p999_ticks);
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file.good()) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<ReplayLog> LoadReplayLog(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IOError("cannot open trace '" + path + "'");
  }
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("'" + path +
                              "' is not a TXTRACE4 replay trace");
  }
  const std::string body = data.substr(sizeof(kMagic));
  Reader reader(body);
  ReplayLog log;
  uint8_t flag = 0;
  uint64_t balance_bits = 0;
  bool ok = reader.ReadU32(&log.meta.num_shards) &&
            reader.ReadF64(&log.meta.eta) &&
            reader.ReadF64(&log.meta.capacity_per_block) &&
            reader.ReadU32(&log.meta.cross_shard_commit_rounds) &&
            reader.ReadU8(&flag) && reader.ReadU64(&balance_bits) &&
            reader.ReadF64(&log.meta.state_migration_work) &&
            reader.ReadU32(&log.meta.blocks_per_epoch) &&
            reader.ReadU64(&log.meta.ledger_blocks) &&
            reader.ReadU64(&log.meta.ledger_transactions) &&
            reader.ReadU64(&log.meta.ledger_fingerprint) &&
            reader.ReadU8(&log.meta.ingest_mode) &&
            reader.ReadF64(&log.meta.offered_load) &&
            reader.ReadU32(&log.meta.dispatch_per_tick) &&
            reader.ReadU32(&log.meta.fee_levels) &&
            reader.ReadU64(&log.meta.fee_seed) &&
            reader.ReadU64(&log.meta.mempool_capacity) &&
            reader.ReadU64(&log.meta.mempool_staging_capacity) &&
            reader.ReadU32(&log.meta.account_pending_limit) &&
            reader.ReadU32(&log.meta.account_rate_limit) &&
            reader.ReadU64(&log.meta.ttl_ticks) &&
            reader.ReadU8(&log.meta.admission_policy) &&
            reader.ReadString(&log.meta.workload_spec) &&
            reader.ReadF64(&log.alloc_seconds) &&
            reader.ReadF64(&log.alloc_wait_seconds) &&
            reader.ReadF64(&log.alloc_overlap_ratio) &&
            reader.ReadU64(&log.epochs) &&
            reader.ReadU64(&log.accounts_moved);
  log.meta.state_enabled = flag != 0;
  log.meta.state_initial_balance = static_cast<int64_t>(balance_bits);
  uint64_t count = 0;
  ok = ok && reader.ReadU64(&count);
  // 20 bytes per prepare: reject counts the remaining bytes cannot hold
  // before reserving (a corrupt length cannot balloon the allocation).
  if (ok && count > reader.remaining() / 20) ok = false;
  if (ok) {
    log.prepares.resize(count);
    for (PrepareEvent& event : log.prepares) {
      ok = ok && reader.ReadU64(&event.block) && reader.ReadU32(&event.shard) &&
           reader.ReadU64(&event.seq);
    }
  }
  ok = ok && reader.ReadU64(&count);
  // 18 bytes per commit: block + seq + the cross-shard and aborted flags.
  if (ok && count > reader.remaining() / 18) ok = false;
  if (ok) {
    log.commits.resize(count);
    for (CommitEvent& event : log.commits) {
      ok = ok && reader.ReadU64(&event.block) && reader.ReadU64(&event.seq) &&
           reader.ReadU8(&flag);
      event.cross_shard = flag != 0;
      ok = ok && reader.ReadU8(&flag);
      event.aborted = flag != 0;
    }
  }
  ok = ok && reader.ReadU64(&count);
  // 40 bytes per state root: the block index + a raw 32-byte digest.
  if (ok && count > reader.remaining() / 40) ok = false;
  if (ok) {
    log.state_roots.resize(count);
    for (TickStateRoot& root : log.state_roots) {
      ok = ok && reader.ReadU64(&root.block) &&
           reader.ReadBytes(root.root.data(), root.root.size());
    }
  }
  ok = ok && reader.ReadU64(&count);
  if (ok && count > reader.remaining() / 20) ok = false;
  if (ok) {
    log.installs.resize(count);
    for (InstallEvent& event : log.installs) {
      uint64_t num_accounts = 0;
      uint32_t num_shards = 0;
      ok = ok && reader.ReadU64(&event.block) &&
           reader.ReadU64(&num_accounts) && reader.ReadU32(&num_shards);
      if (ok && num_accounts > reader.remaining() / 4) ok = false;
      if (!ok) break;
      event.allocation = alloc::Allocation(num_accounts, num_shards);
      for (uint64_t a = 0; a < num_accounts; ++a) {
        uint32_t shard = 0;
        ok = ok && reader.ReadU32(&shard);
        if (!ok) break;
        if (shard != alloc::kUnassignedShard) {
          if (shard >= num_shards) {
            ok = false;
            break;
          }
          event.allocation.Assign(static_cast<chain::AccountId>(a), shard);
        }
      }
    }
  }
  ok = ok && reader.ReadU64(&count);
  // 161 bytes per step: 16 u64 counters + 4 f64 metrics + the installed
  // flag.
  if (ok && count > reader.remaining() / 161) ok = false;
  if (ok) {
    log.steps.resize(count);
    for (StepMetrics& step : log.steps) {
      ok = ok && reader.ReadU64(&step.step) &&
           reader.ReadU64(&step.first_block) &&
           reader.ReadU64(&step.last_block) &&
           reader.ReadU64(&step.submitted) &&
           reader.ReadU64(&step.committed) &&
           reader.ReadU64(&step.cross_shard_submitted) &&
           reader.ReadF64(&step.throughput_per_block) &&
           reader.ReadF64(&step.cross_shard_ratio) &&
           reader.ReadF64(&step.alloc_seconds) &&
           reader.ReadF64(&step.alloc_wait_seconds) && reader.ReadU8(&flag);
      step.installed = flag != 0;
      ok = ok && reader.ReadU64(&step.aborted) &&
           reader.ReadU64(&step.accounts_migrated) &&
           reader.ReadU64(&step.offered) && reader.ReadU64(&step.admitted) &&
           reader.ReadU64(&step.admission_dropped) &&
           reader.ReadU64(&step.mempool_depth) &&
           reader.ReadU64(&step.mempool_peak_depth) &&
           reader.ReadU64(&step.latency_p50_ticks) &&
           reader.ReadU64(&step.latency_p99_ticks) &&
           reader.ReadU64(&step.latency_p999_ticks);
    }
  }
  if (!ok || reader.failed() || !reader.AtEnd()) {
    return Status::Corruption("trace '" + path +
                              "' is truncated or corrupt");
  }
  return log;
}

Status DumpReplayLogCsv(const ReplayLog& log, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  file << "kind,a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p,q,r,s\n";
  file << "meta,num_shards," << log.meta.num_shards << "\n";
  file << "meta,eta," << log.meta.eta << "\n";
  file << "meta,capacity_per_block," << log.meta.capacity_per_block << "\n";
  file << "meta,cross_shard_commit_rounds,"
       << log.meta.cross_shard_commit_rounds << "\n";
  file << "meta,state_enabled," << (log.meta.state_enabled ? 1 : 0) << "\n";
  file << "meta,state_initial_balance," << log.meta.state_initial_balance
       << "\n";
  file << "meta,state_migration_work," << log.meta.state_migration_work
       << "\n";
  file << "meta,blocks_per_epoch," << log.meta.blocks_per_epoch << "\n";
  file << "meta,ledger_blocks," << log.meta.ledger_blocks << "\n";
  file << "meta,ledger_transactions," << log.meta.ledger_transactions << "\n";
  file << "meta,ledger_fingerprint," << log.meta.ledger_fingerprint << "\n";
  file << "meta,ingest_mode," << static_cast<uint32_t>(log.meta.ingest_mode)
       << "\n";
  file << "meta,offered_load," << log.meta.offered_load << "\n";
  file << "meta,dispatch_per_tick," << log.meta.dispatch_per_tick << "\n";
  file << "meta,fee_levels," << log.meta.fee_levels << "\n";
  file << "meta,fee_seed," << log.meta.fee_seed << "\n";
  file << "meta,mempool_capacity," << log.meta.mempool_capacity << "\n";
  file << "meta,mempool_staging_capacity," << log.meta.mempool_staging_capacity
       << "\n";
  file << "meta,account_pending_limit," << log.meta.account_pending_limit
       << "\n";
  file << "meta,account_rate_limit," << log.meta.account_rate_limit << "\n";
  file << "meta,ttl_ticks," << log.meta.ttl_ticks << "\n";
  file << "meta,admission_policy,"
       << static_cast<uint32_t>(log.meta.admission_policy) << "\n";
  file << "meta,workload_spec," << log.meta.workload_spec << "\n";
  file << "meta,epochs," << log.epochs << "\n";
  file << "meta,accounts_moved," << log.accounts_moved << "\n";
  for (const StepMetrics& step : log.steps) {
    file << "step," << step.step << ',' << step.first_block << ','
         << step.last_block << ',' << step.submitted << ',' << step.committed
         << ',' << step.cross_shard_submitted << ','
         << step.throughput_per_block << ',' << step.cross_shard_ratio << ','
         << (step.installed ? 1 : 0) << ',' << step.aborted << ','
         << step.accounts_migrated << ',' << step.offered << ','
         << step.admitted << ',' << step.admission_dropped << ','
         << step.mempool_depth << ',' << step.mempool_peak_depth << ','
         << step.latency_p50_ticks << ',' << step.latency_p99_ticks << ','
         << step.latency_p999_ticks << "\n";
  }
  for (const InstallEvent& event : log.installs) {
    // The mapping itself is summarized (size + content hash); the binary
    // trace is the machine-readable artifact.
    Sha256 hasher;
    for (alloc::ShardId shard : event.allocation.raw()) {
      HashU64(&hasher, shard);
    }
    file << "install," << event.block << ','
         << event.allocation.num_accounts() << ','
         << event.allocation.num_shards() << ','
         << DigestToHex(hasher.Finish()).substr(0, 16) << "\n";
  }
  for (const PrepareEvent& event : log.prepares) {
    file << "prepare," << event.block << ',' << event.shard << ','
         << event.seq << "\n";
  }
  for (const CommitEvent& event : log.commits) {
    file << "commit," << event.block << ',' << event.seq << ','
         << (event.cross_shard ? 1 : 0) << ',' << (event.aborted ? 1 : 0)
         << "\n";
  }
  for (const TickStateRoot& root : log.state_roots) {
    file << "state_root," << root.block << ',' << DigestToHex(root.root)
         << "\n";
  }
  file.flush();
  if (!file.good()) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace txallo::engine

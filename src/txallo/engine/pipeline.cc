#include "txallo/engine/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "txallo/chain/block.h"
#include "txallo/common/stopwatch.h"
#include "txallo/engine/background_allocator.h"
#include "txallo/engine/ingest_router.h"
#include "txallo/engine/replay.h"
#include "txallo/mempool/cleaner.h"
#include "txallo/mempool/offered_load.h"
#include "txallo/mempool/submit_router.h"
#include "txallo/sim/reconfig.h"
#include "txallo/workload/stream.h"

namespace txallo::engine {

Result<AllocatorMode> ParseAllocatorMode(const std::string& name) {
  if (name == "sync") return AllocatorMode::kDriverSync;
  if (name == "deferred") return AllocatorMode::kDriverDeferred;
  if (name == "background") return AllocatorMode::kBackground;
  return Status::InvalidArgument("unknown allocator mode '" + name +
                                 "' (expected sync, deferred or background)");
}

const char* AllocatorModeName(AllocatorMode mode) {
  switch (mode) {
    case AllocatorMode::kDriverSync:
      return "sync";
    case AllocatorMode::kDriverDeferred:
      return "deferred";
    case AllocatorMode::kBackground:
      return "background";
  }
  return "unknown";
}

Result<IngestMode> ParseIngestMode(const std::string& name) {
  if (name == "closed") return IngestMode::kClosedLoop;
  if (name == "open") return IngestMode::kOpenLoop;
  return Status::InvalidArgument("unknown ingest mode '" + name +
                                 "' (expected closed or open)");
}

const char* IngestModeName(IngestMode mode) {
  switch (mode) {
    case IngestMode::kClosedLoop:
      return "closed";
    case IngestMode::kOpenLoop:
      return "open";
  }
  return "unknown";
}

namespace {

/// Admission drops chargeable to the window series (capacity, per-account
/// limits, producer backpressure). TTL expiries are a lifetime property of
/// already-admitted transactions, not an admission decision — they stay in
/// AdmissionStats only.
uint64_t AdmissionDrops(const mempool::AdmissionStats& stats) {
  return stats.dropped_capacity + stats.dropped_account_pending +
         stats.dropped_account_rate + stats.dropped_backpressure;
}

// One RunReallocatedStream invocation. The closed- and open-loop drivers
// share everything but the tick loop itself: validation, bootstrap, the
// install path and its accounts_moved accounting, the replay install
// stream, the per-window engine-delta metrics, the allocator-mode boundary
// schedule, and the drain/trace epilogue. Keeping them as methods of one
// object (rather than two near-copies of a 300-line function) is what makes
// "open-loop replays exactly like closed-loop" checkable by inspection.
class PipelineRun {
 public:
  PipelineRun(const chain::Ledger& ledger, allocator::OnlineAllocator* alloc,
              ParallelEngine* engine, const PipelineConfig& config)
      : ledger_(ledger),
        alloc_(alloc),
        engine_(engine),
        config_(config),
        replay_(config.replay),
        recording_(config.record != nullptr || config.replay != nullptr) {}

  Result<PipelineResult> Run();

 private:
  Status Validate();
  Status Bootstrap();
  /// Publishes `next` and charges the account-migration delta (the very
  /// first snapshot has no predecessor to migrate from).
  Status Install(std::shared_ptr<const alloc::Allocation> next);
  /// Replay-side install source: applies every recorded snapshot whose
  /// block has been reached (block 0 before the first submission, epoch
  /// boundaries after their window's last tick).
  Status ApplyDueInstalls(uint64_t* applied);
  /// The shared compute-on-the-driver-and-hold step of both deferred
  /// schedules: one implementation so their timelines cannot drift apart.
  Status ComputeAndHold(StepMetrics& metrics);
  /// Engine-delta counters of the window [first_block, last_block) against
  /// the previous snapshot.
  StepMetrics WindowMetrics(const EngineReport& snap, uint64_t first_block,
                            uint64_t last_block);
  /// The allocator-mode boundary schedule (rebalance / install / launch).
  Status EpochBoundary(StepMetrics& metrics);
  /// Stream exhausted with a background rebalance still in flight: finish
  /// and commit it so the allocator ends in the same state as the driver
  /// schedules, but skip the install — no traffic left for it to route.
  Status FinishInFlightBackground(StepMetrics& metrics);
  /// Shared per-window close: runs the boundary logic (replay install
  /// application, or the allocator-mode schedule when more traffic
  /// follows), accumulates wall-clock sums, appends the step.
  Status CloseWindow(StepMetrics metrics, bool more_traffic);

  Status RunClosedLoop();
  Status RunOpenLoop();
  /// Latency samples of every commit decided since the last call.
  void RecordObservedCommits(common::Histogram* window_hist);
  Status CloseOpenLoopWindow(const mempool::OfferedLoadGenerator& generator,
                             mempool::Mempool& pool,
                             common::Histogram* window_hist,
                             uint64_t window_first, bool more_traffic);
  Status Epilogue();

  const chain::Ledger& ledger_;
  allocator::OnlineAllocator* const alloc_;
  ParallelEngine* const engine_;
  const PipelineConfig& config_;
  const ReplayLog* const replay_;
  const bool recording_;

  // Resolved from the replay meta when replaying, from config otherwise.
  uint32_t blocks_per_epoch_ = 0;
  IngestMode ingest_mode_ = IngestMode::kClosedLoop;
  OpenLoopConfig open_loop_;
  // One full-ledger hash per run, shared by the replay guard and the
  // recorded meta.
  uint64_t ledger_fingerprint_ = 0;

  PipelineResult result_;
  ReplayLog observed_;  // Built along the run when recording.
  std::shared_ptr<const alloc::Allocation> current_;
  // Pipeline stages: optional parallel-ingest fan-out and optional
  // background allocation worker (never needed on replay — the recorded
  // install stream stands in for the allocator entirely).
  std::optional<IngestRouter> router_;
  std::optional<BackgroundAllocator> background_;
  // Mapping computed at the previous boundary, awaiting its deferred
  // install (kDriverDeferred, and kBackground's fallback when the strategy
  // cannot snapshot).
  std::shared_ptr<const alloc::Allocation> held_;
  size_t install_cursor_ = 0;
  EngineReport prev_;
  uint64_t step_ = 0;

  // Open-loop state. Engine sequence tags are assigned contiguously in
  // dispatch order (driver SubmitBlock and IngestRouter slices alike), so
  // a dense vector maps seq -> submit tick.
  std::vector<uint64_t> submit_tick_of_seq_;
  uint64_t offered_prev_ = 0;
  mempool::AdmissionStats admission_prev_;
};

Status PipelineRun::Validate() {
  if (blocks_per_epoch_ == 0) {
    return Status::InvalidArgument("blocks_per_epoch must be positive");
  }
  if (engine_ == nullptr || (alloc_ == nullptr && replay_ == nullptr)) {
    return Status::InvalidArgument(
        "RunReallocatedStream needs a non-null allocator and engine");
  }
  if (!engine_->config().hash_route_unassigned) {
    return Status::InvalidArgument(
        "RunReallocatedStream requires EngineConfig::hash_route_unassigned: "
        "accounts created since the last epoch have no shard in the "
        "allocator's snapshot and must hash-route until the next Rebalance");
  }
  if (ingest_mode_ == IngestMode::kOpenLoop &&
      !(open_loop_.offered_load > 0.0)) {
    return Status::InvalidArgument(
        "open-loop ingest needs a positive offered_load (transactions per "
        "tick)");
  }
  if (recording_) {
    // A trace covers a run from block 0 with no traffic before it; ingested
    // transactions that predate recording would leave phantom events (or,
    // on replay, divergent streams) that only surface as a late Internal
    // error instead of this loud one.
    if (engine_->current_block() != 0 ||
        engine_->Snapshot().sim.submitted != 0) {
      return Status::InvalidArgument(
          "record/replay needs a fresh engine: the trace must cover the run "
          "from block 0 with no prior submissions");
    }
  } else if (ingest_mode_ == IngestMode::kOpenLoop) {
    if (engine_->current_block() != 0 ||
        engine_->Snapshot().sim.submitted != 0) {
      return Status::InvalidArgument(
          "open-loop ingest needs a fresh engine: commit observation must "
          "precede the first submission");
    }
  }
  ledger_fingerprint_ = recording_ ? FingerprintLedger(ledger_) : 0;
  if (replay_ != nullptr) {
    const EngineConfig& ec = engine_->config();
    if (replay_->meta.num_shards != ec.num_shards ||
        replay_->meta.eta != ec.work.eta ||
        replay_->meta.capacity_per_block != ec.work.capacity_per_block ||
        replay_->meta.cross_shard_commit_rounds !=
            ec.work.cross_shard_commit_rounds) {
      return Status::InvalidArgument(
          "replay trace was recorded under a different engine configuration "
          "(shard count or work model)");
    }
    if (replay_->meta.state_enabled != ec.state.enabled ||
        (ec.state.enabled &&
         (replay_->meta.state_initial_balance != ec.state.initial_balance ||
          replay_->meta.state_migration_work !=
              ec.state.migration_work_per_account))) {
      return Status::InvalidArgument(
          "replay trace was recorded under a different account-state "
          "configuration (backend on/off, initial balance or migration "
          "cost)");
    }
    if (!config_.workload_spec.empty() &&
        replay_->meta.workload_spec != config_.workload_spec) {
      return Status::InvalidArgument(
          "replay trace was recorded under workload spec '" +
          replay_->meta.workload_spec + "', not '" + config_.workload_spec +
          "'");
    }
    if (replay_->meta.ledger_blocks != ledger_.num_blocks() ||
        replay_->meta.ledger_transactions != ledger_.num_transactions() ||
        replay_->meta.ledger_fingerprint != ledger_fingerprint_) {
      return Status::InvalidArgument(
          "replay trace was recorded over a different transaction stream "
          "(ledger fingerprint mismatch)");
    }
    if (engine_->allocation_snapshot() != nullptr) {
      // The trace provides the initial mapping; a pre-installed snapshot
      // would skew the accounts_moved accounting of the first install.
      return Status::InvalidArgument(
          "replay needs an engine without a pre-installed allocation "
          "snapshot: the trace's install stream provides the initial "
          "mapping");
    }
  }
  return Status::OK();
}

Status PipelineRun::Install(std::shared_ptr<const alloc::Allocation> next) {
  if (current_ != nullptr) {
    result_.accounts_moved +=
        sim::CompareAllocations(*current_, *next).accounts_moved;
  }
  if (recording_) {
    observed_.installs.push_back(
        InstallEvent{engine_->current_block(), *next});
  }
  TXALLO_RETURN_NOT_OK(engine_->InstallAllocation(next));
  current_ = std::move(next);
  return Status::OK();
}

Status PipelineRun::ApplyDueInstalls(uint64_t* applied) {
  if (applied != nullptr) *applied = 0;
  if (replay_ == nullptr) return Status::OK();
  while (install_cursor_ < replay_->installs.size() &&
         replay_->installs[install_cursor_].block <=
             engine_->current_block()) {
    TXALLO_RETURN_NOT_OK(Install(std::make_shared<const alloc::Allocation>(
        replay_->installs[install_cursor_].allocation)));
    ++install_cursor_;
    if (applied != nullptr) ++(*applied);
  }
  return Status::OK();
}

Status PipelineRun::Bootstrap() {
  if (replay_ != nullptr) {
    return ApplyDueInstalls(nullptr);
  }
  if (current_ == nullptr) {
    current_ = std::make_shared<const alloc::Allocation>(
        alloc_->CurrentAllocation());
    TXALLO_RETURN_NOT_OK(engine_->InstallAllocation(current_));
  }
  if (recording_) {
    // The mapping in force from block 0 — whether just bootstrapped or
    // pre-installed by the caller — leads the install stream.
    observed_.installs.push_back(InstallEvent{0, *current_});
  }
  return Status::OK();
}

Status PipelineRun::ComputeAndHold(StepMetrics& metrics) {
  Stopwatch watch;
  Result<alloc::Allocation> rebalanced = alloc_->Rebalance();
  if (!rebalanced.ok()) return rebalanced.status();
  const double seconds = watch.ElapsedSeconds();
  metrics.alloc_seconds += seconds;
  metrics.alloc_wait_seconds += seconds;
  held_ = std::make_shared<const alloc::Allocation>(
      std::move(rebalanced.value()));
  return Status::OK();
}

StepMetrics PipelineRun::WindowMetrics(const EngineReport& snap,
                                       uint64_t first_block,
                                       uint64_t last_block) {
  StepMetrics metrics;
  metrics.step = step_;
  metrics.first_block = first_block;
  metrics.last_block = last_block;
  metrics.submitted = snap.sim.submitted - prev_.sim.submitted;
  metrics.committed = snap.sim.committed - prev_.sim.committed;
  metrics.cross_shard_submitted =
      snap.sim.cross_shard_submitted - prev_.sim.cross_shard_submitted;
  const uint64_t blocks = last_block - first_block;
  if (blocks > 0) {
    metrics.throughput_per_block =
        static_cast<double>(metrics.committed) / static_cast<double>(blocks);
  }
  if (metrics.submitted > 0) {
    metrics.cross_shard_ratio =
        static_cast<double>(metrics.cross_shard_submitted) /
        static_cast<double>(metrics.submitted);
  }
  metrics.aborted = snap.aborted - prev_.aborted;
  metrics.accounts_migrated = snap.accounts_migrated - prev_.accounts_migrated;
  prev_ = snap;
  return metrics;
}

Status PipelineRun::EpochBoundary(StepMetrics& metrics) {
  switch (config_.allocator_mode) {
    case AllocatorMode::kDriverSync: {
      ++result_.epochs;
      Stopwatch watch;
      Result<alloc::Allocation> rebalanced = alloc_->Rebalance();
      if (!rebalanced.ok()) return rebalanced.status();
      const double seconds = watch.ElapsedSeconds();
      metrics.alloc_seconds = seconds;
      metrics.alloc_wait_seconds = seconds;
      TXALLO_RETURN_NOT_OK(Install(std::make_shared<const alloc::Allocation>(
          std::move(rebalanced.value()))));
      metrics.installed = true;
      break;
    }
    case AllocatorMode::kDriverDeferred: {
      if (held_ != nullptr) {
        TXALLO_RETURN_NOT_OK(Install(std::move(held_)));
        held_ = nullptr;
        metrics.installed = true;
      }
      ++result_.epochs;
      TXALLO_RETURN_NOT_OK(ComputeAndHold(metrics));
      break;
    }
    case AllocatorMode::kBackground: {
      // With allow_epoch_overrun, a Run() still executing at the boundary
      // skips this update entirely (no Collect stall, no new task — the
      // in-flight one keeps running) and the mapping lands at the next
      // boundary it is ready for.
      bool skipped = false;
      if (background_->busy()) {
        std::optional<BackgroundAllocator::Outcome> outcome;
        if (config_.allow_epoch_overrun) {
          Result<std::optional<BackgroundAllocator::Outcome>> polled =
              background_->TryCollect();
          if (!polled.ok()) return polled.status();
          outcome = std::move(polled.value());
          if (!outcome.has_value()) {
            skipped = true;
            ++result_.overrun_boundaries;
          }
        } else {
          Result<BackgroundAllocator::Outcome> collected =
              background_->Collect();
          if (!collected.ok()) return collected.status();
          outcome = std::move(collected.value());
        }
        if (outcome.has_value()) {
          TXALLO_RETURN_NOT_OK(outcome->task->Commit());
          if (!outcome->mapping.ok()) return outcome->mapping.status();
          metrics.alloc_seconds = outcome->run_seconds;
          metrics.alloc_wait_seconds = outcome->wait_seconds;
          TXALLO_RETURN_NOT_OK(
              Install(std::make_shared<const alloc::Allocation>(
                  std::move(outcome->mapping.value()))));
          metrics.installed = true;
        }
      } else if (held_ != nullptr) {
        TXALLO_RETURN_NOT_OK(Install(std::move(held_)));
        held_ = nullptr;
        metrics.installed = true;
      }
      if (!skipped) {
        ++result_.epochs;
        std::unique_ptr<allocator::RebalanceTask> task =
            alloc_->BeginRebalance();
        if (task != nullptr) {
          TXALLO_RETURN_NOT_OK(background_->Launch(std::move(task)));
        } else {
          // Strategy cannot snapshot: compute synchronously here, keep the
          // deferred install schedule so the logical timeline stays
          // identical (overlap just stays at zero for this strategy).
          TXALLO_RETURN_NOT_OK(ComputeAndHold(metrics));
        }
      }
      break;
    }
  }
  return Status::OK();
}

Status PipelineRun::FinishInFlightBackground(StepMetrics& metrics) {
  Result<BackgroundAllocator::Outcome> outcome = background_->Collect();
  if (!outcome.ok()) return outcome.status();
  TXALLO_RETURN_NOT_OK(outcome->task->Commit());
  if (!outcome->mapping.ok()) return outcome->mapping.status();
  metrics.alloc_seconds = outcome->run_seconds;
  metrics.alloc_wait_seconds = outcome->wait_seconds;
  return Status::OK();
}

Status PipelineRun::CloseWindow(StepMetrics metrics, bool more_traffic) {
  if (replay_ != nullptr) {
    // The recorded install stream stands in for the allocator: apply every
    // snapshot due at this boundary, and carry the recorded run's
    // wall-clock observations through verbatim (they are not reproducible;
    // the logical schedule is).
    uint64_t applied = 0;
    TXALLO_RETURN_NOT_OK(ApplyDueInstalls(&applied));
    metrics.installed = applied > 0;
    if (metrics.step < replay_->steps.size()) {
      metrics.alloc_seconds = replay_->steps[metrics.step].alloc_seconds;
      metrics.alloc_wait_seconds =
          replay_->steps[metrics.step].alloc_wait_seconds;
    }
  } else if (more_traffic) {
    // Epoch boundary. The trailing window never reaches here — it gets no
    // update (nothing left for a new mapping to route).
    TXALLO_RETURN_NOT_OK(EpochBoundary(metrics));
  } else if (background_.has_value() && background_->busy()) {
    TXALLO_RETURN_NOT_OK(FinishInFlightBackground(metrics));
  }
  // (kDriverDeferred's final held mapping is dropped for the same
  // trailing-skip reason; its compute time was charged when it ran.)

  result_.alloc_seconds += metrics.alloc_seconds;
  result_.alloc_wait_seconds += metrics.alloc_wait_seconds;
  result_.steps.push_back(metrics);
  ++step_;
  return Status::OK();
}

Status PipelineRun::RunClosedLoop() {
  workload::BlockWindowStream epochs(&ledger_, blocks_per_epoch_);
  while (!epochs.Done()) {
    const workload::BlockWindowStream::Window window = epochs.Next();
    for (size_t b = window.first_block_index; b < window.last_block_index;
         ++b) {
      const chain::Block& block = ledger_.blocks()[b];
      if (router_) {
        TXALLO_RETURN_NOT_OK(router_->SubmitBlock(block.transactions()));
      } else {
        TXALLO_RETURN_NOT_OK(engine_->SubmitBlock(block.transactions()));
      }
      engine_->Tick();
      if (replay_ == nullptr) alloc_->ApplyBlock(block);
    }
    StepMetrics metrics =
        WindowMetrics(engine_->Snapshot(), window.first_block_index,
                      window.last_block_index);
    TXALLO_RETURN_NOT_OK(CloseWindow(std::move(metrics), !epochs.Done()));
  }
  return Status::OK();
}

void PipelineRun::RecordObservedCommits(common::Histogram* window_hist) {
  for (const TwoPhaseCoordinator::Decision& decision :
       engine_->TakeObservedCommits()) {
    // An abort never served anyone; only commits get a latency sample.
    if (decision.aborted) continue;
    const uint64_t latency =
        decision.block - submit_tick_of_seq_[decision.seq];
    if (window_hist != nullptr) window_hist->Record(latency);
    result_.e2e_latency_ticks.Record(latency);
  }
}

Status PipelineRun::CloseOpenLoopWindow(
    const mempool::OfferedLoadGenerator& generator, mempool::Mempool& pool,
    common::Histogram* window_hist, uint64_t window_first,
    bool more_traffic) {
  StepMetrics metrics = WindowMetrics(engine_->Snapshot(), window_first,
                                      engine_->current_block());
  metrics.offered = generator.released() - offered_prev_;
  offered_prev_ = generator.released();
  const mempool::AdmissionStats admission = pool.stats();
  metrics.admitted = admission.admitted - admission_prev_.admitted;
  metrics.admission_dropped =
      AdmissionDrops(admission) - AdmissionDrops(admission_prev_);
  admission_prev_ = admission;
  metrics.mempool_depth = pool.live_size();
  metrics.mempool_peak_depth = admission.peak_depth;
  metrics.latency_p50_ticks = window_hist->Percentile(50.0);
  metrics.latency_p99_ticks = window_hist->Percentile(99.0);
  metrics.latency_p999_ticks = window_hist->Percentile(99.9);
  *window_hist = common::Histogram();
  return CloseWindow(std::move(metrics), more_traffic);
}

Status PipelineRun::RunOpenLoop() {
  // Commit observation feeds the latency histograms; Validate() pinned the
  // engine fresh, so this precedes every registration.
  engine_->EnableCommitObservation();

  mempool::MempoolConfig pool_config = open_loop_.mempool;
  // Deterministic drops: staging must hold any single tick's offer so
  // TrySubmit never races producers against a full buffer — every drop
  // decision then happens at the seal, in pool_seq order (submit_router.h).
  const size_t tick_offer =
      static_cast<size_t>(std::ceil(open_loop_.offered_load)) + 1;
  pool_config.staging_capacity =
      std::max(pool_config.staging_capacity, tick_offer);
  mempool::Mempool pool(pool_config);
  std::optional<mempool::MempoolCleaner> cleaner;
  if (open_loop_.cleaner) cleaner.emplace(&pool);
  std::optional<mempool::SubmitRouter> submitters;
  if (config_.ingest_producers >= 2) {
    submitters.emplace(&pool, config_.ingest_producers);
  }
  mempool::OfferedLoadGenerator generator(
      ledger_,
      mempool::OfferedLoadConfig{open_loop_.offered_load,
                                 open_loop_.fee_levels, open_loop_.fee_seed});
  const size_t dispatch_cap = open_loop_.dispatch_per_tick == 0
                                  ? std::numeric_limits<size_t>::max()
                                  : open_loop_.dispatch_per_tick;

  std::vector<mempool::OfferedTx> released;
  std::vector<chain::Transaction> tx_buf;
  std::vector<uint64_t> fee_buf;
  common::Histogram window_hist;
  uint64_t window_first = engine_->current_block();
  uint32_t ticks_in_window = 0;
  // The run ends when the generator is exhausted AND the pool has fully
  // drained — staging empties every seal, deferrals retry every seal, and
  // dispatch removes live entries, so the conjunction always arrives.
  while (!(generator.Done() && pool.live_size() == 0 &&
           pool.deferred_size() == 0 && pool.staged_size() == 0)) {
    const uint64_t now = engine_->current_block();

    // 1. Offer this tick's arrivals into staging.
    released.clear();
    generator.ReleaseTick(&released);
    if (!released.empty()) {
      const uint64_t seq_base = pool.ReserveSequenceRange(released.size());
      if (submitters) {
        tx_buf.clear();
        fee_buf.clear();
        for (const mempool::OfferedTx& offer : released) {
          tx_buf.push_back(*offer.tx);
          fee_buf.push_back(offer.fee);
        }
        submitters->SubmitBatch(tx_buf.data(), fee_buf.data(), tx_buf.size(),
                                now, seq_base);
      } else {
        for (size_t i = 0; i < released.size(); ++i) {
          pool.TrySubmit(*released[i].tx, released[i].fee, now, seq_base + i);
        }
      }
    }

    // 2. Seal: admission control for tick `now`.
    pool.SealTick(now);

    // 3. Dispatch the fee-priority prefix to the engine.
    std::vector<mempool::PendingTx> batch = pool.TakeBatch(dispatch_cap);
    std::vector<chain::Transaction> block_txs;
    block_txs.reserve(batch.size());
    for (mempool::PendingTx& pending : batch) {
      submit_tick_of_seq_.push_back(pending.submit_tick);
      block_txs.push_back(std::move(pending.tx));
    }
    if (router_) {
      TXALLO_RETURN_NOT_OK(router_->SubmitBlock(block_txs));
    } else {
      TXALLO_RETURN_NOT_OK(engine_->SubmitBlock(block_txs));
    }
    engine_->Tick();

    // 4. End-to-end latency of every commit this tick decided.
    RecordObservedCommits(&window_hist);

    if (replay_ == nullptr) {
      alloc_->ApplyBlock(chain::Block(now, std::move(block_txs)));
    }

    ++ticks_in_window;
    if (ticks_in_window == blocks_per_epoch_) {
      const bool drained = generator.Done() && pool.live_size() == 0 &&
                           pool.deferred_size() == 0 &&
                           pool.staged_size() == 0;
      TXALLO_RETURN_NOT_OK(CloseOpenLoopWindow(generator, pool, &window_hist,
                                               window_first, !drained));
      window_first = engine_->current_block();
      ticks_in_window = 0;
    }
  }
  if (ticks_in_window > 0) {
    TXALLO_RETURN_NOT_OK(CloseOpenLoopWindow(generator, pool, &window_hist,
                                             window_first,
                                             /*more_traffic=*/false));
  }
  result_.admission = pool.stats();
  return Status::OK();
}

Status PipelineRun::Epilogue() {
  if (result_.alloc_seconds > 0.0) {
    result_.alloc_overlap_ratio = std::clamp(
        1.0 - result_.alloc_wait_seconds / result_.alloc_seconds, 0.0, 1.0);
  }
  // Drain the engine, and close the series with a final partial step when
  // draining ticked extra blocks (pending commit rounds or residual λ
  // backlog): commits landing after the last ledger block would otherwise
  // belong to no step, so the per-step series would silently undercount
  // the run total (a blocks_per_epoch larger than the stream made the
  // whole tail vanish into a single short window).
  const uint64_t stream_end_block = engine_->current_block();
  result_.report = engine_->DrainAndReport();
  // Commits decided during the drain still owe their latency samples.
  common::Histogram drain_hist;
  if (ingest_mode_ == IngestMode::kOpenLoop) {
    RecordObservedCommits(&drain_hist);
  }
  if (result_.report.sim.blocks_elapsed > stream_end_block) {
    StepMetrics tail = WindowMetrics(result_.report, stream_end_block,
                                     result_.report.sim.blocks_elapsed);
    if (ingest_mode_ == IngestMode::kOpenLoop) {
      tail.latency_p50_ticks = drain_hist.Percentile(50.0);
      tail.latency_p99_ticks = drain_hist.Percentile(99.0);
      tail.latency_p999_ticks = drain_hist.Percentile(99.9);
      tail.mempool_peak_depth = result_.admission.peak_depth;
    }
    result_.steps.push_back(tail);
  }

  if (replay_ != nullptr) {
    // Boundary-rebalance count and wall-clock aggregates come from the
    // recorded run (no allocator ran here; the per-step copies above
    // re-accumulated its alloc/wait sums bit-identically already).
    result_.epochs = replay_->epochs;
  }
  if (recording_) {
    const EngineConfig& ec = engine_->config();
    observed_.meta.num_shards = ec.num_shards;
    observed_.meta.eta = ec.work.eta;
    observed_.meta.capacity_per_block = ec.work.capacity_per_block;
    observed_.meta.cross_shard_commit_rounds =
        ec.work.cross_shard_commit_rounds;
    // Normalized to zero when the backend is off, so meta equality can
    // never hinge on a value the run ignored.
    observed_.meta.state_enabled = ec.state.enabled;
    observed_.meta.state_initial_balance =
        ec.state.enabled ? ec.state.initial_balance : 0;
    observed_.meta.state_migration_work =
        ec.state.enabled ? ec.state.migration_work_per_account : 0.0;
    observed_.meta.blocks_per_epoch = blocks_per_epoch_;
    observed_.meta.ledger_blocks = ledger_.num_blocks();
    observed_.meta.ledger_transactions = ledger_.num_transactions();
    observed_.meta.ledger_fingerprint = ledger_fingerprint_;
    observed_.meta.workload_spec = config_.workload_spec;
    observed_.meta.ingest_mode = static_cast<uint8_t>(ingest_mode_);
    if (ingest_mode_ == IngestMode::kOpenLoop) {
      // Same normalization rule: closed-loop traces keep the open-loop
      // fields at their zero defaults.
      observed_.meta.offered_load = open_loop_.offered_load;
      observed_.meta.dispatch_per_tick = open_loop_.dispatch_per_tick;
      observed_.meta.fee_levels = open_loop_.fee_levels;
      observed_.meta.fee_seed = open_loop_.fee_seed;
      observed_.meta.mempool_capacity = open_loop_.mempool.capacity;
      observed_.meta.mempool_staging_capacity =
          open_loop_.mempool.staging_capacity;
      observed_.meta.account_pending_limit =
          open_loop_.mempool.account_pending_limit;
      observed_.meta.account_rate_limit =
          open_loop_.mempool.account_rate_limit;
      observed_.meta.ttl_ticks = open_loop_.mempool.ttl_ticks;
      observed_.meta.admission_policy =
          static_cast<uint8_t>(open_loop_.mempool.policy);
    }
    observed_.steps = result_.steps;
    observed_.alloc_seconds = result_.alloc_seconds;
    observed_.alloc_wait_seconds = result_.alloc_wait_seconds;
    observed_.alloc_overlap_ratio = result_.alloc_overlap_ratio;
    observed_.epochs = result_.epochs;
    observed_.accounts_moved = result_.accounts_moved;
    ParallelEngine::Trace trace = engine_->ExtractTrace();
    observed_.prepares = std::move(trace.prepares);
    observed_.commits = std::move(trace.commits);
    observed_.state_roots = std::move(trace.state_roots);
    if (replay_ != nullptr) {
      const std::string divergence =
          DescribeTraceDivergence(*replay_, observed_);
      if (!divergence.empty()) {
        return Status::Internal("replay diverged from the recorded trace: " +
                                divergence);
      }
    }
    if (config_.record != nullptr) *config_.record = std::move(observed_);
  }
  return Status::OK();
}

Result<PipelineResult> PipelineRun::Run() {
  blocks_per_epoch_ = replay_ != nullptr ? replay_->meta.blocks_per_epoch
                                         : config_.blocks_per_epoch;
  ingest_mode_ = replay_ != nullptr
                     ? static_cast<IngestMode>(replay_->meta.ingest_mode)
                     : config_.ingest_mode;
  open_loop_ = config_.open_loop;
  if (replay_ != nullptr && ingest_mode_ == IngestMode::kOpenLoop) {
    // The trace's driving parameters override the caller's — only the
    // physical knobs (cleaner on/off, chunking) stay caller-controlled,
    // because they cannot change any output.
    open_loop_.offered_load = replay_->meta.offered_load;
    open_loop_.dispatch_per_tick = replay_->meta.dispatch_per_tick;
    open_loop_.fee_levels = replay_->meta.fee_levels;
    open_loop_.fee_seed = replay_->meta.fee_seed;
    open_loop_.mempool.capacity = replay_->meta.mempool_capacity;
    open_loop_.mempool.staging_capacity =
        replay_->meta.mempool_staging_capacity;
    open_loop_.mempool.account_pending_limit =
        replay_->meta.account_pending_limit;
    open_loop_.mempool.account_rate_limit = replay_->meta.account_rate_limit;
    open_loop_.mempool.ttl_ticks = replay_->meta.ttl_ticks;
    open_loop_.mempool.policy =
        static_cast<mempool::AdmissionPolicy>(replay_->meta.admission_policy);
  }
  TXALLO_RETURN_NOT_OK(Validate());
  if (recording_) engine_->EnableTraceRecording();

  current_ = engine_->allocation_snapshot();
  if (config_.ingest_producers >= 2) {
    router_.emplace(engine_, config_.ingest_producers);
  }
  if (replay_ == nullptr &&
      config_.allocator_mode == AllocatorMode::kBackground) {
    background_.emplace();
  }

  TXALLO_RETURN_NOT_OK(Bootstrap());
  prev_ = engine_->Snapshot();
  if (ingest_mode_ == IngestMode::kOpenLoop) {
    TXALLO_RETURN_NOT_OK(RunOpenLoop());
  } else {
    TXALLO_RETURN_NOT_OK(RunClosedLoop());
  }
  TXALLO_RETURN_NOT_OK(Epilogue());
  return std::move(result_);
}

}  // namespace

Result<PipelineResult> RunReallocatedStream(const chain::Ledger& ledger,
                                            allocator::OnlineAllocator* alloc,
                                            ParallelEngine* engine,
                                            const PipelineConfig& config) {
  PipelineRun run(ledger, alloc, engine, config);
  return run.Run();
}

}  // namespace txallo::engine

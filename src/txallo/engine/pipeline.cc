#include "txallo/engine/pipeline.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "txallo/common/stopwatch.h"
#include "txallo/engine/background_allocator.h"
#include "txallo/engine/ingest_router.h"
#include "txallo/engine/replay.h"
#include "txallo/sim/reconfig.h"
#include "txallo/workload/stream.h"

namespace txallo::engine {

Result<AllocatorMode> ParseAllocatorMode(const std::string& name) {
  if (name == "sync") return AllocatorMode::kDriverSync;
  if (name == "deferred") return AllocatorMode::kDriverDeferred;
  if (name == "background") return AllocatorMode::kBackground;
  return Status::InvalidArgument("unknown allocator mode '" + name +
                                 "' (expected sync, deferred or background)");
}

const char* AllocatorModeName(AllocatorMode mode) {
  switch (mode) {
    case AllocatorMode::kDriverSync:
      return "sync";
    case AllocatorMode::kDriverDeferred:
      return "deferred";
    case AllocatorMode::kBackground:
      return "background";
  }
  return "unknown";
}

Result<PipelineResult> RunReallocatedStream(const chain::Ledger& ledger,
                                            allocator::OnlineAllocator* alloc,
                                            ParallelEngine* engine,
                                            const PipelineConfig& config) {
  const ReplayLog* replay = config.replay;
  const bool recording = config.record != nullptr || replay != nullptr;
  const uint32_t blocks_per_epoch =
      replay != nullptr ? replay->meta.blocks_per_epoch
                        : config.blocks_per_epoch;
  if (blocks_per_epoch == 0) {
    return Status::InvalidArgument("blocks_per_epoch must be positive");
  }
  if (engine == nullptr || (alloc == nullptr && replay == nullptr)) {
    return Status::InvalidArgument(
        "RunReallocatedStream needs a non-null allocator and engine");
  }
  if (!engine->config().hash_route_unassigned) {
    return Status::InvalidArgument(
        "RunReallocatedStream requires EngineConfig::hash_route_unassigned: "
        "accounts created since the last epoch have no shard in the "
        "allocator's snapshot and must hash-route until the next Rebalance");
  }
  if (recording) {
    // A trace covers a run from block 0 with no traffic before it; ingested
    // transactions that predate recording would leave phantom events (or,
    // on replay, divergent streams) that only surface as a late Internal
    // error instead of this loud one.
    if (engine->current_block() != 0 ||
        engine->Snapshot().sim.submitted != 0) {
      return Status::InvalidArgument(
          "record/replay needs a fresh engine: the trace must cover the run "
          "from block 0 with no prior submissions");
    }
  }
  // One full-ledger hash per run, shared by the replay guard below and the
  // recorded meta at the end.
  const uint64_t ledger_fingerprint =
      recording ? FingerprintLedger(ledger) : 0;
  if (replay != nullptr) {
    const EngineConfig& ec = engine->config();
    if (replay->meta.num_shards != ec.num_shards ||
        replay->meta.eta != ec.work.eta ||
        replay->meta.capacity_per_block != ec.work.capacity_per_block ||
        replay->meta.cross_shard_commit_rounds !=
            ec.work.cross_shard_commit_rounds) {
      return Status::InvalidArgument(
          "replay trace was recorded under a different engine configuration "
          "(shard count or work model)");
    }
    if (replay->meta.state_enabled != ec.state.enabled ||
        (ec.state.enabled &&
         (replay->meta.state_initial_balance != ec.state.initial_balance ||
          replay->meta.state_migration_work !=
              ec.state.migration_work_per_account))) {
      return Status::InvalidArgument(
          "replay trace was recorded under a different account-state "
          "configuration (backend on/off, initial balance or migration "
          "cost)");
    }
    if (replay->meta.ledger_blocks != ledger.num_blocks() ||
        replay->meta.ledger_transactions != ledger.num_transactions() ||
        replay->meta.ledger_fingerprint != ledger_fingerprint) {
      return Status::InvalidArgument(
          "replay trace was recorded over a different transaction stream "
          "(ledger fingerprint mismatch)");
    }
    if (engine->allocation_snapshot() != nullptr) {
      // The trace provides the initial mapping; a pre-installed snapshot
      // would skew the accounts_moved accounting of the first install.
      return Status::InvalidArgument(
          "replay needs an engine without a pre-installed allocation "
          "snapshot: the trace's install stream provides the initial "
          "mapping");
    }
  }
  if (recording) engine->EnableTraceRecording();

  PipelineResult result;
  ReplayLog observed;  // Built along the run when recording.
  std::shared_ptr<const alloc::Allocation> current =
      engine->allocation_snapshot();

  // Pipeline stages: optional parallel-ingest fan-out and optional
  // background allocation worker (never needed on replay — the recorded
  // install stream stands in for the allocator entirely).
  std::optional<IngestRouter> router;
  if (config.ingest_producers >= 2) {
    router.emplace(engine, config.ingest_producers);
  }
  std::optional<BackgroundAllocator> background;
  if (replay == nullptr &&
      config.allocator_mode == AllocatorMode::kBackground) {
    background.emplace();
  }

  // Publishes `next` and charges the account-migration delta (the very
  // first snapshot has no predecessor to migrate from).
  auto install =
      [&](std::shared_ptr<const alloc::Allocation> next) -> Status {
    if (current != nullptr) {
      result.accounts_moved +=
          sim::CompareAllocations(*current, *next).accounts_moved;
    }
    if (recording) {
      observed.installs.push_back(
          InstallEvent{engine->current_block(), *next});
    }
    TXALLO_RETURN_NOT_OK(engine->InstallAllocation(next));
    current = std::move(next);
    return Status::OK();
  };

  // Replay-side install source: applies every recorded snapshot whose
  // block has been reached (block 0 before the first submission, epoch
  // boundaries after their window's last tick). Returns how many applied.
  size_t install_cursor = 0;
  auto apply_due_installs = [&](uint64_t* applied) -> Status {
    if (applied != nullptr) *applied = 0;
    if (replay == nullptr) return Status::OK();
    while (install_cursor < replay->installs.size() &&
           replay->installs[install_cursor].block <=
               engine->current_block()) {
      TXALLO_RETURN_NOT_OK(install(std::make_shared<const alloc::Allocation>(
          replay->installs[install_cursor].allocation)));
      ++install_cursor;
      if (applied != nullptr) ++(*applied);
    }
    return Status::OK();
  };

  if (replay != nullptr) {
    TXALLO_RETURN_NOT_OK(apply_due_installs(nullptr));
  } else {
    if (current == nullptr) {
      current = std::make_shared<const alloc::Allocation>(
          alloc->CurrentAllocation());
      TXALLO_RETURN_NOT_OK(engine->InstallAllocation(current));
    }
    if (recording) {
      // The mapping in force from block 0 — whether just bootstrapped or
      // pre-installed by the caller — leads the install stream.
      observed.installs.push_back(InstallEvent{0, *current});
    }
  }

  // Mapping computed at the previous boundary, awaiting its deferred
  // install (kDriverDeferred, and kBackground's fallback when the strategy
  // cannot snapshot).
  std::shared_ptr<const alloc::Allocation> held;
  // The shared compute-on-the-driver-and-hold step of both deferred
  // schedules: one implementation so their timelines cannot drift apart.
  auto compute_and_hold = [&](StepMetrics& metrics) -> Status {
    Stopwatch watch;
    Result<alloc::Allocation> rebalanced = alloc->Rebalance();
    if (!rebalanced.ok()) return rebalanced.status();
    const double seconds = watch.ElapsedSeconds();
    metrics.alloc_seconds += seconds;
    metrics.alloc_wait_seconds += seconds;
    held = std::make_shared<const alloc::Allocation>(
        std::move(rebalanced.value()));
    return Status::OK();
  };

  EngineReport prev = engine->Snapshot();
  workload::BlockWindowStream epochs(&ledger, blocks_per_epoch);
  uint64_t step = 0;
  while (!epochs.Done()) {
    const workload::BlockWindowStream::Window window = epochs.Next();
    for (size_t b = window.first_block_index; b < window.last_block_index;
         ++b) {
      const chain::Block& block = ledger.blocks()[b];
      if (router) {
        TXALLO_RETURN_NOT_OK(router->SubmitBlock(block.transactions()));
      } else {
        TXALLO_RETURN_NOT_OK(engine->SubmitBlock(block.transactions()));
      }
      engine->Tick();
      if (replay == nullptr) alloc->ApplyBlock(block);
    }

    StepMetrics metrics;
    metrics.step = step;
    metrics.first_block = window.first_block_index;
    metrics.last_block = window.last_block_index;
    {
      const EngineReport snap = engine->Snapshot();
      metrics.submitted = snap.sim.submitted - prev.sim.submitted;
      metrics.committed = snap.sim.committed - prev.sim.committed;
      metrics.cross_shard_submitted =
          snap.sim.cross_shard_submitted - prev.sim.cross_shard_submitted;
      const uint64_t blocks =
          window.last_block_index - window.first_block_index;
      if (blocks > 0) {
        metrics.throughput_per_block =
            static_cast<double>(metrics.committed) /
            static_cast<double>(blocks);
      }
      if (metrics.submitted > 0) {
        metrics.cross_shard_ratio =
            static_cast<double>(metrics.cross_shard_submitted) /
            static_cast<double>(metrics.submitted);
      }
      metrics.aborted = snap.aborted - prev.aborted;
      metrics.accounts_migrated =
          snap.accounts_migrated - prev.accounts_migrated;
      prev = snap;
    }

    if (replay != nullptr) {
      // The recorded install stream stands in for the allocator: apply
      // every snapshot due at this boundary, and carry the recorded run's
      // wall-clock observations through verbatim (they are not
      // reproducible; the logical schedule is).
      uint64_t applied = 0;
      TXALLO_RETURN_NOT_OK(apply_due_installs(&applied));
      metrics.installed = applied > 0;
      if (step < replay->steps.size()) {
        metrics.alloc_seconds = replay->steps[step].alloc_seconds;
        metrics.alloc_wait_seconds = replay->steps[step].alloc_wait_seconds;
      }
    } else if (!epochs.Done()) {
      // Epoch boundary. The trailing window never reaches here — it gets
      // no update (nothing left for a new mapping to route).
      switch (config.allocator_mode) {
        case AllocatorMode::kDriverSync: {
          ++result.epochs;
          Stopwatch watch;
          Result<alloc::Allocation> rebalanced = alloc->Rebalance();
          if (!rebalanced.ok()) return rebalanced.status();
          const double seconds = watch.ElapsedSeconds();
          metrics.alloc_seconds = seconds;
          metrics.alloc_wait_seconds = seconds;
          TXALLO_RETURN_NOT_OK(
              install(std::make_shared<const alloc::Allocation>(
                  std::move(rebalanced.value()))));
          metrics.installed = true;
          break;
        }
        case AllocatorMode::kDriverDeferred: {
          if (held != nullptr) {
            TXALLO_RETURN_NOT_OK(install(std::move(held)));
            held = nullptr;
            metrics.installed = true;
          }
          ++result.epochs;
          TXALLO_RETURN_NOT_OK(compute_and_hold(metrics));
          break;
        }
        case AllocatorMode::kBackground: {
          // With allow_epoch_overrun, a Run() still executing at the
          // boundary skips this update entirely (no Collect stall, no new
          // task — the in-flight one keeps running) and the mapping lands
          // at the next boundary it is ready for.
          bool skipped = false;
          if (background->busy()) {
            std::optional<BackgroundAllocator::Outcome> outcome;
            if (config.allow_epoch_overrun) {
              Result<std::optional<BackgroundAllocator::Outcome>> polled =
                  background->TryCollect();
              if (!polled.ok()) return polled.status();
              outcome = std::move(polled.value());
              if (!outcome.has_value()) {
                skipped = true;
                ++result.overrun_boundaries;
              }
            } else {
              Result<BackgroundAllocator::Outcome> collected =
                  background->Collect();
              if (!collected.ok()) return collected.status();
              outcome = std::move(collected.value());
            }
            if (outcome.has_value()) {
              TXALLO_RETURN_NOT_OK(outcome->task->Commit());
              if (!outcome->mapping.ok()) return outcome->mapping.status();
              metrics.alloc_seconds = outcome->run_seconds;
              metrics.alloc_wait_seconds = outcome->wait_seconds;
              TXALLO_RETURN_NOT_OK(
                  install(std::make_shared<const alloc::Allocation>(
                      std::move(outcome->mapping.value()))));
              metrics.installed = true;
            }
          } else if (held != nullptr) {
            TXALLO_RETURN_NOT_OK(install(std::move(held)));
            held = nullptr;
            metrics.installed = true;
          }
          if (!skipped) {
            ++result.epochs;
            std::unique_ptr<allocator::RebalanceTask> task =
                alloc->BeginRebalance();
            if (task != nullptr) {
              TXALLO_RETURN_NOT_OK(background->Launch(std::move(task)));
            } else {
              // Strategy cannot snapshot: compute synchronously here, keep
              // the deferred install schedule so the logical timeline stays
              // identical (overlap just stays at zero for this strategy).
              TXALLO_RETURN_NOT_OK(compute_and_hold(metrics));
            }
          }
          break;
        }
      }
    } else if (background.has_value() && background->busy()) {
      // Ledger exhausted with a rebalance still in flight: finish and
      // commit it so the allocator ends in the same state as the driver
      // schedules (a caller continuing the stream can build on it), but
      // skip the install — there is no traffic left for it to route.
      Result<BackgroundAllocator::Outcome> outcome = background->Collect();
      if (!outcome.ok()) return outcome.status();
      TXALLO_RETURN_NOT_OK(outcome->task->Commit());
      if (!outcome->mapping.ok()) return outcome->mapping.status();
      metrics.alloc_seconds = outcome->run_seconds;
      metrics.alloc_wait_seconds = outcome->wait_seconds;
    }
    // (kDriverDeferred's final held mapping is dropped for the same
    // trailing-skip reason; its compute time was charged when it ran.)

    result.alloc_seconds += metrics.alloc_seconds;
    result.alloc_wait_seconds += metrics.alloc_wait_seconds;
    result.steps.push_back(metrics);
    ++step;
  }
  if (result.alloc_seconds > 0.0) {
    result.alloc_overlap_ratio = std::clamp(
        1.0 - result.alloc_wait_seconds / result.alloc_seconds, 0.0, 1.0);
  }
  // Drain the engine, and close the series with a final partial step when
  // draining ticked extra blocks (pending commit rounds or residual λ
  // backlog): commits landing after the last ledger block would otherwise
  // belong to no step, so the per-step series would silently undercount
  // the run total (a blocks_per_epoch larger than the stream made the
  // whole tail vanish into a single short window).
  const uint64_t stream_end_block = engine->current_block();
  result.report = engine->DrainAndReport();
  if (result.report.sim.blocks_elapsed > stream_end_block) {
    StepMetrics tail;
    tail.step = step;
    tail.first_block = stream_end_block;
    tail.last_block = result.report.sim.blocks_elapsed;
    tail.submitted = result.report.sim.submitted - prev.sim.submitted;
    tail.committed = result.report.sim.committed - prev.sim.committed;
    tail.cross_shard_submitted = result.report.sim.cross_shard_submitted -
                                 prev.sim.cross_shard_submitted;
    tail.throughput_per_block =
        static_cast<double>(tail.committed) /
        static_cast<double>(tail.last_block - tail.first_block);
    if (tail.submitted > 0) {
      tail.cross_shard_ratio = static_cast<double>(tail.cross_shard_submitted) /
                               static_cast<double>(tail.submitted);
    }
    tail.aborted = result.report.aborted - prev.aborted;
    tail.accounts_migrated =
        result.report.accounts_migrated - prev.accounts_migrated;
    result.steps.push_back(tail);
  }

  if (replay != nullptr) {
    // Boundary-rebalance count and wall-clock aggregates come from the
    // recorded run (no allocator ran here; the per-step copies above
    // re-accumulated its alloc/wait sums bit-identically already).
    result.epochs = replay->epochs;
  }
  if (recording) {
    const EngineConfig& ec = engine->config();
    observed.meta.num_shards = ec.num_shards;
    observed.meta.eta = ec.work.eta;
    observed.meta.capacity_per_block = ec.work.capacity_per_block;
    observed.meta.cross_shard_commit_rounds =
        ec.work.cross_shard_commit_rounds;
    // Normalized to zero when the backend is off, so meta equality can
    // never hinge on a value the run ignored.
    observed.meta.state_enabled = ec.state.enabled;
    observed.meta.state_initial_balance =
        ec.state.enabled ? ec.state.initial_balance : 0;
    observed.meta.state_migration_work =
        ec.state.enabled ? ec.state.migration_work_per_account : 0.0;
    observed.meta.blocks_per_epoch = blocks_per_epoch;
    observed.meta.ledger_blocks = ledger.num_blocks();
    observed.meta.ledger_transactions = ledger.num_transactions();
    observed.meta.ledger_fingerprint = ledger_fingerprint;
    observed.steps = result.steps;
    observed.alloc_seconds = result.alloc_seconds;
    observed.alloc_wait_seconds = result.alloc_wait_seconds;
    observed.alloc_overlap_ratio = result.alloc_overlap_ratio;
    observed.epochs = result.epochs;
    observed.accounts_moved = result.accounts_moved;
    ParallelEngine::Trace trace = engine->ExtractTrace();
    observed.prepares = std::move(trace.prepares);
    observed.commits = std::move(trace.commits);
    observed.state_roots = std::move(trace.state_roots);
    if (replay != nullptr) {
      const std::string divergence =
          DescribeTraceDivergence(*replay, observed);
      if (!divergence.empty()) {
        return Status::Internal("replay diverged from the recorded trace: " +
                                divergence);
      }
    }
    if (config.record != nullptr) *config.record = std::move(observed);
  }
  return result;
}

}  // namespace txallo::engine

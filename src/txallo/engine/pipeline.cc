#include "txallo/engine/pipeline.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "txallo/common/stopwatch.h"
#include "txallo/engine/background_allocator.h"
#include "txallo/engine/ingest_router.h"
#include "txallo/sim/reconfig.h"
#include "txallo/workload/stream.h"

namespace txallo::engine {

Result<AllocatorMode> ParseAllocatorMode(const std::string& name) {
  if (name == "sync") return AllocatorMode::kDriverSync;
  if (name == "deferred") return AllocatorMode::kDriverDeferred;
  if (name == "background") return AllocatorMode::kBackground;
  return Status::InvalidArgument("unknown allocator mode '" + name +
                                 "' (expected sync, deferred or background)");
}

const char* AllocatorModeName(AllocatorMode mode) {
  switch (mode) {
    case AllocatorMode::kDriverSync:
      return "sync";
    case AllocatorMode::kDriverDeferred:
      return "deferred";
    case AllocatorMode::kBackground:
      return "background";
  }
  return "unknown";
}

Result<PipelineResult> RunReallocatedStream(const chain::Ledger& ledger,
                                            allocator::OnlineAllocator* alloc,
                                            ParallelEngine* engine,
                                            const PipelineConfig& config) {
  if (config.blocks_per_epoch == 0) {
    return Status::InvalidArgument("blocks_per_epoch must be positive");
  }
  if (alloc == nullptr || engine == nullptr) {
    return Status::InvalidArgument(
        "RunReallocatedStream needs a non-null allocator and engine");
  }
  if (!engine->config().hash_route_unassigned) {
    return Status::InvalidArgument(
        "RunReallocatedStream requires EngineConfig::hash_route_unassigned: "
        "accounts created since the last epoch have no shard in the "
        "allocator's snapshot and must hash-route until the next Rebalance");
  }
  PipelineResult result;
  std::shared_ptr<const alloc::Allocation> current =
      engine->allocation_snapshot();
  if (current == nullptr) {
    current = std::make_shared<const alloc::Allocation>(
        alloc->CurrentAllocation());
    TXALLO_RETURN_NOT_OK(engine->InstallAllocation(current));
  }

  // Pipeline stages: optional parallel-ingest fan-out and optional
  // background allocation worker.
  std::optional<IngestRouter> router;
  if (config.ingest_producers >= 2) {
    router.emplace(engine, config.ingest_producers);
  }
  std::optional<BackgroundAllocator> background;
  if (config.allocator_mode == AllocatorMode::kBackground) {
    background.emplace();
  }

  // Publishes `next` and charges the account-migration delta.
  auto install =
      [&](std::shared_ptr<const alloc::Allocation> next) -> Status {
    result.accounts_moved +=
        sim::CompareAllocations(*current, *next).accounts_moved;
    TXALLO_RETURN_NOT_OK(engine->InstallAllocation(next));
    current = std::move(next);
    return Status::OK();
  };

  // Mapping computed at the previous boundary, awaiting its deferred
  // install (kDriverDeferred, and kBackground's fallback when the strategy
  // cannot snapshot).
  std::shared_ptr<const alloc::Allocation> held;
  // The shared compute-on-the-driver-and-hold step of both deferred
  // schedules: one implementation so their timelines cannot drift apart.
  auto compute_and_hold = [&](StepMetrics& metrics) -> Status {
    Stopwatch watch;
    Result<alloc::Allocation> rebalanced = alloc->Rebalance();
    if (!rebalanced.ok()) return rebalanced.status();
    const double seconds = watch.ElapsedSeconds();
    metrics.alloc_seconds += seconds;
    metrics.alloc_wait_seconds += seconds;
    held = std::make_shared<const alloc::Allocation>(
        std::move(rebalanced.value()));
    return Status::OK();
  };

  EngineReport prev = engine->Snapshot();
  workload::BlockWindowStream epochs(&ledger, config.blocks_per_epoch);
  uint64_t step = 0;
  while (!epochs.Done()) {
    const workload::BlockWindowStream::Window window = epochs.Next();
    for (size_t b = window.first_block_index; b < window.last_block_index;
         ++b) {
      const chain::Block& block = ledger.blocks()[b];
      if (router) {
        TXALLO_RETURN_NOT_OK(router->SubmitBlock(block.transactions()));
      } else {
        TXALLO_RETURN_NOT_OK(engine->SubmitBlock(block.transactions()));
      }
      engine->Tick();
      alloc->ApplyBlock(block);
    }

    StepMetrics metrics;
    metrics.step = step;
    metrics.first_block = window.first_block_index;
    metrics.last_block = window.last_block_index;
    {
      const EngineReport snap = engine->Snapshot();
      metrics.submitted = snap.sim.submitted - prev.sim.submitted;
      metrics.committed = snap.sim.committed - prev.sim.committed;
      metrics.cross_shard_submitted =
          snap.sim.cross_shard_submitted - prev.sim.cross_shard_submitted;
      const uint64_t blocks =
          window.last_block_index - window.first_block_index;
      if (blocks > 0) {
        metrics.throughput_per_block =
            static_cast<double>(metrics.committed) /
            static_cast<double>(blocks);
      }
      if (metrics.submitted > 0) {
        metrics.cross_shard_ratio =
            static_cast<double>(metrics.cross_shard_submitted) /
            static_cast<double>(metrics.submitted);
      }
      prev = snap;
    }

    if (!epochs.Done()) {
      // Epoch boundary. The trailing window never reaches here — it gets
      // no update (nothing left for a new mapping to route).
      switch (config.allocator_mode) {
        case AllocatorMode::kDriverSync: {
          ++result.epochs;
          Stopwatch watch;
          Result<alloc::Allocation> rebalanced = alloc->Rebalance();
          if (!rebalanced.ok()) return rebalanced.status();
          const double seconds = watch.ElapsedSeconds();
          metrics.alloc_seconds = seconds;
          metrics.alloc_wait_seconds = seconds;
          TXALLO_RETURN_NOT_OK(
              install(std::make_shared<const alloc::Allocation>(
                  std::move(rebalanced.value()))));
          metrics.installed = true;
          break;
        }
        case AllocatorMode::kDriverDeferred: {
          if (held != nullptr) {
            TXALLO_RETURN_NOT_OK(install(std::move(held)));
            held = nullptr;
            metrics.installed = true;
          }
          ++result.epochs;
          TXALLO_RETURN_NOT_OK(compute_and_hold(metrics));
          break;
        }
        case AllocatorMode::kBackground: {
          if (background->busy()) {
            Result<BackgroundAllocator::Outcome> outcome =
                background->Collect();
            if (!outcome.ok()) return outcome.status();
            TXALLO_RETURN_NOT_OK(outcome->task->Commit());
            if (!outcome->mapping.ok()) return outcome->mapping.status();
            metrics.alloc_seconds = outcome->run_seconds;
            metrics.alloc_wait_seconds = outcome->wait_seconds;
            TXALLO_RETURN_NOT_OK(
                install(std::make_shared<const alloc::Allocation>(
                    std::move(outcome->mapping.value()))));
            metrics.installed = true;
          } else if (held != nullptr) {
            TXALLO_RETURN_NOT_OK(install(std::move(held)));
            held = nullptr;
            metrics.installed = true;
          }
          ++result.epochs;
          std::unique_ptr<allocator::RebalanceTask> task =
              alloc->BeginRebalance();
          if (task != nullptr) {
            TXALLO_RETURN_NOT_OK(background->Launch(std::move(task)));
          } else {
            // Strategy cannot snapshot: compute synchronously here, keep
            // the deferred install schedule so the logical timeline stays
            // identical (overlap just stays at zero for this strategy).
            TXALLO_RETURN_NOT_OK(compute_and_hold(metrics));
          }
          break;
        }
      }
    } else if (background.has_value() && background->busy()) {
      // Ledger exhausted with a rebalance still in flight: finish and
      // commit it so the allocator ends in the same state as the driver
      // schedules (a caller continuing the stream can build on it), but
      // skip the install — there is no traffic left for it to route.
      Result<BackgroundAllocator::Outcome> outcome = background->Collect();
      if (!outcome.ok()) return outcome.status();
      TXALLO_RETURN_NOT_OK(outcome->task->Commit());
      if (!outcome->mapping.ok()) return outcome->mapping.status();
      metrics.alloc_seconds = outcome->run_seconds;
      metrics.alloc_wait_seconds = outcome->wait_seconds;
    }
    // (kDriverDeferred's final held mapping is dropped for the same
    // trailing-skip reason; its compute time was charged when it ran.)

    result.alloc_seconds += metrics.alloc_seconds;
    result.alloc_wait_seconds += metrics.alloc_wait_seconds;
    result.steps.push_back(metrics);
    ++step;
  }
  if (result.alloc_seconds > 0.0) {
    result.alloc_overlap_ratio = std::clamp(
        1.0 - result.alloc_wait_seconds / result.alloc_seconds, 0.0, 1.0);
  }
  result.report = engine->DrainAndReport();
  return result;
}

}  // namespace txallo::engine

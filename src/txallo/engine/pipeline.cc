#include "txallo/engine/pipeline.h"

#include <memory>
#include <utility>

#include "txallo/common/stopwatch.h"
#include "txallo/sim/reconfig.h"
#include "txallo/workload/stream.h"

namespace txallo::engine {

Result<PipelineResult> RunReallocatedStream(const chain::Ledger& ledger,
                                            allocator::OnlineAllocator* alloc,
                                            ParallelEngine* engine,
                                            const PipelineConfig& config) {
  if (config.blocks_per_epoch == 0) {
    return Status::InvalidArgument("blocks_per_epoch must be positive");
  }
  if (alloc == nullptr || engine == nullptr) {
    return Status::InvalidArgument(
        "RunReallocatedStream needs a non-null allocator and engine");
  }
  if (!engine->config().hash_route_unassigned) {
    return Status::InvalidArgument(
        "RunReallocatedStream requires EngineConfig::hash_route_unassigned: "
        "accounts created since the last epoch have no shard in the "
        "allocator's snapshot and must hash-route until the next Rebalance");
  }
  PipelineResult result;
  std::shared_ptr<const alloc::Allocation> current =
      engine->allocation_snapshot();
  if (current == nullptr) {
    current = std::make_shared<const alloc::Allocation>(
        alloc->CurrentAllocation());
    TXALLO_RETURN_NOT_OK(engine->InstallAllocation(current));
  }
  workload::BlockWindowStream epochs(&ledger, config.blocks_per_epoch);
  while (!epochs.Done()) {
    const workload::BlockWindowStream::Window window = epochs.Next();
    for (size_t b = window.first_block_index; b < window.last_block_index;
         ++b) {
      const chain::Block& block = ledger.blocks()[b];
      TXALLO_RETURN_NOT_OK(engine->SubmitBlock(block.transactions()));
      engine->Tick();
      alloc->ApplyBlock(block);
    }
    // Ledger exhausted: skip the trailing update — there is no traffic
    // left for a new mapping to route, and its alloc_seconds /
    // accounts_moved would overstate the run's real cost. The allocator
    // has still absorbed the final window, so a caller continuing the
    // stream can rebalance it immediately.
    if (epochs.Done()) break;
    // Epoch boundary: refresh the mapping and publish it without stopping
    // the workers.
    ++result.epochs;
    Stopwatch alloc_watch;
    Result<alloc::Allocation> rebalanced = alloc->Rebalance();
    if (!rebalanced.ok()) return rebalanced.status();
    result.alloc_seconds += alloc_watch.ElapsedSeconds();
    std::shared_ptr<const alloc::Allocation> next =
        std::make_shared<const alloc::Allocation>(
            std::move(rebalanced.value()));
    result.accounts_moved +=
        sim::CompareAllocations(*current, *next).accounts_moved;
    TXALLO_RETURN_NOT_OK(engine->InstallAllocation(next));
    current = std::move(next);
  }
  result.report = engine->DrainAndReport();
  return result;
}

}  // namespace txallo::engine

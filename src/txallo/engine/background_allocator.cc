#include "txallo/engine/background_allocator.h"

#include <utility>

#include "txallo/common/stopwatch.h"

namespace txallo::engine {

BackgroundAllocator::BackgroundAllocator()
    : worker_(&BackgroundAllocator::WorkerMain, this) {}

BackgroundAllocator::~BackgroundAllocator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_worker_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
}

void BackgroundAllocator::WorkerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_worker_.wait(lock, [&] {
      return stopping_ || (in_flight_ && !run_done_);
    });
    if (stopping_) return;
    allocator::RebalanceTask* task = task_.get();
    lock.unlock();
    Stopwatch watch;
    Result<alloc::Allocation> result = task->Run();
    const double seconds = watch.ElapsedSeconds();
    lock.lock();
    run_result_.emplace(std::move(result));
    run_seconds_ = seconds;
    run_done_ = true;
    cv_owner_.notify_all();
  }
}

Status BackgroundAllocator::Launch(
    std::unique_ptr<allocator::RebalanceTask> task) {
  if (task == nullptr) {
    return Status::InvalidArgument("BackgroundAllocator::Launch(null task)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_) {
    return Status::FailedPrecondition(
        "BackgroundAllocator already has a task in flight; Collect() first");
  }
  task_ = std::move(task);
  in_flight_ = true;
  run_done_ = false;
  run_result_.reset();
  run_seconds_ = 0.0;
  cv_worker_.notify_all();
  return Status::OK();
}

bool BackgroundAllocator::busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

Result<BackgroundAllocator::Outcome> BackgroundAllocator::Collect() {
  Stopwatch wait_watch;
  std::unique_lock<std::mutex> lock(mu_);
  if (!in_flight_) {
    return Status::FailedPrecondition(
        "BackgroundAllocator::Collect() with no task in flight");
  }
  cv_owner_.wait(lock, [&] { return run_done_; });
  Outcome outcome;
  outcome.task = std::move(task_);
  outcome.mapping = std::move(*run_result_);
  outcome.run_seconds = run_seconds_;
  outcome.wait_seconds = wait_watch.ElapsedSeconds();
  run_result_.reset();
  in_flight_ = false;
  run_done_ = false;
  return outcome;
}

}  // namespace txallo::engine

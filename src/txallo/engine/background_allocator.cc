#include "txallo/engine/background_allocator.h"

#include <utility>

#include "txallo/common/stopwatch.h"

namespace txallo::engine {

BackgroundAllocator::BackgroundAllocator()
    : worker_(&BackgroundAllocator::WorkerMain, this) {}

BackgroundAllocator::~BackgroundAllocator() {
  {
    common::MutexLock lock(mu_);
    stopping_ = true;
    cv_worker_.NotifyAll();
  }
  if (worker_.joinable()) worker_.join();
}

void BackgroundAllocator::WorkerMain() {
  mu_.Lock();
  for (;;) {
    while (!(stopping_ || (in_flight_ && !run_done_))) {
      cv_worker_.Wait(mu_);
    }
    if (stopping_) {
      mu_.Unlock();
      return;
    }
    // Run() executes unlocked: the owner cannot touch task_ while
    // in_flight_ && !run_done_ (Launch refuses a second task, Collect
    // blocks on run_done_), so the raw pointee is worker-owned here.
    allocator::RebalanceTask* task = task_.get();
    mu_.Unlock();
    Stopwatch watch;
    Result<alloc::Allocation> result = task->Run();
    const double seconds = watch.ElapsedSeconds();
    mu_.Lock();
    run_result_.emplace(std::move(result));
    run_seconds_ = seconds;
    run_done_ = true;
    cv_owner_.NotifyAll();
  }
}

Status BackgroundAllocator::Launch(
    std::unique_ptr<allocator::RebalanceTask> task) {
  if (task == nullptr) {
    return Status::InvalidArgument("BackgroundAllocator::Launch(null task)");
  }
  common::MutexLock lock(mu_);
  if (in_flight_) {
    return Status::FailedPrecondition(
        "BackgroundAllocator already has a task in flight; Collect() first");
  }
  task_ = std::move(task);
  in_flight_ = true;
  run_done_ = false;
  run_result_.reset();
  run_seconds_ = 0.0;
  cv_worker_.NotifyAll();
  return Status::OK();
}

bool BackgroundAllocator::busy() const {
  common::MutexLock lock(mu_);
  return in_flight_;
}

BackgroundAllocator::Outcome BackgroundAllocator::HarvestLocked() {
  Outcome outcome;
  outcome.task = std::move(task_);
  outcome.mapping = std::move(*run_result_);
  outcome.run_seconds = run_seconds_;
  run_result_.reset();
  in_flight_ = false;
  run_done_ = false;
  return outcome;
}

Result<BackgroundAllocator::Outcome> BackgroundAllocator::Collect() {
  Stopwatch wait_watch;
  common::MutexLock lock(mu_);
  if (!in_flight_) {
    return Status::FailedPrecondition(
        "BackgroundAllocator::Collect() with no task in flight");
  }
  while (!run_done_) {
    cv_owner_.Wait(mu_);
  }
  Outcome outcome = HarvestLocked();
  outcome.wait_seconds = wait_watch.ElapsedSeconds();
  return outcome;
}

Result<std::optional<BackgroundAllocator::Outcome>>
BackgroundAllocator::TryCollect() {
  common::MutexLock lock(mu_);
  if (!in_flight_) {
    return Status::FailedPrecondition(
        "BackgroundAllocator::TryCollect() with no task in flight");
  }
  if (!run_done_) return std::optional<Outcome>();
  // Harvesting a finished run never waits.
  return std::optional<Outcome>(HarvestLocked());
}

}  // namespace txallo::engine

// Sharded ingest router: N producer threads routing one block of
// transactions into the engine's per-shard MPSC queues in parallel.
//
// ParallelEngine::SubmitTransactions is multi-producer safe (routing reads
// one copy-on-write allocation snapshot, the 2PC registry is mutex-guarded,
// the inboxes are MPSC) — the router is the fan-out driver on top of it: a
// persistent pool of producer threads, each taking one contiguous slice of
// the submitted block. The ingest phase is still bracketed by the engine's
// logical clock: SubmitBlock() returns only when every producer has drained
// its slice, so Tick() never overlaps in-flight submissions (the same
// driver contract SubmitBlock always had, with the parallelism inside).
//
// Determinism: SubmitBlock reserves the block's ingest sequence range once
// on the driver (engine::ParallelEngine::ReserveSequenceRange), and every
// producer submits its slice with explicit tags — transaction i of the
// block always carries tag base + i, whatever the producer interleaving.
// Combined with the engine's lane-side stable merge, per-lane FIFO order —
// and therefore which transactions fit a tight λ budget first — is
// byte-identical to the single-driver path, so the whole report matches
// exactly at any λ and producer count (the router stress and the
// ingest-order property tests pin this).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "txallo/chain/transaction.h"
#include "txallo/common/status.h"
#include "txallo/engine/engine.h"

namespace txallo::engine {

class IngestRouter {
 public:
  /// Starts `num_producers` (clamped to >= 1) producer threads submitting
  /// into `engine`, which must outlive the router.
  IngestRouter(ParallelEngine* engine, uint32_t num_producers);

  /// Joins the producers. Any in-flight SubmitBlock must have returned.
  ~IngestRouter();

  IngestRouter(const IngestRouter&) = delete;
  IngestRouter& operator=(const IngestRouter&) = delete;

  /// Splits `transactions` into contiguous slices, one per producer, and
  /// blocks until every slice is routed. One caller at a time (the driver);
  /// must not overlap the engine's Tick/Snapshot/DrainAndReport.
  Status SubmitBlock(const std::vector<chain::Transaction>& transactions);

  uint32_t num_producers() const {
    return static_cast<uint32_t>(threads_.size());
  }

 private:
  void ProducerMain(uint32_t producer_index);

  ParallelEngine* engine_;

  std::mutex mu_;
  std::condition_variable cv_producers_;
  std::condition_variable cv_driver_;
  // One submission = one generation; producers chase it and report back.
  uint64_t generation_ = 0;                 // Guarded by mu_.
  bool stopping_ = false;                   // Guarded by mu_.
  const chain::Transaction* block_ = nullptr;  // Guarded by mu_.
  size_t block_size_ = 0;                   // Guarded by mu_.
  uint64_t block_seq_base_ = 0;             // Guarded by mu_.
  std::vector<uint64_t> done_generation_;   // Guarded by mu_.
  std::vector<Status> statuses_;            // Guarded by mu_.
  std::vector<std::thread> threads_;
};

}  // namespace txallo::engine

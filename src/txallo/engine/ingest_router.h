// Sharded ingest router: N producer threads routing one block of
// transactions into the engine's per-shard MPSC queues in parallel.
//
// ParallelEngine::SubmitTransactions is multi-producer safe (routing reads
// one copy-on-write allocation snapshot, the 2PC registry is mutex-guarded,
// the inboxes are MPSC) — the router is the fan-out driver on top of it: a
// persistent pool of producer threads, each taking one contiguous slice of
// the submitted block. The ingest phase is still bracketed by the engine's
// logical clock: SubmitBlock() returns only when every producer has drained
// its slice, so Tick() never overlaps in-flight submissions (the same
// driver contract SubmitBlock always had, with the parallelism inside).
//
// Determinism: SubmitBlock reserves the block's ingest sequence range once
// on the driver (engine::ParallelEngine::ReserveSequenceRange), and every
// producer submits its slice with explicit tags — transaction i of the
// block always carries tag base + i, whatever the producer interleaving.
// Combined with the engine's lane-side stable merge, per-lane FIFO order —
// and therefore which transactions fit a tight λ budget first — is
// byte-identical to the single-driver path, so the whole report matches
// exactly at any λ and producer count (the router stress and the
// ingest-order property tests pin this).
#pragma once

#include <cstdint>
#include <thread>  // txallo-lint: allow(raw-thread) producer pool
#include <vector>

#include "txallo/chain/transaction.h"
#include "txallo/common/status.h"
#include "txallo/common/sync.h"
#include "txallo/engine/engine.h"

namespace txallo::engine {

class IngestRouter {
 public:
  /// Starts `num_producers` (clamped to >= 1) producer threads submitting
  /// into `engine`, which must outlive the router.
  IngestRouter(ParallelEngine* engine, uint32_t num_producers);

  /// Joins the producers. Any in-flight SubmitBlock must have returned.
  ~IngestRouter();

  IngestRouter(const IngestRouter&) = delete;
  IngestRouter& operator=(const IngestRouter&) = delete;

  /// Splits `transactions` into contiguous slices, one per producer, and
  /// blocks until every slice is routed. One caller at a time (the driver);
  /// must not overlap the engine's Tick/Snapshot/DrainAndReport.
  Status SubmitBlock(const std::vector<chain::Transaction>& transactions);

  uint32_t num_producers() const { return num_producers_; }

 private:
  void ProducerMain(uint32_t producer_index);

  ParallelEngine* engine_;
  const uint32_t num_producers_;

  common::Mutex mu_;
  common::CondVar cv_producers_;
  common::CondVar cv_driver_;
  // One submission = one generation; producers chase it and report back.
  uint64_t generation_ TXALLO_GUARDED_BY(mu_) = 0;
  bool stopping_ TXALLO_GUARDED_BY(mu_) = false;
  const chain::Transaction* block_ TXALLO_GUARDED_BY(mu_) = nullptr;
  size_t block_size_ TXALLO_GUARDED_BY(mu_) = 0;
  uint64_t block_seq_base_ TXALLO_GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> done_generation_ TXALLO_GUARDED_BY(mu_);
  std::vector<Status> statuses_ TXALLO_GUARDED_BY(mu_);
  // Sized before any thread spawns, joined in the destructor.
  std::vector<std::thread> threads_;  // txallo-lint: allow(raw-thread)
};

}  // namespace txallo::engine

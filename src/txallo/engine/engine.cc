#include "txallo/engine/engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "txallo/common/stopwatch.h"
#include "txallo/state/transfer_plan.h"

namespace txallo::engine {

namespace {

// Synthetic per-unit execution cost: a volatile LCG spin the optimizer
// cannot elide, emulating the CPU a real transaction would burn.
void SpinWork(double units, uint64_t iterations_per_unit) {
  const uint64_t n =
      static_cast<uint64_t>(units * static_cast<double>(iterations_per_unit));
  volatile uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (uint64_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  }
}

uint32_t ResolveWorkerCount(const EngineConfig& config) {
  uint32_t n = config.num_threads;
  if (n == 0) {
    // txallo-lint: allow(raw-thread) capacity query, not thread creation
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::max(1u, std::min(n, config.num_shards));
}

// The per-account half of sim::RouteTransaction's rule: which shard one
// account's op executes on at ingest time. Must stay in lockstep with it —
// the part routed to shard s must carry exactly the ops of the accounts
// that routed to s.
alloc::ShardId RouteAccount(chain::AccountId account,
                            const alloc::Allocation& routing) {
  if (routing.IsAssigned(account)) return routing.shard_of(account);
  return static_cast<alloc::ShardId>(account % routing.num_shards());
}

}  // namespace

ParallelEngine::ParallelEngine(EngineConfig config,
                               std::shared_ptr<const alloc::Allocation> initial)
    : config_(config),
      coordinator_(config.work),
      state_(config.state.enabled
                 ? std::make_unique<state::StateDb>(config.num_shards,
                                                    config.state)
                 : nullptr),
      num_workers_(ResolveWorkerCount(config)) {
  assert(config_.num_shards > 0);
  if (state_ != nullptr) coordinator_.EnableDecisionCollection();
  const size_t queue_capacity = std::max<size_t>(1, config_.queue_capacity);
  lanes_.reserve(config_.num_shards);
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    lanes_.push_back(std::make_unique<ShardLane>(queue_capacity));
    lanes_.back()->inbox.SetFullHandler([this] { RequestService(); });
  }
  // Same shard-count invariant InstallAllocation enforces; a constructor
  // cannot return Status, so a mismatched snapshot is rejected here and
  // reported by the first SubmitBlock instead of silently mis-routing
  // (hash fallback would quietly fold all traffic into the snapshot's k).
  if (initial != nullptr) {
    common::MutexLock lock(routing_mu_);
    if (initial->num_shards() == config_.num_shards) {
      routing_ = std::move(initial);
    } else {
      snapshot_error_ = "initial allocation snapshot has " +
                        std::to_string(initial->num_shards()) +
                        " shards, engine has " +
                        std::to_string(config_.num_shards) +
                        "; snapshot rejected";
    }
  }
  {
    // Size every per-worker slot before the first thread spawns: worker
    // threads index these vectors from the moment they start.
    common::MutexLock lock(mu_);
    worker_ticks_done_.assign(num_workers_, 0);
    worker_services_done_.assign(num_workers_, 0);
    worker_stall_seconds_.assign(num_workers_, 0.0);
  }
  worker_threads_.reserve(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    worker_threads_.emplace_back(&ParallelEngine::WorkerMain, this, w);
  }
}

ParallelEngine::~ParallelEngine() {
  {
    common::MutexLock lock(mu_);
    stopping_ = true;
    cv_workers_.NotifyAll();
  }
  for (std::thread& thread : worker_threads_) {  // txallo-lint: allow(raw-thread)
    if (thread.joinable()) thread.join();
  }
}

void ParallelEngine::RequestService() {
  common::MutexLock lock(mu_);
  ++service_generation_;
  cv_workers_.NotifyAll();
}

void ParallelEngine::WorkerMain(uint32_t worker_index) {
  const uint32_t stride = num_workers_;
  mu_.Lock();
  for (;;) {
    Stopwatch stall;
    while (!(stopping_ || tick_generation_ > worker_ticks_done_[worker_index] ||
             service_generation_ > worker_services_done_[worker_index])) {
      cv_workers_.Wait(mu_);
    }
    worker_stall_seconds_[worker_index] += stall.ElapsedSeconds();
    if (stopping_) {
      mu_.Unlock();
      return;
    }
    const uint64_t tick_target = tick_generation_;
    const uint64_t service_target = service_generation_;
    const bool run_tick = tick_target > worker_ticks_done_[worker_index];
    const bool record = record_trace_;
    mu_.Unlock();
    for (uint32_t s = worker_index; s < config_.num_shards; s += stride) {
      ShardLane& lane = *lanes_[s];
      lane.inbox.DrainTo(lane.staging);
      if (run_tick) ExecuteBlock(s, lane, tick_target, record);
    }
    mu_.Lock();
    worker_services_done_[worker_index] =
        std::max(worker_services_done_[worker_index], service_target);
    if (run_tick) worker_ticks_done_[worker_index] = tick_target;
    cv_driver_.NotifyAll();
  }
}

void ParallelEngine::ExecuteBlock(uint32_t shard, ShardLane& lane,
                                  uint64_t block, bool record) {
  // Stable merge: all submissions of the phase have returned (the tick
  // barrier follows the driver contract), so staging holds the complete
  // arrival set — appending it in sequence order makes the lane FIFO
  // independent of producer interleaving. Tags are unique per lane, so a
  // plain sort is canonical.
  if (!lane.staging.empty()) {
    std::sort(lane.staging.begin(), lane.staging.end(),
              [](const WorkItem& a, const WorkItem& b) {
                return a.seq < b.seq;
              });
    lane.fifo.insert(lane.fifo.end(), lane.staging.begin(),
                     lane.staging.end());
    lane.staging.clear();
  }
  double budget = config_.work.capacity_per_block;
  // Migration debt (account records this shard sent/received at the last
  // install) is paid off the top of the budget: moving state is work the
  // shard cannot spend on transactions.
  if (lane.migration_debt > 0.0) {
    const double paid = std::min(budget, lane.migration_debt);
    lane.migration_debt -= paid;
    budget -= paid;
  }
  while (budget > 0.0 && !lane.fifo.empty()) {
    WorkItem& item = lane.fifo.front();
    const double consumed = std::min(budget, item.work_remaining);
    if (config_.spin_iterations_per_unit > 0) {
      SpinWork(consumed, config_.spin_iterations_per_unit);
    }
    item.work_remaining -= consumed;
    budget -= consumed;
    lane.processed_work += consumed;
    if (item.work_remaining <= 1e-12) {
      if (record) {
        lane.prepare_log.push_back(PrepareEvent{block, shard, item.seq});
      }
      // The vote is cast by the driver after the barrier (stage + vote in
      // canonical lane order), not here: state mutation must not race
      // across workers, and a migrated record may live on a lane another
      // worker owns.
      lane.finished.push_back(
          FinishedPart{item.tx_index, item.seq, std::move(item.ops)});
      lane.fifo.pop_front();
    }
  }
}

Status ParallelEngine::SubmitBlock(
    const std::vector<chain::Transaction>& transactions) {
  return SubmitTransactions(transactions.data(), transactions.size());
}

Status ParallelEngine::SubmitTransactions(
    const chain::Transaction* transactions, size_t count) {
  return SubmitTransactions(transactions, count,
                            ReserveSequenceRange(count));
}

Status ParallelEngine::SubmitTransactions(
    const chain::Transaction* transactions, size_t count,
    uint64_t first_seq) {
  std::shared_ptr<const alloc::Allocation> routing;
  {
    common::MutexLock lock(routing_mu_);
    routing = routing_;
    if (routing == nullptr) {
      return Status::FailedPrecondition(
          snapshot_error_.empty()
              ? "no allocation snapshot installed before SubmitBlock"
              : snapshot_error_);
    }
  }
  const sim::UnassignedPolicy policy =
      config_.hash_route_unassigned ? sim::UnassignedPolicy::kHashFallback
                                    : sim::UnassignedPolicy::kReject;
  const uint64_t arrival_block = now_.load(std::memory_order_relaxed);
  // Per-call scratch keeps this path producer-thread-safe (the old member
  // buffer was the last driver-only piece of ingest).
  std::vector<alloc::ShardId> shards;
  for (size_t i = 0; i < count; ++i) {
    const chain::Transaction& tx = transactions[i];
    TXALLO_RETURN_NOT_OK(sim::RouteTransaction(tx, *routing, policy, &shards));
    if (shards.empty()) continue;
    for (alloc::ShardId s : shards) {
      if (s >= config_.num_shards) {
        return Status::FailedPrecondition(
            "allocation snapshot routed account to shard " +
            std::to_string(s) + " outside the engine's " +
            std::to_string(config_.num_shards) + " shards");
      }
    }
    const bool cross = shards.size() > 1;
    const uint64_t seq = first_seq + i;
    const uint64_t tx_index = coordinator_.Register(
        arrival_block, static_cast<uint32_t>(shards.size()), cross, seq);
    const double work = config_.work.PartWork(cross);
    // With the state backend on, the transaction's deterministic transfer
    // plan is sliced across its parts: each part carries the ops of the
    // accounts that routed to its shard.
    std::vector<state::Op> ops;
    if (state_ != nullptr) ops = state::BuildTransferOps(tx, seq);
    for (alloc::ShardId s : shards) {
      WorkItem item{tx_index, seq, work, {}};
      if (state_ != nullptr) {
        for (const state::Op& op : ops) {
          if (RouteAccount(op.account, *routing) == s) {
            item.ops.push_back(op);
          }
        }
      }
      lanes_[s]->inbox.Push(std::move(item));
    }
  }
  return Status::OK();
}

Status ParallelEngine::InstallAllocation(
    std::shared_ptr<const alloc::Allocation> next) {
  if (next == nullptr) {
    return Status::InvalidArgument("null allocation snapshot");
  }
  if (next->num_shards() != config_.num_shards) {
    return Status::InvalidArgument(
        "allocation snapshot has " + std::to_string(next->num_shards()) +
        " shards, engine has " + std::to_string(config_.num_shards));
  }
  Stopwatch pause;
  common::MutexLock lock(routing_mu_);
  routing_ = std::move(next);
  snapshot_error_.clear();
  ++reallocations_;
  if (state_ != nullptr) state_pending_sync_ = true;
  realloc_pause_seconds_ += pause.ElapsedSeconds();
  return Status::OK();
}

std::shared_ptr<const alloc::Allocation> ParallelEngine::allocation_snapshot()
    const {
  common::MutexLock lock(routing_mu_);
  return routing_;
}

bool ParallelEngine::WorkersCaughtUpLocked(bool and_services) const {
  for (uint32_t w = 0; w < num_workers_; ++w) {
    if (worker_ticks_done_[w] != tick_generation_) return false;
    if (and_services && worker_services_done_[w] != service_generation_) {
      return false;
    }
  }
  return true;
}

void ParallelEngine::SyncStateResidency() {
  std::shared_ptr<const alloc::Allocation> target;
  {
    common::MutexLock lock(routing_mu_);
    if (state_pending_sync_) {
      target = routing_;
      state_pending_sync_ = false;
    }
  }
  state::MigrationReport moved;
  if (target != nullptr) {
    moved = state_->BeginMigration(std::move(target),
                                   config_.hash_route_unassigned);
  } else if (state_->migration_pending()) {
    // Records an earlier pass could not move (reservation-locked by an
    // in-flight cross-shard round) are retried every tick until clean.
    moved = state_->ContinueMigration();
  } else {
    return;
  }
  accounts_migrated_ += moved.accounts_moved;
  if (config_.state.migration_work_per_account > 0.0 &&
      moved.accounts_moved > 0) {
    for (uint32_t s = 0; s < config_.num_shards; ++s) {
      const uint64_t records = moved.moved_out[s] + moved.moved_in[s];
      if (records > 0) {
        lanes_[s]->migration_debt += static_cast<double>(records) *
                                     config_.state.migration_work_per_account;
      }
    }
  }
}

void ParallelEngine::Tick() {
  // State residency syncs before the tick's workers run: the migration
  // debt it charges must be visible to this tick's ExecuteBlock (the mu_
  // handshake below publishes the lane writes).
  if (state_ != nullptr) SyncStateResidency();
  now_.fetch_add(1, std::memory_order_relaxed);
  bool record = false;
  {
    common::MutexLock lock(mu_);
    record = record_trace_;
    ++tick_generation_;
    cv_workers_.NotifyAll();
    while (!WorkersCaughtUpLocked(/*and_services=*/false)) {
      cv_driver_.Wait(mu_);
    }
  }
  // Workers have barriered; only the driver touches lane state and the
  // coordinator now. Stage + vote the tick's finished parts in canonical
  // (shard, lane-position) order — driver-side so the state DB is mutated
  // by exactly one thread, in an order independent of worker striping.
  const uint64_t now = now_.load(std::memory_order_relaxed);
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    ShardLane& lane = *lanes_[s];
    for (FinishedPart& part : lane.finished) {
      bool ok = true;
      if (state_ != nullptr) {
        ok = state_->StagePart(part.seq, part.ops, s);
      }
      coordinator_.PartExecuted(part.tx_index, now, ok);
    }
    lane.finished.clear();
  }
  coordinator_.FlushDelayed(now);
  if (state_ != nullptr || observe_commits_) {
    // Apply the tick's 2PC decisions to the staged state (commits land
    // their thunks, aborts revert to the exact pre-transaction records) and
    // park them for the driver when commit observation is on.
    for (const TwoPhaseCoordinator::Decision& decision :
         coordinator_.TakeDecisions()) {
      if (state_ != nullptr) {
        if (decision.aborted) {
          state_->Abort(decision.seq);
        } else {
          state_->Commit(decision.seq);
        }
      }
      if (observe_commits_) observed_commits_.push_back(decision);
    }
  }
  if (state_ != nullptr && record) {
    tick_roots_.push_back(TickStateRoot{now, state_->GlobalRoot()});
  }
}

void ParallelEngine::QuiesceLocked() {
  while (!WorkersCaughtUpLocked(/*and_services=*/true)) {
    cv_driver_.Wait(mu_);
  }
}

EngineReport ParallelEngine::Snapshot() {
  EngineReport report;
  {
    common::MutexLock lock(mu_);
    QuiesceLocked();
    for (double stall : worker_stall_seconds_) {
      report.worker_stall_seconds += stall;
    }
  }
  // After the quiesce, no worker touches lane state until the driver
  // publishes another tick/service generation.
  report.num_workers = num_workers_;
  const CommitStats stats = coordinator_.stats();
  const uint64_t now = now_.load(std::memory_order_relaxed);
  report.sim.submitted = stats.submitted;
  report.sim.committed = stats.committed;
  report.sim.cross_shard_submitted = stats.cross_shard_submitted;
  report.sim.blocks_elapsed = now;
  if (now > 0) {
    report.sim.throughput_per_block =
        static_cast<double>(stats.committed) / static_cast<double>(now);
  }
  if (stats.committed > 0) {
    report.sim.avg_latency_blocks =
        stats.latency_sum_blocks / static_cast<double>(stats.committed);
  }
  report.sim.max_latency_blocks = stats.latency_max_blocks;
  report.commit_latency_blocks = coordinator_.LatencyHistogram();
  report.prepares_received = stats.prepares_received;
  report.cross_shard_committed = stats.cross_shard_committed;
  report.aborted = stats.aborted;
  report.cross_shard_aborted = stats.cross_shard_aborted;
  report.accounts_migrated = accounts_migrated_;

  double utilization = 0.0;
  double residual = 0.0;
  report.max_queue_depth.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    if (now > 0) {
      utilization += lane->processed_work / (config_.work.capacity_per_block *
                                             static_cast<double>(now));
    }
    for (const WorkItem& item : lane->fifo) residual += item.work_remaining;
    for (const WorkItem& item : lane->staging) residual += item.work_remaining;
    lane->inbox.ForEach(
        [&](const WorkItem& item) { residual += item.work_remaining; });
    report.max_queue_depth.push_back(lane->inbox.high_water());
  }
  report.sim.mean_utilization =
      utilization / static_cast<double>(config_.num_shards);
  report.sim.residual_work = residual;
  {
    common::MutexLock lock(routing_mu_);
    report.reallocations = reallocations_;
    report.realloc_pause_seconds = realloc_pause_seconds_;
  }
  return report;
}

void ParallelEngine::EnableTraceRecording() {
  common::MutexLock lock(mu_);
  record_trace_ = true;
  coordinator_.EnableEventRecording();
}

void ParallelEngine::EnableCommitObservation() {
  observe_commits_ = true;
  coordinator_.EnableDecisionCollection();
}

std::vector<TwoPhaseCoordinator::Decision>
ParallelEngine::TakeObservedCommits() {
  return std::exchange(observed_commits_, {});
}

ParallelEngine::Trace ParallelEngine::ExtractTrace() {
  {
    common::MutexLock lock(mu_);
    QuiesceLocked();
  }
  Trace trace;
  // Lanes are concatenated in shard order, each already in execution order
  // with non-decreasing blocks; the stable sort interleaves them into the
  // canonical (block, shard, lane-position) stream.
  for (const auto& lane : lanes_) {
    trace.prepares.insert(trace.prepares.end(), lane->prepare_log.begin(),
                          lane->prepare_log.end());
  }
  std::stable_sort(trace.prepares.begin(), trace.prepares.end(),
                   [](const PrepareEvent& a, const PrepareEvent& b) {
                     return a.block < b.block;
                   });
  trace.commits = coordinator_.CanonicalCommitEvents();
  trace.state_roots = tick_roots_;
  return trace;
}

EngineReport ParallelEngine::DrainAndReport(uint64_t max_extra_blocks) {
  for (uint64_t i = 0; i < max_extra_blocks && !coordinator_.Idle(); ++i) {
    Tick();
  }
  return Snapshot();
}

}  // namespace txallo::engine

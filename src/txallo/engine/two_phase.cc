#include "txallo/engine/two_phase.h"

#include <algorithm>
#include <utility>

namespace txallo::engine {

uint64_t TwoPhaseCoordinator::Register(uint64_t arrival_block,
                                       uint32_t participants,
                                       bool cross_shard, uint64_t seq) {
  common::MutexLock lock(mu_);
  const uint64_t tx_index = txs_.size();
  txs_.push_back(
      TxEntry{arrival_block, seq, participants, cross_shard, false});
  ++stats_.submitted;
  if (cross_shard) ++stats_.cross_shard_submitted;
  ++stats_.in_flight;
  return tx_index;
}

void TwoPhaseCoordinator::DecideLocked(uint64_t tx_index,
                                       uint64_t decision_block,
                                       bool aborted) {
  const TxEntry& tx = txs_[tx_index];
  if (aborted) {
    ++stats_.aborted;
    if (tx.cross_shard) ++stats_.cross_shard_aborted;
  } else {
    ++stats_.committed;
    if (tx.cross_shard) ++stats_.cross_shard_committed;
    const double latency =
        static_cast<double>(decision_block - tx.arrival_block);
    stats_.latency_sum_blocks += latency;
    stats_.latency_max_blocks = std::max(stats_.latency_max_blocks, latency);
    latency_hist_.Record(decision_block - tx.arrival_block);
  }
  if (record_events_) {
    events_.push_back(
        CommitEvent{decision_block, tx.seq, tx.cross_shard, aborted});
  }
  if (collect_decisions_) {
    decisions_.push_back(Decision{decision_block, tx.seq, aborted});
  }
}

void TwoPhaseCoordinator::EnableEventRecording() {
  common::MutexLock lock(mu_);
  record_events_ = true;
}

void TwoPhaseCoordinator::EnableDecisionCollection() {
  common::MutexLock lock(mu_);
  collect_decisions_ = true;
}

std::vector<CommitEvent> TwoPhaseCoordinator::CanonicalCommitEvents() const {
  std::vector<CommitEvent> events;
  {
    common::MutexLock lock(mu_);
    events = events_;
  }
  // Decisions of one block land in PartExecuted/FlushDelayed interleaving
  // order; the sequence tag is the canonical tiebreak.
  std::sort(events.begin(), events.end(),
            [](const CommitEvent& a, const CommitEvent& b) {
              return a.block != b.block ? a.block < b.block : a.seq < b.seq;
            });
  return events;
}

void TwoPhaseCoordinator::PartExecuted(uint64_t tx_index, uint64_t block,
                                       bool ok) {
  common::MutexLock lock(mu_);
  TxEntry& tx = txs_[tx_index];
  ++stats_.prepares_received;
  if (!ok) tx.abort_pending = true;
  if (--tx.parts_remaining > 0) return;
  --stats_.in_flight;
  if (tx.abort_pending) {
    // Aborts resolve at the last-vote block: there is no commit round to
    // pay — participants drop their staged thunks and move on.
    DecideLocked(tx_index, block, /*aborted=*/true);
    return;
  }
  const uint64_t commit_block = model_.CommitBlock(block, tx.cross_shard);
  if (commit_block > block) {
    delayed_.emplace_back(commit_block, tx_index);
    ++stats_.awaiting_commit_round;
    return;
  }
  DecideLocked(tx_index, block, /*aborted=*/false);
}

void TwoPhaseCoordinator::FlushDelayed(uint64_t now) {
  common::MutexLock lock(mu_);
  while (!delayed_.empty() && delayed_.front().first <= now) {
    const uint64_t tx_index = delayed_.front().second;
    delayed_.pop_front();
    --stats_.awaiting_commit_round;
    DecideLocked(tx_index, now, /*aborted=*/false);
  }
}

std::vector<TwoPhaseCoordinator::Decision>
TwoPhaseCoordinator::TakeDecisions() {
  common::MutexLock lock(mu_);
  return std::exchange(decisions_, {});
}

bool TwoPhaseCoordinator::Idle() const {
  common::MutexLock lock(mu_);
  return stats_.in_flight == 0 && delayed_.empty();
}

CommitStats TwoPhaseCoordinator::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

common::Histogram TwoPhaseCoordinator::LatencyHistogram() const {
  common::MutexLock lock(mu_);
  return latency_hist_;
}

}  // namespace txallo::engine

#include "txallo/engine/two_phase.h"

#include <algorithm>

namespace txallo::engine {

uint64_t TwoPhaseCoordinator::Register(uint64_t arrival_block,
                                       uint32_t participants,
                                       bool cross_shard, uint64_t seq) {
  common::MutexLock lock(mu_);
  const uint64_t tx_index = txs_.size();
  txs_.push_back(TxEntry{arrival_block, seq, participants, cross_shard});
  ++stats_.submitted;
  if (cross_shard) ++stats_.cross_shard_submitted;
  ++stats_.in_flight;
  return tx_index;
}

void TwoPhaseCoordinator::CommitLocked(uint64_t tx_index,
                                       uint64_t commit_block) {
  const TxEntry& tx = txs_[tx_index];
  ++stats_.committed;
  if (tx.cross_shard) ++stats_.cross_shard_committed;
  const double latency =
      static_cast<double>(commit_block - tx.arrival_block);
  stats_.latency_sum_blocks += latency;
  stats_.latency_max_blocks = std::max(stats_.latency_max_blocks, latency);
  if (record_events_) {
    events_.push_back(CommitEvent{commit_block, tx.seq, tx.cross_shard});
  }
}

void TwoPhaseCoordinator::EnableEventRecording() {
  common::MutexLock lock(mu_);
  record_events_ = true;
}

std::vector<CommitEvent> TwoPhaseCoordinator::CanonicalCommitEvents() const {
  std::vector<CommitEvent> events;
  {
    common::MutexLock lock(mu_);
    events = events_;
  }
  // Decisions of one block land in PartPrepared/FlushDelayed interleaving
  // order; the sequence tag is the canonical tiebreak.
  std::sort(events.begin(), events.end(),
            [](const CommitEvent& a, const CommitEvent& b) {
              return a.block != b.block ? a.block < b.block : a.seq < b.seq;
            });
  return events;
}

void TwoPhaseCoordinator::PartPrepared(uint64_t tx_index, uint64_t block) {
  common::MutexLock lock(mu_);
  TxEntry& tx = txs_[tx_index];
  ++stats_.prepares_received;
  if (--tx.parts_remaining > 0) return;
  --stats_.in_flight;
  const uint64_t commit_block = model_.CommitBlock(block, tx.cross_shard);
  if (commit_block > block) {
    delayed_.emplace_back(commit_block, tx_index);
    ++stats_.awaiting_commit_round;
    return;
  }
  CommitLocked(tx_index, block);
}

void TwoPhaseCoordinator::FlushDelayed(uint64_t now) {
  common::MutexLock lock(mu_);
  while (!delayed_.empty() && delayed_.front().first <= now) {
    const uint64_t tx_index = delayed_.front().second;
    delayed_.pop_front();
    --stats_.awaiting_commit_round;
    CommitLocked(tx_index, now);
  }
}

bool TwoPhaseCoordinator::Idle() const {
  common::MutexLock lock(mu_);
  return stats_.in_flight == 0 && delayed_.empty();
}

CommitStats TwoPhaseCoordinator::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

}  // namespace txallo::engine

// Bounded multi-producer single-consumer queue: the ingest channel between
// the router (driver thread, and any future parallel ingest threads) and a
// shard worker. Mutex + condvar rather than a lock-free ring: the queue is
// touched once per transaction part, far from hot, and the blocking-push
// backpressure semantics are what the engine actually needs. A `full
// handler` lets the engine nudge the consumer awake before a producer parks
// on a full queue, so bounded capacity cannot deadlock the tick protocol.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

namespace txallo::engine {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity) : capacity_(capacity) {}

  /// Invoked (unlocked) whenever a producer finds the queue full, before it
  /// waits for space. Set once before producers start.
  void SetFullHandler(std::function<void()> handler) {
    full_handler_ = std::move(handler);
  }

  /// Blocks while the queue is at capacity; calls the full handler each
  /// time it is about to wait.
  void Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    while (items_.size() >= capacity_) {
      if (full_handler_) {
        lock.unlock();
        full_handler_();
        lock.lock();
        if (items_.size() < capacity_) break;
      }
      cv_space_.wait(lock, [&] { return items_.size() < capacity_; });
    }
    items_.push_back(std::move(item));
    ++total_pushed_;
    if (items_.size() > high_water_) high_water_ = items_.size();
  }

  /// Non-blocking push; false when full.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    return true;
  }

  /// Consumer side: moves everything queued to the back of `out` (any
  /// container with push_back). Returns the number of items moved.
  template <typename Container>
  size_t DrainTo(Container& out) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = items_.size();
    while (!items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (n > 0) cv_space_.notify_all();
    return n;
  }

  /// Copies the queued items (metrics/diagnostics, not consumption).
  template <typename Fn>
  void ForEach(Fn fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const T& item : items_) fn(item);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Largest queue depth ever observed (per-shard backpressure metric).
  uint64_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_pushed_;
  }

 private:
  const size_t capacity_;
  std::function<void()> full_handler_;
  mutable std::mutex mu_;
  std::condition_variable cv_space_;
  std::deque<T> items_;
  uint64_t high_water_ = 0;
  uint64_t total_pushed_ = 0;
};

}  // namespace txallo::engine

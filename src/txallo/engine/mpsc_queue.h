// Bounded multi-producer single-consumer queue: the ingest channel between
// the router (driver thread, and any future parallel ingest threads) and a
// shard worker. Mutex + condvar rather than a lock-free ring: the queue is
// touched once per transaction part, far from hot, and the blocking-push
// backpressure semantics are what the engine actually needs. A `full
// handler` lets the engine nudge the consumer awake before a producer parks
// on a full queue, so bounded capacity cannot deadlock the tick protocol.
//
// All queue state is guarded by one annotated common::Mutex; Clang's
// -Wthread-safety proves every access holds it (see common/sync.h).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "txallo/common/sync.h"

namespace txallo::engine {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity) : capacity_(capacity) {}

  /// Invoked (unlocked) whenever a producer finds the queue full, before it
  /// waits for space. Set once before producers start.
  void SetFullHandler(std::function<void()> handler) {
    full_handler_ = std::move(handler);
  }

  /// Blocks while the queue is at capacity; calls the full handler each
  /// time it is about to wait.
  void Push(T item) TXALLO_EXCLUDES(mu_) {
    mu_.Lock();
    while (items_.size() >= capacity_) {
      if (full_handler_) {
        // The handler may need locks of its own (the engine's service
        // protocol), so it runs unlocked.
        mu_.Unlock();
        full_handler_();
        mu_.Lock();
        if (items_.size() < capacity_) break;
      }
      cv_space_.Wait(mu_);
    }
    items_.push_back(std::move(item));
    ++total_pushed_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    mu_.Unlock();
  }

  /// Non-blocking push; false when full.
  bool TryPush(T item) TXALLO_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    return true;
  }

  /// Consumer side: moves everything queued to the back of `out` (any
  /// container with push_back). Returns the number of items moved.
  template <typename Container>
  size_t DrainTo(Container& out) TXALLO_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    const size_t n = items_.size();
    while (!items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (n > 0) cv_space_.NotifyAll();
    return n;
  }

  /// Copies the queued items (metrics/diagnostics, not consumption).
  template <typename Fn>
  void ForEach(Fn fn) const TXALLO_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    for (const T& item : items_) fn(item);
  }

  size_t size() const TXALLO_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Largest queue depth ever observed (per-shard backpressure metric).
  uint64_t high_water() const TXALLO_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return high_water_;
  }

  uint64_t total_pushed() const TXALLO_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return total_pushed_;
  }

 private:
  const size_t capacity_;
  // Written once before producers start (SetFullHandler contract), so not
  // guarded: producers only ever read it.
  std::function<void()> full_handler_;
  mutable common::Mutex mu_;
  common::CondVar cv_space_;
  std::deque<T> items_ TXALLO_GUARDED_BY(mu_);
  uint64_t high_water_ TXALLO_GUARDED_BY(mu_) = 0;
  uint64_t total_pushed_ TXALLO_GUARDED_BY(mu_) = 0;
};

}  // namespace txallo::engine

// Background allocator worker: runs allocator::RebalanceTask::Run() off the
// driver's tick loop, so allocation overlaps execution instead of idling
// the shards for `alloc_seconds` at every epoch boundary.
//
// Protocol (driver thread):
//   1. task = online_allocator->BeginRebalance()   (snapshot, owner thread)
//   2. background.Launch(std::move(task))          (Run() starts on worker)
//   3. ... keep submitting/ticking the engine ...
//   4. outcome = background.Collect()              (blocks until Run() done)
//   5. outcome.task->Commit()                      (fold back, owner thread)
//   6. engine->InstallAllocation(outcome.mapping)  (publish, pause-free)
//
// One task in flight at a time; Collect() reports how long the driver
// actually waited, which is what pipeline.cc turns into
// `alloc_overlap_ratio` (run time not covered by driver waiting = overlap).
#pragma once

#include <memory>
#include <optional>
#include <thread>  // txallo-lint: allow(raw-thread) rebalance worker

#include "txallo/alloc/allocation.h"
#include "txallo/allocator/allocator.h"
#include "txallo/common/status.h"
#include "txallo/common/sync.h"

namespace txallo::engine {

class BackgroundAllocator {
 public:
  BackgroundAllocator();
  /// Joins the worker and drops any launched-but-uncollected task WITHOUT
  /// Commit(): an in-flight Run() finishes first, a task the worker never
  /// picked up is not run at all — either way destroying the task abandons
  /// it (the parent allocator releases its outstanding-task bookkeeping and
  /// the mapping is discarded; see allocator::RebalanceTask). Collect()
  /// before destroying when the rebalance result matters.
  ~BackgroundAllocator();

  BackgroundAllocator(const BackgroundAllocator&) = delete;
  BackgroundAllocator& operator=(const BackgroundAllocator&) = delete;

  /// Hands `task` to the worker, which calls Run() once. Fails if a task is
  /// already in flight or `task` is null.
  Status Launch(std::unique_ptr<allocator::RebalanceTask> task);

  /// A task has been launched and not yet collected.
  bool busy() const;

  struct Outcome {
    /// The task, Run() already called; the caller owes it a Commit().
    std::unique_ptr<allocator::RebalanceTask> task;
    /// Run()'s result.
    Result<alloc::Allocation> mapping = Status::Internal("never ran");
    /// Wall-clock seconds Run() took on the worker.
    double run_seconds = 0.0;
    /// Wall-clock seconds this Collect() call blocked the caller — the
    /// non-overlapped share of run_seconds.
    double wait_seconds = 0.0;
  };

  /// Blocks until the in-flight Run() finishes and returns it. Fails with
  /// FailedPrecondition when nothing is in flight.
  Result<Outcome> Collect();

  /// Non-blocking Collect(): returns the outcome when Run() has finished,
  /// nullopt while it is still executing (the task stays in flight — the
  /// epoch-overrun path of pipeline.cc skips the boundary instead of
  /// stalling the tick loop). Fails with FailedPrecondition when nothing
  /// is in flight.
  Result<std::optional<Outcome>> TryCollect();

 private:
  void WorkerMain();
  Outcome HarvestLocked() TXALLO_REQUIRES(mu_);

  mutable common::Mutex mu_;
  common::CondVar cv_worker_;
  common::CondVar cv_owner_;
  bool stopping_ TXALLO_GUARDED_BY(mu_) = false;
  bool in_flight_ TXALLO_GUARDED_BY(mu_) = false;
  bool run_done_ TXALLO_GUARDED_BY(mu_) = false;
  // The task pointer is handed to the worker under mu_; while Run()
  // executes (in_flight_ && !run_done_) the owner never touches it, which
  // is what lets the worker call Run() unlocked on the raw pointee.
  std::unique_ptr<allocator::RebalanceTask> task_ TXALLO_GUARDED_BY(mu_);
  std::optional<Result<alloc::Allocation>> run_result_ TXALLO_GUARDED_BY(mu_);
  double run_seconds_ TXALLO_GUARDED_BY(mu_) = 0.0;
  // Spawned in the constructor, joined in the destructor.
  std::thread worker_;  // txallo-lint: allow(raw-thread)
};

}  // namespace txallo::engine

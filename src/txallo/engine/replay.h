// Deterministic record/replay for the parallel engine.
//
// A ReplayLog is the full deterministic trace of one
// engine::RunReallocatedStream run:
//
//   * the canonical per-tick, per-shard prepare order (PrepareEvent stream)
//     and the 2PC outcome stream (CommitEvent, (block, seq)-sorted, commits
//     and aborts alike), both keyed by ingest sequence tags so they survive
//     thread/producer-count changes;
//   * with the account-state backend on, the per-tick global Merkle root
//     (TickStateRoot stream) — the structural fingerprint replay verifies
//     bit-identically, which pins not just *which* transactions committed
//     but the exact balances/sequences they left behind;
//   * every installed allocation snapshot with the logical block it took
//     effect at (InstallEvent) — replay re-installs these instead of
//     running an allocator, which is why a trace recorded under
//     `background` replays identically under `sync` or no allocator at all;
//   * the per-step StepMetrics series and the run's wall-clock allocation
//     observations (alloc_seconds & co. are preserved verbatim on replay:
//     wall time is not reproducible, the logical schedule is);
//   * workload/config fingerprints (shard count, work model, ledger hash)
//     so a replay against the wrong input fails loudly instead of
//     diverging quietly.
//
// Record with PipelineConfig::record, replay with PipelineConfig::replay
// (or ReplayRecordedStream below). Serialization: a compact little-endian
// binary format (Save/LoadReplayLog) for fixtures and bug reports, plus a
// one-way CSV dump (DumpReplayLogCsv) for eyeballing a trace in a
// spreadsheet. `bench/timeline_series --record/--replay` and
// `examples/replay_debug` drive both ends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"

namespace txallo::engine {

/// An allocation snapshot publication: `allocation` took effect once the
/// engine's logical clock reached `block` (before the next block's ingest).
struct InstallEvent {
  uint64_t block = 0;
  alloc::Allocation allocation;
  bool operator==(const InstallEvent&) const = default;
};

/// The recorded trace of one pipelined engine run. Plain data — build one
/// by passing it as PipelineConfig::record.
class ReplayLog {
 public:
  struct Meta {
    uint32_t num_shards = 0;
    /// Work-model fingerprint (must match the replaying engine's exactly).
    double eta = 0.0;
    double capacity_per_block = 0.0;
    uint32_t cross_shard_commit_rounds = 0;
    /// Account-state backend fingerprint. Balance/work fields are
    /// normalized to zero when the backend is off, so two state-less
    /// traces always agree regardless of ignored config.
    bool state_enabled = false;
    int64_t state_initial_balance = 0;
    double state_migration_work = 0.0;
    /// Epoch cadence of the recorded run; replay re-uses it.
    uint32_t blocks_per_epoch = 0;
    /// Input-stream fingerprint (FingerprintLedger).
    uint64_t ledger_blocks = 0;
    uint64_t ledger_transactions = 0;
    uint64_t ledger_fingerprint = 0;
    /// Ingest mode of the recorded run (IngestMode as u8; 0 = closed loop);
    /// replay re-uses it. The open-loop driving parameters below are
    /// normalized to zero for closed-loop traces, so two closed-loop traces
    /// always agree regardless of ignored config. Physical-only knobs
    /// (cleaner on/off, chunk sizes) are deliberately absent — they cannot
    /// change any recorded byte.
    uint8_t ingest_mode = 0;
    double offered_load = 0.0;
    uint32_t dispatch_per_tick = 0;
    uint32_t fee_levels = 0;
    uint64_t fee_seed = 0;
    uint64_t mempool_capacity = 0;
    uint64_t mempool_staging_capacity = 0;
    uint32_t account_pending_limit = 0;
    uint32_t account_rate_limit = 0;
    uint64_t ttl_ticks = 0;
    /// mempool::AdmissionPolicy as u8.
    uint8_t admission_policy = 0;
    /// Workload scenario spec of the recorded run ("name:key=val,..." from
    /// the scenario registry; empty for programmatic ledgers). The ledger
    /// fingerprint is the binding check; this names the workload so a
    /// gauntlet trace can be replayed against the regenerated scenario, and
    /// a non-empty PipelineConfig::workload_spec must match on replay.
    std::string workload_spec;
    bool operator==(const Meta&) const = default;
  };

  Meta meta;
  /// Canonical (block, shard, lane-position) prepare stream.
  std::vector<PrepareEvent> prepares;
  /// Canonical (block, seq) commit stream (aborted outcomes included).
  std::vector<CommitEvent> commits;
  /// Per-tick global Merkle roots (empty unless the state backend was on).
  std::vector<TickStateRoot> state_roots;
  /// Installed snapshots in block order (the first is the initial mapping).
  std::vector<InstallEvent> installs;
  /// Per-step series, including the trailing drain step when one occurred.
  std::vector<StepMetrics> steps;

  // Wall-clock observations of the recorded run (preserved, not
  // re-measured, on replay).
  double alloc_seconds = 0.0;
  double alloc_wait_seconds = 0.0;
  double alloc_overlap_ratio = 0.0;
  uint64_t epochs = 0;
  uint64_t accounts_moved = 0;
};

/// Order- and content-sensitive hash of a ledger's transaction stream
/// (SHA-256 over block/account structure, truncated to 64 bits). Two
/// ledgers with the same fingerprint replay a trace identically.
uint64_t FingerprintLedger(const chain::Ledger& ledger);

/// First difference between two logs' *deterministic* content — meta,
/// prepare/commit/install/state-root streams, steps' logical fields and
/// accounts_moved — or "" when bit-identical. Wall-clock fields
/// (alloc_seconds & co.) are not compared.
std::string DescribeTraceDivergence(const ReplayLog& recorded,
                                    const ReplayLog& replayed);

/// Companion to DescribeTraceDivergence for prepare-order bugs: splits both
/// logs' prepare streams into per-shard lanes and prints, for every lane
/// that differs, a side-by-side diff anchored at the first divergent entry
/// (its tick, plus `context` entries either side). "" when every lane
/// matches. Unlike DescribeTraceDivergence — which stops at the first
/// global difference — this shows *where in each shard's order* two runs
/// came apart, which is the question when a scheduler change reorders
/// lanes.
std::string DescribeLaneDivergence(const ReplayLog& recorded,
                                   const ReplayLog& replayed,
                                   size_t context = 3);

/// Re-executes `log` on `engine` against `ledger`: same windows, recorded
/// installs at their recorded blocks, no allocator. `config` contributes
/// the execution shape only (ingest_producers; blocks_per_epoch /
/// allocator_mode / replay are ignored, record is honoured). The engine
/// must be fresh and configured compatibly (shard count, work model,
/// hash_route_unassigned). Returns the re-executed run's PipelineResult;
/// fails with Internal if any deterministic field diverged from the log.
Result<PipelineResult> ReplayRecordedStream(const chain::Ledger& ledger,
                                            const ReplayLog& log,
                                            ParallelEngine* engine,
                                            const PipelineConfig& config);

/// Writes `log` in the compact binary trace format (magic "TXTRACE4",
/// fixed-width little-endian fields). Version 2 added the account-state
/// meta fields, the CommitEvent aborted flag, the per-step
/// aborted/accounts_migrated counters and the state-root stream; version 3
/// added the ingest-mode / open-loop meta fields and the per-step open-loop
/// counters (offered/admitted/drops/depths/latency percentiles); version 4
/// added the workload_spec meta string (scenario engine). Older traces are
/// rejected as version drift, not silently upgraded — the recorded
/// semantics genuinely differ.
Status SaveReplayLog(const ReplayLog& log, const std::string& path);

/// Reads a trace written by SaveReplayLog. Corruption and version drift
/// surface as Corruption errors.
Result<ReplayLog> LoadReplayLog(const std::string& path);

/// One-way human-readable dump: one CSV row per meta field / install /
/// step / prepare / commit, tagged by a leading `kind` column.
Status DumpReplayLogCsv(const ReplayLog& log, const std::string& path);

}  // namespace txallo::engine

#include "txallo/common/flags.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

namespace txallo {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) !=
                                   0) {
      flags.values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags.values_[std::string(arg)] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str()) return default_value;
  return v;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) return default_value;
  return v;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes";
}

BenchScale ResolveBenchScale(const Flags& flags) {
  std::string scale = flags.GetString("scale", "");
  if (scale.empty()) {
    const char* env = std::getenv("TXALLO_SCALE");
    scale = env != nullptr ? env : "small";
  }
  BenchScale preset;
  if (scale == "large") {
    preset = {8'000'000, 1'200'000, 60, 10, 200, 100, 0};
  } else if (scale == "medium") {
    preset = {2'000'000, 320'000, 60, 10, 120, 40, 0};
  } else {
    preset = {400'000, 64'000, 60, 10, 60, 12, 0};
  }
  // Explicit flags override the preset; for the account count an explicit
  // --accounts beats TXALLO_ACCOUNTS beats the preset, so scripted sweeps
  // (1e5 → 1e7 accounts) can rescale every bench through one env var —
  // including google-benchmark binaries that don't parse our flags.
  preset.num_transactions = static_cast<uint64_t>(
      flags.GetInt("txs", static_cast<int64_t>(preset.num_transactions)));
  if (flags.Has("accounts")) {
    preset.num_accounts = static_cast<uint64_t>(
        flags.GetInt("accounts", static_cast<int64_t>(preset.num_accounts)));
  } else if (const char* env_accounts = std::getenv("TXALLO_ACCOUNTS")) {
    const int64_t v = std::strtoll(env_accounts, nullptr, 10);
    if (v > 0) preset.num_accounts = static_cast<uint64_t>(v);
  }
  preset.max_shards =
      static_cast<int>(flags.GetInt("max-shards", preset.max_shards));
  preset.shard_step =
      static_cast<int>(flags.GetInt("shard-step", preset.shard_step));
  preset.timeline_steps =
      static_cast<int>(flags.GetInt("steps", preset.timeline_steps));
  preset.blocks_per_step =
      static_cast<int>(flags.GetInt("blocks-per-step", preset.blocks_per_step));
  // Worker parallelism: an explicit --threads (even a nonsense negative,
  // clamped to auto) beats TXALLO_THREADS beats auto (0).
  int64_t threads = 0;
  if (flags.Has("threads")) {
    threads = flags.GetInt("threads", 0);
  } else if (const char* env_threads = std::getenv("TXALLO_THREADS")) {
    threads = std::strtoll(env_threads, nullptr, 10);
  }
  preset.num_threads = static_cast<int>(std::max<int64_t>(0, threads));
  return preset;
}

std::string ResolveAllocatorSpec(const Flags& flags,
                                 const std::string& default_spec) {
  if (flags.Has("allocator")) return flags.GetString("allocator", default_spec);
  if (const char* env = std::getenv("TXALLO_ALLOCATOR")) {
    if (env[0] != '\0') return env;
  }
  return default_spec;
}

std::string ResolveScenarioSpec(const Flags& flags,
                                const std::string& default_spec) {
  if (flags.Has("scenario")) return flags.GetString("scenario", default_spec);
  if (const char* env = std::getenv("TXALLO_SCENARIO")) {
    if (env[0] != '\0') return env;
  }
  return default_spec;
}

}  // namespace txallo

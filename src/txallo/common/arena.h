// Span arena: bump allocation of immutable spans inside one contiguous
// buffer, value-semantic and deterministic.
//
// The delta-log TransactionGraph stores each consolidated adjacency row as
// a (offset, length) reference into one arena instead of a per-node
// std::vector<Neighbor>. Two properties matter there:
//
//  * Copying the arena is a single buffer copy — snapshotting a graph with
//    ten thousand overlay rows costs one memcpy, not ten thousand heap
//    allocations. This is load-bearing for O(delta) BeginRebalance().
//  * Appends never move previously returned refs (offsets are stable), so
//    a row can be re-merged by appending the new version and abandoning
//    the old ref; `live_size` vs `size` tells the owner when to compact.
//
// Abandoned spans are garbage until the owner rebuilds (Compact-by-copy:
// re-append every live ref into a fresh arena, in the owner's own
// deterministic order). The arena itself never tracks liveness — callers
// hold the refs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace txallo::common {

template <typename T>
class Arena {
 public:
  /// One immutable span inside the arena. Value-type: refs stay valid
  /// across arena copies (offsets, not pointers).
  struct Ref {
    size_t offset = 0;
    uint32_t length = 0;
  };

  Arena() = default;

  /// Copies `values` into the arena; the ref stays valid until Clear().
  Ref Append(std::span<const T> values) {
    const Ref ref{data_.size(), static_cast<uint32_t>(values.size())};
    data_.insert(data_.end(), values.begin(), values.end());
    return ref;
  }

  std::span<const T> View(Ref ref) const {
    return {data_.data() + ref.offset, ref.length};
  }

  void Clear() { data_.clear(); }
  void reserve(size_t n) { data_.reserve(n); }

  /// Total elements appended (live + abandoned).
  size_t size() const { return data_.size(); }
  /// Bytes a copy of this arena duplicates.
  size_t MemoryBytes() const { return data_.size() * sizeof(T); }

 private:
  std::vector<T> data_;
};

}  // namespace txallo::common

// Tiny command-line flag parser for the bench/example binaries.
// Supports --name=value and --name value, plus environment-variable
// defaults so `for b in build/bench/*; do $b; done` runs unattended.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace txallo {

/// Parsed command line. Unknown flags are collected rather than rejected so
/// harness binaries can share one parser.
class Flags {
 public:
  /// Parses argv. Flags look like --key=value or --key value; a bare --key
  /// is stored with value "true".
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& key) const;

  /// String lookup with default.
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  /// Integer lookup with default; falls back to default on parse failure.
  int64_t GetInt(const std::string& key, int64_t default_value) const;

  /// Double lookup with default.
  double GetDouble(const std::string& key, double default_value) const;

  /// Bool lookup ("true"/"1"/"yes" are true).
  bool GetBool(const std::string& key, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Scale presets shared by the bench binaries. Controlled by the
/// TXALLO_SCALE environment variable: "small" (default, seconds per figure),
/// "medium" (tens of seconds), "large" (minutes, closest to paper scale).
struct BenchScale {
  uint64_t num_transactions;
  uint64_t num_accounts;
  int max_shards;        // Largest k in sweeps (paper: 60).
  int shard_step;        // Granularity of the k sweep.
  int timeline_steps;    // Fig. 9/10 number of time steps (paper: 200).
  int blocks_per_step;   // Fig. 9/10 blocks per step (paper: 300).
  // Engine worker parallelism (--threads or TXALLO_THREADS); 0 = let the
  // engine pick (hardware concurrency, clamped to the shard count). Not a
  // scale-preset property, so every preset starts at 0.
  int num_threads;
};

/// Resolves the scale preset from TXALLO_SCALE (or --scale).
BenchScale ResolveBenchScale(const Flags& flags);

/// Resolves the allocation-strategy spec shared by benches and examples:
/// --allocator beats the TXALLO_ALLOCATOR environment variable beats
/// `default_spec`. The value is an allocator-registry spec, e.g. "metis" or
/// "txallo-hybrid:global-every=4" (see allocator/registry.h).
std::string ResolveAllocatorSpec(const Flags& flags,
                                 const std::string& default_spec);

/// Resolves the workload-scenario spec shared by benches and examples:
/// --scenario beats the TXALLO_SCENARIO environment variable beats
/// `default_spec`. The value is a scenario-registry spec, e.g. "ethereum"
/// or "spike:peak-share=0.7" (see workload/scenario_registry.h).
std::string ResolveScenarioSpec(const Flags& flags,
                                const std::string& default_spec);

}  // namespace txallo

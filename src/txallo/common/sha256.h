// From-scratch SHA-256 (FIPS 180-4). Used for two things in this repository:
//  1. the hash-based baseline allocation (SHA256(address) mod k, as in
//     Chainspace / Monoxide, paper §II-C), and
//  2. the deterministic node iteration order of G-/A-TxAllo (paper §V-B:
//     "The hash value of the accounts can determine the order of node
//     sequence in real-world applications").
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace txallo {

/// A 256-bit digest.
using Sha256Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.Update(data, len);
///   Sha256Digest d = h.Finish();
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// Re-initializes the hasher to the empty-message state.
  void Reset();

  /// Absorbs `len` bytes at `data`.
  void Update(const void* data, size_t len);

  /// Finalizes and returns the digest. The hasher must be Reset() before
  /// further use.
  Sha256Digest Finish();

  /// One-shot convenience over a byte string.
  static Sha256Digest Hash(std::string_view data);

  /// First 8 bytes of SHA256(data) as a big-endian uint64. Convenient for
  /// "mod k" style bucket assignment and deterministic ordering keys.
  static uint64_t Hash64(std::string_view data);

  /// Hash64 over the little-endian byte representation of a uint64 key.
  static uint64_t Hash64(uint64_t key);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Lowercase hex encoding of a digest.
std::string DigestToHex(const Sha256Digest& digest);

}  // namespace txallo

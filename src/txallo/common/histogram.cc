#include "txallo/common/histogram.h"

#include <algorithm>
#include <cmath>

namespace txallo::common {

void Histogram::Record(uint64_t value) {
  if (value >= counts_.size()) {
    counts_.resize(static_cast<size_t>(value) + 1, 0);
  }
  ++counts_[static_cast<size_t>(value)];
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (size_t v = 0; v < other.counts_.size(); ++v) {
    counts_[v] += other.counts_[v];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

uint64_t Histogram::max() const {
  for (size_t v = counts_.size(); v > 0; --v) {
    if (counts_[v - 1] > 0) return v - 1;
  }
  return 0;
}

uint64_t Histogram::min() const {
  for (size_t v = 0; v < counts_.size(); ++v) {
    if (counts_[v] > 0) return v;
  }
  return 0;
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double percentile) const {
  if (count_ == 0) return 0;
  const double p = std::clamp(percentile, 0.0, 100.0);
  // Nearest rank: ceil(p/100 * count), at least 1 so p=0 returns min().
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t v = 0; v < counts_.size(); ++v) {
    cumulative += counts_[v];
    if (cumulative >= rank) return v;
  }
  return max();
}

uint64_t Histogram::CountAt(uint64_t value) const {
  if (value >= counts_.size()) return 0;
  return counts_[static_cast<size_t>(value)];
}

bool Histogram::operator==(const Histogram& other) const {
  if (count_ != other.count_ || sum_ != other.sum_) return false;
  const size_t shared = std::min(counts_.size(), other.counts_.size());
  for (size_t v = 0; v < shared; ++v) {
    if (counts_[v] != other.counts_[v]) return false;
  }
  // A longer vector may only carry a zero tail.
  const std::vector<uint64_t>& longer =
      counts_.size() >= other.counts_.size() ? counts_ : other.counts_;
  for (size_t v = shared; v < longer.size(); ++v) {
    if (longer[v] != 0) return false;
  }
  return true;
}

}  // namespace txallo::common

// Shared "name[:key=value,key=value...]" spec-string parsing, used by both
// the allocator registry (--allocator=) and the workload scenario registry
// (--scenario=). Unknown names, unknown keys and malformed values are the
// registries' business; this layer only guarantees the uniform grammar:
// clauses split on ',', each clause is key=value with a non-empty key, and
// duplicate keys are rejected (never last-one-wins).
#pragma once

#include <map>
#include <string>

#include "txallo/common/status.h"

namespace txallo::common {

/// A parsed "name[:key=value,...]" spec.
struct ParsedSpec {
  std::string name;
  std::map<std::string, std::string> options;
};

/// Parses "key=value,key=value" (empty string = no options). Fails on a
/// clause without '=', an empty key, or a duplicate key.
Result<std::map<std::string, std::string>> ParseOptionList(
    const std::string& spec);

/// Parses "name" or "name:key=value,...". The name must be non-empty.
Result<ParsedSpec> ParseSpec(const std::string& spec);

}  // namespace txallo::common

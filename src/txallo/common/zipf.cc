#include "txallo/common/zipf.h"

#include <algorithm>
#include <cmath>

namespace txallo {

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  if (n_ == 0) n_ = 1;
  cdf_.resize(n_);
  double total = 0.0;
  for (uint64_t i = 0; i < n_; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s_);
    cdf_[i] = total;
  }
  normalizer_ = total;
  for (uint64_t i = 0; i < n_; ++i) cdf_[i] /= total;
  cdf_[n_ - 1] = 1.0;  // Guard against FP rounding below 1.
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint64_t rank) const {
  if (rank >= n_) return 0.0;
  return (1.0 / std::pow(static_cast<double>(rank + 1), s_)) / normalizer_;
}

}  // namespace txallo

#include "txallo/common/math.h"

#include <cmath>

namespace txallo {

uint64_t EdgeSplitCount(uint64_t num_accounts) {
  if (num_accounts <= 1) return 1;  // Self-loop convention.
  return num_accounts * (num_accounts - 1) / 2;
}

double ClampThroughput(double uncapped_throughput, double workload,
                       double capacity) {
  if (workload <= capacity) return uncapped_throughput;
  if (workload <= 0.0) return uncapped_throughput;
  return (capacity / workload) * uncapped_throughput;
}

double AverageLatencyBlocks(double workload, double capacity) {
  if (capacity <= 0.0) return 1.0;
  double norm = workload / capacity;
  if (norm <= 1.0) return 1.0;
  // ∫_0^σ̂ ⌈x⌉ dx  =  m(m+1)/2 + (σ̂ - m)·⌈σ̂⌉   with m = ⌊σ̂⌋.
  double m = std::floor(norm);
  double ceil = std::ceil(norm);
  double integral = m * (m + 1.0) / 2.0 + (norm - m) * ceil;
  return integral / norm;
}

double WorstCaseLatencyBlocks(double workload, double capacity) {
  if (capacity <= 0.0 || workload <= 0.0) return 1.0;
  double t = std::ceil(workload / capacity);
  return t < 1.0 ? 1.0 : t;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double PopulationStdDev(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

}  // namespace txallo

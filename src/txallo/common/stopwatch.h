// Wall-clock stopwatch used by the running-time experiments (paper Figs. 8
// and 10).
#pragma once

#include <chrono>
#include <cstdint>

namespace txallo {

/// Monotonic stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double ElapsedSeconds() const;

  /// Elapsed microseconds.
  int64_t ElapsedMicros() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace txallo

// Minimal CSV reader/writer used by the dataset import/export path
// (Ethereum-ETL style extracts) and by the bench harness to emit figure
// series for plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "txallo/common/status.h"

namespace txallo {

/// Splits one CSV line into fields. Handles double-quoted fields with
/// embedded commas and doubled quotes; does not handle embedded newlines
/// (the datasets this library reads/writes never contain them).
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Quotes a field if it contains a comma, quote, or leading/trailing space.
std::string EscapeCsvField(const std::string& field);

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check ok() before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Writes one row.
  Status WriteRow(const std::vector<std::string>& fields);

  Status Close();

 private:
  void* file_;  // FILE*, kept opaque to avoid <cstdio> in the header.
};

/// Reads a whole CSV file into rows of fields.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace txallo

// Exact integer-count histogram for logical-time latency metrics.
//
// The open-loop pipeline measures end-to-end latency in *ticks* (logical
// blocks), so the value domain is small non-negative integers bounded by
// the run length. An exact dense count vector therefore costs O(max
// latency) memory, makes every percentile exact (no bucketing error), and —
// the property the determinism contract needs — makes two histograms built
// from the same multiset of samples bit-identical regardless of the order
// the samples arrived in. Percentiles use the nearest-rank definition, so
// p50/p99/p99.9 are actual observed values, never interpolations.
#pragma once

#include <cstdint>
#include <vector>

namespace txallo::common {

class Histogram {
 public:
  /// Adds one sample.
  void Record(uint64_t value);

  /// Adds every sample of `other`.
  void Merge(const Histogram& other);

  /// Total samples recorded.
  uint64_t count() const { return count_; }

  /// Largest recorded value (0 when empty).
  uint64_t max() const;

  /// Smallest recorded value (0 when empty).
  uint64_t min() const;

  /// Arithmetic mean (0.0 when empty).
  double Mean() const;

  /// Nearest-rank percentile: the smallest recorded value v such that at
  /// least ceil(p/100 * count) samples are <= v. `percentile` is clamped to
  /// [0, 100]; 0 returns min(), 100 returns max(). 0 when empty.
  uint64_t Percentile(double percentile) const;

  /// Samples with value exactly `value`.
  uint64_t CountAt(uint64_t value) const;

  bool empty() const { return count_ == 0; }

  /// Content equality over the sample multiset (dense-vector tails of
  /// zeros do not participate).
  bool operator==(const Histogram& other) const;

 private:
  // counts_[v] = number of samples with value v; trailing zeros trimmed
  // lazily (only growth happens in Record).
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace txallo::common

// Deterministic open-addressing hash map over a dense entry array.
//
// std::unordered_map on the allocator hot path costs one heap allocation
// per node and an implementation-defined (libstdc++- and seed-dependent)
// iteration order — the latter is exactly what the determinism lint's
// `unordered-iter` rule exists to catch. FlatMap replaces it with
//
//  * a dense `std::vector<Entry>` holding the entries in **insertion
//    order** (iteration is deterministic by construction: it depends only
//    on the call sequence, never on hash values or load factors), and
//  * a power-of-two linear-probing slot index (load factor <= 1/2, cached
//    per-entry hashes) that makes find/insert O(1) with contiguous probes.
//
// Copying a FlatMap is three vector copies (memcpy for trivially copyable
// K/V) — this is what keeps TransactionGraph's O(delta) snapshot cheap.
// Erase is swap-with-last on the dense array plus backward-shift deletion
// in the slot index, so the container never tombstones; note that erase
// therefore *permutes* iteration order deterministically (the last entry
// takes the erased slot), which every user of this map tolerates by
// construction (they either never erase, or never iterate, or sort).
//
// The surface mimics std::unordered_map (find/emplace/erase/operator[]/
// count/begin/end) so swapping a hot-path map is a type change, not a
// rewrite.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace txallo::common {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatMap {
 public:
  struct Entry {
    Key first;
    Value second;
  };
  using iterator = Entry*;
  using const_iterator = const Entry*;

  FlatMap() = default;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  iterator begin() { return entries_.data(); }
  iterator end() { return entries_.data() + entries_.size(); }
  const_iterator begin() const { return entries_.data(); }
  const_iterator end() const { return entries_.data() + entries_.size(); }

  void clear() {
    entries_.clear();
    hashes_.clear();
    slots_.clear();
  }

  /// Pre-sizes for `n` entries (one rehash now instead of log n later).
  void reserve(size_t n) {
    entries_.reserve(n);
    hashes_.reserve(n);
    if (n * 2 > slots_.size()) Rehash(SlotCountFor(n));
  }

  const_iterator find(const Key& key) const {
    const size_t slot = FindSlot(key, Hash{}(key));
    if (slot == kNoSlot || slots_[slot] == kEmpty) return end();
    return &entries_[slots_[slot]];
  }
  iterator find(const Key& key) {
    const size_t slot = FindSlot(key, Hash{}(key));
    if (slot == kNoSlot || slots_[slot] == kEmpty) return end();
    return &entries_[slots_[slot]];
  }

  size_t count(const Key& key) const { return find(key) == end() ? 0 : 1; }
  bool contains(const Key& key) const { return find(key) != end(); }

  /// Inserts (key, value) when absent; returns {entry, inserted}.
  template <typename K, typename V>
  std::pair<iterator, bool> emplace(K&& key, V&& value) {
    GrowIfNeeded();
    const size_t hash = Hash{}(key);
    const size_t slot = FindSlot(key, hash);
    if (slots_[slot] != kEmpty) return {&entries_[slots_[slot]], false};
    slots_[slot] = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{Key(std::forward<K>(key)),
                             Value(std::forward<V>(value))});
    hashes_.push_back(hash);
    return {&entries_.back(), true};
  }

  Value& operator[](const Key& key) {
    return emplace(key, Value{}).first->second;
  }

  /// Erases by key; returns the number of entries removed (0 or 1).
  size_t erase(const Key& key) {
    const size_t slot = FindSlot(key, Hash{}(key));
    if (slot == kNoSlot || slots_[slot] == kEmpty) return 0;
    EraseSlot(slot);
    return 1;
  }

  /// Erases by iterator (must point into this map).
  void erase(const_iterator it) {
    assert(it >= begin() && it < end());
    const size_t index = static_cast<size_t>(it - begin());
    const size_t slot = FindSlot(entries_[index].first, hashes_[index]);
    assert(slot != kNoSlot && slots_[slot] != kEmpty);
    EraseSlot(slot);
  }

  /// Bytes a copy of this map duplicates (entry array + hash cache + slot
  /// index).
  size_t MemoryBytes() const {
    return entries_.size() * sizeof(Entry) +
           hashes_.size() * sizeof(size_t) +
           slots_.size() * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;
  static constexpr size_t kNoSlot = SIZE_MAX;

  static size_t SlotCountFor(size_t n) {
    size_t cap = 16;
    while (cap < n * 2) cap *= 2;
    return cap;
  }

  // The slot holding `key`, or the empty slot where it would insert.
  // kNoSlot when the table has no slots yet.
  size_t FindSlot(const Key& key, size_t hash) const {
    if (slots_.empty()) return kNoSlot;
    const size_t mask = slots_.size() - 1;
    size_t slot = hash & mask;
    while (true) {
      const uint32_t index = slots_[slot];
      if (index == kEmpty) return slot;
      if (hashes_[index] == hash && entries_[index].first == key) return slot;
      slot = (slot + 1) & mask;
    }
  }

  void GrowIfNeeded() {
    if ((entries_.size() + 1) * 2 > slots_.size()) {
      Rehash(SlotCountFor(entries_.size() + 1));
    }
  }

  void Rehash(size_t slot_count) {
    slots_.assign(slot_count, kEmpty);
    const size_t mask = slot_count - 1;
    for (size_t i = 0; i < entries_.size(); ++i) {
      size_t slot = hashes_[i] & mask;
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask;
      slots_[slot] = static_cast<uint32_t>(i);
    }
  }

  void EraseSlot(size_t slot) {
    const size_t index = slots_[slot];
    const size_t last = entries_.size() - 1;
    if (index != last) {
      // Swap-remove on the dense array; repoint the moved entry's slot.
      size_t moved_slot = FindSlot(entries_[last].first, hashes_[last]);
      entries_[index] = std::move(entries_[last]);
      hashes_[index] = hashes_[last];
      slots_[moved_slot] = static_cast<uint32_t>(index);
    }
    entries_.pop_back();
    hashes_.pop_back();

    // Backward-shift deletion keeps probe chains contiguous without
    // tombstones: pull every displaced follower toward the hole.
    const size_t mask = slots_.size() - 1;
    size_t hole = slot;
    size_t pos = slot;
    while (true) {
      pos = (pos + 1) & mask;
      const uint32_t follower = slots_[pos];
      if (follower == kEmpty) break;
      const size_t ideal = hashes_[follower] & mask;
      if (((pos - ideal) & mask) >= ((pos - hole) & mask)) {
        slots_[hole] = follower;
        hole = pos;
      }
    }
    slots_[hole] = kEmpty;
  }

  std::vector<Entry> entries_;  // Insertion order; iteration order.
  std::vector<size_t> hashes_;  // Cached Hash{}(entries_[i].first).
  std::vector<uint32_t> slots_;  // Power-of-two linear-probing index.
};

}  // namespace txallo::common

// Shared closed-form pieces of the paper's analytic performance model
// (§III-B): the capacity-clamped shard throughput (Eq. 3/7), the average
// confirmation latency integral (Eq. 4), the edge-splitting combination
// count π(Tx), and the workload standard deviation ρ (Eq. 1).
#pragma once

#include <cstdint>
#include <vector>

namespace txallo {

/// π(Tx) = C(|A_Tx|, 2): the number of one-to-one edges a transaction
/// touching `num_accounts` distinct accounts expands to (Definition 2).
/// By convention a single-account transaction (|A_Tx| = 1, a self-transfer)
/// maps to one self-loop edge, so π(1) = 1.
uint64_t EdgeSplitCount(uint64_t num_accounts);

/// Capacity-clamped shard throughput, Eq. (3)/(7):
///   Λ_i = Λ̂_i            if σ_i <= λ
///   Λ_i = (λ / σ_i) Λ̂_i  otherwise.
/// Precondition: capacity λ > 0 whenever workload > capacity.
double ClampThroughput(double uncapped_throughput, double workload,
                       double capacity);

/// Average confirmation latency of a shard in block units, Eq. (4), as the
/// exact integral  ζ(σ̂) = (∫_0^σ̂ ⌈x⌉ dx) / σ̂  with σ̂ = workload/capacity.
/// Continuous everywhere (the paper's printed closed form has a removable
/// discontinuity at integer σ̂; the integral does not). ζ(σ̂) = 1 for
/// σ̂ <= 1, and an empty shard (σ̂ = 0) is defined to have latency 1 — a
/// transaction can never commit in less than one block.
double AverageLatencyBlocks(double workload, double capacity);

/// Worst-case confirmation latency of a shard in block units: the number of
/// time units needed to drain its workload, T = ⌈σ_i / λ⌉ (at least 1).
double WorstCaseLatencyBlocks(double workload, double capacity);

/// Population standard deviation (Eq. 1), used for the workload balance
/// metric ρ. Returns 0 for empty input.
double PopulationStdDev(const std::vector<double>& values);

/// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& values);

}  // namespace txallo

#include "txallo/common/rng.h"

#include <cmath>

namespace txallo {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling over the top bits to avoid modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextGeometric(double p) {
  if (p >= 1.0) return 0;
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

uint64_t Rng::NextPoisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    const double limit = std::exp(-lambda);
    uint64_t count = 0;
    double product = NextDouble();
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation for large means; clamp at zero.
  double draw = lambda + std::sqrt(lambda) * NextGaussian();
  if (draw < 0.0) return 0;
  return static_cast<uint64_t>(std::llround(draw));
}

}  // namespace txallo

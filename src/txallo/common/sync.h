// Annotated synchronization primitives: the ONLY place in src/txallo/ that
// may touch <mutex>/<condition_variable> directly (the determinism lint's
// `raw-sync` rule enforces this; see tools/lint/determinism_lint.py).
//
// Why wrappers instead of std types: Clang's thread-safety analysis
// (-Wthread-safety) proves lock discipline at compile time — every access
// to a TXALLO_GUARDED_BY(mu) member must happen with `mu` held, functions
// declare the locks they TXALLO_REQUIRES, and RAII scopes are checked for
// balance. libstdc++'s std::mutex carries none of the capability
// attributes, so the analysis is silent on raw std primitives; these
// wrappers are a zero-cost (plain inline forwarding) veneer that makes the
// whole engine's locking statically checkable. On non-Clang compilers the
// attribute macros expand to nothing and the wrappers compile to exactly
// the std types they hold.
//
// Style notes (absl-inspired, but self-contained):
//   * `Mutex` is a capability. Prefer the scoped `MutexLock`; use explicit
//     Lock()/Unlock() only for protocols the RAII shape cannot express
//     (e.g. a worker loop that unlocks around its work section).
//   * `CondVar::Wait(mu)` REQUIRES the mutex and must sit in a `while`
//     loop re-checking its predicate — there is deliberately no
//     predicate-lambda overload, because a capture-everything lambda hides
//     the guarded reads from the analysis.
//   * Annotate every guarded member with TXALLO_GUARDED_BY and every
//     assumes-lock-held helper with TXALLO_REQUIRES. State protected by a
//     protocol other than a lock (e.g. the engine's tick-barrier lane
//     ownership) stays unannotated, with the protocol documented at the
//     declaration.
#pragma once

#include <condition_variable>  // txallo-lint: allow(raw-sync)
#include <mutex>               // txallo-lint: allow(raw-sync)

// ---------------------------------------------------------------------------
// Thread-safety annotation macros. Clang-only; no-ops elsewhere (GCC parses
// but does not check these attributes, so they are compiled out entirely to
// keep -Wattributes quiet and the expansion obvious).
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define TXALLO_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TXALLO_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define TXALLO_CAPABILITY(x) TXALLO_THREAD_ANNOTATION_(capability(x))
/// Declares an RAII type that acquires in its ctor / releases in its dtor.
#define TXALLO_SCOPED_CAPABILITY TXALLO_THREAD_ANNOTATION_(scoped_lockable)
/// Member may only be read/written with the named mutex held.
#define TXALLO_GUARDED_BY(x) TXALLO_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee may only be dereferenced with the named mutex held.
#define TXALLO_PT_GUARDED_BY(x) TXALLO_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function acquires the capability (held on return, not on entry).
#define TXALLO_ACQUIRE(...) \
  TXALLO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on return).
#define TXALLO_RELEASE(...) \
  TXALLO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the first argument
/// (e.g. TXALLO_TRY_ACQUIRE(true) on a bool TryLock()).
#define TXALLO_TRY_ACQUIRE(...) \
  TXALLO_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the capability for the duration of the call.
#define TXALLO_REQUIRES(...) \
  TXALLO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (would deadlock or double-acquire).
#define TXALLO_EXCLUDES(...) \
  TXALLO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define TXALLO_RETURN_CAPABILITY(x) \
  TXALLO_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch: function body is exempt from the analysis. Use only with a
/// comment explaining which protocol replaces the lock.
#define TXALLO_NO_THREAD_SAFETY_ANALYSIS \
  TXALLO_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace txallo::common {

/// A std::mutex with the `capability` attribute so Clang can check lock
/// discipline. Non-recursive, non-timed — exactly the subset the engine
/// uses.
class TXALLO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TXALLO_ACQUIRE() { mu_.lock(); }
  void Unlock() TXALLO_RELEASE() { mu_.unlock(); }
  bool TryLock() TXALLO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // txallo-lint: allow(raw-sync)
};

/// RAII lock scope over a Mutex; the annotated replacement for
/// std::lock_guard / std::unique_lock. Locks for its whole lifetime — the
/// unlock/relock dance around a callback is written with explicit
/// Mutex::Lock()/Unlock() instead, which the analysis also checks.
class TXALLO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TXALLO_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() TXALLO_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Wait() releases the mutex while
/// parked and reacquires before returning; as with std::condition_variable
/// it may wake spuriously, so every Wait sits in a `while (!predicate)`
/// loop. All concurrent waiters of one CondVar must pass the same Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) TXALLO_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait, then
    // release the unique_lock wrapper without unlocking — the caller still
    // holds `mu` exactly as the annotation promises.
    std::unique_lock<std::mutex> lock(  // txallo-lint: allow(raw-sync)
        mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // txallo-lint: allow(raw-sync)
};

}  // namespace txallo::common

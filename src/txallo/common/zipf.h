// Bounded Zipf(s) sampler over ranks {0, ..., n-1}.
//
// The Ethereum transaction pattern the paper evaluates on is long-tail
// distributed (paper Fig. 1: "Most accounts are not active and only have very
// few transaction records"). The workload generator draws account activity
// ranks from this distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/common/rng.h"

namespace txallo {

/// Zipf sampler using the inverse-CDF over a precomputed prefix table for
/// the head and a searchable tail, built once per (n, s).
///
/// P(rank = i) ∝ 1 / (i + 1)^s for i in [0, n).
class ZipfSampler {
 public:
  /// Builds the sampler. Precondition: n >= 1, s >= 0. s = 0 degenerates to
  /// the uniform distribution.
  ZipfSampler(uint64_t n, double s);

  /// Draws a rank in [0, n). Rank 0 is the most probable.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Probability mass of a given rank.
  double Pmf(uint64_t rank) const;

 private:
  uint64_t n_;
  double s_;
  double normalizer_;
  // Cumulative probabilities; binary-searched on each draw. For the sizes
  // used here (<= tens of millions) this is a single cache-cold binary
  // search, measured in the micro-kernel bench.
  std::vector<double> cdf_;
};

}  // namespace txallo

#include "txallo/common/spec.h"

#include <utility>

namespace txallo::common {

Result<std::map<std::string, std::string>> ParseOptionList(
    const std::string& spec) {
  std::map<std::string, std::string> options;
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed option clause '" + clause +
                                     "' (expected key=value)");
    }
    const std::string key = clause.substr(0, eq);
    if (options.count(key) > 0) {
      return Status::InvalidArgument("duplicate option key '" + key + "'");
    }
    options[key] = clause.substr(eq + 1);
  }
  return options;
}

Result<ParsedSpec> ParseSpec(const std::string& spec) {
  ParsedSpec parsed;
  const size_t colon = spec.find(':');
  parsed.name = spec.substr(0, colon);
  if (parsed.name.empty()) {
    return Status::InvalidArgument("empty name in spec '" + spec + "'");
  }
  if (colon != std::string::npos) {
    Result<std::map<std::string, std::string>> options =
        ParseOptionList(spec.substr(colon + 1));
    if (!options.ok()) return options.status();
    parsed.options = std::move(options.value());
  }
  return parsed;
}

}  // namespace txallo::common

// Deterministic pseudo-random number generation (splitmix64 seeding +
// xoshiro256** state advance). Every stochastic component in this repository
// (workload generation, simulator jitter) draws from this generator so that a
// given seed reproduces a bit-identical experiment on any platform —
// std::mt19937 distributions are not portable across standard libraries.
#pragma once

#include <cstdint>

namespace txallo {

/// splitmix64: the recommended seeder for xoshiro-family generators.
/// Also usable standalone as a strong 64-bit mixing function.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** PRNG with utility draws for the distributions the library
/// needs. Deterministic for a given seed.
class Rng {
 public:
  /// Seeds the four 64-bit state words via splitmix64.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit draw.
  uint64_t NextUint64();

  /// Uniform in [0, bound). Precondition: bound > 0. Uses Lemire-style
  /// rejection so the result is unbiased.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p of true.
  bool NextBernoulli(double p);

  /// Geometric number of failures before first success, success prob p.
  /// Precondition: 0 < p <= 1.
  uint64_t NextGeometric(double p);

  /// Standard normal via Box-Muller (deterministic pairing).
  double NextGaussian();

  /// Poisson draw with mean `lambda` (Knuth for small lambda, normal
  /// approximation above 64 to bound the loop).
  uint64_t NextPoisson(double lambda);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace txallo

#include "txallo/common/csv.h"

#include <cstdio>
#include <fstream>

namespace txallo {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(cur));
        cur.clear();
      } else if (c == '\r') {
        // Swallow CR from CRLF files.
      } else {
        cur.push_back(c);
      }
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string EscapeCsvField(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n') {
      needs_quotes = true;
      break;
    }
  }
  if (!field.empty() && (field.front() == ' ' || field.back() == ' ')) {
    needs_quotes = true;
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(static_cast<FILE*>(file_));
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (file_ == nullptr) return Status::IOError("CSV writer is not open");
  FILE* f = static_cast<FILE*>(file_);
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) std::fputc(',', f);
    std::string escaped = EscapeCsvField(fields[i]);
    std::fwrite(escaped.data(), 1, escaped.size(), f);
  }
  std::fputc('\n', f);
  return Status::OK();
}

Status CsvWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(static_cast<FILE*>(file_));
  file_ = nullptr;
  if (rc != 0) return Status::IOError("fclose failed");
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open CSV file: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(SplitCsvLine(line));
  }
  return rows;
}

}  // namespace txallo

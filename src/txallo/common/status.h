// Status / Result error handling, following the RocksDB/Arrow idiom: library
// code never throws across the public API boundary; fallible operations
// return a Status (or a Result<T> that carries either a value or a Status).
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace txallo {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight status object. Ok statuses are zero-allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace txallo

/// Propagates a non-OK Status from an expression, RocksDB style.
#define TXALLO_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::txallo::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

// Allocation persistence. Miners run the allocator periodically and must
// carry the account-shard mapping across restarts (and ship it to tooling);
// the paper's determinism argument (§IV-A) makes the mapping itself the
// consensus-free artifact worth persisting.
//
// Format: CSV with a header row ("account,shard") preceded by one metadata
// row "#txallo-allocation,<num_shards>,<num_accounts>". Addresses are
// resolved through an AccountRegistry so files survive id renumbering.
#pragma once

#include <string>

#include "txallo/alloc/allocation.h"
#include "txallo/chain/account.h"
#include "txallo/common/status.h"

namespace txallo::alloc {

/// Writes `allocation` to `path`, one row per account with its address.
Status SaveAllocationCsv(const Allocation& allocation,
                         const chain::AccountRegistry& registry,
                         const std::string& path);

/// Reads a mapping written by SaveAllocationCsv. Unknown addresses are
/// interned into `registry`; the returned allocation covers max(registry
/// size after interning, file accounts).
Result<Allocation> LoadAllocationCsv(chain::AccountRegistry* registry,
                                     const std::string& path);

}  // namespace txallo::alloc

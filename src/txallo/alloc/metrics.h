// Blockchain-level evaluation metrics (paper §III-B), computed from the
// actual transaction set and an account-shard mapping. This is the honest
// "what would the sharded chain experience" layer the benches report:
//   γ  cross-shard transaction ratio        |T_C| / |T|
//   σ_i per-shard workload                  |T_I_i| + η·|T_C_i|
//   ρ  workload balance                     population stddev of σ_i
//   Λ  capacity-clamped system throughput   Eq. (2)/(3)
//   ζ  average confirmation latency         Eq. (4)
// plus the worst-case latency ⌈σ_max/λ⌉ used in Fig. 7.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/params.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"

namespace txallo::alloc {

/// Full evaluation of one allocation against one transaction set.
struct EvaluationReport {
  uint64_t total_transactions = 0;
  uint64_t cross_shard_transactions = 0;
  uint32_t num_shards = 0;

  /// γ = |T_C| / |T|.
  double cross_shard_ratio = 0.0;
  /// Mean of µ(Tx) (shards touched per transaction).
  double mean_shards_per_tx = 0.0;

  /// σ_i per shard.
  std::vector<double> shard_workloads;
  /// σ_i / λ per shard (Fig. 4's y-axis).
  std::vector<double> normalized_workloads;
  /// ρ (population stddev of σ_i).
  double workload_stddev = 0.0;
  /// ρ normalized by λ — scale-free balance number used when comparing
  /// datasets of different sizes.
  double normalized_workload_stddev = 0.0;

  /// Λ (Eq. 2, capacity-clamped per shard by Eq. 3).
  double throughput = 0.0;
  /// Λ / λ — "how many times an unsharded chain" (Fig. 5's y-axis).
  double normalized_throughput = 0.0;

  /// Mean over shards of ζ_i (Eq. 4), in block units (Fig. 6).
  double avg_latency_blocks = 0.0;
  /// max_i ⌈σ_i / λ⌉, in block units (Fig. 7).
  double worst_latency_blocks = 0.0;
};

/// Evaluates `allocation` over every transaction of `ledger`.
/// Fails if any involved account is unassigned or parameters are invalid.
Result<EvaluationReport> EvaluateAllocation(const chain::Ledger& ledger,
                                            const Allocation& allocation,
                                            const AllocationParams& params);

/// Same, over an explicit transaction list.
Result<EvaluationReport> EvaluateAllocation(
    const std::vector<chain::Transaction>& transactions,
    const Allocation& allocation, const AllocationParams& params);

/// µ(Tx): number of distinct shards maintaining the transaction's accounts.
/// Unassigned accounts make the result 0 (invalid).
uint32_t ShardsTouched(const chain::Transaction& tx,
                       const Allocation& allocation);

}  // namespace txallo::alloc

#include "txallo/alloc/metrics.h"

#include <algorithm>

#include "txallo/common/math.h"

namespace txallo::alloc {

uint32_t ShardsTouched(const chain::Transaction& tx,
                       const Allocation& allocation) {
  // Transactions touch at most a handful of shards; a small stack-local
  // array beats any set container here. Beyond its capacity (transactions
  // spanning >16 shards — vanishingly rare), additional shards are assumed
  // distinct, which can only overcount µ for such outliers.
  constexpr size_t kCapacity = 16;
  ShardId seen[kCapacity];
  size_t n = 0;
  for (chain::AccountId a : tx.accounts()) {
    ShardId s = allocation.shard_of(a);
    if (s == kUnassignedShard) return 0;
    bool dup = false;
    const size_t scan = n < kCapacity ? n : kCapacity;
    for (size_t i = 0; i < scan; ++i) {
      if (seen[i] == s) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      if (n < kCapacity) {
        seen[n] = s;
      }
      ++n;
    }
  }
  return static_cast<uint32_t>(n);
}

namespace {

class Accumulator {
 public:
  Accumulator(const Allocation& allocation, const AllocationParams& params)
      : allocation_(allocation),
        intra_(params.num_shards, 0.0),
        cross_(params.num_shards, 0.0),
        uncapped_(params.num_shards, 0.0) {}

  /// Returns false on the first unassigned account (records the offender).
  bool Add(const chain::Transaction& tx) {
    ++total_;
    shards_touched_.clear();
    for (chain::AccountId a : tx.accounts()) {
      ShardId s = allocation_.shard_of(a);
      if (s == kUnassignedShard) {
        bad_account_ = a;
        return false;
      }
      if (std::find(shards_touched_.begin(), shards_touched_.end(), s) ==
          shards_touched_.end()) {
        shards_touched_.push_back(s);
      }
    }
    const uint32_t mu = static_cast<uint32_t>(shards_touched_.size());
    mu_sum_ += mu;
    if (mu <= 1) {
      intra_[shards_touched_[0]] += 1.0;
      uncapped_[shards_touched_[0]] += 1.0;
    } else {
      ++cross_count_;
      const double share = 1.0 / static_cast<double>(mu);
      for (ShardId s : shards_touched_) {
        cross_[s] += 1.0;
        uncapped_[s] += share;
      }
    }
    return true;
  }

  EvaluationReport Finish(const AllocationParams& params) const {
    EvaluationReport report;
    report.total_transactions = total_;
    report.cross_shard_transactions = cross_count_;
    report.num_shards = params.num_shards;
    if (total_ > 0) {
      report.cross_shard_ratio =
          static_cast<double>(cross_count_) / static_cast<double>(total_);
      report.mean_shards_per_tx = mu_sum_ / static_cast<double>(total_);
    }
    const double lambda = params.capacity;
    report.shard_workloads.resize(params.num_shards);
    report.normalized_workloads.resize(params.num_shards);
    double worst = 1.0;
    double latency_sum = 0.0;
    double throughput = 0.0;
    for (uint32_t s = 0; s < params.num_shards; ++s) {
      const double sigma = intra_[s] + params.eta * cross_[s];
      report.shard_workloads[s] = sigma;
      report.normalized_workloads[s] = lambda > 0.0 ? sigma / lambda : 0.0;
      throughput += ClampThroughput(uncapped_[s], sigma, lambda);
      latency_sum += AverageLatencyBlocks(sigma, lambda);
      worst = std::max(worst, WorstCaseLatencyBlocks(sigma, lambda));
    }
    report.workload_stddev = PopulationStdDev(report.shard_workloads);
    report.normalized_workload_stddev =
        lambda > 0.0 ? report.workload_stddev / lambda : 0.0;
    report.throughput = throughput;
    report.normalized_throughput = lambda > 0.0 ? throughput / lambda : 0.0;
    report.avg_latency_blocks =
        latency_sum / static_cast<double>(params.num_shards);
    report.worst_latency_blocks = worst;
    return report;
  }

  chain::AccountId bad_account() const { return bad_account_; }

 private:
  const Allocation& allocation_;
  std::vector<double> intra_;
  std::vector<double> cross_;
  std::vector<double> uncapped_;
  std::vector<ShardId> shards_touched_;
  uint64_t total_ = 0;
  uint64_t cross_count_ = 0;
  double mu_sum_ = 0.0;
  chain::AccountId bad_account_ = chain::kInvalidAccount;
};

}  // namespace

Result<EvaluationReport> EvaluateAllocation(const chain::Ledger& ledger,
                                            const Allocation& allocation,
                                            const AllocationParams& params) {
  TXALLO_RETURN_NOT_OK(params.Validate());
  Accumulator acc(allocation, params);
  bool ok = true;
  ledger.ForEachTransaction([&](const chain::Transaction& tx) {
    if (ok) ok = acc.Add(tx);
  });
  if (!ok) {
    return Status::FailedPrecondition(
        "transaction references unassigned account " +
        std::to_string(acc.bad_account()));
  }
  return acc.Finish(params);
}

Result<EvaluationReport> EvaluateAllocation(
    const std::vector<chain::Transaction>& transactions,
    const Allocation& allocation, const AllocationParams& params) {
  TXALLO_RETURN_NOT_OK(params.Validate());
  Accumulator acc(allocation, params);
  for (const chain::Transaction& tx : transactions) {
    if (!acc.Add(tx)) {
      return Status::FailedPrecondition(
          "transaction references unassigned account " +
          std::to_string(acc.bad_account()));
    }
  }
  return acc.Finish(params);
}

}  // namespace txallo::alloc

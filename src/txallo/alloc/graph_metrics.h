// Graph-level performance model (paper §III-C): the per-community workload
// σ_i (Eq. 5), the capacity-sufficient throughput Λ̂_i, the weight-based
// cross-community ratio γ, and the capacity-clamped total throughput Λ.
// This is the state the G-/A-TxAllo optimizers maintain incrementally; the
// from-scratch computation here doubles as the property-test oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/params.h"
#include "txallo/graph/graph.h"

namespace txallo::alloc {

/// Per-community σ_i and Λ̂_i plus the model parameters; everything the
/// clamped throughput objective Λ = Σ_i Λ_i(σ_i, Λ̂_i, λ) needs.
struct CommunityState {
  std::vector<double> sigma;       // σ_i (Eq. 5)
  std::vector<double> lambda_hat;  // Λ̂_i (§III-C)
  double eta = 2.0;
  double capacity = 0.0;  // λ

  uint32_t num_communities() const {
    return static_cast<uint32_t>(sigma.size());
  }

  /// Λ_i with the capacity clamp (Eq. 3/7).
  double ThroughputOf(uint32_t i) const;

  /// Λ = Σ_i Λ_i.
  double TotalThroughput() const;
};

/// Computes CommunityState from scratch for `allocation` over `graph`.
/// Unassigned nodes contribute nothing themselves; edges from an assigned
/// node to an unassigned node count as cross-shard (η) for the assigned
/// side, exactly how Algorithm 1's initialization phase treats the
/// not-yet-absorbed small communities.
CommunityState ComputeCommunityState(const graph::TransactionGraph& graph,
                                     const Allocation& allocation,
                                     const AllocationParams& params);

/// Weight-based cross-community ratio: inter-community edge weight over
/// total pairwise edge weight (self-loops are intra by definition and
/// included in the denominator).
double GraphCrossWeightRatio(const graph::TransactionGraph& graph,
                             const Allocation& allocation);

}  // namespace txallo::alloc

#include "txallo/alloc/serialize.h"

#include <cstdlib>

#include "txallo/common/csv.h"

namespace txallo::alloc {

Status SaveAllocationCsv(const Allocation& allocation,
                         const chain::AccountRegistry& registry,
                         const std::string& path) {
  if (allocation.num_accounts() > registry.size()) {
    return Status::InvalidArgument(
        "allocation covers more accounts than the registry knows");
  }
  CsvWriter writer(path);
  if (!writer.ok()) return Status::IOError("cannot open for write: " + path);
  TXALLO_RETURN_NOT_OK(writer.WriteRow(
      {"#txallo-allocation", std::to_string(allocation.num_shards()),
       std::to_string(allocation.num_accounts())}));
  TXALLO_RETURN_NOT_OK(writer.WriteRow({"account", "shard"}));
  for (size_t a = 0; a < allocation.num_accounts(); ++a) {
    const auto id = static_cast<chain::AccountId>(a);
    if (!allocation.IsAssigned(id)) continue;  // Sparse mappings allowed.
    TXALLO_RETURN_NOT_OK(
        writer.WriteRow({registry.AddressOf(id),
                         std::to_string(allocation.shard_of(id))}));
  }
  return writer.Close();
}

Result<Allocation> LoadAllocationCsv(chain::AccountRegistry* registry,
                                     const std::string& path) {
  auto rows_result = ReadCsvFile(path);
  if (!rows_result.ok()) return rows_result.status();
  const auto& rows = rows_result.value();
  if (rows.size() < 2 || rows[0].size() != 3 ||
      rows[0][0] != "#txallo-allocation") {
    return Status::Corruption("missing #txallo-allocation metadata row");
  }
  const uint32_t num_shards =
      static_cast<uint32_t>(std::atoi(rows[0][1].c_str()));
  if (num_shards == 0) {
    return Status::Corruption("allocation file declares zero shards");
  }
  Allocation allocation(registry->size(), num_shards);
  for (size_t r = 2; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 2) {
      return Status::Corruption("row " + std::to_string(r) +
                                ": expected 2 columns");
    }
    const chain::AccountId id = registry->Intern(row[0]);
    allocation.GrowAccounts(registry->size());
    char* end = nullptr;
    const long shard = std::strtol(row[1].c_str(), &end, 10);
    if (end == row[1].c_str() || shard < 0 ||
        shard >= static_cast<long>(num_shards)) {
      return Status::Corruption("row " + std::to_string(r) +
                                ": bad shard id '" + row[1] + "'");
    }
    allocation.Assign(id, static_cast<ShardId>(shard));
  }
  return allocation;
}

}  // namespace txallo::alloc

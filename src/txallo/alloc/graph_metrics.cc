#include "txallo/alloc/graph_metrics.h"

#include "txallo/common/math.h"

namespace txallo::alloc {

double CommunityState::ThroughputOf(uint32_t i) const {
  return ClampThroughput(lambda_hat[i], sigma[i], capacity);
}

double CommunityState::TotalThroughput() const {
  double total = 0.0;
  for (uint32_t i = 0; i < sigma.size(); ++i) total += ThroughputOf(i);
  return total;
}

CommunityState ComputeCommunityState(const graph::TransactionGraph& graph,
                                     const Allocation& allocation,
                                     const AllocationParams& params) {
  CommunityState state;
  state.eta = params.eta;
  state.capacity = params.capacity;
  state.sigma.assign(params.num_shards, 0.0);
  state.lambda_hat.assign(params.num_shards, 0.0);

  const size_t n = graph.num_nodes();
  for (size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<graph::NodeId>(v);
    const ShardId cv =
        v < allocation.num_accounts() ? allocation.shard_of(vid)
                                      : kUnassignedShard;
    if (cv == kUnassignedShard) continue;
    // Self-loops are intra workload and full throughput.
    state.sigma[cv] += graph.SelfLoop(vid);
    state.lambda_hat[cv] += graph.SelfLoop(vid);
    for (const graph::Neighbor& nb : graph.Neighbors(vid)) {
      const ShardId cu = nb.node < allocation.num_accounts()
                             ? allocation.shard_of(nb.node)
                             : kUnassignedShard;
      if (cu == cv) {
        // Intra edge: visited from both endpoints; halve to count once.
        state.sigma[cv] += 0.5 * nb.weight;
        state.lambda_hat[cv] += 0.5 * nb.weight;
      } else {
        // Cross edge (or edge to an unassigned node): this side carries η
        // workload and half the throughput credit.
        state.sigma[cv] += params.eta * nb.weight;
        state.lambda_hat[cv] += 0.5 * nb.weight;
      }
    }
  }
  return state;
}

double GraphCrossWeightRatio(const graph::TransactionGraph& graph,
                             const Allocation& allocation) {
  double cross = 0.0;
  double total = 0.0;
  const size_t n = graph.num_nodes();
  for (size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<graph::NodeId>(v);
    total += graph.SelfLoop(vid);
    const ShardId cv = vid < allocation.num_accounts()
                           ? allocation.shard_of(vid)
                           : kUnassignedShard;
    for (const graph::Neighbor& nb : graph.Neighbors(vid)) {
      if (nb.node < vid) continue;  // Count each undirected edge once.
      total += nb.weight;
      const ShardId cu = nb.node < allocation.num_accounts()
                             ? allocation.shard_of(nb.node)
                             : kUnassignedShard;
      if (cv != cu || cv == kUnassignedShard) cross += nb.weight;
    }
  }
  return total > 0.0 ? cross / total : 0.0;
}

}  // namespace txallo::alloc

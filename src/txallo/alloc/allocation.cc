#include "txallo/alloc/allocation.h"

namespace txallo::alloc {

Status Allocation::Validate() const {
  for (size_t a = 0; a < shard_of_.size(); ++a) {
    if (shard_of_[a] == kUnassignedShard) {
      return Status::FailedPrecondition(
          "account " + std::to_string(a) + " is unassigned");
    }
    if (shard_of_[a] >= num_shards_) {
      return Status::Corruption("account " + std::to_string(a) +
                                " mapped to out-of-range shard " +
                                std::to_string(shard_of_[a]));
    }
  }
  return Status::OK();
}

std::vector<std::vector<chain::AccountId>> Allocation::Groups() const {
  std::vector<std::vector<chain::AccountId>> groups(num_shards_);
  for (size_t a = 0; a < shard_of_.size(); ++a) {
    if (shard_of_[a] < num_shards_) {
      groups[shard_of_[a]].push_back(static_cast<chain::AccountId>(a));
    }
  }
  return groups;
}

std::vector<uint64_t> Allocation::ShardSizes() const {
  std::vector<uint64_t> sizes(num_shards_, 0);
  for (ShardId s : shard_of_) {
    if (s < num_shards_) ++sizes[s];
  }
  return sizes;
}

}  // namespace txallo::alloc

#include "txallo/alloc/workload_model.h"

#include <algorithm>

#include "txallo/common/math.h"

namespace txallo::alloc {

Status WorkloadModel::Validate() const {
  if (intra <= 0.0) {
    return Status::InvalidArgument("intra workload must be positive");
  }
  if (cross_input < intra || cross_output < intra) {
    return Status::InvalidArgument(
        "cross-shard work cannot be cheaper than intra-shard work");
  }
  if (per_extra_account < 0.0) {
    return Status::InvalidArgument("per_extra_account must be >= 0");
  }
  return Status::OK();
}

namespace {

class ExtendedAccumulator {
 public:
  ExtendedAccumulator(const Allocation& allocation, uint32_t num_shards,
                      const WorkloadModel& model)
      : allocation_(allocation),
        model_(model),
        sigma_(num_shards, 0.0),
        uncapped_(num_shards, 0.0) {}

  Status Add(const chain::Transaction& tx) {
    ++total_;
    input_shards_.clear();
    all_shards_.clear();
    for (chain::AccountId a : tx.inputs()) {
      const ShardId s = ShardOf(a);
      if (s == kUnassignedShard) return Unassigned(a);
      Insert(&input_shards_, s);
      Insert(&all_shards_, s);
    }
    for (chain::AccountId a : tx.outputs()) {
      const ShardId s = ShardOf(a);
      if (s == kUnassignedShard) return Unassigned(a);
      Insert(&all_shards_, s);
    }
    const uint32_t mu = static_cast<uint32_t>(all_shards_.size());
    mu_sum_ += mu;
    const double surcharge =
        model_.per_extra_account *
        static_cast<double>(
            tx.NumDistinctAccounts() > 2 ? tx.NumDistinctAccounts() - 2 : 0);
    if (mu <= 1) {
      sigma_[all_shards_[0]] += model_.intra + surcharge;
      uncapped_[all_shards_[0]] += 1.0;
      return Status::OK();
    }
    ++cross_count_;
    const double share = 1.0 / static_cast<double>(mu);
    for (ShardId s : all_shards_) {
      const bool is_input =
          std::find(input_shards_.begin(), input_shards_.end(), s) !=
          input_shards_.end();
      sigma_[s] +=
          (is_input ? model_.cross_input : model_.cross_output) + surcharge;
      uncapped_[s] += share;
    }
    return Status::OK();
  }

  EvaluationReport Finish(uint32_t num_shards, double capacity) const {
    EvaluationReport report;
    report.total_transactions = total_;
    report.cross_shard_transactions = cross_count_;
    report.num_shards = num_shards;
    if (total_ > 0) {
      report.cross_shard_ratio =
          static_cast<double>(cross_count_) / static_cast<double>(total_);
      report.mean_shards_per_tx = mu_sum_ / static_cast<double>(total_);
    }
    report.shard_workloads = sigma_;
    report.normalized_workloads.resize(num_shards);
    double latency_sum = 0.0, throughput = 0.0, worst = 1.0;
    for (uint32_t s = 0; s < num_shards; ++s) {
      report.normalized_workloads[s] =
          capacity > 0.0 ? sigma_[s] / capacity : 0.0;
      throughput += ClampThroughput(uncapped_[s], sigma_[s], capacity);
      latency_sum += AverageLatencyBlocks(sigma_[s], capacity);
      worst = std::max(worst, WorstCaseLatencyBlocks(sigma_[s], capacity));
    }
    report.workload_stddev = PopulationStdDev(report.shard_workloads);
    report.normalized_workload_stddev =
        capacity > 0.0 ? report.workload_stddev / capacity : 0.0;
    report.throughput = throughput;
    report.normalized_throughput =
        capacity > 0.0 ? throughput / capacity : 0.0;
    report.avg_latency_blocks =
        latency_sum / static_cast<double>(num_shards);
    report.worst_latency_blocks = worst;
    return report;
  }

  chain::AccountId bad_account() const { return bad_account_; }

 private:
  ShardId ShardOf(chain::AccountId a) const {
    return a < allocation_.num_accounts() ? allocation_.shard_of(a)
                                          : kUnassignedShard;
  }
  static void Insert(std::vector<ShardId>* list, ShardId s) {
    if (std::find(list->begin(), list->end(), s) == list->end()) {
      list->push_back(s);
    }
  }
  Status Unassigned(chain::AccountId a) {
    bad_account_ = a;
    return Status::FailedPrecondition(
        "transaction references unassigned account " + std::to_string(a));
  }

  const Allocation& allocation_;
  WorkloadModel model_;
  std::vector<double> sigma_;
  std::vector<double> uncapped_;
  std::vector<ShardId> input_shards_;
  std::vector<ShardId> all_shards_;
  uint64_t total_ = 0;
  uint64_t cross_count_ = 0;
  double mu_sum_ = 0.0;
  chain::AccountId bad_account_ = chain::kInvalidAccount;
};

}  // namespace

Result<EvaluationReport> EvaluateAllocationExtended(
    const std::vector<chain::Transaction>& transactions,
    const Allocation& allocation, uint32_t num_shards, double capacity,
    const WorkloadModel& model) {
  TXALLO_RETURN_NOT_OK(model.Validate());
  if (num_shards == 0) return Status::InvalidArgument("num_shards >= 1");
  if (capacity <= 0.0) return Status::InvalidArgument("capacity > 0");
  ExtendedAccumulator acc(allocation, num_shards, model);
  for (const chain::Transaction& tx : transactions) {
    TXALLO_RETURN_NOT_OK(acc.Add(tx));
  }
  return acc.Finish(num_shards, capacity);
}

Result<EvaluationReport> EvaluateAllocationExtended(
    const chain::Ledger& ledger, const Allocation& allocation,
    uint32_t num_shards, double capacity, const WorkloadModel& model) {
  return EvaluateAllocationExtended(ledger.AllTransactions(), allocation,
                                    num_shards, capacity, model);
}

}  // namespace txallo::alloc

// Hyper-parameters of the allocation problem (paper §V-A): shard count k,
// cross-shard workload factor η, per-shard processing capacity λ, and the
// convergence threshold ε.
#pragma once

#include <cstdint>

#include "txallo/common/status.h"

namespace txallo::alloc {

/// θ in φ(A, T, θ).
struct AllocationParams {
  /// Number of shards k (>= 1).
  uint32_t num_shards = 16;

  /// Workload for a shard to process one cross-shard transaction, relative
  /// to 1 for an intra-shard transaction. η > 1 in practice (paper: 2..10).
  double eta = 2.0;

  /// Processing capacity λ of each shard, in intra-shard-transaction units
  /// per scheduling window. The paper's experiments use λ = |T| / k so that
  /// the all-intra balanced ideal yields system throughput exactly |T|.
  double capacity = 0.0;

  /// Convergence threshold ε for the optimization loop. The paper uses
  /// ε = 1e-5 · |T|.
  double epsilon = 0.0;

  /// Fills capacity and epsilon from a transaction count using the paper's
  /// experimental setting (λ = |T|/k, ε = 1e-5·|T|).
  static AllocationParams ForExperiment(uint64_t num_transactions,
                                        uint32_t num_shards, double eta);

  /// Sanity-checks the parameter combination.
  Status Validate() const;
};

}  // namespace txallo::alloc

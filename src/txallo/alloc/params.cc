#include "txallo/alloc/params.h"

namespace txallo::alloc {

AllocationParams AllocationParams::ForExperiment(uint64_t num_transactions,
                                                 uint32_t num_shards,
                                                 double eta) {
  AllocationParams params;
  params.num_shards = num_shards;
  params.eta = eta;
  params.capacity = num_shards > 0
                        ? static_cast<double>(num_transactions) / num_shards
                        : 0.0;
  params.epsilon = 1e-5 * static_cast<double>(num_transactions);
  return params;
}

Status AllocationParams::Validate() const {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (eta < 1.0) {
    return Status::InvalidArgument(
        "eta must be >= 1 (cross-shard work cannot be cheaper than "
        "intra-shard)");
  }
  if (capacity <= 0.0) {
    return Status::InvalidArgument("capacity must be positive");
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  return Status::OK();
}

}  // namespace txallo::alloc

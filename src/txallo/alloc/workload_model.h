// Extended workload model — the fine-tuning the paper explicitly leaves
// open (§III-A): "the processing workload may differ for input shards and
// output shards, and for transactions with a different number of affected
// accounts |A_Tx|. ... This can be easily extended by leveraging different
// workload parameters based on the specific applications."
//
// The core algorithms optimize the single-η model (as in the paper); this
// module evaluates any mapping under a role- and size-aware model so users
// can check how robust an allocation is to their application's real cost
// structure (see bench/model_sensitivity).
#pragma once

#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/metrics.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"

namespace txallo::alloc {

/// Per-role workload parameters.
struct WorkloadModel {
  /// Workload of an intra-shard transaction for its (single) shard.
  double intra = 1.0;
  /// Workload for a shard holding at least one input account of a
  /// cross-shard transaction (it must validate and debit — the expensive
  /// side of the two-phase protocol).
  double cross_input = 2.0;
  /// Workload for a shard holding only output accounts (credit-only).
  double cross_output = 2.0;
  /// Extra workload per distinct account beyond the first two (state
  /// touches scale with |A_Tx|).
  double per_extra_account = 0.0;

  /// The paper's single-η model: intra 1, both cross roles η.
  static WorkloadModel Uniform(double eta) {
    return WorkloadModel{1.0, eta, eta, 0.0};
  }

  Status Validate() const;
};

/// Evaluates `allocation` under the extended model. Throughput credit per
/// shard stays 1/µ(Tx) (completion shares are role-independent); only the
/// σ_i workload accounting changes.
Result<EvaluationReport> EvaluateAllocationExtended(
    const std::vector<chain::Transaction>& transactions,
    const Allocation& allocation, uint32_t num_shards, double capacity,
    const WorkloadModel& model);

/// Ledger convenience overload.
Result<EvaluationReport> EvaluateAllocationExtended(
    const chain::Ledger& ledger, const Allocation& allocation,
    uint32_t num_shards, double capacity, const WorkloadModel& model);

}  // namespace txallo::alloc

// Account-shard mapping (paper Definition 1): a partition {A_1, ..., A_k}
// of the account set with uniqueness and completeness. Internally a flat
// account->shard array; shard kUnassignedShard marks accounts an algorithm
// has not placed yet (only ever observable mid-algorithm).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "txallo/chain/account.h"
#include "txallo/common/status.h"

namespace txallo::alloc {

using ShardId = uint32_t;

/// Sentinel for "not yet placed".
inline constexpr ShardId kUnassignedShard = UINT32_MAX;

/// The account-shard mapping φ(A, T, θ) outputs.
class Allocation {
 public:
  Allocation() = default;

  /// Creates a mapping over `num_accounts` accounts and `num_shards` shards,
  /// all accounts unassigned.
  Allocation(size_t num_accounts, uint32_t num_shards)
      : num_shards_(num_shards),
        shard_of_(num_accounts, kUnassignedShard) {}

  uint32_t num_shards() const { return num_shards_; }
  size_t num_accounts() const { return shard_of_.size(); }

  /// Grows the account domain (new accounts arrive unassigned).
  void GrowAccounts(size_t num_accounts) {
    if (num_accounts > shard_of_.size()) {
      shard_of_.resize(num_accounts, kUnassignedShard);
    }
  }

  /// Accounts outside the mapping's domain (created after this allocation
  /// was snapshotted) read as unassigned rather than out-of-bounds.
  ShardId shard_of(chain::AccountId account) const {
    return account < shard_of_.size() ? shard_of_[account] : kUnassignedShard;
  }
  bool IsAssigned(chain::AccountId account) const {
    return shard_of(account) != kUnassignedShard;
  }

  /// Assigns (or reassigns) an account. Preconditions: shard < num_shards()
  /// and account < num_accounts() — unlike the read path, writing to an
  /// out-of-domain account is a bug; call GrowAccounts() first.
  void Assign(chain::AccountId account, ShardId shard) {
    assert(account < shard_of_.size());
    shard_of_[account] = shard;
  }

  /// Raw mapping array (account id -> shard id).
  const std::vector<ShardId>& raw() const { return shard_of_; }

  /// Verifies Definition 1: every account is assigned to exactly one shard
  /// in [0, k). (Uniqueness is structural — one slot per account — so this
  /// checks completeness and range.)
  Status Validate() const;

  /// Materializes the shard groups {A_1, ..., A_k}.
  std::vector<std::vector<chain::AccountId>> Groups() const;

  /// Number of accounts per shard.
  std::vector<uint64_t> ShardSizes() const;

  bool operator==(const Allocation& other) const {
    return num_shards_ == other.num_shards_ && shard_of_ == other.shard_of_;
  }

 private:
  uint32_t num_shards_ = 0;
  std::vector<ShardId> shard_of_;
};

}  // namespace txallo::alloc

// Account model for an account-based permissionless blockchain (paper
// §II-A). Accounts are persistent and repeatedly used, which is what makes
// historical transaction patterns exploitable for allocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "txallo/common/flat_map.h"
#include "txallo/common/status.h"

namespace txallo::chain {

/// Dense account identifier. Dense ids keep the transaction graph and the
/// allocation arrays cache-friendly; the registry maps them back to
/// addresses.
using AccountId = uint32_t;

/// Sentinel for "no account".
inline constexpr AccountId kInvalidAccount = UINT32_MAX;

/// Account kinds, Ethereum terminology (paper §II-A): EOAs are client
/// key-pairs, contract accounts belong to smart contracts and are typically
/// far more active.
enum class AccountType : uint8_t {
  kExternallyOwned = 0,  // EOA
  kContract = 1,         // CA
};

/// Interning registry: address string <-> dense AccountId, plus per-account
/// metadata needed by the allocators (deterministic ordering key, type).
class AccountRegistry {
 public:
  AccountRegistry() = default;

  /// Returns the id for `address`, creating it on first sight.
  AccountId Intern(const std::string& address,
                   AccountType type = AccountType::kExternallyOwned);

  /// Creates a synthetic account whose address is derived from its id
  /// ("acct-<id>"). Used by the workload generator.
  AccountId CreateSynthetic(AccountType type = AccountType::kExternallyOwned);

  /// Looks up an existing id. NotFound if the address was never interned.
  Result<AccountId> Find(const std::string& address) const;

  /// Precondition: id < size().
  const std::string& AddressOf(AccountId id) const { return addresses_[id]; }
  AccountType TypeOf(AccountId id) const { return types_[id]; }

  /// Deterministic ordering key: first 8 bytes of SHA256(address). The paper
  /// (§V-B) uses the account-hash order to make the node loop deterministic
  /// across miners.
  uint64_t OrderKey(AccountId id) const { return order_keys_[id]; }

  size_t size() const { return addresses_.size(); }

  /// All account ids sorted by OrderKey (ties broken by id). This is the
  /// canonical node iteration order of G-TxAllo.
  std::vector<AccountId> IdsInHashOrder() const;

 private:
  // Flat open-addressing map: interning stays O(1) without libstdc++'s
  // node allocations; iteration (unused here) would be insertion-ordered.
  common::FlatMap<std::string, AccountId> index_;
  std::vector<std::string> addresses_;
  std::vector<AccountType> types_;
  std::vector<uint64_t> order_keys_;
};

}  // namespace txallo::chain

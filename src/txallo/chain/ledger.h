// Append-only ledger: the input of the allocation problem.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "txallo/chain/block.h"
#include "txallo/common/status.h"

namespace txallo::chain {

/// A totally ordered sequence of blocks with convenience iteration over the
/// flattened transaction sequence.
class Ledger {
 public:
  Ledger() = default;

  /// Appends a block. Block numbers must be strictly increasing.
  Status Append(Block block);

  const std::vector<Block>& blocks() const { return blocks_; }
  size_t num_blocks() const { return blocks_.size(); }

  /// Total number of transactions across all blocks (|T|).
  uint64_t num_transactions() const { return num_transactions_; }

  /// Invokes `fn` for every transaction in ledger order.
  void ForEachTransaction(
      const std::function<void(const Transaction&)>& fn) const;

  /// Invokes `fn` for every transaction in blocks [first_block_index,
  /// last_block_index) — index into blocks(), not block numbers.
  void ForEachTransactionInRange(
      size_t first_block_index, size_t last_block_index,
      const std::function<void(const Transaction&)>& fn) const;

  /// Collects all transactions into one flat vector (copies).
  std::vector<Transaction> AllTransactions() const;

 private:
  std::vector<Block> blocks_;
  uint64_t num_transactions_ = 0;
};

}  // namespace txallo::chain

#include "txallo/chain/transaction.h"

#include <algorithm>

namespace txallo::chain {

Transaction::Transaction(std::vector<AccountId> inputs,
                         std::vector<AccountId> outputs)
    : inputs_(std::move(inputs)), outputs_(std::move(outputs)) {
  accounts_.reserve(inputs_.size() + outputs_.size());
  accounts_.insert(accounts_.end(), inputs_.begin(), inputs_.end());
  accounts_.insert(accounts_.end(), outputs_.begin(), outputs_.end());
  std::sort(accounts_.begin(), accounts_.end());
  accounts_.erase(std::unique(accounts_.begin(), accounts_.end()),
                  accounts_.end());
}

}  // namespace txallo::chain

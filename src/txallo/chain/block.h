// Block and ledger types, paper §III-A: a ledger L = {B_1, ..., B_n} is a
// totally ordered sequence of blocks, each a sequence of transactions.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/chain/transaction.h"

namespace txallo::chain {

/// One block of transactions.
class Block {
 public:
  Block() = default;
  Block(uint64_t number, std::vector<Transaction> transactions)
      : number_(number), transactions_(std::move(transactions)) {}

  uint64_t number() const { return number_; }
  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }
  std::vector<Transaction>& mutable_transactions() { return transactions_; }
  size_t size() const { return transactions_.size(); }

 private:
  uint64_t number_ = 0;
  std::vector<Transaction> transactions_;
};

}  // namespace txallo::chain

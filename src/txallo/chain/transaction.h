// Transaction model, paper §III-A: a transaction is the pair of its input
// and output account sets, Tx := (A_in, A_out), both non-empty. Everything
// the allocation problem needs — whether a transaction is cross-shard, how
// many shards process it — is a function of A_Tx = A_in ∪ A_out.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/chain/account.h"

namespace txallo::chain {

/// A multi-input multi-output account-based transaction.
class Transaction {
 public:
  Transaction() = default;

  /// Builds a transaction; deduplicates and sorts the distinct account set.
  /// Inputs/outputs may overlap (a self-transfer has A_in == A_out).
  Transaction(std::vector<AccountId> inputs, std::vector<AccountId> outputs);

  /// Convenience 1-input-1-output constructor (the dominant Ethereum case).
  static Transaction Simple(AccountId from, AccountId to) {
    return Transaction({from}, {to});
  }

  const std::vector<AccountId>& inputs() const { return inputs_; }
  const std::vector<AccountId>& outputs() const { return outputs_; }

  /// A_Tx = A_in ∪ A_out, sorted ascending, no duplicates.
  const std::vector<AccountId>& accounts() const { return accounts_; }

  /// |A_Tx|.
  size_t NumDistinctAccounts() const { return accounts_.size(); }

  /// True when the transaction touches exactly one account (self-transfer,
  /// e.g. an Ethereum pending-transaction withdrawal, paper §V-B).
  bool IsSelfLoop() const { return accounts_.size() == 1; }

 private:
  std::vector<AccountId> inputs_;
  std::vector<AccountId> outputs_;
  std::vector<AccountId> accounts_;
};

}  // namespace txallo::chain

#include "txallo/chain/block.h"

namespace txallo::chain {
// Block is header-only today; this TU anchors the target and reserves room
// for block-level validation (e.g., gas accounting) without touching users.
}  // namespace txallo::chain

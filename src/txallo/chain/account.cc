#include "txallo/chain/account.h"

#include <algorithm>

#include "txallo/common/sha256.h"

namespace txallo::chain {

AccountId AccountRegistry::Intern(const std::string& address,
                                  AccountType type) {
  auto it = index_.find(address);
  if (it != index_.end()) return it->second;
  AccountId id = static_cast<AccountId>(addresses_.size());
  index_.emplace(address, id);
  addresses_.push_back(address);
  types_.push_back(type);
  order_keys_.push_back(Sha256::Hash64(address));
  return id;
}

AccountId AccountRegistry::CreateSynthetic(AccountType type) {
  AccountId id = static_cast<AccountId>(addresses_.size());
  std::string address = "acct-" + std::to_string(id);
  index_.emplace(address, id);
  addresses_.push_back(std::move(address));
  types_.push_back(type);
  order_keys_.push_back(Sha256::Hash64(addresses_.back()));
  return id;
}

Result<AccountId> AccountRegistry::Find(const std::string& address) const {
  auto it = index_.find(address);
  if (it == index_.end()) {
    return Status::NotFound("unknown account address: " + address);
  }
  return it->second;
}

std::vector<AccountId> AccountRegistry::IdsInHashOrder() const {
  std::vector<AccountId> ids(addresses_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<AccountId>(i);
  std::sort(ids.begin(), ids.end(), [this](AccountId a, AccountId b) {
    if (order_keys_[a] != order_keys_[b]) {
      return order_keys_[a] < order_keys_[b];
    }
    return a < b;
  });
  return ids;
}

}  // namespace txallo::chain

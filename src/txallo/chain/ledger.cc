#include "txallo/chain/ledger.h"

namespace txallo::chain {

Status Ledger::Append(Block block) {
  if (!blocks_.empty() && block.number() <= blocks_.back().number()) {
    return Status::InvalidArgument(
        "block numbers must be strictly increasing: got " +
        std::to_string(block.number()) + " after " +
        std::to_string(blocks_.back().number()));
  }
  num_transactions_ += block.size();
  blocks_.push_back(std::move(block));
  return Status::OK();
}

void Ledger::ForEachTransaction(
    const std::function<void(const Transaction&)>& fn) const {
  for (const Block& b : blocks_) {
    for (const Transaction& tx : b.transactions()) fn(tx);
  }
}

void Ledger::ForEachTransactionInRange(
    size_t first_block_index, size_t last_block_index,
    const std::function<void(const Transaction&)>& fn) const {
  if (last_block_index > blocks_.size()) last_block_index = blocks_.size();
  for (size_t i = first_block_index; i < last_block_index; ++i) {
    for (const Transaction& tx : blocks_[i].transactions()) fn(tx);
  }
}

std::vector<Transaction> Ledger::AllTransactions() const {
  std::vector<Transaction> out;
  out.reserve(num_transactions_);
  for (const Block& b : blocks_) {
    out.insert(out.end(), b.transactions().begin(), b.transactions().end());
  }
  return out;
}

}  // namespace txallo::chain

// Deterministic transfer semantics for the abstract transaction model.
//
// chain::Transaction carries account sets, not amounts (paper §III-A), so
// the state backend derives a concrete value flow as a pure function of the
// transaction and its ingest sequence tag: every input pays
// TransferAmount(seq), the pot is split across the outputs (remainder to
// the first), and value is conserved exactly. Any two executions of the
// same submission order therefore stage identical debits/credits — which is
// what lets per-tick Merkle roots replay bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/chain/transaction.h"
#include "txallo/state/account_state.h"

namespace txallo::state {

/// Amount each input account pays in the transaction with ingest sequence
/// tag `seq`. Small (1..7) so funded accounts survive long streams while an
/// underfunded one still aborts deterministically.
int64_t TransferAmount(uint64_t seq);

/// One Op per distinct account of `tx`, sorted by account id: inputs accrue
/// debits of TransferAmount(seq) per occurrence, outputs split the total
/// (remainder to the first output), an account on both sides carries both.
/// Sum of debits == sum of credits.
std::vector<Op> BuildTransferOps(const chain::Transaction& tx, uint64_t seq);

}  // namespace txallo::state

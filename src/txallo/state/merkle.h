// Incremental Merkle trie over 32-bit account ids (txallo::state).
//
// Shape follows speedex's trie/merkle_trie.h in spirit, sized for this
// repository: a fixed-depth 16-ary trie — 8 nibbles of the key, most
// significant first — whose leaves hold caller-supplied digests (the shard
// DB hashes (account, balance, sequence)). Interior hashes cover a child
// bitmap plus the present children's digests in index order, so the root is
// a pure function of the key->digest mapping: insertion order, thread
// count and hash-table seeds cannot perturb it.
//
// Updates mark only the root-to-leaf path dirty; Root() rehashes dirty
// nodes lazily. A tick that touches m of n accounts therefore costs
// O(m · depth) hashes, not O(n) — that is what makes a hash-per-tick
// fingerprint affordable.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "txallo/common/sha256.h"

namespace txallo::state {

class MerkleTrie {
 public:
  MerkleTrie();

  /// Inserts or overwrites the digest at `key`.
  void Update(uint32_t key, const Sha256Digest& leaf);

  /// Removes `key`; returns false when absent.
  bool Remove(uint32_t key);

  /// Root digest over the current mapping. All-zero when empty. Recomputes
  /// only paths dirtied since the last call.
  const Sha256Digest& Root();

  /// Number of keys present.
  size_t size() const { return size_; }

 private:
  static constexpr int kFanout = 16;
  static constexpr int kDepth = 8;  // 32-bit keys, 4 bits per level.

  struct Node {
    std::array<std::unique_ptr<Node>, kFanout> children;
    Sha256Digest hash{};
    bool dirty = true;
  };

  static uint32_t NibbleAt(uint32_t key, int depth) {
    return (key >> (4 * (kDepth - 1 - depth))) & 0xF;
  }
  // Returns true when the subtree became empty and should be pruned.
  bool RemoveRec(Node* node, uint32_t key, int depth, bool* removed);
  void Rehash(Node* node);

  std::unique_ptr<Node> root_;
  Sha256Digest empty_root_{};
  size_t size_ = 0;
};

}  // namespace txallo::state

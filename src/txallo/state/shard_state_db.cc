#include "txallo/state/shard_state_db.h"

#include <algorithm>

namespace txallo::state {

namespace {

void HashLe(Sha256* hasher, uint64_t v, int bytes) {
  uint8_t buf[8];
  for (int i = 0; i < bytes; ++i) {
    buf[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
  }
  hasher->Update(buf, static_cast<size_t>(bytes));
}

Sha256Digest LeafDigest(chain::AccountId account, const AccountState& record) {
  Sha256 hasher;
  HashLe(&hasher, account, 4);
  HashLe(&hasher, static_cast<uint64_t>(record.balance), 8);
  HashLe(&hasher, record.sequence, 8);
  return hasher.Finish();
}

}  // namespace

ShardStateDb::ShardStateDb(int64_t initial_balance)
    : initial_balance_(initial_balance),
      records_(std::make_shared<Records>()) {}

const AccountState* ShardStateDb::Find(chain::AccountId account) const {
  auto it = records_->find(account);
  return it == records_->end() ? nullptr : &it->second;
}

ShardStateDb::Records& ShardStateDb::MutableRecords() {
  if (records_.use_count() > 1) {
    records_ = std::make_shared<Records>(*records_);
  }
  return *records_;
}

void ShardStateDb::UpdateLeaf(chain::AccountId account,
                              const AccountState& record) {
  trie_.Update(account, LeafDigest(account, record));
}

void ShardStateDb::Put(chain::AccountId account, AccountState record) {
  MutableRecords()[account] = record;
  UpdateLeaf(account, record);
}

std::optional<AccountState> ShardStateDb::Extract(chain::AccountId account) {
  // Any staged op pins the record here until its 2PC round decides —
  // including credit-only ops, whose commit thunk carries no reservation
  // but still applies against THIS shard's record.
  if (pinned_.count(account) != 0) return std::nullopt;
  Records& records = MutableRecords();
  auto it = records.find(account);
  if (it == records.end()) return std::nullopt;
  const AccountState record = it->second;
  records.erase(it);
  trie_.Remove(account);
  return record;
}

int64_t ShardStateDb::AvailableBalance(chain::AccountId account) const {
  const AccountState* record = Find(account);
  if (record == nullptr) return 0;
  auto it = reserved_.find(account);
  const int64_t reserved = it == reserved_.end() ? 0 : it->second;
  return record->balance - reserved;
}

bool ShardStateDb::StageOp(uint64_t seq, const Op& op) {
  const AccountState* record = Find(op.account);
  if (record == nullptr) {
    // Lazy creation is a committed-state change: the account now exists,
    // funded, whatever the transaction's fate.
    Put(op.account, AccountState{initial_balance_, 0});
    record = Find(op.account);
  }
  if (op.require_sequence != kAnySequence &&
      record->sequence != op.require_sequence) {
    return false;  // Bad nonce.
  }
  if (op.debit > 0) {
    int64_t& reserved = reserved_[op.account];
    if (record->balance - reserved < op.debit) {
      return false;  // Insufficient spendable balance.
    }
    reserved += op.debit;
  }
  staged_[seq].push_back(op);
  ++pinned_[op.account];
  return true;
}

void ShardStateDb::Unpin(chain::AccountId account) {
  auto it = pinned_.find(account);
  if (--it->second == 0) pinned_.erase(it);
}

size_t ShardStateDb::CommitStaged(uint64_t seq) {
  auto it = staged_.find(seq);
  if (it == staged_.end()) return 0;
  const std::vector<Op> ops = std::move(it->second);
  staged_.erase(it);
  Records& records = MutableRecords();
  for (const Op& op : ops) {
    AccountState& record = records[op.account];
    record.balance += op.credit - op.debit;
    if (op.debit > 0) {
      ++record.sequence;
      auto reserved = reserved_.find(op.account);
      reserved->second -= op.debit;
      if (reserved->second == 0) reserved_.erase(reserved);
    }
    UpdateLeaf(op.account, record);
    Unpin(op.account);
  }
  return ops.size();
}

size_t ShardStateDb::AbortStaged(uint64_t seq) {
  auto it = staged_.find(seq);
  if (it == staged_.end()) return 0;
  const std::vector<Op> ops = std::move(it->second);
  staged_.erase(it);
  for (const Op& op : ops) {
    if (op.debit > 0) {
      auto reserved = reserved_.find(op.account);
      reserved->second -= op.debit;
      if (reserved->second == 0) reserved_.erase(reserved);
    }
    Unpin(op.account);
  }
  return ops.size();
}

const AccountState* ShardStateDb::View::Find(chain::AccountId account) const {
  if (records_ == nullptr) return nullptr;
  auto it = records_->find(account);
  return it == records_->end() ? nullptr : &it->second;
}

std::vector<std::pair<chain::AccountId, AccountState>>
ShardStateDb::SortedRecords() const {
  std::vector<std::pair<chain::AccountId, AccountState>> out;
  out.reserve(records_->size());
  // FlatMap iterates in insertion order (deterministic); sorted by account
  // id immediately below.
  for (const auto& [account, record] : *records_) {
    out.emplace_back(account, record);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace txallo::state

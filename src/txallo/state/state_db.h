// The k-shard account-state composite the engine drives (txallo::state).
//
// StateDb owns one ShardStateDb per shard plus the residency map: which
// shard currently holds each account's record. Three engine-facing jobs:
//
//   * 2PC staging. StagePart() dispatches each op of a transaction part to
//     the shard its record currently resides on (which, after a migration,
//     may differ from the lane the part was routed to at ingest); missing
//     records are lazily created — funded with the initial balance — on
//     the ingest-routed placement shard. Commit()/Abort() apply or drop
//     everything staged under a sequence tag across all shards.
//
//   * State migration. BeginMigration(allocation) moves every record whose
//     effective shard under the new mapping differs from its residency —
//     the real cost behind an allocation install. Records locked by a
//     pending 2PC reservation are deferred and retried by
//     ContinueMigration() at subsequent ticks (an account mid-round must
//     not move). Each call reports per-shard in/out move counts so the
//     engine can charge migration work against λ.
//
//   * Fingerprinting. GlobalRoot() hashes the per-shard Merkle roots in
//     shard order — the per-tick root the replay log records and verifies.
//
// Thread-safety: none; driver-side only (see engine.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/chain/account.h"
#include "txallo/common/sha256.h"
#include "txallo/state/account_state.h"
#include "txallo/state/shard_state_db.h"

namespace txallo::state {

/// Per-shard record movement of one migration pass.
struct MigrationReport {
  uint64_t accounts_moved = 0;
  /// Records deferred because a pending reservation locked them.
  uint64_t accounts_deferred = 0;
  std::vector<uint64_t> moved_out;  // indexed by source shard
  std::vector<uint64_t> moved_in;   // indexed by destination shard
};

class StateDb {
 public:
  /// Residency sentinel: the account has no record yet.
  static constexpr uint32_t kNoShard = UINT32_MAX;

  StateDb(uint32_t num_shards, const StateConfig& config);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  const StateConfig& config() const { return config_; }
  ShardStateDb& shard(uint32_t s) { return *shards_[s]; }
  const ShardStateDb& shard(uint32_t s) const { return *shards_[s]; }

  /// Which shard holds `account`'s record (kNoShard when none does).
  uint32_t ResidencyOf(chain::AccountId account) const;

  /// Committed record via the residency map, or nullptr.
  const AccountState* Find(chain::AccountId account) const;

  /// Pre-creates a committed record on `shard` (tests; workload funding
  /// normally happens lazily at first touch).
  void Fund(chain::AccountId account, AccountState record, uint32_t shard);

  /// Stages one transaction part (see file header). Returns false when any
  /// op fails its balance/nonce check — the part's vote; ops staged under
  /// `seq` before the failure are dropped by the eventual Abort(seq).
  bool StagePart(uint64_t seq, const std::vector<Op>& ops,
                 uint32_t placement_shard);

  /// Applies / drops everything staged under `seq` on every shard.
  /// Returns ops affected.
  size_t Commit(uint64_t seq);
  size_t Abort(uint64_t seq);

  /// Starts migrating to `allocation` (replacing any migration still in
  /// progress). Effective shard: the mapping's assignment, or — when
  /// `hash_route_unassigned` — account id mod k for unassigned accounts
  /// (the engine's routing fallback); without the fallback, unassigned
  /// records stay where they are.
  MigrationReport BeginMigration(
      std::shared_ptr<const alloc::Allocation> allocation,
      bool hash_route_unassigned);

  /// Retries records a previous pass deferred (reservation-locked).
  MigrationReport ContinueMigration();

  bool migration_pending() const { return !deferred_moves_.empty(); }

  /// SHA-256 over the per-shard Merkle roots in shard order.
  Sha256Digest GlobalRoot();

  uint64_t total_accounts() const;

 private:
  uint32_t EffectiveShard(chain::AccountId account) const;
  // Moves what it can out of `candidates`, refilling deferred_moves_.
  MigrationReport MoveRecords(const std::vector<chain::AccountId>& candidates);
  void TrackResidency(chain::AccountId account, uint32_t shard);

  const StateConfig config_;
  std::vector<std::unique_ptr<ShardStateDb>> shards_;
  // residency_[account] = shard holding its record, kNoShard when none.
  // Dense by account id; grown on demand.
  std::vector<uint32_t> residency_;
  // Migration target (null until the first BeginMigration).
  std::shared_ptr<const alloc::Allocation> target_;
  bool target_hash_fallback_ = false;
  std::vector<chain::AccountId> deferred_moves_;
};

}  // namespace txallo::state

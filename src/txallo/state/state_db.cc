#include "txallo/state/state_db.h"

#include <cassert>
#include <utility>

namespace txallo::state {

StateDb::StateDb(uint32_t num_shards, const StateConfig& config)
    : config_(config) {
  assert(num_shards > 0);
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<ShardStateDb>(config.initial_balance));
  }
}

uint32_t StateDb::ResidencyOf(chain::AccountId account) const {
  return account < residency_.size() ? residency_[account] : kNoShard;
}

const AccountState* StateDb::Find(chain::AccountId account) const {
  const uint32_t shard = ResidencyOf(account);
  return shard == kNoShard ? nullptr : shards_[shard]->Find(account);
}

void StateDb::TrackResidency(chain::AccountId account, uint32_t shard) {
  if (account >= residency_.size()) {
    residency_.resize(static_cast<size_t>(account) + 1, kNoShard);
  }
  residency_[account] = shard;
}

void StateDb::Fund(chain::AccountId account, AccountState record,
                   uint32_t shard) {
  assert(shard < shards_.size());
  const uint32_t current = ResidencyOf(account);
  if (current != kNoShard && current != shard) {
    std::optional<AccountState> moved = shards_[current]->Extract(account);
    assert(moved.has_value());
    (void)moved;
  }
  shards_[shard]->Put(account, record);
  TrackResidency(account, shard);
}

bool StateDb::StagePart(uint64_t seq, const std::vector<Op>& ops,
                        uint32_t placement_shard) {
  assert(placement_shard < shards_.size());
  for (const Op& op : ops) {
    uint32_t shard = ResidencyOf(op.account);
    if (shard == kNoShard) {
      shard = placement_shard;
      // StageOp lazily creates the record on this shard; the residency map
      // must agree before the fact.
      TrackResidency(op.account, shard);
    }
    if (!shards_[shard]->StageOp(seq, op)) return false;
  }
  return true;
}

size_t StateDb::Commit(uint64_t seq) {
  size_t applied = 0;
  for (const std::unique_ptr<ShardStateDb>& shard : shards_) {
    applied += shard->CommitStaged(seq);
  }
  return applied;
}

size_t StateDb::Abort(uint64_t seq) {
  size_t dropped = 0;
  for (const std::unique_ptr<ShardStateDb>& shard : shards_) {
    dropped += shard->AbortStaged(seq);
  }
  return dropped;
}

uint32_t StateDb::EffectiveShard(chain::AccountId account) const {
  const alloc::ShardId assigned = target_->shard_of(account);
  if (assigned != alloc::kUnassignedShard) return assigned;
  if (target_hash_fallback_) return account % num_shards();
  return ResidencyOf(account);  // Unassigned, no fallback: stay put.
}

MigrationReport StateDb::MoveRecords(
    const std::vector<chain::AccountId>& candidates) {
  MigrationReport report;
  report.moved_out.assign(shards_.size(), 0);
  report.moved_in.assign(shards_.size(), 0);
  std::vector<chain::AccountId> still_deferred;
  for (chain::AccountId account : candidates) {
    const uint32_t from = ResidencyOf(account);
    if (from == kNoShard) continue;
    const uint32_t to = EffectiveShard(account);
    if (to == from) continue;
    std::optional<AccountState> record = shards_[from]->Extract(account);
    if (!record.has_value()) {
      // Reservation-locked mid-2PC; retried by ContinueMigration().
      still_deferred.push_back(account);
      ++report.accounts_deferred;
      continue;
    }
    shards_[to]->Put(account, *record);
    TrackResidency(account, to);
    ++report.accounts_moved;
    ++report.moved_out[from];
    ++report.moved_in[to];
  }
  deferred_moves_ = std::move(still_deferred);
  return report;
}

MigrationReport StateDb::BeginMigration(
    std::shared_ptr<const alloc::Allocation> allocation,
    bool hash_route_unassigned) {
  assert(allocation != nullptr);
  target_ = std::move(allocation);
  target_hash_fallback_ = hash_route_unassigned;
  std::vector<chain::AccountId> candidates;
  candidates.reserve(residency_.size());
  for (size_t a = 0; a < residency_.size(); ++a) {
    if (residency_[a] != kNoShard) {
      candidates.push_back(static_cast<chain::AccountId>(a));
    }
  }
  return MoveRecords(candidates);
}

MigrationReport StateDb::ContinueMigration() {
  if (deferred_moves_.empty()) {
    MigrationReport report;
    report.moved_out.assign(shards_.size(), 0);
    report.moved_in.assign(shards_.size(), 0);
    return report;
  }
  return MoveRecords(std::vector<chain::AccountId>(deferred_moves_.begin(),
                                                   deferred_moves_.end()));
}

Sha256Digest StateDb::GlobalRoot() {
  Sha256 hasher;
  for (const std::unique_ptr<ShardStateDb>& shard : shards_) {
    const Sha256Digest& root = shard->RootHash();
    hasher.Update(root.data(), root.size());
  }
  return hasher.Finish();
}

uint64_t StateDb::total_accounts() const {
  uint64_t total = 0;
  for (const std::unique_ptr<ShardStateDb>& shard : shards_) {
    total += shard->num_accounts();
  }
  return total;
}

}  // namespace txallo::state

// One shard's account database with 2PC staging (txallo::state).
//
// Modeled on speedex's memory_database (user_account / revertable_asset):
// side effects are *staged* while a transaction prepares — the debit is
// checked against the spendable balance and reserved, nothing is applied —
// then applied on commit or dropped on abort. A cross-shard transaction
// that aborts after some shards voted PREPARED therefore reverts to the
// exact pre-transaction state, which the abort-path property tests pin
// byte-identically against a serial reference.
//
// Copy-on-write views: Snapshot() returns a View sharing the committed
// record map; the first committed-state mutation after a snapshot clones
// the map, so an in-flight cross-shard round can read a stable snapshot
// while the owning shard keeps executing. Reservations and staged thunks
// live outside the shared map — a view always sees committed state only.
//
// Fingerprint: every committed-state mutation updates an incremental
// MerkleTrie leaf (SHA256 over account id, balance, sequence), so
// RootHash() is O(touched · depth) per tick and a pure function of the
// committed records.
//
// Thread-safety: none. The engine drives every ShardStateDb from the
// driver thread between tick barriers (see engine.cc); tests may use it
// single-threaded.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "txallo/chain/account.h"
#include "txallo/common/flat_map.h"
#include "txallo/common/sha256.h"
#include "txallo/state/account_state.h"
#include "txallo/state/merkle.h"

namespace txallo::state {

class ShardStateDb {
 public:
  // Flat open-addressing map with deterministic (insertion-order)
  // iteration — the record index is hot on every staged op, and the
  // COW clone in MutableRecords() becomes three memcpy-able vector
  // copies instead of a per-node rebuild.
  using Records = common::FlatMap<chain::AccountId, AccountState>;

  /// `initial_balance` funds accounts lazily created by their first staged
  /// op (StateConfig::initial_balance).
  explicit ShardStateDb(int64_t initial_balance);

  size_t num_accounts() const { return records_->size(); }
  bool Contains(chain::AccountId account) const {
    return records_->count(account) != 0;
  }
  /// Committed record, or nullptr when absent. Invalidated by any mutation.
  const AccountState* Find(chain::AccountId account) const;

  /// Inserts or overwrites a committed record (funding, migration insert).
  void Put(chain::AccountId account, AccountState record);

  /// Removes and returns the committed record (migration extract). Fails
  /// (nullopt, no change) when absent or when the account participates in
  /// any staged-but-undecided op — an account mid-2PC must not move
  /// shards. Credit-only participants count too: their commit thunk still
  /// targets this shard's record.
  std::optional<AccountState> Extract(chain::AccountId account);

  /// Stages one op of transaction `seq`: creates the record when missing
  /// (funded with the initial balance), checks the nonce, and reserves the
  /// debit against the spendable balance (balance minus prior
  /// reservations). Returns false — staging nothing for THIS op — when a
  /// check fails; ops already staged under `seq` stay put until
  /// CommitStaged/AbortStaged (the 2PC decision cleans up after a failed
  /// vote).
  bool StageOp(uint64_t seq, const Op& op);

  /// Applies everything staged under `seq` (balance += credit - debit;
  /// sequence bumps once per op with a debit) and releases the
  /// reservations. Returns the number of ops applied (0 when nothing was
  /// staged here).
  size_t CommitStaged(uint64_t seq);

  /// Drops everything staged under `seq`, releasing the reservations and
  /// leaving committed state untouched. Returns the number of ops dropped.
  size_t AbortStaged(uint64_t seq);

  bool HasStaged(uint64_t seq) const { return staged_.count(seq) != 0; }
  /// Transactions with staged-but-undecided ops (invariant: 0 between
  /// fully drained ticks).
  size_t pending_transactions() const { return staged_.size(); }

  /// Spendable balance: committed balance minus pending reservations
  /// (0 when the account is absent).
  int64_t AvailableBalance(chain::AccountId account) const;

  /// Stable snapshot of the committed records (copy-on-write; O(1)).
  class View {
   public:
    View() = default;
    const AccountState* Find(chain::AccountId account) const;
    size_t num_accounts() const {
      return records_ == nullptr ? 0 : records_->size();
    }

   private:
    friend class ShardStateDb;
    explicit View(std::shared_ptr<const Records> records)
        : records_(std::move(records)) {}
    std::shared_ptr<const Records> records_;
  };
  View Snapshot() const { return View(records_); }

  /// Merkle root over the committed records (all-zero when empty).
  const Sha256Digest& RootHash() { return trie_.Root(); }

  /// Committed records sorted by account id (tests, serial references).
  std::vector<std::pair<chain::AccountId, AccountState>> SortedRecords()
      const;

  int64_t initial_balance() const { return initial_balance_; }

 private:
  // Clones the shared map iff a live View still references it.
  Records& MutableRecords();
  void UpdateLeaf(chain::AccountId account, const AccountState& record);
  // Drops one staged-op pin (precondition: the account is pinned).
  void Unpin(chain::AccountId account);

  const int64_t initial_balance_;
  std::shared_ptr<Records> records_;
  // Pending debit reservations and staged thunks are per-shard scratch,
  // never shared with views.
  common::FlatMap<chain::AccountId, int64_t> reserved_;
  common::FlatMap<uint64_t, std::vector<Op>> staged_;
  // How many staged ops target each account (reservations only cover
  // debits; this pins credit-only participants against Extract too).
  common::FlatMap<chain::AccountId, uint32_t> pinned_;
  MerkleTrie trie_;
};

}  // namespace txallo::state

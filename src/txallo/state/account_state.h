// Account-state primitives for the real execution backend (txallo::state).
//
// The engine executed an abstract cost model until this subsystem existed:
// 2PC aborts reverted nothing and reallocation was a free mapping edit.
// state/ gives shards real per-account state — a balance and a sequence
// number, speedex-memory_database-style — so cross-shard aborts have
// something to revert and account migration has something to move. The
// pieces:
//
//   * AccountState         — the committed record (this header).
//   * Op / TransferPlan    — one transaction's per-account effects, derived
//                            deterministically from the transaction and its
//                            ingest sequence tag (state/transfer_plan.h).
//   * ShardStateDb         — one shard's records with commit-thunk staging
//                            (state/shard_state_db.h).
//   * MerkleTrie           — incremental per-shard fingerprint
//                            (state/merkle.h).
//   * StateDb              — the k-shard composite the engine drives
//                            (state/state_db.h).
#pragma once

#include <cstdint>

#include "txallo/chain/account.h"

namespace txallo::state {

/// The committed record of one account: spendable balance and a sequence
/// number bumped once per committed debit (the nonce a replay-protected
/// chain would check).
struct AccountState {
  int64_t balance = 0;
  uint64_t sequence = 0;
  bool operator==(const AccountState&) const = default;
};

/// Sentinel for Op::require_sequence: no nonce check.
inline constexpr uint64_t kAnySequence = UINT64_MAX;

/// One account's effect within one transaction: the amount it must pay
/// (checked and reserved at prepare) and the amount it receives (applied at
/// commit). An account appearing on both sides of a transfer carries both.
struct Op {
  chain::AccountId account = chain::kInvalidAccount;
  int64_t debit = 0;
  int64_t credit = 0;
  /// When != kAnySequence, staging fails unless the account's committed
  /// sequence number matches (bad nonce -> deterministic abort).
  uint64_t require_sequence = kAnySequence;
  bool operator==(const Op&) const = default;
};

/// Configuration of the account-state backend, carried inside EngineConfig.
/// Disabled by default: the engine then executes the pure cost model
/// exactly as before this subsystem existed.
struct StateConfig {
  bool enabled = false;
  /// Balance an account is funded with when first touched (lazy creation;
  /// workload generators expose the matching knob so streams execute
  /// without mass aborts).
  int64_t initial_balance = 1'000'000;
  /// λ work units charged to a shard per account record it sends or
  /// receives when an allocation install migrates state (the real cost a
  /// mapping edit never had).
  double migration_work_per_account = 1.0;
};

}  // namespace txallo::state

#include "txallo/state/merkle.h"

namespace txallo::state {

MerkleTrie::MerkleTrie() = default;

void MerkleTrie::Update(uint32_t key, const Sha256Digest& leaf) {
  if (root_ == nullptr) root_ = std::make_unique<Node>();
  Node* node = root_.get();
  node->dirty = true;
  for (int d = 0; d < kDepth; ++d) {
    std::unique_ptr<Node>& child = node->children[NibbleAt(key, d)];
    const bool created = child == nullptr;
    if (created) child = std::make_unique<Node>();
    node = child.get();
    node->dirty = true;
    if (d == kDepth - 1 && created) ++size_;
  }
  // The leaf's digest is caller-supplied; only interior nodes rehash.
  node->hash = leaf;
  node->dirty = false;
}

bool MerkleTrie::RemoveRec(Node* node, uint32_t key, int depth,
                           bool* removed) {
  if (depth == kDepth) {
    *removed = true;
    return true;
  }
  std::unique_ptr<Node>& child = node->children[NibbleAt(key, depth)];
  if (child == nullptr) return false;
  if (RemoveRec(child.get(), key, depth + 1, removed)) child.reset();
  if (!*removed) return false;
  node->dirty = true;
  for (const std::unique_ptr<Node>& c : node->children) {
    if (c != nullptr) return false;
  }
  return true;
}

bool MerkleTrie::Remove(uint32_t key) {
  if (root_ == nullptr) return false;
  bool removed = false;
  if (RemoveRec(root_.get(), key, 0, &removed)) root_.reset();
  if (removed) --size_;
  return removed;
}

void MerkleTrie::Rehash(Node* node) {
  uint16_t bitmap = 0;
  for (int i = 0; i < kFanout; ++i) {
    if (node->children[static_cast<size_t>(i)] != nullptr) {
      bitmap = static_cast<uint16_t>(bitmap | (1u << i));
    }
  }
  Sha256 hasher;
  const uint8_t bitmap_bytes[2] = {static_cast<uint8_t>(bitmap & 0xff),
                                   static_cast<uint8_t>(bitmap >> 8)};
  hasher.Update(bitmap_bytes, sizeof(bitmap_bytes));
  for (int i = 0; i < kFanout; ++i) {
    Node* child = node->children[static_cast<size_t>(i)].get();
    if (child == nullptr) continue;
    if (child->dirty) Rehash(child);
    hasher.Update(child->hash.data(), child->hash.size());
  }
  node->hash = hasher.Finish();
  node->dirty = false;
}

const Sha256Digest& MerkleTrie::Root() {
  if (root_ == nullptr) return empty_root_;
  if (root_->dirty) Rehash(root_.get());
  return root_->hash;
}

}  // namespace txallo::state

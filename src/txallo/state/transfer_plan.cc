#include "txallo/state/transfer_plan.h"

#include <algorithm>
#include <map>

namespace txallo::state {

int64_t TransferAmount(uint64_t seq) {
  return 1 + static_cast<int64_t>(seq % 7);
}

std::vector<Op> BuildTransferOps(const chain::Transaction& tx, uint64_t seq) {
  const int64_t amount = TransferAmount(seq);
  // Ordered map: the result must come out sorted by account id regardless
  // of the input/output orderings.
  std::map<chain::AccountId, Op> by_account;
  auto op_for = [&](chain::AccountId account) -> Op& {
    Op& op = by_account[account];
    op.account = account;
    return op;
  };
  int64_t pot = 0;
  for (chain::AccountId a : tx.inputs()) {
    op_for(a).debit += amount;
    pot += amount;
  }
  const std::vector<chain::AccountId>& outputs = tx.outputs();
  if (!outputs.empty()) {
    const int64_t n = static_cast<int64_t>(outputs.size());
    const int64_t base = pot / n;
    for (chain::AccountId a : outputs) op_for(a).credit += base;
    op_for(outputs.front()).credit += pot - base * n;
  }
  std::vector<Op> ops;
  ops.reserve(by_account.size());
  for (const auto& [account, op] : by_account) ops.push_back(op);
  return ops;
}

}  // namespace txallo::state

// Initial partitioning of the coarsest graph: deterministic greedy graph
// growing. Regions are grown from high-weight seeds by absorbing the
// boundary node with the strongest connection until the region reaches its
// vertex-weight budget; leftover nodes go to the lightest part.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/baselines/metis/metis_graph.h"

namespace txallo::baselines::metis {

/// Partitions `graph` into `num_parts` parts. Returns part[v] for every v.
std::vector<uint32_t> GreedyGrowPartition(const WorkGraph& graph,
                                          uint32_t num_parts);

/// Edge cut of a partition: total weight of edges whose endpoints lie in
/// different parts.
double EdgeCut(const WorkGraph& graph, const std::vector<uint32_t>& part);

/// Vertex-weight totals per part.
std::vector<double> PartWeights(const WorkGraph& graph,
                                const std::vector<uint32_t>& part,
                                uint32_t num_parts);

}  // namespace txallo::baselines::metis

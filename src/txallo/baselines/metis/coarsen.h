// Coarsening phase: deterministic heavy-edge matching (HEM). Pairs of
// nodes joined by the heaviest incident edge are contracted into one coarse
// node; edge weights between coarse nodes are accumulated; intra-pair
// weight disappears (it can never be cut again at coarser levels).
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/baselines/metis/metis_graph.h"

namespace txallo::baselines::metis {

/// Result of one coarsening step.
struct CoarsenStep {
  WorkGraph coarse;
  /// fine node -> coarse node.
  std::vector<uint32_t> projection;
};

/// One heavy-edge-matching contraction. Deterministic: nodes are visited in
/// ascending id order; the match is the unmatched neighbor with the maximum
/// edge weight (ties toward the smaller id).
CoarsenStep CoarsenOnce(const WorkGraph& fine);

/// Full coarsening chain: contracts until the graph has at most
/// `target_nodes` nodes or a step shrinks the graph by less than 10%.
/// Returns all levels' projections (finest first) and the coarsest graph.
struct CoarsenChain {
  WorkGraph coarsest;
  std::vector<std::vector<uint32_t>> projections;  // Finest level first.
};
CoarsenChain CoarsenToTarget(WorkGraph finest, size_t target_nodes);

}  // namespace txallo::baselines::metis

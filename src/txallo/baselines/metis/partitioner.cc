#include "txallo/baselines/metis/partitioner.h"

#include <algorithm>

#include "txallo/baselines/metis/coarsen.h"
#include "txallo/baselines/metis/initial.h"
#include "txallo/common/stopwatch.h"

namespace txallo::baselines::metis {

Result<alloc::Allocation> PartitionGraph(const graph::TransactionGraph& graph,
                                         uint32_t num_shards,
                                         const PartitionOptions& options,
                                         PartitionInfo* info) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (!graph.consolidated()) {
    return Status::FailedPrecondition(
        "transaction graph must be consolidated before partitioning");
  }
  Stopwatch watch;
  PartitionInfo local;

  WorkGraph finest =
      WorkGraph::FromTransactionGraph(graph, options.weighting);
  const size_t n = finest.num_nodes();

  const size_t target = std::max<size_t>(
      static_cast<size_t>(options.coarsest_factor) * num_shards,
      options.coarsest_min);
  CoarsenChain chain = CoarsenToTarget(finest, target);
  local.levels = static_cast<int>(chain.projections.size()) + 1;

  // Initial partition on the coarsest level + refine there.
  std::vector<uint32_t> part =
      GreedyGrowPartition(chain.coarsest, num_shards);
  RefineOptions refine = options.refine;
  refine.imbalance = options.imbalance;
  RefinePartition(chain.coarsest, num_shards, refine, &part);

  // Uncoarsen: project the partition down and refine at each finer level.
  // Levels between the finest and coarsest need their WorkGraphs again;
  // rebuild them on the way down by re-coarsening is wasteful, so we keep
  // it simple: project all the way to the finest graph and refine there.
  // (Classic METIS refines per level; for the graph sizes here one strong
  // finest-level refinement reaches the same cut regime, and the ablation
  // bench quantifies it.)
  std::vector<uint32_t> fine_part(n);
  {
    // Compose projections: finest node -> coarsest node.
    std::vector<uint32_t> to_coarsest(n);
    for (size_t v = 0; v < n; ++v) to_coarsest[v] = static_cast<uint32_t>(v);
    for (const std::vector<uint32_t>& proj : chain.projections) {
      for (size_t v = 0; v < n; ++v) to_coarsest[v] = proj[to_coarsest[v]];
    }
    for (size_t v = 0; v < n; ++v) fine_part[v] = part[to_coarsest[v]];
  }
  local.edge_cut = RefinePartition(finest, num_shards, refine, &fine_part);

  alloc::Allocation allocation(n, num_shards);
  for (size_t v = 0; v < n; ++v) {
    allocation.Assign(static_cast<chain::AccountId>(v), fine_part[v]);
  }
  local.total_seconds = watch.ElapsedSeconds();
  if (info != nullptr) *info = local;
  TXALLO_RETURN_NOT_OK(allocation.Validate());
  return allocation;
}

}  // namespace txallo::baselines::metis

// Refinement phase: greedy boundary Kernighan-Lin / Fiduccia-Mattheyses
// moves. After each uncoarsening step, boundary nodes are moved to the
// neighboring part that most reduces the edge cut, subject to the vertex-
// weight balance constraint — METIS's notion of balance, which the TxAllo
// paper contrasts with workload balance (§II-C).
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/baselines/metis/metis_graph.h"

namespace txallo::baselines::metis {

struct RefineOptions {
  /// A part may not exceed imbalance * (total_weight / k) after a move
  /// (METIS's default tolerance is 1.03).
  double imbalance = 1.03;
  /// Max refinement passes per level.
  int max_passes = 8;
  /// Stop a pass early when its cut improvement falls below this fraction
  /// of the current cut.
  double min_relative_gain = 1e-4;
};

/// Refines `part` in place; returns the final edge cut.
double RefinePartition(const WorkGraph& graph, uint32_t num_parts,
                       const RefineOptions& options,
                       std::vector<uint32_t>* part);

}  // namespace txallo::baselines::metis

// METIS-style multilevel k-way graph partitioner (from scratch), standing
// in for the METIS package used by Fynn et al. [17], Mizrahi et al. [18]
// and BrokerChain [19] as the backbone allocator (paper §II-C).
//
// Pipeline: heavy-edge-matching coarsening -> greedy graph growing on the
// coarsest level -> uncoarsen with boundary KL/FM refinement per level.
// Objective: minimize edge cut under a vertex-weight balance constraint.
// Deliberately NOT η-aware and NOT workload-aware — that is exactly the
// gap TxAllo's evaluation demonstrates.
#pragma once

#include <cstdint>

#include "txallo/alloc/allocation.h"
#include "txallo/baselines/metis/metis_graph.h"
#include "txallo/baselines/metis/refine.h"
#include "txallo/common/status.h"
#include "txallo/graph/graph.h"

namespace txallo::baselines::metis {

struct PartitionOptions {
  /// What the balance constraint balances (prior works: unit weights).
  VertexWeighting weighting = VertexWeighting::kUnitWeight;
  /// Vertex-weight balance tolerance (1.03 = METIS default).
  double imbalance = 1.03;
  /// Coarsening stops at max(coarsest_factor * k, coarsest_min) nodes.
  uint32_t coarsest_factor = 30;
  uint32_t coarsest_min = 2000;
  RefineOptions refine;
};

struct PartitionInfo {
  double total_seconds = 0.0;
  double edge_cut = 0.0;
  int levels = 0;
};

/// Partitions the accounts of `graph` into `num_shards` parts.
Result<alloc::Allocation> PartitionGraph(const graph::TransactionGraph& graph,
                                         uint32_t num_shards,
                                         const PartitionOptions& options = {},
                                         PartitionInfo* info = nullptr);

}  // namespace txallo::baselines::metis

// Internal working graph of the METIS-style multilevel partitioner: CSR
// with integer-free (double) vertex and edge weights, plus the fine->coarse
// projection of each level. Self-loops are dropped — they never contribute
// to the edge cut.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/graph/graph.h"

namespace txallo::baselines::metis {

/// What the balance constraint balances. The prior works the paper
/// criticizes run METIS over the account graph with unit vertex weights
/// (balancing account counts) — which is exactly why their "balance" is
/// not workload balance (§II-C). kIncidentWeight is the strongest
/// weight-proxy variant; the ablation bench compares both.
enum class VertexWeighting {
  kUnitWeight = 0,      // weight(v) = 1 (account count balance).
  kIncidentWeight = 1,  // weight(v) = strength + self-loop.
};

/// One level of the multilevel hierarchy.
struct WorkGraph {
  std::vector<size_t> offsets;     // CSR offsets, size n+1.
  std::vector<uint32_t> neighbors;
  std::vector<double> edge_weights;
  std::vector<double> vertex_weights;
  double total_vertex_weight = 0.0;

  size_t num_nodes() const { return vertex_weights.size(); }

  /// Builds the finest level from a consolidated transaction graph.
  static WorkGraph FromTransactionGraph(
      const graph::TransactionGraph& g,
      VertexWeighting weighting = VertexWeighting::kUnitWeight);
};

}  // namespace txallo::baselines::metis

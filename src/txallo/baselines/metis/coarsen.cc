#include "txallo/baselines/metis/coarsen.h"

#include <algorithm>

namespace txallo::baselines::metis {

WorkGraph WorkGraph::FromTransactionGraph(const graph::TransactionGraph& g,
                                          VertexWeighting weighting) {
  WorkGraph out;
  const size_t n = g.num_nodes();
  out.offsets.resize(n + 1, 0);
  out.vertex_weights.resize(n);
  for (size_t v = 0; v < n; ++v) {
    const auto id = static_cast<graph::NodeId>(v);
    out.offsets[v + 1] = out.offsets[v] + g.Neighbors(id).size();
    out.vertex_weights[v] = weighting == VertexWeighting::kIncidentWeight
                                ? g.Strength(id) + g.SelfLoop(id)
                                : 1.0;
    out.total_vertex_weight += out.vertex_weights[v];
  }
  out.neighbors.resize(out.offsets[n]);
  out.edge_weights.resize(out.offsets[n]);
  for (size_t v = 0; v < n; ++v) {
    size_t pos = out.offsets[v];
    for (const graph::Neighbor& nb : g.Neighbors(static_cast<graph::NodeId>(v))) {
      out.neighbors[pos] = nb.node;
      out.edge_weights[pos] = nb.weight;
      ++pos;
    }
  }
  return out;
}

CoarsenStep CoarsenOnce(const WorkGraph& fine) {
  const size_t n = fine.num_nodes();
  constexpr uint32_t kUnmatched = UINT32_MAX;
  std::vector<uint32_t> match(n, kUnmatched);

  // Deterministic HEM: ascending id order, heaviest unmatched neighbor.
  for (uint32_t v = 0; v < n; ++v) {
    if (match[v] != kUnmatched) continue;
    uint32_t best = kUnmatched;
    double best_weight = -1.0;
    for (size_t e = fine.offsets[v]; e < fine.offsets[v + 1]; ++e) {
      const uint32_t u = fine.neighbors[e];
      if (match[u] != kUnmatched || u == v) continue;
      const double w = fine.edge_weights[e];
      if (w > best_weight || (w == best_weight && u < best)) {
        best = u;
        best_weight = w;
      }
    }
    if (best == kUnmatched) {
      match[v] = v;  // Singleton.
    } else {
      match[v] = best;
      match[best] = v;
    }
  }

  // Number coarse nodes: one per matched pair / singleton, in the order of
  // the smaller endpoint.
  CoarsenStep step;
  step.projection.assign(n, kUnmatched);
  uint32_t next = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (step.projection[v] != kUnmatched) continue;
    step.projection[v] = next;
    if (match[v] != v) step.projection[match[v]] = next;
    ++next;
  }

  // Build the coarse graph.
  WorkGraph& coarse = step.coarse;
  coarse.vertex_weights.assign(next, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    coarse.vertex_weights[step.projection[v]] += fine.vertex_weights[v];
  }
  coarse.total_vertex_weight = fine.total_vertex_weight;

  std::vector<std::vector<std::pair<uint32_t, double>>> rows(next);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t cv = step.projection[v];
    for (size_t e = fine.offsets[v]; e < fine.offsets[v + 1]; ++e) {
      const uint32_t cu = step.projection[fine.neighbors[e]];
      if (cu == cv) continue;  // Contracted or self edge: not cuttable.
      rows[cv].emplace_back(cu, fine.edge_weights[e]);
    }
  }
  coarse.offsets.assign(next + 1, 0);
  for (uint32_t c = 0; c < next; ++c) {
    auto& row = rows[c];
    std::sort(row.begin(), row.end());
    size_t w = 0;
    for (size_t r = 0; r < row.size(); ++r) {
      if (w > 0 && row[w - 1].first == row[r].first) {
        row[w - 1].second += row[r].second;
      } else {
        row[w++] = row[r];
      }
    }
    row.resize(w);
    coarse.offsets[c + 1] = coarse.offsets[c] + w;
  }
  coarse.neighbors.resize(coarse.offsets[next]);
  coarse.edge_weights.resize(coarse.offsets[next]);
  for (uint32_t c = 0; c < next; ++c) {
    size_t pos = coarse.offsets[c];
    for (const auto& [u, w] : rows[c]) {
      coarse.neighbors[pos] = u;
      coarse.edge_weights[pos] = w;
      ++pos;
    }
  }
  return step;
}

CoarsenChain CoarsenToTarget(WorkGraph finest, size_t target_nodes) {
  CoarsenChain chain;
  WorkGraph current = std::move(finest);
  while (current.num_nodes() > target_nodes) {
    CoarsenStep step = CoarsenOnce(current);
    const size_t before = current.num_nodes();
    const size_t after = step.coarse.num_nodes();
    if (after >= before || (before - after) < before / 10) {
      // Matching stalled (e.g. star graphs); stop coarsening here.
      break;
    }
    chain.projections.push_back(std::move(step.projection));
    current = std::move(step.coarse);
  }
  chain.coarsest = std::move(current);
  return chain;
}

}  // namespace txallo::baselines::metis

#include "txallo/baselines/metis/initial.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace txallo::baselines::metis {

std::vector<uint32_t> GreedyGrowPartition(const WorkGraph& graph,
                                          uint32_t num_parts) {
  const size_t n = graph.num_nodes();
  constexpr uint32_t kUnassigned = UINT32_MAX;
  std::vector<uint32_t> part(n, kUnassigned);
  if (num_parts == 0) return part;
  if (num_parts == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  const double budget = graph.total_vertex_weight /
                        static_cast<double>(num_parts);
  std::vector<double> part_weight(num_parts, 0.0);

  // Seeds: nodes in descending vertex-weight order (ties by id).
  std::vector<uint32_t> by_weight(n);
  std::iota(by_weight.begin(), by_weight.end(), 0);
  std::sort(by_weight.begin(), by_weight.end(), [&](uint32_t a, uint32_t b) {
    if (graph.vertex_weights[a] != graph.vertex_weights[b]) {
      return graph.vertex_weights[a] > graph.vertex_weights[b];
    }
    return a < b;
  });
  size_t seed_cursor = 0;

  // connection[v] = accumulated edge weight from v to the region being
  // grown; reused across regions via an epoch stamp.
  std::vector<double> connection(n, 0.0);
  std::vector<uint32_t> epoch(n, 0);
  uint32_t current_epoch = 0;

  for (uint32_t p = 0; p + 1 < num_parts; ++p) {
    ++current_epoch;
    // Max-heap of (connection weight, node); stale entries are skipped.
    std::priority_queue<std::pair<double, uint32_t>> frontier;

    // Seed with the heaviest unassigned node.
    while (seed_cursor < n && part[by_weight[seed_cursor]] != kUnassigned) {
      ++seed_cursor;
    }
    if (seed_cursor >= n) break;
    frontier.emplace(1.0, by_weight[seed_cursor]);

    while (part_weight[p] < budget && !frontier.empty()) {
      auto [w, v] = frontier.top();
      frontier.pop();
      if (part[v] != kUnassigned) continue;
      if (epoch[v] == current_epoch && connection[v] > w) {
        continue;  // Stale entry: a stronger connection was pushed later.
      }
      part[v] = p;
      part_weight[p] += graph.vertex_weights[v];
      for (size_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
        const uint32_t u = graph.neighbors[e];
        if (part[u] != kUnassigned) continue;
        if (epoch[u] != current_epoch) {
          epoch[u] = current_epoch;
          connection[u] = 0.0;
        }
        connection[u] += graph.edge_weights[e];
        frontier.emplace(connection[u], u);
      }
    }
  }

  // Everything left belongs to the last part... unless that unbalances it;
  // pour leftovers into the lightest part, heaviest nodes first.
  std::vector<uint32_t> leftovers;
  for (uint32_t v = 0; v < n; ++v) {
    if (part[v] == kUnassigned) leftovers.push_back(v);
  }
  std::sort(leftovers.begin(), leftovers.end(), [&](uint32_t a, uint32_t b) {
    if (graph.vertex_weights[a] != graph.vertex_weights[b]) {
      return graph.vertex_weights[a] > graph.vertex_weights[b];
    }
    return a < b;
  });
  for (uint32_t v : leftovers) {
    uint32_t lightest = 0;
    for (uint32_t p = 1; p < num_parts; ++p) {
      if (part_weight[p] < part_weight[lightest]) lightest = p;
    }
    part[v] = lightest;
    part_weight[lightest] += graph.vertex_weights[v];
  }
  return part;
}

double EdgeCut(const WorkGraph& graph, const std::vector<uint32_t>& part) {
  double cut = 0.0;
  for (uint32_t v = 0; v < graph.num_nodes(); ++v) {
    for (size_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
      const uint32_t u = graph.neighbors[e];
      if (u > v && part[u] != part[v]) cut += graph.edge_weights[e];
    }
  }
  return cut;
}

std::vector<double> PartWeights(const WorkGraph& graph,
                                const std::vector<uint32_t>& part,
                                uint32_t num_parts) {
  std::vector<double> weights(num_parts, 0.0);
  for (uint32_t v = 0; v < graph.num_nodes(); ++v) {
    weights[part[v]] += graph.vertex_weights[v];
  }
  return weights;
}

}  // namespace txallo::baselines::metis

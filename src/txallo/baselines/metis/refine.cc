#include "txallo/baselines/metis/refine.h"

#include <algorithm>

#include "txallo/baselines/metis/initial.h"

namespace txallo::baselines::metis {

double RefinePartition(const WorkGraph& graph, uint32_t num_parts,
                       const RefineOptions& options,
                       std::vector<uint32_t>* part_ptr) {
  std::vector<uint32_t>& part = *part_ptr;
  const size_t n = graph.num_nodes();
  std::vector<double> part_weight = PartWeights(graph, part, num_parts);
  const double cap = options.imbalance *
                     (graph.total_vertex_weight /
                      static_cast<double>(num_parts));

  double cut = EdgeCut(graph, part);
  // Scratch per-part connection weights with a touched list.
  std::vector<double> weight_to(num_parts, 0.0);
  std::vector<uint32_t> touched;
  touched.reserve(32);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    double pass_gain = 0.0;
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t from = part[v];
      touched.clear();
      bool boundary = false;
      for (size_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
        const uint32_t p = part[graph.neighbors[e]];
        if (p != from) boundary = true;
        if (weight_to[p] == 0.0) touched.push_back(p);
        weight_to[p] += graph.edge_weights[e];
      }
      if (!boundary) {
        for (uint32_t p : touched) weight_to[p] = 0.0;
        continue;
      }
      // Gain of moving v from `from` to p: w(v->p) - w(v->from).
      uint32_t best = from;
      double best_gain = 0.0;
      for (uint32_t p : touched) {
        if (p == from) continue;
        if (part_weight[p] + graph.vertex_weights[v] > cap) continue;
        const double gain = weight_to[p] - weight_to[from];
        if (gain > best_gain + 1e-15) {
          best = p;
          best_gain = gain;
        } else if (gain >= best_gain - 1e-15 && best != from && p < best) {
          best = p;
        }
      }
      if (best != from && best_gain > 0.0) {
        part[v] = best;
        part_weight[from] -= graph.vertex_weights[v];
        part_weight[best] += graph.vertex_weights[v];
        cut -= best_gain;
        pass_gain += best_gain;
      }
      for (uint32_t p : touched) weight_to[p] = 0.0;
    }
    if (cut <= 0.0 || pass_gain < options.min_relative_gain * (cut + 1e-12)) {
      break;
    }
  }
  return cut;
}

}  // namespace txallo::baselines::metis

// Shard Scheduler (Król et al., AFT'21) — the transaction-level allocation
// baseline (paper §II-C): instead of a periodic global partition, accounts
// are placed and migrated one transaction at a time.
//
// Behaviour reproduced from the description the TxAllo paper evaluates:
//  * a newly seen account is placed in the least-loaded shard that keeps
//    the placement within the load buffer (buffer ratio 1 in the paper's
//    setting, i.e. at most the current average load);
//  * when a transaction spans shards, an involved account migrates toward
//    the shard it historically interacts with most, provided the benefit
//    criterion and the load buffer allow it;
//  * per-shard load counts intra work 1 and cross work η per involved
//    shard, exactly like the σ_i definition.
// Consequences (all visible in the paper's figures): near-perfect workload
// balance (Fig. 3/4c), best worst-case latency (Fig. 7), higher γ than the
// graph-based methods (Fig. 2), and by far the largest total running time
// (Fig. 8's right-hand axis) since it touches every transaction.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/params.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"

namespace txallo::baselines {

struct ShardSchedulerOptions {
  /// Load buffer ratio: a shard can accept placements/migrations while its
  /// load <= buffer_ratio * average load. The paper's comparison sets 1.
  double buffer_ratio = 1.0;
  /// An account migrates only when its interaction weight with the target
  /// shard exceeds its weight with the current shard by this factor.
  double migration_benefit = 1.5;
  /// Per-account interaction history is capped to this many shard entries
  /// (LRU-by-weight), bounding memory like the original system.
  int max_tracked_shards = 4;
};

struct ShardSchedulerInfo {
  double total_seconds = 0.0;
  uint64_t transactions_processed = 0;
  uint64_t migrations = 0;
  uint64_t placements = 0;
};

/// Streaming allocator. Feed transactions in ledger order; the mapping is
/// always complete over the accounts seen so far.
class ShardScheduler {
 public:
  ShardScheduler(uint32_t num_shards, double eta,
                 ShardSchedulerOptions options = {});

  /// Processes one transaction: places unseen accounts, considers
  /// migrations, and accounts the load.
  void Process(const chain::Transaction& tx);

  /// Processes a whole ledger (fills `info` if given).
  void ProcessLedger(const chain::Ledger& ledger,
                     ShardSchedulerInfo* info = nullptr);

  /// Snapshot of the current mapping over `num_accounts` accounts (accounts
  /// never seen in any transaction are placed round-robin into the
  /// least-loaded shards so the mapping validates).
  alloc::Allocation SnapshotAllocation(size_t num_accounts) const;

  const std::vector<double>& shard_loads() const { return load_; }
  uint64_t migrations() const { return migrations_; }
  uint64_t placements() const { return placements_; }

 private:
  struct ShardAffinity {
    alloc::ShardId shard;
    double weight;
  };

  alloc::ShardId LeastLoadedShard() const;
  // Least-loaded shard among `candidates` that respects the buffer; falls
  // back to the global least-loaded shard.
  alloc::ShardId PlaceNewAccount(const std::vector<alloc::ShardId>& involved);
  void RecordAffinity(chain::AccountId account, alloc::ShardId shard,
                      double weight);
  double AffinityTo(chain::AccountId account, alloc::ShardId shard) const;
  // A candidate migration: where `account` would move and how strongly the
  // benefit criterion favors it. target == kUnassignedShard means "stay".
  struct MigrationPlan {
    alloc::ShardId target = alloc::kUnassignedShard;
    double benefit = 0.0;
  };
  MigrationPlan BestMigration(chain::AccountId account) const;

  uint32_t num_shards_;
  double eta_;
  ShardSchedulerOptions options_;

  std::vector<alloc::ShardId> shard_of_;            // Per account.
  std::vector<std::vector<ShardAffinity>> affinity_;  // Per account, capped.
  std::vector<double> load_;                        // Per shard.
  double total_load_ = 0.0;
  uint64_t migrations_ = 0;
  uint64_t placements_ = 0;
  uint64_t transactions_ = 0;
};

}  // namespace txallo::baselines

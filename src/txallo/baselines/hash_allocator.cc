#include "txallo/baselines/hash_allocator.h"

#include "txallo/common/sha256.h"

namespace txallo::baselines {

alloc::Allocation AllocateByHash(const chain::AccountRegistry& registry,
                                 uint32_t num_shards) {
  alloc::Allocation allocation(registry.size(), num_shards);
  for (size_t a = 0; a < registry.size(); ++a) {
    const auto id = static_cast<chain::AccountId>(a);
    allocation.Assign(id, static_cast<alloc::ShardId>(registry.OrderKey(id) %
                                                      num_shards));
  }
  return allocation;
}

alloc::Allocation AllocateByHash(size_t num_accounts, uint32_t num_shards) {
  alloc::Allocation allocation(num_accounts, num_shards);
  for (size_t a = 0; a < num_accounts; ++a) {
    allocation.Assign(
        static_cast<chain::AccountId>(a),
        static_cast<alloc::ShardId>(
            Sha256::Hash64(static_cast<uint64_t>(a)) % num_shards));
  }
  return allocation;
}

}  // namespace txallo::baselines

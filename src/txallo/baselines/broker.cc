#include "txallo/baselines/broker.h"

#include <algorithm>
#include <numeric>

#include "txallo/common/math.h"

namespace txallo::baselines {

using alloc::kUnassignedShard;
using alloc::ShardId;
using chain::AccountId;

std::vector<AccountId> SelectBrokersByActivity(
    const graph::TransactionGraph& graph, uint32_t num_brokers) {
  const size_t n = graph.num_nodes();
  std::vector<AccountId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  const size_t take = std::min<size_t>(num_brokers, n);
  std::partial_sort(
      ids.begin(), ids.begin() + take, ids.end(),
      [&graph](AccountId a, AccountId b) {
        const double wa = graph.Strength(a) + graph.SelfLoop(a);
        const double wb = graph.Strength(b) + graph.SelfLoop(b);
        if (wa != wb) return wa > wb;
        return a < b;
      });
  ids.resize(take);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<alloc::EvaluationReport> EvaluateWithBrokers(
    const std::vector<chain::Transaction>& transactions,
    const alloc::Allocation& allocation,
    const alloc::AllocationParams& params,
    const std::vector<AccountId>& brokers, const BrokerOptions& options) {
  TXALLO_RETURN_NOT_OK(params.Validate());
  if (options.broker_cross_cost < 0.0) {
    return Status::InvalidArgument("broker_cross_cost must be >= 0");
  }

  auto is_broker = [&brokers](AccountId a) {
    return std::binary_search(brokers.begin(), brokers.end(), a);
  };

  std::vector<double> sigma(params.num_shards, 0.0);
  std::vector<double> uncapped(params.num_shards, 0.0);
  std::vector<ShardId> shards;
  uint64_t total = 0, brokered = 0;
  double mu_sum = 0.0;
  double extra_latency_weight = 0.0;  // Σ over txs of broker hop latency.

  for (const chain::Transaction& tx : transactions) {
    ++total;
    shards.clear();
    for (AccountId a : tx.accounts()) {
      if (is_broker(a)) continue;  // Replicated everywhere: no routing pin.
      const ShardId s = a < allocation.num_accounts()
                            ? allocation.shard_of(a)
                            : kUnassignedShard;
      if (s == kUnassignedShard) {
        return Status::FailedPrecondition(
            "transaction references unassigned account " +
            std::to_string(a));
      }
      if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
        shards.push_back(s);
      }
    }
    if (shards.empty()) shards.push_back(0);  // All-broker transaction.
    const uint32_t mu = static_cast<uint32_t>(shards.size());
    mu_sum += mu;
    if (mu <= 1) {
      sigma[shards[0]] += 1.0;
      uncapped[shards[0]] += 1.0;
    } else {
      ++brokered;
      const double share = 1.0 / static_cast<double>(mu);
      for (ShardId s : shards) {
        sigma[s] += options.broker_cross_cost;
        uncapped[s] += share;
      }
      extra_latency_weight += options.broker_latency_blocks;
    }
  }

  alloc::EvaluationReport report;
  report.total_transactions = total;
  report.cross_shard_transactions = brokered;
  report.num_shards = params.num_shards;
  if (total > 0) {
    report.cross_shard_ratio =
        static_cast<double>(brokered) / static_cast<double>(total);
    report.mean_shards_per_tx = mu_sum / static_cast<double>(total);
  }
  report.shard_workloads = sigma;
  report.normalized_workloads.resize(params.num_shards);
  double latency_sum = 0.0, throughput = 0.0, worst = 1.0;
  for (uint32_t s = 0; s < params.num_shards; ++s) {
    report.normalized_workloads[s] =
        params.capacity > 0.0 ? sigma[s] / params.capacity : 0.0;
    throughput += ClampThroughput(uncapped[s], sigma[s], params.capacity);
    latency_sum += AverageLatencyBlocks(sigma[s], params.capacity);
    worst = std::max(worst, WorstCaseLatencyBlocks(sigma[s], params.capacity));
  }
  report.workload_stddev = PopulationStdDev(report.shard_workloads);
  report.normalized_workload_stddev =
      params.capacity > 0.0 ? report.workload_stddev / params.capacity : 0.0;
  report.throughput = throughput;
  report.normalized_throughput =
      params.capacity > 0.0 ? throughput / params.capacity : 0.0;
  // Queueing latency plus the brokered transactions' extra relay hop,
  // amortized over all transactions.
  report.avg_latency_blocks =
      latency_sum / static_cast<double>(params.num_shards) +
      (total > 0 ? extra_latency_weight / static_cast<double>(total) : 0.0);
  report.worst_latency_blocks = worst + options.broker_latency_blocks;
  return report;
}

Result<alloc::EvaluationReport> EvaluateWithBrokers(
    const chain::Ledger& ledger, const alloc::Allocation& allocation,
    const alloc::AllocationParams& params,
    const std::vector<AccountId>& brokers, const BrokerOptions& options) {
  return EvaluateWithBrokers(ledger.AllTransactions(), allocation, params,
                             brokers, options);
}

}  // namespace txallo::baselines

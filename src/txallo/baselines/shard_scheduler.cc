#include "txallo/baselines/shard_scheduler.h"

#include <algorithm>

#include "txallo/common/stopwatch.h"

namespace txallo::baselines {

using alloc::kUnassignedShard;
using alloc::ShardId;
using chain::AccountId;

ShardScheduler::ShardScheduler(uint32_t num_shards, double eta,
                               ShardSchedulerOptions options)
    : num_shards_(num_shards),
      eta_(eta),
      options_(options),
      load_(num_shards, 0.0) {}

ShardId ShardScheduler::LeastLoadedShard() const {
  ShardId best = 0;
  for (ShardId s = 1; s < num_shards_; ++s) {
    if (load_[s] < load_[best]) best = s;
  }
  return best;
}

ShardId ShardScheduler::PlaceNewAccount(
    const std::vector<ShardId>& involved) {
  const double avg = total_load_ / static_cast<double>(num_shards_);
  const double cap = options_.buffer_ratio * avg;
  // Prefer a shard already involved in this transaction (keeps the
  // transaction intra) when the buffer allows it.
  ShardId best = kUnassignedShard;
  for (ShardId s : involved) {
    if (load_[s] <= cap && (best == kUnassignedShard ||
                            load_[s] < load_[best] ||
                            (load_[s] == load_[best] && s < best))) {
      best = s;
    }
  }
  if (best != kUnassignedShard) return best;
  return LeastLoadedShard();
}

void ShardScheduler::RecordAffinity(AccountId account, ShardId shard,
                                    double weight) {
  std::vector<ShardAffinity>& entries = affinity_[account];
  for (ShardAffinity& e : entries) {
    if (e.shard == shard) {
      e.weight += weight;
      return;
    }
  }
  if (entries.size() <
      static_cast<size_t>(options_.max_tracked_shards)) {
    entries.push_back({shard, weight});
    return;
  }
  // Evict the weakest tracked shard if the newcomer beats it.
  size_t weakest = 0;
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].weight < entries[weakest].weight) weakest = i;
  }
  if (entries[weakest].weight < weight) {
    entries[weakest] = {shard, weight};
  }
}

double ShardScheduler::AffinityTo(AccountId account, ShardId shard) const {
  for (const ShardAffinity& e : affinity_[account]) {
    if (e.shard == shard) return e.weight;
  }
  return 0.0;
}

ShardScheduler::MigrationPlan ShardScheduler::BestMigration(
    AccountId account) const {
  MigrationPlan plan;
  const ShardId current = shard_of_[account];
  const double own = AffinityTo(account, current);
  const double threshold = own * options_.migration_benefit;
  const double avg = total_load_ / static_cast<double>(num_shards_);
  const double cap = options_.buffer_ratio * avg;
  for (const ShardAffinity& e : affinity_[account]) {
    if (e.shard == current) continue;
    if (e.weight <= threshold) continue;
    if (load_[e.shard] > cap) continue;
    const double benefit = e.weight - threshold;
    if (benefit > plan.benefit ||
        (benefit == plan.benefit && plan.target != kUnassignedShard &&
         e.shard < plan.target)) {
      plan.target = e.shard;
      plan.benefit = benefit;
    }
  }
  return plan;
}

void ShardScheduler::Process(const chain::Transaction& tx) {
  ++transactions_;
  const std::vector<AccountId>& accounts = tx.accounts();
  if (accounts.empty()) return;
  const AccountId max_id = accounts.back();
  if (static_cast<size_t>(max_id) >= shard_of_.size()) {
    shard_of_.resize(static_cast<size_t>(max_id) + 1, kUnassignedShard);
    affinity_.resize(static_cast<size_t>(max_id) + 1);
  }

  // Shards already involved via previously placed accounts.
  std::vector<ShardId> involved;
  for (AccountId a : accounts) {
    const ShardId s = shard_of_[a];
    if (s != kUnassignedShard &&
        std::find(involved.begin(), involved.end(), s) == involved.end()) {
      involved.push_back(s);
    }
  }

  // Place unseen accounts.
  for (AccountId a : accounts) {
    if (shard_of_[a] != kUnassignedShard) continue;
    const ShardId s = PlaceNewAccount(involved);
    shard_of_[a] = s;
    ++placements_;
    if (std::find(involved.begin(), involved.end(), s) == involved.end()) {
      involved.push_back(s);
    }
  }

  // Update interaction history: every account accrues affinity to its
  // counterparties' shards. (Not to "all involved shards": an account is
  // itself involved in every one of its transactions, and crediting its own
  // shard at the same rate would make the migration criterion unreachable.)
  for (AccountId a : accounts) {
    for (AccountId b : accounts) {
      if (b != a) RecordAffinity(a, shard_of_[b], 1.0);
    }
  }

  // Cross-shard transactions trigger a migration check. At most ONE account
  // migrates per transaction — the one with the largest benefit (ties to
  // the smaller id). Migrating several at once lets interacting accounts
  // swap shards in tandem and oscillate forever without ever co-locating.
  if (involved.size() > 1) {
    AccountId mover = chain::kInvalidAccount;
    MigrationPlan best;
    for (AccountId a : accounts) {
      MigrationPlan plan = BestMigration(a);
      if (plan.target == kUnassignedShard) continue;
      if (mover == chain::kInvalidAccount || plan.benefit > best.benefit ||
          (plan.benefit == best.benefit && a < mover)) {
        mover = a;
        best = plan;
      }
    }
    if (mover != chain::kInvalidAccount) {
      shard_of_[mover] = best.target;
      ++migrations_;
      involved.clear();
      for (AccountId a : accounts) {
        const ShardId s = shard_of_[a];
        if (std::find(involved.begin(), involved.end(), s) ==
            involved.end()) {
          involved.push_back(s);
        }
      }
    }
  }

  // Account the load: 1 intra unit, or η per involved shard when cross.
  if (involved.size() == 1) {
    load_[involved[0]] += 1.0;
    total_load_ += 1.0;
  } else {
    for (ShardId s : involved) {
      load_[s] += eta_;
      total_load_ += eta_;
    }
  }
}

void ShardScheduler::ProcessLedger(const chain::Ledger& ledger,
                                   ShardSchedulerInfo* info) {
  Stopwatch watch;
  ledger.ForEachTransaction(
      [this](const chain::Transaction& tx) { Process(tx); });
  if (info != nullptr) {
    info->total_seconds = watch.ElapsedSeconds();
    info->transactions_processed = transactions_;
    info->migrations = migrations_;
    info->placements = placements_;
  }
}

alloc::Allocation ShardScheduler::SnapshotAllocation(
    size_t num_accounts) const {
  alloc::Allocation allocation(
      std::max(num_accounts, shard_of_.size()), num_shards_);
  std::vector<double> load = load_;
  for (size_t a = 0; a < allocation.num_accounts(); ++a) {
    ShardId s =
        a < shard_of_.size() ? shard_of_[a] : kUnassignedShard;
    if (s == kUnassignedShard) {
      // Never-transacting account: park it in the least-loaded shard.
      s = 0;
      for (ShardId p = 1; p < num_shards_; ++p) {
        if (load[p] < load[s]) s = p;
      }
    }
    allocation.Assign(static_cast<AccountId>(a), s);
  }
  return allocation;
}

}  // namespace txallo::baselines

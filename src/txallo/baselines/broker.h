// BrokerChain-style broker overlay (Huang et al., INFOCOM'22 — paper
// §II-C): a small set of highly active "broker" accounts is replicated in
// every shard. A transaction whose counterparties include a broker never
// needs cross-shard consensus — the broker's local replica participates in
// whichever shard the other accounts live in. A cross-shard transaction
// between two non-broker accounts is SPLIT by a broker into per-shard
// sub-transactions: each involved shard processes an intra-priced part
// (broker_cross_cost ≈ 1, not η) at the price of an extra routing hop.
//
// BrokerChain's backbone allocation is still METIS; this overlay lets the
// bench harness evaluate "METIS + brokers" against plain TxAllo — the
// fair version of the comparison the paper's related work implies.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/metrics.h"
#include "txallo/alloc/params.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"
#include "txallo/graph/graph.h"

namespace txallo::baselines {

struct BrokerOptions {
  /// How many of the most active accounts become brokers.
  uint32_t num_brokers = 16;
  /// Per-shard workload of one brokered cross-shard sub-transaction
  /// (intra-priced plus broker bookkeeping).
  double broker_cross_cost = 1.2;
  /// Extra confirmation rounds a brokered transaction pays (the broker
  /// relays between the two halves).
  double broker_latency_blocks = 1.0;
};

/// Picks the `num_brokers` most active accounts (by incident weight) of a
/// consolidated transaction graph — BrokerChain recruits brokers from the
/// busiest accounts. Deterministic: ties break toward the smaller id.
std::vector<chain::AccountId> SelectBrokersByActivity(
    const graph::TransactionGraph& graph, uint32_t num_brokers);

/// Evaluates `allocation` with the broker overlay active.
///
/// Semantics per transaction (µ' = distinct shards of NON-broker
/// accounts):
///   µ' <= 1          -> intra: workload 1 in that shard (brokers ride
///                       along for free — they are replicated locally);
///                       all-broker transactions cost 1 in shard 0's
///                       replica set.
///   µ' >  1          -> brokered: each involved shard processes a
///                       sub-transaction of workload broker_cross_cost;
///                       throughput credit stays 1/µ' per shard; latency
///                       gains broker_latency_blocks.
/// The reported cross_shard_ratio counts transactions with µ' > 1 — the
/// ones that would have required cross-shard consensus without brokers.
Result<alloc::EvaluationReport> EvaluateWithBrokers(
    const std::vector<chain::Transaction>& transactions,
    const alloc::Allocation& allocation, const alloc::AllocationParams& params,
    const std::vector<chain::AccountId>& brokers,
    const BrokerOptions& options = {});

/// Ledger convenience overload.
Result<alloc::EvaluationReport> EvaluateWithBrokers(
    const chain::Ledger& ledger, const alloc::Allocation& allocation,
    const alloc::AllocationParams& params,
    const std::vector<chain::AccountId>& brokers,
    const BrokerOptions& options = {});

}  // namespace txallo::baselines

// Hash-based random allocation — the traditional scheme of Chainspace /
// Monoxide / OmniLedger / RapidChain (paper §II-C): an account lives in
// shard SHA256(address) mod k. History-oblivious, so ~ (1 - 1/k) of
// two-account transactions land cross-shard (the paper's 98% at k = 60).
#pragma once

#include <cstdint>

#include "txallo/alloc/allocation.h"
#include "txallo/chain/account.h"

namespace txallo::baselines {

/// Allocates every account of `registry` by SHA256(address) mod k.
/// (The implementation uses the first 64 bits of the digest, which is
/// equivalent modulo the truncation and what OrderKey already caches.)
alloc::Allocation AllocateByHash(const chain::AccountRegistry& registry,
                                 uint32_t num_shards);

/// Id-keyed variant for synthetic account sets without a registry:
/// SHA256(little-endian id) mod k.
alloc::Allocation AllocateByHash(size_t num_accounts, uint32_t num_shards);

}  // namespace txallo::baselines

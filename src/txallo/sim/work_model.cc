#include "txallo/sim/work_model.h"

#include <algorithm>
#include <string>

namespace txallo::sim {

Status RouteTransaction(const chain::Transaction& tx,
                        const alloc::Allocation& allocation,
                        UnassignedPolicy policy,
                        std::vector<alloc::ShardId>* shards) {
  shards->clear();
  for (chain::AccountId a : tx.accounts()) {
    alloc::ShardId s;
    if (allocation.IsAssigned(a)) {
      s = allocation.shard_of(a);
    } else if (policy == UnassignedPolicy::kHashFallback &&
               allocation.num_shards() > 0) {
      s = static_cast<alloc::ShardId>(a % allocation.num_shards());
    } else {
      return Status::FailedPrecondition("unassigned account " +
                                        std::to_string(a) +
                                        " submitted to executor");
    }
    if (std::find(shards->begin(), shards->end(), s) == shards->end()) {
      shards->push_back(s);
    }
  }
  return Status::OK();
}

}  // namespace txallo::sim

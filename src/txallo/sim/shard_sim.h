// Discrete-block sharded-blockchain simulator.
//
// The paper evaluates with the closed-form model of §III-B; this simulator
// executes the same semantics operationally — per-shard FIFO queues,
// capacity λ per block, workload 1/η per intra/cross transaction part, and
// an extra commit round for cross-shard transactions (the additional round
// of consensus §I describes). Integration tests check that its steady-state
// throughput and latency agree with the analytic model, and the examples
// use it to show allocation policies acting on a "running" chain.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/chain/transaction.h"
#include "txallo/common/status.h"
#include "txallo/sim/work_model.h"

namespace txallo::sim {

struct SimConfig {
  uint32_t num_shards = 8;
  /// Workload factor of a cross-shard transaction part.
  double eta = 2.0;
  /// Workload units one shard can process per block.
  double capacity_per_block = 100.0;
  /// Extra commit rounds a cross-shard transaction pays after its last
  /// shard part finishes (the cross-shard consensus round).
  uint32_t cross_shard_commit_rounds = 1;

  /// The shared cost semantics this configuration expresses.
  WorkModel work_model() const {
    return WorkModel{eta, capacity_per_block, cross_shard_commit_rounds};
  }
};

/// Aggregated results of a simulation run.
struct SimReport {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t cross_shard_submitted = 0;
  /// Committed transactions per elapsed block.
  double throughput_per_block = 0.0;
  /// Mean commit latency in blocks (arrival block -> commit block).
  double avg_latency_blocks = 0.0;
  double max_latency_blocks = 0.0;
  /// Mean over shards of (work processed / (capacity * blocks)).
  double mean_utilization = 0.0;
  /// Work still queued when the run ended.
  double residual_work = 0.0;
  uint64_t blocks_elapsed = 0;
};

/// Block-granular simulator. Usage: repeatedly SubmitBlock() + Tick();
/// then DrainAndReport() to flush queues and collect metrics.
class ShardSimulator {
 public:
  explicit ShardSimulator(SimConfig config);

  /// Enqueues one block of transactions routed by `allocation`; every
  /// account must be assigned. Call Tick() afterwards to advance time.
  Status SubmitBlock(const std::vector<chain::Transaction>& transactions,
                     const alloc::Allocation& allocation);

  /// Advances one block: every shard processes up to its capacity.
  void Tick();

  /// Ticks until all queues are empty (bounded by `max_extra_blocks`),
  /// then reports.
  SimReport DrainAndReport(uint64_t max_extra_blocks = 1'000'000);

  /// Report without draining (for mid-run inspection).
  SimReport Snapshot() const;

  uint64_t current_block() const { return now_; }
  double QueuedWork(uint32_t shard) const;

 private:
  struct PendingTx {
    uint64_t arrival_block;
    uint32_t parts_remaining;
    bool cross_shard;
    uint64_t last_part_block = 0;
  };
  struct WorkItem {
    uint64_t tx_index;
    double work_remaining;
  };

  void CommitFinishedParts(uint64_t tx_index);

  SimConfig config_;
  WorkModel model_;
  std::vector<std::deque<WorkItem>> queues_;
  std::vector<double> processed_work_;
  std::vector<PendingTx> txs_;
  // Cross-shard commits scheduled for a future block (extra round).
  std::deque<std::pair<uint64_t, uint64_t>> delayed_commits_;  // (block, tx).
  uint64_t now_ = 0;
  uint64_t submitted_ = 0;
  uint64_t committed_ = 0;
  uint64_t cross_submitted_ = 0;
  double latency_sum_ = 0.0;
  double latency_max_ = 0.0;
};

}  // namespace txallo::sim

// Shared per-transaction work accounting for the execution backends.
//
// The serial ShardSimulator and the parallel engine (txallo::engine) are two
// executors of the same cost semantics from the paper: an intra-shard
// transaction costs 1 work unit on its one shard, a cross-shard transaction
// costs η on every involved shard (§III-B's workload factor), each shard
// processes λ work units per block, and a cross-shard transaction pays extra
// commit round(s) after its last part finishes (the additional round of
// consensus §I describes). Keeping the accounting in one place means the two
// backends cannot drift.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/chain/transaction.h"
#include "txallo/common/status.h"

namespace txallo::sim {

/// The η/λ/commit-round cost model both executors share.
struct WorkModel {
  /// Workload factor of a cross-shard transaction part.
  double eta = 2.0;
  /// Workload units one shard can process per block.
  double capacity_per_block = 100.0;
  /// Extra commit rounds a cross-shard transaction pays after its last
  /// shard part finishes.
  uint32_t cross_shard_commit_rounds = 1;

  /// Work one shard spends on its part of a transaction.
  double PartWork(bool cross_shard) const { return cross_shard ? eta : 1.0; }

  /// Block at which a transaction whose last part finished at
  /// `last_part_block` actually commits.
  uint64_t CommitBlock(uint64_t last_part_block, bool cross_shard) const {
    return cross_shard ? last_part_block + cross_shard_commit_rounds
                       : last_part_block;
  }
};

/// Routing policy for accounts the current allocation has not placed.
enum class UnassignedPolicy {
  /// Reject the transaction (the simulator's historical behaviour).
  kReject,
  /// Deterministically hash-route (account id mod k) — what a live chain
  /// does for accounts created since the last allocation epoch.
  kHashFallback,
};

/// Computes the distinct shards `tx` touches under `allocation` into
/// `*shards` (cleared first, order of first appearance preserved — the
/// executors' queueing order). Returns FailedPrecondition on an unassigned
/// account under kReject.
Status RouteTransaction(const chain::Transaction& tx,
                        const alloc::Allocation& allocation,
                        UnassignedPolicy policy,
                        std::vector<alloc::ShardId>* shards);

}  // namespace txallo::sim

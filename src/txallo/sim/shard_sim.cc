#include "txallo/sim/shard_sim.h"

#include <algorithm>

#include "txallo/alloc/metrics.h"

namespace txallo::sim {

ShardSimulator::ShardSimulator(SimConfig config)
    : config_(config),
      model_(config.work_model()),
      queues_(config.num_shards),
      processed_work_(config.num_shards, 0.0) {}

Status ShardSimulator::SubmitBlock(
    const std::vector<chain::Transaction>& transactions,
    const alloc::Allocation& allocation) {
  std::vector<alloc::ShardId> shards;
  for (const chain::Transaction& tx : transactions) {
    TXALLO_RETURN_NOT_OK(RouteTransaction(tx, allocation,
                                          UnassignedPolicy::kReject, &shards));
    if (shards.empty()) continue;
    const bool cross = shards.size() > 1;
    const uint64_t tx_index = txs_.size();
    txs_.push_back(PendingTx{now_, static_cast<uint32_t>(shards.size()),
                             cross, 0});
    ++submitted_;
    if (cross) ++cross_submitted_;
    const double work = model_.PartWork(cross);
    for (alloc::ShardId s : shards) {
      queues_[s].push_back(WorkItem{tx_index, work});
    }
  }
  return Status::OK();
}

void ShardSimulator::CommitFinishedParts(uint64_t tx_index) {
  PendingTx& tx = txs_[tx_index];
  tx.last_part_block = now_;
  if (--tx.parts_remaining > 0) return;
  const uint64_t commit_block = model_.CommitBlock(now_, tx.cross_shard);
  if (commit_block > now_) {
    // Atomic commit needs the extra cross-shard round(s).
    delayed_commits_.emplace_back(commit_block, tx_index);
    return;
  }
  ++committed_;
  // Submission happens at time arrival_block, before the next block is
  // mined; a transaction processed during the very next Tick() has latency
  // exactly one block.
  const double latency = static_cast<double>(now_ - tx.arrival_block);
  latency_sum_ += latency;
  latency_max_ = std::max(latency_max_, latency);
}

void ShardSimulator::Tick() {
  ++now_;
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    double budget = config_.capacity_per_block;
    std::deque<WorkItem>& queue = queues_[s];
    while (budget > 0.0 && !queue.empty()) {
      WorkItem& item = queue.front();
      const double consumed = std::min(budget, item.work_remaining);
      item.work_remaining -= consumed;
      budget -= consumed;
      processed_work_[s] += consumed;
      if (item.work_remaining <= 1e-12) {
        const uint64_t tx_index = item.tx_index;
        queue.pop_front();
        CommitFinishedParts(tx_index);
      }
    }
  }
  // Flush cross-shard commits whose extra round has elapsed.
  while (!delayed_commits_.empty() && delayed_commits_.front().first <= now_) {
    const uint64_t tx_index = delayed_commits_.front().second;
    delayed_commits_.pop_front();
    const PendingTx& tx = txs_[tx_index];
    ++committed_;
    const double latency = static_cast<double>(now_ - tx.arrival_block);
    latency_sum_ += latency;
    latency_max_ = std::max(latency_max_, latency);
  }
}

double ShardSimulator::QueuedWork(uint32_t shard) const {
  double total = 0.0;
  for (const WorkItem& item : queues_[shard]) total += item.work_remaining;
  return total;
}

SimReport ShardSimulator::Snapshot() const {
  SimReport report;
  report.submitted = submitted_;
  report.committed = committed_;
  report.cross_shard_submitted = cross_submitted_;
  report.blocks_elapsed = now_;
  if (now_ > 0) {
    report.throughput_per_block =
        static_cast<double>(committed_) / static_cast<double>(now_);
  }
  if (committed_ > 0) {
    report.avg_latency_blocks =
        latency_sum_ / static_cast<double>(committed_);
  }
  report.max_latency_blocks = latency_max_;
  double utilization = 0.0;
  double residual = 0.0;
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    if (now_ > 0) {
      utilization += processed_work_[s] /
                     (config_.capacity_per_block * static_cast<double>(now_));
    }
    residual += QueuedWork(s);
  }
  report.mean_utilization =
      utilization / static_cast<double>(config_.num_shards);
  report.residual_work = residual;
  return report;
}

SimReport ShardSimulator::DrainAndReport(uint64_t max_extra_blocks) {
  for (uint64_t i = 0; i < max_extra_blocks; ++i) {
    bool empty = delayed_commits_.empty();
    if (empty) {
      for (const auto& q : queues_) {
        if (!q.empty()) {
          empty = false;
          break;
        }
      }
    }
    if (empty) break;
    Tick();
  }
  return Snapshot();
}

}  // namespace txallo::sim

#include "txallo/sim/reconfig.h"

#include <algorithm>

namespace txallo::sim {

ReconfigStats CompareAllocations(const alloc::Allocation& before,
                                 const alloc::Allocation& after) {
  ReconfigStats stats;
  const size_t n = std::min(before.num_accounts(), after.num_accounts());
  for (size_t a = 0; a < n; ++a) {
    const auto id = static_cast<chain::AccountId>(a);
    if (!before.IsAssigned(id) || !after.IsAssigned(id)) continue;
    ++stats.accounts_compared;
    if (before.shard_of(id) != after.shard_of(id)) ++stats.accounts_moved;
  }
  if (stats.accounts_compared > 0) {
    stats.moved_fraction = static_cast<double>(stats.accounts_moved) /
                           static_cast<double>(stats.accounts_compared);
  }
  return stats;
}

}  // namespace txallo::sim

// Reallocation bookkeeping for a live sharded chain: when a new account-
// shard mapping is adopted, accounts whose shard changed must have their
// state available at the new shard. Per the paper's integration argument
// (§VII) this costs storage, not extra network rounds — miners already
// receive all shards' state through re-shuffling — but the *amount* of
// churn is still the practical adoption metric, so we track it.
#pragma once

#include <cstdint>

#include "txallo/alloc/allocation.h"

namespace txallo::sim {

/// Difference between two mappings over the common account prefix.
struct ReconfigStats {
  uint64_t accounts_compared = 0;
  /// Accounts whose shard changed (state that must be live elsewhere).
  uint64_t accounts_moved = 0;
  double moved_fraction = 0.0;
};

/// Compares `before` -> `after` (accounts beyond `before`'s domain are new
/// placements, not moves).
ReconfigStats CompareAllocations(const alloc::Allocation& before,
                                 const alloc::Allocation& after);

}  // namespace txallo::sim

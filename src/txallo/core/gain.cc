#include "txallo/core/gain.h"

#include "txallo/common/math.h"

namespace txallo::core {

namespace {

inline double Clamped(double lambda_hat, double sigma, double capacity) {
  return ClampThroughput(lambda_hat, sigma, capacity);
}

}  // namespace

CommunityDelta JoinDelta(const alloc::CommunityState& state, uint32_t q,
                         const NodeProfile& node, double weight_to_q) {
  CommunityDelta delta;
  const double eta = state.eta;
  delta.d_sigma = node.self_loop + eta * node.strength +
                  (1.0 - 2.0 * eta) * weight_to_q;
  delta.d_lambda_hat = node.self_loop + 0.5 * node.strength;
  const double before =
      Clamped(state.lambda_hat[q], state.sigma[q], state.capacity);
  const double after = Clamped(state.lambda_hat[q] + delta.d_lambda_hat,
                               state.sigma[q] + delta.d_sigma, state.capacity);
  delta.throughput_gain = after - before;
  return delta;
}

CommunityDelta LeaveDelta(const alloc::CommunityState& state, uint32_t p,
                          const NodeProfile& node, double weight_to_p) {
  CommunityDelta delta;
  const double eta = state.eta;
  delta.d_sigma = -node.self_loop - eta * (node.strength - weight_to_p) +
                  (eta - 1.0) * weight_to_p;
  delta.d_lambda_hat = -node.self_loop - 0.5 * node.strength;
  const double before =
      Clamped(state.lambda_hat[p], state.sigma[p], state.capacity);
  const double after = Clamped(state.lambda_hat[p] + delta.d_lambda_hat,
                               state.sigma[p] + delta.d_sigma, state.capacity);
  delta.throughput_gain = after - before;
  return delta;
}

double MoveGain(const alloc::CommunityState& state, uint32_t p, uint32_t q,
                const NodeProfile& node, double weight_to_p,
                double weight_to_q) {
  return LeaveDelta(state, p, node, weight_to_p).throughput_gain +
         JoinDelta(state, q, node, weight_to_q).throughput_gain;
}

void ApplyJoin(alloc::CommunityState* state, uint32_t q,
               const NodeProfile& node, double weight_to_q) {
  CommunityDelta delta = JoinDelta(*state, q, node, weight_to_q);
  state->sigma[q] += delta.d_sigma;
  state->lambda_hat[q] += delta.d_lambda_hat;
}

void ApplyLeave(alloc::CommunityState* state, uint32_t p,
                const NodeProfile& node, double weight_to_p) {
  CommunityDelta delta = LeaveDelta(*state, p, node, weight_to_p);
  state->sigma[p] += delta.d_sigma;
  state->lambda_hat[p] += delta.d_lambda_hat;
}

}  // namespace txallo::core

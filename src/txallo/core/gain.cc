#include "txallo/core/gain.h"

#if defined(TXALLO_ENABLE_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#endif

#include "txallo/common/math.h"

namespace txallo::core {

namespace {

inline double Clamped(double lambda_hat, double sigma, double capacity) {
  return ClampThroughput(lambda_hat, sigma, capacity);
}

}  // namespace

CommunityDelta JoinDelta(const alloc::CommunityState& state, uint32_t q,
                         const NodeProfile& node, double weight_to_q) {
  CommunityDelta delta;
  const double eta = state.eta;
  delta.d_sigma = node.self_loop + eta * node.strength +
                  (1.0 - 2.0 * eta) * weight_to_q;
  delta.d_lambda_hat = node.self_loop + 0.5 * node.strength;
  const double before =
      Clamped(state.lambda_hat[q], state.sigma[q], state.capacity);
  const double after = Clamped(state.lambda_hat[q] + delta.d_lambda_hat,
                               state.sigma[q] + delta.d_sigma, state.capacity);
  delta.throughput_gain = after - before;
  return delta;
}

CommunityDelta LeaveDelta(const alloc::CommunityState& state, uint32_t p,
                          const NodeProfile& node, double weight_to_p) {
  CommunityDelta delta;
  const double eta = state.eta;
  delta.d_sigma = -node.self_loop - eta * (node.strength - weight_to_p) +
                  (eta - 1.0) * weight_to_p;
  delta.d_lambda_hat = -node.self_loop - 0.5 * node.strength;
  const double before =
      Clamped(state.lambda_hat[p], state.sigma[p], state.capacity);
  const double after = Clamped(state.lambda_hat[p] + delta.d_lambda_hat,
                               state.sigma[p] + delta.d_sigma, state.capacity);
  delta.throughput_gain = after - before;
  return delta;
}

void JoinGainBatch(const alloc::CommunityState& state, const NodeProfile& node,
                   const double* weight_to, uint32_t k, double* gains) {
  const double eta = state.eta;
  const double cap = state.capacity;
  // Loop-invariant pieces of JoinDelta, factored without reassociating:
  // d_sigma   = (ℓ + η·s) + (1 − 2η)·w_q   — the scalar kernel's own tree.
  // d_lambda_hat = ℓ + 0.5·s                — constant across q.
  const double sigma_base = node.self_loop + eta * node.strength;
  const double w_coef = 1.0 - 2.0 * eta;
  const double d_lambda_hat = node.self_loop + 0.5 * node.strength;
  const double* sigma = state.sigma.data();
  const double* lambda_hat = state.lambda_hat.data();
  uint32_t q = 0;
#if defined(TXALLO_ENABLE_AVX2) && defined(__AVX2__)
  // Four lanes of the exact scalar operations (vdivpd/vmulpd/vsubpd are
  // IEEE-exact; the clamp select becomes a blend). The quotient is computed
  // unconditionally and blended away on the σ <= λ lanes — same value
  // semantics, no FP traps in the default environment.
  const __m256d v_cap = _mm256_set1_pd(cap);
  const __m256d v_zero = _mm256_setzero_pd();
  const __m256d v_base = _mm256_set1_pd(sigma_base);
  const __m256d v_wcoef = _mm256_set1_pd(w_coef);
  const __m256d v_dlh = _mm256_set1_pd(d_lambda_hat);
  for (; q + 4 <= k; q += 4) {
    const __m256d sig = _mm256_loadu_pd(sigma + q);
    const __m256d lh = _mm256_loadu_pd(lambda_hat + q);
    const __m256d w = _mm256_loadu_pd(weight_to + q);
    const __m256d d_sig =
        _mm256_add_pd(v_base, _mm256_mul_pd(v_wcoef, w));
    const __m256d sig_after = _mm256_add_pd(sig, d_sig);
    const __m256d lh_after = _mm256_add_pd(lh, v_dlh);
    // ClampThroughput(lh, sig, cap): lh when sig <= cap or sig <= 0,
    // else (cap / sig) * lh.
    const __m256d pass_b = _mm256_or_pd(
        _mm256_cmp_pd(sig, v_cap, _CMP_LE_OQ),
        _mm256_cmp_pd(sig, v_zero, _CMP_LE_OQ));
    const __m256d scaled_b =
        _mm256_mul_pd(_mm256_div_pd(v_cap, sig), lh);
    const __m256d before = _mm256_blendv_pd(scaled_b, lh, pass_b);
    const __m256d pass_a = _mm256_or_pd(
        _mm256_cmp_pd(sig_after, v_cap, _CMP_LE_OQ),
        _mm256_cmp_pd(sig_after, v_zero, _CMP_LE_OQ));
    const __m256d scaled_a =
        _mm256_mul_pd(_mm256_div_pd(v_cap, sig_after), lh_after);
    const __m256d after = _mm256_blendv_pd(scaled_a, lh_after, pass_a);
    _mm256_storeu_pd(gains + q, _mm256_sub_pd(after, before));
  }
#endif
  for (; q < k; ++q) {
    const double d_sigma = sigma_base + w_coef * weight_to[q];
    const double before = Clamped(lambda_hat[q], sigma[q], cap);
    const double after =
        Clamped(lambda_hat[q] + d_lambda_hat, sigma[q] + d_sigma, cap);
    gains[q] = after - before;
  }
}

double MoveGain(const alloc::CommunityState& state, uint32_t p, uint32_t q,
                const NodeProfile& node, double weight_to_p,
                double weight_to_q) {
  return LeaveDelta(state, p, node, weight_to_p).throughput_gain +
         JoinDelta(state, q, node, weight_to_q).throughput_gain;
}

void ApplyJoin(alloc::CommunityState* state, uint32_t q,
               const NodeProfile& node, double weight_to_q) {
  CommunityDelta delta = JoinDelta(*state, q, node, weight_to_q);
  state->sigma[q] += delta.d_sigma;
  state->lambda_hat[q] += delta.d_lambda_hat;
}

void ApplyLeave(alloc::CommunityState* state, uint32_t p,
                const NodeProfile& node, double weight_to_p) {
  CommunityDelta delta = LeaveDelta(*state, p, node, weight_to_p);
  state->sigma[p] += delta.d_sigma;
  state->lambda_hat[p] += delta.d_lambda_hat;
}

}  // namespace txallo::core

#include "txallo/core/adaptive.h"

#include "txallo/common/stopwatch.h"

namespace txallo::core {

Status RunAdaptiveTxAllo(const graph::TransactionGraph& graph,
                         const std::vector<graph::NodeId>& touched_nodes,
                         const alloc::AllocationParams& params,
                         const GlobalOptions& options,
                         alloc::Allocation* allocation,
                         alloc::CommunityState* state,
                         AdaptiveRunInfo* info) {
  TXALLO_RETURN_NOT_OK(params.Validate());
  if (!graph.consolidated()) {
    return Status::FailedPrecondition(
        "transaction graph must be consolidated before allocation");
  }
  if (allocation->num_accounts() < graph.num_nodes()) {
    return Status::InvalidArgument(
        "allocation must be grown to cover all graph nodes");
  }
  if (state->num_communities() != params.num_shards) {
    return Status::InvalidArgument("community state shard count mismatch");
  }

  AdaptiveRunInfo local;
  Stopwatch watch;
  local.touched_nodes = touched_nodes.size();
  for (graph::NodeId v : touched_nodes) {
    if (!allocation->IsAssigned(v)) ++local.new_nodes;
  }

  // Lines 1-8: place new nodes by join gain.
  AssignUnassignedNodes(graph, touched_nodes, params, allocation, state);

  // Lines 9-17: optimization sweeps restricted to V̂.
  local.sweeps = OptimizeSweeps(graph, touched_nodes, params, options,
                                allocation, state);

  local.final_throughput = state->TotalThroughput();
  local.total_seconds = watch.ElapsedSeconds();
  if (info != nullptr) *info = local;
  return Status::OK();
}

}  // namespace txallo::core

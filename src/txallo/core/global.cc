#include "txallo/core/global.h"

#include <algorithm>
#include <numeric>

#include "txallo/common/sha256.h"
#include "txallo/common/stopwatch.h"
#include "txallo/core/gain.h"
#include "txallo/graph/csr.h"

namespace txallo::core {

namespace {

using alloc::Allocation;
using alloc::AllocationParams;
using alloc::CommunityState;
using alloc::kUnassignedShard;
using alloc::ShardId;
using graph::NodeId;
using graph::TransactionGraph;

// Scratch accumulator of w{v, community}, reset via a touched list so a
// sweep over the whole graph is O(Σ degree), not O(N·k). Also owns the
// per-node join-gain buffer the batched kernel fills.
class WeightToCommunity {
 public:
  explicit WeightToCommunity(uint32_t num_communities)
      : num_communities_(num_communities),
        weight_(num_communities, 0.0),
        gains_(num_communities, 0.0) {
    touched_.reserve(64);
  }

  void Accumulate(const TransactionGraph& graph, NodeId v,
                  const Allocation& allocation) {
    const ShardId* shard_of = allocation.raw().data();
    const size_t num_accounts = allocation.num_accounts();
    for (const graph::Neighbor& nb : graph.Neighbors(v)) {
      const ShardId c =
          nb.node < num_accounts ? shard_of[nb.node] : kUnassignedShard;
      if (c == kUnassignedShard) continue;
      if (weight_[c] == 0.0) touched_.push_back(c);
      weight_[c] += nb.weight;
    }
  }

  /// Fills gains_[q] = join gain of the accumulated node into q. When the
  /// candidate set is dense — or the caller needs all k — one batched pass
  /// over the contiguous σ/Λ̂ arrays; otherwise scalar JoinDelta per
  /// touched community. Both paths produce bit-identical gains (the batch
  /// kernel replays the scalar expression tree), so the density heuristic
  /// affects speed only, never the selected shard. Untouched entries are
  /// stale in sparse mode; callers only read q's they asked for.
  void ComputeJoinGains(const CommunityState& state, const NodeProfile& node,
                        bool need_all) {
    if (need_all || touched_.size() * 4 >= num_communities_) {
      JoinGainBatch(state, node, weight_.data(), num_communities_,
                    gains_.data());
    } else {
      for (ShardId q : touched_) {
        gains_[q] = JoinDelta(state, q, node, weight_[q]).throughput_gain;
      }
    }
  }

  double WeightTo(ShardId c) const { return weight_[c]; }
  double Gain(ShardId c) const { return gains_[c]; }
  const std::vector<ShardId>& touched() const { return touched_; }

  void Reset() {
    for (ShardId c : touched_) weight_[c] = 0.0;
    touched_.clear();
  }

 private:
  uint32_t num_communities_;
  std::vector<double> weight_;
  std::vector<double> gains_;
  std::vector<ShardId> touched_;
};

// Phase 1a: Louvain + keep the k communities with the largest workload σ.
// Fills `allocation` with shard ids for nodes of the top-k communities and
// leaves every other node unassigned. Returns the Louvain community count.
uint32_t LouvainInitialize(const TransactionGraph& graph,
                           const std::vector<NodeId>& node_order,
                           const AllocationParams& params,
                           const GlobalOptions& options,
                           Allocation* allocation) {
  const graph::CsrGraph csr = graph::CsrGraph::FromGraph(graph);
  graph::LouvainResult louvain =
      graph::RunLouvain(csr, node_order, options.louvain);
  const uint32_t l = louvain.num_communities;

  // Workload σ of every Louvain community (η-aware), used for the top-k
  // ranking. Reuse the from-scratch state computation with k' = l.
  Allocation louvain_alloc(graph.num_nodes(), l);
  for (size_t v = 0; v < graph.num_nodes(); ++v) {
    louvain_alloc.Assign(static_cast<NodeId>(v), louvain.community[v]);
  }
  AllocationParams rank_params = params;
  rank_params.num_shards = l;
  CommunityState rank_state =
      alloc::ComputeCommunityState(graph, louvain_alloc, rank_params);

  // Rank communities by workload, descending; ties toward the smaller id
  // keep the ranking deterministic.
  std::vector<uint32_t> ranked(l);
  std::iota(ranked.begin(), ranked.end(), 0);
  std::sort(ranked.begin(), ranked.end(), [&](uint32_t a, uint32_t b) {
    if (rank_state.sigma[a] != rank_state.sigma[b]) {
      return rank_state.sigma[a] > rank_state.sigma[b];
    }
    return a < b;
  });

  std::vector<ShardId> community_to_shard(l, kUnassignedShard);
  const uint32_t kept = std::min(params.num_shards, l);
  for (uint32_t rank = 0; rank < kept; ++rank) {
    community_to_shard[ranked[rank]] = rank;
  }
  for (size_t v = 0; v < graph.num_nodes(); ++v) {
    const ShardId s = community_to_shard[louvain.community[v]];
    if (s != kUnassignedShard) allocation->Assign(static_cast<NodeId>(v), s);
  }
  return l;
}

}  // namespace

void AssignUnassignedNodes(const TransactionGraph& graph,
                           const std::vector<NodeId>& node_order,
                           const AllocationParams& params,
                           Allocation* allocation, CommunityState* state) {
  WeightToCommunity scratch(params.num_shards);
  for (NodeId v : node_order) {
    if (allocation->IsAssigned(v)) continue;
    NodeProfile node{graph.SelfLoop(v), graph.Strength(v)};
    scratch.Accumulate(graph, v, *allocation);
    scratch.ComputeJoinGains(*state, node,
                             /*need_all=*/scratch.touched().empty());

    // Max join gain; ties break toward the smaller shard id (determinism).
    ShardId best = kUnassignedShard;
    double best_gain = 0.0;
    if (!scratch.touched().empty()) {
      for (ShardId q : scratch.touched()) {
        const double gain = scratch.Gain(q);
        if (best == kUnassignedShard || gain > best_gain + 1e-15) {
          best = q;
          best_gain = gain;
        } else if (gain >= best_gain - 1e-15 && q < best) {
          best = q;
        }
      }
    } else {
      // C_v = ∅: force the candidate set to all k communities (Alg. 1 l.5).
      for (ShardId q = 0; q < params.num_shards; ++q) {
        const double gain = scratch.Gain(q);
        if (best == kUnassignedShard || gain > best_gain + 1e-15) {
          best = q;
          best_gain = gain;
        }
      }
    }
    ApplyJoin(state, best, node, scratch.WeightTo(best));
    allocation->Assign(v, best);
    scratch.Reset();
  }
}

int OptimizeSweeps(const TransactionGraph& graph,
                   const std::vector<NodeId>& sweep_nodes,
                   const AllocationParams& params,
                   const GlobalOptions& options, Allocation* allocation,
                   CommunityState* state) {
  WeightToCommunity scratch(params.num_shards);
  int sweeps = 0;
  for (; sweeps < options.max_sweeps; ++sweeps) {
    double sweep_gain = 0.0;
    for (NodeId v : sweep_nodes) {
      const ShardId p = allocation->shard_of(v);
      if (p == kUnassignedShard) continue;  // Defensive; phase 1 assigns all.
      NodeProfile node{graph.SelfLoop(v), graph.Strength(v)};
      scratch.Accumulate(graph, v, *allocation);

      const double w_to_p = scratch.WeightTo(p);
      const CommunityDelta leave = LeaveDelta(*state, p, node, w_to_p);
      scratch.ComputeJoinGains(*state, node,
                               /*need_all=*/options.search_all_communities);

      ShardId best = p;
      double best_gain = 0.0;
      if (options.search_all_communities) {
        for (ShardId q = 0; q < params.num_shards; ++q) {
          if (q == p) continue;
          const double gain = leave.throughput_gain + scratch.Gain(q);
          if (gain > best_gain + 1e-15) {
            best = q;
            best_gain = gain;
          } else if (gain >= best_gain - 1e-15 && best != p && q < best) {
            best = q;
          }
        }
      } else {
        for (ShardId q : scratch.touched()) {
          if (q == p) continue;
          const double gain = leave.throughput_gain + scratch.Gain(q);
          if (gain > best_gain + 1e-15) {
            best = q;
            best_gain = gain;
          } else if (gain >= best_gain - 1e-15 && best != p && q < best) {
            best = q;
          }
        }
      }
      if (best != p && best_gain > 0.0) {
        ApplyLeave(state, p, node, w_to_p);
        ApplyJoin(state, best, node, scratch.WeightTo(best));
        allocation->Assign(v, best);
        sweep_gain += best_gain;
      }
      scratch.Reset();
    }
    if (sweep_gain < params.epsilon) {
      ++sweeps;
      break;
    }
  }
  return sweeps;
}

Result<Allocation> RunGlobalTxAllo(const TransactionGraph& graph,
                                   const std::vector<NodeId>& node_order,
                                   const AllocationParams& params,
                                   const GlobalOptions& options,
                                   GlobalRunInfo* info) {
  TXALLO_RETURN_NOT_OK(params.Validate());
  if (!graph.consolidated()) {
    return Status::FailedPrecondition(
        "transaction graph must be consolidated before allocation");
  }
  if (node_order.size() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "node_order must be a permutation of all graph nodes");
  }

  GlobalRunInfo local_info;
  Stopwatch total_watch;
  Allocation allocation(graph.num_nodes(), params.num_shards);

  if (options.hash_initialization) {
    // Ablation: seed shards by account hash instead of Louvain communities.
    Stopwatch watch;
    for (size_t v = 0; v < graph.num_nodes(); ++v) {
      allocation.Assign(static_cast<NodeId>(v),
                        static_cast<ShardId>(Sha256::Hash64(
                                                 static_cast<uint64_t>(v)) %
                                             params.num_shards));
    }
    local_info.louvain_seconds = watch.ElapsedSeconds();
  } else {
    Stopwatch watch;
    local_info.louvain_communities =
        LouvainInitialize(graph, node_order, params, options, &allocation);
    local_info.louvain_seconds = watch.ElapsedSeconds();
  }

  CommunityState state =
      alloc::ComputeCommunityState(graph, allocation, params);

  {
    Stopwatch watch;
    AssignUnassignedNodes(graph, node_order, params, &allocation, &state);
    local_info.init_seconds = watch.ElapsedSeconds();
  }
  local_info.initial_throughput = state.TotalThroughput();

  {
    Stopwatch watch;
    local_info.sweeps = OptimizeSweeps(graph, node_order, params, options,
                                       &allocation, &state);
    local_info.optimize_seconds = watch.ElapsedSeconds();
  }
  local_info.final_throughput = state.TotalThroughput();
  local_info.total_seconds = total_watch.ElapsedSeconds();
  if (info != nullptr) *info = local_info;

  TXALLO_RETURN_NOT_OK(allocation.Validate());
  return allocation;
}

}  // namespace txallo::core

// Closed-form throughput-gain kernel of TxAllo (paper §V-B).
//
// For a node v with self-loop weight ℓ = w{v,v}, strength s = w{v, V\v},
// and edge weight c_X = w{v, V_X \ v} to a community X:
//
//   join q  (v ∉ V_q):  Δσ_q = ℓ + η·s + (1 − 2η)·c_q
//                       ΔΛ̂_q = ℓ + s/2
//   leave p (v ∈ V_p):  Δσ_p = −ℓ − η·(s − c_p) + (η − 1)·c_p
//                       ΔΛ̂_p = −ℓ − s/2
//
// and the throughput gain of a move uses the capacity-clamped Λ (Eq. 7)
// evaluated before/after, so Δ(i,p,q)Λ = ΔΛ_p + ΔΛ_q (Eq. 8). By Lemma 1,
// no other community's throughput changes — the property tests verify this
// against a from-scratch recomputation.
#pragma once

#include <cstdint>

#include "txallo/alloc/graph_metrics.h"

namespace txallo::core {

/// Per-node quantities the delta formulas need.
struct NodeProfile {
  double self_loop = 0.0;  // ℓ
  double strength = 0.0;   // s
};

/// Workload/throughput deltas for one community affected by a move.
struct CommunityDelta {
  double d_sigma = 0.0;
  double d_lambda_hat = 0.0;
  /// Λ'_X − Λ_X under the capacity clamp.
  double throughput_gain = 0.0;
};

/// Deltas for community q when `v` joins it. `weight_to_q` = w{v, V_q}.
/// Precondition: v is not currently in q.
CommunityDelta JoinDelta(const alloc::CommunityState& state, uint32_t q,
                         const NodeProfile& node, double weight_to_q);

/// Deltas for community p when `v` leaves it. `weight_to_p` = w{v, V_p\v}.
/// Precondition: v is currently in p.
CommunityDelta LeaveDelta(const alloc::CommunityState& state, uint32_t p,
                          const NodeProfile& node, double weight_to_p);

/// Δ(i,p,q)Λ for moving v from p to q (Eq. 8). Precondition: p != q.
double MoveGain(const alloc::CommunityState& state, uint32_t p, uint32_t q,
                const NodeProfile& node, double weight_to_p,
                double weight_to_q);

/// Batched join kernel: gains[q] = JoinDelta(state, q, node,
/// weight_to[q]).throughput_gain for every q in [0, k), in one pass over
/// the contiguous σ/Λ̂ arrays (CommunityState is SoA). Bit-identical to the
/// scalar JoinDelta per element: the expression tree is the same and the
/// strict -std build forbids FP contraction, so the only difference is
/// memory access order — which FP addition does not see. The G-TxAllo
/// sweep uses this for its Eq. 9 candidate evaluation whenever the
/// candidate set is dense; an explicit AVX2 path (same IEEE operations
/// elementwise) can be enabled with -DTXALLO_ENABLE_AVX2=ON.
void JoinGainBatch(const alloc::CommunityState& state, const NodeProfile& node,
                   const double* weight_to, uint32_t k, double* gains);

/// Applies a join to the running state (σ_q, Λ̂_q updated in place).
void ApplyJoin(alloc::CommunityState* state, uint32_t q,
               const NodeProfile& node, double weight_to_q);

/// Applies a leave to the running state.
void ApplyLeave(alloc::CommunityState* state, uint32_t p,
                const NodeProfile& node, double weight_to_p);

}  // namespace txallo::core

// A-TxAllo (paper Algorithm 2): the adaptive allocation algorithm.
//
// Instead of re-optimizing all of V, A-TxAllo takes the previous allocation
// and the set V̂ of nodes appearing in newly committed blocks:
//   lines 1-8: new nodes (v ∈ V̂ not in the previous allocation) join the
//              community with the best join gain (Eq. 6);
//   lines 9-17: optimization sweeps restricted to V̂ until the sweep gain
//               drops below ε.
// Complexity O(|V̂|·k) — constant in the ledger size because |V̂| is bounded
// by the update gap τ1, which is the paper's answer to the ever-growing
// chain (§IV-B/§V-C).
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/graph_metrics.h"
#include "txallo/alloc/params.h"
#include "txallo/common/status.h"
#include "txallo/core/global.h"
#include "txallo/graph/graph.h"

namespace txallo::core {

/// Diagnostics for one adaptive step.
struct AdaptiveRunInfo {
  double total_seconds = 0.0;
  int sweeps = 0;
  size_t touched_nodes = 0;   // |V̂|
  size_t new_nodes = 0;       // Nodes unseen by the previous allocation.
  double final_throughput = 0.0;
};

/// Runs one A-TxAllo step in place.
///
/// `graph` must already contain the new blocks' edges (consolidated);
/// `touched_nodes` is V̂ in the deterministic iteration order;
/// `allocation` is the previous mapping grown to graph.num_nodes() (new
/// nodes unassigned); `state` is the incrementally maintained — or freshly
/// recomputed — CommunityState matching (graph, allocation).
Status RunAdaptiveTxAllo(const graph::TransactionGraph& graph,
                         const std::vector<graph::NodeId>& touched_nodes,
                         const alloc::AllocationParams& params,
                         const GlobalOptions& options,
                         alloc::Allocation* allocation,
                         alloc::CommunityState* state,
                         AdaptiveRunInfo* info = nullptr);

}  // namespace txallo::core

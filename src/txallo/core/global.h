// G-TxAllo (paper Algorithm 1): the global allocation algorithm.
//
// Phase 1 (initialization): run deterministic Louvain on the transaction
// graph; keep the k communities with the largest workload σ; absorb every
// node of the remaining small communities into one of the k via the best
// join gain (Eq. 6), falling back to all k communities when a node has no
// assigned neighbor.
//
// Phase 2 (optimization): sweep all nodes in the deterministic order; move
// each to the candidate community C_v (Eq. 9) with the largest positive
// Δ(i,p,q)Λ (Eq. 8); repeat sweeps while the accumulated gain ≥ ε.
//
// Complexity: O(N log N) initialization + O(N·k) per optimization sweep.
// Every step is deterministic given the node order (paper §V-B).
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/graph_metrics.h"
#include "txallo/alloc/params.h"
#include "txallo/common/status.h"
#include "txallo/graph/graph.h"
#include "txallo/graph/louvain.h"

namespace txallo::core {

/// Tuning knobs beyond AllocationParams.
struct GlobalOptions {
  graph::LouvainOptions louvain;
  /// Safety valve on optimization sweeps (the ε criterion normally stops
  /// the loop long before this).
  int max_sweeps = 64;
  /// Disables the candidate-community restriction of Eq. 9 and searches all
  /// k communities for every node. Only for the ablation bench: slower,
  /// same-or-marginally-different results.
  bool search_all_communities = false;
  /// Skips the Louvain initialization and seeds shards by account hash
  /// instead. Only for the ablation bench.
  bool hash_initialization = false;
};

/// Run report for diagnostics and the running-time figures.
struct GlobalRunInfo {
  double louvain_seconds = 0.0;
  double init_seconds = 0.0;       // Small-community absorption.
  double optimize_seconds = 0.0;
  double total_seconds = 0.0;
  uint32_t louvain_communities = 0;
  int sweeps = 0;
  double initial_throughput = 0.0;  // After phase 1.
  double final_throughput = 0.0;    // After convergence.
};

/// Runs G-TxAllo over a consolidated transaction graph.
///
/// `node_order` is the deterministic iteration order (a permutation of
/// [0, graph.num_nodes()), typically AccountRegistry::IdsInHashOrder()).
/// Returns the account-shard mapping; optionally fills `info`.
Result<alloc::Allocation> RunGlobalTxAllo(
    const graph::TransactionGraph& graph,
    const std::vector<graph::NodeId>& node_order,
    const alloc::AllocationParams& params, const GlobalOptions& options = {},
    GlobalRunInfo* info = nullptr);

/// The phase-1b primitive, shared with A-TxAllo (Algorithm 2, lines 1-8):
/// every node of `node_order` that is still unassigned joins the community
/// with the best join gain (Eq. 6); the candidate set falls back to all k
/// communities when the node has no assigned neighbor. `allocation` and
/// `state` are updated in place.
void AssignUnassignedNodes(const graph::TransactionGraph& graph,
                           const std::vector<graph::NodeId>& node_order,
                           const alloc::AllocationParams& params,
                           alloc::Allocation* allocation,
                           alloc::CommunityState* state);

/// The phase-2 optimization loop, exposed separately because A-TxAllo and
/// the ablations reuse it. Sweeps `sweep_nodes` (in order) until the total
/// gain of a sweep is < ε or `max_sweeps` is hit. `allocation` and `state`
/// are updated in place. Returns the number of sweeps executed.
int OptimizeSweeps(const graph::TransactionGraph& graph,
                   const std::vector<graph::NodeId>& sweep_nodes,
                   const alloc::AllocationParams& params,
                   const GlobalOptions& options, alloc::Allocation* allocation,
                   alloc::CommunityState* state);

}  // namespace txallo::core

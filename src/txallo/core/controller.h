// Hybrid TxAllo controller (paper §V-A): owns the ever-growing transaction
// graph and the live account-shard mapping, applies newly committed blocks,
// and runs A-TxAllo every τ1 blocks with periodic G-TxAllo refreshes every
// τ2 blocks. This is the component a sharded-blockchain node would embed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/graph_metrics.h"
#include "txallo/alloc/params.h"
#include "txallo/chain/account.h"
#include "txallo/chain/block.h"
#include "txallo/common/status.h"
#include "txallo/core/adaptive.h"
#include "txallo/core/global.h"
#include "txallo/graph/graph.h"

namespace txallo::core {

/// Controller configuration.
struct ControllerOptions {
  GlobalOptions global;
  /// Rescale λ to |T|/k as transactions accumulate (the paper's λ = |T|/k
  /// experimental convention). When false, λ stays at params.capacity.
  bool scale_capacity_with_transactions = true;
};

/// Owns graph + allocation + community state and keeps them consistent as
/// blocks arrive. Not thread-safe (one consensus-driven writer, as in a
/// blockchain node).
class TxAlloController {
 public:
  /// `registry` provides the deterministic per-account ordering keys; it
  /// must outlive the controller and is shared with whoever creates
  /// accounts (e.g. the workload generator).
  TxAlloController(const chain::AccountRegistry* registry,
                   alloc::AllocationParams params,
                   ControllerOptions options = {});

  /// Absorbs one committed block: adds its edge weights to the graph,
  /// incrementally maintains the community state, and records the touched
  /// nodes in V̂ for the next adaptive step.
  void ApplyBlock(const chain::Block& block);

  /// Runs one A-TxAllo step over the V̂ accumulated since the last step
  /// (Algorithm 2) and clears V̂.
  Result<AdaptiveRunInfo> StepAdaptive();

  /// Runs a full G-TxAllo from scratch over the current graph, replacing
  /// the mapping and state; clears V̂ (a global step supersedes it).
  Result<GlobalRunInfo> StepGlobal();

  /// Re-derives the community state from scratch (drift resync; also used
  /// by tests to check the incremental bookkeeping).
  void RecomputeState();

  /// Applies one round of exponential history decay: every edge weight and
  /// the incremental σ/Λ̂ state scale by `factor` ∈ (0, 1]. Recency
  /// weighting for drifting workloads (the paper's future-work direction);
  /// call once per update window before StepAdaptive()/StepGlobal().
  /// When used, pair with scale_capacity_with_transactions = false and set
  /// params.capacity to the decayed-weight budget you want.
  Status ApplyHistoryDecay(double factor);

  const alloc::Allocation& allocation() const { return allocation_; }

  /// Immutable snapshot of the live mapping for concurrent consumers (the
  /// parallel engine's copy-on-write routing). The copy is the publication
  /// point: later controller updates never mutate a published snapshot.
  std::shared_ptr<const alloc::Allocation> ShareAllocation() const {
    return std::make_shared<const alloc::Allocation>(allocation_);
  }
  const alloc::CommunityState& state() const { return state_; }
  const graph::TransactionGraph& graph() const { return graph_; }
  const alloc::AllocationParams& params() const { return params_; }
  uint64_t transactions_applied() const { return transactions_applied_; }

  /// Current graph-model throughput Λ of the live mapping.
  double CurrentThroughput() const { return state_.TotalThroughput(); }

  /// Nodes currently queued in V̂ (deterministic hash order).
  std::vector<graph::NodeId> PendingTouchedNodes() const;

 private:
  // Adds one edge's weight to the incremental σ/Λ̂ state.
  void AccumulateEdgeIntoState(graph::NodeId u, graph::NodeId v,
                               double weight);
  void RefreshCapacity();
  std::vector<graph::NodeId> FullNodeOrder() const;

  const chain::AccountRegistry* registry_;
  alloc::AllocationParams params_;
  ControllerOptions options_;

  graph::TransactionGraph graph_;
  alloc::Allocation allocation_;
  alloc::CommunityState state_;

  std::vector<graph::NodeId> touched_;      // V̂ accumulator (with dups).
  std::vector<uint8_t> touched_flag_;       // Dedup bitmap.
  uint64_t transactions_applied_ = 0;
};

}  // namespace txallo::core

#include "txallo/core/controller.h"

#include <algorithm>

#include "txallo/common/math.h"

namespace txallo::core {

using alloc::kUnassignedShard;
using alloc::ShardId;
using graph::NodeId;

TxAlloController::TxAlloController(const chain::AccountRegistry* registry,
                                   alloc::AllocationParams params,
                                   ControllerOptions options)
    : registry_(registry), params_(params), options_(options) {
  allocation_ = alloc::Allocation(0, params_.num_shards);
  state_.eta = params_.eta;
  state_.capacity = params_.capacity;
  state_.sigma.assign(params_.num_shards, 0.0);
  state_.lambda_hat.assign(params_.num_shards, 0.0);
}

void TxAlloController::AccumulateEdgeIntoState(NodeId u, NodeId v,
                                               double weight) {
  const ShardId cu =
      u < allocation_.num_accounts() && allocation_.IsAssigned(u)
          ? allocation_.shard_of(u)
          : kUnassignedShard;
  const ShardId cv =
      v < allocation_.num_accounts() && allocation_.IsAssigned(v)
          ? allocation_.shard_of(v)
          : kUnassignedShard;
  if (u == v) {
    // Self-loop: intra workload + full throughput for the owning shard.
    if (cu != kUnassignedShard) {
      state_.sigma[cu] += weight;
      state_.lambda_hat[cu] += weight;
    }
    return;
  }
  if (cu != kUnassignedShard && cu == cv) {
    state_.sigma[cu] += weight;
    state_.lambda_hat[cu] += weight;
    return;
  }
  // Cross-shard (or one side unassigned): each assigned side carries η
  // workload and half the throughput credit. The unassigned side's
  // contribution is accounted when that node joins (JoinDelta's η·s term).
  if (cu != kUnassignedShard) {
    state_.sigma[cu] += params_.eta * weight;
    state_.lambda_hat[cu] += 0.5 * weight;
  }
  if (cv != kUnassignedShard) {
    state_.sigma[cv] += params_.eta * weight;
    state_.lambda_hat[cv] += 0.5 * weight;
  }
}

void TxAlloController::ApplyBlock(const chain::Block& block) {
  for (const chain::Transaction& tx : block.transactions()) {
    ++transactions_applied_;
    const std::vector<chain::AccountId>& accounts = tx.accounts();
    if (accounts.empty()) continue;
    // Grow tracking structures for brand-new accounts.
    const chain::AccountId max_id = accounts.back();  // accounts() sorted.
    if (static_cast<size_t>(max_id) >= touched_flag_.size()) {
      touched_flag_.resize(static_cast<size_t>(max_id) + 1, 0);
    }
    allocation_.GrowAccounts(static_cast<size_t>(max_id) + 1);
    for (chain::AccountId a : accounts) {
      if (touched_flag_[a] == 0) {
        touched_flag_[a] = 1;
        touched_.push_back(a);
      }
    }
    // Mirror GraphBuilder's weight-splitting, updating graph and state
    // together so they never diverge.
    if (accounts.size() == 1) {
      graph_.AddSelfLoop(accounts[0], 1.0);
      AccumulateEdgeIntoState(accounts[0], accounts[0], 1.0);
      continue;
    }
    const double share =
        1.0 / static_cast<double>(EdgeSplitCount(accounts.size()));
    for (size_t i = 0; i < accounts.size(); ++i) {
      for (size_t j = i + 1; j < accounts.size(); ++j) {
        graph_.AddEdge(accounts[i], accounts[j], share);
        AccumulateEdgeIntoState(accounts[i], accounts[j], share);
      }
    }
  }
}

void TxAlloController::RefreshCapacity() {
  if (options_.scale_capacity_with_transactions && params_.num_shards > 0) {
    params_.capacity = static_cast<double>(transactions_applied_) /
                       params_.num_shards;
    params_.epsilon = 1e-5 * static_cast<double>(transactions_applied_);
    state_.capacity = params_.capacity;
  }
}

std::vector<NodeId> TxAlloController::PendingTouchedNodes() const {
  std::vector<NodeId> nodes = touched_;
  std::sort(nodes.begin(), nodes.end(), [this](NodeId a, NodeId b) {
    const uint64_t ka = registry_->OrderKey(a);
    const uint64_t kb = registry_->OrderKey(b);
    if (ka != kb) return ka < kb;
    return a < b;
  });
  return nodes;
}

std::vector<NodeId> TxAlloController::FullNodeOrder() const {
  std::vector<NodeId> order(graph_.num_nodes());
  for (size_t v = 0; v < order.size(); ++v) {
    order[v] = static_cast<NodeId>(v);
  }
  std::sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
    const uint64_t ka = registry_->OrderKey(a);
    const uint64_t kb = registry_->OrderKey(b);
    if (ka != kb) return ka < kb;
    return a < b;
  });
  return order;
}

Result<AdaptiveRunInfo> TxAlloController::StepAdaptive() {
  // Fold the delta overlay back into the frozen CSR core once it gets big
  // enough to slow reads/copies; a pure function of graph state, so the
  // sync and async pipelines make the same (bit-neutral) decision.
  graph_.MaybeRefreeze();
  allocation_.GrowAccounts(graph_.num_nodes());
  RefreshCapacity();
  std::vector<NodeId> touched = PendingTouchedNodes();
  AdaptiveRunInfo info;
  Status st = RunAdaptiveTxAllo(graph_, touched, params_, options_.global,
                                &allocation_, &state_, &info);
  if (!st.ok()) return st;
  for (NodeId v : touched_) touched_flag_[v] = 0;
  touched_.clear();
  return info;
}

Result<GlobalRunInfo> TxAlloController::StepGlobal() {
  // A global step is O(N + E) regardless; refreeze so Louvain and the
  // sweeps read a pure CSR core, and so the post-step controller snapshot
  // copy is O(1).
  graph_.Refreeze();
  allocation_.GrowAccounts(graph_.num_nodes());
  RefreshCapacity();
  GlobalRunInfo info;
  Result<alloc::Allocation> result = RunGlobalTxAllo(
      graph_, FullNodeOrder(), params_, options_.global, &info);
  if (!result.ok()) return result.status();
  allocation_ = std::move(result.value());
  RecomputeState();
  for (NodeId v : touched_) touched_flag_[v] = 0;
  touched_.clear();
  return info;
}

void TxAlloController::RecomputeState() {
  graph_.Consolidate();
  state_ = alloc::ComputeCommunityState(graph_, allocation_, params_);
}

Status TxAlloController::ApplyHistoryDecay(double factor) {
  if (factor <= 0.0 || factor > 1.0) {
    return Status::InvalidArgument("decay factor must be in (0, 1]");
  }
  graph_.Consolidate();
  graph_.ScaleWeights(factor);
  // σ and Λ̂ are linear in the edge weights, so the incremental state
  // scales with them (verified against the from-scratch oracle in tests).
  for (double& s : state_.sigma) s *= factor;
  for (double& l : state_.lambda_hat) l *= factor;
  return Status::OK();
}

}  // namespace txallo::core

// The unified allocation-strategy API (paper §VI's method matrix as code).
//
// Every allocation method — TxAllo itself, the §II-C baselines, and any
// future ContribChain/Mosaic-style plugin — sits behind one polymorphic
// interface with two calling conventions:
//
//   * one-shot: Allocate(AllocationContext) partitions a historical
//     workload once (what the figure sweeps evaluate);
//   * online: an OnlineAllocator additionally absorbs committed blocks
//     (ApplyBlock) and refreshes the mapping on demand (Rebalance) — the
//     epoch-driven shape engine::RunReallocatedStream drives.
//
// Instances come from the string-keyed factory in allocator/registry.h
// (MakeAllocator("txallo-hybrid", options)), so benches, examples and the
// engine pick strategies by name (--allocator=...) instead of compiling
// against each method's bespoke entry point.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/metrics.h"
#include "txallo/alloc/params.h"
#include "txallo/chain/account.h"
#include "txallo/chain/block.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"
#include "txallo/graph/graph.h"

namespace txallo::allocator {

/// Everything a one-shot strategy may consume. Graph-based methods (TxAllo,
/// METIS, Louvain) read `graph`; transaction-level methods (Shard
/// Scheduler) replay `ledger`; hash routing only needs the account domain.
/// A strategy fails with InvalidArgument when a field it requires is null.
struct AllocationContext {
  /// Consolidated transaction graph (paper Definition 2).
  const graph::TransactionGraph* graph = nullptr;
  /// The raw transaction history, for strategies that replay it.
  const chain::Ledger* ledger = nullptr;
  /// Account metadata: address hashes for deterministic ordering and
  /// hash-based routing. Optional — id order / id hashing are the fallback.
  const chain::AccountRegistry* registry = nullptr;
  /// Explicit deterministic node iteration order (a permutation of
  /// [0, graph->num_nodes())). Defaults to the registry's hash order, then
  /// to id order.
  const std::vector<graph::NodeId>* node_order = nullptr;
  /// θ: shard count k, η, capacity λ, convergence ε.
  alloc::AllocationParams params;
  /// Seed for randomized strategies. Every built-in method is
  /// deterministic and ignores it; plugins get it for free.
  uint64_t seed = 0;
};

class OnlineAllocator;

/// Abstract allocation strategy. Implementations must be deterministic for
/// a given context (paper §V-B: all miners recompute the same mapping), so
/// calling Allocate twice with the same inputs yields the same mapping.
class Allocator {
 public:
  explicit Allocator(std::string name) : name_(std::move(name)) {}
  virtual ~Allocator() = default;

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// The registry key this instance was created under ("metis",
  /// "txallo-hybrid", ...).
  const std::string& Name() const { return name_; }

  /// One-shot partitioning of the context's workload into
  /// context.params.num_shards shards. The returned mapping covers the
  /// full account domain (Allocation::Validate() passes).
  virtual Result<alloc::Allocation> Allocate(
      const AllocationContext& context) = 0;

  /// Online view of this strategy, or nullptr for one-shot-only methods.
  virtual OnlineAllocator* AsOnline() { return nullptr; }

  /// Evaluates `allocation` over a transaction set under this strategy's
  /// execution semantics. The default is the plain §III-B model; overlays
  /// (brokers) override it — their runtime behavior, not their mapping, is
  /// what differs.
  virtual Result<alloc::EvaluationReport> Evaluate(
      const chain::Ledger& ledger, const alloc::Allocation& allocation,
      const alloc::AllocationParams& params) const;
  virtual Result<alloc::EvaluationReport> Evaluate(
      const std::vector<chain::Transaction>& transactions,
      const alloc::Allocation& allocation,
      const alloc::AllocationParams& params) const;

 private:
  std::string name_;
};

/// A frozen rebalance computation, detached from its parent allocator so
/// the expensive part can run on a background thread while the parent keeps
/// absorbing blocks. Lifecycle (enforced by the engine pipeline and the
/// conformance suite):
///
///   1. `BeginRebalance()` on the thread that owns the allocator snapshots
///      everything absorbed so far (double-buffering: graph copies, frozen
///      domain sizes, controller clones) into the task.
///   2. `Run()` — once, on any thread — computes the refreshed mapping from
///      the snapshot only. It is safe to call `ApplyBlock()` on the parent
///      concurrently; blocks applied after the snapshot are not seen by
///      this task (they roll into the next rebalance).
///   3. `Commit()` — once, back on the owning thread, after Run() returned —
///      folds the result into the parent so `CurrentAllocation()` and later
///      `Rebalance()`/`BeginRebalance()` calls continue exactly as if the
///      synchronous `Rebalance()` had run at the snapshot point.
///
/// At most one task may be outstanding per allocator, and the parent must
/// outlive the task. Destroying a task without Commit() *abandons* it: the
/// parent's outstanding-task bookkeeping is released and the mapping is
/// discarded (never folded in). Abandonment runs on the destroying thread,
/// which must be the owning thread — the engine's BackgroundAllocator
/// guarantees this by joining its worker before dropping an uncollected
/// task.
class RebalanceTask {
 public:
  virtual ~RebalanceTask() = default;

  RebalanceTask(const RebalanceTask&) = delete;
  RebalanceTask& operator=(const RebalanceTask&) = delete;

  /// Computes the refreshed mapping from the frozen snapshot. Called once;
  /// any thread.
  virtual Result<alloc::Allocation> Run() = 0;

  /// Folds the completed computation back into the parent allocator. Called
  /// once, after Run(), on the thread that owns the parent. Must be called
  /// even when Run() failed (it clears the parent's outstanding-task
  /// bookkeeping); it returns Run()'s error in that case.
  virtual Status Commit() = 0;

 protected:
  RebalanceTask() = default;
};

/// The common RebalanceTask shape: a pure `run` closure over state captured
/// at BeginRebalance() time, and an optional owner-thread `commit` closure
/// receiving Run()'s outcome (also on failure, for bookkeeping cleanup).
class ClosureRebalanceTask : public RebalanceTask {
 public:
  using RunFn = std::function<Result<alloc::Allocation>()>;
  using CommitFn = std::function<Status(const Result<alloc::Allocation>&)>;

  ClosureRebalanceTask(RunFn run, CommitFn commit)
      : run_(std::move(run)), commit_(std::move(commit)) {}

  /// Abandonment: a task destroyed before Commit() still runs the commit
  /// closure, but with an error outcome — parents release their
  /// outstanding-task bookkeeping (TxAllo's pending-block buffer, etc.)
  /// without ever folding the abandoned mapping in.
  ~ClosureRebalanceTask() override {
    if (committed_ || !commit_) return;
    (void)commit_(Result<alloc::Allocation>(
        Status::FailedPrecondition("rebalance task abandoned before "
                                   "Commit()")));
  }

  Result<alloc::Allocation> Run() override {
    result_ = run_();
    ran_ = true;
    return result_;
  }

  Status Commit() override {
    if (!ran_) {
      return Status::FailedPrecondition(
          "RebalanceTask::Commit() before Run()");
    }
    committed_ = true;
    if (commit_) return commit_(result_);
    return result_.status();
  }

 private:
  RunFn run_;
  CommitFn commit_;
  bool ran_ = false;
  bool committed_ = false;
  Result<alloc::Allocation> result_ =
      Status::FailedPrecondition("RebalanceTask::Run() never ran");
};

/// A strategy that can run live: absorb committed blocks as they arrive and
/// refresh the full mapping at epoch boundaries. This is the interface
/// engine::RunReallocatedStream drives, so every online method — not just
/// TxAllo's hybrid controller — can reallocate a running engine.
class OnlineAllocator : public Allocator {
 public:
  OnlineAllocator(std::string name, alloc::AllocationParams params)
      : Allocator(std::move(name)), params_(params) {}

  OnlineAllocator* AsOnline() override { return this; }

  /// Absorbs one committed block into the strategy's internal state.
  virtual void ApplyBlock(const chain::Block& block) = 0;

  /// Recomputes the mapping from everything absorbed so far and returns the
  /// account-shard mapping to publish. Every account that has transacted is
  /// assigned; ids that exist only as domain padding (never seen in a
  /// transaction) may read as unassigned — engines hash-route those.
  virtual Result<alloc::Allocation> Rebalance() = 0;

  /// Snapshot/accumulate split of Rebalance(): freezes the absorbed state
  /// into a task whose Run() may execute on another thread while this
  /// allocator keeps accumulating blocks (see RebalanceTask for the full
  /// contract). Must be equivalent to Rebalance() at equal inputs — the
  /// conformance suite enforces both the equivalence and that every
  /// registered strategy supports the split. Returns nullptr when the
  /// strategy cannot snapshot; callers then fall back to the synchronous
  /// Rebalance() (the engine pipeline does this automatically).
  virtual std::unique_ptr<RebalanceTask> BeginRebalance() { return nullptr; }

  /// The mapping currently in force, before/without a Rebalance. The
  /// default — an empty all-unassigned mapping over k shards — is valid
  /// bootstrap state for an engine running with hash_route_unassigned.
  virtual alloc::Allocation CurrentAllocation() const {
    return alloc::Allocation(0, params_.num_shards);
  }

  /// The parameters this instance streams under (the one-shot path uses the
  /// per-call context's instead).
  const alloc::AllocationParams& online_params() const { return params_; }

 protected:
  alloc::AllocationParams params_;
};

/// Resolves the deterministic node iteration order for `graph`:
/// context-supplied order first, then the registry's account-hash order
/// (grown with id-order tail for accounts the registry does not know),
/// then plain id order.
std::vector<graph::NodeId> ResolveNodeOrder(const AllocationContext& context);

}  // namespace txallo::allocator

// The unified allocation-strategy API (paper §VI's method matrix as code).
//
// Every allocation method — TxAllo itself, the §II-C baselines, and any
// future ContribChain/Mosaic-style plugin — sits behind one polymorphic
// interface with two calling conventions:
//
//   * one-shot: Allocate(AllocationContext) partitions a historical
//     workload once (what the figure sweeps evaluate);
//   * online: an OnlineAllocator additionally absorbs committed blocks
//     (ApplyBlock) and refreshes the mapping on demand (Rebalance) — the
//     epoch-driven shape engine::RunReallocatedStream drives.
//
// Instances come from the string-keyed factory in allocator/registry.h
// (MakeAllocator("txallo-hybrid", options)), so benches, examples and the
// engine pick strategies by name (--allocator=...) instead of compiling
// against each method's bespoke entry point.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/alloc/metrics.h"
#include "txallo/alloc/params.h"
#include "txallo/chain/account.h"
#include "txallo/chain/block.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"
#include "txallo/graph/graph.h"

namespace txallo::allocator {

/// Everything a one-shot strategy may consume. Graph-based methods (TxAllo,
/// METIS, Louvain) read `graph`; transaction-level methods (Shard
/// Scheduler) replay `ledger`; hash routing only needs the account domain.
/// A strategy fails with InvalidArgument when a field it requires is null.
struct AllocationContext {
  /// Consolidated transaction graph (paper Definition 2).
  const graph::TransactionGraph* graph = nullptr;
  /// The raw transaction history, for strategies that replay it.
  const chain::Ledger* ledger = nullptr;
  /// Account metadata: address hashes for deterministic ordering and
  /// hash-based routing. Optional — id order / id hashing are the fallback.
  const chain::AccountRegistry* registry = nullptr;
  /// Explicit deterministic node iteration order (a permutation of
  /// [0, graph->num_nodes())). Defaults to the registry's hash order, then
  /// to id order.
  const std::vector<graph::NodeId>* node_order = nullptr;
  /// θ: shard count k, η, capacity λ, convergence ε.
  alloc::AllocationParams params;
  /// Seed for randomized strategies. Every built-in method is
  /// deterministic and ignores it; plugins get it for free.
  uint64_t seed = 0;
};

class OnlineAllocator;

/// Abstract allocation strategy. Implementations must be deterministic for
/// a given context (paper §V-B: all miners recompute the same mapping), so
/// calling Allocate twice with the same inputs yields the same mapping.
class Allocator {
 public:
  explicit Allocator(std::string name) : name_(std::move(name)) {}
  virtual ~Allocator() = default;

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// The registry key this instance was created under ("metis",
  /// "txallo-hybrid", ...).
  const std::string& Name() const { return name_; }

  /// One-shot partitioning of the context's workload into
  /// context.params.num_shards shards. The returned mapping covers the
  /// full account domain (Allocation::Validate() passes).
  virtual Result<alloc::Allocation> Allocate(
      const AllocationContext& context) = 0;

  /// Online view of this strategy, or nullptr for one-shot-only methods.
  virtual OnlineAllocator* AsOnline() { return nullptr; }

  /// Evaluates `allocation` over a transaction set under this strategy's
  /// execution semantics. The default is the plain §III-B model; overlays
  /// (brokers) override it — their runtime behavior, not their mapping, is
  /// what differs.
  virtual Result<alloc::EvaluationReport> Evaluate(
      const chain::Ledger& ledger, const alloc::Allocation& allocation,
      const alloc::AllocationParams& params) const;
  virtual Result<alloc::EvaluationReport> Evaluate(
      const std::vector<chain::Transaction>& transactions,
      const alloc::Allocation& allocation,
      const alloc::AllocationParams& params) const;

 private:
  std::string name_;
};

/// A strategy that can run live: absorb committed blocks as they arrive and
/// refresh the full mapping at epoch boundaries. This is the interface
/// engine::RunReallocatedStream drives, so every online method — not just
/// TxAllo's hybrid controller — can reallocate a running engine.
class OnlineAllocator : public Allocator {
 public:
  OnlineAllocator(std::string name, alloc::AllocationParams params)
      : Allocator(std::move(name)), params_(params) {}

  OnlineAllocator* AsOnline() override { return this; }

  /// Absorbs one committed block into the strategy's internal state.
  virtual void ApplyBlock(const chain::Block& block) = 0;

  /// Recomputes the mapping from everything absorbed so far and returns the
  /// account-shard mapping to publish. Every account that has transacted is
  /// assigned; ids that exist only as domain padding (never seen in a
  /// transaction) may read as unassigned — engines hash-route those.
  virtual Result<alloc::Allocation> Rebalance() = 0;

  /// The mapping currently in force, before/without a Rebalance. The
  /// default — an empty all-unassigned mapping over k shards — is valid
  /// bootstrap state for an engine running with hash_route_unassigned.
  virtual alloc::Allocation CurrentAllocation() const {
    return alloc::Allocation(0, params_.num_shards);
  }

  /// The parameters this instance streams under (the one-shot path uses the
  /// per-call context's instead).
  const alloc::AllocationParams& online_params() const { return params_; }

 protected:
  alloc::AllocationParams params_;
};

/// Resolves the deterministic node iteration order for `graph`:
/// context-supplied order first, then the registry's account-hash order
/// (grown with id-order tail for accounts the registry does not know),
/// then plain id order.
std::vector<graph::NodeId> ResolveNodeOrder(const AllocationContext& context);

}  // namespace txallo::allocator

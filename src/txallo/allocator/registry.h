// String-keyed factory for allocation strategies, so consumers (benches,
// examples, the engine pipeline, future services) pick methods by name:
//
//   allocator::AllocatorOptions options;
//   options.params = alloc::AllocationParams::ForExperiment(txs, k, eta);
//   options.registry = &registry;
//   auto metis = allocator::MakeAllocator("metis", options);
//   auto hybrid = allocator::MakeAllocatorFromSpec(
//       "txallo-hybrid:global-every=4", options);
//
// Specs use a uniform "name[:key=value,key=value...]" syntax. Unknown
// names, unknown option keys and malformed values all fail with
// InvalidArgument naming the offender — never silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "txallo/alloc/params.h"
#include "txallo/allocator/allocator.h"
#include "txallo/chain/account.h"
#include "txallo/common/status.h"

namespace txallo::allocator {

/// Construction-time configuration shared by every strategy. `extra` holds
/// strategy-specific key=value options (see RegisteredNames() / README for
/// the per-strategy keys).
struct AllocatorOptions {
  /// θ the strategy streams under (k, η, λ, ε). One-shot Allocate() calls
  /// use the per-call context's params instead.
  alloc::AllocationParams params;
  /// Account metadata for deterministic hash ordering/routing. Required by
  /// the txallo-* strategies; optional elsewhere.
  const chain::AccountRegistry* registry = nullptr;
  /// Seed for randomized strategies (all built-ins are deterministic).
  uint64_t seed = 0;
  /// Strategy-specific options, e.g. {{"global-every", "4"}}.
  std::map<std::string, std::string> extra;
};

/// A parsed "name[:key=value,...]" spec.
struct AllocatorSpec {
  std::string name;
  std::map<std::string, std::string> options;
};

/// Parses "key=value,key=value" (empty string = no options). Fails on a
/// clause without '=', an empty key, or a duplicate key.
Result<std::map<std::string, std::string>> ParseOptionList(
    const std::string& spec);

/// Parses "name" or "name:key=value,...".
Result<AllocatorSpec> ParseAllocatorSpec(const std::string& spec);

/// Every registered strategy name, sorted. Includes the broker decorator.
std::vector<std::string> RegisteredNames();

/// One-line description of a registered strategy (for banners/usage);
/// empty for unknown names.
std::string DescribeAllocator(const std::string& name);

/// Self-description of one strategy-specific option: everything a generated
/// usage table needs (type, default, accepted range, one-line help).
struct AllocatorOptionDoc {
  std::string key;
  std::string type;           // "uint", "double", "string".
  std::string default_value;  // Rendered default.
  std::string range;          // Human-readable constraint, e.g. ">= 1.0".
  std::string help;
};

/// Full self-description of one registered strategy.
struct AllocatorDoc {
  std::string name;
  std::string summary;
  std::vector<AllocatorOptionDoc> options;
};

/// Self-description of every registered strategy, sorted by name. The
/// source of truth for `--allocator=help` and the README's option table.
std::vector<AllocatorDoc> DescribeAllocators();

/// Generated usage table over DescribeAllocators() — what
/// `--allocator=help` prints.
std::string AllocatorUsageText();

/// Instantiates the strategy registered under `name` with
/// `options` (options.extra carries the strategy-specific keys).
Result<std::unique_ptr<Allocator>> MakeAllocator(
    const std::string& name, const AllocatorOptions& options);

/// Convenience: parses `spec` and instantiates it. Keys from the spec
/// string override same-named keys already in options.extra.
Result<std::unique_ptr<Allocator>> MakeAllocatorFromSpec(
    const std::string& spec, AllocatorOptions options);

}  // namespace txallo::allocator

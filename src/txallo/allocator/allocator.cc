#include "txallo/allocator/allocator.h"

namespace txallo::allocator {

Result<alloc::EvaluationReport> Allocator::Evaluate(
    const chain::Ledger& ledger, const alloc::Allocation& allocation,
    const alloc::AllocationParams& params) const {
  return alloc::EvaluateAllocation(ledger, allocation, params);
}

Result<alloc::EvaluationReport> Allocator::Evaluate(
    const std::vector<chain::Transaction>& transactions,
    const alloc::Allocation& allocation,
    const alloc::AllocationParams& params) const {
  return alloc::EvaluateAllocation(transactions, allocation, params);
}

std::vector<graph::NodeId> ResolveNodeOrder(const AllocationContext& context) {
  if (context.node_order != nullptr) return *context.node_order;
  const size_t num_nodes =
      context.graph != nullptr ? context.graph->num_nodes() : 0;
  if (context.registry != nullptr) {
    std::vector<graph::NodeId> order = context.registry->IdsInHashOrder();
    if (context.registry->size() > num_nodes) {
      // The registry knows accounts the graph has not seen yet (online
      // strategies rebalance mid-stream): keep only valid node ids.
      std::erase_if(order, [num_nodes](graph::NodeId v) {
        return static_cast<size_t>(v) >= num_nodes;
      });
    } else {
      // Accounts beyond the registry (synthetic ids) append in id order.
      for (size_t v = context.registry->size(); v < num_nodes; ++v) {
        order.push_back(static_cast<graph::NodeId>(v));
      }
    }
    return order;
  }
  std::vector<graph::NodeId> order(num_nodes);
  for (size_t v = 0; v < num_nodes; ++v) {
    order[v] = static_cast<graph::NodeId>(v);
  }
  return order;
}

}  // namespace txallo::allocator

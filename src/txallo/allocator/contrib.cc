#include "txallo/allocator/contrib.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

namespace txallo::allocator {

ContribStrategy::ContribStrategy(std::string name,
                                 const chain::AccountRegistry* registry,
                                 alloc::AllocationParams params,
                                 ContribOptions options)
    : OnlineAllocator(std::move(name), params),
      registry_(registry),
      options_(options),
      last_(0, params.num_shards) {}

Result<alloc::Allocation> ContribStrategy::Partition(
    const graph::TransactionGraph& graph,
    const std::vector<graph::NodeId>& node_order, uint32_t num_shards,
    const ContribOptions& options) {
  const size_t n = graph.num_nodes();
  alloc::Allocation allocation(n, num_shards);
  if (n == 0) return allocation;

  // Contribution = weighted activity. Rank in the deterministic node order
  // so equal contributions break ties identically on every node (§V-B: all
  // miners must derive the same mapping without a consensus round).
  std::vector<double> contribution(n, 0.0);
  double total_contribution = 0.0;
  for (size_t v = 0; v < n; ++v) {
    const auto id = static_cast<graph::NodeId>(v);
    contribution[v] = graph.Strength(id) + graph.SelfLoop(id);
    total_contribution += contribution[v];
  }
  std::vector<uint32_t> rank(n, 0);
  for (size_t position = 0; position < node_order.size(); ++position) {
    const graph::NodeId v = node_order[position];
    if (static_cast<size_t>(v) < n) rank[v] = static_cast<uint32_t>(position);
  }
  std::vector<graph::NodeId> by_contribution(n);
  for (size_t v = 0; v < n; ++v) {
    by_contribution[v] = static_cast<graph::NodeId>(v);
  }
  std::sort(by_contribution.begin(), by_contribution.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              if (contribution[a] != contribution[b]) {
                return contribution[a] > contribution[b];
              }
              return rank[a] < rank[b];
            });

  // Greedy stress-aware stream. capacity > 0 even for an all-isolated
  // graph (total contribution 0): fall back to spreading by count.
  const double capacity = std::max(
      options.imbalance * total_contribution / num_shards,
      std::numeric_limits<double>::min());
  std::vector<double> load(num_shards, 0.0);
  std::vector<double> affinity(num_shards, 0.0);
  for (graph::NodeId v : by_contribution) {
    std::fill(affinity.begin(), affinity.end(), 0.0);
    for (const graph::Neighbor& edge : graph.Neighbors(v)) {
      const alloc::ShardId s = allocation.shard_of(edge.node);
      if (s < num_shards) affinity[s] += edge.weight;
    }
    alloc::ShardId best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (alloc::ShardId s = 0; s < num_shards; ++s) {
      const double fill = load[s] / capacity;
      const double score =
          affinity[s] * std::max(0.0, 1.0 - fill) -
          options.stress_weight * std::max(0.0, fill - 1.0);
      const bool better =
          score > best_score ||
          (score == best_score &&
           (load[s] < load[best] || (load[s] == load[best] && s < best)));
      if (better) {
        best = s;
        best_score = score;
      }
    }
    allocation.Assign(v, best);
    // Isolated accounts still stress a shard a little, so padding spreads
    // round-robin-by-load instead of piling onto shard 0.
    load[best] += std::max(contribution[v], capacity * 1e-9);
  }
  return allocation;
}

Result<alloc::Allocation> ContribStrategy::Allocate(
    const AllocationContext& context) {
  if (context.graph == nullptr) {
    return Status::InvalidArgument(Name() +
                                   " needs AllocationContext.graph");
  }
  if (!context.graph->consolidated()) {
    return Status::InvalidArgument(
        Name() + ": the transaction graph must be consolidated before "
                 "Allocate()");
  }
  return Partition(*context.graph, ResolveNodeOrder(context),
                   context.params.num_shards, options_);
}

void ContribStrategy::ApplyBlock(const chain::Block& block) {
  builder_.AddBlock(block);
}

Result<alloc::Allocation> ContribStrategy::Rebalance() {
  builder_.Finish();
  AllocationContext context;
  context.graph = &graph_;
  context.registry = registry_;
  Result<alloc::Allocation> result =
      Partition(graph_, ResolveNodeOrder(context), params_.num_shards,
                options_);
  if (!result.ok()) return result.status();
  last_ = std::move(result.value());
  return last_;
}

std::unique_ptr<RebalanceTask> ContribStrategy::BeginRebalance() {
  builder_.Finish();
  AllocationContext context;
  context.graph = &graph_;
  context.registry = registry_;
  auto order = std::make_shared<const std::vector<graph::NodeId>>(
      ResolveNodeOrder(context));
  auto snapshot = std::make_shared<const graph::TransactionGraph>(graph_);
  return std::make_unique<ClosureRebalanceTask>(
      [snapshot, order, k = params_.num_shards,
       options = options_]() -> Result<alloc::Allocation> {
        return Partition(*snapshot, *order, k, options);
      },
      [this](const Result<alloc::Allocation>& result) -> Status {
        if (!result.ok()) return result.status();
        last_ = *result;
        return Status::OK();
      });
}

alloc::Allocation ContribStrategy::CurrentAllocation() const { return last_; }

}  // namespace txallo::allocator

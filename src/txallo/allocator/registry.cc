#include "txallo/allocator/registry.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "txallo/allocator/adapters.h"

namespace txallo::allocator {

namespace {

using OptionMap = std::map<std::string, std::string>;

// Strict typed readers: the whole value must parse, otherwise the caller
// gets an InvalidArgument naming key and value.
Status ReadUint32(const OptionMap& options, const std::string& key,
                  uint32_t* out) {
  auto it = options.find(key);
  if (it == options.end()) return Status::OK();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || v > UINT32_MAX) {
    return Status::InvalidArgument("option '" + key + "' expects a "
                                   "non-negative integer, got '" +
                                   it->second + "'");
  }
  *out = static_cast<uint32_t>(v);
  return Status::OK();
}

Status ReadDouble(const OptionMap& options, const std::string& key,
                  double* out) {
  auto it = options.find(key);
  if (it == options.end()) return Status::OK();
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("option '" + key +
                                   "' expects a number, got '" + it->second +
                                   "'");
  }
  *out = v;
  return Status::OK();
}

// Rejects any key outside the strategy's known set, so a typo'd option
// never silently falls back to its default.
Status ExpectOnly(const std::string& name, const OptionMap& options,
                  std::initializer_list<const char*> known) {
  for (const auto& [key, value] : options) {
    bool found = false;
    for (const char* k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string list;
      for (const char* k : known) {
        if (!list.empty()) list += ", ";
        list += k;
      }
      return Status::InvalidArgument(
          "unknown option '" + key + "' for allocator '" + name +
          "' (known: " + (list.empty() ? "<none>" : list) + ")");
    }
  }
  return Status::OK();
}

Status RequireRegistry(const std::string& name,
                       const AllocatorOptions& options) {
  if (options.registry == nullptr) {
    return Status::InvalidArgument(
        "allocator '" + name +
        "' requires AllocatorOptions.registry (deterministic account-hash "
        "node order)");
  }
  return Status::OK();
}

using Factory = Result<std::unique_ptr<Allocator>> (*)(
    const std::string&, const AllocatorOptions&);

Result<std::unique_ptr<Allocator>> MakeTxAlloGlobal(
    const std::string& name, const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {}));
  TXALLO_RETURN_NOT_OK(RequireRegistry(name, options));
  return std::unique_ptr<Allocator>(new TxAlloAllocator(
      name, options.registry, options.params, /*global_every=*/1));
}

Result<std::unique_ptr<Allocator>> MakeTxAlloHybrid(
    const std::string& name, const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {"global-every"}));
  TXALLO_RETURN_NOT_OK(RequireRegistry(name, options));
  uint32_t global_every = 0;  // Adaptive-only after the global bootstrap.
  TXALLO_RETURN_NOT_OK(ReadUint32(options.extra, "global-every",
                                  &global_every));
  return std::unique_ptr<Allocator>(new TxAlloAllocator(
      name, options.registry, options.params, global_every));
}

Result<std::unique_ptr<Allocator>> MakeHash(const std::string& name,
                                            const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {}));
  return std::unique_ptr<Allocator>(
      new HashStrategy(name, options.registry, options.params));
}

Result<std::unique_ptr<Allocator>> MakeMetis(const std::string& name,
                                             const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {"imbalance"}));
  baselines::metis::PartitionOptions metis_options;
  TXALLO_RETURN_NOT_OK(
      ReadDouble(options.extra, "imbalance", &metis_options.imbalance));
  if (metis_options.imbalance < 1.0) {
    return Status::InvalidArgument(
        "option 'imbalance' must be >= 1.0 for allocator '" + name + "'");
  }
  return std::unique_ptr<Allocator>(
      new MetisStrategy(name, options.params, metis_options));
}

Result<std::unique_ptr<Allocator>> MakeLouvain(
    const std::string& name, const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {"resolution"}));
  graph::LouvainOptions louvain_options;
  TXALLO_RETURN_NOT_OK(
      ReadDouble(options.extra, "resolution", &louvain_options.resolution));
  if (louvain_options.resolution <= 0.0) {
    return Status::InvalidArgument(
        "option 'resolution' must be > 0 for allocator '" + name + "'");
  }
  return std::unique_ptr<Allocator>(new LouvainStrategy(
      name, options.registry, options.params, louvain_options));
}

Result<std::unique_ptr<Allocator>> MakeShardScheduler(
    const std::string& name, const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra,
                                  {"buffer-ratio", "migration-benefit"}));
  baselines::ShardSchedulerOptions scheduler_options;
  TXALLO_RETURN_NOT_OK(ReadDouble(options.extra, "buffer-ratio",
                                  &scheduler_options.buffer_ratio));
  TXALLO_RETURN_NOT_OK(ReadDouble(options.extra, "migration-benefit",
                                  &scheduler_options.migration_benefit));
  return std::unique_ptr<Allocator>(new ShardSchedulerStrategy(
      name, options.registry, options.params, scheduler_options));
}

Result<std::unique_ptr<Allocator>> MakeBroker(const std::string& name,
                                              const AllocatorOptions& options);

struct Entry {
  const char* name;
  const char* summary;
  Factory factory;
};

// Sorted by name (RegisteredNames() relies on it).
constexpr Entry kEntries[] = {
    {"broker",
     "BrokerChain-style overlay over any inner allocator (inner=NAME, "
     "brokers=N, cross-cost=C): replicated broker accounts absorb "
     "cross-shard traffic at evaluation time",
     MakeBroker},
    {"hash",
     "SHA256(address) mod k — the history-oblivious scheme of "
     "Chainspace/Monoxide/OmniLedger/RapidChain",
     MakeHash},
    {"louvain",
     "deterministic Louvain communities packed whole into k shards "
     "(resolution=R)",
     MakeLouvain},
    {"metis",
     "from-scratch METIS-style multilevel k-way partitioner "
     "(imbalance=F >= 1.0)",
     MakeMetis},
    {"shard-scheduler",
     "Shard Scheduler (AFT'21): per-transaction streaming placement and "
     "migration (buffer-ratio=R, migration-benefit=B)",
     MakeShardScheduler},
    {"txallo-global",
     "G-TxAllo (Algorithm 1) on the full graph; online Rebalance re-runs "
     "it from scratch (the paper's Global Method)",
     MakeTxAlloGlobal},
    {"txallo-hybrid",
     "TxAllo hybrid schedule (§V-A): A-TxAllo per Rebalance with periodic "
     "G-TxAllo refreshes (global-every=N, 0 = adaptive after bootstrap)",
     MakeTxAlloHybrid},
};

Result<std::unique_ptr<Allocator>> MakeBroker(const std::string& name,
                                              const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra,
                                  {"inner", "brokers", "cross-cost"}));
  baselines::BrokerOptions broker_options;
  TXALLO_RETURN_NOT_OK(
      ReadUint32(options.extra, "brokers", &broker_options.num_brokers));
  TXALLO_RETURN_NOT_OK(ReadDouble(options.extra, "cross-cost",
                                  &broker_options.broker_cross_cost));
  // BrokerChain's backbone allocator is METIS; that is the default inner.
  std::string inner_name = "metis";
  if (auto it = options.extra.find("inner"); it != options.extra.end()) {
    inner_name = it->second;
  }
  if (inner_name == name) {
    return Status::InvalidArgument(
        "allocator 'broker' cannot wrap itself (inner=" + inner_name + ")");
  }
  AllocatorOptions inner_options = options;
  inner_options.extra.clear();  // Broker keys must not leak into the inner.
  Result<std::unique_ptr<Allocator>> inner =
      MakeAllocator(inner_name, inner_options);
  if (!inner.ok()) {
    return Status::InvalidArgument("allocator 'broker': inner allocator "
                                   "failed: " +
                                   inner.status().ToString());
  }
  return std::unique_ptr<Allocator>(
      new BrokerOverlay(name, std::move(inner.value()), options.params,
                        broker_options));
}

}  // namespace

Result<OptionMap> ParseOptionList(const std::string& spec) {
  OptionMap options;
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed option clause '" + clause +
                                     "' (expected key=value)");
    }
    const std::string key = clause.substr(0, eq);
    if (options.count(key) > 0) {
      return Status::InvalidArgument("duplicate option key '" + key + "'");
    }
    options[key] = clause.substr(eq + 1);
  }
  return options;
}

Result<AllocatorSpec> ParseAllocatorSpec(const std::string& spec) {
  AllocatorSpec parsed;
  const size_t colon = spec.find(':');
  parsed.name = spec.substr(0, colon);
  if (parsed.name.empty()) {
    return Status::InvalidArgument("empty allocator name in spec '" + spec +
                                   "'");
  }
  if (colon != std::string::npos) {
    Result<OptionMap> options = ParseOptionList(spec.substr(colon + 1));
    if (!options.ok()) return options.status();
    parsed.options = std::move(options.value());
  }
  return parsed;
}

std::vector<std::string> RegisteredNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kEntries));
  for (const Entry& entry : kEntries) names.emplace_back(entry.name);
  return names;
}

std::string DescribeAllocator(const std::string& name) {
  for (const Entry& entry : kEntries) {
    if (name == entry.name) return entry.summary;
  }
  return "";
}

Result<std::unique_ptr<Allocator>> MakeAllocator(
    const std::string& name, const AllocatorOptions& options) {
  for (const Entry& entry : kEntries) {
    if (name == entry.name) return entry.factory(name, options);
  }
  std::string known;
  for (const Entry& entry : kEntries) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  return Status::NotFound("no allocator registered under '" + name +
                          "' (registered: " + known + ")");
}

Result<std::unique_ptr<Allocator>> MakeAllocatorFromSpec(
    const std::string& spec, AllocatorOptions options) {
  Result<AllocatorSpec> parsed = ParseAllocatorSpec(spec);
  if (!parsed.ok()) return parsed.status();
  for (auto& [key, value] : parsed->options) {
    options.extra[key] = value;
  }
  return MakeAllocator(parsed->name, options);
}

}  // namespace txallo::allocator

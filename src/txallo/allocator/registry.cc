#include "txallo/allocator/registry.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "txallo/allocator/adapters.h"
#include "txallo/allocator/contrib.h"
#include "txallo/common/spec.h"

namespace txallo::allocator {

namespace {

using OptionMap = std::map<std::string, std::string>;

// Strict typed readers: the whole value must parse, otherwise the caller
// gets an InvalidArgument naming key and value.
Status ReadUint32(const OptionMap& options, const std::string& key,
                  uint32_t* out) {
  auto it = options.find(key);
  if (it == options.end()) return Status::OK();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || v > UINT32_MAX) {
    return Status::InvalidArgument("option '" + key + "' expects a "
                                   "non-negative integer, got '" +
                                   it->second + "'");
  }
  *out = static_cast<uint32_t>(v);
  return Status::OK();
}

Status ReadDouble(const OptionMap& options, const std::string& key,
                  double* out) {
  auto it = options.find(key);
  if (it == options.end()) return Status::OK();
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("option '" + key +
                                   "' expects a number, got '" + it->second +
                                   "'");
  }
  *out = v;
  return Status::OK();
}

// Rejects any key outside the strategy's known set, so a typo'd option
// never silently falls back to its default.
Status ExpectOnly(const std::string& name, const OptionMap& options,
                  std::initializer_list<const char*> known) {
  for (const auto& [key, value] : options) {
    bool found = false;
    for (const char* k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string list;
      for (const char* k : known) {
        if (!list.empty()) list += ", ";
        list += k;
      }
      return Status::InvalidArgument(
          "unknown option '" + key + "' for allocator '" + name +
          "' (known: " + (list.empty() ? "<none>" : list) + ")");
    }
  }
  return Status::OK();
}

Status RequireRegistry(const std::string& name,
                       const AllocatorOptions& options) {
  if (options.registry == nullptr) {
    return Status::InvalidArgument(
        "allocator '" + name +
        "' requires AllocatorOptions.registry (deterministic account-hash "
        "node order)");
  }
  return Status::OK();
}

using Factory = Result<std::unique_ptr<Allocator>> (*)(
    const std::string&, const AllocatorOptions&);

Result<std::unique_ptr<Allocator>> MakeTxAlloGlobal(
    const std::string& name, const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {}));
  TXALLO_RETURN_NOT_OK(RequireRegistry(name, options));
  return std::unique_ptr<Allocator>(new TxAlloAllocator(
      name, options.registry, options.params, /*global_every=*/1));
}

Result<std::unique_ptr<Allocator>> MakeTxAlloHybrid(
    const std::string& name, const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {"global-every"}));
  TXALLO_RETURN_NOT_OK(RequireRegistry(name, options));
  uint32_t global_every = 0;  // Adaptive-only after the global bootstrap.
  TXALLO_RETURN_NOT_OK(ReadUint32(options.extra, "global-every",
                                  &global_every));
  return std::unique_ptr<Allocator>(new TxAlloAllocator(
      name, options.registry, options.params, global_every));
}

Result<std::unique_ptr<Allocator>> MakeHash(const std::string& name,
                                            const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {}));
  return std::unique_ptr<Allocator>(
      new HashStrategy(name, options.registry, options.params));
}

Result<std::unique_ptr<Allocator>> MakeMetis(const std::string& name,
                                             const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {"imbalance"}));
  baselines::metis::PartitionOptions metis_options;
  TXALLO_RETURN_NOT_OK(
      ReadDouble(options.extra, "imbalance", &metis_options.imbalance));
  if (metis_options.imbalance < 1.0) {
    return Status::InvalidArgument(
        "option 'imbalance' must be >= 1.0 for allocator '" + name + "'");
  }
  return std::unique_ptr<Allocator>(
      new MetisStrategy(name, options.params, metis_options));
}

Result<std::unique_ptr<Allocator>> MakeLouvain(
    const std::string& name, const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra, {"resolution"}));
  graph::LouvainOptions louvain_options;
  TXALLO_RETURN_NOT_OK(
      ReadDouble(options.extra, "resolution", &louvain_options.resolution));
  if (louvain_options.resolution <= 0.0) {
    return Status::InvalidArgument(
        "option 'resolution' must be > 0 for allocator '" + name + "'");
  }
  return std::unique_ptr<Allocator>(new LouvainStrategy(
      name, options.registry, options.params, louvain_options));
}

Result<std::unique_ptr<Allocator>> MakeShardScheduler(
    const std::string& name, const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra,
                                  {"buffer-ratio", "migration-benefit"}));
  baselines::ShardSchedulerOptions scheduler_options;
  TXALLO_RETURN_NOT_OK(ReadDouble(options.extra, "buffer-ratio",
                                  &scheduler_options.buffer_ratio));
  TXALLO_RETURN_NOT_OK(ReadDouble(options.extra, "migration-benefit",
                                  &scheduler_options.migration_benefit));
  return std::unique_ptr<Allocator>(new ShardSchedulerStrategy(
      name, options.registry, options.params, scheduler_options));
}

Result<std::unique_ptr<Allocator>> MakeBroker(const std::string& name,
                                              const AllocatorOptions& options);

Result<std::unique_ptr<Allocator>> MakeContrib(
    const std::string& name, const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra,
                                  {"imbalance", "stress-weight"}));
  ContribOptions contrib_options;
  TXALLO_RETURN_NOT_OK(
      ReadDouble(options.extra, "imbalance", &contrib_options.imbalance));
  TXALLO_RETURN_NOT_OK(ReadDouble(options.extra, "stress-weight",
                                  &contrib_options.stress_weight));
  if (contrib_options.imbalance < 1.0) {
    return Status::InvalidArgument(
        "option 'imbalance' must be >= 1.0 for allocator '" + name + "'");
  }
  if (contrib_options.stress_weight < 0.0) {
    return Status::InvalidArgument(
        "option 'stress-weight' must be >= 0 for allocator '" + name + "'");
  }
  return std::unique_ptr<Allocator>(new ContribStrategy(
      name, options.registry, options.params, contrib_options));
}

// Per-option self-description literal; kEntries points at static arrays of
// these, and DescribeAllocators()/AllocatorUsageText() render them.
struct OptionDocLit {
  const char* key;
  const char* type;
  const char* default_value;
  const char* range;
  const char* help;
};

constexpr OptionDocLit kBrokerOptionDocs[] = {
    {"inner", "string", "metis", "any registered name except broker",
     "backbone allocator whose mapping the overlay publishes"},
    {"brokers", "uint", "16", ">= 0",
     "how many of the most active accounts become brokers"},
    {"cross-cost", "double", "1.2", ">= 0",
     "per-shard workload of one brokered cross-shard sub-transaction"},
};
constexpr OptionDocLit kContribOptionDocs[] = {
    {"imbalance", "double", "1.1", ">= 1.0",
     "per-shard contribution capacity slack (capacity = imbalance*total/k)"},
    {"stress-weight", "double", "1.0", ">= 0",
     "overload penalty weight once a shard exceeds its capacity"},
};
constexpr OptionDocLit kLouvainOptionDocs[] = {
    {"resolution", "double", "1.0", "> 0",
     "modularity resolution (1.0 = classic modularity)"},
};
constexpr OptionDocLit kMetisOptionDocs[] = {
    {"imbalance", "double", "1.03", ">= 1.0",
     "vertex-weight balance tolerance (1.03 = METIS default)"},
};
constexpr OptionDocLit kShardSchedulerOptionDocs[] = {
    {"buffer-ratio", "double", "1.0", "any",
     "shards accept placements while load <= ratio * average"},
    {"migration-benefit", "double", "1.5", "any",
     "minimum interaction-weight gain factor before an account migrates"},
};
constexpr OptionDocLit kTxAlloHybridOptionDocs[] = {
    {"global-every", "uint", "0", ">= 0",
     "G-TxAllo every N rebalances (0 = adaptive-only after the global "
     "bootstrap)"},
};

struct Entry {
  const char* name;
  const char* summary;
  Factory factory;
  const OptionDocLit* options = nullptr;
  size_t num_options = 0;
};

// Sorted by name (RegisteredNames() relies on it).
constexpr Entry kEntries[] = {
    {"broker",
     "BrokerChain-style overlay over any inner allocator (inner=NAME, "
     "brokers=N, cross-cost=C): replicated broker accounts absorb "
     "cross-shard traffic at evaluation time",
     MakeBroker, kBrokerOptionDocs, std::size(kBrokerOptionDocs)},
    {"contrib",
     "ContribChain-style contribution/stress-weighted greedy placement: "
     "high-contribution accounts anchor shards, stress discounts overloaded "
     "ones (imbalance=F, stress-weight=W)",
     MakeContrib, kContribOptionDocs, std::size(kContribOptionDocs)},
    {"hash",
     "SHA256(address) mod k — the history-oblivious scheme of "
     "Chainspace/Monoxide/OmniLedger/RapidChain",
     MakeHash},
    {"louvain",
     "deterministic Louvain communities packed whole into k shards "
     "(resolution=R)",
     MakeLouvain, kLouvainOptionDocs, std::size(kLouvainOptionDocs)},
    {"metis",
     "from-scratch METIS-style multilevel k-way partitioner "
     "(imbalance=F >= 1.0)",
     MakeMetis, kMetisOptionDocs, std::size(kMetisOptionDocs)},
    {"shard-scheduler",
     "Shard Scheduler (AFT'21): per-transaction streaming placement and "
     "migration (buffer-ratio=R, migration-benefit=B)",
     MakeShardScheduler, kShardSchedulerOptionDocs,
     std::size(kShardSchedulerOptionDocs)},
    {"txallo-global",
     "G-TxAllo (Algorithm 1) on the full graph; online Rebalance re-runs "
     "it from scratch (the paper's Global Method)",
     MakeTxAlloGlobal},
    {"txallo-hybrid",
     "TxAllo hybrid schedule (§V-A): A-TxAllo per Rebalance with periodic "
     "G-TxAllo refreshes (global-every=N, 0 = adaptive after bootstrap)",
     MakeTxAlloHybrid, kTxAlloHybridOptionDocs,
     std::size(kTxAlloHybridOptionDocs)},
};

Result<std::unique_ptr<Allocator>> MakeBroker(const std::string& name,
                                              const AllocatorOptions& options) {
  TXALLO_RETURN_NOT_OK(ExpectOnly(name, options.extra,
                                  {"inner", "brokers", "cross-cost"}));
  baselines::BrokerOptions broker_options;
  TXALLO_RETURN_NOT_OK(
      ReadUint32(options.extra, "brokers", &broker_options.num_brokers));
  TXALLO_RETURN_NOT_OK(ReadDouble(options.extra, "cross-cost",
                                  &broker_options.broker_cross_cost));
  // BrokerChain's backbone allocator is METIS; that is the default inner.
  std::string inner_name = "metis";
  if (auto it = options.extra.find("inner"); it != options.extra.end()) {
    inner_name = it->second;
  }
  if (inner_name == name) {
    return Status::InvalidArgument(
        "allocator 'broker' cannot wrap itself (inner=" + inner_name + ")");
  }
  AllocatorOptions inner_options = options;
  inner_options.extra.clear();  // Broker keys must not leak into the inner.
  Result<std::unique_ptr<Allocator>> inner =
      MakeAllocator(inner_name, inner_options);
  if (!inner.ok()) {
    return Status::InvalidArgument("allocator 'broker': inner allocator "
                                   "failed: " +
                                   inner.status().ToString());
  }
  return std::unique_ptr<Allocator>(
      new BrokerOverlay(name, std::move(inner.value()), options.params,
                        broker_options));
}

}  // namespace

Result<OptionMap> ParseOptionList(const std::string& spec) {
  return common::ParseOptionList(spec);
}

Result<AllocatorSpec> ParseAllocatorSpec(const std::string& spec) {
  Result<common::ParsedSpec> parsed = common::ParseSpec(spec);
  if (!parsed.ok()) {
    // Keep the historical error wording for the empty-name case; option
    // grammar errors pass through unchanged.
    if (spec.empty() || spec[0] == ':') {
      return Status::InvalidArgument("empty allocator name in spec '" + spec +
                                     "'");
    }
    return parsed.status();
  }
  return AllocatorSpec{std::move(parsed->name), std::move(parsed->options)};
}

std::vector<std::string> RegisteredNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kEntries));
  for (const Entry& entry : kEntries) names.emplace_back(entry.name);
  return names;
}

std::string DescribeAllocator(const std::string& name) {
  for (const Entry& entry : kEntries) {
    if (name == entry.name) return entry.summary;
  }
  return "";
}

std::vector<AllocatorDoc> DescribeAllocators() {
  std::vector<AllocatorDoc> docs;
  docs.reserve(std::size(kEntries));
  for (const Entry& entry : kEntries) {
    AllocatorDoc doc;
    doc.name = entry.name;
    doc.summary = entry.summary;
    doc.options.reserve(entry.num_options);
    for (size_t i = 0; i < entry.num_options; ++i) {
      const OptionDocLit& option = entry.options[i];
      doc.options.push_back(AllocatorOptionDoc{option.key, option.type,
                                               option.default_value,
                                               option.range, option.help});
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::string AllocatorUsageText() {
  std::string out =
      "Allocator specs: NAME or NAME:key=value[,key=value...]\n\n";
  for (const AllocatorDoc& doc : DescribeAllocators()) {
    out += doc.name + "\n    " + doc.summary + "\n";
    if (doc.options.empty()) {
      out += "    (no options)\n";
    }
    for (const AllocatorOptionDoc& option : doc.options) {
      out += "    " + option.key + "=<" + option.type + ">  default " +
             option.default_value + ", " + option.range + " — " +
             option.help + "\n";
    }
  }
  out +=
      "\nExamples: --allocator=txallo-hybrid:global-every=4\n"
      "          --allocator=\"broker:inner=contrib,brokers=8\"\n";
  return out;
}

Result<std::unique_ptr<Allocator>> MakeAllocator(
    const std::string& name, const AllocatorOptions& options) {
  for (const Entry& entry : kEntries) {
    if (name == entry.name) return entry.factory(name, options);
  }
  std::string known;
  for (const Entry& entry : kEntries) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  return Status::NotFound("no allocator registered under '" + name +
                          "' (registered: " + known + ")");
}

Result<std::unique_ptr<Allocator>> MakeAllocatorFromSpec(
    const std::string& spec, AllocatorOptions options) {
  Result<AllocatorSpec> parsed = ParseAllocatorSpec(spec);
  if (!parsed.ok()) return parsed.status();
  for (auto& [key, value] : parsed->options) {
    options.extra[key] = value;
  }
  return MakeAllocator(parsed->name, options);
}

}  // namespace txallo::allocator

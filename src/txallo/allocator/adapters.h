// Adapters wrapping every existing allocation method behind the unified
// Allocator/OnlineAllocator strategy API. Each adapter supports both
// calling conventions:
//
//   * Allocate() is stateless per call — it partitions the context's
//     workload from scratch, so repeated calls are deterministic;
//   * the online path (ApplyBlock/Rebalance) streams: graph-based methods
//     accumulate their own transaction graph and re-partition it each
//     Rebalance, which is what lets hash/METIS/Louvain/Shard-Scheduler run
//     live on the parallel engine alongside TxAllo.
//
// Construct these via allocator/registry.h unless a call site needs one
// concrete strategy (e.g. tests pinning TxAllo's hybrid schedule).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "txallo/allocator/allocator.h"
#include "txallo/baselines/broker.h"
#include "txallo/baselines/metis/partitioner.h"
#include "txallo/baselines/shard_scheduler.h"
#include "txallo/core/controller.h"
#include "txallo/graph/builder.h"
#include "txallo/graph/louvain.h"

namespace txallo::allocator {

/// TxAllo (paper Algorithms 1 + 2). One class covers both registered
/// strategies: "txallo-global" re-runs G-TxAllo at every Rebalance
/// (global_every = 1, the paper's "Global Method" timeline curve) and
/// "txallo-hybrid" runs A-TxAllo with periodic G-TxAllo refreshes
/// (global_every = n > 1; 0 = adaptive-only after the global bootstrap).
/// The first Rebalance is always global — there is no previous mapping to
/// adapt. Online use requires a registry (deterministic hash node order).
class TxAlloAllocator : public OnlineAllocator {
 public:
  TxAlloAllocator(std::string name, const chain::AccountRegistry* registry,
                  alloc::AllocationParams params, uint32_t global_every);

  Result<alloc::Allocation> Allocate(const AllocationContext& context) override;
  void ApplyBlock(const chain::Block& block) override;
  Result<alloc::Allocation> Rebalance() override;
  std::unique_ptr<RebalanceTask> BeginRebalance() override;
  alloc::Allocation CurrentAllocation() const override;

  const core::TxAlloController& controller() const { return controller_; }

 private:
  // The hybrid schedule's global-vs-adaptive decision for rebalance number
  // `rebalances_` (already incremented).
  bool GlobalNow() const;

  core::TxAlloController controller_;
  uint32_t global_every_;
  uint64_t rebalances_ = 0;
  // Double-buffer bookkeeping while a RebalanceTask is outstanding: the
  // task steps a clone of the controller, and blocks applied meanwhile are
  // buffered here so Commit() can replay them into the stepped clone before
  // swapping it in (yielding the exact state the synchronous path reaches).
  bool task_outstanding_ = false;
  std::vector<chain::Block> pending_blocks_;
};

/// SHA256(address) mod k (Chainspace/Monoxide/OmniLedger/RapidChain,
/// paper §II-C). History-oblivious: online mode only tracks the account
/// domain. With a registry the address hash routes; without one the id
/// hash does.
class HashStrategy : public OnlineAllocator {
 public:
  HashStrategy(std::string name, const chain::AccountRegistry* registry,
               alloc::AllocationParams params);

  Result<alloc::Allocation> Allocate(const AllocationContext& context) override;
  void ApplyBlock(const chain::Block& block) override;
  Result<alloc::Allocation> Rebalance() override;
  std::unique_ptr<RebalanceTask> BeginRebalance() override;
  alloc::Allocation CurrentAllocation() const override;

 private:
  const chain::AccountRegistry* registry_;
  size_t num_accounts_seen_ = 0;
};

/// The from-scratch METIS-style multilevel partitioner (paper §II-C's
/// backbone baseline). Online mode accumulates its own transaction graph
/// and re-partitions it every Rebalance.
class MetisStrategy : public OnlineAllocator {
 public:
  MetisStrategy(std::string name, alloc::AllocationParams params,
                baselines::metis::PartitionOptions options);

  Result<alloc::Allocation> Allocate(const AllocationContext& context) override;
  void ApplyBlock(const chain::Block& block) override;
  Result<alloc::Allocation> Rebalance() override;
  std::unique_ptr<RebalanceTask> BeginRebalance() override;
  alloc::Allocation CurrentAllocation() const override;

 private:
  baselines::metis::PartitionOptions options_;
  graph::TransactionGraph graph_;
  graph::GraphBuilder builder_{&graph_};
  alloc::Allocation last_;
};

/// Pure community detection as an allocator: deterministic Louvain finds
/// communities, then whole communities pack into the k shards
/// greedily-largest-first (LPT bin packing by community weight). The
/// ablation point between METIS (edge cut only) and TxAllo (throughput
/// objective).
class LouvainStrategy : public OnlineAllocator {
 public:
  LouvainStrategy(std::string name, const chain::AccountRegistry* registry,
                  alloc::AllocationParams params,
                  graph::LouvainOptions options);

  Result<alloc::Allocation> Allocate(const AllocationContext& context) override;
  void ApplyBlock(const chain::Block& block) override;
  Result<alloc::Allocation> Rebalance() override;
  std::unique_ptr<RebalanceTask> BeginRebalance() override;
  alloc::Allocation CurrentAllocation() const override;

 private:
  // Louvain + packing over one consolidated graph.
  Result<alloc::Allocation> Partition(
      const graph::TransactionGraph& graph,
      const std::vector<graph::NodeId>& node_order, uint32_t num_shards) const;

  const chain::AccountRegistry* registry_;
  graph::LouvainOptions options_;
  graph::TransactionGraph graph_;
  graph::GraphBuilder builder_{&graph_};
  alloc::Allocation last_;
};

/// Shard Scheduler (Król et al., AFT'21): transaction-level streaming
/// placement and migration. The natural online method — ApplyBlock feeds
/// every transaction through the scheduler; Rebalance snapshots the
/// mapping it already maintains.
class ShardSchedulerStrategy : public OnlineAllocator {
 public:
  ShardSchedulerStrategy(std::string name,
                         const chain::AccountRegistry* registry,
                         alloc::AllocationParams params,
                         baselines::ShardSchedulerOptions options);

  Result<alloc::Allocation> Allocate(const AllocationContext& context) override;
  void ApplyBlock(const chain::Block& block) override;
  Result<alloc::Allocation> Rebalance() override;
  std::unique_ptr<RebalanceTask> BeginRebalance() override;
  alloc::Allocation CurrentAllocation() const override;

 private:
  const chain::AccountRegistry* registry_;
  baselines::ShardSchedulerOptions options_;
  baselines::ShardScheduler scheduler_;
  size_t num_accounts_seen_ = 0;
};

/// BrokerChain-style decorator (Huang et al., INFOCOM'22): composes over
/// ANY inner allocator. The mapping is the inner strategy's; what changes
/// is the execution semantics — Evaluate() prices cross-shard transactions
/// through replicated broker accounts (EvaluateWithBrokers). Brokers are
/// re-selected from the observed traffic at every Allocate/Rebalance.
/// Online-capable iff the inner strategy is.
class BrokerOverlay : public OnlineAllocator {
 public:
  BrokerOverlay(std::string name, std::unique_ptr<Allocator> inner,
                alloc::AllocationParams params,
                baselines::BrokerOptions options);

  OnlineAllocator* AsOnline() override {
    return inner_->AsOnline() != nullptr ? this : nullptr;
  }

  Result<alloc::Allocation> Allocate(const AllocationContext& context) override;
  void ApplyBlock(const chain::Block& block) override;
  Result<alloc::Allocation> Rebalance() override;
  std::unique_ptr<RebalanceTask> BeginRebalance() override;
  alloc::Allocation CurrentAllocation() const override;

  Result<alloc::EvaluationReport> Evaluate(
      const chain::Ledger& ledger, const alloc::Allocation& allocation,
      const alloc::AllocationParams& params) const override;
  Result<alloc::EvaluationReport> Evaluate(
      const std::vector<chain::Transaction>& transactions,
      const alloc::Allocation& allocation,
      const alloc::AllocationParams& params) const override;

  const Allocator& inner() const { return *inner_; }
  const std::vector<chain::AccountId>& brokers() const { return brokers_; }

 private:
  std::unique_ptr<Allocator> inner_;
  baselines::BrokerOptions options_;
  // Traffic the overlay has observed, for broker selection in online mode.
  graph::TransactionGraph graph_;
  graph::GraphBuilder builder_{&graph_};
  std::vector<chain::AccountId> brokers_;
};

}  // namespace txallo::allocator

// ContribChain-style contribution/stress-weighted allocator (PAPERS.md:
// Huang et al., "ContribChain"). Accounts earn a *contribution* score from
// their observed activity (weighted degree + self-loops in the accumulated
// transaction graph); shards carry *stress* (the contribution already
// packed into them). Placement is a deterministic greedy stream over
// accounts in descending contribution order: each account lands on the
// shard maximizing its affinity to already-placed neighbors, discounted by
// that shard's stress (an LDG-style multiplicative penalty with a hard
// capacity derived from `imbalance`). High-contribution accounts are placed
// first, so the heavy hitters anchor shards and the long tail folds around
// them — the ContribChain intuition that node contribution, not just edge
// cut, should steer allocation.
//
// Registered as "contrib" (options: imbalance >= 1.0, stress-weight >= 0);
// the conformance suite, allocator_matrix and every --allocator/--methods
// flag pick it up automatically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "txallo/allocator/allocator.h"
#include "txallo/graph/builder.h"

namespace txallo::allocator {

struct ContribOptions {
  /// Per-shard contribution capacity slack: capacity = imbalance * total
  /// contribution / k. Must be >= 1.0.
  double imbalance = 1.1;
  /// Weight of the overload penalty once a shard exceeds its capacity
  /// (keeps the fallback ordering stress-aware instead of arbitrary).
  double stress_weight = 1.0;
};

class ContribStrategy : public OnlineAllocator {
 public:
  ContribStrategy(std::string name, const chain::AccountRegistry* registry,
                  alloc::AllocationParams params, ContribOptions options);

  Result<alloc::Allocation> Allocate(const AllocationContext& context) override;
  void ApplyBlock(const chain::Block& block) override;
  Result<alloc::Allocation> Rebalance() override;
  std::unique_ptr<RebalanceTask> BeginRebalance() override;
  alloc::Allocation CurrentAllocation() const override;

 private:
  /// Pure (static) partition of one consolidated graph — the same routine
  /// backs the one-shot, synchronous-online and background-task paths, so
  /// they cannot diverge.
  static Result<alloc::Allocation> Partition(
      const graph::TransactionGraph& graph,
      const std::vector<graph::NodeId>& node_order, uint32_t num_shards,
      const ContribOptions& options);

  const chain::AccountRegistry* registry_;
  ContribOptions options_;
  graph::TransactionGraph graph_;
  graph::GraphBuilder builder_{&graph_};
  alloc::Allocation last_;
};

}  // namespace txallo::allocator

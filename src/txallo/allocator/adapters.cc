#include "txallo/allocator/adapters.h"

#include <algorithm>
#include <utility>

#include "txallo/common/sha256.h"
#include "txallo/core/global.h"
#include "txallo/graph/csr.h"

namespace txallo::allocator {

namespace {

// The account domain a one-shot mapping must cover: the widest of the
// context's graph, registry and explicit order.
size_t DomainSize(const AllocationContext& context) {
  size_t n = context.graph != nullptr ? context.graph->num_nodes() : 0;
  if (context.registry != nullptr) n = std::max(n, context.registry->size());
  return n;
}

// Hash mapping over `domain` accounts: address hash for ids the registry
// knows, id hash for the synthetic tail beyond it. Keeps registry-known
// accounts' placement stable as the domain grows — no global reshard when
// one synthetic id appears.
alloc::Allocation HashOverDomain(const chain::AccountRegistry* registry,
                                 size_t domain, uint32_t num_shards) {
  const size_t known = registry != nullptr ? registry->size() : 0;
  alloc::Allocation allocation(domain, num_shards);
  for (size_t a = 0; a < domain; ++a) {
    const auto id = static_cast<chain::AccountId>(a);
    const uint64_t key = a < known ? registry->OrderKey(id)
                                   : Sha256::Hash64(static_cast<uint64_t>(a));
    allocation.Assign(id, static_cast<alloc::ShardId>(key % num_shards));
  }
  return allocation;
}

Status RequireGraph(const AllocationContext& context, const char* who) {
  if (context.graph == nullptr) {
    return Status::InvalidArgument(std::string(who) +
                                   " needs AllocationContext.graph");
  }
  if (!context.graph->consolidated()) {
    return Status::InvalidArgument(std::string(who) +
                                   ": the transaction graph must be "
                                   "consolidated before Allocate()");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// TxAllo (global + hybrid)
// ---------------------------------------------------------------------------

TxAlloAllocator::TxAlloAllocator(std::string name,
                                 const chain::AccountRegistry* registry,
                                 alloc::AllocationParams params,
                                 uint32_t global_every)
    : OnlineAllocator(std::move(name), params),
      controller_(registry, params),
      global_every_(global_every) {}

Result<alloc::Allocation> TxAlloAllocator::Allocate(
    const AllocationContext& context) {
  TXALLO_RETURN_NOT_OK(RequireGraph(context, Name().c_str()));
  const std::vector<graph::NodeId> order = ResolveNodeOrder(context);
  return core::RunGlobalTxAllo(*context.graph, order, context.params);
}

void TxAlloAllocator::ApplyBlock(const chain::Block& block) {
  controller_.ApplyBlock(block);
}

Result<alloc::Allocation> TxAlloAllocator::Rebalance() {
  if (controller_.transactions_applied() == 0) {
    // Nothing absorbed yet: there is no workload to optimize against.
    return controller_.allocation();
  }
  ++rebalances_;
  const bool global_now =
      rebalances_ == 1 ||
      (global_every_ > 0 && rebalances_ % global_every_ == 0);
  if (global_now) {
    Result<core::GlobalRunInfo> info = controller_.StepGlobal();
    if (!info.ok()) return info.status();
  } else {
    Result<core::AdaptiveRunInfo> info = controller_.StepAdaptive();
    if (!info.ok()) return info.status();
  }
  return controller_.allocation();
}

alloc::Allocation TxAlloAllocator::CurrentAllocation() const {
  return controller_.allocation();
}

// ---------------------------------------------------------------------------
// Hash routing
// ---------------------------------------------------------------------------

HashStrategy::HashStrategy(std::string name,
                           const chain::AccountRegistry* registry,
                           alloc::AllocationParams params)
    : OnlineAllocator(std::move(name), params), registry_(registry) {}

Result<alloc::Allocation> HashStrategy::Allocate(
    const AllocationContext& context) {
  return HashOverDomain(context.registry, DomainSize(context),
                        context.params.num_shards);
}

void HashStrategy::ApplyBlock(const chain::Block& block) {
  for (const chain::Transaction& tx : block.transactions()) {
    if (tx.accounts().empty()) continue;
    // accounts() is sorted; the widest id grows the domain.
    num_accounts_seen_ = std::max(
        num_accounts_seen_, static_cast<size_t>(tx.accounts().back()) + 1);
  }
}

Result<alloc::Allocation> HashStrategy::Rebalance() {
  return CurrentAllocation();
}

alloc::Allocation HashStrategy::CurrentAllocation() const {
  const size_t domain =
      registry_ != nullptr ? std::max(registry_->size(), num_accounts_seen_)
                           : num_accounts_seen_;
  return HashOverDomain(registry_, domain, params_.num_shards);
}

// ---------------------------------------------------------------------------
// METIS
// ---------------------------------------------------------------------------

MetisStrategy::MetisStrategy(std::string name, alloc::AllocationParams params,
                             baselines::metis::PartitionOptions options)
    : OnlineAllocator(std::move(name), params),
      options_(options),
      last_(0, params.num_shards) {}

Result<alloc::Allocation> MetisStrategy::Allocate(
    const AllocationContext& context) {
  TXALLO_RETURN_NOT_OK(RequireGraph(context, Name().c_str()));
  return baselines::metis::PartitionGraph(
      *context.graph, context.params.num_shards, options_);
}

void MetisStrategy::ApplyBlock(const chain::Block& block) {
  builder_.AddBlock(block);
}

Result<alloc::Allocation> MetisStrategy::Rebalance() {
  builder_.Finish();
  if (graph_.num_nodes() == 0) return last_;
  Result<alloc::Allocation> result = baselines::metis::PartitionGraph(
      graph_, params_.num_shards, options_);
  if (!result.ok()) return result.status();
  last_ = std::move(result.value());
  return last_;
}

alloc::Allocation MetisStrategy::CurrentAllocation() const { return last_; }

// ---------------------------------------------------------------------------
// Louvain communities, packed into k shards
// ---------------------------------------------------------------------------

LouvainStrategy::LouvainStrategy(std::string name,
                                 const chain::AccountRegistry* registry,
                                 alloc::AllocationParams params,
                                 graph::LouvainOptions options)
    : OnlineAllocator(std::move(name), params),
      registry_(registry),
      options_(options),
      last_(0, params.num_shards) {}

Result<alloc::Allocation> LouvainStrategy::Partition(
    const graph::TransactionGraph& graph,
    const std::vector<graph::NodeId>& node_order, uint32_t num_shards) const {
  const size_t n = graph.num_nodes();
  if (n == 0) return alloc::Allocation(0, num_shards);
  const graph::CsrGraph csr = graph::CsrGraph::FromGraph(graph);
  const graph::LouvainResult louvain =
      graph::RunLouvain(csr, node_order, options_);

  // Pack whole communities into shards: heaviest community first into the
  // currently lightest shard (LPT). Keeps communities intact — the point of
  // this baseline — at the price of coarse balance when communities are few.
  std::vector<double> community_weight(louvain.num_communities, 0.0);
  for (size_t v = 0; v < n; ++v) {
    community_weight[louvain.community[v]] +=
        csr.Strength(static_cast<graph::NodeId>(v)) +
        csr.SelfLoop(static_cast<graph::NodeId>(v));
  }
  std::vector<uint32_t> by_weight(louvain.num_communities);
  for (uint32_t c = 0; c < louvain.num_communities; ++c) by_weight[c] = c;
  std::sort(by_weight.begin(), by_weight.end(),
            [&community_weight](uint32_t a, uint32_t b) {
              if (community_weight[a] != community_weight[b]) {
                return community_weight[a] > community_weight[b];
              }
              return a < b;
            });
  std::vector<double> shard_load(num_shards, 0.0);
  std::vector<alloc::ShardId> shard_of_community(louvain.num_communities, 0);
  for (uint32_t c : by_weight) {
    alloc::ShardId best = 0;
    for (alloc::ShardId s = 1; s < num_shards; ++s) {
      if (shard_load[s] < shard_load[best]) best = s;
    }
    shard_of_community[c] = best;
    shard_load[best] += community_weight[c];
  }
  alloc::Allocation allocation(n, num_shards);
  for (size_t v = 0; v < n; ++v) {
    allocation.Assign(static_cast<chain::AccountId>(v),
                      shard_of_community[louvain.community[v]]);
  }
  return allocation;
}

Result<alloc::Allocation> LouvainStrategy::Allocate(
    const AllocationContext& context) {
  TXALLO_RETURN_NOT_OK(RequireGraph(context, Name().c_str()));
  return Partition(*context.graph, ResolveNodeOrder(context),
                   context.params.num_shards);
}

void LouvainStrategy::ApplyBlock(const chain::Block& block) {
  builder_.AddBlock(block);
}

Result<alloc::Allocation> LouvainStrategy::Rebalance() {
  builder_.Finish();
  AllocationContext context;
  context.graph = &graph_;
  context.registry = registry_;
  Result<alloc::Allocation> result =
      Partition(graph_, ResolveNodeOrder(context), params_.num_shards);
  if (!result.ok()) return result.status();
  last_ = std::move(result.value());
  return last_;
}

alloc::Allocation LouvainStrategy::CurrentAllocation() const { return last_; }

// ---------------------------------------------------------------------------
// Shard Scheduler
// ---------------------------------------------------------------------------

ShardSchedulerStrategy::ShardSchedulerStrategy(
    std::string name, const chain::AccountRegistry* registry,
    alloc::AllocationParams params, baselines::ShardSchedulerOptions options)
    : OnlineAllocator(std::move(name), params),
      registry_(registry),
      options_(options),
      scheduler_(params.num_shards, params.eta, options) {}

Result<alloc::Allocation> ShardSchedulerStrategy::Allocate(
    const AllocationContext& context) {
  if (context.ledger == nullptr) {
    return Status::InvalidArgument(
        Name() + " needs AllocationContext.ledger (it replays the "
                 "transaction stream)");
  }
  baselines::ShardScheduler scheduler(context.params.num_shards,
                                      context.params.eta, options_);
  scheduler.ProcessLedger(*context.ledger);
  return scheduler.SnapshotAllocation(DomainSize(context));
}

void ShardSchedulerStrategy::ApplyBlock(const chain::Block& block) {
  for (const chain::Transaction& tx : block.transactions()) {
    scheduler_.Process(tx);
    if (!tx.accounts().empty()) {
      num_accounts_seen_ = std::max(
          num_accounts_seen_, static_cast<size_t>(tx.accounts().back()) + 1);
    }
  }
}

Result<alloc::Allocation> ShardSchedulerStrategy::Rebalance() {
  return CurrentAllocation();
}

alloc::Allocation ShardSchedulerStrategy::CurrentAllocation() const {
  const size_t domain =
      registry_ != nullptr ? std::max(registry_->size(), num_accounts_seen_)
                           : num_accounts_seen_;
  return scheduler_.SnapshotAllocation(domain);
}

// ---------------------------------------------------------------------------
// Broker overlay (decorator)
// ---------------------------------------------------------------------------

BrokerOverlay::BrokerOverlay(std::string name,
                             std::unique_ptr<Allocator> inner,
                             alloc::AllocationParams params,
                             baselines::BrokerOptions options)
    : OnlineAllocator(std::move(name), params),
      inner_(std::move(inner)),
      options_(options) {}

Result<alloc::Allocation> BrokerOverlay::Allocate(
    const AllocationContext& context) {
  Result<alloc::Allocation> result = inner_->Allocate(context);
  if (!result.ok()) return result;
  if (context.graph != nullptr) {
    brokers_ = baselines::SelectBrokersByActivity(*context.graph,
                                                  options_.num_brokers);
  } else {
    brokers_.clear();
  }
  return result;
}

void BrokerOverlay::ApplyBlock(const chain::Block& block) {
  builder_.AddBlock(block);
  if (OnlineAllocator* online = inner_->AsOnline()) {
    online->ApplyBlock(block);
  }
}

Result<alloc::Allocation> BrokerOverlay::Rebalance() {
  OnlineAllocator* online = inner_->AsOnline();
  if (online == nullptr) {
    return Status::FailedPrecondition(
        Name() + ": inner allocator '" + inner_->Name() +
        "' does not support online use");
  }
  builder_.Finish();
  brokers_ =
      baselines::SelectBrokersByActivity(graph_, options_.num_brokers);
  return online->Rebalance();
}

alloc::Allocation BrokerOverlay::CurrentAllocation() const {
  if (OnlineAllocator* online = inner_->AsOnline()) {
    return online->CurrentAllocation();
  }
  return alloc::Allocation(0, params_.num_shards);
}

Result<alloc::EvaluationReport> BrokerOverlay::Evaluate(
    const chain::Ledger& ledger, const alloc::Allocation& allocation,
    const alloc::AllocationParams& params) const {
  return baselines::EvaluateWithBrokers(ledger, allocation, params, brokers_,
                                        options_);
}

Result<alloc::EvaluationReport> BrokerOverlay::Evaluate(
    const std::vector<chain::Transaction>& transactions,
    const alloc::Allocation& allocation,
    const alloc::AllocationParams& params) const {
  return baselines::EvaluateWithBrokers(transactions, allocation, params,
                                        brokers_, options_);
}

}  // namespace txallo::allocator

#include "txallo/allocator/adapters.h"

#include <algorithm>
#include <utility>

#include "txallo/common/sha256.h"
#include "txallo/core/global.h"
#include "txallo/graph/csr.h"

namespace txallo::allocator {

namespace {

// The account domain a one-shot mapping must cover: the widest of the
// context's graph, registry and explicit order.
size_t DomainSize(const AllocationContext& context) {
  size_t n = context.graph != nullptr ? context.graph->num_nodes() : 0;
  if (context.registry != nullptr) n = std::max(n, context.registry->size());
  return n;
}

// Hash mapping over `domain` accounts: address hash for ids the registry
// knows, id hash for the synthetic tail beyond it. Keeps registry-known
// accounts' placement stable as the domain grows — no global reshard when
// one synthetic id appears.
alloc::Allocation HashOverDomain(const chain::AccountRegistry* registry,
                                 size_t domain, uint32_t num_shards) {
  const size_t known = registry != nullptr ? registry->size() : 0;
  alloc::Allocation allocation(domain, num_shards);
  for (size_t a = 0; a < domain; ++a) {
    const auto id = static_cast<chain::AccountId>(a);
    const uint64_t key = a < known ? registry->OrderKey(id)
                                   : Sha256::Hash64(static_cast<uint64_t>(a));
    allocation.Assign(id, static_cast<alloc::ShardId>(key % num_shards));
  }
  return allocation;
}

Status RequireGraph(const AllocationContext& context, const char* who) {
  if (context.graph == nullptr) {
    return Status::InvalidArgument(std::string(who) +
                                   " needs AllocationContext.graph");
  }
  if (!context.graph->consolidated()) {
    return Status::InvalidArgument(std::string(who) +
                                   ": the transaction graph must be "
                                   "consolidated before Allocate()");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// TxAllo (global + hybrid)
// ---------------------------------------------------------------------------

TxAlloAllocator::TxAlloAllocator(std::string name,
                                 const chain::AccountRegistry* registry,
                                 alloc::AllocationParams params,
                                 uint32_t global_every)
    : OnlineAllocator(std::move(name), params),
      controller_(registry, params),
      global_every_(global_every) {}

Result<alloc::Allocation> TxAlloAllocator::Allocate(
    const AllocationContext& context) {
  TXALLO_RETURN_NOT_OK(RequireGraph(context, Name().c_str()));
  const std::vector<graph::NodeId> order = ResolveNodeOrder(context);
  return core::RunGlobalTxAllo(*context.graph, order, context.params);
}

void TxAlloAllocator::ApplyBlock(const chain::Block& block) {
  // While a RebalanceTask steps a controller clone, buffer the block so
  // Commit() can replay it into the stepped clone (see BeginRebalance).
  if (task_outstanding_) pending_blocks_.push_back(block);
  controller_.ApplyBlock(block);
}

bool TxAlloAllocator::GlobalNow() const {
  return rebalances_ == 1 ||
         (global_every_ > 0 && rebalances_ % global_every_ == 0);
}

Result<alloc::Allocation> TxAlloAllocator::Rebalance() {
  if (controller_.transactions_applied() == 0) {
    // Nothing absorbed yet: there is no workload to optimize against.
    return controller_.allocation();
  }
  ++rebalances_;
  if (GlobalNow()) {
    Result<core::GlobalRunInfo> info = controller_.StepGlobal();
    if (!info.ok()) return info.status();
  } else {
    Result<core::AdaptiveRunInfo> info = controller_.StepAdaptive();
    if (!info.ok()) return info.status();
  }
  return controller_.allocation();
}

std::unique_ptr<RebalanceTask> TxAlloAllocator::BeginRebalance() {
  if (task_outstanding_) return nullptr;  // At most one task outstanding.
  if (controller_.transactions_applied() == 0) {
    // Mirror the synchronous no-op path: no step, no rebalance counted.
    return std::make_unique<ClosureRebalanceTask>(
        [mapping = controller_.allocation()]() -> Result<alloc::Allocation> {
          return mapping;
        },
        nullptr);
  }
  ++rebalances_;
  const bool global_now = GlobalNow();
  // Double buffer: the task owns a full clone of the controller (graph,
  // mapping, community state, V̂) frozen at this point; the live controller
  // keeps absorbing blocks.
  auto clone = std::make_shared<core::TxAlloController>(controller_);
  task_outstanding_ = true;
  return std::make_unique<ClosureRebalanceTask>(
      [clone, global_now]() -> Result<alloc::Allocation> {
        if (global_now) {
          Result<core::GlobalRunInfo> info = clone->StepGlobal();
          if (!info.ok()) return info.status();
        } else {
          Result<core::AdaptiveRunInfo> info = clone->StepAdaptive();
          if (!info.ok()) return info.status();
        }
        return clone->allocation();
      },
      [this, clone](const Result<alloc::Allocation>& result) -> Status {
        // Clear the bookkeeping first so a failed task cannot wedge the
        // allocator.
        std::vector<chain::Block> replay = std::move(pending_blocks_);
        pending_blocks_.clear();
        task_outstanding_ = false;
        if (!result.ok()) return result.status();
        // stepped-clone + replayed tail == the state the synchronous path
        // reaches when Rebalance() ran at the snapshot point and the same
        // blocks arrived afterwards.
        for (const chain::Block& block : replay) clone->ApplyBlock(block);
        controller_ = std::move(*clone);
        return Status::OK();
      });
}

alloc::Allocation TxAlloAllocator::CurrentAllocation() const {
  return controller_.allocation();
}

// ---------------------------------------------------------------------------
// Hash routing
// ---------------------------------------------------------------------------

HashStrategy::HashStrategy(std::string name,
                           const chain::AccountRegistry* registry,
                           alloc::AllocationParams params)
    : OnlineAllocator(std::move(name), params), registry_(registry) {}

Result<alloc::Allocation> HashStrategy::Allocate(
    const AllocationContext& context) {
  return HashOverDomain(context.registry, DomainSize(context),
                        context.params.num_shards);
}

void HashStrategy::ApplyBlock(const chain::Block& block) {
  for (const chain::Transaction& tx : block.transactions()) {
    if (tx.accounts().empty()) continue;
    // accounts() is sorted; the widest id grows the domain.
    num_accounts_seen_ = std::max(
        num_accounts_seen_, static_cast<size_t>(tx.accounts().back()) + 1);
  }
}

Result<alloc::Allocation> HashStrategy::Rebalance() {
  return CurrentAllocation();
}

std::unique_ptr<RebalanceTask> HashStrategy::BeginRebalance() {
  // Freeze the domain width; the hash mapping itself is stateless, so the
  // (cheap) recompute runs off-thread against the immutable registry.
  const size_t domain =
      registry_ != nullptr ? std::max(registry_->size(), num_accounts_seen_)
                           : num_accounts_seen_;
  return std::make_unique<ClosureRebalanceTask>(
      [registry = registry_, domain,
       k = params_.num_shards]() -> Result<alloc::Allocation> {
        return HashOverDomain(registry, domain, k);
      },
      nullptr);
}

alloc::Allocation HashStrategy::CurrentAllocation() const {
  const size_t domain =
      registry_ != nullptr ? std::max(registry_->size(), num_accounts_seen_)
                           : num_accounts_seen_;
  return HashOverDomain(registry_, domain, params_.num_shards);
}

// ---------------------------------------------------------------------------
// METIS
// ---------------------------------------------------------------------------

MetisStrategy::MetisStrategy(std::string name, alloc::AllocationParams params,
                             baselines::metis::PartitionOptions options)
    : OnlineAllocator(std::move(name), params),
      options_(options),
      last_(0, params.num_shards) {}

Result<alloc::Allocation> MetisStrategy::Allocate(
    const AllocationContext& context) {
  TXALLO_RETURN_NOT_OK(RequireGraph(context, Name().c_str()));
  return baselines::metis::PartitionGraph(
      *context.graph, context.params.num_shards, options_);
}

void MetisStrategy::ApplyBlock(const chain::Block& block) {
  builder_.AddBlock(block);
}

Result<alloc::Allocation> MetisStrategy::Rebalance() {
  builder_.Finish();
  if (graph_.num_nodes() == 0) return last_;
  Result<alloc::Allocation> result = baselines::metis::PartitionGraph(
      graph_, params_.num_shards, options_);
  if (!result.ok()) return result.status();
  last_ = std::move(result.value());
  return last_;
}

std::unique_ptr<RebalanceTask> MetisStrategy::BeginRebalance() {
  // Consolidate on the owner thread (ApplyBlock shares the builder), then
  // double-buffer: the task partitions a frozen copy of the graph while the
  // live one keeps accumulating.
  builder_.Finish();
  if (graph_.num_nodes() == 0) {
    return std::make_unique<ClosureRebalanceTask>(
        [mapping = last_]() -> Result<alloc::Allocation> { return mapping; },
        nullptr);
  }
  // O(delta) snapshot: shares the frozen CSR core, copies only the delta
  // overlay. The task folds the snapshot into a fresh core off-thread
  // (Refreeze) before partitioning; Commit() hands that fold back to the
  // live graph (AdoptCore), so the owner thread never pays the O(E) fold.
  auto snapshot = std::make_shared<graph::TransactionGraph>(graph_);
  const uint64_t fold_generation = graph_.generation();
  return std::make_unique<ClosureRebalanceTask>(
      [snapshot, options = options_,
       k = params_.num_shards]() -> Result<alloc::Allocation> {
        snapshot->Refreeze();
        return baselines::metis::PartitionGraph(*snapshot, k, options);
      },
      [this, snapshot,
       fold_generation](const Result<alloc::Allocation>& result) -> Status {
        // Adopt the off-thread fold even when partitioning failed — it is
        // representation only, and the generation guard rejects stale folds.
        graph_.AdoptCore(snapshot->core(), fold_generation);
        if (!result.ok()) return result.status();
        last_ = *result;
        return Status::OK();
      });
}

alloc::Allocation MetisStrategy::CurrentAllocation() const { return last_; }

// ---------------------------------------------------------------------------
// Louvain communities, packed into k shards
// ---------------------------------------------------------------------------

LouvainStrategy::LouvainStrategy(std::string name,
                                 const chain::AccountRegistry* registry,
                                 alloc::AllocationParams params,
                                 graph::LouvainOptions options)
    : OnlineAllocator(std::move(name), params),
      registry_(registry),
      options_(options),
      last_(0, params.num_shards) {}

Result<alloc::Allocation> LouvainStrategy::Partition(
    const graph::TransactionGraph& graph,
    const std::vector<graph::NodeId>& node_order, uint32_t num_shards) const {
  const size_t n = graph.num_nodes();
  if (n == 0) return alloc::Allocation(0, num_shards);
  const graph::CsrGraph csr = graph::CsrGraph::FromGraph(graph);
  const graph::LouvainResult louvain =
      graph::RunLouvain(csr, node_order, options_);

  // Pack whole communities into shards: heaviest community first into the
  // currently lightest shard (LPT). Keeps communities intact — the point of
  // this baseline — at the price of coarse balance when communities are few.
  std::vector<double> community_weight(louvain.num_communities, 0.0);
  for (size_t v = 0; v < n; ++v) {
    community_weight[louvain.community[v]] +=
        csr.Strength(static_cast<graph::NodeId>(v)) +
        csr.SelfLoop(static_cast<graph::NodeId>(v));
  }
  std::vector<uint32_t> by_weight(louvain.num_communities);
  for (uint32_t c = 0; c < louvain.num_communities; ++c) by_weight[c] = c;
  std::sort(by_weight.begin(), by_weight.end(),
            [&community_weight](uint32_t a, uint32_t b) {
              if (community_weight[a] != community_weight[b]) {
                return community_weight[a] > community_weight[b];
              }
              return a < b;
            });
  std::vector<double> shard_load(num_shards, 0.0);
  std::vector<alloc::ShardId> shard_of_community(louvain.num_communities, 0);
  for (uint32_t c : by_weight) {
    alloc::ShardId best = 0;
    for (alloc::ShardId s = 1; s < num_shards; ++s) {
      if (shard_load[s] < shard_load[best]) best = s;
    }
    shard_of_community[c] = best;
    shard_load[best] += community_weight[c];
  }
  alloc::Allocation allocation(n, num_shards);
  for (size_t v = 0; v < n; ++v) {
    allocation.Assign(static_cast<chain::AccountId>(v),
                      shard_of_community[louvain.community[v]]);
  }
  return allocation;
}

Result<alloc::Allocation> LouvainStrategy::Allocate(
    const AllocationContext& context) {
  TXALLO_RETURN_NOT_OK(RequireGraph(context, Name().c_str()));
  return Partition(*context.graph, ResolveNodeOrder(context),
                   context.params.num_shards);
}

void LouvainStrategy::ApplyBlock(const chain::Block& block) {
  builder_.AddBlock(block);
}

Result<alloc::Allocation> LouvainStrategy::Rebalance() {
  builder_.Finish();
  AllocationContext context;
  context.graph = &graph_;
  context.registry = registry_;
  Result<alloc::Allocation> result =
      Partition(graph_, ResolveNodeOrder(context), params_.num_shards);
  if (!result.ok()) return result.status();
  last_ = std::move(result.value());
  return last_;
}

std::unique_ptr<RebalanceTask> LouvainStrategy::BeginRebalance() {
  builder_.Finish();
  AllocationContext context;
  context.graph = &graph_;
  context.registry = registry_;
  // Node order resolves against the live registry on the owner thread; the
  // graph is double-buffered so Partition sees a frozen snapshot. Partition
  // itself only reads the (immutable) options_, so running it off-thread is
  // safe.
  auto order =
      std::make_shared<const std::vector<graph::NodeId>>(
          ResolveNodeOrder(context));
  // O(delta) snapshot + off-thread fold, committed back via AdoptCore —
  // same protocol as MetisStrategy above.
  auto snapshot = std::make_shared<graph::TransactionGraph>(graph_);
  const uint64_t fold_generation = graph_.generation();
  return std::make_unique<ClosureRebalanceTask>(
      [this, snapshot, order]() -> Result<alloc::Allocation> {
        snapshot->Refreeze();
        return Partition(*snapshot, *order, params_.num_shards);
      },
      [this, snapshot,
       fold_generation](const Result<alloc::Allocation>& result) -> Status {
        graph_.AdoptCore(snapshot->core(), fold_generation);
        if (!result.ok()) return result.status();
        last_ = *result;
        return Status::OK();
      });
}

alloc::Allocation LouvainStrategy::CurrentAllocation() const { return last_; }

// ---------------------------------------------------------------------------
// Shard Scheduler
// ---------------------------------------------------------------------------

ShardSchedulerStrategy::ShardSchedulerStrategy(
    std::string name, const chain::AccountRegistry* registry,
    alloc::AllocationParams params, baselines::ShardSchedulerOptions options)
    : OnlineAllocator(std::move(name), params),
      registry_(registry),
      options_(options),
      scheduler_(params.num_shards, params.eta, options) {}

Result<alloc::Allocation> ShardSchedulerStrategy::Allocate(
    const AllocationContext& context) {
  if (context.ledger == nullptr) {
    return Status::InvalidArgument(
        Name() + " needs AllocationContext.ledger (it replays the "
                 "transaction stream)");
  }
  baselines::ShardScheduler scheduler(context.params.num_shards,
                                      context.params.eta, options_);
  scheduler.ProcessLedger(*context.ledger);
  return scheduler.SnapshotAllocation(DomainSize(context));
}

void ShardSchedulerStrategy::ApplyBlock(const chain::Block& block) {
  for (const chain::Transaction& tx : block.transactions()) {
    scheduler_.Process(tx);
    if (!tx.accounts().empty()) {
      num_accounts_seen_ = std::max(
          num_accounts_seen_, static_cast<size_t>(tx.accounts().back()) + 1);
    }
  }
}

Result<alloc::Allocation> ShardSchedulerStrategy::Rebalance() {
  return CurrentAllocation();
}

std::unique_ptr<RebalanceTask> ShardSchedulerStrategy::BeginRebalance() {
  // The scheduler already maintains the mapping; freeze it by copying the
  // scheduler so the snapshot extraction runs off-thread while the live one
  // keeps streaming transactions.
  const size_t domain =
      registry_ != nullptr ? std::max(registry_->size(), num_accounts_seen_)
                           : num_accounts_seen_;
  auto frozen = std::make_shared<const baselines::ShardScheduler>(scheduler_);
  return std::make_unique<ClosureRebalanceTask>(
      [frozen, domain]() -> Result<alloc::Allocation> {
        return frozen->SnapshotAllocation(domain);
      },
      nullptr);
}

alloc::Allocation ShardSchedulerStrategy::CurrentAllocation() const {
  const size_t domain =
      registry_ != nullptr ? std::max(registry_->size(), num_accounts_seen_)
                           : num_accounts_seen_;
  return scheduler_.SnapshotAllocation(domain);
}

// ---------------------------------------------------------------------------
// Broker overlay (decorator)
// ---------------------------------------------------------------------------

BrokerOverlay::BrokerOverlay(std::string name,
                             std::unique_ptr<Allocator> inner,
                             alloc::AllocationParams params,
                             baselines::BrokerOptions options)
    : OnlineAllocator(std::move(name), params),
      inner_(std::move(inner)),
      options_(options) {}

Result<alloc::Allocation> BrokerOverlay::Allocate(
    const AllocationContext& context) {
  Result<alloc::Allocation> result = inner_->Allocate(context);
  if (!result.ok()) return result;
  if (context.graph != nullptr) {
    brokers_ = baselines::SelectBrokersByActivity(*context.graph,
                                                  options_.num_brokers);
  } else {
    brokers_.clear();
  }
  return result;
}

void BrokerOverlay::ApplyBlock(const chain::Block& block) {
  builder_.AddBlock(block);
  if (OnlineAllocator* online = inner_->AsOnline()) {
    online->ApplyBlock(block);
  }
}

Result<alloc::Allocation> BrokerOverlay::Rebalance() {
  OnlineAllocator* online = inner_->AsOnline();
  if (online == nullptr) {
    return Status::FailedPrecondition(
        Name() + ": inner allocator '" + inner_->Name() +
        "' does not support online use");
  }
  builder_.Finish();
  brokers_ =
      baselines::SelectBrokersByActivity(graph_, options_.num_brokers);
  return online->Rebalance();
}

std::unique_ptr<RebalanceTask> BrokerOverlay::BeginRebalance() {
  OnlineAllocator* online = inner_->AsOnline();
  if (online == nullptr) return nullptr;
  builder_.Finish();
  // O(delta) snapshot of the overlay's own traffic graph; the task folds it
  // off-thread and the commit adopts the fold (same protocol as Metis).
  auto snapshot = std::make_shared<graph::TransactionGraph>(graph_);
  const uint64_t fold_generation = graph_.generation();
  // Composition: the inner strategy contributes its own frozen task; the
  // overlay adds broker re-selection over its frozen traffic graph.
  std::shared_ptr<RebalanceTask> inner_task = online->BeginRebalance();
  if (inner_task == nullptr) return nullptr;
  auto brokers = std::make_shared<std::vector<chain::AccountId>>();
  return std::make_unique<ClosureRebalanceTask>(
      [snapshot, inner_task, brokers,
       n = options_.num_brokers]() -> Result<alloc::Allocation> {
        snapshot->Refreeze();
        *brokers = baselines::SelectBrokersByActivity(*snapshot, n);
        return inner_task->Run();
      },
      [this, snapshot, fold_generation, inner_task, brokers](
          const Result<alloc::Allocation>& result) -> Status {
        graph_.AdoptCore(snapshot->core(), fold_generation);
        // On failure/abandonment the inner task must NOT commit (its
        // mapping is discarded, not folded in); it releases its own
        // bookkeeping when its last reference dies with these closures.
        if (!result.ok()) return result.status();
        TXALLO_RETURN_NOT_OK(inner_task->Commit());
        brokers_ = std::move(*brokers);
        return Status::OK();
      });
}

alloc::Allocation BrokerOverlay::CurrentAllocation() const {
  if (OnlineAllocator* online = inner_->AsOnline()) {
    return online->CurrentAllocation();
  }
  return alloc::Allocation(0, params_.num_shards);
}

Result<alloc::EvaluationReport> BrokerOverlay::Evaluate(
    const chain::Ledger& ledger, const alloc::Allocation& allocation,
    const alloc::AllocationParams& params) const {
  return baselines::EvaluateWithBrokers(ledger, allocation, params, brokers_,
                                        options_);
}

Result<alloc::EvaluationReport> BrokerOverlay::Evaluate(
    const std::vector<chain::Transaction>& transactions,
    const alloc::Allocation& allocation,
    const alloc::AllocationParams& params) const {
  return baselines::EvaluateWithBrokers(transactions, allocation, params,
                                        brokers_, options_);
}

}  // namespace txallo::allocator

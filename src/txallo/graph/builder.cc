#include "txallo/graph/builder.h"

#include "txallo/common/math.h"

namespace txallo::graph {

void GraphBuilder::AddTransaction(const chain::Transaction& tx) {
  const std::vector<chain::AccountId>& accounts = tx.accounts();
  ++num_added_;
  if (accounts.empty()) return;
  if (accounts.size() == 1) {
    graph_->AddSelfLoop(accounts[0], 1.0);
    return;
  }
  const double share =
      1.0 / static_cast<double>(EdgeSplitCount(accounts.size()));
  for (size_t i = 0; i < accounts.size(); ++i) {
    for (size_t j = i + 1; j < accounts.size(); ++j) {
      graph_->AddEdge(accounts[i], accounts[j], share);
    }
  }
}

void GraphBuilder::AddBlock(const chain::Block& block) {
  for (const chain::Transaction& tx : block.transactions()) {
    AddTransaction(tx);
  }
}

void GraphBuilder::AddLedgerRange(const chain::Ledger& ledger,
                                  size_t first_block_index,
                                  size_t last_block_index) {
  const std::vector<chain::Block>& blocks = ledger.blocks();
  if (last_block_index > blocks.size()) last_block_index = blocks.size();
  for (size_t i = first_block_index; i < last_block_index; ++i) {
    AddBlock(blocks[i]);
  }
}

TransactionGraph BuildTransactionGraph(const chain::Ledger& ledger) {
  TransactionGraph graph;
  GraphBuilder builder(&graph);
  builder.AddLedgerRange(ledger, 0, ledger.num_blocks());
  builder.Finish();
  return graph;
}

}  // namespace txallo::graph

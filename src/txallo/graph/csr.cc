#include "txallo/graph/csr.h"

namespace txallo::graph {

CsrGraph CsrGraph::FromGraph(const TransactionGraph& graph) {
  CsrGraph csr;
  const size_t n = graph.num_nodes();
  csr.offsets_.resize(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    csr.offsets_[v + 1] =
        csr.offsets_[v] + graph.Neighbors(static_cast<NodeId>(v)).size();
  }
  csr.neighbors_.resize(csr.offsets_[n]);
  csr.weights_.resize(csr.offsets_[n]);
  csr.self_loop_.resize(n);
  csr.strength_.resize(n);
  for (size_t v = 0; v < n; ++v) {
    size_t pos = csr.offsets_[v];
    for (const Neighbor& nb : graph.Neighbors(static_cast<NodeId>(v))) {
      csr.neighbors_[pos] = nb.node;
      csr.weights_[pos] = nb.weight;
      ++pos;
    }
    csr.self_loop_[v] = graph.SelfLoop(static_cast<NodeId>(v));
    csr.strength_[v] = graph.Strength(static_cast<NodeId>(v));
  }
  csr.total_weight_ = graph.TotalWeight();
  return csr;
}

}  // namespace txallo::graph

#include "txallo/graph/graph.h"

#include <algorithm>

namespace txallo::graph {

void TransactionGraph::EnsureNodeCount(size_t n) {
  if (n <= adjacency_.size()) return;
  adjacency_.resize(n);
  pending_.resize(n);
  self_loop_.resize(n, 0.0);
  strength_.resize(n, 0.0);
}

void TransactionGraph::AddEdge(NodeId u, NodeId v, double weight) {
  if (u == v) {
    AddSelfLoop(u, weight);
    return;
  }
  NodeId hi = std::max(u, v);
  EnsureNodeCount(static_cast<size_t>(hi) + 1);
  pending_[u].push_back({v, weight});
  pending_[v].push_back({u, weight});
  ++pending_edges_;
}

void TransactionGraph::AddSelfLoop(NodeId v, double weight) {
  EnsureNodeCount(static_cast<size_t>(v) + 1);
  self_loop_[v] += weight;
}

namespace {

// Sorts a pending run by neighbor id and collapses duplicate neighbors.
void SortAndDedup(std::vector<Neighbor>* pending) {
  std::vector<Neighbor>& pend = *pending;
  std::sort(pend.begin(), pend.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.node < b.node;
            });
  size_t w = 0;
  for (size_t r = 0; r < pend.size(); ++r) {
    if (w > 0 && pend[w - 1].node == pend[r].node) {
      pend[w - 1].weight += pend[r].weight;
    } else {
      pend[w++] = pend[r];
    }
  }
  pend.resize(w);
}

// Merges a sorted pending run into a sorted adjacency list.
void MergeInto(std::vector<Neighbor>* adjacency,
               const std::vector<Neighbor>& pend) {
  std::vector<Neighbor>& adj = *adjacency;
  std::vector<Neighbor> merged;
  merged.reserve(adj.size() + pend.size());
  size_t i = 0, j = 0;
  while (i < adj.size() || j < pend.size()) {
    if (j == pend.size() || (i < adj.size() && adj[i].node < pend[j].node)) {
      merged.push_back(adj[i++]);
    } else if (i == adj.size() || pend[j].node < adj[i].node) {
      merged.push_back(pend[j++]);
    } else {
      merged.push_back({adj[i].node, adj[i].weight + pend[j].weight});
      ++i;
      ++j;
    }
  }
  adj = std::move(merged);
}

}  // namespace

void TransactionGraph::Consolidate() {
  if (pending_edges_ != 0) {
    for (size_t v = 0; v < pending_.size(); ++v) {
      if (pending_[v].empty()) continue;
      SortAndDedup(&pending_[v]);
      MergeInto(&adjacency_[v], pending_[v]);
      pending_[v].clear();
      pending_[v].shrink_to_fit();
    }
    pending_edges_ = 0;
  }
  // Refresh the derived caches (strength, edge count, total weight).
  num_edges_ = 0;
  total_weight_ = 0.0;
  for (size_t v = 0; v < adjacency_.size(); ++v) {
    double s = 0.0;
    for (const Neighbor& nb : adjacency_[v]) s += nb.weight;
    strength_[v] = s;
    num_edges_ += adjacency_[v].size();
    total_weight_ += s;
    total_weight_ += 2.0 * self_loop_[v];
  }
  num_edges_ /= 2;       // Each edge appears in two adjacency lists.
  total_weight_ /= 2.0;  // Edge weights counted twice, self-loops once.
}

void TransactionGraph::ScaleWeights(double factor) {
  for (size_t v = 0; v < adjacency_.size(); ++v) {
    for (Neighbor& nb : adjacency_[v]) nb.weight *= factor;
    self_loop_[v] *= factor;
    strength_[v] *= factor;
  }
  total_weight_ *= factor;
}

double TransactionGraph::EdgeWeight(NodeId u, NodeId v) const {
  if (u == v) return self_loop_[u];
  const std::vector<Neighbor>& adj = adjacency_[u];
  auto it = std::lower_bound(adj.begin(), adj.end(), v,
                             [](const Neighbor& nb, NodeId target) {
                               return nb.node < target;
                             });
  if (it == adj.end() || it->node != v) return 0.0;
  return it->weight;
}

}  // namespace txallo::graph

#include "txallo/graph/graph.h"

#include <algorithm>

namespace txallo::graph {

void TransactionGraph::AddEdge(NodeId u, NodeId v, double weight) {
  if (u == v) {
    AddSelfLoop(u, weight);
    return;
  }
  NodeId hi = std::max(u, v);
  EnsureNodeCount(static_cast<size_t>(hi) + 1);
  log_.push_back({u, v, weight});
}

void TransactionGraph::AddSelfLoop(NodeId v, double weight) {
  EnsureNodeCount(static_cast<size_t>(v) + 1);
  // Immediate accumulation onto the current read value, exactly the legacy
  // `self_loop_[v] += weight`. The shadow entry survives AdoptCore() so
  // accumulations racing a fold-in-flight are never lost.
  const double current = SelfLoop(v);
  self_ovl_[v] = current + weight;
  caches_dirty_ = true;
}

namespace {

// Sorts a pending run by neighbor id and collapses duplicate neighbors.
// Legacy code verbatim: the unstable sort + in-order duplicate collapse is
// part of the bit-compatibility contract (FP addition is order-sensitive).
void SortAndDedup(std::vector<Neighbor>* pending) {
  std::vector<Neighbor>& pend = *pending;
  std::sort(pend.begin(), pend.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.node < b.node;
            });
  size_t w = 0;
  for (size_t r = 0; r < pend.size(); ++r) {
    if (w > 0 && pend[w - 1].node == pend[r].node) {
      pend[w - 1].weight += pend[r].weight;
    } else {
      pend[w++] = pend[r];
    }
  }
  pend.resize(w);
}

// Merges a sorted row and a sorted pending run into `out` (cleared first).
// Same walk as the legacy MergeInto, with the destination reserved once.
void MergeRows(std::span<const Neighbor> adj, const std::vector<Neighbor>& pend,
               std::vector<Neighbor>* out) {
  std::vector<Neighbor>& merged = *out;
  merged.clear();
  merged.reserve(adj.size() + pend.size());
  size_t i = 0, j = 0;
  while (i < adj.size() || j < pend.size()) {
    if (j == pend.size() || (i < adj.size() && adj[i].node < pend[j].node)) {
      merged.push_back(adj[i++]);
    } else if (i == adj.size() || pend[j].node < adj[i].node) {
      merged.push_back(pend[j++]);
    } else {
      merged.push_back({adj[i].node, adj[i].weight + pend[j].weight});
      ++i;
      ++j;
    }
  }
}

}  // namespace

void TransactionGraph::MergeRow(NodeId v, const std::vector<Neighbor>& pend) {
  const std::span<const Neighbor> old_row = Neighbors(v);
  MergeRows(old_row, pend, &scratch_merge_);
  // Strength refresh over the merged row, in row order — the legacy
  // consolidation recomputed every strength this way; untouched nodes keep
  // their (bit-identical) cached values.
  double s = 0.0;
  for (const Neighbor& nb : scratch_merge_) s += nb.weight;

  const size_t old_len = old_row.size();
  const size_t new_len = scratch_merge_.size();
  const ShadowRow shadow{row_arena_.Append(scratch_merge_), s};
  auto [it, inserted] = rows_.emplace(v, shadow);
  if (inserted) {
    overlay_entries_ += new_len;  // Previous row (if any) lives in the core.
  } else {
    it->second = shadow;
    overlay_entries_ += new_len - old_len;
  }
  degree_sum_ += new_len - old_len;
}

void TransactionGraph::MergePendingLog() {
  ++generation_;
  caches_dirty_ = true;

  // Expand each undirected log edge into its two directed halves in log
  // order, then stable-sort by owner: every owner's run is exactly the
  // legacy per-node pending buffer (same insertion order, same values).
  scratch_halves_.clear();
  scratch_halves_.reserve(log_.size() * 2);
  for (const DeltaEdge& e : log_) {
    scratch_halves_.push_back({e.u, {e.v, e.weight}});
    scratch_halves_.push_back({e.v, {e.u, e.weight}});
  }
  std::stable_sort(scratch_halves_.begin(), scratch_halves_.end(),
                   [](const OwnedHalf& a, const OwnedHalf& b) {
                     return a.owner < b.owner;
                   });

  size_t i = 0;
  while (i < scratch_halves_.size()) {
    const NodeId owner = scratch_halves_[i].owner;
    scratch_pend_.clear();
    while (i < scratch_halves_.size() && scratch_halves_[i].owner == owner) {
      scratch_pend_.push_back(scratch_halves_[i].nb);
      ++i;
    }
    SortAndDedup(&scratch_pend_);
    MergeRow(owner, scratch_pend_);
  }
  log_.clear();
  // Leave the scratch empty (capacity kept) so graph copies don't
  // duplicate stale scratch contents.
  scratch_halves_.clear();
  scratch_pend_.clear();
  scratch_merge_.clear();
}

void TransactionGraph::RecomputeTotals() {
  // The legacy consolidation re-accumulated the total on every call, in id
  // order with the strength and (doubled) self-loop adds interleaved.
  double total = 0.0;
  for (size_t v = 0; v < num_nodes_; ++v) {
    total += Strength(static_cast<NodeId>(v));
    total += 2.0 * SelfLoop(static_cast<NodeId>(v));
  }
  total_weight_ = total / 2.0;  // Edges counted twice, self-loops once.
}

void TransactionGraph::Consolidate() {
  if (!log_.empty()) MergePendingLog();
  if (scaled_) {
    // The legacy consolidation recomputed every strength from its (scaled)
    // row, switching the cached (Σw)·f to Σ(w·f). Replay that by folding
    // with a full strength re-sum.
    InstallCore(BuildCore(/*recompute_strengths=*/true));
    scaled_ = false;
    caches_dirty_ = true;
  }
  if (caches_dirty_) {
    RecomputeTotals();
    caches_dirty_ = false;
  }
  // Freeze policy (a pure function of graph state, so it is deterministic
  // and thread-count independent): build the first core eagerly — one-shot
  // graphs then read pure CSR — and re-freeze once the overlay outgrows
  // half the core. Strategy adapters normally clear the overlay every
  // rebalance via AdoptCore(), so steady-state consolidations stay
  // O(delta) and never trip this.
  if (core_ == nullptr || overlay_entries_ * 2 > core_->entries.size()) {
    InstallCore(BuildCore(/*recompute_strengths=*/false));
  } else if (row_arena_.size() > 64 &&
             row_arena_.size() > 2 * overlay_entries_) {
    CompactArena();
  }
}

std::shared_ptr<GraphCore> TransactionGraph::BuildCore(
    bool recompute_strengths) const {
  assert(log_.empty());
  auto core = std::make_shared<GraphCore>();
  const size_t n = num_nodes_;
  core->offsets.resize(n + 1);
  core->entries.reserve(degree_sum_);
  core->self_loop.resize(n);
  core->strength.resize(n);
  core->offsets[0] = 0;
  for (size_t v = 0; v < n; ++v) {
    const NodeId id = static_cast<NodeId>(v);
    const std::span<const Neighbor> row = Neighbors(id);
    core->entries.insert(core->entries.end(), row.begin(), row.end());
    core->offsets[v + 1] = core->entries.size();
    core->self_loop[v] = SelfLoop(id);
    if (recompute_strengths) {
      double s = 0.0;
      for (const Neighbor& nb : row) s += nb.weight;
      core->strength[v] = s;
    } else {
      core->strength[v] = Strength(id);
    }
  }
  return core;
}

void TransactionGraph::InstallCore(std::shared_ptr<const GraphCore> core) {
  core_ = std::move(core);
  rows_.clear();
  row_arena_.Clear();
  self_ovl_.clear();
  overlay_entries_ = 0;
  ++generation_;
}

void TransactionGraph::CompactArena() {
  common::Arena<Neighbor> compacted;
  compacted.reserve(overlay_entries_);
  for (auto& entry : rows_) {
    entry.second.row = compacted.Append(row_arena_.View(entry.second.row));
  }
  row_arena_ = std::move(compacted);
}

void TransactionGraph::Refreeze() {
  Consolidate();
  if (core_ == nullptr || !rows_.empty() || !self_ovl_.empty()) {
    InstallCore(BuildCore(/*recompute_strengths=*/false));
  }
}

bool TransactionGraph::MaybeRefreeze() {
  Consolidate();
  if (core_ != nullptr && overlay_entries_ * 4 <= core_->entries.size()) {
    return false;
  }
  if (rows_.empty() && self_ovl_.empty() && core_ != nullptr) return false;
  InstallCore(BuildCore(/*recompute_strengths=*/false));
  return true;
}

bool TransactionGraph::AdoptCore(std::shared_ptr<const GraphCore> core,
                                 uint64_t fold_generation) {
  if (core == nullptr || fold_generation != generation_) return false;
  // The fold subsumes every edge-row/strength shadow (no consolidation ran
  // since the snapshot — that is what the generation match certifies).
  // Self-loop shadows may carry AddSelfLoop() accumulations newer than the
  // fold: keep exactly those that differ from the folded value.
  common::FlatMap<NodeId, double> kept;
  for (const auto& entry : self_ovl_) {
    const bool folded = entry.first < core->num_nodes() &&
                        core->self_loop[entry.first] == entry.second;
    if (!folded) kept.emplace(entry.first, entry.second);
  }
  core_ = std::move(core);
  rows_.clear();
  row_arena_.Clear();
  overlay_entries_ = 0;
  self_ovl_ = std::move(kept);
  // generation_ unchanged: adoption swaps representation, not content.
  return true;
}

void TransactionGraph::ScaleWeights(double factor) {
  assert(consolidated());
  // Fold first (read values carry over verbatim, including the cached
  // strengths), then scale every entry in place — the same per-entry
  // multiplies the legacy implementation performed. The next Consolidate()
  // re-sums strengths from the scaled rows, again like the legacy code.
  std::shared_ptr<GraphCore> core = BuildCore(/*recompute_strengths=*/false);
  for (Neighbor& nb : core->entries) nb.weight *= factor;
  for (double& s : core->self_loop) s *= factor;
  for (double& s : core->strength) s *= factor;
  InstallCore(std::move(core));
  total_weight_ *= factor;
  scaled_ = true;
}

double TransactionGraph::EdgeWeight(NodeId u, NodeId v) const {
  if (u == v) return SelfLoop(u);
  const std::span<const Neighbor> adj = Neighbors(u);
  auto it = std::lower_bound(adj.begin(), adj.end(), v,
                             [](const Neighbor& nb, NodeId target) {
                               return nb.node < target;
                             });
  if (it == adj.end() || it->node != v) return 0.0;
  return it->weight;
}

size_t TransactionGraph::SnapshotBytes() const {
  return log_.size() * sizeof(DeltaEdge) + row_arena_.MemoryBytes() +
         rows_.MemoryBytes() + self_ovl_.MemoryBytes() + sizeof(*this);
}

}  // namespace txallo::graph

// Ledger -> transaction-graph construction (paper Definition 2).
//
// A transaction touching m = |A_Tx| distinct accounts is expanded into
// π(Tx) = C(m, 2) one-to-one edges, each carrying weight 1/π(Tx), so every
// transaction distributes exactly one unit of weight into the graph. A
// single-account transaction contributes one unit of self-loop weight.
#pragma once

#include <cstdint>

#include "txallo/chain/ledger.h"
#include "txallo/graph/graph.h"

namespace txallo::graph {

/// Incremental graph builder. One instance can absorb an initial ledger
/// prefix (G-TxAllo input) and then successive new blocks (A-TxAllo input).
class GraphBuilder {
 public:
  /// Wraps (and mutates) an externally owned graph.
  explicit GraphBuilder(TransactionGraph* graph) : graph_(graph) {}

  /// Adds one transaction's weight to the graph (buffered; callers must
  /// Consolidate() via Finish()).
  void AddTransaction(const chain::Transaction& tx);

  /// Adds every transaction in a block.
  void AddBlock(const chain::Block& block);

  /// Adds every transaction of `ledger` whose block index lies in
  /// [first_block_index, last_block_index).
  void AddLedgerRange(const chain::Ledger& ledger, size_t first_block_index,
                      size_t last_block_index);

  /// Consolidates the underlying graph. Must be called before reads.
  void Finish() { graph_->Consolidate(); }

  /// Number of transactions absorbed so far.
  uint64_t num_transactions_added() const { return num_added_; }

 private:
  TransactionGraph* graph_;
  uint64_t num_added_ = 0;
};

/// Convenience: builds a consolidated graph from a whole ledger.
TransactionGraph BuildTransactionGraph(const chain::Ledger& ledger);

}  // namespace txallo::graph

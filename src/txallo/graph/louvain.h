// Deterministic Louvain community detection (Blondel et al. 2008), used as
// the initialization phase of G-TxAllo (Algorithm 1, line 1).
//
// Determinism requirements (paper §IV-A / §V-B): all miners must compute an
// identical allocation without a consensus round, so the node visiting order
// is an explicit input and every tie breaks toward the smaller community id.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/graph/csr.h"

namespace txallo::graph {

/// Options for the Louvain pass.
struct LouvainOptions {
  /// Modularity resolution (1.0 = classic modularity).
  double resolution = 1.0;
  /// Stop a local-moving sweep when total modularity gain falls below this.
  double min_modularity_gain = 1e-7;
  /// Safety valve on local-moving sweeps per level.
  int max_sweeps_per_level = 32;
  /// Safety valve on aggregation levels.
  int max_levels = 32;
};

/// Result of the Louvain pass.
struct LouvainResult {
  /// community[v] in [0, num_communities) for every node v. Community ids
  /// are compacted and ordered by first appearance in node-id order.
  std::vector<uint32_t> community;
  uint32_t num_communities = 0;
  /// Final modularity Q of the returned partition.
  double modularity = 0.0;
  int levels = 0;
};

/// Runs Louvain on `graph`, visiting nodes in `node_order` (a permutation of
/// [0, num_nodes)). The same graph and order always yield the same result.
LouvainResult RunLouvain(const CsrGraph& graph,
                         const std::vector<NodeId>& node_order,
                         const LouvainOptions& options = {});

/// Modularity of an arbitrary partition of `graph` (for tests/diagnostics).
/// Self-loops count once in community-internal weight and twice in degree,
/// following the standard convention.
double Modularity(const CsrGraph& graph, const std::vector<uint32_t>& community,
                  double resolution = 1.0);

}  // namespace txallo::graph

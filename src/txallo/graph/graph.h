// The transaction graph (paper Definition 2): an undirected weighted graph
// whose nodes are accounts and whose edge weights accumulate the 1/π(Tx)
// shares of every historical transaction connecting the two endpoints.
// Self-loop weight (single-account transactions) is tracked per node.
//
// Storage model — frozen CSR core + delta log + shadow rows:
//
//   core_        an immutable CSR snapshot (GraphCore) shared by
//                shared_ptr. After a freeze, reads for untouched nodes are
//                contiguous array walks.
//   log_         the append-only delta log: every AddEdge() since the last
//                Consolidate(), in call order.
//   rows_/arena_ shadow rows: for each node touched by a consolidation
//                after the freeze, the node's *full merged row* (core row ⊕
//                delta, sorted, with its refreshed strength), stored in one
//                arena. Reads check the shadow first, then the core.
//   self_ovl_    shadow self-loop weights (AddSelfLoop applies
//                immediately, like the legacy structure).
//
// Copying the graph shares the core and copies only log + shadows, so a
// strategy's BeginRebalance() snapshot is O(delta), independent of the
// frozen edge count — the old representation copied all O(E) adjacency
// vectors. Refreeze() folds core ⊕ shadows into a fresh core (O(E), meant
// for the off-thread RebalanceTask); AdoptCore() lets the live graph adopt
// that fold in O(overlay) at commit time.
//
// Bit-compatibility: every floating-point accumulation (pending-run
// sort+dedup, sorted row merge, strength refresh, total-weight pass,
// per-entry weight scaling) replays the legacy implementation's exact
// operation order, so reads are bit-identical to the pre-delta-log
// structure under any interleaving of AddEdge/AddSelfLoop/Consolidate/
// ScaleWeights/copy — pinned by the randomized equivalence suite in
// tests/graph/delta_graph_test.cc and by the golden replay trace.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "txallo/chain/account.h"
#include "txallo/common/arena.h"
#include "txallo/common/flat_map.h"

namespace txallo::graph {

using NodeId = chain::AccountId;

/// One adjacency entry: neighbor and accumulated weight.
struct Neighbor {
  NodeId node;
  double weight;
};

/// Immutable CSR snapshot of a consolidated graph: sorted adjacency rows in
/// one contiguous array plus the per-node self-loop and strength caches.
/// Shared by shared_ptr between a live graph and its snapshots; never
/// mutated once shared.
struct GraphCore {
  std::vector<size_t> offsets;    // n + 1
  std::vector<Neighbor> entries;  // 2E, rows sorted by neighbor id
  std::vector<double> self_loop;  // n
  std::vector<double> strength;   // n

  size_t num_nodes() const { return self_loop.size(); }
  std::span<const Neighbor> Row(NodeId v) const {
    return {entries.data() + offsets[v], offsets[v + 1] - offsets[v]};
  }
  /// Bytes a deep copy of the core would duplicate.
  size_t MemoryBytes() const {
    return offsets.size() * sizeof(size_t) +
           entries.size() * sizeof(Neighbor) +
           (self_loop.size() + strength.size()) * sizeof(double);
  }
};

/// Mutable transaction graph with buffered edge accumulation.
///
/// Writers call AddEdge()/AddSelfLoop() any number of times, then
/// Consolidate() once; readers (Neighbors(), EdgeWeight()) require a
/// consolidated graph.
class TransactionGraph {
 public:
  TransactionGraph() = default;

  /// Grows the node set so that ids [0, n) are valid. O(1).
  void EnsureNodeCount(size_t n) {
    if (n > num_nodes_) num_nodes_ = n;
  }

  /// Accumulates weight on the undirected edge {u, v}. u == v is routed to
  /// AddSelfLoop. Node ids are grown on demand. O(1) append to the delta
  /// log.
  void AddEdge(NodeId u, NodeId v, double weight);

  /// Accumulates self-loop weight w{v,v}.
  void AddSelfLoop(NodeId v, double weight);

  /// Merges the delta log into shadow rows (O(delta log delta) + O(N) cache
  /// refresh), freezing a new core when none exists yet or when the overlay
  /// outgrew it. Idempotent.
  void Consolidate();

  /// True when the delta log is empty.
  bool consolidated() const { return log_.empty(); }

  size_t num_nodes() const { return num_nodes_; }

  /// Number of distinct undirected edges (excluding self-loops).
  /// Precondition: consolidated().
  size_t num_edges() const { return degree_sum_ / 2; }

  /// Sorted adjacency of v (no self-loop entry). Precondition: consolidated().
  std::span<const Neighbor> Neighbors(NodeId v) const {
    if (!rows_.empty()) {
      auto it = rows_.find(v);
      if (it != rows_.end()) return row_arena_.View(it->second.row);
    }
    if (core_ != nullptr && v < core_->num_nodes()) return core_->Row(v);
    return {};
  }

  /// w{u,v} for u != v (0 when absent); w{v,v} when u == v. Binary search
  /// over the sorted row. Precondition: consolidated().
  double EdgeWeight(NodeId u, NodeId v) const;

  /// Self-loop weight w{v,v}.
  double SelfLoop(NodeId v) const {
    if (!self_ovl_.empty()) {
      auto it = self_ovl_.find(v);
      if (it != self_ovl_.end()) return it->second;
    }
    return core_ != nullptr && v < core_->num_nodes() ? core_->self_loop[v]
                                                      : 0.0;
  }

  /// strength(v) = Σ_{u != v} w{v,u}  (paper's w{v, V\v}).
  /// Precondition: consolidated().
  double Strength(NodeId v) const {
    if (!rows_.empty()) {
      auto it = rows_.find(v);
      if (it != rows_.end()) return it->second.strength;
    }
    return core_ != nullptr && v < core_->num_nodes() ? core_->strength[v]
                                                      : 0.0;
  }

  /// Multiplies every edge and self-loop weight by `factor` (> 0).
  /// This implements exponential history decay: calling
  /// ScaleWeights(decay) once per window makes a transaction from w
  /// windows ago weigh decay^w — recency weighting for the "predict future
  /// transactions" extension the paper leaves as future work (§VIII), and
  /// the "recent history only" practice it borrows from Shard Scheduler
  /// (§VI-A). Folds into a fresh core and scales per entry (O(E), like the
  /// legacy per-entry scale). Precondition: consolidated().
  void ScaleWeights(double factor);

  /// Total graph weight: Σ_{unordered pairs} w{u,v} + Σ_v w{v,v}.
  /// Equals |T| when every transaction distributed its unit weight here.
  /// Precondition: consolidated().
  double TotalWeight() const { return total_weight_; }

  // --- Freeze / snapshot protocol -----------------------------------------

  /// Folds core ⊕ shadows into a fresh core so every read is a pure CSR
  /// walk. O(N + E); meant to run off-thread (inside a RebalanceTask) or at
  /// a global step that is O(N + E) anyway. Consolidates first.
  void Refreeze();

  /// Refreezes only when the shadow overlay outgrew a quarter of the core
  /// (or no core exists yet). A pure function of graph state, so callers
  /// on any thread-count/sync-mode path make the same decision. Returns
  /// true when it refroze. Consolidates first either way.
  bool MaybeRefreeze();

  /// The frozen core (nullptr before the first freeze). The returned core
  /// is immutable and safe to share across threads.
  std::shared_ptr<const GraphCore> core() const { return core_; }

  /// Consolidation generation: bumped whenever rows change meaning
  /// (Consolidate with a non-empty log, ScaleWeights, Refreeze, a freeze
  /// inside Consolidate). AddEdge/AddSelfLoop do NOT bump it — their
  /// effects live in the delta log / self-loop shadows, which survive
  /// AdoptCore().
  uint64_t generation() const { return generation_; }

  /// Adopts `core` — a fold produced (typically off-thread) from a snapshot
  /// copied at `fold_generation` — clearing the edge-row shadows it
  /// subsumes. O(overlay). Returns false without changes when this graph
  /// consolidated, scaled or refroze since the snapshot (the fold is
  /// stale); the caller just keeps its current representation.
  /// Self-loop shadows accumulated while the fold was in flight survive;
  /// the un-consolidated delta log is untouched either way.
  bool AdoptCore(std::shared_ptr<const GraphCore> core,
                 uint64_t fold_generation);

  // --- Size accounting (BENCH_kernels.json counters) ----------------------

  /// Bytes a copy of this graph duplicates (delta log + shadow rows +
  /// shadow maps; the core is shared, not copied).
  size_t SnapshotBytes() const;
  /// Bytes a deep copy (snapshot + core) would duplicate: the legacy
  /// full-copy cost.
  size_t FullCopyBytes() const {
    return SnapshotBytes() + (core_ != nullptr ? core_->MemoryBytes() : 0);
  }
  /// AddEdge() calls still in the delta log.
  size_t delta_edges() const { return log_.size(); }
  /// Nodes with a shadow row overlaying the core.
  size_t overlay_rows() const { return rows_.size(); }
  /// Undirected edges in the frozen core (0 before the first freeze).
  size_t frozen_edges() const {
    return core_ != nullptr ? core_->entries.size() / 2 : 0;
  }

 private:
  struct DeltaEdge {
    NodeId u;
    NodeId v;
    double weight;
  };
  struct ShadowRow {
    common::Arena<Neighbor>::Ref row;
    double strength = 0.0;
  };
  struct OwnedHalf {
    NodeId owner;
    Neighbor nb;
  };

  void MergePendingLog();
  void MergeRow(NodeId v, const std::vector<Neighbor>& pend);
  // Folds core ⊕ shadows into a new (still private) core. When
  // `recompute_strengths`, per-node strength is re-summed over the folded
  // row (the legacy post-scale consolidation behavior); otherwise the
  // cached values carry over bit-identically.
  std::shared_ptr<GraphCore> BuildCore(bool recompute_strengths) const;
  void InstallCore(std::shared_ptr<const GraphCore> core);
  void RecomputeTotals();
  void CompactArena();

  std::shared_ptr<const GraphCore> core_;
  common::Arena<Neighbor> row_arena_;
  common::FlatMap<NodeId, ShadowRow> rows_;
  common::FlatMap<NodeId, double> self_ovl_;
  std::vector<DeltaEdge> log_;

  size_t num_nodes_ = 0;
  size_t degree_sum_ = 0;       // Σ_v |row(v)|, maintained incrementally.
  size_t overlay_entries_ = 0;  // Σ live shadow-row lengths.
  double total_weight_ = 0.0;
  bool caches_dirty_ = false;  // total_weight_ needs the O(N) refresh.
  bool scaled_ = false;  // ScaleWeights ran; next Consolidate re-sums strengths.
  uint64_t generation_ = 0;

  // Consolidation scratch, reused across calls (cleared, so copies of the
  // graph don't duplicate capacity).
  std::vector<OwnedHalf> scratch_halves_;
  std::vector<Neighbor> scratch_pend_;
  std::vector<Neighbor> scratch_merge_;
};

}  // namespace txallo::graph

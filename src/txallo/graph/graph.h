// The transaction graph (paper Definition 2): an undirected weighted graph
// whose nodes are accounts and whose edge weights accumulate the 1/π(Tx)
// shares of every historical transaction connecting the two endpoints.
// Self-loop weight (single-account transactions) is tracked per node.
//
// The structure supports the two access patterns the paper needs:
//  * bulk construction from a ledger (G-TxAllo input), and
//  * incremental edge accumulation from newly committed blocks (A-TxAllo
//    input), via buffered inserts + lazy consolidation so hub accounts with
//    millions of neighbors do not pay O(degree) per inserted edge.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "txallo/chain/account.h"

namespace txallo::graph {

using NodeId = chain::AccountId;

/// One adjacency entry: neighbor and accumulated weight.
struct Neighbor {
  NodeId node;
  double weight;
};

/// Mutable transaction graph with buffered edge accumulation.
///
/// Writers call AddEdge()/AddSelfLoop() any number of times, then
/// Consolidate() once; readers (Neighbors(), EdgeWeight()) require a
/// consolidated graph.
class TransactionGraph {
 public:
  TransactionGraph() = default;

  /// Grows the node set so that ids [0, n) are valid.
  void EnsureNodeCount(size_t n);

  /// Accumulates weight on the undirected edge {u, v}. u == v is routed to
  /// AddSelfLoop. Node ids are grown on demand.
  void AddEdge(NodeId u, NodeId v, double weight);

  /// Accumulates self-loop weight w{v,v}.
  void AddSelfLoop(NodeId v, double weight);

  /// Merges all buffered edges into the sorted adjacency arrays and refreshes
  /// the per-node strength cache. Idempotent.
  void Consolidate();

  /// True when there are no pending buffered edges.
  bool consolidated() const { return pending_edges_ == 0; }

  size_t num_nodes() const { return adjacency_.size(); }

  /// Number of distinct undirected edges (excluding self-loops).
  /// Precondition: consolidated().
  size_t num_edges() const { return num_edges_; }

  /// Sorted adjacency of v (no self-loop entry). Precondition: consolidated().
  std::span<const Neighbor> Neighbors(NodeId v) const {
    return {adjacency_[v].data(), adjacency_[v].size()};
  }

  /// w{u,v} for u != v (0 when absent); w{v,v} when u == v.
  /// Precondition: consolidated().
  double EdgeWeight(NodeId u, NodeId v) const;

  /// Self-loop weight w{v,v}.
  double SelfLoop(NodeId v) const { return self_loop_[v]; }

  /// strength(v) = Σ_{u != v} w{v,u}  (paper's w{v, V\v}).
  /// Precondition: consolidated().
  double Strength(NodeId v) const { return strength_[v]; }

  /// Multiplies every edge and self-loop weight by `factor` (> 0).
  /// This implements exponential history decay: calling
  /// ScaleWeights(decay) once per window makes a transaction from w
  /// windows ago weigh decay^w — recency weighting for the "predict future
  /// transactions" extension the paper leaves as future work (§VIII), and
  /// the "recent history only" practice it borrows from Shard Scheduler
  /// (§VI-A). Precondition: consolidated().
  void ScaleWeights(double factor);

  /// Total graph weight: Σ_{unordered pairs} w{u,v} + Σ_v w{v,v}.
  /// Equals |T| when every transaction distributed its unit weight here.
  /// Precondition: consolidated().
  double TotalWeight() const { return total_weight_; }

 private:
  // Sorted, merged adjacency per node.
  std::vector<std::vector<Neighbor>> adjacency_;
  // Unsorted per-node insert buffers, merged by Consolidate().
  std::vector<std::vector<Neighbor>> pending_;
  std::vector<double> self_loop_;
  std::vector<double> strength_;
  size_t pending_edges_ = 0;
  size_t num_edges_ = 0;
  double total_weight_ = 0.0;
};

}  // namespace txallo::graph

// Descriptive statistics of a transaction graph. Backs the Figure-1
// reproduction (dataset structure: long-tail activity, hub share) and the
// workload generator's self-validation tests.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/graph/csr.h"

namespace txallo::graph {

/// Summary statistics of a consolidated transaction graph.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  double total_weight = 0.0;
  double max_strength = 0.0;
  NodeId max_strength_node = 0;
  /// Share of total weight incident to the most active node — the paper's
  /// "about 11% transactions are associated with the most active account".
  double hub_weight_share = 0.0;
  double mean_degree = 0.0;
  size_t max_degree = 0;
  /// Fraction of nodes with degree <= 2 (the long tail).
  double low_degree_fraction = 0.0;
  /// Gini coefficient of node strengths: 0 = perfectly uniform activity,
  /// -> 1 = activity concentrated on few accounts.
  double strength_gini = 0.0;
};

/// Computes summary statistics.
GraphStats ComputeGraphStats(const CsrGraph& graph);

/// Degree histogram on a log2 scale: bucket i counts nodes with degree in
/// [2^i, 2^(i+1)). Bucket 0 holds degrees 0 and 1.
std::vector<uint64_t> DegreeHistogramLog2(const CsrGraph& graph);

/// Number of connected components (self-loops ignored).
size_t CountConnectedComponents(const CsrGraph& graph);

}  // namespace txallo::graph

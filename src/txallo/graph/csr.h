// Immutable compressed-sparse-row snapshot of a TransactionGraph. The hot
// loops (Louvain local moving, the G-/A-TxAllo optimization sweeps) iterate
// neighborhoods millions of times; CSR gives them contiguous memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "txallo/graph/graph.h"

namespace txallo::graph {

/// Read-only CSR view. Self-loops are kept out of the adjacency arrays and
/// exposed via SelfLoop(), matching TransactionGraph.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Snapshots a consolidated TransactionGraph.
  /// Precondition: graph.consolidated().
  static CsrGraph FromGraph(const TransactionGraph& graph);

  size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t num_edges() const { return neighbors_.size() / 2; }

  std::span<const NodeId> NeighborIds(NodeId v) const {
    return {neighbors_.data() + offsets_[v],
            offsets_[v + 1] - offsets_[v]};
  }
  std::span<const double> NeighborWeights(NodeId v) const {
    return {weights_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  size_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  double SelfLoop(NodeId v) const { return self_loop_[v]; }

  /// strength(v) = Σ_{u != v} w{v,u}  (the paper's w{v, V\v}).
  double Strength(NodeId v) const { return strength_[v]; }

  /// Σ_{unordered pairs} w{u,v} + Σ_v w{v,v}.
  double TotalWeight() const { return total_weight_; }

 private:
  std::vector<size_t> offsets_;
  std::vector<NodeId> neighbors_;
  std::vector<double> weights_;
  std::vector<double> self_loop_;
  std::vector<double> strength_;
  double total_weight_ = 0.0;
};

}  // namespace txallo::graph

#include "txallo/graph/stats.h"

#include <algorithm>
#include <numeric>

namespace txallo::graph {

GraphStats ComputeGraphStats(const CsrGraph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  stats.total_weight = graph.TotalWeight();
  if (stats.num_nodes == 0) return stats;

  size_t low_degree = 0;
  double degree_sum = 0.0;
  std::vector<double> strengths(stats.num_nodes);
  for (size_t v = 0; v < stats.num_nodes; ++v) {
    const NodeId id = static_cast<NodeId>(v);
    const size_t deg = graph.Degree(id);
    degree_sum += static_cast<double>(deg);
    stats.max_degree = std::max(stats.max_degree, deg);
    if (deg <= 2) ++low_degree;
    // "activity" of a node: incident weight incl. self-loops.
    const double activity = graph.Strength(id) + graph.SelfLoop(id);
    strengths[v] = activity;
    if (activity > stats.max_strength) {
      stats.max_strength = activity;
      stats.max_strength_node = id;
    }
  }
  stats.mean_degree = degree_sum / static_cast<double>(stats.num_nodes);
  stats.low_degree_fraction =
      static_cast<double>(low_degree) / static_cast<double>(stats.num_nodes);
  if (stats.total_weight > 0.0) {
    stats.hub_weight_share = stats.max_strength / stats.total_weight;
  }

  // Gini over strengths.
  std::sort(strengths.begin(), strengths.end());
  double cum = 0.0, weighted = 0.0;
  for (size_t i = 0; i < strengths.size(); ++i) {
    weighted += static_cast<double>(i + 1) * strengths[i];
    cum += strengths[i];
  }
  if (cum > 0.0) {
    const double n = static_cast<double>(strengths.size());
    stats.strength_gini = (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
  }
  return stats;
}

std::vector<uint64_t> DegreeHistogramLog2(const CsrGraph& graph) {
  std::vector<uint64_t> hist;
  for (size_t v = 0; v < graph.num_nodes(); ++v) {
    size_t deg = graph.Degree(static_cast<NodeId>(v));
    size_t bucket = 0;
    while ((size_t{1} << (bucket + 1)) <= deg) ++bucket;
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

size_t CountConnectedComponents(const CsrGraph& graph) {
  const size_t n = graph.num_nodes();
  std::vector<uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  // Iterative union-find with path halving.
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t v = 0; v < n; ++v) {
    for (NodeId u : graph.NeighborIds(static_cast<NodeId>(v))) {
      uint32_t rv = find(static_cast<uint32_t>(v));
      uint32_t ru = find(u);
      if (rv != ru) parent[std::max(rv, ru)] = std::min(rv, ru);
    }
  }
  size_t components = 0;
  for (size_t v = 0; v < n; ++v) {
    if (find(static_cast<uint32_t>(v)) == v) ++components;
  }
  return components;
}

}  // namespace txallo::graph

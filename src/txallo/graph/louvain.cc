#include "txallo/graph/louvain.h"

#include <algorithm>
#include <cstddef>

namespace txallo::graph {

namespace {

// Working representation of one aggregation level: CSR adjacency (no
// self-loop entries) plus per-node self-loop weight. The adjacency matrix
// convention is A_vv = 2 * self_loop[v], so k_v = strength_v + 2*self_v and
// 2m = sum_v k_v.
struct LevelGraph {
  std::vector<size_t> offsets;
  std::vector<uint32_t> neighbors;
  std::vector<double> weights;
  std::vector<double> self_loop;
  std::vector<double> degree;  // k_v
  double m2 = 0.0;             // 2m

  size_t num_nodes() const { return self_loop.size(); }
};

LevelGraph FromCsr(const CsrGraph& graph) {
  LevelGraph lg;
  const size_t n = graph.num_nodes();
  lg.offsets.resize(n + 1, 0);
  lg.self_loop.resize(n);
  lg.degree.resize(n);
  size_t total = 0;
  for (size_t v = 0; v < n; ++v) {
    total += graph.Degree(static_cast<NodeId>(v));
    lg.offsets[v + 1] = total;
  }
  lg.neighbors.resize(total);
  lg.weights.resize(total);
  for (size_t v = 0; v < n; ++v) {
    auto ids = graph.NeighborIds(static_cast<NodeId>(v));
    auto ws = graph.NeighborWeights(static_cast<NodeId>(v));
    size_t pos = lg.offsets[v];
    for (size_t i = 0; i < ids.size(); ++i) {
      lg.neighbors[pos + i] = ids[i];
      lg.weights[pos + i] = ws[i];
    }
    lg.self_loop[v] = graph.SelfLoop(static_cast<NodeId>(v));
    lg.degree[v] =
        graph.Strength(static_cast<NodeId>(v)) + 2.0 * lg.self_loop[v];
    lg.m2 += lg.degree[v];
  }
  return lg;
}

// One complete local-moving phase. Returns the total (scaled) modularity
// gain accumulated over all sweeps. `community` is updated in place.
double LocalMoving(const LevelGraph& g, const std::vector<uint32_t>& order,
                   const LouvainOptions& options,
                   std::vector<uint32_t>* community) {
  const size_t n = g.num_nodes();
  std::vector<double> comm_total(n, 0.0);  // Σ_tot per community.
  for (size_t v = 0; v < n; ++v) comm_total[(*community)[v]] += g.degree[v];

  // Scratch accumulation of w(v -> community), reset via touched list.
  std::vector<double> weight_to(n, 0.0);
  std::vector<uint32_t> touched;
  touched.reserve(256);

  const double inv_m2 = g.m2 > 0.0 ? 1.0 / g.m2 : 0.0;
  double total_gain = 0.0;
  for (int sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    double sweep_gain = 0.0;
    for (uint32_t v : order) {
      const uint32_t from = (*community)[v];
      // Accumulate edge weight from v to each adjacent community.
      touched.clear();
      for (size_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        uint32_t c = (*community)[g.neighbors[e]];
        if (weight_to[c] == 0.0) touched.push_back(c);
        weight_to[c] += g.weights[e];
      }
      // Detach v from its community for the comparison.
      comm_total[from] -= g.degree[v];
      // Score of staying put; ties break toward the smaller community id so
      // the outcome is independent of the touched-list order.
      uint32_t best = from;
      double best_score =
          weight_to[from] -
          options.resolution * g.degree[v] * comm_total[from] * inv_m2;
      for (uint32_t c : touched) {
        if (c == from) continue;
        double score = weight_to[c] - options.resolution * g.degree[v] *
                                          comm_total[c] * inv_m2;
        if (score > best_score + 1e-15) {
          best_score = score;
          best = c;
        } else if (score >= best_score - 1e-15 && c < best) {
          best = c;
        }
      }
      if (best != from) {
        double gain =
            (best_score - (weight_to[from] -
                           options.resolution * g.degree[v] *
                               comm_total[from] * inv_m2)) *
            2.0 * inv_m2;
        if (gain > 0.0) sweep_gain += gain;
        (*community)[v] = best;
      }
      comm_total[(*community)[v]] += g.degree[v];
      for (uint32_t c : touched) weight_to[c] = 0.0;
    }
    total_gain += sweep_gain;
    if (sweep_gain < options.min_modularity_gain) break;
  }
  return total_gain;
}

// Renumbers communities to a dense range [0, count) by first appearance in
// node-id order; returns the count.
uint32_t CompactCommunities(std::vector<uint32_t>* community) {
  std::vector<uint32_t> remap(community->size(), UINT32_MAX);
  uint32_t next = 0;
  for (uint32_t& c : *community) {
    if (remap[c] == UINT32_MAX) remap[c] = next++;
    c = remap[c];
  }
  return next;
}

// Builds the aggregated graph whose nodes are the (compacted) communities.
LevelGraph Aggregate(const LevelGraph& g,
                     const std::vector<uint32_t>& community,
                     uint32_t num_communities) {
  LevelGraph out;
  const size_t nc = num_communities;
  out.self_loop.assign(nc, 0.0);
  out.degree.assign(nc, 0.0);

  // Accumulate inter-community weights with a scratch row per community.
  std::vector<std::vector<Neighbor>> rows(nc);
  for (uint32_t c = 0; c < nc; ++c) rows[c].reserve(4);

  for (size_t v = 0; v < g.num_nodes(); ++v) {
    const uint32_t cv = community[v];
    out.self_loop[cv] += g.self_loop[v];
    for (size_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const uint32_t cu = community[g.neighbors[e]];
      if (cu == cv) {
        // Each intra-community pair is visited from both endpoints; halve.
        out.self_loop[cv] += 0.5 * g.weights[e];
      } else {
        rows[cv].push_back({cu, g.weights[e]});
      }
    }
  }

  out.offsets.resize(nc + 1, 0);
  // Consolidate each row (sort by neighbor, merge duplicates).
  for (uint32_t c = 0; c < nc; ++c) {
    std::vector<Neighbor>& row = rows[c];
    std::sort(row.begin(), row.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.node < b.node;
              });
    size_t w = 0;
    for (size_t r = 0; r < row.size(); ++r) {
      if (w > 0 && row[w - 1].node == row[r].node) {
        row[w - 1].weight += row[r].weight;
      } else {
        row[w++] = row[r];
      }
    }
    row.resize(w);
    out.offsets[c + 1] = out.offsets[c] + w;
  }
  out.neighbors.resize(out.offsets[nc]);
  out.weights.resize(out.offsets[nc]);
  for (uint32_t c = 0; c < nc; ++c) {
    size_t pos = out.offsets[c];
    double strength = 0.0;
    for (const Neighbor& nb : rows[c]) {
      out.neighbors[pos] = nb.node;
      out.weights[pos] = nb.weight;
      strength += nb.weight;
      ++pos;
    }
    out.degree[c] = strength + 2.0 * out.self_loop[c];
    out.m2 += out.degree[c];
  }
  return out;
}

}  // namespace

LouvainResult RunLouvain(const CsrGraph& graph,
                         const std::vector<NodeId>& node_order,
                         const LouvainOptions& options) {
  LouvainResult result;
  const size_t n = graph.num_nodes();
  result.community.resize(n);
  for (size_t v = 0; v < n; ++v) result.community[v] = static_cast<uint32_t>(v);
  if (n == 0) return result;

  LevelGraph level = FromCsr(graph);
  std::vector<uint32_t> level_comm(n);
  for (size_t v = 0; v < n; ++v) level_comm[v] = static_cast<uint32_t>(v);

  std::vector<uint32_t> order(node_order.begin(), node_order.end());

  for (int lvl = 0; lvl < options.max_levels; ++lvl) {
    double gain = LocalMoving(level, order, options, &level_comm);
    uint32_t nc = CompactCommunities(&level_comm);
    // Fold this level's assignment into the global one.
    for (size_t v = 0; v < n; ++v) {
      result.community[v] = level_comm[result.community[v]];
    }
    ++result.levels;
    if (nc == level.num_nodes() || gain < options.min_modularity_gain) break;
    level = Aggregate(level, level_comm, nc);
    level_comm.resize(nc);
    for (uint32_t c = 0; c < nc; ++c) level_comm[c] = c;
    order.resize(nc);
    for (uint32_t c = 0; c < nc; ++c) order[c] = c;
  }

  result.num_communities = CompactCommunities(&result.community);
  result.modularity = Modularity(graph, result.community, options.resolution);
  return result;
}

double Modularity(const CsrGraph& graph,
                  const std::vector<uint32_t>& community, double resolution) {
  const size_t n = graph.num_nodes();
  if (n == 0) return 0.0;
  uint32_t nc = 0;
  for (uint32_t c : community) nc = std::max(nc, c + 1);
  std::vector<double> internal(nc, 0.0);  // Σ_{u,v in c} A_uv (ordered pairs).
  std::vector<double> total(nc, 0.0);     // Σ_{v in c} k_v.
  double m2 = 0.0;
  for (size_t v = 0; v < n; ++v) {
    const uint32_t cv = community[v];
    const double k =
        graph.Strength(static_cast<NodeId>(v)) + 2.0 * graph.SelfLoop(v);
    total[cv] += k;
    m2 += k;
    internal[cv] += 2.0 * graph.SelfLoop(v);
    auto ids = graph.NeighborIds(static_cast<NodeId>(v));
    auto ws = graph.NeighborWeights(static_cast<NodeId>(v));
    for (size_t i = 0; i < ids.size(); ++i) {
      if (community[ids[i]] == cv) internal[cv] += ws[i];
    }
  }
  if (m2 <= 0.0) return 0.0;
  double q = 0.0;
  for (uint32_t c = 0; c < nc; ++c) {
    q += internal[c] / m2 - resolution * (total[c] / m2) * (total[c] / m2);
  }
  return q;
}

}  // namespace txallo::graph

#include "txallo/mempool/submit_router.h"

#include <algorithm>

namespace txallo::mempool {

SubmitRouter::SubmitRouter(Mempool* pool, uint32_t num_producers)
    : pool_(pool), num_producers_(std::max(1u, num_producers)) {
  {
    // Size every per-producer slot before the first thread spawns: producer
    // threads index these vectors from the moment they start.
    common::MutexLock lock(mu_);
    done_generation_.assign(num_producers_, 0);
    accepted_.assign(num_producers_, 0);
  }
  threads_.reserve(num_producers_);
  for (uint32_t p = 0; p < num_producers_; ++p) {
    threads_.emplace_back(&SubmitRouter::ProducerMain, this, p);
  }
}

SubmitRouter::~SubmitRouter() {
  {
    common::MutexLock lock(mu_);
    stopping_ = true;
    cv_producers_.NotifyAll();
  }
  for (std::thread& thread : threads_) {  // txallo-lint: allow(raw-thread)
    if (thread.joinable()) thread.join();
  }
}

void SubmitRouter::ProducerMain(uint32_t producer_index) {
  const size_t n = num_producers_;
  mu_.Lock();
  for (;;) {
    while (!(stopping_ || generation_ > done_generation_[producer_index])) {
      cv_producers_.Wait(mu_);
    }
    if (stopping_) {
      mu_.Unlock();
      return;
    }
    const uint64_t target = generation_;
    // Contiguous slice [begin, end) of the current batch; the slice's
    // sequence tags are its global positions offset by the batch's base.
    const size_t begin = batch_size_ * producer_index / n;
    const size_t end = batch_size_ * (producer_index + 1) / n;
    const chain::Transaction* txs = batch_;
    const uint64_t* fees = fees_;
    const uint64_t seq_base = batch_seq_base_;
    const uint64_t tick = batch_tick_;
    mu_.Unlock();
    size_t accepted = 0;
    for (size_t i = begin; i < end; ++i) {
      if (pool_->TrySubmit(txs[i], fees[i], tick, seq_base + i)) ++accepted;
    }
    mu_.Lock();
    accepted_[producer_index] = accepted;
    done_generation_[producer_index] = target;
    cv_driver_.NotifyAll();
  }
}

size_t SubmitRouter::SubmitBatch(const chain::Transaction* transactions,
                                 const uint64_t* fees, size_t count,
                                 uint64_t submit_tick, uint64_t seq_base) {
  common::MutexLock lock(mu_);
  batch_ = transactions;
  fees_ = fees;
  batch_size_ = count;
  batch_seq_base_ = seq_base;
  batch_tick_ = submit_tick;
  const uint64_t target = ++generation_;
  cv_producers_.NotifyAll();
  for (;;) {
    bool all_done = true;
    for (uint64_t done : done_generation_) {
      if (done != target) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    cv_driver_.Wait(mu_);
  }
  batch_ = nullptr;
  fees_ = nullptr;
  batch_size_ = 0;
  size_t total_accepted = 0;
  for (size_t accepted : accepted_) total_accepted += accepted;
  return total_accepted;
}

}  // namespace txallo::mempool

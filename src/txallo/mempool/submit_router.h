// Multi-producer submit fan-out for the mempool, mirroring the engine's
// IngestRouter: a persistent pool of producer threads, each taking one
// contiguous slice of the batch the driver offers per tick.
//
// Determinism: the driver reserves the batch's pool sequence range once
// (Mempool::ReserveSequenceRange) and every producer submits its slice with
// explicit tags — transaction i of the batch always carries seq base + i,
// whatever the producer interleaving. Since the pool orders each seal by
// seq, the admitted stream is byte-identical to the single-producer path.
//
// Producers use TrySubmit (non-blocking): an arrival refused by a full
// staging buffer is an open-loop loss, counted by the pool as a
// backpressure drop. Note that *which* arrivals hit a full buffer depends
// on thread timing — a deterministic open-loop run must size staging to
// hold a whole tick's offer (the pipeline does; see pipeline.cc), so the
// buffer never fills and every drop decision moves to the seal, which is
// deterministic. Blocking Submit() is exercised directly by the unit tests
// with an independent sealing thread; it cannot be used here because the
// driver seals only after SubmitBatch returns.
#pragma once

#include <cstdint>
#include <thread>  // txallo-lint: allow(raw-thread) producer pool
#include <vector>

#include "txallo/chain/transaction.h"
#include "txallo/common/sync.h"
#include "txallo/mempool/mempool.h"

namespace txallo::mempool {

class SubmitRouter {
 public:
  /// Starts `num_producers` (clamped to >= 1) producer threads submitting
  /// into `pool`, which must outlive the router.
  SubmitRouter(Mempool* pool, uint32_t num_producers);

  /// Joins the producers. Any in-flight SubmitBatch must have returned.
  ~SubmitRouter();

  SubmitRouter(const SubmitRouter&) = delete;
  SubmitRouter& operator=(const SubmitRouter&) = delete;

  /// Splits `count` transactions (with parallel `fees`) into contiguous
  /// slices, one per producer; transaction i is TrySubmit-ted with sequence
  /// tag `seq_base + i` at tick `submit_tick`. Blocks until every slice is
  /// offered; returns how many the staging buffer accepted. One caller at
  /// a time (the driver).
  size_t SubmitBatch(const chain::Transaction* transactions,
                     const uint64_t* fees, size_t count, uint64_t submit_tick,
                     uint64_t seq_base);

  uint32_t num_producers() const { return num_producers_; }

 private:
  void ProducerMain(uint32_t producer_index);

  Mempool* const pool_;
  const uint32_t num_producers_;

  common::Mutex mu_;
  common::CondVar cv_producers_;
  common::CondVar cv_driver_;
  // One submission = one generation; producers chase it and report back.
  uint64_t generation_ TXALLO_GUARDED_BY(mu_) = 0;
  bool stopping_ TXALLO_GUARDED_BY(mu_) = false;
  const chain::Transaction* batch_ TXALLO_GUARDED_BY(mu_) = nullptr;
  const uint64_t* fees_ TXALLO_GUARDED_BY(mu_) = nullptr;
  size_t batch_size_ TXALLO_GUARDED_BY(mu_) = 0;
  uint64_t batch_seq_base_ TXALLO_GUARDED_BY(mu_) = 0;
  uint64_t batch_tick_ TXALLO_GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> done_generation_ TXALLO_GUARDED_BY(mu_);
  std::vector<size_t> accepted_ TXALLO_GUARDED_BY(mu_);
  // Sized before any thread spawns, joined in the destructor.
  std::vector<std::thread> threads_;  // txallo-lint: allow(raw-thread)
};

}  // namespace txallo::mempool

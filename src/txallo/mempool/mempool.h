// Concurrent mempool with admission control, sitting between transaction
// producers and the engine's ingest router.
//
// Two-sided design, mirroring the engine's producer/driver split:
//
//   * Producer side ("staging"): any number of threads call Submit() /
//     TrySubmit() concurrently. Arrivals land in a bounded staging buffer
//     guarded by its own mutex; when staging is full, Submit() blocks until
//     the driver seals (explicit backpressure, policy "block at the door")
//     and TrySubmit() returns false (policy "reject at the door"). Producers
//     tag each arrival with a pool sequence number reserved up front
//     (ReserveSequenceRange), exactly like the engine's ingest tags.
//
//   * Driver side ("admitted"): once per tick the single driver calls
//     SealTick(), which drains staging, orders arrivals by pool_seq — making
//     everything downstream independent of producer interleaving — and runs
//     admission control: capacity bound, per-account pending limit, and
//     per-account per-tick rate limit. Rejected arrivals are dropped with
//     per-reason counters (AdmissionPolicy::kReject) or deferred to a FIFO
//     retried at the next seal (AdmissionPolicy::kBlock; the deferral queue
//     is bounded by the pool capacity, beyond which even kBlock sheds load —
//     unbounded buffering would just hide the overload the open-loop bench
//     exists to measure). TakeBatch() then dispatches the fee-priority
//     prefix of the pool to the engine.
//
// Ordering: dispatch order is (fee descending, pool_seq ascending) — highest
// bid first, FIFO within a bid. Both keys are producer-interleaving
// independent, so the dispatched stream, every admission counter, and every
// latency histogram downstream are bit-identical across thread and producer
// counts. That property is pinned by tests/mempool/.
//
// Storage is chunked (chunk.h): append-only slabs, tombstone removal, and
// wholesale chunk reclamation by the background MempoolCleaner (cleaner.h)
// via the dead-entry hook — compaction is physically observable but
// logically invisible, so the cleaner may run, lag, or be absent without
// changing any output.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "txallo/chain/account.h"
#include "txallo/chain/transaction.h"
#include "txallo/common/status.h"
#include "txallo/common/sync.h"
#include "txallo/mempool/chunk.h"

namespace txallo::mempool {

/// What admission control does with an arrival that fails a check.
enum class AdmissionPolicy : uint8_t {
  /// Drop it immediately, counted by failure reason.
  kReject = 0,
  /// Defer it and retry at the next seal, FIFO, ahead of newer arrivals.
  /// The deferral queue is bounded by `capacity`; once it is full even
  /// kBlock sheds load, dropping with the failing reason's counter —
  /// unbounded buffering would just hide the overload the open-loop bench
  /// exists to measure.
  kBlock = 1,
};

struct MempoolConfig {
  /// Maximum live (admitted, undispatched) transactions. 0 = unlimited.
  size_t capacity = 1 << 16;
  /// Producer-side staging bound: Submit() blocks / TrySubmit() fails when
  /// this many arrivals await the next seal. Must be >= 1.
  size_t staging_capacity = 1 << 12;
  /// Max live transactions per paying account. 0 = unlimited.
  uint32_t account_pending_limit = 0;
  /// Max admissions per paying account per tick. 0 = unlimited.
  uint32_t account_rate_limit = 0;
  /// Live transactions older than this many ticks (since admission) expire
  /// at the next seal. 0 = never expire.
  uint64_t ttl_ticks = 0;
  AdmissionPolicy policy = AdmissionPolicy::kReject;
  /// Entries per storage chunk.
  size_t chunk_size = 512;
  /// Fire the cleaner hook once this many dead entries accumulate.
  size_t dead_compact_threshold = 2048;
};

/// Monotonic admission counters. Deterministic for a deterministic arrival
/// order: every counter except `submitted` and `dropped_backpressure` (which
/// count producer-side attempts) is driver-side, updated only under seal.
struct AdmissionStats {
  /// Submit/TrySubmit calls, successful or not.
  uint64_t submitted = 0;
  /// TrySubmit calls refused because staging was full.
  uint64_t dropped_backpressure = 0;
  /// Arrivals accepted into the pool.
  uint64_t admitted = 0;
  uint64_t dropped_capacity = 0;
  uint64_t dropped_account_pending = 0;
  uint64_t dropped_account_rate = 0;
  /// Arrivals deferred at least once (kBlock policy).
  uint64_t deferred = 0;
  /// Live transactions expired by TTL.
  uint64_t expired = 0;
  /// High-water mark of live pool depth, sampled at each seal.
  uint64_t peak_depth = 0;
  bool operator==(const AdmissionStats&) const = default;
};

class Mempool {
 public:
  explicit Mempool(MempoolConfig config);
  ~Mempool();

  Mempool(const Mempool&) = delete;
  Mempool& operator=(const Mempool&) = delete;

  const MempoolConfig& config() const { return config_; }

  /// Reserves `count` consecutive pool sequence numbers and returns the
  /// first. Thread-safe; typically the driver reserves one range per tick
  /// and hands disjoint sub-ranges to producers (SubmitRouter).
  uint64_t ReserveSequenceRange(size_t count) {
    return seq_counter_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Producer-side blocking submit: waits while staging is full, until the
  /// driver seals or Shutdown() is called (then FailedPrecondition).
  Status Submit(chain::Transaction tx, uint64_t fee, uint64_t submit_tick,
                uint64_t pool_seq) TXALLO_EXCLUDES(staging_mu_);

  /// Producer-side non-blocking submit: false when staging is full (counted
  /// as a backpressure drop) or after Shutdown().
  bool TrySubmit(chain::Transaction tx, uint64_t fee, uint64_t submit_tick,
                 uint64_t pool_seq) TXALLO_EXCLUDES(staging_mu_);

  /// Unblocks every blocked Submit() with a failure; subsequent submits
  /// fail immediately. Driver-side, for teardown.
  void Shutdown() TXALLO_EXCLUDES(staging_mu_);

  /// Driver-side, once per tick: drains staging (sorted by pool_seq),
  /// retries deferred arrivals, expires TTL-stale entries, and runs
  /// admission control at tick `tick`. Returns the number admitted.
  size_t SealTick(uint64_t tick) TXALLO_EXCLUDES(staging_mu_, mu_);

  /// Driver-side: removes and returns up to `max_txs` live transactions in
  /// dispatch order (fee descending, pool_seq ascending).
  std::vector<PendingTx> TakeBatch(size_t max_txs) TXALLO_EXCLUDES(mu_);

  /// Admitted, undispatched, unexpired transactions.
  size_t live_size() const TXALLO_EXCLUDES(mu_);
  /// Arrivals awaiting the next seal (staging only, not deferrals).
  size_t staged_size() const TXALLO_EXCLUDES(staging_mu_);
  /// Deferred arrivals awaiting retry (kBlock policy).
  size_t deferred_size() const TXALLO_EXCLUDES(mu_);
  /// Tombstoned entries not yet physically reclaimed.
  size_t dead_count() const TXALLO_EXCLUDES(mu_);

  AdmissionStats stats() const TXALLO_EXCLUDES(staging_mu_, mu_);

  /// One physical compaction pass: reclaims every chunk whose entries are
  /// all dead. Logically invisible — safe to call from a background thread
  /// at any point, or never. Returns chunks reclaimed.
  size_t CompactOnce() TXALLO_EXCLUDES(mu_);

  /// Installs (or clears, with nullptr) the hook fired — outside any pool
  /// lock — whenever dead_count() crosses the configured threshold. The
  /// MempoolCleaner registers itself here. Not thread-safe against
  /// concurrent Seal/Take; install before the driver loop starts.
  void SetCleanerHook(std::function<void(size_t dead_count)> hook);

 private:
  struct Staged {
    PendingTx tx;
  };

  /// A live entry and the chunk that owns it (needed to keep the chunk's
  /// live count in step when tombstoning).
  struct LiveRef {
    MempoolChunk* chunk;
    MempoolChunk::Entry* entry;
  };

  /// Admission outcome for one candidate; updates counters/structures.
  /// Returns true when admitted.
  bool AdmitLocked(PendingTx&& tx, uint64_t tick,
                   std::map<chain::AccountId, uint32_t>& rate_this_tick,
                   std::deque<PendingTx>& still_deferred)
      TXALLO_REQUIRES(mu_);

  /// Tombstones a live entry: chunk live count, per-account pending count,
  /// dead count. Caller erases it from live_by_seq_.
  void KillLocked(const LiveRef& ref) TXALLO_REQUIRES(mu_);

  /// Paying account: first input (the fee payer), falling back to the
  /// first distinct account for input-less transactions.
  static chain::AccountId PayerOf(const chain::Transaction& tx);

  const MempoolConfig config_;
  std::atomic<uint64_t> seq_counter_{0};

  // ---- Producer side -----------------------------------------------------
  mutable common::Mutex staging_mu_;
  common::CondVar staging_cv_;
  std::vector<Staged> staging_ TXALLO_GUARDED_BY(staging_mu_);
  bool shutdown_ TXALLO_GUARDED_BY(staging_mu_) = false;
  uint64_t submitted_ TXALLO_GUARDED_BY(staging_mu_) = 0;
  uint64_t dropped_backpressure_ TXALLO_GUARDED_BY(staging_mu_) = 0;

  // ---- Driver side -------------------------------------------------------
  mutable common::Mutex mu_;
  std::vector<std::unique_ptr<MempoolChunk>> chunks_ TXALLO_GUARDED_BY(mu_);
  /// Live entries by pool_seq; erased on dispatch/expiry. std::map for
  /// deterministic iteration (the determinism lint forbids unordered
  /// containers here).
  std::map<uint64_t, LiveRef> live_by_seq_ TXALLO_GUARDED_BY(mu_);
  /// Priority index over live entries, sorted worst-first so the best
  /// (highest fee, lowest seq) pops from the back. Entries whose seq is no
  /// longer live are tombstones, skipped lazily at TakeBatch.
  struct PriorityKey {
    uint64_t fee;
    uint64_t seq;
  };
  /// Worst-first comparator: ascending fee, descending seq within a fee.
  static bool WorsePriority(const PriorityKey& a, const PriorityKey& b) {
    if (a.fee != b.fee) return a.fee < b.fee;
    return a.seq > b.seq;
  }
  std::vector<PriorityKey> index_ TXALLO_GUARDED_BY(mu_);
  /// kBlock deferrals, FIFO, retried ahead of new arrivals each seal.
  std::deque<PendingTx> overflow_ TXALLO_GUARDED_BY(mu_);
  std::map<chain::AccountId, uint32_t> pending_per_account_
      TXALLO_GUARDED_BY(mu_);
  size_t dead_count_ TXALLO_GUARDED_BY(mu_) = 0;
  AdmissionStats stats_ TXALLO_GUARDED_BY(mu_);

  std::function<void(size_t)> cleaner_hook_;
};

}  // namespace txallo::mempool

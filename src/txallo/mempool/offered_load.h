// Open-loop offered-load generator: releases a ledger's transaction stream
// at a target rate against the engine's *logical* clock.
//
// Closed-loop driving (feed a block, wait for it to finish) can never
// overload the system — arrival rate automatically tracks service rate, so
// queueing delay stays invisible. Open-loop driving fixes the arrival rate
// regardless of progress: each tick the generator releases
// floor-accumulated `txs_per_tick` transactions (credit carries across
// ticks, so a rate of 2.5 releases 2,3,2,3,...), and whatever the engine
// cannot keep up with piles into the mempool, where admission control and
// the latency histograms make the overload measurable.
//
// Everything is a pure function of (ledger, config): the release schedule
// comes from the tick counter and the fee of transaction i from a SplitMix64
// hash of (fee_seed, i) — no wall clock, no RNG state shared across
// threads — so two runs with any thread/producer counts offer byte-identical
// streams.
#pragma once

#include <cstdint>
#include <vector>

#include "txallo/chain/ledger.h"
#include "txallo/chain/transaction.h"

namespace txallo::mempool {

struct OfferedLoadConfig {
  /// Target arrival rate, transactions per engine tick. May be fractional.
  double txs_per_tick = 8.0;
  /// Fees are drawn uniformly (by hash) from {1, ..., fee_levels}; 1 makes
  /// every fee equal, exercising the pure seq tie-break.
  uint32_t fee_levels = 16;
  uint64_t fee_seed = 0x9e3779b97f4a7c15ULL;
};

/// One released arrival: a view into the generator's flattened stream plus
/// its deterministic priority fee.
struct OfferedTx {
  const chain::Transaction* tx;
  uint64_t fee;
};

class OfferedLoadGenerator {
 public:
  /// Flattens `ledger` (copies its transactions; the ledger may go away).
  OfferedLoadGenerator(const chain::Ledger& ledger, OfferedLoadConfig config);

  /// Appends this tick's arrivals to `out` and returns how many were
  /// released. Call exactly once per tick; the fractional-credit carry is
  /// part of the deterministic schedule. Pointers stay valid for the
  /// generator's lifetime.
  size_t ReleaseTick(std::vector<OfferedTx>* out);

  /// True once the whole stream has been released.
  bool Done() const { return cursor_ >= transactions_.size(); }

  /// Transactions released so far.
  uint64_t released() const { return cursor_; }

  uint64_t total() const { return transactions_.size(); }

  /// The deterministic fee of stream position `index` (exposed for tests).
  uint64_t FeeFor(uint64_t index) const;

 private:
  const OfferedLoadConfig config_;
  std::vector<chain::Transaction> transactions_;
  uint64_t cursor_ = 0;
  double credit_ = 0.0;
};

}  // namespace txallo::mempool

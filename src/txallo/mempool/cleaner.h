// Background mempool cleaner: a single worker thread that reclaims
// fully-dead storage chunks (Mempool::CompactOnce) whenever the pool's
// tombstone count crosses its threshold — the speedex `mempool_cleaner`
// shape.
//
// Compaction is physically observable but logically invisible: it only
// frees chunks whose every entry is already dead, so the pool's contents,
// counters, dispatch order, and therefore every downstream latency figure
// are bit-identical whether the cleaner runs promptly, lags arbitrarily, or
// is absent. That is what lets a wall-clock-scheduled thread coexist with
// the determinism contract — the tests run the pool with and without a
// cleaner racing and compare outputs.
#pragma once

#include <thread>  // txallo-lint: allow(raw-thread) background compaction worker

#include "txallo/common/sync.h"
#include "txallo/mempool/mempool.h"

namespace txallo::mempool {

class MempoolCleaner {
 public:
  /// Starts the worker and installs itself as `pool`'s cleaner hook
  /// (Mempool::SetCleanerHook). `pool` must outlive the cleaner, and the
  /// hook slot must be free.
  explicit MempoolCleaner(Mempool* pool);

  /// Clears the hook and joins the worker (finishing any pass in flight).
  ~MempoolCleaner();

  MempoolCleaner(const MempoolCleaner&) = delete;
  MempoolCleaner& operator=(const MempoolCleaner&) = delete;

  /// Requests a compaction pass. Idempotent while one is already pending.
  /// Called by the pool's hook; may be called directly.
  void Nudge();

  /// Compaction passes completed so far (physical-progress observability,
  /// never part of any logical output).
  uint64_t passes() const;

 private:
  void WorkerMain();

  Mempool* const pool_;
  mutable common::Mutex mu_;
  common::CondVar cv_;
  bool stop_ TXALLO_GUARDED_BY(mu_) = false;
  bool pending_ TXALLO_GUARDED_BY(mu_) = false;
  uint64_t passes_ TXALLO_GUARDED_BY(mu_) = 0;
  // Started last in the constructor, joined in the destructor.
  std::thread worker_;  // txallo-lint: allow(raw-thread)
};

}  // namespace txallo::mempool

#include "txallo/mempool/cleaner.h"

namespace txallo::mempool {

MempoolCleaner::MempoolCleaner(Mempool* pool) : pool_(pool) {
  pool_->SetCleanerHook([this](size_t /*dead_count*/) { Nudge(); });
  // txallo-lint: allow(raw-thread) single background compaction worker
  worker_ = std::thread(&MempoolCleaner::WorkerMain, this);
}

MempoolCleaner::~MempoolCleaner() {
  // Unhook first so no further nudges arrive mid-teardown.
  pool_->SetCleanerHook(nullptr);
  {
    common::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
}

void MempoolCleaner::Nudge() {
  {
    common::MutexLock lock(mu_);
    if (pending_) return;
    pending_ = true;
  }
  cv_.NotifyOne();
}

uint64_t MempoolCleaner::passes() const {
  common::MutexLock lock(mu_);
  return passes_;
}

void MempoolCleaner::WorkerMain() {
  while (true) {
    {
      common::MutexLock lock(mu_);
      while (!pending_ && !stop_) cv_.Wait(mu_);
      if (stop_ && !pending_) return;
      pending_ = false;
    }
    pool_->CompactOnce();
    common::MutexLock lock(mu_);
    ++passes_;
  }
}

}  // namespace txallo::mempool

#include "txallo/mempool/offered_load.h"

#include <algorithm>
#include <cmath>

namespace txallo::mempool {

namespace {

// SplitMix64 finalizer: a cheap, well-mixed hash used as a stateless
// per-index fee draw.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

OfferedLoadGenerator::OfferedLoadGenerator(const chain::Ledger& ledger,
                                           OfferedLoadConfig config)
    : config_(config), transactions_(ledger.AllTransactions()) {}

uint64_t OfferedLoadGenerator::FeeFor(uint64_t index) const {
  const uint32_t levels = std::max(1u, config_.fee_levels);
  return Mix64(config_.fee_seed ^ index) % levels + 1;
}

size_t OfferedLoadGenerator::ReleaseTick(std::vector<OfferedTx>* out) {
  if (Done()) return 0;
  credit_ += config_.txs_per_tick;
  auto due = static_cast<uint64_t>(std::floor(credit_));
  credit_ -= static_cast<double>(due);
  due = std::min<uint64_t>(due, transactions_.size() - cursor_);
  for (uint64_t i = 0; i < due; ++i) {
    out->push_back(OfferedTx{&transactions_[cursor_], FeeFor(cursor_)});
    ++cursor_;
  }
  return due;
}

}  // namespace txallo::mempool

#include "txallo/mempool/mempool.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace txallo::mempool {

namespace {

MempoolConfig Sanitize(MempoolConfig config) {
  config.staging_capacity = std::max<size_t>(1, config.staging_capacity);
  config.chunk_size = std::max<size_t>(1, config.chunk_size);
  return config;
}

}  // namespace

Mempool::Mempool(MempoolConfig config) : config_(Sanitize(config)) {}

Mempool::~Mempool() { Shutdown(); }

chain::AccountId Mempool::PayerOf(const chain::Transaction& tx) {
  if (!tx.inputs().empty()) return tx.inputs().front();
  if (!tx.accounts().empty()) return tx.accounts().front();
  return chain::AccountId{0};
}

Status Mempool::Submit(chain::Transaction tx, uint64_t fee,
                       uint64_t submit_tick, uint64_t pool_seq) {
  common::MutexLock lock(staging_mu_);
  ++submitted_;
  while (staging_.size() >= config_.staging_capacity && !shutdown_) {
    staging_cv_.Wait(staging_mu_);
  }
  if (shutdown_) {
    return Status::FailedPrecondition("mempool is shut down");
  }
  staging_.push_back(
      Staged{PendingTx{std::move(tx), fee, pool_seq, submit_tick, 0}});
  return Status::OK();
}

bool Mempool::TrySubmit(chain::Transaction tx, uint64_t fee,
                        uint64_t submit_tick, uint64_t pool_seq) {
  common::MutexLock lock(staging_mu_);
  ++submitted_;
  if (shutdown_ || staging_.size() >= config_.staging_capacity) {
    ++dropped_backpressure_;
    return false;
  }
  staging_.push_back(
      Staged{PendingTx{std::move(tx), fee, pool_seq, submit_tick, 0}});
  return true;
}

void Mempool::Shutdown() {
  {
    common::MutexLock lock(staging_mu_);
    shutdown_ = true;
  }
  staging_cv_.NotifyAll();
}

size_t Mempool::SealTick(uint64_t tick) {
  std::vector<Staged> arrivals;
  {
    common::MutexLock lock(staging_mu_);
    arrivals.swap(staging_);
  }
  // Staging drained: wake every producer blocked on a full buffer.
  staging_cv_.NotifyAll();

  // Producer interleaving ends here — everything downstream sees arrivals
  // in pool_seq order, whatever the thread timing was.
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Staged& a, const Staged& b) {
              return a.tx.pool_seq < b.tx.pool_seq;
            });

  size_t admitted_now = 0;
  size_t dead_now = 0;
  {
    common::MutexLock lock(mu_);

    if (config_.ttl_ticks > 0) {
      std::vector<uint64_t> expired;
      for (const auto& [seq, ref] : live_by_seq_) {
        if (tick >= ref.entry->tx.admit_tick + config_.ttl_ticks) {
          expired.push_back(seq);
        }
      }
      for (uint64_t seq : expired) {
        auto it = live_by_seq_.find(seq);
        KillLocked(it->second);
        live_by_seq_.erase(it);
        ++stats_.expired;
        // The priority index entry stays behind as a tombstone, skipped
        // lazily at TakeBatch.
      }
    }

    const size_t index_before = index_.size();
    std::map<chain::AccountId, uint32_t> rate_this_tick;
    std::deque<PendingTx> still_deferred;
    std::deque<PendingTx> retry;
    retry.swap(overflow_);
    for (auto& tx : retry) {
      if (AdmitLocked(std::move(tx), tick, rate_this_tick, still_deferred)) {
        ++admitted_now;
      }
    }
    for (auto& staged : arrivals) {
      if (AdmitLocked(std::move(staged.tx), tick, rate_this_tick,
                      still_deferred)) {
        ++admitted_now;
      }
    }
    overflow_ = std::move(still_deferred);

    // Newly admitted keys were appended unsorted; order the tail and merge.
    if (index_.size() > index_before) {
      std::sort(index_.begin() + static_cast<ptrdiff_t>(index_before),
                index_.end(), WorsePriority);
      std::inplace_merge(index_.begin(),
                         index_.begin() + static_cast<ptrdiff_t>(index_before),
                         index_.end(), WorsePriority);
    }

    stats_.peak_depth =
        std::max<uint64_t>(stats_.peak_depth, live_by_seq_.size());
    dead_now = dead_count_;
  }

  if (cleaner_hook_ && dead_now >= config_.dead_compact_threshold) {
    cleaner_hook_(dead_now);
  }
  return admitted_now;
}

bool Mempool::AdmitLocked(PendingTx&& tx, uint64_t tick,
                          std::map<chain::AccountId, uint32_t>& rate_this_tick,
                          std::deque<PendingTx>& still_deferred) {
  const chain::AccountId payer = PayerOf(tx.tx);

  uint64_t* drop_counter = nullptr;
  if (config_.capacity > 0 && live_by_seq_.size() >= config_.capacity) {
    drop_counter = &stats_.dropped_capacity;
  } else if (config_.account_pending_limit > 0) {
    auto it = pending_per_account_.find(payer);
    if (it != pending_per_account_.end() &&
        it->second >= config_.account_pending_limit) {
      drop_counter = &stats_.dropped_account_pending;
    }
  }
  if (drop_counter == nullptr && config_.account_rate_limit > 0) {
    auto it = rate_this_tick.find(payer);
    if (it != rate_this_tick.end() &&
        it->second >= config_.account_rate_limit) {
      drop_counter = &stats_.dropped_account_rate;
    }
  }

  if (drop_counter != nullptr) {
    const size_t defer_bound =
        config_.capacity > 0 ? config_.capacity : SIZE_MAX;
    if (config_.policy == AdmissionPolicy::kBlock &&
        still_deferred.size() < defer_bound) {
      ++stats_.deferred;
      still_deferred.push_back(std::move(tx));
    } else {
      ++(*drop_counter);
    }
    return false;
  }

  if (config_.account_rate_limit > 0) ++rate_this_tick[payer];
  ++pending_per_account_[payer];
  tx.admit_tick = tick;
  if (chunks_.empty() || chunks_.back()->full()) {
    chunks_.push_back(std::make_unique<MempoolChunk>(config_.chunk_size));
  }
  MempoolChunk* chunk = chunks_.back().get();
  MempoolChunk::Entry* entry = chunk->Append(std::move(tx));
  live_by_seq_[entry->tx.pool_seq] = LiveRef{chunk, entry};
  index_.push_back(PriorityKey{entry->tx.fee, entry->tx.pool_seq});
  ++stats_.admitted;
  return true;
}

void Mempool::KillLocked(const LiveRef& ref) {
  const chain::AccountId payer = PayerOf(ref.entry->tx.tx);
  ref.chunk->MarkDead(ref.entry);
  ++dead_count_;
  auto it = pending_per_account_.find(payer);
  assert(it != pending_per_account_.end() && it->second > 0);
  if (--it->second == 0) pending_per_account_.erase(it);
}

std::vector<PendingTx> Mempool::TakeBatch(size_t max_txs) {
  std::vector<PendingTx> out;
  size_t dead_now = 0;
  {
    common::MutexLock lock(mu_);
    while (out.size() < max_txs && !index_.empty()) {
      const PriorityKey key = index_.back();
      index_.pop_back();
      auto it = live_by_seq_.find(key.seq);
      if (it == live_by_seq_.end()) continue;  // expired tombstone
      out.push_back(it->second.entry->tx);
      KillLocked(it->second);
      live_by_seq_.erase(it);
    }
    dead_now = dead_count_;
  }
  if (cleaner_hook_ && dead_now >= config_.dead_compact_threshold) {
    cleaner_hook_(dead_now);
  }
  return out;
}

size_t Mempool::live_size() const {
  common::MutexLock lock(mu_);
  return live_by_seq_.size();
}

size_t Mempool::staged_size() const {
  common::MutexLock lock(staging_mu_);
  return staging_.size();
}

size_t Mempool::deferred_size() const {
  common::MutexLock lock(mu_);
  return overflow_.size();
}

size_t Mempool::dead_count() const {
  common::MutexLock lock(mu_);
  return dead_count_;
}

AdmissionStats Mempool::stats() const {
  AdmissionStats s;
  {
    common::MutexLock lock(mu_);
    s = stats_;
  }
  {
    common::MutexLock lock(staging_mu_);
    s.submitted = submitted_;
    s.dropped_backpressure = dropped_backpressure_;
  }
  return s;
}

size_t Mempool::CompactOnce() {
  common::MutexLock lock(mu_);
  size_t reclaimed = 0;
  std::vector<std::unique_ptr<MempoolChunk>> kept;
  kept.reserve(chunks_.size());
  for (auto& chunk : chunks_) {
    if (chunk->Reclaimable()) {
      assert(dead_count_ >= chunk->size());
      dead_count_ -= chunk->size();
      ++reclaimed;
    } else {
      kept.push_back(std::move(chunk));
    }
  }
  chunks_ = std::move(kept);
  return reclaimed;
}

void Mempool::SetCleanerHook(std::function<void(size_t)> hook) {
  cleaner_hook_ = std::move(hook);
}

}  // namespace txallo::mempool

// Mempool storage chunk: a fixed-capacity, append-only slab of pending
// transactions (the speedex mempool shape — storage grows by whole chunks,
// dead entries are tombstoned in place, and the background cleaner reclaims
// chunks wholesale instead of shifting survivors around).
//
// The invariant everything else leans on: entries never move. A chunk
// reserves its full capacity up front and only ever appends, so an Entry*
// handed out by Append() stays valid until the whole chunk is destroyed —
// which the Mempool only does once every entry in it is dead and no live
// index refers to it. That is what lets the priority index and the
// seq-lookup map hold plain pointers across ticks while the cleaner runs
// concurrently (under the pool mutex) on other chunks.
//
// Not thread-safe on its own: a chunk is always owned by a Mempool and
// accessed under the pool's admitted-side mutex.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "txallo/chain/transaction.h"

namespace txallo::mempool {

/// A transaction resident in the mempool, carrying the timestamps the
/// open-loop latency measurement needs. All ticks are logical blocks of the
/// engine clock — never wall time — so every latency derived from them is
/// bit-identical across thread and producer counts.
struct PendingTx {
  chain::Transaction tx;
  /// Priority fee: higher dispatches first (ties broken by pool_seq).
  uint64_t fee = 0;
  /// Pool-wide ingest sequence tag (Mempool::ReserveSequenceRange): the
  /// deterministic tie-break and the stable identity of the transaction
  /// inside the pool.
  uint64_t pool_seq = 0;
  /// Tick at which the producer submitted it.
  uint64_t submit_tick = 0;
  /// Tick at which admission control accepted it (>= submit_tick; the gap
  /// is queueing delay spent in staging/deferral).
  uint64_t admit_tick = 0;
};

class MempoolChunk {
 public:
  struct Entry {
    PendingTx tx;
    bool dead = false;
  };

  explicit MempoolChunk(size_t capacity) : capacity_(capacity) {
    assert(capacity_ > 0);
    entries_.reserve(capacity_);
  }

  MempoolChunk(const MempoolChunk&) = delete;
  MempoolChunk& operator=(const MempoolChunk&) = delete;

  bool full() const { return entries_.size() >= capacity_; }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  size_t live_count() const { return live_count_; }

  /// True once the chunk is at capacity with every entry dead — eligible
  /// for wholesale reclamation by the cleaner.
  bool Reclaimable() const { return full() && live_count_ == 0; }

  /// Appends one entry. Precondition: !full(). The returned pointer is
  /// stable for the lifetime of the chunk (capacity is reserved up front).
  Entry* Append(PendingTx tx) {
    assert(!full());
    entries_.push_back(Entry{std::move(tx), /*dead=*/false});
    ++live_count_;
    return &entries_.back();
  }

  /// Tombstones a live entry of this chunk.
  void MarkDead(Entry* entry) {
    assert(!entry->dead);
    entry->dead = true;
    assert(live_count_ > 0);
    --live_count_;
  }

 private:
  const size_t capacity_;
  std::vector<Entry> entries_;
  size_t live_count_ = 0;
};

}  // namespace txallo::mempool

# The single home of every compiler-warning decision in the build. All
# first-party targets consume the `txallo::warnings` interface target (via
# target_link_libraries) rather than mutating global flags, so third-party
# code (FetchContent'd googletest) stays warning-exempt and no per-preset
# CMakeLists repeats a flag list.
#
# Layers:
#   * Base: -Wall -Wextra -Wshadow -Werror everywhere (MSVC: /W4 /WX).
#   * Clang only: -Wthread-safety — the static lock-discipline analysis the
#     annotated primitives in src/txallo/common/sync.h exist for. A Clang
#     build is the compile-time concurrency gate (CI job: static-analysis);
#     GCC compiles the annotation macros to nothing.
#   * Per-directory strict tier: txallo_strict_conversion_sources() adds
#     -Wconversion to the trace-affecting subsystems (engine/, allocator/)
#     where a silent narrowing could change committed counts or sequence
#     tags. Triage outcome: both directories compile clean, so the flag is
#     unconditional there; widen the list as more subsystems are triaged.

add_library(txallo_warnings INTERFACE)
add_library(txallo::warnings ALIAS txallo_warnings)

target_compile_options(txallo_warnings INTERFACE
  $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Wall -Wextra -Wshadow -Werror>
  $<$<CXX_COMPILER_ID:MSVC>:/W4 /WX>
  # Compile-time lock-discipline checking of the annotated sync layer
  # (common/sync.h). Clang-only: GCC has no equivalent analysis.
  $<$<CXX_COMPILER_ID:Clang,AppleClang>:-Wthread-safety>
  # Two GCC warnings fire spuriously inside inlined libstdc++ internals when
  # optimizing: -Wmaybe-uninitialized on std::variant<T, Status> (GCC bug
  # 105562) and -Wfree-nonheap-object on std::vector destructors at -O3
  # (GCC bug 104475). The code is ASan/UBSan-clean; keep both off rather
  # than peppering the sources with pragmas.
  $<$<CXX_COMPILER_ID:GNU>:-Wno-maybe-uninitialized -Wno-free-nonheap-object>)

# Adds -Wconversion to the given source files (paths relative to the calling
# CMakeLists). Source-scoped rather than a second interface target because
# the strict tier is a subset of one library target (txallo), and CMake
# cannot vary INTERFACE options per object within a target.
function(txallo_strict_conversion_sources)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang|AppleClang")
    set_property(SOURCE ${ARGV}
      APPEND PROPERTY COMPILE_OPTIONS -Wconversion)
  endif()
endfunction()

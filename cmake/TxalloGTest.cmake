# Resolve GoogleTest: prefer the system install (the CI image and the dev
# container both ship libgtest), fall back to FetchContent for machines that
# don't. Either path ends with GTest::gtest and GTest::gtest_main defined.

include(GoogleTest)  # gtest_discover_tests()

find_package(GTest QUIET)

if(NOT GTest_FOUND)
  message(STATUS "System GoogleTest not found; fetching v1.14.0 via FetchContent")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  # Never install gtest alongside txallo, and keep gmock out of the build.
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()

# Register every TESTNAME.cc gtest binary the same way:
#   * link the txallo library, warnings, and gtest_main (no per-test main()),
#   * discover the individual TEST() cases into CTest,
#   * surface GTEST_SKIP as a CTest "skipped" outcome instead of a silent
#     pass — gtest exits 0 on skip, so without SKIP_REGULAR_EXPRESSION the
#     three k=1 InvariantSweep cases would be invisible in ctest output.
# Extra arguments become CTest LABELS (e.g. "engine", which the tsan test
# preset filters on).
function(txallo_add_test name source)
  add_executable(${name} ${source})
  target_link_libraries(${name} PRIVATE txallo::txallo txallo::warnings GTest::gtest_main)
  set(_extra_properties "")
  if(ARGN)
    string(REPLACE ";" "," _labels "${ARGN}")
    set(_extra_properties LABELS "${_labels}")
  endif()
  gtest_discover_tests(${name}
    PROPERTIES SKIP_REGULAR_EXPRESSION "\\[  SKIPPED \\]" ${_extra_properties}
    DISCOVERY_TIMEOUT 60)
endfunction()

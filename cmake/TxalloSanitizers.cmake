# Opt-in Address+UB sanitizer instrumentation, toggled by the asan-ubsan
# preset (or -DTXALLO_SANITIZE=ON). Applied globally so the library, gtest
# runners, benches and examples all agree on the ASan runtime.

option(TXALLO_SANITIZE "Build with AddressSanitizer + UndefinedBehaviorSanitizer" OFF)

if(TXALLO_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang|AppleClang")
    message(FATAL_ERROR "TXALLO_SANITIZE is only supported with GCC or Clang.")
  endif()
  set(_txallo_san_flags -fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer)
  add_compile_options(${_txallo_san_flags})
  add_link_options(${_txallo_san_flags})
endif()

# Opt-in sanitizer instrumentation, toggled by the asan-ubsan / tsan presets
# (or -DTXALLO_SANITIZE=ON / -DTXALLO_TSAN=ON). Applied globally so the
# library, gtest runners, benches and examples all agree on the sanitizer
# runtime. ASan and TSan are mutually exclusive by construction (the
# runtimes cannot be linked together), hence separate presets/build dirs.

option(TXALLO_SANITIZE "Build with AddressSanitizer + UndefinedBehaviorSanitizer" OFF)
option(TXALLO_TSAN "Build with ThreadSanitizer (for the threaded engine suites)" OFF)

if(TXALLO_SANITIZE AND TXALLO_TSAN)
  message(FATAL_ERROR "TXALLO_SANITIZE and TXALLO_TSAN are mutually exclusive; configure two build trees.")
endif()

if(TXALLO_SANITIZE OR TXALLO_TSAN)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang|AppleClang")
    message(FATAL_ERROR "Sanitizer builds are only supported with GCC or Clang.")
  endif()
endif()

if(TXALLO_SANITIZE)
  set(_txallo_san_flags -fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer)
  add_compile_options(${_txallo_san_flags})
  add_link_options(${_txallo_san_flags})
endif()

if(TXALLO_TSAN)
  set(_txallo_tsan_flags -fsanitize=thread -fno-omit-frame-pointer)
  add_compile_options(${_txallo_tsan_flags})
  add_link_options(${_txallo_tsan_flags})
endif()

# Warnings-as-errors interface target shared by the library, tests, benches
# and examples. Link `txallo::warnings` rather than mutating global flags so
# third-party code (FetchContent'd googletest) stays warning-exempt.

add_library(txallo_warnings INTERFACE)
add_library(txallo::warnings ALIAS txallo_warnings)

target_compile_options(txallo_warnings INTERFACE
  $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Wall -Wextra -Werror>
  $<$<CXX_COMPILER_ID:MSVC>:/W4 /WX>
  # Two GCC warnings fire spuriously inside inlined libstdc++ internals when
  # optimizing: -Wmaybe-uninitialized on std::variant<T, Status> (GCC bug
  # 105562) and -Wfree-nonheap-object on std::vector destructors at -O3
  # (GCC bug 104475). The code is ASan/UBSan-clean; keep both off rather
  # than peppering the sources with pragmas.
  $<$<CXX_COMPILER_ID:GNU>:-Wno-maybe-uninitialized -Wno-free-nonheap-object>)

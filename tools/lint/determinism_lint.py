#!/usr/bin/env python3
"""Determinism lint: the PR-5 determinism contract as checkable rules.

The parallel engine guarantees bit-identical record/replay (see README
"Determinism contract"): per-lane execution order is a pure function of the
submitted blocks and installed snapshots, independent of thread count,
producer fan-out and wall-clock time. Those guarantees are easy to break
silently — one `std::unordered_map` range-for in a trace-affecting path, or
one wall-clock read folded into a committed counter, and replay diverges
only on *some* machines. This linter encodes the contract as source-level
rules so the break is a CI failure, not a flaky golden-trace test.

Rules (ids are what `allow(...)` escapes name):

  raw-sync      std::mutex / std::condition_variable / std::lock_guard /
                std::unique_lock / std::scoped_lock / std::shared_mutex and
                the <mutex>/<condition_variable>/<shared_mutex> headers are
                forbidden outside txallo/common/sync.h. Everything else
                must use the annotated wrappers (common::Mutex, MutexLock,
                CondVar) so Clang -Wthread-safety can check lock
                discipline.

  raw-thread    std::thread / std::jthread and <thread> are forbidden.
                Thread pools are structural in three engine files; each
                use carries an explicit escape, keeping every spawn site
                enumerable.

  wall-clock    std::rand / srand / std::random_device /
                std::chrono::system_clock / high_resolution_clock (and
                time(NULL)/time(nullptr)) are forbidden in txallo/ outside
                common/rng.{h,cc} (the seeded deterministic RNG) and
                common/stopwatch.{h,cc} (steady_clock metrics, which never
                feed trace-affecting state). Wall-clock or entropy anywhere
                else can leak into execution order.

  unordered-iter
                Range-for over a std::unordered_map/unordered_set (declared
                in-file or written inline) is forbidden in trace-affecting
                paths: txallo/engine/ (execution, 2PC, replay),
                txallo/allocator/ (Commit folds mappings back into live
                state), txallo/state/ (account records feed the per-tick
                Merkle roots the replay log verifies bit-identically),
                txallo/mempool/ (admission decisions and dispatch order
                are part of the recorded trace), txallo/graph/ (the
                delta-log CSR promises bit-identical reads across copy /
                refreeze), txallo/chain/ (the account registry assigns
                ids in first-seen order), txallo/core/ (gain sweeps
                visit communities in deterministic order; these paths use
                common::FlatMap, which iterates in insertion order, and
                must not regress to hash-order) and txallo/workload/
                (generators and scenario overlays promise a bit-identical
                stream per seed — the contract the gauntlet snapshots and
                record/replay traces rest on). Hash-table iteration order is
                implementation-defined and seed-dependent; iterate a sorted
                copy or a vector instead. Detection is heuristic
                (declaration-name tracking, no type inference), which is
                the right trade for a 400-line linter — escapes cover the
                false positives.

Escapes: append `// txallo-lint: allow(<rule>[,<rule>...])` to the
offending line, or put the same comment alone on the line directly above
it. Escapes are per-line and per-rule; a justification after the closing
parenthesis is encouraged and ignored by the parser.

Paths: a file participates when its path contains a `txallo/` component;
the sub-path after it selects the rule set (so the self-test fixtures under
tests/tools/fixtures/txallo/ are classified exactly like the real tree).

Exit status: 0 = clean, 1 = violations found, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".hh", ".cc", ".cpp", ".cxx"}

ESCAPE_RE = re.compile(r"txallo-lint:\s*allow\(([^)]*)\)")

# rule id -> (regex over the code portion of a line, human message)
TOKEN_RULES = {
    "raw-sync": (
        re.compile(
            r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|"
            r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
            r"condition_variable(?:_any)?|lock_guard|unique_lock|"
            r"scoped_lock|shared_lock)\b"
            r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
        ),
        "raw std synchronization primitive; use the annotated wrappers in "
        "txallo/common/sync.h (common::Mutex / MutexLock / CondVar)",
    ),
    "raw-thread": (
        re.compile(r"\bstd\s*::\s*j?thread\b|#\s*include\s*<thread>"),
        "raw std::thread; thread pools need an explicit "
        "`txallo-lint: allow(raw-thread)` so every spawn site is "
        "enumerable",
    ),
    "wall-clock": (
        re.compile(
            r"\bstd\s*::\s*rand\b|\bsrand\s*\(|\brandom_device\b"
            r"|\bsystem_clock\b|\bhigh_resolution_clock\b"
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
        ),
        "wall-clock / entropy source in a deterministic path; derive "
        "randomness from common/rng.h and timing from common/stopwatch.h",
    ),
}

# Declaration of an unordered container: capture the variable name that
# follows the closing template bracket(s). Handles the common shapes
#   std::unordered_map<K, V> name;   unordered_set<T> name_{...};
#   const std::unordered_map<K, V>& name = ...;
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"[&*\s]*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)"
)

# Range-for: capture the range expression.
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;:)]*:\s*([^)]+)\)")


def strip_comments(text: str):
    """Returns (code_lines, escape_rules_per_line).

    code_lines[i] is line i with comment/string contents blanked (strings
    become empty literals so tokens inside them cannot match rules);
    escape_rules_per_line[i] is the set of rule ids an escape comment on
    line i allows.
    """
    code_lines = []
    escapes = []
    in_block = False
    for raw in text.splitlines():
        allowed = set()
        for m in ESCAPE_RE.finditer(raw):
            allowed.update(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
        escapes.append(allowed)

        out = []
        i = 0
        n = len(raw)
        in_line = False
        in_str = None  # the quote char when inside a literal
        while i < n:
            c = raw[i]
            if in_block:
                if raw.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if in_line:
                break
            if in_str:
                if c == "\\":
                    i += 2
                    continue
                if c == in_str:
                    out.append(c)
                    in_str = None
                    i += 1
                    continue
                i += 1
                continue
            if raw.startswith("//", i):
                in_line = True
                continue
            if raw.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if c in "\"'":
                in_str = c
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        code_lines.append("".join(out))
    return code_lines, escapes


def txallo_subpath(path: Path):
    """The path after the last `txallo/` component, or None."""
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "txallo":
            return "/".join(parts[i + 1 :])
    return None


def rules_for(subpath: str):
    """Which rule ids apply to a txallo-relative file path."""
    rules = set(TOKEN_RULES)
    rules.add("unordered-iter")
    if subpath == "common/sync.h":
        rules.discard("raw-sync")
    if subpath in (
        "common/rng.h",
        "common/rng.cc",
        "common/stopwatch.h",
        "common/stopwatch.cc",
    ):
        rules.discard("wall-clock")
    if not (
        subpath.startswith("engine/")
        or subpath.startswith("allocator/")
        or subpath.startswith("state/")
        or subpath.startswith("mempool/")
        or subpath.startswith("graph/")
        or subpath.startswith("chain/")
        or subpath.startswith("core/")
        or subpath.startswith("workload/")
    ):
        rules.discard("unordered-iter")
    return rules


def base_identifier(expr: str):
    """`coord_.outcomes()` / `state->map_` / `items` -> leading identifier."""
    m = re.match(r"\s*[&*(]*\s*([A-Za-z_]\w*)", expr)
    return m.group(1) if m else None


def lint_file(path: Path, display: Path):
    subpath = txallo_subpath(display)
    if subpath is None:
        return []
    active = rules_for(subpath)
    if not active:
        return []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"determinism_lint: cannot read {display}: {err}",
              file=sys.stderr)
        sys.exit(2)
    code_lines, escapes = strip_comments(text)

    def allowed(lineno0: int, rule: str):
        if rule in escapes[lineno0]:
            return True
        # A standalone escape line covers the next line.
        if lineno0 > 0 and rule in escapes[lineno0 - 1]:
            if not code_lines[lineno0 - 1].strip():
                return True
        return False

    findings = []

    def report(lineno0: int, rule: str, message: str):
        if not allowed(lineno0, rule):
            findings.append((display, lineno0 + 1, rule, message))

    for lineno0, code in enumerate(code_lines):
        for rule, (pattern, message) in TOKEN_RULES.items():
            if rule in active and pattern.search(code):
                report(lineno0, rule, message)

    if "unordered-iter" in active:
        unordered_names = set()
        for code in code_lines:
            for m in UNORDERED_DECL_RE.finditer(code):
                unordered_names.add(m.group(1))
        message = (
            "range-for over an unordered container in a trace-affecting "
            "path; hash iteration order is nondeterministic — iterate a "
            "sorted copy instead"
        )
        for lineno0, code in enumerate(code_lines):
            for m in RANGE_FOR_RE.finditer(code):
                range_expr = m.group(1)
                if "unordered_" in range_expr:
                    report(lineno0, "unordered-iter", message)
                    continue
                base = base_identifier(range_expr)
                if base is not None and base in unordered_names:
                    report(lineno0, "unordered-iter", message)
    return findings


def collect_files(paths):
    files = []
    for arg in paths:
        p = Path(arg)
        if p.is_dir():
            files.extend(
                sorted(
                    f for f in p.rglob("*")
                    if f.suffix in CXX_SUFFIXES and f.is_file()
                )
            )
        elif p.is_file():
            files.append(p)
        else:
            print(f"determinism_lint: no such file or directory: {arg}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        description="txallo determinism-contract linter (see module "
        "docstring for the rules)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(list(TOKEN_RULES) + ["unordered-iter"]):
            print(rule)
        return 0

    paths = args.paths or ["src"]
    findings = []
    for f in collect_files(paths):
        findings.extend(lint_file(f, f))

    for display, lineno, rule, message in findings:
        print(f"{display}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"determinism_lint: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// Figure 8 (paper §VI-B6): allocation running time (seconds) vs k, one
// panel per η. The paper plots Shard Scheduler on a secondary axis because
// it is an order of magnitude slower (it touches every transaction); here
// all methods share one column set — compare ratios, not pixels.
//
// Reference points at paper scale (91.8M txs, 12.6M accounts, Python):
// Shard Scheduler 3447.9s, METIS 422.7s, G-TxAllo 122.3s. Absolute numbers
// here are smaller (C++, smaller synthetic dataset); the ordering and the
// relative gaps are the reproduced claim.
#include "common/bench_common.h"

namespace {
double ExtractSeconds(const txallo::bench::MethodResult& result) {
  return result.allocation_seconds;
}
}  // namespace

int main(int argc, char** argv) {
  return txallo::bench::RunStandardSweepFigure(
      argc, argv,
      "Figure 8: Running time comparison (seconds vs k)",
      "Allocation running time (s)",
      &ExtractSeconds, "fig8_running_time",
      "Paper shape: Random ~0, Our Method < METIS by >2x, Shard Scheduler "
      "slowest by an order\nof magnitude (plotted on its own axis in the "
      "paper). NOTE: with a warm sweep cache these\nare cached timings; "
      "run with --no-cache for fresh wall-clock numbers.");
}

// The scenario gauntlet: every allocation strategy in --methods runs every
// workload in --scenarios through the open-loop pipeline with the
// account-state backend on, and each (scenario, allocator) cell reports the
// numbers that separate strategies under hostile traffic — committed
// throughput, cross-shard share, state aborts, and the p99 end-to-end
// latency in ticks. The defaults cover the full allocator registry against
// the full scenario registry, so one run answers "which strategy survives
// which pattern".
//
// Every reported number is a function of the logical clock (tick-based
// latency, counter deltas, Merkle roots), so the table is bit-identical
// across --threads and --producers counts. --json-out writes the
// integer-only snapshot committed as BENCH_gauntlet.json; CI regenerates it
// under non-default thread/producer counts and byte-diffs it.
//
// Record/replay (engine/replay.h): --record=PATH saves the first cell's
// trace — the trace meta names its scenario spec (workload_spec), which is
// how --replay=PATH can regenerate the exact workload without being told:
// pass the same shape flags and the replay rebuilds the scenario from the
// recorded spec, verifies the ledger fingerprint, and re-executes to
// bit-identity.
//
//   ./build/bench/gauntlet [--methods=a;b] [--scenarios=x;y]
//       [--k=8] [--eta=2] [--blocks=48] [--txs-per-block=96]
//       [--accounts=4000] [--communities=40] [--balance=48] [--seed=42]
//       [--epoch-blocks=12] [--service-rate=120] [--offered-load=X]
//       [--producers=N] [--state=0|1] [--json-out=PATH]
//       [--csv-dir=DIR] [--record=PATH | --replay=PATH]
//
// --scenario=help prints the scenario catalog, --allocator=help the
// allocator catalog. Both lists are ';'-separated (specs contain commas).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "txallo/common/sha256.h"
#include "txallo/engine/pipeline.h"
#include "txallo/engine/replay.h"

namespace {

using namespace txallo;

struct GauntletCell {
  std::string scenario;
  std::string allocator;
  uint64_t ticks = 0;
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t cross_shard_submitted = 0;
  uint64_t dropped = 0;
  uint64_t expired = 0;
  uint64_t accounts_migrated = 0;
  uint64_t latency_p50 = 0;
  uint64_t latency_p99 = 0;
  uint64_t latency_max = 0;
  std::string state_root_hex;  // Empty when the state backend is off.
};

GauntletCell MakeCell(const std::string& scenario_spec,
                      const std::string& allocator_spec,
                      const engine::PipelineResult& result,
                      engine::ParallelEngine* engine, bool state_on) {
  GauntletCell cell;
  cell.scenario = scenario_spec;
  cell.allocator = allocator_spec;
  cell.ticks = result.report.sim.blocks_elapsed;
  cell.submitted = result.report.sim.submitted;
  cell.committed = result.report.sim.committed;
  cell.aborted = result.report.aborted;
  cell.cross_shard_submitted = result.report.sim.cross_shard_submitted;
  cell.dropped = result.admission.dropped_capacity +
                 result.admission.dropped_account_pending +
                 result.admission.dropped_account_rate +
                 result.admission.dropped_backpressure;
  cell.expired = result.admission.expired;
  cell.accounts_migrated = result.report.accounts_migrated;
  cell.latency_p50 = result.e2e_latency_ticks.Percentile(50.0);
  cell.latency_p99 = result.e2e_latency_ticks.Percentile(99.0);
  cell.latency_max = result.e2e_latency_ticks.max();
  if (state_on && engine != nullptr && engine->state() != nullptr) {
    cell.state_root_hex = DigestToHex(engine->state()->GlobalRoot());
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (bench::HandleAllocatorHelp(flags)) return 0;
  if (bench::HandleScenarioHelp(flags)) return 0;
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 8));
  const double eta = flags.GetDouble("eta", 2.0);
  const uint32_t epoch_blocks =
      static_cast<uint32_t>(flags.GetInt("epoch-blocks", 12));
  const double service_rate = flags.GetDouble("service-rate", 120.0);
  const uint32_t producers =
      static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt("producers", 0)));
  const bool state_on = flags.GetInt("state", 1) != 0;
  const std::string json_out = flags.GetString("json-out", "");

  // The shared experiment shape. Deliberately NOT derived from the scale
  // presets: the committed BENCH_gauntlet.json must not move when
  // TXALLO_SCALE / TXALLO_ACCOUNTS retune the figure benches. The tight
  // default balance makes insufficient-balance aborts part of the score.
  workload::ScenarioShape shape;
  shape.num_blocks = static_cast<uint64_t>(flags.GetInt("blocks", 48));
  shape.txs_per_block =
      static_cast<uint64_t>(flags.GetInt("txs-per-block", 96));
  shape.num_accounts = static_cast<uint64_t>(flags.GetInt("accounts", 4'000));
  shape.num_communities =
      static_cast<uint32_t>(flags.GetInt("communities", 40));
  shape.initial_balance = flags.GetInt("balance", 48);
  shape.seed = seed;

  // Offered load: just under the service rate by default, so queueing (and
  // therefore p99 separation between allocators) is visible without the
  // mempool shedding everything.
  Result<double> offered = bench::ResolveOfferedLoad(flags, 100.0);
  if (!offered.ok()) {
    std::fprintf(stderr, "%s\n", offered.status().ToString().c_str());
    return 1;
  }

  const bench::TraceFlags trace = bench::ResolveTraceFlags(flags);
  if (!trace.record_path.empty() && !trace.replay_path.empty()) {
    std::fprintf(stderr, "--record and --replay are mutually exclusive\n");
    return 1;
  }

  // Default grid: the full registries. ';'-separated because both spec
  // languages use ',' inside a spec.
  std::vector<std::string> scenario_specs;
  if (flags.Has("scenarios")) {
    scenario_specs = bench::SplitList(flags.GetString("scenarios", ""), ';');
  } else {
    const std::string single = bench::ResolveScenarioSpec(flags, "");
    if (!single.empty()) {
      scenario_specs.push_back(single);
    } else {
      scenario_specs = workload::RegisteredScenarioNames();
    }
  }
  std::vector<std::string> method_specs =
      bench::ResolveMethodSpecs(flags, allocator::RegisteredNames());

  const auto make_engine_config = [&]() {
    engine::EngineConfig engine_config =
        bench::MakeEngineConfig(scale, k, eta, service_rate / k);
    engine_config.hash_route_unassigned = true;
    engine_config.state.enabled = state_on;
    engine_config.state.initial_balance = shape.initial_balance;
    return engine_config;
  };
  const auto make_pipeline = [&](const std::string& scenario_spec) {
    engine::PipelineConfig pipeline;
    pipeline.blocks_per_epoch = epoch_blocks;
    pipeline.ingest_producers = producers;
    pipeline.workload_spec = scenario_spec;
    pipeline.ingest_mode = engine::IngestMode::kOpenLoop;
    pipeline.open_loop.offered_load = *offered;
    pipeline.open_loop.dispatch_per_tick =
        static_cast<uint32_t>(std::ceil(service_rate));
    return pipeline;
  };

  bench::SeriesTable table(
      "Gauntlet: one row per (scenario, allocator) cell",
      {"scenario", "allocator", "ticks", "committed", "tput/tick", "cross%",
       "aborted", "dropped", "p50", "p99", "max"});
  std::vector<GauntletCell> cells;
  const auto add_cell = [&](const GauntletCell& cell) {
    const double tput =
        cell.ticks == 0
            ? 0.0
            : static_cast<double>(cell.committed) /
                  static_cast<double>(cell.ticks);
    const double cross_pct =
        cell.submitted == 0
            ? 0.0
            : 100.0 * static_cast<double>(cell.cross_shard_submitted) /
                  static_cast<double>(cell.submitted);
    table.AddRow({cell.scenario, cell.allocator, std::to_string(cell.ticks),
                  std::to_string(cell.committed), bench::Fmt(tput, 1),
                  bench::Fmt(cross_pct, 1), std::to_string(cell.aborted),
                  std::to_string(cell.dropped),
                  std::to_string(cell.latency_p50),
                  std::to_string(cell.latency_p99),
                  std::to_string(cell.latency_max)});
    cells.push_back(cell);
  };

  const auto write_json = [&]() {
    if (json_out.empty()) return;
    std::ofstream file(json_out, std::ios::trunc);
    file << "{\n  \"bench\": \"gauntlet\",\n";
    file << "  \"k\": " << k << ",\n";
    file << "  \"blocks\": " << shape.num_blocks << ",\n";
    file << "  \"txs_per_block\": " << shape.txs_per_block << ",\n";
    file << "  \"accounts\": " << shape.num_accounts << ",\n";
    file << "  \"communities\": " << shape.num_communities << ",\n";
    file << "  \"initial_balance\": " << shape.initial_balance << ",\n";
    file << "  \"epoch_blocks\": " << epoch_blocks << ",\n";
    file << "  \"offered_load_x10\": "
         << static_cast<uint64_t>(*offered * 10.0 + 0.5) << ",\n";
    file << "  \"seed\": " << seed << ",\n";
    file << "  \"state_enabled\": " << (state_on ? "true" : "false") << ",\n";
    file << "  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
      const GauntletCell& cell = cells[i];
      if (i > 0) file << ",\n";
      file << "    {\n";
      file << "      \"scenario\": \"" << cell.scenario << "\",\n";
      file << "      \"allocator\": \"" << cell.allocator << "\",\n";
      file << "      \"ticks\": " << cell.ticks << ",\n";
      file << "      \"submitted\": " << cell.submitted << ",\n";
      file << "      \"committed\": " << cell.committed << ",\n";
      file << "      \"aborted\": " << cell.aborted << ",\n";
      file << "      \"cross_shard_submitted\": " << cell.cross_shard_submitted
           << ",\n";
      file << "      \"dropped\": " << cell.dropped << ",\n";
      file << "      \"expired\": " << cell.expired << ",\n";
      file << "      \"accounts_migrated\": " << cell.accounts_migrated
           << ",\n";
      file << "      \"latency_p50\": " << cell.latency_p50 << ",\n";
      file << "      \"latency_p99\": " << cell.latency_p99 << ",\n";
      file << "      \"latency_max\": " << cell.latency_max << ",\n";
      file << "      \"state_root\": \"" << cell.state_root_hex << "\"\n";
      file << "    }";
    }
    file << "\n  ]\n}\n";
    std::printf("wrote gauntlet snapshot to %s\n", json_out.c_str());
  };

  if (!trace.replay_path.empty()) {
    auto loaded = engine::LoadReplayLog(trace.replay_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "--replay: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    // The trace names its workload: rebuild the scenario from the recorded
    // spec (shape flags must match the recorded run — the ledger
    // fingerprint check is the arbiter).
    const std::string recorded_spec = loaded->meta.workload_spec;
    if (recorded_spec.empty()) {
      std::fprintf(stderr,
                   "--replay: trace has no workload_spec (not a gauntlet "
                   "trace); replay it with the bench that recorded it\n");
      return 1;
    }
    std::unique_ptr<workload::Scenario> scenario =
        bench::MakeScenarioOrDie(recorded_spec, shape);
    const chain::Ledger ledger =
        scenario->GenerateLedger(scenario->num_blocks());
    engine::ParallelEngine engine(make_engine_config(), nullptr);
    auto result = engine::ReplayRecordedStream(ledger, *loaded, &engine,
                                               make_pipeline(recorded_spec));
    if (!result.ok()) {
      std::fprintf(stderr, "--replay: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    add_cell(
        MakeCell(recorded_spec, "replay", *result, &engine, state_on));
    write_json();
    table.Print();
    table.WriteCsv(flags.GetString("csv-dir", "bench_out"), "gauntlet.csv");
    std::printf("\nreplay of '%s' (scenario '%s'): bit-identical (%zu "
                "commits, %zu steps)\n",
                trace.replay_path.c_str(), recorded_spec.c_str(),
                loaded->commits.size(), loaded->steps.size());
    return 0;
  }

  bool recorded = false;
  for (const std::string& scenario_spec : scenario_specs) {
    std::unique_ptr<workload::Scenario> scenario =
        bench::MakeScenarioOrDie(scenario_spec, shape);
    const chain::Ledger ledger =
        scenario->GenerateLedger(scenario->num_blocks());
    for (const std::string& method_spec : method_specs) {
      allocator::AllocatorOptions options;
      options.params = alloc::AllocationParams::ForExperiment(
          ledger.num_transactions(), k, eta);
      options.registry = &scenario->registry();
      options.seed = seed;
      auto made = allocator::MakeAllocatorFromSpec(method_spec, options);
      if (!made.ok()) {
        std::fprintf(stderr, "allocator '%s': %s\n", method_spec.c_str(),
                     made.status().ToString().c_str());
        return 1;
      }
      allocator::OnlineAllocator* online = (*made)->AsOnline();
      if (online == nullptr) {
        // The gauntlet is a streaming benchmark; one-shot-only strategies
        // have no per-epoch update to score. Skipped, not failed, so the
        // full-registry default keeps working as the registry grows.
        std::printf("skipping '%s': one-shot only\n", method_spec.c_str());
        continue;
      }
      engine::ParallelEngine engine(make_engine_config(), nullptr);
      engine::ReplayLog log;
      engine::PipelineConfig pipeline = make_pipeline(scenario_spec);
      if (!trace.record_path.empty() && !recorded) pipeline.record = &log;
      auto result =
          engine::RunReallocatedStream(ledger, online, &engine, pipeline);
      if (!result.ok()) {
        std::fprintf(stderr, "gauntlet cell (%s, %s) failed: %s\n",
                     scenario_spec.c_str(), method_spec.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      if (!trace.record_path.empty() && !recorded) {
        Status saved = engine::SaveReplayLog(log, trace.record_path);
        if (!saved.ok()) {
          std::fprintf(stderr, "--record: %s\n", saved.ToString().c_str());
          return 1;
        }
        std::printf("recorded cell (%s, %s) to %s (%zu commits, %zu steps; "
                    "trace meta names the scenario)\n",
                    scenario_spec.c_str(), method_spec.c_str(),
                    trace.record_path.c_str(), log.commits.size(),
                    log.steps.size());
        recorded = true;
      }
      add_cell(MakeCell(scenario_spec, method_spec, *result, &engine,
                        state_on));
    }
  }

  write_json();
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"), "gauntlet.csv");
  std::printf(
      "\ncross%% = cross-shard share of submitted transactions; p50/p99/max "
      "are end-to-end\nlatency in ticks (commit tick - submit tick). Every "
      "column is a function of the\nlogical clock: identical across "
      "--threads and --producers.\n");
  return 0;
}

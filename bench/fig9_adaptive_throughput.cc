// Figure 9 (paper §VI-C1): throughput evolution of the hybrid schedule.
// τ1 = one step of blocks (A-TxAllo every step); the curves vary the
// global updating gap τ2 (G-TxAllo every gap steps), plus the pure
// "Global Method" baseline (G-TxAllo every step). Panel (b) is the
// per-curve average.
//
// Paper shape: all curves sit in a narrow band (10.45..10.8x at their
// scale); pure A-TxAllo degrades only slowly as the gap grows — even a
// 9-day gap (gap=200) loses little. Transaction-pattern noise moves the
// curves more than the gap does.
#include <cstdio>

#include "common/bench_common.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bench::TimelineConfig config =
      bench::ResolveTimelineConfig(flags, scale, seed);

  std::printf("==============================================================\n");
  std::printf("Figure 9: Adaptive throughput evolution (tau1 = %d blocks/step,"
              " %d steps, k=%u, eta=%g)\n",
              config.blocks_per_step, config.steps, config.num_shards,
              config.eta);
  std::printf("Schedules: Global Method (G-TxAllo every step) and hybrid "
              "with global gaps scaled\nfrom the paper's 20/40/100/200 to "
              "this run's step count.\n");
  std::printf("==============================================================\n");

  // The paper's gaps relative to its 200 steps: 10%, 20%, 50%, 100%.
  const int gaps[] = {std::max(1, config.steps / 10),
                      std::max(1, config.steps / 5),
                      std::max(1, config.steps / 2), config.steps};
  std::vector<std::string> columns{"step", "Global"};
  for (int gap : gaps) columns.push_back("Gap=" + std::to_string(gap));
  bench::SeriesTable table("Normalized throughput per step", columns);

  std::vector<bench::TimelineResult> results;
  results.push_back(bench::RunTimeline(config, /*global_gap_steps=*/1));
  for (int gap : gaps) {
    results.push_back(bench::RunTimeline(config, gap));
  }

  for (int step = 0; step < config.steps; ++step) {
    std::vector<std::string> row{std::to_string(step)};
    for (const auto& result : results) {
      row.push_back(bench::Fmt(result.throughput_per_step[step]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                 "fig9_adaptive_throughput.csv");

  std::printf("\nFigure 9b: Average throughput per schedule\n");
  std::printf("  %-12s %.3f\n", "Global", results[0].average_throughput);
  for (size_t i = 0; i < std::size(gaps); ++i) {
    std::printf("  Gap=%-8d %.3f\n", gaps[i],
                results[i + 1].average_throughput);
  }
  std::printf("\nPaper shape check: the averages should sit within a few "
              "percent of each other;\nlonger gaps may dip slightly but the "
              "loss stays small (the paper's 9-day claim).\n");
  return 0;
}

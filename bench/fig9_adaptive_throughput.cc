// Figure 9 (paper §VI-C1): throughput evolution of the hybrid schedule.
// τ1 = one step of blocks (one Rebalance every step); the default curves
// vary the global updating gap τ2 ("txallo-hybrid:global-every=G") against
// the pure "Global Method" baseline ("txallo-global"). Panel (b) is the
// per-curve average.
//
// The schedules run through the allocator registry, so --methods accepts an
// arbitrary strategy list instead of the built-in controller pair:
//
//   ./build/bench/fig9_adaptive_throughput
//       --methods="txallo-hybrid:global-every=6;shard-scheduler;contrib"
//
// Paper shape (default curves): all curves sit in a narrow band
// (10.45..10.8x at their scale); pure A-TxAllo degrades only slowly as the
// gap grows — even a 9-day gap (gap=200) loses little. Transaction-pattern
// noise moves the curves more than the gap does.
#include <algorithm>
#include <cstdio>

#include "common/bench_common.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (bench::HandleAllocatorHelp(flags)) return 0;
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bench::TimelineConfig config =
      bench::ResolveTimelineConfig(flags, scale, seed);

  // Default schedule set: the paper's gaps relative to its 200 steps
  // (10%, 20%, 50%, 100%), rescaled to this run's step count.
  std::vector<std::string> default_specs{"txallo-global"};
  for (int gap : {std::max(1, config.steps / 10),
                  std::max(1, config.steps / 5),
                  std::max(1, config.steps / 2), config.steps}) {
    default_specs.push_back("txallo-hybrid:global-every=" +
                            std::to_string(gap));
  }
  const std::vector<std::string> specs =
      bench::ResolveMethodSpecs(flags, default_specs);

  std::printf("==============================================================\n");
  std::printf("Figure 9: Adaptive throughput evolution (tau1 = %d blocks/step,"
              " %d steps, k=%u, eta=%g)\n",
              config.blocks_per_step, config.steps, config.num_shards,
              config.eta);
  std::printf("Schedules (allocator registry specs; override with "
              "--methods=a;b;c):\n");
  for (const std::string& spec : specs) {
    std::printf("  %s\n", spec.c_str());
  }
  std::printf("==============================================================\n");

  std::vector<std::string> columns{"step"};
  for (const std::string& spec : specs) columns.push_back(spec);
  bench::SeriesTable table("Normalized throughput per step", columns);

  std::vector<bench::TimelineResult> results;
  results.reserve(specs.size());
  for (const std::string& spec : specs) {
    results.push_back(bench::RunTimeline(config, spec));
  }

  for (int step = 0; step < config.steps; ++step) {
    std::vector<std::string> row{std::to_string(step)};
    for (const auto& result : results) {
      row.push_back(bench::Fmt(result.throughput_per_step[step]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                 "fig9_adaptive_throughput.csv");

  std::printf("\nFigure 9b: Average throughput per schedule\n");
  for (size_t i = 0; i < specs.size(); ++i) {
    std::printf("  %-40s %.3f\n", specs[i].c_str(),
                results[i].average_throughput);
  }
  std::printf("\nPaper shape check (default schedules): the averages should "
              "sit within a few\npercent of each other; longer gaps may dip "
              "slightly but the loss stays small\n(the paper's 9-day "
              "claim).\n");
  return 0;
}

// Headline numbers quoted in the paper's abstract and introduction:
//   * k=60: cross-shard ratio 98% (hash) -> ~12% (TxAllo), METIS ~28%;
//   * running time: Shard Scheduler >> METIS >> G-TxAllo >> A-TxAllo
//     (paper: 3447.9s / 422.7s / 122.3s / 0.55s at 91M-tx Python scale);
//   * A-TxAllo per-update cost roughly flat as the chain grows.
#include <cstdio>

#include "common/bench_common.h"
#include "txallo/core/controller.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bench::Fixture fixture(scale, seed);
  bench::PrintRunBanner("Headline table: abstract/introduction numbers",
                        scale, fixture, seed);
  bench::SweepCache cache(&fixture, scale, seed,
                          !flags.GetBool("no-cache", false),
                          bench::ResolveCacheDir(flags));

  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 60));
  const double eta = flags.GetDouble("eta", 2.0);

  bench::SeriesTable table(
      "Cross-shard ratio and allocation runtime at k=" + std::to_string(k) +
          ", eta=" + bench::Fmt(eta, 0),
      {"method", "gamma", "paper gamma", "runtime (s)"});
  struct PaperRef {
    const char* spec;  // Allocator-registry name.
    const char* gamma;
  };
  const PaperRef refs[] = {
      {"txallo-global", "~0.12"},
      {"hash", "~0.98"},
      {"metis", "~0.28"},
      {"shard-scheduler", "(between Metis and Random)"},
  };
  for (const PaperRef& ref : refs) {
    bench::MethodResult result = cache.Get(ref.spec, k, eta);
    table.AddRow({bench::MethodLabel(ref.spec),
                  bench::Fmt(result.report.cross_shard_ratio),
                  ref.gamma,
                  bench::Fmt(result.allocation_seconds, 4)});
  }
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                 "table_headline.csv");

  // A-TxAllo update cost: absorb the fixture's ledger, allocate globally,
  // then time adaptive steps over freshly generated windows.
  std::printf("\nA-TxAllo per-update cost (paper: 0.55 s/hourly update vs "
              "122 s global, 422 s METIS)\n");
  workload::EthereumLikeConfig gen_config = fixture.config();
  workload::EthereumLikeGenerator generator(gen_config);
  alloc::AllocationParams params = fixture.ParamsFor(k, eta);
  core::TxAlloController controller(&generator.registry(), params);
  for (uint64_t b = 0; b < gen_config.num_blocks; ++b) {
    controller.ApplyBlock(generator.NextBlock());
  }
  auto global_info = controller.StepGlobal();
  if (!global_info.ok()) {
    std::fprintf(stderr, "StepGlobal failed: %s\n",
                 global_info.status().ToString().c_str());
    return 1;
  }
  double adaptive_total = 0.0;
  const int kWindows = 5;
  const int kBlocksPerWindow = 20;
  for (int w = 0; w < kWindows; ++w) {
    for (int b = 0; b < kBlocksPerWindow; ++b) {
      controller.ApplyBlock(generator.NextBlock());
    }
    auto info = controller.StepAdaptive();
    if (!info.ok()) return 1;
    adaptive_total += info->total_seconds;
  }
  const double adaptive_avg = adaptive_total / kWindows;
  std::printf("  G-TxAllo on full ledger : %.4f s\n",
              global_info->total_seconds);
  std::printf("  A-TxAllo per window     : %.4f s (%d blocks/window)\n",
              adaptive_avg, kBlocksPerWindow);
  if (adaptive_avg > 0.0) {
    std::printf("  speedup                 : %.0fx\n",
                global_info->total_seconds / adaptive_avg);
  }
  return 0;
}

// Open-loop latency/load curves on the live parallel engine: every method
// in --methods runs the same generated workload through the mempool
// front-end (engine::IngestMode::kOpenLoop) at each offered load in
// --loads, and reports end-to-end latency percentiles (commit tick − submit
// tick), admission drops and queue depths — the classic open-system
// latency-vs-throughput knee that closed-loop driving (one block per tick)
// can never show, because there arrivals automatically track service.
//
// The arrival schedule, fee ordering, admission decisions and latency
// histograms are all functions of the logical clock, so every number here
// is bit-identical across --threads and --producers counts; the committed
// BENCH_open_loop.json snapshot is diffed byte-for-byte in CI against a
// fresh run to pin that property.
//
// Service capacity: the engine executes ~--service-rate transactions per
// tick in aggregate (capacity_per_block = service-rate / k per shard), and
// the mempool dispatches at most --dispatch-per-tick (default: the service
// rate) each tick — so offered loads below the service rate measure base
// latency, loads above it measure queueing and, once --capacity is hit,
// admission shedding.
//
// Record/replay (engine/replay.h): --record=PATH saves the first
// (load, method) run's deterministic trace — including the open-loop meta —
// and --replay=PATH re-executes it (same workload flags; threads/producers
// free to differ) verifying bit-identity.
//
//   ./build/bench/open_loop_latency [--methods=a;b] [--loads=60,100,140]
//       [--scenario=SPEC] (workload/scenario_registry.h; --scenario=help)
//       [--offered-load=X | TXALLO_OFFERED_LOAD=X] [--k=8] [--eta=2]
//       [--blocks=64] [--txs-per-block=96] [--epoch-blocks=16]
//       [--service-rate=120] [--dispatch-per-tick=N] [--capacity=N]
//       [--pending-limit=N] [--rate-limit=N] [--ttl=N]
//       [--policy=reject|block] [--producers=N] [--no-cleaner]
//       [--json-out=PATH] [--record=PATH | --replay=PATH]
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "txallo/engine/pipeline.h"
#include "txallo/engine/replay.h"

namespace {

// Same strictness as ResolveOfferedLoad, applied to each --loads clause.
bool ParseLoad(const std::string& text, double* out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size() ||
      !std::isfinite(value) || !(value > 0.0)) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (bench::HandleAllocatorHelp(flags)) return 0;
  if (bench::HandleScenarioHelp(flags)) return 0;
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 8));
  const double eta = flags.GetDouble("eta", 2.0);
  const int blocks = static_cast<int>(flags.GetInt("blocks", 64));
  const uint64_t txs_per_block =
      static_cast<uint64_t>(flags.GetInt("txs-per-block", 96));
  const uint32_t epoch_blocks =
      static_cast<uint32_t>(flags.GetInt("epoch-blocks", 16));
  const double service_rate = flags.GetDouble("service-rate", 120.0);
  const uint32_t dispatch_per_tick = static_cast<uint32_t>(flags.GetInt(
      "dispatch-per-tick", static_cast<int64_t>(std::ceil(service_rate))));
  const uint32_t producers =
      static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt("producers", 0)));
  const std::string json_out = flags.GetString("json-out", "");

  mempool::MempoolConfig mempool_config;
  mempool_config.capacity =
      static_cast<size_t>(flags.GetInt("capacity", 1 << 16));
  mempool_config.account_pending_limit =
      static_cast<uint32_t>(flags.GetInt("pending-limit", 0));
  mempool_config.account_rate_limit =
      static_cast<uint32_t>(flags.GetInt("rate-limit", 0));
  mempool_config.ttl_ticks = static_cast<uint64_t>(flags.GetInt("ttl", 0));
  const std::string policy = flags.GetString("policy", "reject");
  if (policy == "block") {
    mempool_config.policy = mempool::AdmissionPolicy::kBlock;
  } else if (policy != "reject") {
    std::fprintf(stderr, "--policy=%s: expected reject or block\n",
                 policy.c_str());
    return 1;
  }

  // Offered loads: a single --offered-load / TXALLO_OFFERED_LOAD overrides
  // the --loads sweep (the CI smoke pins one point that way).
  Result<double> single = bench::ResolveOfferedLoad(flags, 0.0);
  if (!single.ok()) {
    std::fprintf(stderr, "%s\n", single.status().ToString().c_str());
    return 1;
  }
  std::vector<double> loads;
  if (*single > 0.0) {
    loads.push_back(*single);
  } else {
    for (const std::string& clause :
         bench::SplitList(flags.GetString("loads", "60,100,140"))) {
      double load = 0.0;
      if (!ParseLoad(clause, &load)) {
        std::fprintf(stderr,
                     "--loads: '%s' is not a positive transactions-per-tick "
                     "rate\n",
                     clause.c_str());
        return 1;
      }
      loads.push_back(load);
    }
  }

  const bench::TraceFlags trace = bench::ResolveTraceFlags(flags);
  if (!trace.record_path.empty() && !trace.replay_path.empty()) {
    std::fprintf(stderr, "--record and --replay are mutually exclusive\n");
    return 1;
  }

  std::vector<std::string> specs = bench::ResolveMethodSpecs(
      flags, {"txallo-hybrid:global-every=4", "metis", "hash"});
  if (!trace.record_path.empty() && (specs.size() > 1 || loads.size() > 1)) {
    // One trace file = one run; record the first (load, method) point.
    specs.resize(1);
    loads.resize(1);
    std::printf("--record: tracing the first point only (%s @ %g tx/tick)\n",
                specs[0].c_str(), loads[0]);
  }

  // One shared ledger: every (load, method) point offers identical traffic,
  // only the pacing differs. --scenario (or TXALLO_SCENARIO) swaps the
  // pattern; the default "ethereum" spec reproduces this bench's historical
  // inline workload bit-identically, keeping BENCH_open_loop.json stable.
  workload::ScenarioShape shape;
  shape.num_blocks = static_cast<uint64_t>(blocks);
  shape.txs_per_block = txs_per_block;
  shape.num_accounts = std::min<uint64_t>(scale.num_accounts, 16'000);
  shape.num_communities = static_cast<uint32_t>(
      std::max<uint64_t>(32, shape.num_accounts / 160));
  shape.seed = seed;
  const std::string scenario_spec =
      bench::ResolveScenarioSpec(flags, "ethereum");
  std::unique_ptr<workload::Scenario> scenario =
      bench::MakeScenarioOrDie(scenario_spec, shape);
  const chain::Ledger ledger = scenario->GenerateLedger(scenario->num_blocks());

  std::printf("==============================================================\n");
  std::printf("Open-loop latency vs offered load (k=%u, eta=%g, %llu txs,\n"
              "service ~%g tx/tick, dispatch cap %u/tick, epochs of %u "
              "ticks, producers=%u, policy=%s)\nscenario: %s\n",
              k, eta,
              static_cast<unsigned long long>(ledger.num_transactions()),
              service_rate, dispatch_per_tick, epoch_blocks, producers,
              policy.c_str(), scenario_spec.c_str());
  std::printf("==============================================================\n");

  bench::SeriesTable table(
      "Latency/load curve (one row per offered load x method)",
      {"allocator", "load", "ticks", "committed", "dropped", "expired",
       "peak-depth", "p50", "p99", "p99.9", "max", "mean"});

  std::string json_points;
  const auto add_point = [&](const std::string& label, double load,
                             const engine::PipelineResult& result) {
    const engine::EngineReport& report = result.report;
    const mempool::AdmissionStats& admission = result.admission;
    const common::Histogram& latency = result.e2e_latency_ticks;
    const uint64_t dropped =
        admission.dropped_capacity + admission.dropped_account_pending +
        admission.dropped_account_rate + admission.dropped_backpressure;
    table.AddRow({label, bench::Fmt(load, 1),
                  std::to_string(report.sim.blocks_elapsed),
                  std::to_string(report.sim.committed),
                  std::to_string(dropped), std::to_string(admission.expired),
                  std::to_string(admission.peak_depth),
                  std::to_string(latency.Percentile(50.0)),
                  std::to_string(latency.Percentile(99.0)),
                  std::to_string(latency.Percentile(99.9)),
                  std::to_string(latency.max()),
                  bench::Fmt(latency.Mean(), 2)});
    if (json_out.empty()) return;
    // Integer-only fields: the snapshot must diff byte-identically across
    // machines, thread counts and producer counts.
    std::string entry = "    {\n";
    entry += "      \"allocator\": \"" + label + "\",\n";
    entry += "      \"offered_load_x10\": " +
             std::to_string(static_cast<uint64_t>(load * 10.0 + 0.5)) + ",\n";
    entry += "      \"ticks\": " + std::to_string(report.sim.blocks_elapsed) +
             ",\n";
    entry += "      \"committed\": " + std::to_string(report.sim.committed) +
             ",\n";
    entry += "      \"aborted\": " + std::to_string(report.aborted) + ",\n";
    entry += "      \"submitted\": " + std::to_string(admission.submitted) +
             ",\n";
    entry += "      \"admitted\": " + std::to_string(admission.admitted) +
             ",\n";
    entry += "      \"dropped\": " + std::to_string(dropped) + ",\n";
    entry += "      \"deferred\": " + std::to_string(admission.deferred) +
             ",\n";
    entry += "      \"expired\": " + std::to_string(admission.expired) + ",\n";
    entry += "      \"peak_depth\": " + std::to_string(admission.peak_depth) +
             ",\n";
    entry += "      \"latency_count\": " + std::to_string(latency.count()) +
             ",\n";
    entry += "      \"latency_p50\": " +
             std::to_string(latency.Percentile(50.0)) + ",\n";
    entry += "      \"latency_p99\": " +
             std::to_string(latency.Percentile(99.0)) + ",\n";
    entry += "      \"latency_p999\": " +
             std::to_string(latency.Percentile(99.9)) + ",\n";
    entry += "      \"latency_max\": " + std::to_string(latency.max()) + "\n";
    entry += "    }";
    if (!json_points.empty()) json_points += ",\n";
    json_points += entry;
  };
  const auto write_json = [&]() {
    if (json_out.empty()) return;
    std::ofstream file(json_out, std::ios::trunc);
    file << "{\n  \"bench\": \"open_loop_latency\",\n";
    file << "  \"k\": " << k << ",\n";
    file << "  \"blocks\": " << blocks << ",\n";
    file << "  \"txs_per_block\": " << txs_per_block << ",\n";
    file << "  \"epoch_blocks\": " << epoch_blocks << ",\n";
    file << "  \"dispatch_per_tick\": " << dispatch_per_tick << ",\n";
    file << "  \"seed\": " << seed << ",\n";
    file << "  \"points\": [\n" << json_points << "\n  ]\n}\n";
    std::printf("wrote open-loop snapshot to %s\n", json_out.c_str());
  };

  const auto make_engine_config = [&]() {
    engine::EngineConfig engine_config = bench::MakeEngineConfig(
        scale, k, eta, service_rate / k);
    engine_config.hash_route_unassigned = true;
    return engine_config;
  };
  const auto make_pipeline = [&](double load) {
    engine::PipelineConfig pipeline;
    pipeline.blocks_per_epoch = epoch_blocks;
    pipeline.ingest_producers = producers;
    pipeline.workload_spec = scenario_spec;
    pipeline.ingest_mode = engine::IngestMode::kOpenLoop;
    pipeline.open_loop.offered_load = load;
    pipeline.open_loop.dispatch_per_tick = dispatch_per_tick;
    pipeline.open_loop.mempool = mempool_config;
    pipeline.open_loop.cleaner = !flags.GetBool("no-cleaner", false);
    return pipeline;
  };

  if (!trace.replay_path.empty()) {
    auto loaded = engine::LoadReplayLog(trace.replay_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "--replay: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    engine::ParallelEngine engine(make_engine_config(), nullptr);
    // The trace's meta supplies the offered load and mempool parameters;
    // the pipeline config contributes execution shape only. The recorded
    // workload_spec is only enforced against an explicit --scenario (the
    // ledger fingerprint is always checked regardless).
    engine::PipelineConfig replay_pipeline = make_pipeline(1.0);
    if (!flags.Has("scenario")) replay_pipeline.workload_spec.clear();
    auto result = engine::ReplayRecordedStream(ledger, *loaded, &engine,
                                               replay_pipeline);
    if (!result.ok()) {
      std::fprintf(stderr, "--replay: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    add_point("replay", loaded->meta.offered_load, *result);
    write_json();
    table.Print();
    table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                   "open_loop_latency.csv");
    std::printf("\nreplay of '%s': bit-identical (%zu commits, %zu steps, "
                "offered load %g tx/tick)\n",
                trace.replay_path.c_str(), loaded->commits.size(),
                loaded->steps.size(), loaded->meta.offered_load);
    return 0;
  }

  for (const std::string& spec : specs) {
    for (double load : loads) {
      allocator::AllocatorOptions options;
      options.params = alloc::AllocationParams::ForExperiment(
          ledger.num_transactions(), k, eta);
      options.registry = &scenario->registry();
      options.seed = seed;
      auto made = allocator::MakeAllocatorFromSpec(spec, options);
      if (!made.ok()) {
        std::fprintf(stderr, "allocator '%s': %s\n", spec.c_str(),
                     made.status().ToString().c_str());
        return 1;
      }
      allocator::OnlineAllocator* online = (*made)->AsOnline();
      if (online == nullptr) {
        std::fprintf(stderr, "allocator '%s' is one-shot only; skipping\n",
                     spec.c_str());
        break;
      }
      engine::ParallelEngine engine(make_engine_config(), nullptr);
      engine::ReplayLog log;
      engine::PipelineConfig pipeline = make_pipeline(load);
      if (!trace.record_path.empty()) pipeline.record = &log;
      auto result =
          engine::RunReallocatedStream(ledger, online, &engine, pipeline);
      if (!result.ok()) {
        std::fprintf(stderr, "open loop under '%s' @ %g failed: %s\n",
                     spec.c_str(), load, result.status().ToString().c_str());
        return 1;
      }
      if (!trace.record_path.empty()) {
        Status saved = engine::SaveReplayLog(log, trace.record_path);
        if (!saved.ok()) {
          std::fprintf(stderr, "--record: %s\n", saved.ToString().c_str());
          return 1;
        }
        std::printf("recorded open-loop trace of '%s' @ %g tx/tick to %s "
                    "(%zu commits, %zu steps)\n",
                    spec.c_str(), load, trace.record_path.c_str(),
                    log.commits.size(), log.steps.size());
      }
      add_point(spec, load, *result);
    }
  }

  write_json();
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                 "open_loop_latency.csv");
  std::printf(
      "\nLatency is end-to-end in ticks (commit tick − submit tick), exact "
      "nearest-rank\npercentiles over every committed transaction. Loads "
      "above the service rate pile\ndelay into the mempool until capacity "
      "or per-account limits shed it.\n");
  return 0;
}

// Engine scaling: committed transactions per second vs. worker thread
// count, at k in {8, 16, 32, 64} shards.
//
// The serial ShardSimulator is the baseline the parallel engine must beat:
// logical results are identical (parity tests), so the win is wall-clock.
// Synthetic per-unit execution cost (--spin, LCG iterations per work unit)
// stands in for real transaction execution; with --spin=0 the bench mostly
// measures barrier overhead, which is also worth seeing.
//
//   ./build/bench/engine_scaling [--threads=N] [--spin=2000] [--txs=...]
//
// --threads bounds the sweep: powers of two up to N, default 8
// (TXALLO_THREADS works too, via the shared scale resolver).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/bench_common.h"
#include "txallo/baselines/hash_allocator.h"
#include "txallo/common/stopwatch.h"
#include "txallo/sim/work_model.h"

namespace txallo::bench {
namespace {

struct ScalingPoint {
  double seconds = 0.0;
  uint64_t committed = 0;
  double stall_seconds = 0.0;
};

ScalingPoint RunOnce(const chain::Ledger& ledger,
                     const alloc::Allocation& allocation,
                     engine::EngineConfig config) {
  engine::ParallelEngine engine(
      config, std::make_shared<alloc::Allocation>(allocation));
  Stopwatch watch;
  for (const chain::Block& block : ledger.blocks()) {
    if (!engine.SubmitBlock(block.transactions()).ok()) std::abort();
    engine.Tick();
  }
  engine::EngineReport report = engine.DrainAndReport();
  ScalingPoint point;
  point.seconds = watch.ElapsedSeconds();
  point.committed = report.sim.committed;
  point.stall_seconds = report.worker_stall_seconds;
  return point;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  BenchScale scale = ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double eta = flags.GetDouble("eta", 2.0);
  const uint64_t spin =
      static_cast<uint64_t>(flags.GetInt("spin", 2'000));
  const std::string csv_dir = flags.GetString("csv-dir", "bench_out");

  // A slice of the scale's transaction budget: the sweep runs
  // |ks| x |threads| times over the same ledger.
  workload::EthereumLikeConfig gen_config;
  gen_config.txs_per_block = 500;
  gen_config.num_blocks = std::max<uint64_t>(
      20, scale.num_transactions / (gen_config.txs_per_block * 8));
  gen_config.num_accounts = scale.num_accounts;
  gen_config.num_communities = static_cast<uint32_t>(
      std::max<uint64_t>(64, scale.num_accounts / 160));
  gen_config.seed = seed;
  workload::EthereumLikeGenerator generator(gen_config);
  chain::Ledger ledger = generator.GenerateLedger(gen_config.num_blocks);

  // Powers of two up to --threads (default 8), always ending exactly at
  // the cap so `--threads=2` really bounds parallelism on a shared host.
  const int max_threads = scale.num_threads > 0 ? scale.num_threads : 8;
  std::vector<int> thread_sweep;
  for (int t = 1; t <= max_threads; t *= 2) thread_sweep.push_back(t);
  if (thread_sweep.back() != max_threads) thread_sweep.push_back(max_threads);

  std::printf(
      "==============================================================\n"
      "engine_scaling — committed tx/sec vs worker threads\n"
      "workload: %" PRIu64 " transactions, %zu accounts, seed %" PRIu64
      ", spin=%" PRIu64 " iters/work-unit\n"
      "hash allocation (cross-shard heavy): every part pays eta=%g, every\n"
      "cross-shard commit pays the 2PC round\n"
      "host: %u hardware thread(s) — speedup saturates there; on a 1-core\n"
      "host this bench only measures engine overhead (speedup ~= 1.0)\n"
      "==============================================================\n",
      ledger.num_transactions(), generator.registry().size(), seed, spin,
      eta, std::thread::hardware_concurrency());

  for (uint32_t k : {8u, 16u, 32u, 64u}) {
    alloc::Allocation allocation =
        baselines::AllocateByHash(generator.registry(), k);
    // Provision each shard with ~1.3x the average per-block work so queues
    // stay shallow but shards are busy every tick.
    double total_work = 0.0;
    std::vector<alloc::ShardId> shards;
    sim::WorkModel model{eta, 0.0, 1};
    ledger.ForEachTransaction([&](const chain::Transaction& tx) {
      if (!sim::RouteTransaction(tx, allocation,
                                 sim::UnassignedPolicy::kReject, &shards)
               .ok()) {
        std::abort();
      }
      const bool cross = shards.size() > 1;
      total_work +=
          model.PartWork(cross) * static_cast<double>(shards.size());
    });
    const double capacity =
        1.3 * total_work /
        (static_cast<double>(ledger.num_blocks()) * static_cast<double>(k));

    SeriesTable table(
        "k = " + std::to_string(k) + " shards (capacity " + Fmt(capacity, 1) +
            " work-units/block/shard)",
        {"threads", "seconds", "committed/s", "speedup", "stall-s"});
    double baseline_seconds = 0.0;
    for (int threads : thread_sweep) {
      engine::EngineConfig config =
          MakeEngineConfig(scale, k, eta, capacity, threads);
      config.spin_iterations_per_unit = spin;
      ScalingPoint point = RunOnce(ledger, allocation, config);
      if (threads == 1) baseline_seconds = point.seconds;
      table.AddRow({std::to_string(threads), Fmt(point.seconds),
                    Fmt(static_cast<double>(point.committed) / point.seconds,
                        0),
                    Fmt(baseline_seconds / point.seconds, 2),
                    Fmt(point.stall_seconds, 2)});
    }
    table.Print();
    table.WriteCsv(csv_dir, "engine_scaling_k" + std::to_string(k) + ".csv");
  }
  std::printf(
      "\nExpected: committed/s grows from 1 -> 8 threads (speedup > 1) at\n"
      "k >= 32; past the shard count extra threads are clamped. CSV series\n"
      "written to %s/engine_scaling_k*.csv\n",
      csv_dir.c_str());
  std::printf("peak rss: %.1f MiB (%zu accounts; TXALLO_ACCOUNTS to sweep)\n",
              PeakRssMegabytes(), generator.registry().size());
  return 0;
}

}  // namespace
}  // namespace txallo::bench

int main(int argc, char** argv) { return txallo::bench::Main(argc, argv); }

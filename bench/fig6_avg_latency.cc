// Figure 6 (paper §VI-B5): average transaction confirmation latency ζ in
// blocks vs number of shards k, one panel per η.
#include "common/bench_common.h"

namespace {
double ExtractAvgLatency(const txallo::bench::MethodResult& result) {
  return result.report.avg_latency_blocks;
}
}  // namespace

int main(int argc, char** argv) {
  return txallo::bench::RunStandardSweepFigure(
      argc, argv,
      "Figure 6: Average latency comparison (blocks vs k)",
      "Average latency (blocks)",
      &ExtractAvgLatency, "fig6_avg_latency",
      "Paper shape: Our Method lowest for every eta and k (mostly < 2 "
      "blocks); the gap to the\nbaselines widens as eta grows.");
}

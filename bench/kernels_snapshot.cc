// Deterministic hot-path counters for the delta-log graph and the G-TxAllo
// sweep, dumped as integer-only JSON (--json-out=PATH). Every value is a
// count or a byte size — no timings, no floats — so the committed
// BENCH_kernels.json snapshot byte-diffs cleanly in CI on any machine.
//
// Scenario (fixed seed, fixed scale — TXALLO_SCALE intentionally ignored):
//  1. Build the transaction graph from a synthetic ledger and freeze it.
//  2. Overlay one more block of traffic (the steady-state delta between
//     per-block adaptive rebalances) and consolidate.
//  3. Record what a BeginRebalance() snapshot copies (SnapshotBytes) vs
//     what the legacy full-graph copy duplicated (FullCopyBytes) — the
//     bytes_ratio is the ">= 10x smaller snapshot" acceptance check.
//  4. Run one global G-TxAllo allocation and record its integer outcomes
//     (Louvain communities, sweep count) to pin the batched gain kernel's
//     behavior.
#include <cstdio>
#include <fstream>
#include <string>

#include "txallo/chain/ledger.h"
#include "txallo/common/flags.h"
#include "txallo/core/global.h"
#include "txallo/graph/builder.h"
#include "txallo/graph/graph.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::string json_out = flags.GetString("json-out", "");

  workload::EthereumLikeConfig config;
  config.num_blocks = 248;
  config.txs_per_block = 200;
  config.num_accounts = 100'000;
  config.num_communities = 128;
  config.seed = 7;
  workload::EthereumLikeGenerator generator(config);
  chain::Ledger ledger = generator.GenerateLedger(config.num_blocks);

  // Freeze all but the last block into the CSR core; the final block is
  // the consolidated delta overlay a rebalance snapshot has to copy —
  // the steady-state shape when the adaptive controller rebalances once
  // per block.
  graph::TransactionGraph graph;
  graph::GraphBuilder builder(&graph);
  const size_t frozen_blocks = ledger.num_blocks() - 1;
  for (size_t b = 0; b < frozen_blocks; ++b) {
    builder.AddBlock(ledger.blocks()[b]);
  }
  builder.Finish();
  graph.Refreeze();
  for (size_t b = frozen_blocks; b < ledger.num_blocks(); ++b) {
    builder.AddBlock(ledger.blocks()[b]);
  }
  builder.Finish();
  graph.EnsureNodeCount(generator.registry().size());

  const size_t snapshot_bytes = graph.SnapshotBytes();
  const size_t full_copy_bytes = graph.FullCopyBytes();

  // One global allocation over the frozen+overlay graph: integer outcomes
  // only (the throughput doubles stay out of the committed snapshot).
  alloc::AllocationParams params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), 20, 4.0);
  std::vector<graph::NodeId> order = generator.registry().IdsInHashOrder();
  core::GlobalRunInfo info;
  Result<alloc::Allocation> allocation =
      core::RunGlobalTxAllo(graph, order, params, core::GlobalOptions{}, &info);
  if (!allocation.ok()) {
    std::fprintf(stderr, "global allocation failed: %s\n",
                 allocation.status().ToString().c_str());
    return 1;
  }

  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"bench\": \"kernels_snapshot\",\n"
      "  \"seed\": %llu,\n"
      "  \"nodes\": %zu,\n"
      "  \"edges\": %zu,\n"
      "  \"frozen_edges\": %zu,\n"
      "  \"overlay_rows\": %zu,\n"
      "  \"snapshot_bytes\": %zu,\n"
      "  \"full_copy_bytes\": %zu,\n"
      "  \"bytes_ratio\": %zu,\n"
      "  \"louvain_communities\": %u,\n"
      "  \"sweeps\": %d\n"
      "}\n",
      static_cast<unsigned long long>(config.seed), graph.num_nodes(),
      graph.num_edges(),
      graph.frozen_edges(), graph.overlay_rows(), snapshot_bytes,
      full_copy_bytes,
      snapshot_bytes > 0 ? full_copy_bytes / snapshot_bytes : 0,
      info.louvain_communities, info.sweeps);
  std::fputs(buffer, stdout);
  if (!json_out.empty()) {
    std::ofstream file(json_out, std::ios::trunc);
    file << buffer;
    std::printf("wrote kernel counters to %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace txallo::bench

int main(int argc, char** argv) { return txallo::bench::Main(argc, argv); }

#include "common/bench_common.h"

#include <sys/stat.h>
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "txallo/common/csv.h"
#include "txallo/common/stopwatch.h"
#include "txallo/graph/builder.h"

namespace txallo::bench {

std::vector<std::string> DefaultMethodSpecs() {
  return {"txallo-global", "hash", "metis", "shard-scheduler"};
}

std::vector<std::string> SplitList(const std::string& list, char separator) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= list.size()) {
    size_t end = list.find(separator, start);
    if (end == std::string::npos) end = list.size();
    if (end > start) items.push_back(list.substr(start, end - start));
    start = end + 1;
  }
  return items;
}

std::vector<std::string> ResolveMethodSpecs(
    const Flags& flags, const std::vector<std::string>& fallback) {
  // Structural backstop so every spec-consuming bench honors
  // --allocator=help / --methods=help even when its main() forgot the
  // early HandleAllocatorHelp() hook (which remains preferable — it runs
  // before any fixture is built).
  if (HandleAllocatorHelp(flags)) std::exit(0);
  if (flags.Has("methods")) {
    // ';' is the separator when present, so specs whose own option lists
    // contain commas ("broker:inner=metis,brokers=8") remain expressible.
    const std::string list = flags.GetString("methods", "");
    std::vector<std::string> specs = SplitList(
        list, list.find(';') != std::string::npos ? ';' : ',');
    if (!specs.empty()) return specs;
  }
  const std::string single = ResolveAllocatorSpec(flags, "");
  if (!single.empty()) return {single};
  if (!fallback.empty()) return fallback;
  return DefaultMethodSpecs();
}

bool HandleAllocatorHelp(const Flags& flags) {
  if (ResolveAllocatorSpec(flags, "") != "help" &&
      flags.GetString("methods", "") != "help") {
    return false;
  }
  std::printf("%s", allocator::AllocatorUsageText().c_str());
  return true;
}

bool HandleScenarioHelp(const Flags& flags) {
  if (ResolveScenarioSpec(flags, "") != "help" &&
      flags.GetString("scenarios", "") != "help") {
    return false;
  }
  std::printf("%s", workload::ScenarioUsageText().c_str());
  return true;
}

std::unique_ptr<workload::Scenario> MakeScenarioOrDie(
    const std::string& spec, const workload::ScenarioShape& shape) {
  auto made = workload::MakeScenarioFromSpec(spec, shape);
  if (!made.ok()) {
    std::fprintf(stderr, "scenario '%s': %s\n", spec.c_str(),
                 made.status().ToString().c_str());
    std::fprintf(stderr, "(--scenario=help lists the registry)\n");
    std::abort();
  }
  return std::move(*made);
}

std::string MethodLabel(const std::string& spec) {
  if (spec == "txallo-global" || spec == "txallo-hybrid") return "Our Method";
  if (spec == "hash") return "Random";
  if (spec == "metis") return "Metis";
  if (spec == "shard-scheduler") return "Shard Scheduler";
  return spec;
}

Fixture::Fixture(const BenchScale& scale, uint64_t seed) : seed_(seed) {
  config_.num_accounts = scale.num_accounts;
  // Block geometry: keep ~200 tx per block, enough blocks for timelines.
  config_.txs_per_block = 200;
  config_.num_blocks =
      (scale.num_transactions + config_.txs_per_block - 1) /
      config_.txs_per_block;
  config_.num_communities =
      static_cast<uint32_t>(std::max<uint64_t>(64, scale.num_accounts / 160));
  config_.seed = seed;
  generator_ =
      std::make_unique<workload::EthereumLikeGenerator>(config_);
  registry_ = &generator_->registry();
  ledger_ = generator_->GenerateLedger(config_.num_blocks);
  graph_ = graph::BuildTransactionGraph(ledger_);
  graph_.EnsureNodeCount(registry_->size());
  graph_.Consolidate();
  node_order_ = registry_->IdsInHashOrder();
}

std::unique_ptr<allocator::Allocator> Fixture::MakeAllocator(
    const std::string& spec, uint32_t k, double eta) const {
  allocator::AllocatorOptions options;
  options.params = ParamsFor(k, eta);
  options.registry = registry_;
  options.seed = seed_;
  auto made = allocator::MakeAllocatorFromSpec(spec, std::move(options));
  if (!made.ok()) {
    std::fprintf(stderr, "allocator spec '%s': %s\n", spec.c_str(),
                 made.status().ToString().c_str());
    std::abort();
  }
  return std::move(made.value());
}

allocator::AllocationContext Fixture::ContextFor(uint32_t k,
                                                 double eta) const {
  allocator::AllocationContext context;
  context.graph = &graph_;
  context.ledger = &ledger_;
  context.registry = registry_;
  context.node_order = &node_order_;
  context.params = ParamsFor(k, eta);
  context.seed = seed_;
  return context;
}

MethodResult Fixture::RunMethod(const std::string& spec, uint32_t k,
                                double eta) const {
  std::unique_ptr<allocator::Allocator> method = MakeAllocator(spec, k, eta);
  const allocator::AllocationContext context = ContextFor(k, eta);
  MethodResult out;
  Stopwatch watch;
  auto allocation = method->Allocate(context);
  if (!allocation.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", spec.c_str(),
                 allocation.status().ToString().c_str());
    std::abort();
  }
  out.allocation_seconds = watch.ElapsedSeconds();
  auto report = method->Evaluate(ledger_, *allocation, context.params);
  if (!report.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  out.report = std::move(report.value());
  return out;
}

SweepCache::SweepCache(const Fixture* fixture, const BenchScale& scale,
                       uint64_t seed, bool enabled, std::string cache_dir)
    : fixture_(fixture), cache_dir_(std::move(cache_dir)), enabled_(enabled) {
  char name[256];
  std::snprintf(name, sizeof(name),
                "sweep_%" PRIu64 "_%" PRIu64 "_%" PRIu64 ".csv",
                scale.num_transactions, scale.num_accounts, seed);
  path_ = cache_dir_ + "/" + name;
  if (enabled_) Load();
}

void SweepCache::Load() {
  auto rows = ReadCsvFile(path_);
  if (!rows.ok()) return;  // Cold cache.
  for (const auto& row : rows.value()) {
    if (row.size() != 11) continue;
    Key key{row[0], static_cast<uint32_t>(std::atoi(row[1].c_str())),
            std::atof(row[2].c_str())};
    Row value{std::atof(row[3].c_str()), std::atof(row[4].c_str()),
              std::atof(row[5].c_str()), std::atof(row[6].c_str()),
              std::atof(row[7].c_str()), std::atof(row[8].c_str()),
              std::atof(row[9].c_str()),
              static_cast<uint64_t>(std::atoll(row[10].c_str()))};
    rows_[key] = value;
  }
}

MethodResult SweepCache::Get(const std::string& spec, uint32_t k,
                             double eta) {
  Key key{spec, k, eta};
  auto it = rows_.find(key);
  if (enabled_ && it != rows_.end()) {
    const Row& row = it->second;
    MethodResult out;
    out.report.num_shards = k;
    out.report.total_transactions = fixture_->num_transactions();
    out.report.cross_shard_transactions = row.cross_txs;
    out.report.cross_shard_ratio = row.gamma;
    out.report.normalized_workload_stddev = row.rho_norm;
    out.report.normalized_throughput = row.throughput_norm;
    out.report.avg_latency_blocks = row.avg_latency;
    out.report.worst_latency_blocks = row.worst_latency;
    out.report.mean_shards_per_tx = row.mean_mu;
    out.allocation_seconds = row.seconds;
    return out;
  }
  MethodResult result = fixture_->RunMethod(spec, k, eta);
  rows_[key] = Row{result.report.cross_shard_ratio,
                   result.report.normalized_workload_stddev,
                   result.report.normalized_throughput,
                   result.report.avg_latency_blocks,
                   result.report.worst_latency_blocks,
                   result.allocation_seconds,
                   result.report.mean_shards_per_tx,
                   result.report.cross_shard_transactions};
  dirty_ = true;
  return result;
}

SweepCache::~SweepCache() {
  if (!enabled_ || !dirty_) return;
  EnsureDirs(cache_dir_);
  CsvWriter writer(path_);
  if (!writer.ok()) return;
  for (const auto& [key, row] : rows_) {
    (void)writer.WriteRow({key.spec,
                           std::to_string(key.k), Fmt(key.eta, 6),
                           Fmt(row.gamma, 9), Fmt(row.rho_norm, 9),
                           Fmt(row.throughput_norm, 9),
                           Fmt(row.avg_latency, 9), Fmt(row.worst_latency, 9),
                           Fmt(row.seconds, 9), Fmt(row.mean_mu, 9),
                           std::to_string(row.cross_txs)});
  }
  (void)writer.Close();
}

std::string ResolveCacheDir(const Flags& flags) {
  return flags.GetString("cache-dir",
                         flags.GetString("csv-dir", "bench_out") + "/cache");
}

TraceFlags ResolveTraceFlags(const Flags& flags) {
  TraceFlags trace;
  trace.record_path = flags.GetString("record", "");
  trace.replay_path = flags.GetString("replay", "");
  return trace;
}

Result<double> ResolveOfferedLoad(const Flags& flags, double fallback) {
  std::string source = "--offered-load";
  std::string text = flags.GetString("offered-load", "");
  if (text.empty()) {
    source = "TXALLO_OFFERED_LOAD";
    const char* env = std::getenv("TXALLO_OFFERED_LOAD");
    if (env != nullptr) text = env;
  }
  if (text.empty()) return fallback;
  // Strict parse: the whole token must be one finite positive number —
  // "8x", "", or "nan" silently becoming a default would make a sweep lie.
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size() ||
      !std::isfinite(value) || !(value > 0.0)) {
    return Status::InvalidArgument(
        source + ": '" + text +
        "' is not a positive transactions-per-tick rate");
  }
  return value;
}

void EnsureDirs(const std::string& path) {
  std::string prefix;
  size_t start = 0;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    prefix = path.substr(0, end);
    if (!prefix.empty() && prefix != ".") ::mkdir(prefix.c_str(), 0755);
    start = end + 1;
  }
}

SweepGrid ResolveGrid(const Flags& flags, const BenchScale& scale) {
  SweepGrid grid;
  std::string eta_list = flags.GetString("eta-list", "2,4,6,8,10");
  size_t start = 0;
  while (start <= eta_list.size()) {
    size_t end = eta_list.find(',', start);
    if (end == std::string::npos) end = eta_list.size();
    if (end > start) {
      grid.etas.push_back(std::atof(eta_list.substr(start, end - start).c_str()));
    }
    start = end + 1;
  }
  grid.shard_counts.push_back(2);
  for (int k = scale.shard_step; k <= scale.max_shards;
       k += scale.shard_step) {
    if (k != 2) grid.shard_counts.push_back(static_cast<uint32_t>(k));
  }
  return grid;
}

SeriesTable::SeriesTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void SeriesTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void SeriesTable::Print() const {
  std::printf("\n%s\n", title_.c_str());
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void SeriesTable::WriteCsv(const std::string& csv_dir,
                           const std::string& filename) const {
  EnsureDirs(csv_dir);
  CsvWriter writer(csv_dir + "/" + filename);
  if (!writer.ok()) return;
  (void)writer.WriteRow(columns_);
  for (const auto& row : rows_) (void)writer.WriteRow(row);
  (void)writer.Close();
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

engine::EngineConfig MakeEngineConfig(const BenchScale& scale, uint32_t k,
                                      double eta, double capacity_per_block,
                                      int num_threads) {
  engine::EngineConfig config;
  config.num_shards = k;
  config.work.eta = eta;
  config.work.capacity_per_block = capacity_per_block;
  const int threads = num_threads >= 0 ? num_threads : scale.num_threads;
  config.num_threads = static_cast<uint32_t>(std::max(0, threads));
  return config;
}

TimelineConfig ResolveTimelineConfig(const Flags& flags,
                                     const BenchScale& scale, uint64_t seed) {
  TimelineConfig config;
  config.num_shards = static_cast<uint32_t>(flags.GetInt("k", 20));
  config.eta = flags.GetDouble("eta", 2.0);
  config.steps = scale.timeline_steps;
  config.blocks_per_step = scale.blocks_per_step;
  config.prefix_multiple =
      static_cast<int>(flags.GetInt("prefix-multiple", 3));
  config.seed = seed;
  config.num_accounts = scale.num_accounts;
  // Size blocks so the whole timeline stays within the scale's tx budget.
  const uint64_t total_blocks =
      static_cast<uint64_t>(config.steps) * config.blocks_per_step *
      (1 + config.prefix_multiple);
  config.txs_per_block =
      std::max<uint64_t>(20, scale.num_transactions / total_blocks);
  return config;
}

TimelineResult RunTimeline(const TimelineConfig& config,
                           const std::string& spec) {
  workload::EthereumLikeConfig gen_config;
  gen_config.num_accounts = config.num_accounts;
  gen_config.txs_per_block = config.txs_per_block;
  gen_config.num_blocks = static_cast<uint64_t>(config.steps) *
                          config.blocks_per_step *
                          (1 + config.prefix_multiple);
  gen_config.num_communities = static_cast<uint32_t>(
      std::max<uint64_t>(32, config.num_accounts / 160));
  gen_config.seed = config.seed;
  workload::EthereumLikeGenerator generator(gen_config);

  // Any registered online strategy runs the timeline; the paper's schedule
  // pair is "txallo-global" vs "txallo-hybrid:global-every=G".
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      1, config.num_shards, config.eta);
  options.registry = &generator.registry();
  options.seed = config.seed;
  auto made = allocator::MakeAllocatorFromSpec(spec, std::move(options));
  if (!made.ok()) {
    std::fprintf(stderr, "timeline allocator spec '%s': %s\n", spec.c_str(),
                 made.status().ToString().c_str());
    std::abort();
  }
  allocator::OnlineAllocator* online = (*made)->AsOnline();
  if (online == nullptr) {
    std::fprintf(stderr, "timeline allocator '%s' is one-shot only; pick an "
                 "online strategy\n", spec.c_str());
    std::abort();
  }

  // Prefix: absorb and bootstrap once (the paper's setup allocates the
  // first 90% of blocks globally; a txallo-* bootstrap Rebalance is always
  // G-TxAllo).
  const int prefix_blocks =
      config.steps * config.blocks_per_step * config.prefix_multiple;
  for (int b = 0; b < prefix_blocks; ++b) {
    online->ApplyBlock(generator.NextBlock());
  }
  {
    auto bootstrap = online->Rebalance();
    if (!bootstrap.ok()) {
      std::fprintf(stderr, "prefix bootstrap Rebalance failed: %s\n",
                   bootstrap.status().ToString().c_str());
      std::abort();
    }
  }

  TimelineResult result;
  for (int step = 0; step < config.steps; ++step) {
    // One window of new blocks.
    std::vector<chain::Block> window;
    window.reserve(config.blocks_per_step);
    for (int b = 0; b < config.blocks_per_step; ++b) {
      window.push_back(generator.NextBlock());
      online->ApplyBlock(window.back());
    }
    // Scheduled update (the strategy's own τ2 policy decides whether this
    // is a cheap adaptive step or a full refresh).
    Stopwatch watch;
    auto rebalanced = online->Rebalance();
    if (!rebalanced.ok()) {
      std::fprintf(stderr, "step %d Rebalance failed: %s\n", step,
                   rebalanced.status().ToString().c_str());
      std::abort();
    }
    result.seconds_per_step.push_back(watch.ElapsedSeconds());

    // Evaluate this window's transactions under the updated mapping, with
    // the strategy's own execution semantics (broker overlays price
    // brokered transactions honestly).
    uint64_t window_txs = 0;
    for (const chain::Block& blk : window) window_txs += blk.size();
    alloc::AllocationParams window_params =
        alloc::AllocationParams::ForExperiment(window_txs, config.num_shards,
                                               config.eta);
    std::vector<chain::Transaction> txs;
    txs.reserve(window_txs);
    for (const chain::Block& blk : window) {
      txs.insert(txs.end(), blk.transactions().begin(),
                 blk.transactions().end());
    }
    auto report = (*made)->Evaluate(txs, *rebalanced, window_params);
    if (!report.ok()) {
      std::fprintf(stderr, "window evaluation failed: %s\n",
                   report.status().ToString().c_str());
      std::abort();
    }
    result.throughput_per_step.push_back(report->normalized_throughput);
  }
  double total = 0.0;
  for (double t : result.throughput_per_step) total += t;
  result.average_throughput =
      result.throughput_per_step.empty()
          ? 0.0
          : total / static_cast<double>(result.throughput_per_step.size());
  return result;
}

int RunStandardSweepFigure(int argc, char** argv, const char* figure_title,
                           const char* metric_name,
                           double (*extract)(const MethodResult&),
                           const char* csv_prefix, const char* paper_note) {
  Flags flags = Flags::Parse(argc, argv);
  if (HandleAllocatorHelp(flags)) return 0;
  BenchScale scale = ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Fixture fixture(scale, seed);
  PrintRunBanner(figure_title, scale, fixture, seed);
  std::printf("%s\n", paper_note);
  SweepCache cache(&fixture, scale, seed, !flags.GetBool("no-cache", false),
                   ResolveCacheDir(flags));
  SweepGrid grid = ResolveGrid(flags, scale);
  const std::string csv_dir = flags.GetString("csv-dir", "bench_out");
  const std::vector<std::string> methods = ResolveMethodSpecs(flags);

  for (double eta : grid.etas) {
    char title[160];
    std::snprintf(title, sizeof(title), "%s — eta = %g", metric_name, eta);
    std::vector<std::string> columns{"k"};
    for (const std::string& m : methods) columns.push_back(MethodLabel(m));
    SeriesTable table(title, std::move(columns));
    for (uint32_t k : grid.shard_counts) {
      std::vector<std::string> row{std::to_string(k)};
      for (const std::string& m : methods) {
        row.push_back(Fmt(extract(cache.Get(m, k, eta))));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    char filename[160];
    std::snprintf(filename, sizeof(filename), "%s_eta%g.csv", csv_prefix,
                  eta);
    table.WriteCsv(csv_dir, filename);
  }
  std::printf("\nCSV series written to %s/%s_eta*.csv\n", csv_dir.c_str(),
              csv_prefix);
  return 0;
}

double PeakRssMegabytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // ru_maxrss in KiB.
#endif
#else
  return 0.0;
#endif
}

void PrintRunBanner(const char* figure, const BenchScale& scale,
                    const Fixture& fixture, uint64_t seed) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf(
      "workload: %" PRIu64 " transactions, %zu accounts, seed %" PRIu64
      " (synthetic Ethereum-like; TXALLO_SCALE / TXALLO_ACCOUNTS to "
      "rescale)\n",
      fixture.num_transactions(), fixture.registry().size(), seed);
  std::printf("k sweep up to %d, step %d\n", scale.max_shards,
              scale.shard_step);
  std::printf("peak rss: %.1f MiB after fixture construction\n",
              PeakRssMegabytes());
  std::printf("==============================================================\n");
}

}  // namespace txallo::bench

// Shared machinery for the figure-reproduction benchmarks: workload fixture
// construction, allocation-method dispatch through the allocator registry
// (allocator/registry.h), a disk cache so the per-figure binaries share
// sweep results, and aligned table printing.
//
// Every binary honours:
//   TXALLO_SCALE=small|medium|large   (or --scale=...)
//   --txs/--accounts/--seed/--max-shards/--shard-step/--eta-list
//   --methods=a,b,c     allocator specs the sweep compares (default: the
//                       paper's four)
//   --allocator=SPEC    single-method override (also TXALLO_ALLOCATOR)
//   --no-cache          recompute everything
//   --csv-dir=DIR       where to drop machine-readable series (default
//                       ./bench_out)
//   --cache-dir=DIR     where the sweep cache lives (default
//                       <csv-dir>/cache)
//   --record=PATH       engine benches: record the run's deterministic
//                       trace (engine/replay.h) to PATH
//   --replay=PATH       engine benches: re-execute the trace at PATH and
//                       verify bit-identity instead of running live
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "txallo/alloc/metrics.h"
#include "txallo/alloc/params.h"
#include "txallo/allocator/registry.h"
#include "txallo/chain/account.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/flags.h"
#include "txallo/engine/engine.h"
#include "txallo/graph/graph.h"
#include "txallo/workload/ethereum_like.h"
#include "txallo/workload/scenario_registry.h"

namespace txallo::bench {

// Re-export the flag/scale helpers so bench binaries can use one namespace.
using txallo::BenchScale;
using txallo::Flags;
using txallo::ResolveAllocatorSpec;
using txallo::ResolveBenchScale;
using txallo::ResolveScenarioSpec;

/// The paper's four-method comparison (§VI), as allocator-registry specs.
std::vector<std::string> DefaultMethodSpecs();

/// Splits `list` on `separator`, dropping empty clauses.
std::vector<std::string> SplitList(const std::string& list,
                                   char separator = ',');

/// Method list of the sweep figures: --methods=a,b,c (allocator specs,
/// ';'-separated when any spec's option list itself contains commas) beats
/// a single-method --allocator/TXALLO_ALLOCATOR beats `fallback` (the
/// paper's four when omitted).
std::vector<std::string> ResolveMethodSpecs(
    const Flags& flags, const std::vector<std::string>& fallback = {});

/// `--allocator=help` / `--methods=help`: prints the registry's generated
/// usage table (allocator::AllocatorUsageText). Returns true when help was
/// printed — the caller should exit 0.
bool HandleAllocatorHelp(const Flags& flags);

/// `--scenario=help` / `--scenarios=help`: prints the scenario registry's
/// generated usage table (workload::ScenarioUsageText). Returns true when
/// help was printed — the caller should exit 0.
bool HandleScenarioHelp(const Flags& flags);

/// Instantiates `spec` through the scenario registry with `shape` as the
/// programmatic default. Aborts with a diagnostic on an invalid spec
/// (bench binaries treat a typo'd scenario the way they treat a typo'd
/// allocator: fatal, never silently the default workload).
std::unique_ptr<workload::Scenario> MakeScenarioOrDie(
    const std::string& spec, const workload::ScenarioShape& shape);

/// Table label: the paper's legend name for the classic methods
/// ("Our Method", "Random", "Metis", "Shard Scheduler"); any other spec
/// displays as itself.
std::string MethodLabel(const std::string& spec);

/// One evaluated datapoint of the sweep grid.
struct MethodResult {
  alloc::EvaluationReport report;
  /// Wall-clock seconds to derive the mapping (Fig. 8's metric).
  double allocation_seconds = 0.0;
};

/// Workload fixture shared by every figure: the synthetic Ethereum-like
/// ledger, its transaction graph, and the deterministic node order.
class Fixture {
 public:
  /// Builds (deterministically) from the resolved scale.
  Fixture(const BenchScale& scale, uint64_t seed);

  const chain::Ledger& ledger() const { return ledger_; }
  const graph::TransactionGraph& graph() const { return graph_; }
  const chain::AccountRegistry& registry() const { return *registry_; }
  const std::vector<graph::NodeId>& node_order() const { return node_order_; }
  const workload::EthereumLikeConfig& config() const { return config_; }
  uint64_t num_transactions() const { return ledger_.num_transactions(); }

  /// Paper setting: λ = |T|/k, ε = 1e-5 |T|.
  alloc::AllocationParams ParamsFor(uint32_t k, double eta) const {
    return alloc::AllocationParams::ForExperiment(num_transactions(), k, eta);
  }

  /// Creates `spec`'s allocator bound to this fixture at (k, η): the
  /// registry, seed and experiment params flow into AllocatorOptions.
  /// Aborts with a diagnostic on an invalid spec (bench binaries treat a
  /// typo'd method name as fatal).
  std::unique_ptr<allocator::Allocator> MakeAllocator(const std::string& spec,
                                                      uint32_t k,
                                                      double eta) const;

  /// The one-shot AllocationContext over this fixture's workload.
  allocator::AllocationContext ContextFor(uint32_t k, double eta) const;

  /// Runs one method at (k, η), measuring allocation wall-clock time and
  /// evaluating under the method's own execution semantics (so the broker
  /// decorator prices brokered transactions honestly).
  MethodResult RunMethod(const std::string& spec, uint32_t k,
                         double eta) const;

 private:
  workload::EthereumLikeConfig config_;
  std::unique_ptr<workload::EthereumLikeGenerator> generator_;
  const chain::AccountRegistry* registry_;
  chain::Ledger ledger_;
  graph::TransactionGraph graph_;
  std::vector<graph::NodeId> node_order_;
  uint64_t seed_ = 0;
};

/// Disk-backed memoization of MethodResult keyed by (method spec, k, eta),
/// fingerprinted by (txs, accounts, seed) so scale changes invalidate it.
/// Lives under `cache_dir` (the --cache-dir flag; default <csv-dir>/cache)
/// so bench runs from read-only or parallel working directories don't
/// collide in a hardcoded ./txallo_bench_cache.
class SweepCache {
 public:
  SweepCache(const Fixture* fixture, const BenchScale& scale, uint64_t seed,
             bool enabled, std::string cache_dir);

  /// Cached or computed result.
  MethodResult Get(const std::string& spec, uint32_t k, double eta);

  /// Flushes newly computed entries to disk.
  ~SweepCache();

 private:
  struct Key {
    std::string spec;
    uint32_t k;
    double eta;
    bool operator<(const Key& other) const {
      if (spec != other.spec) return spec < other.spec;
      if (k != other.k) return k < other.k;
      return eta < other.eta;
    }
  };
  // The cached scalar projection of an EvaluationReport (per-shard vectors
  // are not cached; figures needing them recompute directly).
  struct Row {
    double gamma, rho_norm, throughput_norm, avg_latency, worst_latency,
        seconds, mean_mu;
    uint64_t cross_txs;
  };
  void Load();

  const Fixture* fixture_;
  std::string cache_dir_;
  std::string path_;
  bool enabled_;
  bool dirty_ = false;
  std::map<Key, Row> rows_;
};

/// The sweep-cache directory: --cache-dir, defaulting to <csv-dir>/cache.
std::string ResolveCacheDir(const Flags& flags);

/// --record=PATH / --replay=PATH: deterministic trace record/replay for
/// the engine-backed benches (see engine/replay.h). Empty paths mean off;
/// both set at once is rejected by the benches.
struct TraceFlags {
  std::string record_path;
  std::string replay_path;
};
TraceFlags ResolveTraceFlags(const Flags& flags);

/// Offered load (transactions per tick) for the open-loop benches:
/// --offered-load beats the TXALLO_OFFERED_LOAD environment variable beats
/// `fallback`. Set-but-malformed values (non-numeric tail, non-positive,
/// NaN/inf) are InvalidArgument, never silently the fallback.
Result<double> ResolveOfferedLoad(const Flags& flags, double fallback);

/// mkdir -p: creates `path` and any missing parents (best-effort; callers
/// surface failures through the file writes that follow).
void EnsureDirs(const std::string& path);

/// Standard experiment grid (the paper's panels): η ∈ {2,4,6,8,10} and
/// k from 2 to max_shards. Overridable via --eta-list="2,6,10".
struct SweepGrid {
  std::vector<double> etas;
  std::vector<uint32_t> shard_counts;
};
SweepGrid ResolveGrid(const Flags& flags, const BenchScale& scale);

/// Aligned table printing + CSV mirror.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);
  /// Prints to stdout.
  void Print() const;
  /// Also writes <csv_dir>/<filename> (creates the directory).
  void WriteCsv(const std::string& csv_dir,
                const std::string& filename) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string Fmt(double value, int precision = 3);

/// Engine configuration for benches/examples: k shards under the paper's
/// cost model, parallelism pinned by --threads / TXALLO_THREADS (0 = the
/// engine's hardware default). `num_threads` overrides the scale's value
/// when >= 0 (thread-sweep benches pass each sweep point here).
engine::EngineConfig MakeEngineConfig(const BenchScale& scale, uint32_t k,
                                      double eta, double capacity_per_block,
                                      int num_threads = -1);

/// Shared banner: scale, |T|, |A|, seed, and the process's peak RSS so far
/// (fixture construction dominates it at large --accounts).
void PrintRunBanner(const char* figure, const BenchScale& scale,
                    const Fixture& fixture, uint64_t seed);

/// Peak resident set size of this process in MiB (getrusage), 0 when
/// unavailable. Printed by the banner and by engine_scaling's epilogue so
/// 1e5 → 1e7 account sweeps report memory alongside time.
double PeakRssMegabytes();

/// One timeline experiment (Figures 9 and 10): a prefix ledger is absorbed
/// and bootstrapped by the chosen strategy (for txallo-* the bootstrap
/// Rebalance is always G-TxAllo — the paper's setup), then the suffix
/// streams in windows of `blocks_per_step` blocks with one Rebalance per
/// step. Any registered online allocator spec runs here: the paper's
/// schedule comparison is "txallo-global" (Global Method) vs
/// "txallo-hybrid:global-every=G" (gap-G hybrid), but --methods accepts an
/// arbitrary strategy schedule list.
struct TimelineResult {
  /// Normalized throughput Λ/λ of each step's window transactions, under
  /// the allocation in force after that step's update.
  std::vector<double> throughput_per_step;
  /// Wall-clock seconds of each step's allocation update.
  std::vector<double> seconds_per_step;
  double average_throughput = 0.0;
};

struct TimelineConfig {
  uint32_t num_shards = 20;
  double eta = 2.0;
  int steps = 60;
  int blocks_per_step = 12;
  /// Prefix length in steps-worth of blocks (the paper's 9:1 split means
  /// prefix_steps = 9 * steps; scale presets use a smaller multiple).
  int prefix_multiple = 3;
  uint64_t seed = 42;
  uint64_t txs_per_block = 150;
  uint64_t num_accounts = 64'000;
};

/// Runs one allocator spec (any online strategy in the registry) over the
/// (deterministic) generated stream. Aborts with a diagnostic on an
/// invalid or one-shot-only spec, like Fixture::MakeAllocator.
TimelineResult RunTimeline(const TimelineConfig& config,
                           const std::string& spec);

/// Resolves the timeline shape from flags + scale presets.
TimelineConfig ResolveTimelineConfig(const Flags& flags,
                                     const BenchScale& scale, uint64_t seed);

/// The common skeleton of Figures 2, 3, 5, 6, 7 and 8: for each η panel,
/// sweep k and print one row per k with a column per method, extracting a
/// single scalar from each MethodResult. `paper_note` restates what shape
/// the paper reports so the console output is self-interpreting.
int RunStandardSweepFigure(int argc, char** argv, const char* figure_title,
                           const char* metric_name,
                           double (*extract)(const MethodResult&),
                           const char* csv_prefix, const char* paper_note);

}  // namespace txallo::bench

// Ablations of the design choices DESIGN.md calls out (paper §IV/§V):
//  A. Candidate communities C_v (Eq. 9) vs searching all k communities.
//  B. Louvain initialization vs hash initialization before optimization.
//  C. Convergence threshold ε sweep (sweeps executed vs final Λ).
//  D. The capacity clamp: optimizing with λ=∞ (pure cut minimization)
//     then evaluating under the real λ — what makes TxAllo workload-aware
//     and what METIS structurally lacks.
#include <cstdio>

#include "common/bench_common.h"
#include "txallo/baselines/metis/partitioner.h"
#include "txallo/core/global.h"

namespace {

using namespace txallo;

struct RunOutcome {
  core::GlobalRunInfo info;
  alloc::EvaluationReport report;
};

RunOutcome Run(const bench::Fixture& fixture, uint32_t k, double eta,
               const core::GlobalOptions& options,
               double optimize_capacity = -1.0) {
  alloc::AllocationParams params = fixture.ParamsFor(k, eta);
  alloc::AllocationParams optimize_params = params;
  if (optimize_capacity > 0.0) optimize_params.capacity = optimize_capacity;
  RunOutcome out;
  auto result = core::RunGlobalTxAllo(fixture.graph(), fixture.node_order(),
                                      optimize_params, options, &out.info);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  auto report =
      alloc::EvaluateAllocation(fixture.ledger(), result.value(), params);
  if (!report.ok()) std::abort();
  out.report = std::move(report.value());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bench::Fixture fixture(scale, seed);
  bench::PrintRunBanner("Ablations: TxAllo design choices", scale, fixture,
                        seed);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 20));
  const double eta = flags.GetDouble("eta", 4.0);
  const std::string csv_dir = flags.GetString("csv-dir", "bench_out");

  // --- A: candidate set restriction. ---
  {
    core::GlobalOptions with_cv, full;
    full.search_all_communities = true;
    RunOutcome a = Run(fixture, k, eta, with_cv);
    RunOutcome b = Run(fixture, k, eta, full);
    bench::SeriesTable table(
        "A. Candidate communities C_v (Eq. 9) vs full-k search",
        {"variant", "optimize (s)", "Lambda/lambda", "gamma"});
    table.AddRow({"C_v (paper)", bench::Fmt(a.info.optimize_seconds, 4),
                  bench::Fmt(a.report.normalized_throughput),
                  bench::Fmt(a.report.cross_shard_ratio)});
    table.AddRow({"all k", bench::Fmt(b.info.optimize_seconds, 4),
                  bench::Fmt(b.report.normalized_throughput),
                  bench::Fmt(b.report.cross_shard_ratio)});
    table.Print();
    table.WriteCsv(csv_dir, "ablation_candidates.csv");
  }

  // --- B: initialization. ---
  {
    core::GlobalOptions louvain, hashed;
    hashed.hash_initialization = true;
    RunOutcome a = Run(fixture, k, eta, louvain);
    RunOutcome b = Run(fixture, k, eta, hashed);
    bench::SeriesTable table(
        "B. Louvain initialization vs hash initialization",
        {"variant", "total (s)", "sweeps", "Lambda/lambda", "gamma"});
    table.AddRow({"Louvain (paper)", bench::Fmt(a.info.total_seconds, 4),
                  std::to_string(a.info.sweeps),
                  bench::Fmt(a.report.normalized_throughput),
                  bench::Fmt(a.report.cross_shard_ratio)});
    table.AddRow({"hash init", bench::Fmt(b.info.total_seconds, 4),
                  std::to_string(b.info.sweeps),
                  bench::Fmt(b.report.normalized_throughput),
                  bench::Fmt(b.report.cross_shard_ratio)});
    table.Print();
    table.WriteCsv(csv_dir, "ablation_init.csv");
  }

  // --- C: ε sweep. ---
  {
    bench::SeriesTable table(
        "C. Convergence threshold epsilon (paper: 1e-5 |T|)",
        {"epsilon/|T|", "sweeps", "optimize (s)", "Lambda/lambda"});
    for (double eps_scale : {1e-3, 1e-5, 1e-7}) {
      alloc::AllocationParams params = fixture.ParamsFor(k, eta);
      params.epsilon =
          eps_scale * static_cast<double>(fixture.num_transactions());
      core::GlobalRunInfo info;
      auto result = core::RunGlobalTxAllo(fixture.graph(),
                                          fixture.node_order(), params, {},
                                          &info);
      if (!result.ok()) std::abort();
      auto report = alloc::EvaluateAllocation(fixture.ledger(),
                                              result.value(), params);
      if (!report.ok()) std::abort();
      table.AddRow({bench::Fmt(eps_scale, 7), std::to_string(info.sweeps),
                    bench::Fmt(info.optimize_seconds, 4),
                    bench::Fmt(report->normalized_throughput)});
    }
    table.Print();
    table.WriteCsv(csv_dir, "ablation_epsilon.csv");
  }

  // --- D: capacity clamp. ---
  {
    RunOutcome clamped = Run(fixture, k, eta, {});
    RunOutcome unclamped = Run(fixture, k, eta, {}, /*optimize_capacity=*/
                               1e18);
    bench::SeriesTable table(
        "D. Capacity clamp: optimize with real lambda vs lambda=inf "
        "(evaluated under real lambda)",
        {"variant", "Lambda/lambda", "gamma", "rho/lambda", "worst zeta"});
    table.AddRow({"lambda=|T|/k (paper)",
                  bench::Fmt(clamped.report.normalized_throughput),
                  bench::Fmt(clamped.report.cross_shard_ratio),
                  bench::Fmt(clamped.report.normalized_workload_stddev),
                  bench::Fmt(clamped.report.worst_latency_blocks, 1)});
    table.AddRow({"lambda=inf (cut only)",
                  bench::Fmt(unclamped.report.normalized_throughput),
                  bench::Fmt(unclamped.report.cross_shard_ratio),
                  bench::Fmt(unclamped.report.normalized_workload_stddev),
                  bench::Fmt(unclamped.report.worst_latency_blocks, 1)});
    table.Print();
    table.WriteCsv(csv_dir, "ablation_capacity_clamp.csv");
    std::printf(
        "\nReading: with lambda=inf the throughput objective COLLAPSES — "
        "an intra edge credits 1,\na cross edge credits 1/2 per side, so "
        "Lambda-hat is invariant under every move and the\noptimizer stops "
        "at initialization. The capacity clamp is not merely a balance "
        "knob: it is\nthe entire optimization signal of Eq. (8). This is "
        "why TxAllo is workload-aware by\nconstruction while METIS's "
        "objective (edge cut) cannot see eta or lambda at all.\n");
  }

  // --- E: what METIS balances (unit vs incident vertex weights). ---
  {
    bench::SeriesTable table(
        "E. METIS vertex weighting: account-count balance (prior works) vs "
        "incident-weight balance",
        {"weighting", "gamma", "rho/lambda", "Lambda/lambda"});
    for (auto weighting :
         {baselines::metis::VertexWeighting::kUnitWeight,
          baselines::metis::VertexWeighting::kIncidentWeight}) {
      baselines::metis::PartitionOptions options;
      options.weighting = weighting;
      auto result =
          baselines::metis::PartitionGraph(fixture.graph(), k, options);
      if (!result.ok()) std::abort();
      alloc::AllocationParams params = fixture.ParamsFor(k, eta);
      auto report = alloc::EvaluateAllocation(fixture.ledger(),
                                              result.value(), params);
      if (!report.ok()) std::abort();
      table.AddRow(
          {weighting == baselines::metis::VertexWeighting::kUnitWeight
               ? "unit (prior works)"
               : "incident weight",
           bench::Fmt(report->cross_shard_ratio),
           bench::Fmt(report->normalized_workload_stddev),
           bench::Fmt(report->normalized_throughput)});
    }
    table.Print();
    table.WriteCsv(csv_dir, "ablation_metis_weighting.csv");
    std::printf("\nEither way METIS stays eta-oblivious: neither weighting "
                "optimizes the workload\nsigma = intra + eta*cross that "
                "TxAllo's objective contains natively.\n");
  }
  return 0;
}

// Extension bench (paper §VIII future work: "prediction of future
// transactions"): on a DRIFTING workload, compare three history policies
// for G-TxAllo, each evaluated on the NEXT (unseen) window — i.e., as a
// predictor of future transaction patterns:
//   full    — the whole history, unweighted (the paper's default);
//   decayed — exponential recency weighting (ScaleWeights per window);
//   fresh   — only the most recent windows, older history dropped.
//
// Expected: without drift the three tie; with drift, recency-weighted
// history adapts faster and wins on next-window cross-shard ratio and
// throughput. This quantifies the paper's own §VI-A advice to initialize
// from recent history ("prevents noise from out-of-date transactions").
#include <cstdio>

#include "common/bench_common.h"
#include "txallo/core/global.h"
#include "txallo/graph/builder.h"

namespace {

using namespace txallo;

struct PolicyScore {
  double gamma_sum = 0.0;
  double throughput_sum = 0.0;
  int windows = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 12));
  const double eta = flags.GetDouble("eta", 4.0);
  const int windows = static_cast<int>(flags.GetInt("windows", 12));
  const int blocks_per_window =
      static_cast<int>(flags.GetInt("blocks-per-window", 60));
  const double decay = flags.GetDouble("decay", 0.5);
  const int fresh_windows = static_cast<int>(flags.GetInt("fresh", 2));

  std::printf("==============================================================\n");
  std::printf("Extension: history policies on a drifting workload "
              "(k=%u, eta=%g, decay=%g)\n", k, eta, decay);
  std::printf("Each policy re-runs G-TxAllo per window; scored on the NEXT "
              "window's transactions.\n");
  std::printf("==============================================================\n");

  for (bool drift : {false, true}) {
    workload::EthereumLikeConfig config;
    config.txs_per_block = 120;
    config.num_blocks = static_cast<uint64_t>((windows + 2) *
                                              blocks_per_window);
    config.num_accounts = 16'000;
    config.num_communities = 100;
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 9));
    if (drift) {
      config.drift_interval_blocks = blocks_per_window;
      config.drift_fraction = 0.25;
      config.drift_partner_share = 0.8;
    }
    workload::EthereumLikeGenerator gen(config);

    // Pre-generate all windows so every policy sees identical traffic.
    std::vector<std::vector<chain::Block>> window_blocks(windows + 1);
    for (int w = 0; w <= windows; ++w) {
      for (int b = 0; b < blocks_per_window; ++b) {
        window_blocks[w].push_back(gen.NextBlock());
      }
    }
    const std::vector<graph::NodeId> order =
        gen.registry().IdsInHashOrder();

    enum Policy { kFull = 0, kDecayed = 1, kFresh = 2 };
    const char* names[] = {"full history", "decayed", "fresh-only"};
    PolicyScore scores[3];

    for (int policy = kFull; policy <= kFresh; ++policy) {
      graph::TransactionGraph g;
      g.EnsureNodeCount(gen.registry().size());
      for (int w = 0; w < windows; ++w) {
        if (policy == kDecayed) {
          g.Consolidate();
          g.ScaleWeights(decay);
        }
        if (policy == kFresh) {
          // Rebuild from only the last `fresh_windows` windows.
          g = graph::TransactionGraph();
          g.EnsureNodeCount(gen.registry().size());
          graph::GraphBuilder rebuilder(&g);
          for (int back = std::max(0, w - fresh_windows + 1); back <= w;
               ++back) {
            for (const chain::Block& blk : window_blocks[back]) {
              rebuilder.AddBlock(blk);
            }
          }
        } else {
          graph::GraphBuilder builder(&g);
          for (const chain::Block& blk : window_blocks[w]) {
            builder.AddBlock(blk);
          }
        }
        g.Consolidate();

        alloc::AllocationParams params;
        params.num_shards = k;
        params.eta = eta;
        params.capacity = g.TotalWeight() / k;  // λ tracks live weight.
        params.epsilon = 1e-5 * g.TotalWeight();
        auto allocation = core::RunGlobalTxAllo(g, order, params);
        if (!allocation.ok()) {
          std::fprintf(stderr, "G-TxAllo failed: %s\n",
                       allocation.status().ToString().c_str());
          return 1;
        }
        // Score on the NEXT window.
        std::vector<chain::Transaction> next;
        for (const chain::Block& blk : window_blocks[w + 1]) {
          next.insert(next.end(), blk.transactions().begin(),
                      blk.transactions().end());
        }
        alloc::AllocationParams next_params =
            alloc::AllocationParams::ForExperiment(next.size(), k, eta);
        auto report =
            alloc::EvaluateAllocation(next, allocation.value(), next_params);
        if (!report.ok()) return 1;
        scores[policy].gamma_sum += report->cross_shard_ratio;
        scores[policy].throughput_sum += report->normalized_throughput;
        ++scores[policy].windows;
      }
    }

    bench::SeriesTable table(
        std::string("Next-window prediction quality — drift ") +
            (drift ? "ON" : "OFF"),
        {"policy", "mean gamma(next)", "mean Lambda/lambda(next)"});
    for (int policy = kFull; policy <= kFresh; ++policy) {
      table.AddRow({names[policy],
                    bench::Fmt(scores[policy].gamma_sum /
                               scores[policy].windows),
                    bench::Fmt(scores[policy].throughput_sum /
                               scores[policy].windows)});
    }
    table.Print();
    table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                   drift ? "ablation_decay_drift_on.csv"
                         : "ablation_decay_drift_off.csv");
  }
  return 0;
}

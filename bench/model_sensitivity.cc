// Extension bench (paper §III-A's "additional fine-tuning"): how robust is
// each allocation when the real per-shard cost structure deviates from the
// single-η model the optimizer assumed?
//
// Mappings are derived once under the paper's uniform η, then re-evaluated
// under role-asymmetric (input shards costlier than output shards) and
// size-aware (per-extra-account surcharge) workload models.
#include <cstdio>

#include "common/bench_common.h"
#include "txallo/alloc/workload_model.h"
#include "txallo/baselines/hash_allocator.h"
#include "txallo/core/global.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bench::Fixture fixture(scale, seed);
  bench::PrintRunBanner(
      "Extension: workload-model sensitivity (role-asymmetric and "
      "size-aware costs)",
      scale, fixture, seed);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 20));
  const double eta = flags.GetDouble("eta", 4.0);

  alloc::AllocationParams params = fixture.ParamsFor(k, eta);
  auto txallo_result = core::RunGlobalTxAllo(fixture.graph(),
                                             fixture.node_order(), params);
  if (!txallo_result.ok()) {
    std::fprintf(stderr, "G-TxAllo failed: %s\n",
                 txallo_result.status().ToString().c_str());
    return 1;
  }
  auto hash_alloc = baselines::AllocateByHash(fixture.registry(), k);

  struct NamedModel {
    const char* name;
    alloc::WorkloadModel model;
  };
  const NamedModel models[] = {
      {"uniform eta (paper)", alloc::WorkloadModel::Uniform(eta)},
      {"input-heavy (in=1.5eta, out=0.5eta)",
       {1.0, 1.5 * eta, std::max(1.0, 0.5 * eta), 0.0}},
      {"output-heavy (in=0.5eta, out=1.5eta)",
       {1.0, std::max(1.0, 0.5 * eta), 1.5 * eta, 0.0}},
      {"size-aware (+0.25/extra account)", {1.0, eta, eta, 0.25}},
  };

  bench::SeriesTable table(
      "Throughput Lambda/lambda under alternative cost models "
      "(mapping fixed, derived under uniform eta)",
      {"cost model", "TxAllo", "Random"});
  auto txs = fixture.ledger().AllTransactions();
  for (const NamedModel& named : models) {
    auto r_txallo = alloc::EvaluateAllocationExtended(
        txs, txallo_result.value(), k, params.capacity, named.model);
    auto r_hash = alloc::EvaluateAllocationExtended(
        txs, hash_alloc, k, params.capacity, named.model);
    if (!r_txallo.ok() || !r_hash.ok()) return 1;
    table.AddRow({named.name,
                  bench::Fmt(r_txallo->normalized_throughput, 2),
                  bench::Fmt(r_hash->normalized_throughput, 2)});
  }
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                 "model_sensitivity.csv");
  std::printf("\nReading: TxAllo's advantage persists under every cost "
              "model because fewer\ntransactions cross shards at all — "
              "role asymmetry only redistributes the\nremaining cross "
              "cost.\n");
  return 0;
}

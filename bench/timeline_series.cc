// Per-step timeline series on the live parallel engine: every strategy in
// --methods streams one shared drifting workload through
// engine::RunReallocatedStream and reports block-level metrics *per epoch
// window* (throughput, cross-shard ratio, allocation cost, overlap) — the
// engine-backed Fig. 9/10 curves, not just end-of-run aggregates.
//
// The allocation schedule is the pipeline's: --alloc-mode=background
// (default) computes each epoch's rebalance on the BackgroundAllocator
// worker while the next epoch executes (install deferred one boundary, the
// deterministic software-pipelining schedule); sync/deferred run it on the
// driver. --producers=N fans ingest out through the IngestRouter.
//
// Record/replay (engine/replay.h): --record=PATH saves the first method's
// run as a deterministic trace; --replay=PATH re-executes a saved trace on
// the same generated workload (pass identical workload flags) and verifies
// bit-identity — threads/producers/alloc-mode may differ from the recorded
// run. The CI smoke records and replays a tiny trace this way to catch
// trace-format or determinism drift.
//
// Account-state backend (src/txallo/state/): --state=1 executes real
// balance transfers with 2PC commit/rollback and per-tick Merkle roots;
// --state-balance tunes the funding level (tight funding produces
// insufficient-balance aborts), --migration-work the per-record λ charge of
// allocation installs. --overrun=1 lets a background rebalance overrun its
// epoch (install deferred to the next boundary it is ready for) instead of
// stalling the driver. --json-out=PATH dumps the deterministic state-
// relevant series (committed/aborted/migrated per step, final Merkle root)
// as JSON — the committed BENCH_state.json snapshot comes from here.
//
// Workload selection (workload/scenario_registry.h): --scenario=SPEC (or
// TXALLO_SCENARIO) streams any registered scenario — "spike:peak-share=0.7",
// "shard-attack:shards=8,target=3", ... — through the same engine loop;
// --scenario=help prints the catalog. The default reproduces this bench's
// historical drifting Ethereum-like workload bit-identically.
//
//   ./build/bench/timeline_series [--methods=a;b] [--k=8] [--eta=2]
//       [--scenario=SPEC]
//       [--blocks=96] [--txs-per-block=120] [--epoch-blocks=12]
//       [--alloc-mode=background|deferred|sync] [--producers=N]
//       [--state=0|1] [--state-balance=N] [--migration-work=X]
//       [--overrun=0|1] [--json-out=PATH]
//       [--record=PATH | --replay=PATH]
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "txallo/common/sha256.h"
#include "txallo/engine/pipeline.h"
#include "txallo/engine/replay.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (bench::HandleAllocatorHelp(flags)) return 0;
  if (bench::HandleScenarioHelp(flags)) return 0;
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 8));
  const double eta = flags.GetDouble("eta", 2.0);
  const int blocks = static_cast<int>(flags.GetInt("blocks", 96));
  const uint64_t txs_per_block =
      static_cast<uint64_t>(flags.GetInt("txs-per-block", 120));
  const uint32_t epoch_blocks = static_cast<uint32_t>(
      flags.GetInt("epoch-blocks", std::max(4, blocks / 8)));
  const uint32_t producers =
      static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt("producers", 0)));
  const bool state_on = flags.GetInt("state", 0) != 0;
  // Tight default: roughly a dozen transfers per account before funds run
  // out, so the abort column is exercised, not identically zero.
  const int64_t state_balance = flags.GetInt("state-balance", 48);
  const double migration_work = flags.GetDouble("migration-work", 1.0);
  const bool overrun = flags.GetInt("overrun", 0) != 0;
  const std::string json_out = flags.GetString("json-out", "");
  auto mode = engine::ParseAllocatorMode(
      flags.GetString("alloc-mode", "background"));
  if (!mode.ok()) {
    std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
    return 1;
  }

  const bench::TraceFlags trace = bench::ResolveTraceFlags(flags);
  if (!trace.record_path.empty() && !trace.replay_path.empty()) {
    std::fprintf(stderr, "--record and --replay are mutually exclusive\n");
    return 1;
  }

  std::vector<std::string> specs = bench::ResolveMethodSpecs(
      flags, {"txallo-hybrid:global-every=4", "metis", "hash"});
  if (!trace.record_path.empty() && specs.size() > 1) {
    // One trace file = one run; record the first requested method.
    specs.resize(1);
    std::printf("--record: tracing the first method only (%s)\n",
                specs[0].c_str());
  }

  // One shared ledger: every method streams identical traffic. The shape
  // comes from the bench flags; the pattern comes from --scenario (or
  // TXALLO_SCENARIO). The default spec reproduces this bench's historical
  // inline workload — a drifting Ethereum-like stream — bit-identically, so
  // the committed BENCH_state.json snapshot survives the scenario rewiring.
  workload::ScenarioShape shape;
  shape.num_blocks = static_cast<uint64_t>(blocks);
  shape.txs_per_block = txs_per_block;
  shape.num_accounts = std::min<uint64_t>(scale.num_accounts, 16'000);
  shape.num_communities = static_cast<uint32_t>(
      std::max<uint64_t>(32, shape.num_accounts / 160));
  shape.initial_balance = state_balance;
  shape.seed = seed;
  const std::string scenario_spec = bench::ResolveScenarioSpec(
      flags, "ethereum:drift-interval=" +
                 std::to_string(std::max<uint64_t>(
                     1, static_cast<uint64_t>(blocks) / 3)));
  std::unique_ptr<workload::Scenario> scenario =
      bench::MakeScenarioOrDie(scenario_spec, shape);
  const chain::Ledger ledger = scenario->GenerateLedger(scenario->num_blocks());

  std::printf("==============================================================\n");
  std::printf("Timeline series: per-step engine metrics (k=%u, eta=%g, %d "
              "blocks x %llu txs,\nepochs of %u blocks, alloc-mode=%s, "
              "ingest producers=%u)\nscenario: %s\n",
              k, eta, blocks,
              static_cast<unsigned long long>(txs_per_block), epoch_blocks,
              engine::AllocatorModeName(*mode), producers,
              scenario_spec.c_str());
  std::printf("==============================================================\n");

  bench::SeriesTable series(
      "Per-step series (one row per epoch window)",
      {"allocator", "step", "blocks", "tput/blk", "cross%", "aborted",
       "migrated", "alloc-s", "wait-s", "installed"});
  bench::SeriesTable summary(
      "Summary per allocator",
      {"allocator", "committed", "tput/blk", "cross%", "aborted", "migrated",
       "epochs", "skipped", "moved", "alloc-s", "wait-s", "overlap%"});

  const auto add_series_rows = [&](const std::string& label,
                                   const engine::PipelineResult& result) {
    for (const engine::StepMetrics& step : result.steps) {
      series.AddRow(
          {label, std::to_string(step.step),
           std::to_string(step.last_block - step.first_block),
           bench::Fmt(step.throughput_per_block, 1),
           bench::Fmt(100.0 * step.cross_shard_ratio, 1),
           std::to_string(step.aborted),
           std::to_string(step.accounts_migrated),
           bench::Fmt(step.alloc_seconds, 4),
           bench::Fmt(step.alloc_wait_seconds, 4),
           step.installed ? "yes" : "no"});
    }
  };

  // Deterministic state-series snapshot (--json-out): per-method logical
  // counters only — no wall-clock fields — so a committed snapshot diffs
  // clean across machines.
  std::string json_methods;
  const auto add_json_method = [&](const std::string& label,
                                   const engine::PipelineResult& result,
                                   engine::ParallelEngine* engine) {
    if (json_out.empty()) return;
    std::string entry;
    entry += "    {\n      \"allocator\": \"" + label + "\",\n";
    entry += "      \"committed\": " +
             std::to_string(result.report.sim.committed) + ",\n";
    entry += "      \"aborted\": " + std::to_string(result.report.aborted) +
             ",\n";
    entry += "      \"accounts_migrated\": " +
             std::to_string(result.report.accounts_migrated) + ",\n";
    entry += "      \"accounts_moved\": " +
             std::to_string(result.accounts_moved) + ",\n";
    entry += "      \"epochs\": " + std::to_string(result.epochs) + ",\n";
    entry += "      \"overrun_boundaries\": " +
             std::to_string(result.overrun_boundaries) + ",\n";
    entry += "      \"final_state_root\": \"";
    if (state_on && engine != nullptr && engine->state() != nullptr) {
      entry += DigestToHex(engine->state()->GlobalRoot());
    }
    entry += "\",\n      \"steps\": [";
    for (size_t i = 0; i < result.steps.size(); ++i) {
      const engine::StepMetrics& step = result.steps[i];
      if (i > 0) entry += ",";
      entry += "\n        {\"step\": " + std::to_string(step.step) +
               ", \"committed\": " + std::to_string(step.committed) +
               ", \"aborted\": " + std::to_string(step.aborted) +
               ", \"accounts_migrated\": " +
               std::to_string(step.accounts_migrated) + "}";
    }
    entry += "\n      ]\n    }";
    if (!json_methods.empty()) json_methods += ",\n";
    json_methods += entry;
  };
  const auto write_json = [&]() {
    if (json_out.empty()) return;
    std::ofstream file(json_out, std::ios::trunc);
    file << "{\n  \"bench\": \"timeline_series\",\n";
    file << "  \"k\": " << k << ",\n";
    file << "  \"blocks\": " << blocks << ",\n";
    file << "  \"txs_per_block\": " << txs_per_block << ",\n";
    file << "  \"epoch_blocks\": " << epoch_blocks << ",\n";
    file << "  \"seed\": " << seed << ",\n";
    file << "  \"state_enabled\": " << (state_on ? "true" : "false") << ",\n";
    file << "  \"initial_balance\": " << state_balance << ",\n";
    file << "  \"migration_work_per_account\": " << migration_work << ",\n";
    file << "  \"methods\": [\n" << json_methods << "\n  ]\n}\n";
    std::printf("wrote state series snapshot to %s\n", json_out.c_str());
  };

  if (!trace.replay_path.empty()) {
    // Replay mode: the saved trace stands in for the allocator; the
    // workload flags must regenerate the recorded stream (the trace's
    // ledger fingerprint is verified) while threads/producers are free to
    // differ — that is the point of the drift check.
    auto loaded = engine::LoadReplayLog(trace.replay_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "--replay: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    engine::EngineConfig engine_config = bench::MakeEngineConfig(
        scale, k, eta, 1.3 * static_cast<double>(txs_per_block) / k);
    engine_config.hash_route_unassigned = true;
    engine_config.state.enabled = state_on;
    engine_config.state.initial_balance = scenario->initial_balance();
    engine_config.state.migration_work_per_account = migration_work;
    engine::ParallelEngine engine(engine_config, nullptr);
    engine::PipelineConfig pipeline;
    pipeline.ingest_producers = producers;
    // Only enforced when --scenario was given explicitly: the trace's own
    // ledger fingerprint is always checked, but a recorded spec from an
    // older flag set need not match this binary's default spec rendering.
    if (flags.Has("scenario")) pipeline.workload_spec = scenario_spec;
    auto result =
        engine::ReplayRecordedStream(ledger, *loaded, &engine, pipeline);
    if (!result.ok()) {
      std::fprintf(stderr, "--replay: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    add_series_rows("replay", *result);
    add_json_method("replay", *result, &engine);
    write_json();
    series.Print();
    const std::string csv_dir = flags.GetString("csv-dir", "bench_out");
    series.WriteCsv(csv_dir, "timeline_series.csv");
    std::printf(
        "\nreplay of '%s': bit-identical (%zu prepares, %zu commits, %zu "
        "installs, %zu steps)\n",
        trace.replay_path.c_str(), loaded->prepares.size(),
        loaded->commits.size(), loaded->installs.size(),
        loaded->steps.size());
    return 0;
  }

  for (const std::string& spec : specs) {
    allocator::AllocatorOptions options;
    options.params = alloc::AllocationParams::ForExperiment(
        ledger.num_transactions(), k, eta);
    options.registry = &scenario->registry();
    options.seed = seed;
    auto made = allocator::MakeAllocatorFromSpec(spec, options);
    if (!made.ok()) {
      std::fprintf(stderr, "allocator '%s': %s\n", spec.c_str(),
                   made.status().ToString().c_str());
      return 1;
    }
    allocator::OnlineAllocator* online = (*made)->AsOnline();
    if (online == nullptr) {
      std::fprintf(stderr, "allocator '%s' is one-shot only; skipping\n",
                   spec.c_str());
      continue;
    }

    engine::EngineConfig engine_config = bench::MakeEngineConfig(
        scale, k, eta, 1.3 * static_cast<double>(txs_per_block) / k);
    engine_config.hash_route_unassigned = true;
    engine_config.state.enabled = state_on;
    engine_config.state.initial_balance = scenario->initial_balance();
    engine_config.state.migration_work_per_account = migration_work;
    engine::ParallelEngine engine(engine_config, nullptr);
    engine::ReplayLog log;
    engine::PipelineConfig pipeline;
    pipeline.blocks_per_epoch = epoch_blocks;
    pipeline.allocator_mode = *mode;
    pipeline.ingest_producers = producers;
    pipeline.allow_epoch_overrun = overrun;
    pipeline.workload_spec = scenario_spec;
    if (!trace.record_path.empty()) pipeline.record = &log;
    auto result =
        engine::RunReallocatedStream(ledger, online, &engine, pipeline);
    if (!result.ok()) {
      std::fprintf(stderr, "pipeline under '%s' failed: %s\n", spec.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    if (!trace.record_path.empty()) {
      Status saved = engine::SaveReplayLog(log, trace.record_path);
      if (!saved.ok()) {
        std::fprintf(stderr, "--record: %s\n", saved.ToString().c_str());
        return 1;
      }
      std::printf("recorded trace of '%s' to %s (%zu prepares, %zu commits, "
                  "%zu installs, %zu steps)\n",
                  spec.c_str(), trace.record_path.c_str(),
                  log.prepares.size(), log.commits.size(),
                  log.installs.size(), log.steps.size());
    }

    add_series_rows(spec, *result);
    add_json_method(spec, *result, &engine);
    const double cross_pct =
        result->report.sim.submitted == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(result->report.sim.cross_shard_submitted) /
                  static_cast<double>(result->report.sim.submitted);
    summary.AddRow({spec, std::to_string(result->report.sim.committed),
                    bench::Fmt(result->report.sim.throughput_per_block, 1),
                    bench::Fmt(cross_pct, 1),
                    std::to_string(result->report.aborted),
                    std::to_string(result->report.accounts_migrated),
                    std::to_string(result->epochs),
                    std::to_string(result->overrun_boundaries),
                    std::to_string(result->accounts_moved),
                    bench::Fmt(result->alloc_seconds, 4),
                    bench::Fmt(result->alloc_wait_seconds, 4),
                    bench::Fmt(100.0 * result->alloc_overlap_ratio, 1)});
  }

  write_json();
  series.Print();
  summary.Print();
  const std::string csv_dir = flags.GetString("csv-dir", "bench_out");
  series.WriteCsv(csv_dir, "timeline_series.csv");
  summary.WriteCsv(csv_dir, "timeline_series_summary.csv");
  std::printf(
      "\noverlap%% = share of allocation wall time hidden behind execution "
      "(alloc-mode=background\noverlaps each epoch's rebalance with the next "
      "epoch's ticks; sync/deferred stall the driver).\n");
  return 0;
}

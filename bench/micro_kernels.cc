// google-benchmark micro-kernels for the hot paths: SHA-256, Zipf
// sampling, transaction-graph construction, CSR snapshot, Louvain, one
// optimization sweep, the gain kernel, metric evaluation, and the Shard
// Scheduler's per-transaction cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <unordered_map>

#include "txallo/alloc/metrics.h"
#include "txallo/baselines/hash_allocator.h"
#include "txallo/baselines/shard_scheduler.h"
#include "txallo/common/flat_map.h"
#include "txallo/common/rng.h"
#include "txallo/common/sha256.h"
#include "txallo/common/zipf.h"
#include "txallo/core/gain.h"
#include "txallo/core/global.h"
#include "txallo/graph/builder.h"
#include "txallo/graph/csr.h"
#include "txallo/graph/louvain.h"
#include "txallo/workload/ethereum_like.h"

namespace {

using namespace txallo;

// google-benchmark binaries don't parse our --flags; TXALLO_ACCOUNTS is the
// scale channel for 1e5 → 1e7 account sweeps (block count grows with it so
// the graph keeps non-trivial density per account).
size_t BenchAccounts() {
  if (const char* env = std::getenv("TXALLO_ACCOUNTS")) {
    const long long v = std::strtoll(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 20'000;
}

const workload::EthereumLikeGenerator& SharedGenerator() {
  static auto* generator = [] {
    workload::EthereumLikeConfig config;
    const size_t accounts = BenchAccounts();
    config.num_blocks = static_cast<uint32_t>(
        std::max<size_t>(250, accounts / 80));
    config.txs_per_block = 200;
    config.num_accounts = accounts;
    config.num_communities = 128;
    config.seed = 7;
    return new workload::EthereumLikeGenerator(config);
  }();
  return *generator;
}

const chain::Ledger& SharedLedger() {
  static auto* ledger = [] {
    auto* generator =
        const_cast<workload::EthereumLikeGenerator*>(&SharedGenerator());
    const auto blocks = static_cast<uint32_t>(
        std::max<size_t>(250, BenchAccounts() / 80));
    return new chain::Ledger(generator->GenerateLedger(blocks));
  }();
  return *ledger;
}

const graph::TransactionGraph& SharedGraph() {
  static auto* g = [] {
    auto* built =
        new graph::TransactionGraph(graph::BuildTransactionGraph(SharedLedger()));
    built->EnsureNodeCount(SharedGenerator().registry().size());
    built->Consolidate();
    return built;
  }();
  return *g;
}

void BM_Sha256_1KiB(benchmark::State& state) {
  std::string data(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Sha256_AccountBucket(benchmark::State& state) {
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash64(i++) % 60);
  }
}
BENCHMARK(BM_Sha256_AccountBucket);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<uint64_t>(state.range(0)), 1.1);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1'000)->Arg(100'000);

void BM_GraphBuild(benchmark::State& state) {
  const chain::Ledger& ledger = SharedLedger();
  for (auto _ : state) {
    graph::TransactionGraph g = graph::BuildTransactionGraph(ledger);
    benchmark::DoNotOptimize(g.TotalWeight());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ledger.num_transactions()));
}
BENCHMARK(BM_GraphBuild);

void BM_CsrSnapshot(benchmark::State& state) {
  const graph::TransactionGraph& g = SharedGraph();
  for (auto _ : state) {
    graph::CsrGraph csr = graph::CsrGraph::FromGraph(g);
    benchmark::DoNotOptimize(csr.num_edges());
  }
}
BENCHMARK(BM_CsrSnapshot);

void BM_Louvain(benchmark::State& state) {
  graph::CsrGraph csr = graph::CsrGraph::FromGraph(SharedGraph());
  std::vector<graph::NodeId> order(csr.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::RunLouvain(csr, order));
  }
}
BENCHMARK(BM_Louvain);

void BM_GainKernel(benchmark::State& state) {
  alloc::CommunityState community_state;
  community_state.eta = 4.0;
  community_state.capacity = 100.0;
  community_state.sigma.assign(60, 80.0);
  community_state.lambda_hat.assign(60, 60.0);
  core::NodeProfile node{0.5, 12.0};
  uint32_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::MoveGain(community_state, q % 60, (q + 1) % 60, node, 3.0,
                       4.0));
    ++q;
  }
}
BENCHMARK(BM_GainKernel);

void BM_OptimizeSweep(benchmark::State& state) {
  const graph::TransactionGraph& g = SharedGraph();
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  alloc::AllocationParams params = alloc::AllocationParams::ForExperiment(
      SharedLedger().num_transactions(), k, 4.0);
  std::vector<graph::NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  for (auto _ : state) {
    state.PauseTiming();
    alloc::Allocation allocation = baselines::AllocateByHash(
        g.num_nodes(), k);
    alloc::CommunityState community_state =
        alloc::ComputeCommunityState(g, allocation, params);
    core::GlobalOptions options;
    options.max_sweeps = 1;
    state.ResumeTiming();
    core::OptimizeSweeps(g, order, params, options, &allocation,
                         &community_state);
    benchmark::DoNotOptimize(community_state.TotalThroughput());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_OptimizeSweep)->Arg(8)->Arg(60);

// Builds a graph with ~`frozen_edges` frozen into the CSR core, then a
// fixed 1024-edge consolidated delta overlaying it. Snapshot cost must
// track the delta, not the core — the point of the delta-log design.
graph::TransactionGraph MakeOverlaidGraph(size_t frozen_edges) {
  graph::TransactionGraph g;
  const auto n = static_cast<graph::NodeId>(
      std::max<size_t>(1024, frozen_edges / 8));
  Rng rng(11);
  for (size_t e = 0; e < frozen_edges; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.NextBounded(n));
    const auto v = static_cast<graph::NodeId>(rng.NextBounded(n));
    g.AddEdge(u, v, 1.0);
  }
  g.Refreeze();
  for (size_t e = 0; e < 1024; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.NextBounded(n));
    const auto v = static_cast<graph::NodeId>(rng.NextBounded(n));
    g.AddEdge(u, v, 1.0);
  }
  g.Consolidate();
  return g;
}

void BM_GraphSnapshotCopy(benchmark::State& state) {
  const graph::TransactionGraph g =
      MakeOverlaidGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    graph::TransactionGraph snapshot = g;
    benchmark::DoNotOptimize(snapshot.num_edges());
  }
  state.counters["frozen_edges"] =
      static_cast<double>(g.frozen_edges());
  state.counters["snapshot_bytes"] = static_cast<double>(g.SnapshotBytes());
  state.counters["full_copy_bytes"] = static_cast<double>(g.FullCopyBytes());
}
// The flat time across this range (frozen E grows 64×, the delta is fixed)
// is the "snapshot time independent of frozen-edge count" acceptance check.
BENCHMARK(BM_GraphSnapshotCopy)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_GraphRefreeze(benchmark::State& state) {
  const graph::TransactionGraph g =
      MakeOverlaidGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    graph::TransactionGraph snapshot = g;
    snapshot.Refreeze();
    benchmark::DoNotOptimize(snapshot.core());
  }
}
BENCHMARK(BM_GraphRefreeze)->Arg(1 << 14)->Arg(1 << 17);

void BM_JoinGainBatch(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  alloc::CommunityState community_state;
  community_state.eta = 4.0;
  community_state.capacity = 100.0;
  community_state.sigma.assign(k, 80.0);
  community_state.lambda_hat.assign(k, 60.0);
  core::NodeProfile node{0.5, 12.0};
  std::vector<double> weight_to(k, 3.0);
  std::vector<double> gains(k, 0.0);
  for (auto _ : state) {
    core::JoinGainBatch(community_state, node, weight_to.data(), k,
                        gains.data());
    benchmark::DoNotOptimize(gains.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_JoinGainBatch)->Arg(8)->Arg(60)->Arg(256);

void BM_FlatMapLookup(benchmark::State& state) {
  common::FlatMap<uint32_t, uint64_t> map;
  Rng rng(5);
  std::vector<uint32_t> keys(static_cast<size_t>(state.range(0)));
  for (auto& key : keys) {
    key = static_cast<uint32_t>(rng.NextUint64());
    map.emplace(key, static_cast<uint64_t>(key) * 3);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i]));
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_FlatMapLookup)->Arg(1 << 10)->Arg(1 << 16);

void BM_UnorderedMapLookup(benchmark::State& state) {
  std::unordered_map<uint32_t, uint64_t> map;
  Rng rng(5);
  std::vector<uint32_t> keys(static_cast<size_t>(state.range(0)));
  for (auto& key : keys) {
    key = static_cast<uint32_t>(rng.NextUint64());
    map.emplace(key, static_cast<uint64_t>(key) * 3);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i]));
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_UnorderedMapLookup)->Arg(1 << 10)->Arg(1 << 16);

void BM_EvaluateAllocation(benchmark::State& state) {
  const chain::Ledger& ledger = SharedLedger();
  alloc::Allocation allocation =
      baselines::AllocateByHash(SharedGenerator().registry(), 20);
  alloc::AllocationParams params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), 20, 2.0);
  for (auto _ : state) {
    auto report = alloc::EvaluateAllocation(ledger, allocation, params);
    benchmark::DoNotOptimize(report.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ledger.num_transactions()));
}
BENCHMARK(BM_EvaluateAllocation);

void BM_ShardSchedulerPerTx(benchmark::State& state) {
  const chain::Ledger& ledger = SharedLedger();
  auto txs = ledger.AllTransactions();
  size_t i = 0;
  baselines::ShardScheduler scheduler(20, 2.0);
  for (auto _ : state) {
    scheduler.Process(txs[i]);
    i = (i + 1) % txs.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardSchedulerPerTx);

}  // namespace

BENCHMARK_MAIN();

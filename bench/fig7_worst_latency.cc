// Figure 7 (paper §VI-B5): worst-case confirmation latency (the most
// overloaded shard's drain time, ⌈σ_max/λ⌉ blocks) vs k, one panel per η.
#include "common/bench_common.h"

namespace {
double ExtractWorstLatency(const txallo::bench::MethodResult& result) {
  return result.report.worst_latency_blocks;
}
}  // namespace

int main(int argc, char** argv) {
  return txallo::bench::RunStandardSweepFigure(
      argc, argv,
      "Figure 7: Worst-case latency comparison (blocks vs k)",
      "Worst-case latency (blocks)",
      &ExtractWorstLatency, "fig7_worst_latency",
      "Paper shape: Shard Scheduler best (no overloaded shard), Our Method "
      "second; Random and\nMETIS blow up with k because the hub account's "
      "shard overloads.");
}

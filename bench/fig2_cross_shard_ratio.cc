// Figure 2 (paper §VI-B2): cross-shard transaction ratio γ vs number of
// shards k, one panel per η ∈ {2,4,6,8,10}, four methods.
#include "common/bench_common.h"

namespace {
double ExtractGamma(const txallo::bench::MethodResult& result) {
  return result.report.cross_shard_ratio;
}
}  // namespace

int main(int argc, char** argv) {
  return txallo::bench::RunStandardSweepFigure(
      argc, argv,
      "Figure 2: Cross-shard transaction ratio comparison (gamma vs k)",
      "Cross-shard ratio",
      &ExtractGamma, "fig2_cross_shard_ratio",
      "Paper shape: Our Method lowest everywhere (~0.12 at k=60), METIS "
      "next (~0.28 at k=60),\nRandom ~1-1/k (~0.98 at k=60); Our Method's "
      "gamma shrinks as eta grows (self-adjustment).");
}

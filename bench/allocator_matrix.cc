// Allocator matrix: every strategy in the registry × shard count, run two
// ways — the §III-B one-shot evaluator (the figure sweeps' setting) and
// live on the parallel engine behind engine::RunReallocatedStream (the
// engine-backed version of the paper's Fig. 9/10 adaptive comparison, now
// honest: hash/METIS/Louvain/Shard-Scheduler reallocate a running engine
// exactly like TxAllo does). Doubles as the registry's canary: a method
// that falls out of RegisteredNames() falls out of this table.
//
//   ./build/bench/allocator_matrix [--k-list=4,8] [--eta=2]
//       [--engine-blocks=40] [--allocator=SPEC (restrict to one)]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "txallo/engine/pipeline.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (bench::HandleAllocatorHelp(flags)) return 0;
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double eta = flags.GetDouble("eta", 2.0);
  const int engine_blocks =
      static_cast<int>(flags.GetInt("engine-blocks", 40));
  const uint64_t engine_txs_per_block =
      static_cast<uint64_t>(flags.GetInt("engine-txs-per-block", 120));
  auto alloc_mode =
      engine::ParseAllocatorMode(flags.GetString("alloc-mode", "sync"));
  if (!alloc_mode.ok()) {
    std::fprintf(stderr, "%s\n", alloc_mode.status().ToString().c_str());
    return 1;
  }
  const uint32_t producers =
      static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt("producers", 0)));

  std::vector<uint32_t> k_list;
  for (const std::string& item :
       bench::SplitList(flags.GetString("k-list", "4,8"))) {
    k_list.push_back(static_cast<uint32_t>(std::atoi(item.c_str())));
  }

  // --allocator restricts the matrix to one spec; default is every
  // registered name (which is the point: nothing can silently drop out).
  std::vector<std::string> specs;
  const std::string single = bench::ResolveAllocatorSpec(flags, "");
  if (!single.empty()) {
    specs.push_back(single);
  } else {
    specs = allocator::RegisteredNames();
  }

  bench::Fixture fixture(scale, seed);
  bench::PrintRunBanner("Allocator matrix: every registered strategy, "
                        "one-shot and live on the engine",
                        scale, fixture, seed);
  std::printf("registered allocators:\n");
  for (const std::string& name : allocator::RegisteredNames()) {
    std::printf("  %-16s %s\n", name.c_str(),
                allocator::DescribeAllocator(name).c_str());
  }

  // Leg 1: one-shot partition + model evaluation on the shared fixture.
  bench::SeriesTable oneshot(
      "One-shot evaluation (eta=" + bench::Fmt(eta, 0) + ")",
      {"allocator", "k", "gamma", "Lambda/lambda", "zeta(avg)", "rho/lambda",
       "alloc-secs"});
  for (const std::string& spec : specs) {
    for (uint32_t k : k_list) {
      bench::MethodResult result = fixture.RunMethod(spec, k, eta);
      oneshot.AddRow({spec, std::to_string(k),
                      bench::Fmt(result.report.cross_shard_ratio),
                      bench::Fmt(result.report.normalized_throughput, 2),
                      bench::Fmt(result.report.avg_latency_blocks, 2),
                      bench::Fmt(result.report.normalized_workload_stddev, 2),
                      bench::Fmt(result.allocation_seconds, 4)});
    }
  }
  oneshot.Print();

  // Leg 2: the same strategies reallocating a live parallel engine over a
  // shared drifting workload (generated once — every cell streams the
  // identical ledger), so the online path has something to adapt to; the
  // engine hash-routes accounts born since the last epoch, as a real
  // chain would.
  workload::EthereumLikeConfig engine_workload;
  engine_workload.txs_per_block = engine_txs_per_block;
  engine_workload.num_blocks = static_cast<uint64_t>(engine_blocks);
  engine_workload.num_accounts = std::min<uint64_t>(scale.num_accounts, 16'000);
  engine_workload.num_communities = static_cast<uint32_t>(
      std::max<uint64_t>(32, engine_workload.num_accounts / 160));
  engine_workload.seed = seed;
  engine_workload.drift_interval_blocks =
      std::max<uint64_t>(1, static_cast<uint64_t>(engine_blocks) / 3);
  workload::EthereumLikeGenerator generator(engine_workload);
  const chain::Ledger ledger =
      generator.GenerateLedger(engine_workload.num_blocks);

  bench::SeriesTable live(
      "Live engine pipeline (" + std::to_string(engine_blocks) + " blocks x " +
          std::to_string(engine_txs_per_block) + " txs, epochs of " +
          std::to_string(std::max(5, engine_blocks / 6)) + " blocks)",
      {"allocator", "k", "committed", "tput/blk", "cross%", "epochs",
       "moved", "alloc-secs"});
  for (const std::string& spec : specs) {
    for (uint32_t k : k_list) {
      allocator::AllocatorOptions options;
      options.params = alloc::AllocationParams::ForExperiment(
          ledger.num_transactions(), k, eta);
      options.registry = &generator.registry();
      options.seed = seed;
      auto made = allocator::MakeAllocatorFromSpec(spec, options);
      if (!made.ok()) {
        std::fprintf(stderr, "allocator '%s': %s\n", spec.c_str(),
                     made.status().ToString().c_str());
        return 1;
      }
      allocator::OnlineAllocator* online = (*made)->AsOnline();
      if (online == nullptr) {
        live.AddRow({spec, std::to_string(k), "(one-shot only)", "-", "-",
                     "-", "-", "-"});
        continue;
      }

      engine::EngineConfig engine_config = bench::MakeEngineConfig(
          scale, k, eta,
          1.3 * static_cast<double>(engine_txs_per_block) / k);
      engine_config.hash_route_unassigned = true;
      engine::ParallelEngine engine(engine_config, nullptr);
      engine::PipelineConfig pipeline;
      pipeline.blocks_per_epoch =
          static_cast<uint32_t>(std::max(5, engine_blocks / 6));
      pipeline.allocator_mode = *alloc_mode;
      pipeline.ingest_producers = producers;
      auto result =
          engine::RunReallocatedStream(ledger, online, &engine, pipeline);
      if (!result.ok()) {
        std::fprintf(stderr, "engine pipeline under '%s' failed: %s\n",
                     spec.c_str(), result.status().ToString().c_str());
        return 1;
      }
      const double cross_pct =
          result->report.sim.submitted == 0
              ? 0.0
              : 100.0 *
                    static_cast<double>(result->report.sim.cross_shard_submitted) /
                    static_cast<double>(result->report.sim.submitted);
      live.AddRow(
          {spec, std::to_string(k),
           std::to_string(result->report.sim.committed),
           bench::Fmt(result->report.sim.throughput_per_block, 1),
           bench::Fmt(cross_pct, 1), std::to_string(result->epochs),
           std::to_string(result->accounts_moved),
           bench::Fmt(result->alloc_seconds, 4)});
    }
  }
  live.Print();

  const std::string csv_dir = flags.GetString("csv-dir", "bench_out");
  oneshot.WriteCsv(csv_dir, "allocator_matrix_oneshot.csv");
  live.WriteCsv(csv_dir, "allocator_matrix_engine.csv");
  std::printf(
      "\nNote: the live leg routes by each strategy's Rebalance() output; "
      "the broker row's\nmapping is its inner allocator's — broker "
      "economics only change the model-level\nevaluation (see "
      "brokerchain_comparison), not the engine's cost semantics.\n");
  return 0;
}

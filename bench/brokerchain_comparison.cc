// Extension bench: TxAllo vs "METIS + brokers" (a BrokerChain-flavored
// configuration, paper §II-C). BrokerChain keeps METIS as its backbone
// allocator and neutralizes cross-shard transactions through replicated
// broker accounts; this bench asks whether TxAllo's allocation advantage
// survives once the baseline gets that overlay — and what TxAllo itself
// gains from the same overlay.
#include <cstdio>

#include "common/bench_common.h"
#include "txallo/baselines/broker.h"
#include "txallo/baselines/metis/partitioner.h"
#include "txallo/core/global.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bench::Fixture fixture(scale, seed);
  bench::PrintRunBanner(
      "Extension: TxAllo vs BrokerChain-style METIS+brokers", scale, fixture,
      seed);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 20));
  const double eta = flags.GetDouble("eta", 4.0);
  const uint32_t num_brokers =
      static_cast<uint32_t>(flags.GetInt("brokers", 16));

  alloc::AllocationParams params = fixture.ParamsFor(k, eta);
  auto txallo_alloc = core::RunGlobalTxAllo(fixture.graph(),
                                            fixture.node_order(), params);
  auto metis_alloc = baselines::metis::PartitionGraph(fixture.graph(), k);
  if (!txallo_alloc.ok() || !metis_alloc.ok()) {
    std::fprintf(stderr, "allocation failed\n");
    return 1;
  }
  auto brokers =
      baselines::SelectBrokersByActivity(fixture.graph(), num_brokers);
  baselines::BrokerOptions broker_options;

  bench::SeriesTable table(
      "k=" + std::to_string(k) + ", eta=" + bench::Fmt(eta, 0) + ", " +
          std::to_string(num_brokers) + " brokers (most active accounts)",
      {"configuration", "gamma*", "Lambda/lambda", "zeta(avg)",
       "rho/lambda"});

  auto add_row = [&](const char* name,
                     const Result<alloc::EvaluationReport>& report) {
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   report.status().ToString().c_str());
      std::exit(1);
    }
    table.AddRow({name, bench::Fmt(report->cross_shard_ratio),
                  bench::Fmt(report->normalized_throughput, 2),
                  bench::Fmt(report->avg_latency_blocks, 2),
                  bench::Fmt(report->normalized_workload_stddev, 2)});
  };

  auto txs = fixture.ledger().AllTransactions();
  add_row("TxAllo, no brokers",
          alloc::EvaluateAllocation(txs, *txallo_alloc, params));
  add_row("METIS, no brokers",
          alloc::EvaluateAllocation(txs, *metis_alloc, params));
  add_row("METIS + brokers (BrokerChain-style)",
          baselines::EvaluateWithBrokers(txs, *metis_alloc, params, brokers,
                                         broker_options));
  add_row("TxAllo + brokers",
          baselines::EvaluateWithBrokers(txs, *txallo_alloc, params, brokers,
                                         broker_options));
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                 "brokerchain_comparison.csv");
  std::printf(
      "\n(*) gamma counts transactions that still span multiple shards "
      "after broker wildcarding.\nBrokered rows price those at "
      "broker_cross_cost=%.1f per shard instead of eta, plus a\n%.0f-block "
      "relay hop in the latency column.\n",
      broker_options.broker_cross_cost,
      broker_options.broker_latency_blocks);
  return 0;
}

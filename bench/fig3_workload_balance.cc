// Figure 3 (paper §VI-B3): workload balance ρ vs number of shards k, one
// panel per η. ρ is reported normalized by λ (σ-stddev in units of shard
// capacity) so numbers are comparable across scales — the paper's y-axis is
// in the same normalized units.
#include "common/bench_common.h"

namespace {
double ExtractRho(const txallo::bench::MethodResult& result) {
  return result.report.normalized_workload_stddev;
}
}  // namespace

int main(int argc, char** argv) {
  return txallo::bench::RunStandardSweepFigure(
      argc, argv,
      "Figure 3: Workload balance comparison (rho/lambda vs k)",
      "Workload stddev / lambda",
      &ExtractRho, "fig3_workload_balance",
      "Paper shape: Shard Scheduler best (near 0), Our Method beats the "
      "other graph methods;\nRandom and METIS degrade with k as the hub "
      "account dominates one shard.");
}

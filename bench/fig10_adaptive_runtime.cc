// Figure 10 (paper §VI-C2): per-step allocation running time of pure
// G-TxAllo vs the hybrid schedule (A-TxAllo every step, G-TxAllo every
// `gap` steps — the paper uses gap=20 of its 200 steps).
//
// Paper numbers at their scale: A-TxAllo ~0.55s vs G-TxAllo ~122s and
// METIS ~422s — the hybrid curve hugs zero with periodic global spikes.
// The reproduced claim is the ratio (orders of magnitude) and the flat
// A-TxAllo cost as the chain grows, not the absolute seconds.
#include <cstdio>

#include "common/bench_common.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bench::TimelineConfig config =
      bench::ResolveTimelineConfig(flags, scale, seed);
  const int gap =
      static_cast<int>(flags.GetInt("gap", std::max(1, config.steps / 10)));

  std::printf("==============================================================\n");
  std::printf("Figure 10: Running time per step — pure G-TxAllo vs hybrid "
              "(gap=%d steps, k=%u)\n", gap, config.num_shards);
  std::printf("==============================================================\n");

  bench::TimelineResult pure_global = bench::RunTimeline(config, 1);
  bench::TimelineResult hybrid = bench::RunTimeline(config, gap);

  bench::SeriesTable table("Seconds per step",
                           {"step", "Pure G-TxAllo", "Hybrid"});
  for (int step = 0; step < config.steps; ++step) {
    table.AddRow({std::to_string(step),
                  bench::Fmt(pure_global.seconds_per_step[step], 4),
                  bench::Fmt(hybrid.seconds_per_step[step], 4)});
  }
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                 "fig10_adaptive_runtime.csv");

  double global_avg = 0.0, hybrid_adaptive_avg = 0.0, hybrid_max = 0.0;
  int adaptive_steps = 0;
  for (int step = 0; step < config.steps; ++step) {
    global_avg += pure_global.seconds_per_step[step];
    hybrid_max = std::max(hybrid_max, hybrid.seconds_per_step[step]);
    if ((step + 1) % gap != 0) {
      hybrid_adaptive_avg += hybrid.seconds_per_step[step];
      ++adaptive_steps;
    }
  }
  global_avg /= config.steps;
  if (adaptive_steps > 0) hybrid_adaptive_avg /= adaptive_steps;

  std::printf("\nSummary\n");
  std::printf("  pure G-TxAllo avg/step       : %.4f s\n", global_avg);
  std::printf("  hybrid A-TxAllo avg/step     : %.4f s\n",
              hybrid_adaptive_avg);
  std::printf("  hybrid worst step (global)   : %.4f s\n", hybrid_max);
  if (hybrid_adaptive_avg > 0.0) {
    std::printf("  G-TxAllo / A-TxAllo ratio    : %.1fx (paper: ~220x at "
                "91M-tx scale)\n",
                global_avg / hybrid_adaptive_avg);
  }
  std::printf("  throughput cost of hybrid    : %.2f%% (avg %0.3f vs %0.3f)\n",
              100.0 * (pure_global.average_throughput -
                       hybrid.average_throughput) /
                  pure_global.average_throughput,
              hybrid.average_throughput, pure_global.average_throughput);
  return 0;
}

// Figure 10 (paper §VI-C2): per-step allocation running time of pure
// G-TxAllo vs the hybrid schedule (A-TxAllo every step, G-TxAllo every
// `gap` steps — the paper uses gap=20 of its 200 steps).
//
// The schedules run through the allocator registry, so --methods accepts an
// arbitrary strategy list ("metis;txallo-hybrid:global-every=6;contrib")
// whose per-step allocation cost is compared side by side.
//
// Paper numbers at their scale: A-TxAllo ~0.55s vs G-TxAllo ~122s and
// METIS ~422s — the hybrid curve hugs zero with periodic global spikes.
// The reproduced claim is the ratio (orders of magnitude) and the flat
// A-TxAllo cost as the chain grows, not the absolute seconds.
#include <algorithm>
#include <cstdio>

#include "common/bench_common.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (bench::HandleAllocatorHelp(flags)) return 0;
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bench::TimelineConfig config =
      bench::ResolveTimelineConfig(flags, scale, seed);
  const int gap =
      static_cast<int>(flags.GetInt("gap", std::max(1, config.steps / 10)));

  const std::vector<std::string> specs = bench::ResolveMethodSpecs(
      flags, {"txallo-global",
              "txallo-hybrid:global-every=" + std::to_string(gap)});

  std::printf("==============================================================\n");
  std::printf("Figure 10: Allocation running time per step (k=%u, %d steps; "
              "default pair:\npure G-TxAllo vs hybrid gap=%d)\n",
              config.num_shards, config.steps, gap);
  std::printf("==============================================================\n");

  std::vector<bench::TimelineResult> results;
  results.reserve(specs.size());
  for (const std::string& spec : specs) {
    results.push_back(bench::RunTimeline(config, spec));
  }

  std::vector<std::string> columns{"step"};
  for (const std::string& spec : specs) columns.push_back(spec);
  bench::SeriesTable table("Seconds per step", columns);
  for (int step = 0; step < config.steps; ++step) {
    std::vector<std::string> row{std::to_string(step)};
    for (const auto& result : results) {
      row.push_back(bench::Fmt(result.seconds_per_step[step], 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                 "fig10_adaptive_runtime.csv");

  std::printf("\nSummary (per schedule)\n");
  std::printf("  %-40s %12s %12s %12s %10s\n", "schedule", "avg s/step",
              "median s/step", "worst s/step", "avg tput");
  std::vector<double> median_seconds(specs.size(), 0.0);
  for (size_t i = 0; i < specs.size(); ++i) {
    double avg = 0.0;
    double worst = 0.0;
    for (double s : results[i].seconds_per_step) {
      avg += s;
      worst = std::max(worst, s);
    }
    if (config.steps > 0) avg /= config.steps;
    // Median is the typical step: a hybrid schedule's periodic global
    // spikes (1-in-gap steps) don't drag it, so it stands in for the
    // A-TxAllo per-step cost without hard-coding which steps were global.
    std::vector<double> sorted = results[i].seconds_per_step;
    std::sort(sorted.begin(), sorted.end());
    if (!sorted.empty()) median_seconds[i] = sorted[sorted.size() / 2];
    std::printf("  %-40s %12.4f %12.4f %12.4f %10.3f\n", specs[i].c_str(),
                avg, median_seconds[i], worst,
                results[i].average_throughput);
  }
  // The paper's headline comparison (typical G-TxAllo step over typical
  // A-TxAllo step): medians, so the hybrid's global spikes stay out of its
  // own denominator. First spec over last spec.
  if (specs.size() >= 2 && median_seconds.back() > 0.0) {
    std::printf("\n  %s / %s median ratio: %.1fx (paper: ~220x G-TxAllo "
                "over A-TxAllo at 91M-tx scale)\n",
                specs.front().c_str(), specs.back().c_str(),
                median_seconds.front() / median_seconds.back());
    std::printf("  throughput cost of %s vs %s: %.2f%% (avg %.3f vs "
                "%.3f)\n",
                specs.back().c_str(), specs.front().c_str(),
                100.0 * (results.front().average_throughput -
                         results.back().average_throughput) /
                    std::max(1e-12, results.front().average_throughput),
                results.back().average_throughput,
                results.front().average_throughput);
  }
  return 0;
}

// Figure 1 (paper §VI-A): the dataset's structure. The paper shows a force
// layout of 300k sampled transactions; the text rendition here reports the
// same properties the figure is there to demonstrate — a heavy hub account
// (~11% of transactions), long-tail activity, and community structure.
#include <cinttypes>
#include <cstdio>

#include "common/bench_common.h"
#include "txallo/graph/csr.h"
#include "txallo/graph/louvain.h"
#include "txallo/graph/stats.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bench::Fixture fixture(scale, seed);
  bench::PrintRunBanner(
      "Figure 1: Dataset structure (text rendition of the paper's "
      "transaction-graph visualization)",
      scale, fixture, seed);

  graph::CsrGraph csr = graph::CsrGraph::FromGraph(fixture.graph());
  graph::GraphStats stats = graph::ComputeGraphStats(csr);

  std::printf("\nGlobal structure\n");
  std::printf("  nodes (accounts)           : %zu\n", stats.num_nodes);
  std::printf("  edges (account pairs)      : %zu\n", stats.num_edges);
  std::printf("  total edge weight (= |T|)  : %.1f\n", stats.total_weight);
  std::printf("  connected components       : %zu\n",
              graph::CountConnectedComponents(csr));

  std::printf("\nHub account (paper: ~11%% of transactions)\n");
  std::printf("  most active account        : %u\n", stats.max_strength_node);
  std::printf("  hub weight share           : %.1f%%\n",
              100.0 * stats.hub_weight_share);

  std::printf("\nLong tail (paper: most accounts have very few records)\n");
  std::printf("  mean degree                : %.2f\n", stats.mean_degree);
  std::printf("  max degree                 : %zu\n", stats.max_degree);
  std::printf("  fraction with degree <= 2  : %.1f%%\n",
              100.0 * stats.low_degree_fraction);
  std::printf("  activity Gini coefficient  : %.3f\n", stats.strength_gini);

  std::printf("\nDegree histogram (log2 buckets)\n");
  auto hist = graph::DegreeHistogramLog2(csr);
  for (size_t b = 0; b < hist.size(); ++b) {
    if (hist[b] == 0) continue;
    std::printf("  degree in [%zu, %zu): %" PRIu64 "\n", size_t{1} << b,
                size_t{1} << (b + 1), hist[b]);
  }

  std::printf("\nCommunity structure (what graph-based allocation exploits)\n");
  graph::LouvainResult louvain =
      graph::RunLouvain(csr, fixture.node_order());
  std::printf("  Louvain communities        : %u\n", louvain.num_communities);
  std::printf("  modularity Q               : %.3f\n", louvain.modularity);
  std::printf("  aggregation levels         : %d\n", louvain.levels);
  return 0;
}

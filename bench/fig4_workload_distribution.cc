// Figure 4 (paper §VI-B3): normalized per-shard workload σ_i/λ at η=2,
// k=20 for the four methods. The red horizontal line in the paper is
// σ_i = λ, i.e. normalized workload 1.0.
//
// Paper shape: Random has the most total workload (most cross-shard txs);
// Random, METIS and Our Method each have one standout shard holding the
// hub account; Shard Scheduler is flat; several METIS shards sit under the
// line (idle capacity).
#include <algorithm>
#include <cstdio>

#include "common/bench_common.h"

int main(int argc, char** argv) {
  using namespace txallo;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (bench::HandleAllocatorHelp(flags)) return 0;
  bench::BenchScale scale = bench::ResolveBenchScale(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 20));
  const double eta = flags.GetDouble("eta", 2.0);
  bench::Fixture fixture(scale, seed);
  bench::PrintRunBanner(
      "Figure 4: Workload distribution among shards (sigma_i/lambda; "
      "eta=2, k=20)",
      scale, fixture, seed);

  const std::vector<std::string> methods = bench::ResolveMethodSpecs(flags);
  std::vector<std::string> columns{"shard"};
  for (const std::string& m : methods) {
    columns.push_back(bench::MethodLabel(m));
  }
  bench::SeriesTable table("Normalized workload per shard", columns);

  // Per-shard vectors are not in the sweep cache; compute directly.
  std::vector<std::vector<double>> profiles;
  for (const std::string& m : methods) {
    bench::MethodResult result = fixture.RunMethod(m, k, eta);
    profiles.push_back(result.report.normalized_workloads);
  }
  for (uint32_t s = 0; s < k; ++s) {
    std::vector<std::string> row{std::to_string(s)};
    for (const auto& profile : profiles) {
      row.push_back(bench::Fmt(profile[s]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  table.WriteCsv(flags.GetString("csv-dir", "bench_out"),
                 "fig4_workload_distribution.csv");

  std::printf("\nSummary (1.0 = capacity line)\n");
  for (size_t i = 0; i < profiles.size(); ++i) {
    const auto& p = profiles[i];
    const double total = [&] {
      double t = 0.0;
      for (double v : p) t += v;
      return t;
    }();
    const double max = *std::max_element(p.begin(), p.end());
    const size_t under = static_cast<size_t>(
        std::count_if(p.begin(), p.end(), [](double v) { return v < 1.0; }));
    std::printf("  %-16s total=%.2f  max=%.2f  shards-under-line=%zu/%u\n",
                bench::MethodLabel(methods[i]).c_str(), total, max, under,
                k);
  }
  return 0;
}

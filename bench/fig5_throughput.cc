// Figure 5 (paper §VI-B4): normalized system throughput Λ/λ vs number of
// shards k — "how many times an unsharded chain", one panel per η.
#include "common/bench_common.h"

namespace {
double ExtractThroughput(const txallo::bench::MethodResult& result) {
  return result.report.normalized_throughput;
}
}  // namespace

int main(int argc, char** argv) {
  return txallo::bench::RunStandardSweepFigure(
      argc, argv,
      "Figure 5: Throughput comparison (Lambda/lambda vs k)",
      "Normalized throughput (x over unsharded)",
      &ExtractThroughput, "fig5_throughput",
      "Paper shape: linear growth in k for all methods, Our Method steepest "
      "(34.7x at k=60, eta=2\nvs METIS 31.6x); all methods flatten as eta "
      "grows, Our Method most stable.");
}

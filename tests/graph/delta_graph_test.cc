// Bit-compatibility suite for the delta-log TransactionGraph.
//
// LegacyGraph below is the pre-delta-log storage model (per-node
// std::vector adjacency, pending buffers, full recompute on Consolidate),
// with every floating-point accumulation in its original operation order.
// The delta-log graph promises *bit-identical* reads — FP addition is not
// associative, so this is strictly stronger than approximate equality —
// under any interleaving of AddEdge / AddSelfLoop / Consolidate /
// ScaleWeights / copy / Refreeze / AdoptCore. The randomized schedules
// here drive both structures through the same op sequences and compare
// every read with exact equality.
#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "txallo/common/rng.h"
#include "txallo/graph/graph.h"

namespace txallo::graph {
namespace {

// The legacy storage model, verbatim operation order.
class LegacyGraph {
 public:
  void EnsureNodeCount(size_t n) {
    if (n > adjacency_.size()) {
      adjacency_.resize(n);
      pending_.resize(n);
      self_loop_.resize(n, 0.0);
      strength_.resize(n, 0.0);
    }
  }

  void AddEdge(NodeId u, NodeId v, double weight) {
    if (u == v) {
      AddSelfLoop(u, weight);
      return;
    }
    EnsureNodeCount(static_cast<size_t>(std::max(u, v)) + 1);
    pending_[u].push_back({v, weight});
    pending_[v].push_back({u, weight});
  }

  void AddSelfLoop(NodeId v, double weight) {
    EnsureNodeCount(static_cast<size_t>(v) + 1);
    self_loop_[v] += weight;
  }

  void Consolidate() {
    for (size_t v = 0; v < adjacency_.size(); ++v) {
      if (pending_[v].empty()) continue;
      std::vector<Neighbor>& pend = pending_[v];
      std::sort(pend.begin(), pend.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  return a.node < b.node;
                });
      size_t w = 0;
      for (size_t r = 0; r < pend.size(); ++r) {
        if (w > 0 && pend[w - 1].node == pend[r].node) {
          pend[w - 1].weight += pend[r].weight;
        } else {
          pend[w++] = pend[r];
        }
      }
      pend.resize(w);
      std::vector<Neighbor> merged;
      const std::vector<Neighbor>& adj = adjacency_[v];
      size_t i = 0, j = 0;
      while (i < adj.size() || j < pend.size()) {
        if (j == pend.size() ||
            (i < adj.size() && adj[i].node < pend[j].node)) {
          merged.push_back(adj[i++]);
        } else if (i == adj.size() || pend[j].node < adj[i].node) {
          merged.push_back(pend[j++]);
        } else {
          merged.push_back({adj[i].node, adj[i].weight + pend[j].weight});
          ++i;
          ++j;
        }
      }
      adjacency_[v] = std::move(merged);
      pend.clear();
    }
    // Full recompute, id order, strength adds in row order.
    size_t degree_sum = 0;
    for (size_t v = 0; v < adjacency_.size(); ++v) {
      double s = 0.0;
      for (const Neighbor& nb : adjacency_[v]) s += nb.weight;
      strength_[v] = s;
      degree_sum += adjacency_[v].size();
    }
    num_edges_ = degree_sum / 2;
    double total = 0.0;
    for (size_t v = 0; v < adjacency_.size(); ++v) {
      total += strength_[v];
      total += 2.0 * self_loop_[v];
    }
    total_weight_ = total / 2.0;
  }

  void ScaleWeights(double factor) {
    for (std::vector<Neighbor>& row : adjacency_) {
      for (Neighbor& nb : row) nb.weight *= factor;
    }
    for (double& s : self_loop_) s *= factor;
    for (double& s : strength_) s *= factor;
    total_weight_ *= factor;
  }

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }
  std::span<const Neighbor> Neighbors(NodeId v) const { return adjacency_[v]; }
  double SelfLoop(NodeId v) const { return self_loop_[v]; }
  double Strength(NodeId v) const { return strength_[v]; }
  double TotalWeight() const { return total_weight_; }

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<std::vector<Neighbor>> pending_;
  std::vector<double> self_loop_;
  std::vector<double> strength_;
  size_t num_edges_ = 0;
  double total_weight_ = 0.0;
};

// Exact (bitwise, via ==) equality of every public read.
void ExpectBitIdentical(const TransactionGraph& graph,
                        const LegacyGraph& reference) {
  ASSERT_EQ(graph.num_nodes(), reference.num_nodes());
  ASSERT_EQ(graph.num_edges(), reference.num_edges());
  EXPECT_EQ(graph.TotalWeight(), reference.TotalWeight());
  for (size_t v = 0; v < reference.num_nodes(); ++v) {
    const auto id = static_cast<NodeId>(v);
    EXPECT_EQ(graph.SelfLoop(id), reference.SelfLoop(id)) << "node " << v;
    EXPECT_EQ(graph.Strength(id), reference.Strength(id)) << "node " << v;
    const std::span<const Neighbor> got = graph.Neighbors(id);
    const std::span<const Neighbor> want = reference.Neighbors(id);
    ASSERT_EQ(got.size(), want.size()) << "node " << v;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].node, want[i].node) << "node " << v << " entry " << i;
      EXPECT_EQ(got[i].weight, want[i].weight)
          << "node " << v << " entry " << i;
    }
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(graph.EdgeWeight(id, want[i].node), want[i].weight);
    }
  }
}

// One randomized schedule: mixed writes, consolidations, decay, copies,
// refreezes. Parameterized by seed so failures name the schedule.
void RunSchedule(uint64_t seed, int steps, NodeId max_node) {
  Rng rng(seed);
  TransactionGraph graph;
  LegacyGraph reference;
  bool dirty = false;
  for (int step = 0; step < steps; ++step) {
    const uint64_t action = rng.NextBounded(100);
    if (action < 55) {
      const auto u = static_cast<NodeId>(rng.NextBounded(max_node));
      const auto v = static_cast<NodeId>(rng.NextBounded(max_node));
      const double w = 0.25 + rng.NextDouble();
      graph.AddEdge(u, v, w);
      reference.AddEdge(u, v, w);
      dirty = true;
    } else if (action < 70) {
      const auto v = static_cast<NodeId>(rng.NextBounded(max_node));
      const double w = 0.25 + rng.NextDouble();
      graph.AddSelfLoop(v, w);
      reference.AddSelfLoop(v, w);
      dirty = true;
    } else if (action < 90) {
      graph.Consolidate();
      reference.Consolidate();
      dirty = false;
      ExpectBitIdentical(graph, reference);
    } else if (action < 95 && !dirty) {
      graph.ScaleWeights(0.5);
      reference.ScaleWeights(0.5);
      ExpectBitIdentical(graph, reference);
    } else if (action < 98) {
      // Snapshot copy must read identically and leave the original intact.
      TransactionGraph copy = graph;
      graph = copy;
    } else if (!dirty) {
      graph.Refreeze();  // Representation change only.
      ExpectBitIdentical(graph, reference);
    }
  }
  graph.Consolidate();
  reference.Consolidate();
  ExpectBitIdentical(graph, reference);
}

TEST(DeltaGraphTest, RandomizedSchedulesMatchLegacyBitForBit) {
  RunSchedule(/*seed=*/1, /*steps=*/4000, /*max_node=*/64);
  RunSchedule(/*seed=*/2, /*steps=*/2000, /*max_node=*/8);
  RunSchedule(/*seed=*/3, /*steps=*/1500, /*max_node=*/512);
  RunSchedule(/*seed=*/4, /*steps=*/800, /*max_node=*/3);
}

TEST(DeltaGraphTest, SnapshotCopySharesCoreAndCopiesDelta) {
  TransactionGraph graph;
  Rng rng(9);
  for (int e = 0; e < 50'000; ++e) {
    graph.AddEdge(static_cast<NodeId>(rng.NextBounded(4096)),
                  static_cast<NodeId>(rng.NextBounded(4096)), 1.0);
  }
  graph.Refreeze();
  for (int e = 0; e < 100; ++e) {
    graph.AddEdge(static_cast<NodeId>(rng.NextBounded(4096)),
                  static_cast<NodeId>(rng.NextBounded(4096)), 1.0);
  }
  graph.Consolidate();
  // The acceptance bar: a snapshot copies >= 10x less than the legacy
  // full-graph copy at a 500:1 frozen:delta ratio.
  EXPECT_GT(graph.frozen_edges(), 0u);
  EXPECT_GT(graph.overlay_rows(), 0u);
  EXPECT_LT(graph.SnapshotBytes() * 10, graph.FullCopyBytes());
  // And the copy really shares the core.
  const TransactionGraph snapshot = graph;
  EXPECT_EQ(snapshot.core().get(), graph.core().get());
}

TEST(DeltaGraphTest, RefreezeFoldOffThreadThenAdopt) {
  TransactionGraph graph;
  LegacyGraph reference;
  Rng rng(17);
  for (int e = 0; e < 2000; ++e) {
    const auto u = static_cast<NodeId>(rng.NextBounded(256));
    const auto v = static_cast<NodeId>(rng.NextBounded(256));
    graph.AddEdge(u, v, 1.5);
    reference.AddEdge(u, v, 1.5);
  }
  graph.Consolidate();
  reference.Consolidate();

  // BeginRebalance(): cheap snapshot + captured generation.
  auto snapshot = std::make_shared<TransactionGraph>(graph);
  const uint64_t generation = graph.generation();

  // Owner keeps absorbing while the "task" folds the snapshot.
  graph.AddSelfLoop(3, 2.0);
  reference.AddSelfLoop(3, 2.0);
  snapshot->Refreeze();

  // Commit: the fold is adopted; the newer self-loop shadow survives.
  EXPECT_TRUE(graph.AdoptCore(snapshot->core(), generation));
  graph.Consolidate();
  reference.Consolidate();
  ExpectBitIdentical(graph, reference);
}

TEST(DeltaGraphTest, AdoptCoreRejectsStaleFold) {
  TransactionGraph graph;
  graph.AddEdge(0, 1, 1.0);
  graph.Consolidate();
  auto snapshot = std::make_shared<TransactionGraph>(graph);
  const uint64_t generation = graph.generation();
  snapshot->Refreeze();
  // The live graph consolidates new edges before the commit arrives: the
  // fold no longer covers its rows and must be rejected.
  graph.AddEdge(1, 2, 1.0);
  graph.Consolidate();
  EXPECT_FALSE(graph.AdoptCore(snapshot->core(), generation));
  EXPECT_FALSE(graph.AdoptCore(nullptr, graph.generation()));
  EXPECT_EQ(graph.EdgeWeight(1, 2), 1.0);
}

TEST(DeltaGraphTest, AdoptedGraphKeepsPendingLog) {
  TransactionGraph graph;
  graph.AddEdge(0, 1, 1.0);
  graph.Consolidate();
  auto snapshot = std::make_shared<TransactionGraph>(graph);
  const uint64_t generation = graph.generation();
  snapshot->Refreeze();
  graph.AddEdge(0, 2, 4.0);  // Un-consolidated delta at commit time.
  EXPECT_TRUE(graph.AdoptCore(snapshot->core(), generation));
  EXPECT_FALSE(graph.consolidated());
  graph.Consolidate();
  EXPECT_EQ(graph.EdgeWeight(0, 2), 4.0);
  EXPECT_EQ(graph.EdgeWeight(0, 1), 1.0);
}

}  // namespace
}  // namespace txallo::graph

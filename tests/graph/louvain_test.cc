#include "txallo/graph/louvain.h"

#include <gtest/gtest.h>

#include <numeric>

#include "txallo/common/rng.h"
#include "txallo/graph/builder.h"

namespace txallo::graph {
namespace {

std::vector<NodeId> IdentityOrder(size_t n) {
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

// Two dense cliques joined by one weak edge: the canonical community
// structure every community detector must find.
CsrGraph TwoCliques() {
  TransactionGraph g;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.AddEdge(u, v, 1.0);
  }
  for (NodeId u = 5; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) g.AddEdge(u, v, 1.0);
  }
  g.AddEdge(4, 5, 0.1);
  g.Consolidate();
  return CsrGraph::FromGraph(g);
}

TEST(LouvainTest, FindsTwoCliques) {
  CsrGraph csr = TwoCliques();
  LouvainResult result = RunLouvain(csr, IdentityOrder(csr.num_nodes()));
  EXPECT_EQ(result.num_communities, 2u);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_EQ(result.community[v], result.community[0]);
  }
  for (NodeId v = 6; v < 10; ++v) {
    EXPECT_EQ(result.community[v], result.community[5]);
  }
  EXPECT_NE(result.community[0], result.community[5]);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(LouvainTest, DeterministicAcrossRuns) {
  CsrGraph csr = TwoCliques();
  auto order = IdentityOrder(csr.num_nodes());
  LouvainResult a = RunLouvain(csr, order);
  LouvainResult b = RunLouvain(csr, order);
  EXPECT_EQ(a.community, b.community);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(LouvainTest, EmptyGraph) {
  TransactionGraph g;
  g.Consolidate();
  CsrGraph csr = CsrGraph::FromGraph(g);
  LouvainResult result = RunLouvain(csr, {});
  EXPECT_EQ(result.num_communities, 0u);
}

TEST(LouvainTest, SingletonNodesStaySeparate) {
  TransactionGraph g;
  g.EnsureNodeCount(4);  // No edges at all.
  g.Consolidate();
  CsrGraph csr = CsrGraph::FromGraph(g);
  LouvainResult result = RunLouvain(csr, IdentityOrder(4));
  EXPECT_EQ(result.num_communities, 4u);
}

TEST(LouvainTest, ImprovesModularityOverSingletons) {
  // Random community-structured graph: Louvain must beat the trivial
  // all-singletons partition (Q = negative or ~0).
  TransactionGraph g;
  Rng rng(55);
  constexpr int kCommunities = 8;
  constexpr int kPerCommunity = 20;
  const int n = kCommunities * kPerCommunity;
  for (int c = 0; c < kCommunities; ++c) {
    for (int i = 0; i < 60; ++i) {
      NodeId u = static_cast<NodeId>(c * kPerCommunity +
                                     rng.NextBounded(kPerCommunity));
      NodeId v = static_cast<NodeId>(c * kPerCommunity +
                                     rng.NextBounded(kPerCommunity));
      if (u != v) g.AddEdge(u, v, 1.0);
    }
  }
  for (int i = 0; i < 40; ++i) {  // Sparse inter-community noise.
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u != v) g.AddEdge(u, v, 0.2);
  }
  g.EnsureNodeCount(n);
  g.Consolidate();
  CsrGraph csr = CsrGraph::FromGraph(g);

  std::vector<uint32_t> singletons(n);
  std::iota(singletons.begin(), singletons.end(), 0);
  const double q_singletons = Modularity(csr, singletons);

  LouvainResult result = RunLouvain(csr, IdentityOrder(n));
  EXPECT_GT(result.modularity, q_singletons);
  EXPECT_GT(result.modularity, 0.4);
  EXPECT_LE(result.num_communities, static_cast<uint32_t>(n));
}

TEST(LouvainTest, ModularityOfOneCommunityIsNearZero) {
  CsrGraph csr = TwoCliques();
  std::vector<uint32_t> one(csr.num_nodes(), 0);
  // Q of the all-in-one partition is exactly 1*in/m - (1)^2 = 0.
  EXPECT_NEAR(Modularity(csr, one), 0.0, 1e-12);
}

TEST(LouvainTest, SelfLoopsDoNotBreakDetection) {
  // Moderate self-loops must not break detection. (Very heavy self-loops
  // legitimately suppress merging under standard modularity — they raise a
  // node's degree without adding inter-node connectivity.)
  TransactionGraph g;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) g.AddEdge(u, v, 1.0);
    g.AddSelfLoop(u, 0.5);
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) g.AddEdge(u, v, 1.0);
  }
  g.AddEdge(0, 4, 0.05);
  g.Consolidate();
  CsrGraph csr = CsrGraph::FromGraph(g);
  LouvainResult result = RunLouvain(csr, IdentityOrder(8));
  EXPECT_EQ(result.community[0], result.community[3]);
  EXPECT_EQ(result.community[4], result.community[7]);
  EXPECT_NE(result.community[0], result.community[4]);
}

TEST(LouvainTest, CommunityIdsAreCompact) {
  CsrGraph csr = TwoCliques();
  LouvainResult result = RunLouvain(csr, IdentityOrder(csr.num_nodes()));
  for (uint32_t c : result.community) {
    EXPECT_LT(c, result.num_communities);
  }
  // First-appearance ordering: node 0's community is 0.
  EXPECT_EQ(result.community[0], 0u);
}

TEST(LouvainTest, ResolutionParameterChangesGranularity) {
  // Higher resolution favors smaller communities.
  TransactionGraph g;
  Rng rng(99);
  for (int c = 0; c < 6; ++c) {
    for (int i = 0; i < 30; ++i) {
      NodeId u = static_cast<NodeId>(c * 10 + rng.NextBounded(10));
      NodeId v = static_cast<NodeId>(c * 10 + rng.NextBounded(10));
      if (u != v) g.AddEdge(u, v, 1.0);
    }
    if (c > 0) {
      g.AddEdge(static_cast<NodeId>(c * 10),
                static_cast<NodeId>((c - 1) * 10), 0.8);
    }
  }
  g.Consolidate();
  CsrGraph csr = CsrGraph::FromGraph(g);
  LouvainOptions low, high;
  low.resolution = 0.2;
  high.resolution = 3.0;
  auto order = IdentityOrder(csr.num_nodes());
  LouvainResult coarse = RunLouvain(csr, order, low);
  LouvainResult fine = RunLouvain(csr, order, high);
  EXPECT_LE(coarse.num_communities, fine.num_communities);
}

}  // namespace
}  // namespace txallo::graph

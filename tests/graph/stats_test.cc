#include "txallo/graph/stats.h"

#include <gtest/gtest.h>

#include "txallo/graph/builder.h"

namespace txallo::graph {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  TransactionGraph g;
  g.Consolidate();
  GraphStats stats = ComputeGraphStats(CsrGraph::FromGraph(g));
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
}

TEST(GraphStatsTest, HubShareIdentifiesMostActiveNode) {
  TransactionGraph g;
  // Node 0 is a hub with 8 unit edges; nodes 9-10 share one edge.
  for (NodeId v = 1; v <= 8; ++v) g.AddEdge(0, v, 1.0);
  g.AddEdge(9, 10, 1.0);
  g.Consolidate();
  GraphStats stats = ComputeGraphStats(CsrGraph::FromGraph(g));
  EXPECT_EQ(stats.max_strength_node, 0u);
  EXPECT_NEAR(stats.hub_weight_share, 8.0 / 9.0, 1e-12);
  EXPECT_EQ(stats.max_degree, 8u);
}

TEST(GraphStatsTest, UniformGraphHasLowGini) {
  TransactionGraph g;
  for (NodeId v = 0; v < 10; ++v) {
    g.AddEdge(v, (v + 1) % 10, 1.0);  // Ring: all strengths equal.
  }
  g.Consolidate();
  GraphStats stats = ComputeGraphStats(CsrGraph::FromGraph(g));
  EXPECT_NEAR(stats.strength_gini, 0.0, 1e-9);
}

TEST(GraphStatsTest, SkewedGraphHasHighGini) {
  TransactionGraph g;
  for (NodeId v = 1; v <= 50; ++v) g.AddEdge(0, v, 10.0);
  for (NodeId v = 51; v <= 60; ++v) g.AddEdge(v, v - 1, 0.01);
  g.Consolidate();
  GraphStats stats = ComputeGraphStats(CsrGraph::FromGraph(g));
  EXPECT_GT(stats.strength_gini, 0.4);
}

TEST(DegreeHistogramTest, BucketsAreLog2) {
  TransactionGraph g;
  // Node 0: degree 5 (bucket 2); nodes 1..5: degree >= 1.
  for (NodeId v = 1; v <= 5; ++v) g.AddEdge(0, v, 1.0);
  g.Consolidate();
  auto hist = DegreeHistogramLog2(CsrGraph::FromGraph(g));
  ASSERT_GE(hist.size(), 3u);
  EXPECT_EQ(hist[0], 5u);  // Degree-1 nodes.
  EXPECT_EQ(hist[2], 1u);  // Degree-5 hub in [4,8).
}

TEST(ConnectedComponentsTest, CountsIslands) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(3, 4, 1.0);
  g.EnsureNodeCount(7);  // Nodes 5, 6 isolated.
  g.Consolidate();
  EXPECT_EQ(CountConnectedComponents(CsrGraph::FromGraph(g)), 4u);
}

TEST(ConnectedComponentsTest, SingleComponent) {
  TransactionGraph g;
  for (NodeId v = 0; v < 20; ++v) g.AddEdge(v, (v + 1) % 20, 1.0);
  g.Consolidate();
  EXPECT_EQ(CountConnectedComponents(CsrGraph::FromGraph(g)), 1u);
}

}  // namespace
}  // namespace txallo::graph

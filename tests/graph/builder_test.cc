#include "txallo/graph/builder.h"

#include <gtest/gtest.h>

#include "txallo/common/math.h"

namespace txallo::graph {
namespace {

using chain::Transaction;

TEST(GraphBuilderTest, TwoPartyTransactionWeighsOne) {
  TransactionGraph g;
  GraphBuilder builder(&g);
  builder.AddTransaction(Transaction::Simple(0, 1));
  builder.Finish();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 1.0);
}

TEST(GraphBuilderTest, SelfTransferIsUnitSelfLoop) {
  TransactionGraph g;
  GraphBuilder builder(&g);
  builder.AddTransaction(Transaction({5}, {5}));
  builder.Finish();
  EXPECT_DOUBLE_EQ(g.SelfLoop(5), 1.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 1.0);
}

TEST(GraphBuilderTest, MultiPartySplitsUnitWeightOverPairs) {
  // 3 accounts -> C(3,2) = 3 edges of weight 1/3 each (Definition 2).
  TransactionGraph g;
  GraphBuilder builder(&g);
  builder.AddTransaction(Transaction({0, 1}, {2}));
  builder.Finish();
  EXPECT_NEAR(g.EdgeWeight(0, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(g.EdgeWeight(0, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(g.EdgeWeight(1, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(g.TotalWeight(), 1.0, 1e-12);
}

TEST(GraphBuilderTest, FivePartyUsesCombinationCount) {
  TransactionGraph g;
  GraphBuilder builder(&g);
  builder.AddTransaction(Transaction({0, 1, 2}, {3, 4}));
  builder.Finish();
  const double share = 1.0 / static_cast<double>(EdgeSplitCount(5));
  EXPECT_NEAR(g.EdgeWeight(0, 4), share, 1e-12);
  EXPECT_NEAR(g.TotalWeight(), 1.0, 1e-12);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(GraphBuilderTest, RepeatedTransactionsAccumulate) {
  TransactionGraph g;
  GraphBuilder builder(&g);
  for (int i = 0; i < 5; ++i) {
    builder.AddTransaction(Transaction::Simple(0, 1));
  }
  builder.Finish();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 5.0);
}

TEST(GraphBuilderTest, TotalWeightEqualsTransactionCount) {
  // Every transaction distributes exactly one unit of weight — the
  // invariant connecting |T| to graph totals.
  TransactionGraph g;
  GraphBuilder builder(&g);
  builder.AddTransaction(Transaction::Simple(0, 1));
  builder.AddTransaction(Transaction({2}, {2}));
  builder.AddTransaction(Transaction({0, 3}, {4, 5}));
  builder.AddTransaction(Transaction({1}, {0, 2}));
  builder.Finish();
  EXPECT_NEAR(g.TotalWeight(), 4.0, 1e-12);
  EXPECT_EQ(builder.num_transactions_added(), 4u);
}

TEST(GraphBuilderTest, LedgerRangeBuildsSubsets) {
  chain::Ledger ledger;
  for (uint64_t b = 0; b < 4; ++b) {
    std::vector<Transaction> txs{Transaction::Simple(0, 1)};
    ASSERT_TRUE(ledger.Append(chain::Block(b, std::move(txs))).ok());
  }
  TransactionGraph g;
  GraphBuilder builder(&g);
  builder.AddLedgerRange(ledger, 1, 3);
  builder.Finish();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
}

TEST(GraphBuilderTest, BuildTransactionGraphConvenience) {
  chain::Ledger ledger;
  std::vector<Transaction> txs{Transaction::Simple(0, 1),
                               Transaction::Simple(1, 2)};
  ASSERT_TRUE(ledger.Append(chain::Block(0, std::move(txs))).ok());
  TransactionGraph g = BuildTransactionGraph(ledger);
  EXPECT_TRUE(g.consolidated());
  EXPECT_NEAR(g.TotalWeight(), 2.0, 1e-12);
  EXPECT_EQ(g.num_nodes(), 3u);
}

}  // namespace
}  // namespace txallo::graph

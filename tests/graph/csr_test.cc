#include "txallo/graph/csr.h"

#include <gtest/gtest.h>

#include "txallo/common/rng.h"

namespace txallo::graph {
namespace {

TEST(CsrGraphTest, MirrorsSmallGraph) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.5);
  g.AddEdge(1, 2, 2.5);
  g.AddSelfLoop(2, 0.5);
  g.Consolidate();
  CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_EQ(csr.num_nodes(), 3u);
  EXPECT_EQ(csr.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(csr.TotalWeight(), g.TotalWeight());
  EXPECT_DOUBLE_EQ(csr.SelfLoop(2), 0.5);
  EXPECT_DOUBLE_EQ(csr.Strength(1), 4.0);
  ASSERT_EQ(csr.Degree(1), 2u);
  auto ids = csr.NeighborIds(1);
  auto ws = csr.NeighborWeights(1);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_DOUBLE_EQ(ws[0], 1.5);
  EXPECT_EQ(ids[1], 2u);
  EXPECT_DOUBLE_EQ(ws[1], 2.5);
}

TEST(CsrGraphTest, EmptyGraph) {
  TransactionGraph g;
  g.Consolidate();
  CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrGraphTest, RandomGraphEquivalence) {
  // Property: CSR snapshot agrees with the source graph on every node's
  // degree, strength, and neighbor multiset.
  TransactionGraph g;
  Rng rng(77);
  constexpr int kNodes = 200;
  for (int e = 0; e < 2000; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(kNodes));
    NodeId v = static_cast<NodeId>(rng.NextBounded(kNodes));
    g.AddEdge(u, v, 1.0 + rng.NextDouble());
  }
  g.EnsureNodeCount(kNodes);
  g.Consolidate();
  CsrGraph csr = CsrGraph::FromGraph(g);
  ASSERT_EQ(csr.num_nodes(), g.num_nodes());
  ASSERT_EQ(csr.num_edges(), g.num_edges());
  for (NodeId v = 0; v < kNodes; ++v) {
    auto g_nbrs = g.Neighbors(v);
    ASSERT_EQ(csr.Degree(v), g_nbrs.size());
    EXPECT_DOUBLE_EQ(csr.Strength(v), g.Strength(v));
    EXPECT_DOUBLE_EQ(csr.SelfLoop(v), g.SelfLoop(v));
    auto ids = csr.NeighborIds(v);
    auto ws = csr.NeighborWeights(v);
    for (size_t i = 0; i < g_nbrs.size(); ++i) {
      EXPECT_EQ(ids[i], g_nbrs[i].node);
      EXPECT_DOUBLE_EQ(ws[i], g_nbrs[i].weight);
    }
  }
}

TEST(CsrGraphTest, IsolatedNodesPreserved) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.EnsureNodeCount(10);
  g.Consolidate();
  CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_EQ(csr.num_nodes(), 10u);
  EXPECT_EQ(csr.Degree(5), 0u);
}

}  // namespace
}  // namespace txallo::graph

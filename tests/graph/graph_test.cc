#include "txallo/graph/graph.h"

#include <gtest/gtest.h>

namespace txallo::graph {
namespace {

TEST(TransactionGraphTest, EmptyGraph) {
  TransactionGraph g;
  g.Consolidate();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.0);
}

TEST(TransactionGraphTest, SingleEdgeBothDirections) {
  TransactionGraph g;
  g.AddEdge(0, 1, 2.5);
  g.Consolidate();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 2.5);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 2.5);
}

TEST(TransactionGraphTest, DuplicateEdgesAccumulate) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 0, 0.5);
  g.Consolidate();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.5);
}

TEST(TransactionGraphTest, SelfLoopViaAddEdge) {
  TransactionGraph g;
  g.AddEdge(3, 3, 1.0);
  g.AddSelfLoop(3, 0.5);
  g.Consolidate();
  EXPECT_DOUBLE_EQ(g.SelfLoop(3), 1.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(3, 3), 1.5);
  EXPECT_EQ(g.num_edges(), 0u);  // Self-loops are not adjacency edges.
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 1.5);
}

TEST(TransactionGraphTest, StrengthExcludesSelfLoop) {
  TransactionGraph g;
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(0, 2, 3.0);
  g.AddSelfLoop(0, 10.0);
  g.Consolidate();
  EXPECT_DOUBLE_EQ(g.Strength(0), 5.0);
  EXPECT_DOUBLE_EQ(g.Strength(1), 2.0);
}

TEST(TransactionGraphTest, NeighborsSortedById) {
  TransactionGraph g;
  g.AddEdge(0, 9, 1.0);
  g.AddEdge(0, 3, 1.0);
  g.AddEdge(0, 6, 1.0);
  g.Consolidate();
  auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].node, 3u);
  EXPECT_EQ(nbrs[1].node, 6u);
  EXPECT_EQ(nbrs[2].node, 9u);
}

TEST(TransactionGraphTest, IncrementalConsolidationMerges) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.Consolidate();
  EXPECT_TRUE(g.consolidated());
  g.AddEdge(0, 1, 2.0);  // Into pending.
  EXPECT_FALSE(g.consolidated());
  g.AddEdge(0, 2, 4.0);
  g.Consolidate();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(g.Strength(0), 7.0);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(TransactionGraphTest, MissingEdgeWeightIsZero) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.EnsureNodeCount(5);
  g.Consolidate();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 3), 0.0);
}

TEST(TransactionGraphTest, TotalWeightCountsEdgesOnceAndSelfLoopsOnce) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddSelfLoop(2, 3.0);
  g.Consolidate();
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 6.0);
}

TEST(TransactionGraphTest, EnsureNodeCountCreatesIsolatedNodes) {
  TransactionGraph g;
  g.EnsureNodeCount(10);
  g.Consolidate();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.Neighbors(7).size(), 0u);
  EXPECT_DOUBLE_EQ(g.Strength(7), 0.0);
}

TEST(TransactionGraphTest, ConsolidateIsIdempotent) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.Consolidate();
  const double w1 = g.TotalWeight();
  g.Consolidate();
  EXPECT_DOUBLE_EQ(g.TotalWeight(), w1);
  EXPECT_EQ(g.num_edges(), 1u);
}

}  // namespace
}  // namespace txallo::graph

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "txallo/alloc/graph_metrics.h"
#include "txallo/core/controller.h"
#include "txallo/graph/builder.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo::graph {
namespace {

TEST(ScaleWeightsTest, ScalesEverything) {
  TransactionGraph g;
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 4.0);
  g.AddSelfLoop(2, 1.0);
  g.Consolidate();
  g.ScaleWeights(0.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.SelfLoop(2), 0.5);
  EXPECT_DOUBLE_EQ(g.Strength(1), 3.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 3.5);
}

TEST(ScaleWeightsTest, RepeatedDecayIsExponential) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.Consolidate();
  for (int i = 0; i < 3; ++i) g.ScaleWeights(0.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.125);
}

TEST(ScaleWeightsTest, NewEdgesAfterDecayGetFullWeight) {
  // The decay semantics: old windows shrink, fresh traffic stays at 1.
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.Consolidate();
  g.ScaleWeights(0.25);
  g.AddEdge(0, 2, 1.0);
  g.Consolidate();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 1.0);
}

TEST(GeneratorDriftTest, PartnersRedirectTraffic) {
  // With aggressive drift, the set of (communityA, communityB) transaction
  // pairs in a late window must differ from the early window.
  workload::EthereumLikeConfig config;
  config.num_blocks = 200;
  config.txs_per_block = 100;
  config.num_accounts = 4'000;
  config.num_communities = 40;
  config.hub_share = 0.0;
  config.p_intra_community = 1.0;  // Pure community traffic.
  config.drift_interval_blocks = 50;
  config.drift_fraction = 0.5;
  config.drift_partner_share = 1.0;
  config.seed = 21;
  workload::EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(200);

  // Compare cross-community edge sets between first and last 50 blocks.
  auto community_of = [&](chain::AccountId a) {
    // Communities own contiguous ranges of ~100 accounts; approximate by
    // bucketing — exact boundaries are internal, but a coarse bucket works
    // to detect redirection.
    return a / 100;
  };
  auto collect = [&](size_t first, size_t last) {
    std::set<std::pair<uint32_t, uint32_t>> pairs;
    ledger.ForEachTransactionInRange(
        first, last, [&](const chain::Transaction& tx) {
          if (tx.accounts().size() < 2) return;
          uint32_t a = community_of(tx.accounts().front());
          uint32_t b = community_of(tx.accounts().back());
          if (a != b) pairs.insert({std::min(a, b), std::max(a, b)});
        });
    return pairs;
  };
  auto early = collect(0, 50);
  auto late = collect(150, 200);
  // Drift must create cross-bucket pairs late that never appeared early.
  size_t novel = 0;
  for (const auto& p : late) {
    if (!early.count(p)) ++novel;
  }
  EXPECT_GT(novel, 5u);
}

TEST(GeneratorDriftTest, DisabledDriftKeepsPartnersIdentity) {
  workload::EthereumLikeConfig config;
  config.num_blocks = 100;
  config.txs_per_block = 50;
  config.num_accounts = 2'000;
  config.num_communities = 20;
  config.hub_share = 0.0;
  config.p_intra_community = 1.0;
  config.multi_party_rate = 0.0;
  config.self_loop_rate = 0.0;
  config.drift_interval_blocks = 0;  // Off.
  workload::EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(100);
  // With pure intra traffic and no drift, every transaction's accounts stay
  // within one contiguous ~100-account community range.
  ledger.ForEachTransaction([&](const chain::Transaction& tx) {
    if (tx.accounts().size() < 2) return;
    const auto lo = tx.accounts().front();
    const auto hi = tx.accounts().back();
    EXPECT_LT(hi - lo, 500u);  // Same community (generous bound).
  });
}

TEST(ControllerDecayTest, StateStaysGluedToOracle) {
  workload::EthereumLikeConfig config;
  config.num_blocks = 30;
  config.txs_per_block = 60;
  config.num_accounts = 800;
  config.num_communities = 16;
  config.seed = 17;
  workload::EthereumLikeGenerator gen(config);
  alloc::AllocationParams params =
      alloc::AllocationParams::ForExperiment(1, 4, 2.0);
  core::TxAlloController controller(&gen.registry(), params);
  for (int b = 0; b < 15; ++b) controller.ApplyBlock(gen.NextBlock());
  ASSERT_TRUE(controller.StepGlobal().ok());
  for (int b = 0; b < 5; ++b) controller.ApplyBlock(gen.NextBlock());
  ASSERT_TRUE(controller.StepAdaptive().ok());

  ASSERT_TRUE(controller.ApplyHistoryDecay(0.5).ok());
  // Incremental (scaled) state must equal the from-scratch recomputation on
  // the decayed graph.
  alloc::CommunityState scaled = controller.state();
  core::TxAlloController copy = controller;
  copy.RecomputeState();
  for (uint32_t c = 0; c < params.num_shards; ++c) {
    EXPECT_NEAR(scaled.sigma[c], copy.state().sigma[c], 1e-6);
    EXPECT_NEAR(scaled.lambda_hat[c], copy.state().lambda_hat[c], 1e-6);
  }
}

TEST(ControllerDecayTest, RejectsBadFactor) {
  chain::AccountRegistry registry;
  core::TxAlloController controller(
      &registry, alloc::AllocationParams::ForExperiment(1, 2, 2.0));
  EXPECT_FALSE(controller.ApplyHistoryDecay(0.0).ok());
  EXPECT_FALSE(controller.ApplyHistoryDecay(1.5).ok());
  EXPECT_TRUE(controller.ApplyHistoryDecay(1.0).ok());
}

}  // namespace
}  // namespace txallo::graph

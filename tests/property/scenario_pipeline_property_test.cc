// Property: every registered scenario is a deterministic stream all the
// way through the open-loop pipeline — for each name in
// RegisteredScenarioNames(), the routed multi-producer multi-threaded run's
// per-lane execution order, 2PC outcome stream, and per-step metrics are
// byte-identical to the single-producer single-worker reference. This is
// the contract that makes gauntlet snapshots byte-reproducible under
// --threads/--producers: the adversarial overlays must not introduce any
// schedule-dependent behavior the ethereum background does not have.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "txallo/allocator/registry.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/engine/replay.h"
#include "txallo/workload/scenario_registry.h"

namespace txallo {
namespace {

Result<engine::PipelineResult> RunScenario(const chain::Ledger& ledger,
                                           const chain::AccountRegistry* registry,
                                           uint32_t shards,
                                           uint32_t producers, uint32_t threads,
                                           engine::ReplayLog* record) {
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), shards, 2.0);
  options.registry = registry;
  auto made = allocator::MakeAllocatorFromSpec("txallo-hybrid", options);
  if (!made.ok()) return made.status();
  engine::EngineConfig config;
  config.num_shards = shards;
  config.num_threads = threads;
  // Tight λ so the backlog spills across ticks: arrival-order divergence
  // would become execution-order divergence.
  config.work.capacity_per_block = 6.0;
  config.hash_route_unassigned = true;
  engine::ParallelEngine engine(config, nullptr);
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = 4;
  pipeline.allocator_mode = engine::AllocatorMode::kDriverDeferred;
  pipeline.ingest_producers = producers;
  pipeline.record = record;
  return engine::RunReallocatedStream(ledger, (*made)->AsOnline(), &engine,
                                      pipeline);
}

TEST(ScenarioPipelinePropertyTest, EveryScenarioIsScheduleInvariant) {
  workload::ScenarioShape shape;
  shape.num_blocks = 16;
  shape.txs_per_block = 48;
  shape.num_accounts = 700;
  shape.num_communities = 12;
  shape.seed = 20260808;

  constexpr uint32_t kShards = 4;
  const std::pair<uint32_t, uint32_t> schedules[] = {
      {2, 2}, {4, 3}, {6, 4}};  // {producers, threads}

  for (const std::string& name : workload::RegisteredScenarioNames()) {
    SCOPED_TRACE("scenario " + name);
    // shard-attack/stress target a hash shard; tune them to the engine's k
    // the way a bench invocation would.
    std::string spec = name;
    if (name == "shard-attack" || name == "stress") {
      spec += ":shards=" + std::to_string(kShards) + ",target=1";
    }
    auto scenario = workload::MakeScenarioFromSpec(spec, shape);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    const chain::Ledger ledger =
        (*scenario)->GenerateLedger((*scenario)->num_blocks());

    engine::ReplayLog reference_log;
    auto reference =
        RunScenario(ledger, &(*scenario)->registry(), kShards,
                    /*producers=*/0, /*threads=*/1, &reference_log);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    for (const auto& [producers, threads] : schedules) {
      SCOPED_TRACE("producers=" + std::to_string(producers) +
                   " threads=" + std::to_string(threads));
      engine::ReplayLog routed_log;
      auto routed = RunScenario(ledger, &(*scenario)->registry(), kShards,
                                producers, threads, &routed_log);
      ASSERT_TRUE(routed.ok()) << routed.status().ToString();

      EXPECT_EQ(engine::DescribeTraceDivergence(reference_log, routed_log),
                "");
      ASSERT_EQ(routed->steps.size(), reference->steps.size());
      for (size_t i = 0; i < reference->steps.size(); ++i) {
        SCOPED_TRACE("step " + std::to_string(i));
        engine::StepMetrics a = reference->steps[i];
        engine::StepMetrics b = routed->steps[i];
        a.alloc_seconds = b.alloc_seconds = 0.0;
        a.alloc_wait_seconds = b.alloc_wait_seconds = 0.0;
        EXPECT_EQ(a, b);
      }
      EXPECT_EQ(routed->report.sim.committed, reference->report.sim.committed);
      EXPECT_EQ(routed->accounts_moved, reference->accounts_moved);
    }
  }
}

// The generator side alone: two scenarios built from the same spec must
// produce byte-identical ledgers even when consumed concurrently is not a
// question (GenerateLedger is single-threaded) — but the *fingerprint*
// must also survive a second instantiation after the first was consumed,
// i.e. no hidden global state anywhere in the registry.
TEST(ScenarioPipelinePropertyTest, ReinstantiationIsBitIdentical) {
  workload::ScenarioShape shape;
  shape.num_blocks = 10;
  shape.txs_per_block = 40;
  shape.num_accounts = 500;
  shape.num_communities = 8;
  shape.seed = 99;
  for (const std::string& name : workload::RegisteredScenarioNames()) {
    SCOPED_TRACE("scenario " + name);
    auto first = workload::MakeScenarioFromSpec(name, shape);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    const uint64_t fp1 = engine::FingerprintLedger(
        (*first)->GenerateLedger((*first)->num_blocks()));
    auto second = workload::MakeScenarioFromSpec(name, shape);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    const uint64_t fp2 = engine::FingerprintLedger(
        (*second)->GenerateLedger((*second)->num_blocks()));
    EXPECT_EQ(fp1, fp2);
  }
}

}  // namespace
}  // namespace txallo

// Property sweeps over (k, η): structural invariants that must hold for
// every allocation method on every workload.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "txallo/alloc/metrics.h"
#include "txallo/baselines/hash_allocator.h"
#include "txallo/baselines/metis/partitioner.h"
#include "txallo/core/global.h"
#include "txallo/graph/builder.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

using alloc::AllocationParams;
using alloc::EvaluationReport;

struct SharedWorkload {
  chain::Ledger ledger;
  graph::TransactionGraph graph;
  chain::AccountRegistry registry;
  std::vector<graph::NodeId> node_order;

  static const SharedWorkload& Get() {
    static SharedWorkload* instance = [] {
      auto* w = new SharedWorkload();
      workload::EthereumLikeConfig config;
      config.num_blocks = 50;
      config.txs_per_block = 100;
      config.num_accounts = 1'500;
      config.num_communities = 30;
      config.seed = 314;
      workload::EthereumLikeGenerator gen(config);
      w->ledger = gen.GenerateLedger(config.num_blocks);
      w->graph = graph::BuildTransactionGraph(w->ledger);
      w->graph.EnsureNodeCount(gen.registry().size());
      w->graph.Consolidate();
      for (size_t a = 0; a < gen.registry().size(); ++a) {
        w->registry.Intern(
            gen.registry().AddressOf(static_cast<chain::AccountId>(a)));
      }
      w->node_order = w->registry.IdsInHashOrder();
      return w;
    }();
    return *instance;
  }
};

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

void CheckReportInvariants(const EvaluationReport& report,
                           const AllocationParams& params,
                           uint64_t num_transactions) {
  // γ ∈ [0, 1].
  EXPECT_GE(report.cross_shard_ratio, 0.0);
  EXPECT_LE(report.cross_shard_ratio, 1.0);
  // µ ∈ [1, k].
  EXPECT_GE(report.mean_shards_per_tx, 1.0);
  EXPECT_LE(report.mean_shards_per_tx, params.num_shards);
  // Λ cannot exceed |T| (every transaction counts at most once) nor k·λ.
  EXPECT_LE(report.throughput, static_cast<double>(num_transactions) + 1e-6);
  EXPECT_LE(report.normalized_throughput,
            static_cast<double>(params.num_shards) + 1e-9);
  EXPECT_GE(report.throughput, 0.0);
  // ζ >= 1 block; worst >= avg is NOT generally true (avg over shards vs
  // max of per-shard worst), but worst >= 1 and worst >= ζ of the worst
  // shard hold; check the simple bounds.
  EXPECT_GE(report.avg_latency_blocks, 1.0);
  EXPECT_GE(report.worst_latency_blocks, 1.0);
  // Workload accounting: Σ σ_i = |T_intra| + η Σ_cross µ(Tx).
  double sigma_total = 0.0;
  for (double s : report.shard_workloads) sigma_total += s;
  const double expected =
      static_cast<double>(num_transactions - report.cross_shard_transactions) +
      params.eta * report.mean_shards_per_tx *
          static_cast<double>(report.total_transactions) -
      params.eta * static_cast<double>(num_transactions -
                                       report.cross_shard_transactions);
  // mean_shards_per_tx * |T| = Σ µ = |T_intra| + Σ_cross µ.
  EXPECT_NEAR(sigma_total, expected, 1e-6 * (1.0 + std::abs(expected)));
}

TEST_P(InvariantSweep, TxAlloAllocationSatisfiesDefinitionAndBounds) {
  auto [k, eta] = GetParam();
  const SharedWorkload& w = SharedWorkload::Get();
  AllocationParams params =
      AllocationParams::ForExperiment(w.ledger.num_transactions(), k, eta);
  auto result = core::RunGlobalTxAllo(w.graph, w.node_order, params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Definition 1: uniqueness + completeness.
  ASSERT_TRUE(result->Validate().ok());
  auto report = alloc::EvaluateAllocation(w.ledger, result.value(), params);
  ASSERT_TRUE(report.ok());
  CheckReportInvariants(report.value(), params,
                        w.ledger.num_transactions());
}

TEST_P(InvariantSweep, HashAllocationSatisfiesBounds) {
  auto [k, eta] = GetParam();
  const SharedWorkload& w = SharedWorkload::Get();
  AllocationParams params =
      AllocationParams::ForExperiment(w.ledger.num_transactions(), k, eta);
  auto hashed = baselines::AllocateByHash(w.registry, k);
  ASSERT_TRUE(hashed.Validate().ok());
  auto report = alloc::EvaluateAllocation(w.ledger, hashed, params);
  ASSERT_TRUE(report.ok());
  CheckReportInvariants(report.value(), params,
                        w.ledger.num_transactions());
}

TEST_P(InvariantSweep, MetisAllocationSatisfiesBounds) {
  auto [k, eta] = GetParam();
  const SharedWorkload& w = SharedWorkload::Get();
  AllocationParams params =
      AllocationParams::ForExperiment(w.ledger.num_transactions(), k, eta);
  auto metis = baselines::metis::PartitionGraph(w.graph, k);
  ASSERT_TRUE(metis.ok());
  ASSERT_TRUE(metis->Validate().ok());
  auto report = alloc::EvaluateAllocation(w.ledger, metis.value(), params);
  ASSERT_TRUE(report.ok());
  CheckReportInvariants(report.value(), params,
                        w.ledger.num_transactions());
}

TEST_P(InvariantSweep, TxAlloBeatsHashOnThroughput) {
  auto [k, eta] = GetParam();
  if (k == 1) GTEST_SKIP() << "k=1 is trivially equal";
  const SharedWorkload& w = SharedWorkload::Get();
  AllocationParams params =
      AllocationParams::ForExperiment(w.ledger.num_transactions(), k, eta);
  auto txallo = core::RunGlobalTxAllo(w.graph, w.node_order, params);
  ASSERT_TRUE(txallo.ok());
  auto r_txallo = alloc::EvaluateAllocation(w.ledger, txallo.value(), params);
  auto hashed = baselines::AllocateByHash(w.registry, k);
  auto r_hash = alloc::EvaluateAllocation(w.ledger, hashed, params);
  ASSERT_TRUE(r_txallo.ok());
  ASSERT_TRUE(r_hash.ok());
  EXPECT_GT(r_txallo->throughput, r_hash->throughput)
      << "k=" << k << " eta=" << eta;
}

INSTANTIATE_TEST_SUITE_P(
    KEtaGrid, InvariantSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Values(2.0, 6.0, 10.0)));

}  // namespace
}  // namespace txallo

// Property: sequence-tagged ingest makes the pipeline's observable
// behaviour a pure function of the submitted stream — for random shard
// counts, λ budgets, epoch cadences, producer fan-outs and worker counts,
// the routed run's per-lane execution order (the recorded prepare stream),
// 2PC outcome stream and per-step StepMetrics are byte-identical to the
// single-producer, single-worker reference. Tight λ budgets are the
// interesting regime: the backlog spills across ticks, so any arrival-
// order divergence becomes an execution-order divergence.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "txallo/allocator/registry.h"
#include "txallo/common/rng.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/engine/replay.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

struct TrialShape {
  uint32_t shards;
  double capacity;
  uint32_t epoch_blocks;
  uint64_t blocks;
  uint64_t txs_per_block;
  uint32_t producers;
  uint32_t threads;
  uint64_t seed;
  std::string spec;
};

TrialShape SampleShape(Rng* rng, uint64_t trial) {
  TrialShape shape;
  const uint32_t shard_choices[] = {2, 3, 4, 8};
  shape.shards = shard_choices[rng->NextBounded(4)];
  shape.blocks = 10 + rng->NextBounded(12);
  shape.txs_per_block = 24 + rng->NextBounded(32);
  // λ between "very tight" (~15% of the per-shard offered load) and
  // "roomy"; both sides of the backlog regime get exercised.
  const double offered = static_cast<double>(shape.txs_per_block) /
                         static_cast<double>(shape.shards);
  shape.capacity = offered * (0.15 + 1.5 * rng->NextDouble());
  shape.epoch_blocks = 3 + static_cast<uint32_t>(rng->NextBounded(6));
  shape.producers = 2 + static_cast<uint32_t>(rng->NextBounded(4));
  shape.threads = 1 + static_cast<uint32_t>(rng->NextBounded(4));
  shape.seed = 1000 + trial;
  shape.spec = rng->NextBernoulli(0.5) ? "hash" : "contrib";
  return shape;
}

Result<engine::PipelineResult> RunShape(const TrialShape& shape,
                                        const chain::Ledger& ledger,
                                        const chain::AccountRegistry* registry,
                                        uint32_t producers, uint32_t threads,
                                        engine::ReplayLog* record) {
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), shape.shards, 2.0);
  options.registry = registry;
  auto made = allocator::MakeAllocatorFromSpec(shape.spec, options);
  if (!made.ok()) return made.status();
  engine::EngineConfig config;
  config.num_shards = shape.shards;
  config.num_threads = threads;
  config.work.capacity_per_block = shape.capacity;
  config.hash_route_unassigned = true;
  engine::ParallelEngine engine(config, nullptr);
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = shape.epoch_blocks;
  // Deferred: the deterministic driver-side schedule both runs share.
  pipeline.allocator_mode = engine::AllocatorMode::kDriverDeferred;
  pipeline.ingest_producers = producers;
  pipeline.record = record;
  return engine::RunReallocatedStream(ledger, (*made)->AsOnline(), &engine,
                                      pipeline);
}

TEST(IngestOrderPropertyTest, RoutedRunsMatchSingleProducerReference) {
  Rng rng(20260726);
  constexpr uint64_t kTrials = 10;
  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    const TrialShape shape = SampleShape(&rng, trial);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": k=" +
                 std::to_string(shape.shards) + " capacity=" +
                 std::to_string(shape.capacity) + " epoch=" +
                 std::to_string(shape.epoch_blocks) + " producers=" +
                 std::to_string(shape.producers) + " threads=" +
                 std::to_string(shape.threads) + " spec=" + shape.spec);

    workload::EthereumLikeConfig workload_config;
    workload_config.num_blocks = shape.blocks;
    workload_config.txs_per_block = shape.txs_per_block;
    workload_config.num_accounts = 500;
    workload_config.num_communities = 10;
    workload_config.seed = shape.seed;
    workload::EthereumLikeGenerator generator(workload_config);
    const chain::Ledger ledger = generator.GenerateLedger(shape.blocks);

    engine::ReplayLog reference_log;
    auto reference = RunShape(shape, ledger, &generator.registry(),
                              /*producers=*/0, /*threads=*/1,
                              &reference_log);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    engine::ReplayLog routed_log;
    auto routed = RunShape(shape, ledger, &generator.registry(),
                           shape.producers, shape.threads, &routed_log);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();

    // Byte-identical per-lane order and 2PC outcomes (the trace compares
    // every PrepareEvent/CommitEvent), identical install schedule, and an
    // identical per-step metrics series.
    EXPECT_EQ(engine::DescribeTraceDivergence(reference_log, routed_log),
              "");
    ASSERT_EQ(routed->steps.size(), reference->steps.size());
    for (size_t i = 0; i < reference->steps.size(); ++i) {
      SCOPED_TRACE("step " + std::to_string(i));
      // Full StepMetrics equality minus wall-clock alloc timings.
      engine::StepMetrics a = reference->steps[i];
      engine::StepMetrics b = routed->steps[i];
      a.alloc_seconds = b.alloc_seconds = 0.0;
      a.alloc_wait_seconds = b.alloc_wait_seconds = 0.0;
      EXPECT_EQ(a, b);
    }
    EXPECT_EQ(routed->report.sim.submitted, reference->report.sim.submitted);
    EXPECT_EQ(routed->report.sim.committed, reference->report.sim.committed);
    EXPECT_DOUBLE_EQ(routed->report.sim.avg_latency_blocks,
                     reference->report.sim.avg_latency_blocks);
    EXPECT_DOUBLE_EQ(routed->report.sim.max_latency_blocks,
                     reference->report.sim.max_latency_blocks);
    EXPECT_EQ(routed->accounts_moved, reference->accounts_moved);
  }
}

}  // namespace
}  // namespace txallo

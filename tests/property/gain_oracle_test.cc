// Property: on random graphs, random allocations and random moves, the
// closed-form gain kernel must agree with the from-scratch oracle
// (ComputeCommunityState + TotalThroughput). This is the correctness core
// of the whole optimizer — §V-B's Δσ/ΔΛ̂ algebra and Lemma 1 together.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "txallo/alloc/graph_metrics.h"
#include "txallo/common/rng.h"
#include "txallo/core/gain.h"
#include "txallo/graph/graph.h"

namespace txallo::core {
namespace {

using alloc::Allocation;
using alloc::AllocationParams;
using alloc::CommunityState;
using graph::NodeId;
using graph::TransactionGraph;

TransactionGraph RandomGraph(uint64_t seed, int nodes, int edges,
                             double self_loop_rate) {
  TransactionGraph g;
  Rng rng(seed);
  for (int e = 0; e < edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(nodes));
    NodeId v = static_cast<NodeId>(rng.NextBounded(nodes));
    const double w = 0.1 + rng.NextDouble() * 3.0;
    if (u == v || rng.NextBernoulli(self_loop_rate)) {
      g.AddSelfLoop(u, w);
    } else {
      g.AddEdge(u, v, w);
    }
  }
  g.EnsureNodeCount(nodes);
  g.Consolidate();
  return g;
}

double WeightToCommunity(const TransactionGraph& g, NodeId v,
                         const Allocation& a, uint32_t c) {
  double w = 0.0;
  for (const graph::Neighbor& nb : g.Neighbors(v)) {
    if (a.IsAssigned(nb.node) && a.shard_of(nb.node) == c) w += nb.weight;
  }
  return w;
}

class GainOracleSweep
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, uint32_t, double, double>> {};

TEST_P(GainOracleSweep, MoveGainMatchesOracleForManyRandomMoves) {
  auto [seed, k, eta, capacity_scale] = GetParam();
  constexpr int kNodes = 60;
  TransactionGraph g = RandomGraph(seed, kNodes, 300, 0.05);

  AllocationParams params;
  params.num_shards = k;
  params.eta = eta;
  params.capacity = capacity_scale * g.TotalWeight() / k;
  params.epsilon = 0.0;

  Rng rng(seed ^ 0xABCDEF);
  Allocation a(kNodes, k);
  for (NodeId v = 0; v < kNodes; ++v) {
    a.Assign(v, static_cast<alloc::ShardId>(rng.NextBounded(k)));
  }
  CommunityState state = alloc::ComputeCommunityState(g, a, params);

  for (int trial = 0; trial < 40; ++trial) {
    const NodeId v = static_cast<NodeId>(rng.NextBounded(kNodes));
    const uint32_t p = a.shard_of(v);
    const uint32_t q = static_cast<uint32_t>(rng.NextBounded(k));
    if (p == q) continue;

    NodeProfile node{g.SelfLoop(v), g.Strength(v)};
    const double w_p = WeightToCommunity(g, v, a, p);
    const double w_q = WeightToCommunity(g, v, a, q);
    const double predicted = MoveGain(state, p, q, node, w_p, w_q);

    Allocation moved = a;
    moved.Assign(v, q);
    CommunityState next = alloc::ComputeCommunityState(g, moved, params);
    const double actual =
        next.TotalThroughput() - state.TotalThroughput();
    ASSERT_NEAR(predicted, actual, 1e-7 * (1.0 + std::abs(actual)))
        << "trial=" << trial << " v=" << v << " p=" << p << " q=" << q;

    // Lemma 1: communities other than p, q are untouched.
    for (uint32_t c = 0; c < k; ++c) {
      if (c == p || c == q) continue;
      ASSERT_NEAR(state.sigma[c], next.sigma[c], 1e-9);
      ASSERT_NEAR(state.lambda_hat[c], next.lambda_hat[c], 1e-9);
    }

    // Actually apply the move through the incremental path and verify the
    // running state stays glued to the oracle.
    ApplyLeave(&state, p, node, w_p);
    ApplyJoin(&state, q, node, w_q);
    a.Assign(v, q);
    for (uint32_t c = 0; c < k; ++c) {
      ASSERT_NEAR(state.sigma[c], next.sigma[c], 1e-7);
      ASSERT_NEAR(state.lambda_hat[c], next.lambda_hat[c], 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMoves, GainOracleSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(2u, 5u),
                       ::testing::Values(1.0, 4.0, 10.0),
                       // Under-, exactly-, and over-provisioned shards: the
                       // clamp's three regimes.
                       ::testing::Values(0.3, 1.0, 5.0)));

class JoinOracleSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(JoinOracleSweep, JoinDeltaMatchesOracleWithUnassignedNodes) {
  // The initialization-phase variant: some nodes unassigned, a new node
  // joins — matching Algorithm 1's small-community absorption and
  // Algorithm 2's new-node placement.
  auto [seed, eta] = GetParam();
  constexpr int kNodes = 40;
  constexpr uint32_t k = 4;
  TransactionGraph g = RandomGraph(seed + 100, kNodes, 160, 0.1);
  AllocationParams params;
  params.num_shards = k;
  params.eta = eta;
  params.capacity = g.TotalWeight() / k;
  params.epsilon = 0.0;

  Rng rng(seed * 7919);
  Allocation a(kNodes, k);
  std::vector<NodeId> unassigned;
  for (NodeId v = 0; v < kNodes; ++v) {
    if (rng.NextBernoulli(0.3)) {
      unassigned.push_back(v);
    } else {
      a.Assign(v, static_cast<alloc::ShardId>(rng.NextBounded(k)));
    }
  }
  CommunityState state = alloc::ComputeCommunityState(g, a, params);
  for (NodeId v : unassigned) {
    const uint32_t q = static_cast<uint32_t>(rng.NextBounded(k));
    NodeProfile node{g.SelfLoop(v), g.Strength(v)};
    const double w_q = WeightToCommunity(g, v, a, q);
    CommunityDelta delta = JoinDelta(state, q, node, w_q);

    Allocation joined = a;
    joined.Assign(v, q);
    CommunityState next = alloc::ComputeCommunityState(g, joined, params);
    ASSERT_NEAR(state.sigma[q] + delta.d_sigma, next.sigma[q], 1e-8);
    ASSERT_NEAR(state.lambda_hat[q] + delta.d_lambda_hat,
                next.lambda_hat[q], 1e-8);
    ASSERT_NEAR(delta.throughput_gain,
                next.ThroughputOf(q) - state.ThroughputOf(q), 1e-8);
    ApplyJoin(&state, q, node, w_q);
    a.Assign(v, q);
  }
}

INSTANTIATE_TEST_SUITE_P(NewNodePlacement, JoinOracleSweep,
                         ::testing::Combine(::testing::Values(11u, 22u, 33u),
                                            ::testing::Values(2.0, 8.0)));

}  // namespace
}  // namespace txallo::core

// MerkleTrie invariants: the root is a pure function of the key->digest
// mapping (insertion order, removal history and lazy-rehash timing cannot
// perturb it) — the property the per-tick state fingerprint rests on.
#include <gtest/gtest.h>

#include <vector>

#include "txallo/common/sha256.h"
#include "txallo/state/merkle.h"

namespace txallo::state {
namespace {

Sha256Digest LeafFor(uint32_t value) {
  Sha256 hasher;
  uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = (value >> (8 * i)) & 0xff;
  hasher.Update(bytes, sizeof(bytes));
  return hasher.Finish();
}

TEST(MerkleTrieTest, EmptyRootIsAllZero) {
  MerkleTrie trie;
  EXPECT_EQ(trie.Root(), Sha256Digest{});
  EXPECT_EQ(trie.size(), 0u);
}

TEST(MerkleTrieTest, RootIsInsertionOrderIndependent) {
  const std::vector<uint32_t> keys = {0u,        1u,          2u,
                                      0x10u,     0x11u,       0xFF00u,
                                      0xFFFF00u, 0xFFFFFFFFu, 0x80000000u};
  MerkleTrie forward;
  for (uint32_t k : keys) forward.Update(k, LeafFor(k));
  MerkleTrie backward;
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    backward.Update(*it, LeafFor(*it));
  }
  EXPECT_EQ(forward.Root(), backward.Root());
  EXPECT_EQ(forward.size(), keys.size());
  EXPECT_NE(forward.Root(), Sha256Digest{});
}

TEST(MerkleTrieTest, InterleavedRootCallsDoNotPerturbTheRoot) {
  // Lazy rehash: forcing intermediate Root() computations must yield the
  // same final digest as hashing once at the end.
  MerkleTrie lazy;
  MerkleTrie eager;
  for (uint32_t k = 0; k < 300; ++k) {
    lazy.Update(k * 2654435761u, LeafFor(k));
    eager.Update(k * 2654435761u, LeafFor(k));
    if (k % 7 == 0) eager.Root();
  }
  EXPECT_EQ(lazy.Root(), eager.Root());
}

TEST(MerkleTrieTest, UpdateChangesRootAndOverwriteIsIdempotent) {
  MerkleTrie trie;
  trie.Update(42, LeafFor(1));
  const Sha256Digest first = trie.Root();
  trie.Update(42, LeafFor(2));
  const Sha256Digest second = trie.Root();
  EXPECT_NE(first, second);
  EXPECT_EQ(trie.size(), 1u);
  trie.Update(42, LeafFor(1));
  EXPECT_EQ(trie.Root(), first);
}

TEST(MerkleTrieTest, RemoveRestoresThePriorRootExactly) {
  MerkleTrie trie;
  for (uint32_t k : {3u, 0x30000000u, 0x30000001u}) {
    trie.Update(k, LeafFor(k));
  }
  const Sha256Digest before = trie.Root();
  trie.Update(0x7777u, LeafFor(9));
  EXPECT_NE(trie.Root(), before);
  EXPECT_TRUE(trie.Remove(0x7777u));
  EXPECT_EQ(trie.Root(), before);
  EXPECT_EQ(trie.size(), 3u);
  // Removing everything returns to the canonical empty root (pruned
  // interior nodes leave no residue).
  EXPECT_TRUE(trie.Remove(3u));
  EXPECT_TRUE(trie.Remove(0x30000000u));
  EXPECT_TRUE(trie.Remove(0x30000001u));
  EXPECT_EQ(trie.Root(), Sha256Digest{});
  EXPECT_EQ(trie.size(), 0u);
}

TEST(MerkleTrieTest, RemoveAbsentKeyIsANoOp) {
  MerkleTrie trie;
  trie.Update(5, LeafFor(5));
  const Sha256Digest root = trie.Root();
  EXPECT_FALSE(trie.Remove(6));
  // Sibling under the same deep prefix, never inserted.
  EXPECT_FALSE(trie.Remove(4));
  EXPECT_EQ(trie.Root(), root);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(MerkleTrieTest, DistinguishesKeyFromValueAndPlacement) {
  // Same digest under a different key must produce a different root — the
  // trie commits to *where* a leaf sits, not just the leaf multiset.
  MerkleTrie at_one;
  at_one.Update(1, LeafFor(7));
  MerkleTrie at_two;
  at_two.Update(2, LeafFor(7));
  EXPECT_NE(at_one.Root(), at_two.Root());
}

}  // namespace
}  // namespace txallo::state

// ShardStateDb semantics: commit-thunk staging (reserve at prepare, apply
// at commit, drop at abort), lazy funded creation, nonce checks,
// copy-on-write views and the migration extract/insert contract.
#include <gtest/gtest.h>

#include <optional>

#include "txallo/state/shard_state_db.h"

namespace txallo::state {
namespace {

constexpr int64_t kFunding = 100;

Op Debit(chain::AccountId account, int64_t amount,
         uint64_t nonce = kAnySequence) {
  Op op;
  op.account = account;
  op.debit = amount;
  op.require_sequence = nonce;
  return op;
}

Op Credit(chain::AccountId account, int64_t amount) {
  Op op;
  op.account = account;
  op.credit = amount;
  return op;
}

TEST(ShardStateDbTest, LazyCreationFundsAtFirstTouch) {
  ShardStateDb db(kFunding);
  EXPECT_FALSE(db.Contains(7));
  ASSERT_TRUE(db.StageOp(/*seq=*/1, Debit(7, 30)));
  // Creation is a committed-state change even before the 2PC decision —
  // the record exists at the initial balance; only the debit is pending.
  ASSERT_TRUE(db.Contains(7));
  EXPECT_EQ(db.Find(7)->balance, kFunding);
  EXPECT_EQ(db.AvailableBalance(7), kFunding - 30);
  EXPECT_EQ(db.CommitStaged(1), 1u);
  EXPECT_EQ(db.Find(7)->balance, kFunding - 30);
  EXPECT_EQ(db.Find(7)->sequence, 1u);
}

TEST(ShardStateDbTest, CommitAppliesCreditMinusDebitAndBumpsNonce) {
  ShardStateDb db(kFunding);
  Op both = Debit(3, 10);
  both.credit = 4;
  ASSERT_TRUE(db.StageOp(5, both));
  ASSERT_TRUE(db.StageOp(5, Credit(4, 6)));
  EXPECT_EQ(db.CommitStaged(5), 2u);
  EXPECT_EQ(db.Find(3)->balance, kFunding - 10 + 4);
  EXPECT_EQ(db.Find(3)->sequence, 1u);  // Debited: nonce bumps.
  EXPECT_EQ(db.Find(4)->balance, kFunding + 6);
  EXPECT_EQ(db.Find(4)->sequence, 0u);  // Credit-only: nonce untouched.
}

TEST(ShardStateDbTest, AbortRevertsToTheExactPreStagingState) {
  ShardStateDb db(kFunding);
  ASSERT_TRUE(db.StageOp(1, Debit(1, 40)));
  ASSERT_TRUE(db.CommitStaged(1) == 1u);
  const AccountState committed = *db.Find(1);
  const Sha256Digest root = db.RootHash();

  ASSERT_TRUE(db.StageOp(2, Debit(1, 50)));
  ASSERT_TRUE(db.StageOp(2, Credit(1, 10)));
  EXPECT_EQ(db.AvailableBalance(1), kFunding - 40 - 50);
  EXPECT_EQ(db.AbortStaged(2), 2u);
  EXPECT_EQ(*db.Find(1), committed);
  EXPECT_EQ(db.AvailableBalance(1), committed.balance);
  EXPECT_EQ(db.RootHash(), root);
  EXPECT_EQ(db.pending_transactions(), 0u);
}

TEST(ShardStateDbTest, ReservationsGuardAgainstDoubleSpend) {
  ShardStateDb db(kFunding);
  // Two in-flight transactions each within the committed balance, but not
  // jointly: the second must fail at prepare, not at commit.
  ASSERT_TRUE(db.StageOp(1, Debit(9, 70)));
  EXPECT_FALSE(db.StageOp(2, Debit(9, 70)));
  // The failed op staged nothing; aborting seq 2 is a no-op.
  EXPECT_EQ(db.AbortStaged(2), 0u);
  EXPECT_EQ(db.CommitStaged(1), 1u);
  EXPECT_EQ(db.Find(9)->balance, kFunding - 70);
  // With seq 1 released, a 30-unit debit fits again.
  EXPECT_TRUE(db.StageOp(3, Debit(9, 30)));
  EXPECT_EQ(db.AbortStaged(3), 1u);
}

TEST(ShardStateDbTest, NonceCheckFailsDeterministically) {
  ShardStateDb db(kFunding);
  ASSERT_TRUE(db.StageOp(1, Debit(2, 5, /*nonce=*/0)));
  db.CommitStaged(1);
  EXPECT_EQ(db.Find(2)->sequence, 1u);
  EXPECT_FALSE(db.StageOp(2, Debit(2, 5, /*nonce=*/0)));  // Stale nonce.
  EXPECT_TRUE(db.StageOp(3, Debit(2, 5, /*nonce=*/1)));
  db.AbortStaged(3);
}

TEST(ShardStateDbTest, ViewsAreStableAcrossLaterCommits) {
  ShardStateDb db(kFunding);
  ASSERT_TRUE(db.StageOp(1, Debit(5, 10)));
  db.CommitStaged(1);
  ShardStateDb::View view = db.Snapshot();
  ASSERT_NE(view.Find(5), nullptr);
  EXPECT_EQ(view.Find(5)->balance, kFunding - 10);

  // Mutations after the snapshot copy-on-write; the view keeps reading the
  // old map, including for accounts created later.
  ASSERT_TRUE(db.StageOp(2, Debit(5, 20)));
  ASSERT_TRUE(db.StageOp(2, Credit(6, 3)));
  db.CommitStaged(2);
  EXPECT_EQ(view.Find(5)->balance, kFunding - 10);
  EXPECT_EQ(view.Find(6), nullptr);
  EXPECT_EQ(view.num_accounts(), 1u);
  EXPECT_EQ(db.Find(5)->balance, kFunding - 30);
  EXPECT_EQ(db.Find(6)->balance, kFunding + 3);
}

TEST(ShardStateDbTest, ViewsNeverSeeStagedEffects) {
  ShardStateDb db(kFunding);
  ASSERT_TRUE(db.StageOp(1, Debit(8, 25)));
  ShardStateDb::View view = db.Snapshot();
  // The reservation is pending, not committed: the view (and Find) read
  // the funded balance.
  EXPECT_EQ(view.Find(8)->balance, kFunding);
  EXPECT_EQ(db.Find(8)->balance, kFunding);
  db.AbortStaged(1);
}

TEST(ShardStateDbTest, ExtractRefusesReservedRecordsAndRoundTrips) {
  ShardStateDb db(kFunding);
  ASSERT_TRUE(db.StageOp(1, Debit(11, 10)));
  // Mid-2PC: the record must not migrate.
  EXPECT_EQ(db.Extract(11), std::nullopt);
  db.CommitStaged(1);

  // A credit-only participant is pinned too: it carries no reservation,
  // but its commit thunk still targets this shard's record — extracting
  // it would let the commit resurrect a duplicate here.
  ASSERT_TRUE(db.StageOp(2, Credit(11, 5)));
  EXPECT_EQ(db.Extract(11), std::nullopt);
  db.AbortStaged(2);

  const Sha256Digest with_record = db.RootHash();
  std::optional<AccountState> record = db.Extract(11);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->balance, kFunding - 10);
  EXPECT_FALSE(db.Contains(11));
  EXPECT_NE(db.RootHash(), with_record);
  // Re-inserting the extracted record restores the exact fingerprint: a
  // migration out-and-back is invisible to the Merkle root.
  db.Put(11, *record);
  EXPECT_EQ(db.RootHash(), with_record);
  // Absent key: nullopt.
  EXPECT_EQ(db.Extract(999), std::nullopt);
}

TEST(ShardStateDbTest, SortedRecordsAreSortedByAccountId) {
  ShardStateDb db(kFunding);
  for (chain::AccountId a : {40u, 2u, 17u, 9u}) {
    ASSERT_TRUE(db.StageOp(a, Credit(a, 1)));
    db.CommitStaged(a);
  }
  const auto sorted = db.SortedRecords();
  ASSERT_EQ(sorted.size(), 4u);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LT(sorted[i - 1].first, sorted[i].first);
  }
}

}  // namespace
}  // namespace txallo::state

// StateDb: residency-based dispatch of staged parts across shard DBs,
// cross-shard commit/abort, and the record-migration contract of
// allocation installs (deferral of reservation-locked records included).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/state/state_db.h"
#include "txallo/state/transfer_plan.h"

namespace txallo::state {
namespace {

constexpr uint32_t kShards = 4;
constexpr int64_t kFunding = 100;

StateConfig Config() {
  StateConfig config;
  config.enabled = true;
  config.initial_balance = kFunding;
  return config;
}

Op Debit(chain::AccountId account, int64_t amount) {
  Op op;
  op.account = account;
  op.debit = amount;
  return op;
}

Op Credit(chain::AccountId account, int64_t amount) {
  Op op;
  op.account = account;
  op.credit = amount;
  return op;
}

std::shared_ptr<const alloc::Allocation> MappingOf(
    const std::vector<std::pair<chain::AccountId, alloc::ShardId>>& assign,
    uint64_t num_accounts = 64) {
  auto mapping = std::make_shared<alloc::Allocation>(num_accounts, kShards);
  for (const auto& [account, shard] : assign) {
    mapping->Assign(account, shard);
  }
  return mapping;
}

TEST(StateDbTest, StagePartPlacesNewAccountsOnThePlacementShard) {
  StateDb db(kShards, Config());
  ASSERT_TRUE(db.StagePart(/*seq=*/0, {Debit(10, 5), Credit(11, 5)},
                           /*placement_shard=*/2));
  EXPECT_EQ(db.ResidencyOf(10), 2u);
  EXPECT_EQ(db.ResidencyOf(11), 2u);
  EXPECT_EQ(db.ResidencyOf(12), StateDb::kNoShard);
  EXPECT_EQ(db.Commit(0), 2u);
  EXPECT_EQ(db.Find(10)->balance, kFunding - 5);
  EXPECT_EQ(db.Find(11)->balance, kFunding + 5);
  EXPECT_EQ(db.total_accounts(), 2u);
}

TEST(StateDbTest, ResidencyBeatsPlacementForExistingRecords) {
  StateDb db(kShards, Config());
  db.Fund(7, {50, 0}, /*shard=*/1);
  // Part routed to shard 3, but account 7's record lives on shard 1: the
  // op must stage where the record is.
  ASSERT_TRUE(db.StagePart(0, {Debit(7, 20)}, /*placement_shard=*/3));
  EXPECT_EQ(db.shard(1).pending_transactions(), 1u);
  EXPECT_EQ(db.shard(3).pending_transactions(), 0u);
  EXPECT_EQ(db.Commit(0), 1u);
  EXPECT_EQ(db.Find(7)->balance, 30);
  EXPECT_EQ(db.ResidencyOf(7), 1u);
}

TEST(StateDbTest, CrossShardAbortRevertsEveryShard) {
  StateDb db(kShards, Config());
  db.Fund(0, {10, 0}, 0);
  db.Fund(1, {20, 0}, 1);
  db.Fund(2, {30, 0}, 2);
  const Sha256Digest before = db.GlobalRoot();
  ASSERT_TRUE(db.StagePart(5, {Debit(0, 3)}, 0));
  ASSERT_TRUE(db.StagePart(5, {Debit(1, 4)}, 1));
  ASSERT_TRUE(db.StagePart(5, {Credit(2, 7)}, 2));
  EXPECT_EQ(db.Abort(5), 3u);
  EXPECT_EQ(db.GlobalRoot(), before);
  EXPECT_EQ(db.Find(0)->balance, 10);
  EXPECT_EQ(db.Find(1)->balance, 20);
  EXPECT_EQ(db.Find(2)->balance, 30);
}

TEST(StateDbTest, FailedVoteLeavesEarlierOpsForTheAbortToClean) {
  StateDb db(kShards, Config());
  db.Fund(0, {100, 0}, 0);
  db.Fund(1, {1, 0}, 1);
  // Op on shard 0 stages fine; the overdraw on shard 1 fails the part.
  EXPECT_FALSE(db.StagePart(9, {Debit(0, 10), Debit(1, 50)}, 0));
  EXPECT_EQ(db.shard(0).pending_transactions(), 1u);
  // The 2PC decision (abort) cleans up the partial staging.
  EXPECT_EQ(db.Abort(9), 1u);
  EXPECT_EQ(db.Find(0)->balance, 100);
  EXPECT_EQ(db.Find(1)->balance, 1);
  EXPECT_EQ(db.shard(0).pending_transactions(), 0u);
}

TEST(StateDbTest, MigrationMovesRecordsAndCountsPerShardFlows) {
  StateDb db(kShards, Config());
  db.Fund(0, {11, 1}, 0);
  db.Fund(1, {22, 2}, 0);
  db.Fund(2, {33, 3}, 1);

  // New mapping: 0 stays, 1 -> shard 2, 2 -> shard 3.
  MigrationReport report = db.BeginMigration(
      MappingOf({{0, 0}, {1, 2}, {2, 3}}), /*hash_route_unassigned=*/false);
  EXPECT_EQ(report.accounts_moved, 2u);
  EXPECT_EQ(report.accounts_deferred, 0u);
  ASSERT_EQ(report.moved_out.size(), kShards);
  EXPECT_EQ(report.moved_out[0], 1u);
  EXPECT_EQ(report.moved_out[1], 1u);
  EXPECT_EQ(report.moved_in[2], 1u);
  EXPECT_EQ(report.moved_in[3], 1u);
  EXPECT_FALSE(db.migration_pending());

  // Records arrive intact, balances and nonces included.
  EXPECT_EQ(db.ResidencyOf(1), 2u);
  EXPECT_EQ(*db.Find(1), (AccountState{22, 2}));
  EXPECT_EQ(db.ResidencyOf(2), 3u);
  EXPECT_EQ(*db.Find(2), (AccountState{33, 3}));
  EXPECT_EQ(db.ResidencyOf(0), 0u);
}

TEST(StateDbTest, ReservedRecordsDeferUntilTheRoundResolves) {
  StateDb db(kShards, Config());
  db.Fund(5, {40, 0}, 0);
  db.Fund(6, {40, 0}, 0);
  ASSERT_TRUE(db.StagePart(1, {Debit(5, 10)}, 0));

  MigrationReport first = db.BeginMigration(
      MappingOf({{5, 2}, {6, 2}}), /*hash_route_unassigned=*/false);
  // Account 6 moves immediately; account 5 is locked by the pending
  // reservation and defers.
  EXPECT_EQ(first.accounts_moved, 1u);
  EXPECT_EQ(first.accounts_deferred, 1u);
  EXPECT_TRUE(db.migration_pending());
  EXPECT_EQ(db.ResidencyOf(5), 0u);
  EXPECT_EQ(db.ResidencyOf(6), 2u);

  // Still locked: retrying before the decision moves nothing.
  MigrationReport stuck = db.ContinueMigration();
  EXPECT_EQ(stuck.accounts_moved, 0u);
  EXPECT_EQ(stuck.accounts_deferred, 1u);

  db.Commit(1);
  MigrationReport resolved = db.ContinueMigration();
  EXPECT_EQ(resolved.accounts_moved, 1u);
  EXPECT_EQ(resolved.accounts_deferred, 0u);
  EXPECT_FALSE(db.migration_pending());
  EXPECT_EQ(db.ResidencyOf(5), 2u);
  EXPECT_EQ(db.Find(5)->balance, 30);
}

TEST(StateDbTest, HashFallbackRoutesUnassignedAccounts) {
  StateDb db(kShards, Config());
  db.Fund(9, {15, 0}, 0);  // 9 % 4 == 1: should move under the fallback.
  MigrationReport with_fallback = db.BeginMigration(
      MappingOf({}), /*hash_route_unassigned=*/true);
  EXPECT_EQ(with_fallback.accounts_moved, 1u);
  EXPECT_EQ(db.ResidencyOf(9), 1u);

  // Without the fallback an unassigned record stays put.
  MigrationReport without = db.BeginMigration(
      MappingOf({}), /*hash_route_unassigned=*/false);
  EXPECT_EQ(without.accounts_moved, 0u);
  EXPECT_EQ(db.ResidencyOf(9), 1u);
}

TEST(StateDbTest, GlobalRootCoversShardPlacement) {
  // The same records on different shards must fingerprint differently —
  // the global root commits to residency, not just contents.
  StateDb left(kShards, Config());
  left.Fund(1, {5, 0}, 0);
  StateDb right(kShards, Config());
  right.Fund(1, {5, 0}, 1);
  EXPECT_NE(left.GlobalRoot(), right.GlobalRoot());

  StateDb same(kShards, Config());
  same.Fund(1, {5, 0}, 0);
  EXPECT_EQ(left.GlobalRoot(), same.GlobalRoot());
}

TEST(TransferPlanTest, OpsConserveValueAndSortByAccount) {
  chain::Transaction tx({3, 1, 1}, {7, 2});  // Account 1 pays twice.
  for (uint64_t seq : {0u, 5u, 13u}) {
    const std::vector<Op> ops = BuildTransferOps(tx, seq);
    int64_t debits = 0;
    int64_t credits = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      debits += ops[i].debit;
      credits += ops[i].credit;
      if (i > 0) {
        EXPECT_LT(ops[i - 1].account, ops[i].account);
      }
    }
    EXPECT_EQ(debits, credits) << "seq " << seq;
    EXPECT_EQ(debits, 3 * TransferAmount(seq));
  }
  // Identical (tx, seq) -> identical ops: the determinism the replayed
  // Merkle roots rest on.
  EXPECT_EQ(BuildTransferOps(tx, 5), BuildTransferOps(tx, 5));
}

}  // namespace
}  // namespace txallo::state

// Abort-path property tests (the "state" + "engine" labels: these run
// under the sanitizer presets too).
//
// (a) Randomized rounds of staged/committed/aborted cross-shard
//     transactions — with migrations interleaved — must leave the sharded
//     StateDb byte-identical to a flat serial reference execution that
//     knows nothing about shards, residency, reservations-vs-migration
//     interactions or Merkle upkeep.
// (b) The engine end-to-end: the same submission sequence under different
//     worker-thread counts must produce byte-identical final account
//     records, the same Merkle fingerprint and the same abort decisions.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/chain/transaction.h"
#include "txallo/common/rng.h"
#include "txallo/engine/engine.h"
#include "txallo/state/state_db.h"
#include "txallo/state/transfer_plan.h"

namespace txallo::state {
namespace {

constexpr uint32_t kShards = 4;
constexpr int64_t kFunding = 25;  // Tight: overdraw aborts must happen.
constexpr chain::AccountId kAccounts = 48;

StateConfig Config() {
  StateConfig config;
  config.enabled = true;
  config.initial_balance = kFunding;
  return config;
}

// Flat serial reference: one account map, no shards, no tries, no
// copy-on-write — an independent re-statement of the staging contract
// (lazy funded creation, nonce check, spendable = balance - reserved,
// commit applies credit-minus-debit and bumps the nonce of debited
// accounts, abort releases reservations only).
class SerialReference {
 public:
  explicit SerialReference(int64_t initial_balance)
      : initial_balance_(initial_balance) {}

  bool Stage(uint64_t seq, const Op& op) {
    auto [it, created] =
        records_.try_emplace(op.account, AccountState{initial_balance_, 0});
    // Creation is committed state: it survives a later failure or abort.
    AccountState& record = it->second;
    if (op.require_sequence != kAnySequence &&
        op.require_sequence != record.sequence) {
      return false;
    }
    if (op.debit > record.balance - reserved_[op.account]) return false;
    reserved_[op.account] += op.debit;
    staged_[seq].push_back(op);
    return true;
  }

  void Commit(uint64_t seq) {
    for (const Op& op : staged_[seq]) {
      AccountState& record = records_.at(op.account);
      record.balance += op.credit - op.debit;
      if (op.debit > 0) ++record.sequence;
      reserved_[op.account] -= op.debit;
    }
    staged_.erase(seq);
  }

  void Abort(uint64_t seq) {
    for (const Op& op : staged_[seq]) reserved_[op.account] -= op.debit;
    staged_.erase(seq);
  }

  const std::map<chain::AccountId, AccountState>& records() const {
    return records_;
  }

 private:
  const int64_t initial_balance_;
  std::map<chain::AccountId, AccountState> records_;
  std::map<chain::AccountId, int64_t> reserved_;
  std::map<uint64_t, std::vector<Op>> staged_;
};

// Every committed record in the sharded DB, merged across shards into
// account order — the byte-level content the reference is compared to.
std::map<chain::AccountId, AccountState> MergedRecords(StateDb& db) {
  std::map<chain::AccountId, AccountState> merged;
  for (uint32_t s = 0; s < db.num_shards(); ++s) {
    for (const auto& [account, record] : db.shard(s).SortedRecords()) {
      EXPECT_TRUE(merged.emplace(account, record).second)
          << "account " << account << " resides on two shards";
    }
  }
  return merged;
}

// Mimics the engine driver for one transaction: split the sorted op list
// into per-shard parts by placement routing, stage every part (lane
// order), and report the unanimous-vote outcome. A failed StageOp fails
// its part at that op (later ops of the part are never staged) but the
// remaining parts still stage — exactly the engine's per-lane behaviour.
bool StageTransaction(StateDb& db, SerialReference& reference, uint64_t seq,
                      const std::vector<Op>& ops) {
  std::map<uint32_t, std::vector<Op>> parts;
  for (const Op& op : ops) {
    parts[static_cast<uint32_t>(op.account % kShards)].push_back(op);
  }
  bool all_ok = true;
  for (const auto& [placement, part_ops] : parts) {
    if (!db.StagePart(seq, part_ops, placement)) all_ok = false;
    bool ref_ok = true;
    for (const Op& op : part_ops) {
      if (ref_ok) ref_ok = reference.Stage(seq, op);
    }
    if (!ref_ok) all_ok = false;
  }
  return all_ok;
}

chain::Transaction RandomTransaction(Rng& rng) {
  const size_t num_inputs = 1 + rng.NextBounded(3);
  const size_t num_outputs = 1 + rng.NextBounded(2);
  std::vector<chain::AccountId> inputs;
  std::vector<chain::AccountId> outputs;
  for (size_t i = 0; i < num_inputs; ++i) {
    inputs.push_back(static_cast<chain::AccountId>(rng.NextBounded(kAccounts)));
  }
  for (size_t i = 0; i < num_outputs; ++i) {
    outputs.push_back(
        static_cast<chain::AccountId>(rng.NextBounded(kAccounts)));
  }
  return chain::Transaction(inputs, outputs);
}

std::shared_ptr<const alloc::Allocation> RandomMapping(Rng& rng) {
  auto mapping = std::make_shared<alloc::Allocation>(kAccounts, kShards);
  for (chain::AccountId a = 0; a < kAccounts; ++a) {
    // Leave some accounts unassigned so the hash fallback participates.
    if (rng.NextBernoulli(0.8)) {
      mapping->Assign(a, static_cast<alloc::ShardId>(rng.NextBounded(kShards)));
    }
  }
  return mapping;
}

// One full randomized run; returns the final global fingerprint so the
// caller can assert run-to-run reproducibility.
Sha256Digest RunRandomizedRounds(uint64_t seed) {
  StateDb db(kShards, Config());
  SerialReference reference(kFunding);
  Rng rng(seed);

  constexpr uint64_t kRounds = 400;
  constexpr size_t kInFlight = 3;  // Reservations span decisions.
  // (seq, unanimous) decisions not yet issued, FIFO like the 2PC queue.
  std::deque<std::pair<uint64_t, bool>> outstanding;
  uint64_t aborts = 0;

  auto decide_oldest = [&] {
    const auto [seq, unanimous] = outstanding.front();
    outstanding.pop_front();
    const bool commit = unanimous && !rng.NextBernoulli(0.25);
    if (commit) {
      db.Commit(seq);
      reference.Commit(seq);
    } else {
      db.Abort(seq);
      reference.Abort(seq);
      ++aborts;
    }
  };

  for (uint64_t seq = 0; seq < kRounds; ++seq) {
    const chain::Transaction tx = RandomTransaction(rng);
    const std::vector<Op> ops = BuildTransferOps(tx, seq);
    outstanding.emplace_back(seq, StageTransaction(db, reference, seq, ops));
    if (outstanding.size() > kInFlight) decide_oldest();
    if (seq % 7 == 6) {
      // Allocation install mid-stream: reservation-locked records defer.
      db.BeginMigration(RandomMapping(rng), /*hash_route_unassigned=*/true);
    }
    if (db.migration_pending()) db.ContinueMigration();
  }
  while (!outstanding.empty()) decide_oldest();
  for (int i = 0; i < 8 && db.migration_pending(); ++i) {
    db.ContinueMigration();
  }
  EXPECT_FALSE(db.migration_pending());
  EXPECT_GT(aborts, 0u) << "funding too generous: abort path not exercised";

  // Byte-identical to the serial reference, shard by shard clean.
  EXPECT_EQ(MergedRecords(db), reference.records());
  EXPECT_EQ(db.total_accounts(), reference.records().size());
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(db.shard(s).pending_transactions(), 0u) << "shard " << s;
  }
  return db.GlobalRoot();
}

TEST(StatePropertyTest, RandomizedAbortRoundsMatchSerialReference) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    SCOPED_TRACE(seed);
    const Sha256Digest first = RunRandomizedRounds(seed);
    // Identical seed -> bit-identical fingerprint: the whole pipeline
    // (staging, decisions, migrations, trie upkeep) is deterministic.
    EXPECT_EQ(RunRandomizedRounds(seed), first);
  }
}

// ---------------------------------------------------------------------------
// (b) Engine end-to-end: thread count must not leak into state.

engine::EngineConfig PropertyEngineConfig(uint32_t threads) {
  engine::EngineConfig config;
  config.num_shards = kShards;
  config.num_threads = threads;
  config.work.eta = 2.0;
  config.work.capacity_per_block = 12.0;  // Multi-tick backlogs.
  config.work.cross_shard_commit_rounds = 1;
  config.hash_route_unassigned = true;
  config.state.enabled = true;
  config.state.initial_balance = kFunding;
  config.state.migration_work_per_account = 1.0;
  return config;
}

struct EngineOutcome {
  std::map<chain::AccountId, AccountState> records;
  Sha256Digest root{};
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t migrated = 0;
};

EngineOutcome RunEngine(uint32_t threads,
                        const std::vector<std::vector<chain::Transaction>>&
                            blocks) {
  Rng rng(99);  // Same draws per run: both engines install one mapping.
  engine::ParallelEngine engine(PropertyEngineConfig(threads),
                                RandomMapping(rng));
  for (size_t b = 0; b < blocks.size(); ++b) {
    EXPECT_TRUE(engine.SubmitBlock(blocks[b]).ok());
    engine.Tick();
    if (b == blocks.size() / 2) {
      // Reallocation mid-run: records migrate while backlogs are live.
      EXPECT_TRUE(engine.InstallAllocation(RandomMapping(rng)).ok());
    }
  }
  engine::EngineReport report = engine.DrainAndReport();
  EngineOutcome outcome;
  outcome.records = MergedRecords(*engine.state());
  outcome.root = engine.state()->GlobalRoot();
  outcome.committed = report.sim.committed;
  outcome.aborted = report.aborted;
  outcome.migrated = report.accounts_migrated;
  return outcome;
}

TEST(StatePropertyTest, EngineStateIsIndependentOfWorkerThreads) {
  Rng rng(17);
  std::vector<std::vector<chain::Transaction>> blocks(6);
  for (auto& block : blocks) {
    for (int i = 0; i < 24; ++i) block.push_back(RandomTransaction(rng));
  }
  const EngineOutcome serial = RunEngine(1, blocks);
  EXPECT_GT(serial.aborted, 0u)
      << "funding too generous: abort path not exercised";
  EXPECT_GT(serial.migrated, 0u)
      << "install moved nothing: migration path not exercised";
  for (uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    const EngineOutcome parallel = RunEngine(threads, blocks);
    EXPECT_EQ(parallel.records, serial.records);
    EXPECT_EQ(parallel.root, serial.root);
    EXPECT_EQ(parallel.committed, serial.committed);
    EXPECT_EQ(parallel.aborted, serial.aborted);
    EXPECT_EQ(parallel.migrated, serial.migrated);
  }
}

}  // namespace
}  // namespace txallo::state
